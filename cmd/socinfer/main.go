// Command socinfer runs the offline reasoning stage (Section 3.5):
// classification, realization, restriction inference and the Jena-style
// domain rules, writing the inferred per-match Turtle models of pipeline
// step 7. It also prints the Fig. 5 classification demo and checks
// knowledge-base consistency.
//
//	socinfer -out inferred/        infer over the simulated corpus
//	socinfer -demo longpass        print the inferred hierarchy of LongPass
//	socinfer -check                consistency-check every match model
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/reasoner"
	"repro/internal/soccer"
)

func main() {
	fs := flag.NewFlagSet("socinfer", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	out := fs.String("out", "", "directory for inferred Turtle models")
	demo := fs.String("demo", "", "print the inferred class hierarchy of this class (Fig. 5: longpass)")
	check := fs.Bool("check", false, "consistency-check every match model")
	ruleStats := fs.Bool("rulestats", false, "print per-rule firing counts")
	fs.Parse(os.Args[1:])

	if *demo != "" {
		runDemo(*demo)
		return
	}

	pages, _, err := cf.LoadPages()
	if err != nil {
		cli.Fatal(err)
	}
	sys := core.New()
	sys.LoadPages(pages)

	start := time.Now()
	added := 0
	fired := map[string]int{}
	for _, page := range pages {
		pm := sys.Populate(page)
		res := sys.Infer(page)
		added += res.Model.Graph.Len() - pm.Model.Graph.Len()
		for _, rule := range res.RuleProvenance {
			fired[rule]++
		}
	}
	fmt.Printf("inferred %d new triples over %d matches in %v\n", added, len(pages), time.Since(start).Round(time.Millisecond))
	if *ruleStats {
		names := make([]string, 0, len(fired))
		for n := range fired {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("rule-derived triples by rule:")
		for _, n := range names {
			fmt.Printf("  %-26s %6d\n", n, fired[n])
		}
	}

	if *check {
		if v := sys.CheckConsistency(); len(v) > 0 {
			for _, x := range v {
				fmt.Println("violation:", x)
			}
			os.Exit(1)
		}
		fmt.Println("knowledge base is consistent")
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			cli.Fatal(err)
		}
		for _, page := range pages {
			f, err := os.Create(filepath.Join(*out, page.ID+".ttl"))
			if err != nil {
				cli.Fatal(err)
			}
			if err := sys.WriteModel(f, page, true); err != nil {
				cli.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("wrote %d inferred models to %s\n", len(pages), *out)
	}
}

// runDemo reproduces Fig. 5: the inferred class hierarchy of a class.
func runDemo(name string) {
	ont := soccer.BuildOntology()
	r := reasoner.New(ont)
	// Accept case-insensitive names ("longpass" -> LongPass).
	var target string
	for _, c := range ont.Classes() {
		if strings.EqualFold(c.IRI.LocalName(), name) {
			target = c.IRI.LocalName()
		}
	}
	if target == "" {
		cli.Fatal(fmt.Errorf("unknown class %q", name))
	}
	fmt.Printf("inferred class hierarchy of %s (Fig. 5):\n", target)
	fmt.Printf("  %s\n", target)
	for _, anc := range r.Ancestors(ont.IRI(target)) {
		fmt.Printf("  ⊑ %s\n", anc.LocalName())
	}
}
