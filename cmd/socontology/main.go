// Command socontology dumps the central soccer ontology: the Fig. 2 class
// hierarchy, the property hierarchy, size statistics and (optionally) the
// TBox as Turtle.
//
//	socontology            print hierarchy and stats
//	socontology -ttl       emit the TBox as Turtle on stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/soccer"
)

func main() {
	fs := flag.NewFlagSet("socontology", flag.ExitOnError)
	ttl := fs.Bool("ttl", false, "emit the TBox as Turtle instead")
	props := fs.Bool("props", false, "also print the property hierarchy")
	fs.Parse(os.Args[1:])

	ont := soccer.BuildOntology()
	if err := ont.Validate(); err != nil {
		cli.Fatal(err)
	}
	if *ttl {
		if err := rdf.WriteTurtle(os.Stdout, ont.TBoxGraph()); err != nil {
			cli.Fatal(err)
		}
		return
	}
	s := ont.Stats()
	fmt.Printf("soccer ontology: %d concepts, %d properties (%d object, %d data), %d restrictions, %d disjoint pairs\n\n",
		s.Classes, s.Properties(), s.ObjectProperties, s.DataProperties, s.Restrictions, s.DisjointPairs)
	fmt.Println("class hierarchy (Fig. 2):")
	fmt.Print(ont.HierarchyString())

	if *props {
		fmt.Println("\nproperty hierarchy:")
		printPropTree(ont)
	}
}

func printPropTree(ont *owl.Ontology) {
	children := map[rdf.Term][]*owl.Property{}
	var roots []*owl.Property
	for _, p := range ont.Properties() {
		if len(p.Parents) == 0 {
			roots = append(roots, p)
			continue
		}
		for _, par := range p.Parents {
			children[par] = append(children[par], p)
		}
	}
	var walk func(p *owl.Property, depth int)
	walk = func(p *owl.Property, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Print("  ")
		}
		kind := "obj"
		if p.Kind == owl.DataProperty {
			kind = "data"
		}
		fmt.Printf("%s (%s)\n", p.IRI.LocalName(), kind)
		for _, c := range children[p.IRI] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
