package main

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirDigest hashes every file in dir in name order — the byte-identity
// fingerprint of a generated corpus directory.
func dirDigest(t *testing.T, dir string) [32]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(e.Name()))
		h.Write(data)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// TestStreamOutByteIdenticalForEqualSeeds pins the documented contract:
// the same -size and -seed always reproduce the identical page files, so
// a corpus directory never needs archiving.
func TestStreamOutByteIdenticalForEqualSeeds(t *testing.T) {
	var out bytes.Buffer
	dir1 := t.TempDir()
	dir2 := t.TempDir()
	dir3 := t.TempDir()
	for _, args := range [][]string{
		{"-size", "2k", "-seed", "7", "-stream-out", dir1},
		{"-size", "2k", "-seed", "7", "-stream-out", dir2},
		{"-size", "2k", "-seed", "8", "-stream-out", dir3},
	} {
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	if dirDigest(t, dir1) != dirDigest(t, dir2) {
		t.Fatalf("same -size/-seed produced different page files")
	}
	if dirDigest(t, dir1) == dirDigest(t, dir3) {
		t.Fatalf("different seeds produced identical page files")
	}
	entries, err := os.ReadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("stream wrote no pages")
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".html") {
			t.Fatalf("unexpected file %q in stream output", e.Name())
		}
	}
	if !strings.Contains(out.String(), "streamed") {
		t.Fatalf("run printed %q, want a streamed summary", out.String())
	}
}

func TestStreamOutValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "2k"}, &out); err == nil {
		t.Fatal("-size without -stream-out did not error")
	}
	if err := run([]string{"-size", "2.5M", "-stream-out", t.TempDir()}, &out); err == nil {
		t.Fatal("bad -size did not error")
	}
}
