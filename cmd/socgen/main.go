// Command socgen simulates the match corpus that substitutes for the
// paper's UEFA/SporX crawl: UEFA-style minute-by-minute narrations plus
// the basic match information, written as a directory of HTML pages that
// cmd/soccrawl can serve and the rest of the pipeline can consume.
//
//	socgen -out pages/            write the default 10-match corpus
//	socgen -matches 100 -seed 7   a larger corpus
//	socgen -show 2                print the first narrations of match 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/soccer"
)

func main() {
	fs := flag.NewFlagSet("socgen", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	out := fs.String("out", "", "directory to write match pages into")
	show := fs.Int("show", -1, "print the narrations of match N and exit")
	fs.Parse(os.Args[1:])

	corpus := soccer.Generate(cf.Config())
	fmt.Println(corpus.Stats())

	if *show >= 0 {
		if *show >= len(corpus.Matches) {
			cli.Fatal(fmt.Errorf("match %d out of range", *show))
		}
		m := corpus.Matches[*show]
		fmt.Printf("%s vs %s, %d-%d at %s (%s)\n", m.Home.Name, m.Away.Name,
			m.HomeScore, m.AwayScore, m.Home.Stadium, m.Date)
		for _, n := range m.Narrations {
			fmt.Printf("%3d' %s\n", n.Minute, n.Text)
		}
		return
	}
	if *out != "" {
		if err := cli.WritePagesDir(*out, corpus); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("wrote %d pages to %s\n", len(corpus.Matches), *out)
	}
}
