// Command socgen simulates the match corpus that substitutes for the
// paper's UEFA/SporX crawl: UEFA-style minute-by-minute narrations plus
// the basic match information, written as a directory of HTML pages that
// cmd/soccrawl can serve and the rest of the pipeline can consume.
//
//	socgen -out pages/            write the default 10-match corpus
//	socgen -matches 100 -seed 7   a larger corpus
//	socgen -show 2                print the first narrations of match 2
//
// -size switches to the streaming scale generator (internal/corpus):
// instead of materializing a corpus in memory it streams matches one at
// a time into -stream-out, so a 1M-document corpus costs the same peak
// memory as a 10k one. Generation is fully seeded — the same -seed (and
// size) always produces byte-identical page files, so a corpus directory
// is reproducible from its command line alone and never needs archiving.
//
//	socgen -size 100k -stream-out pages100k/
//	socgen -size 1M -seed 7 -stream-out pages1m/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/soccer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		cli.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("socgen", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	out := fs.String("out", "", "directory to write match pages into")
	show := fs.Int("show", -1, "print the narrations of match N and exit")
	size := fs.String("size", "", `stream a scale corpus of this document size ("10k", "100k", "1M") instead of the in-memory paper corpus`)
	streamOut := fs.String("stream-out", "", "directory the -size stream writes pages into (required with -size)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *size != "" {
		return runStream(*size, *streamOut, &cf, stdout)
	}

	c := soccer.Generate(cf.Config())
	fmt.Fprintln(stdout, c.Stats())

	if *show >= 0 {
		if *show >= len(c.Matches) {
			return fmt.Errorf("match %d out of range", *show)
		}
		m := c.Matches[*show]
		fmt.Fprintf(stdout, "%s vs %s, %d-%d at %s (%s)\n", m.Home.Name, m.Away.Name,
			m.HomeScore, m.AwayScore, m.Home.Stadium, m.Date)
		for _, n := range m.Narrations {
			fmt.Fprintf(stdout, "%3d' %s\n", n.Minute, n.Text)
		}
		return nil
	}
	if *out != "" {
		if err := cli.WritePagesDir(*out, c); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d pages to %s\n", len(c.Matches), *out)
	}
	return nil
}

// runStream writes a streamed scale corpus: one rendered page file per
// generated match, never holding more than the match in flight. The page
// files carry the generator's sequence-prefixed IDs, so reading the
// directory back sorted by name (cli.ReadPagesDir) replays the exact
// generation order.
func runStream(size, dir string, cf *cli.CorpusFlags, stdout io.Writer) error {
	docs, err := corpus.ParseSize(size)
	if err != nil {
		return err
	}
	if dir == "" {
		return fmt.Errorf("-size needs -stream-out DIR to write into")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := corpus.New(corpus.Spec{
		TargetDocs: docs,
		Seed:       cf.Seed,
		NoCoverage: cf.NoForce,
	})
	for {
		m, err := g.NextMatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		path := filepath.Join(dir, m.ID+".html")
		if err := os.WriteFile(path, []byte(crawler.RenderMatchPage(m)), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "streamed %d pages (%d docs) to %s (seed %d)\n",
		g.Pages(), g.Docs(), dir, cf.Seed)
	return nil
}
