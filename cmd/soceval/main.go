// Command soceval regenerates the paper's evaluation artifacts: the index
// structure examples of Tables 1 and 2, the query set of Table 3, the main
// retrieval comparison of Table 4, the query-expansion comparison of
// Table 5 and the phrasal-expression experiment of Table 6 — plus a SPARQL
// upper-bound check.
//
//	soceval             run everything
//	soceval -table 4    one table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/expansion"
	"repro/internal/index"
	"repro/internal/rdf"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func main() {
	fs := flag.NewFlagSet("soceval", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	table := fs.Int("table", 0, "regenerate only this table (1-6); 0 runs everything")
	metrics := fs.Bool("metrics", false, "also print the extended metrics table (P@5, P@10, MRR, nDCG)")
	ablations := fs.Bool("ablations", false, "also print the ranking-ablation MAP table")
	trec := fs.String("trec", "", "write a TREC run file for FULL_INF to this path")
	fs.Parse(os.Args[1:])

	corpus := soccer.Generate(cf.Config())
	fmt.Printf("corpus: %s\n\n", corpus.Stats())
	b := semindex.NewBuilder()

	want := func(n int) bool { return *table == 0 || *table == n }
	if want(1) {
		printIndexStructure(corpus, b, semindex.FullExt, "Table 1: index structure (FULL_EXT foul document)")
	}
	if want(2) {
		printIndexStructure(corpus, b, semindex.FullInf, "Table 2: additional information in the inferred index (FULL_INF foul document)")
	}
	if want(3) {
		fmt.Println("Table 3: evaluation queries")
		for _, q := range eval.PaperQueries() {
			fmt.Printf("  %-5s %s (query: %s)\n", q.ID, q.Description, q.Keywords)
		}
		fmt.Println()
	}
	if want(4) {
		fmt.Println(eval.Table4(corpus, b).Format())
	}
	if want(5) {
		fmt.Println(eval.Table5(corpus, b, expansion.New()).Format())
	}
	if want(6) {
		fmt.Println(eval.Table6(corpus, b).Format())
	}
	if *table == 0 {
		formalComparison(corpus, b)
	}
	if *metrics {
		printMetricsTable(corpus, b)
	}
	if *ablations {
		printAblationTable(corpus, b)
	}
	if *trec != "" {
		indices := eval.BuildIndices(b, corpus, semindex.FullInf)
		f, err := os.Create(*trec)
		if err != nil {
			cli.Fatal(err)
		}
		if err := eval.WriteTrecRun(f, "fullinf", eval.PaperQueries(), indices[semindex.FullInf], 100); err != nil {
			cli.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote TREC run to %s\n", *trec)
	}
}

// printMetricsTable reports the extended ranked-retrieval measures for
// FULL_INF over the ten queries.
func printMetricsTable(c *soccer.Corpus, b *semindex.Builder) {
	indices := eval.BuildIndices(b, c, semindex.FullInf)
	j := eval.NewJudge(c)
	fmt.Println("\nExtended metrics (FULL_INF)")
	fmt.Printf("%-6s | %6s %6s %6s %6s %6s\n", "Query", "AP", "P@5", "P@10", "MRR", "nDCG")
	fmt.Println(strings.Repeat("-", 48))
	for _, q := range eval.PaperQueries() {
		m := j.FullMetrics(q, indices[semindex.FullInf].Search(q.Keywords, 0))
		fmt.Printf("%-6s | %6.3f %6.3f %6.3f %6.3f %6.3f\n", q.ID, m.AP, m.P5, m.P10, m.RR, m.NDCG)
	}
}

// printAblationTable reports the MAP cost of disabling each ranking design
// choice, the textual companion to the Benchmark ablations.
func printAblationTable(c *soccer.Corpus, b *semindex.Builder) {
	j := eval.NewJudge(c)
	pages := crawler.PagesFromCorpus(c)
	queries := eval.PaperQueries()
	mapOf := func(search func(q string) []semindex.Hit) float64 {
		sum := 0.0
		for _, q := range queries {
			sum += j.AveragePrecision(q, search(q.Keywords)).AP
		}
		return sum / float64(len(queries))
	}

	full := b.Build(semindex.FullInf, pages)
	flat := make([]index.FieldBoost, 0, len(semindex.QueryBoosts))
	for _, fb := range semindex.QueryBoosts {
		flat = append(flat, index.FieldBoost{Field: fb.Field, Boost: 1})
	}
	noStemB := semindex.NewBuilder()
	noStemB.Analyzer = index.StandardAnalyzer{NoStemming: true}
	noStem := noStemB.Build(semindex.FullInf, pages)
	noNarrB := semindex.NewBuilder()
	noNarrB.DisableNarrationField = true
	noNarr := noNarrB.Build(semindex.FullInf, pages)
	bm25B := semindex.NewBuilder()
	bm25 := bm25B.Build(semindex.FullInf, pages)
	bm25.Index.SetSimilarity(index.BM25{})

	fmt.Println("\nRanking ablations (MAP over Q1-Q10, FULL_INF)")
	rows := []struct {
		name string
		m    float64
	}{
		{"full configuration", mapOf(func(q string) []semindex.Hit { return full.Search(q, 0) })},
		{"flat field boosts", mapOf(func(q string) []semindex.Hit { return full.SearchWithBoosts(q, 0, flat) })},
		{"no Porter stemming", mapOf(func(q string) []semindex.Hit { return noStem.Search(q, 0) })},
		{"no narration field", mapOf(func(q string) []semindex.Hit { return noNarr.Search(q, 0) })},
		{"BM25 similarity", mapOf(func(q string) []semindex.Hit { return bm25.Search(q, 0) })},
	}
	for _, r := range rows {
		fmt.Printf("  %-22s %6.1f%%\n", r.name, r.m*100)
	}
}

// formalComparison contrasts the keyword system against the formal-query
// upper bound: every Table 3 need as SPARQL over the inferred knowledge
// base (precision/recall) next to FULL_INF keyword MAP.
func formalComparison(c *soccer.Corpus, b *semindex.Builder) {
	g := mergedGraph(c)
	j := eval.NewJudge(c)
	indices := eval.BuildIndices(b, c, semindex.FullInf)
	paper := map[string]eval.Query{}
	for _, q := range eval.PaperQueries() {
		paper[q.ID] = q
	}
	fmt.Println("Formal-query upper bound vs keyword search (FULL_INF)")
	fmt.Printf("%-6s | %-10s %-10s | %-10s\n", "Query", "SPARQL P", "SPARQL R", "keyword MAP")
	fmt.Println(strings.Repeat("-", 48))
	for _, fq := range eval.FormalQueries() {
		res := j.EvaluateFormal(fq, paper[fq.ID], g)
		kw := j.Evaluate(paper[fq.ID], indices[semindex.FullInf])
		fmt.Printf("%-6s | %9.1f%% %9.1f%% | %9.1f%%\n",
			fq.ID, res.Precision()*100, res.Recall()*100, kw.AP*100)
	}
	fmt.Println("\n(The formal queries themselves illustrate the usability cost: compare")
	fmt.Println("Q-2's three-branch SPARQL union to the keyword query \"barcelona goal\".)")
}

// printIndexStructure renders one foul document field by field, in the
// style of the paper's Tables 1 and 2.
func printIndexStructure(c *soccer.Corpus, b *semindex.Builder, level semindex.Level, title string) {
	indices := eval.BuildIndices(b, c, level)
	si := indices[level]
	for id := 0; id < si.Index.NumDocs(); id++ {
		d := si.Index.Doc(id)
		if d.Get(semindex.MetaKind) != "Foul" || d.Get(semindex.FieldObjPlayer) == "" {
			continue
		}
		fmt.Println(title)
		fields := []string{
			semindex.FieldEvent, semindex.FieldMatch, semindex.FieldTeam1, semindex.FieldTeam2,
			semindex.FieldDate, semindex.FieldMinute, semindex.FieldSubjPlayer, semindex.FieldSubjTeam,
			semindex.FieldObjPlayer, semindex.FieldObjTeam, semindex.FieldNarration,
		}
		if level == semindex.FullInf {
			fields = append(fields, semindex.FieldSubjProp, semindex.FieldObjProp, semindex.FieldFromRules)
		}
		for _, f := range fields {
			v := d.Get(f)
			if v == "" {
				v = "-"
			}
			fmt.Printf("  %-18s %s\n", f, v)
		}
		fmt.Println()
		return
	}
	fmt.Println(title + ": no foul document found")
}

func mergedGraph(c *soccer.Corpus) *rdf.Graph {
	sys := core.New()
	sys.LoadPages(crawler.PagesFromCorpus(c))
	merged := rdf.NewGraph()
	for _, page := range sys.Pages() {
		merged.AddAll(sys.Infer(page).Model.Graph)
	}
	return merged
}
