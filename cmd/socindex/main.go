// Command socindex builds the semantic indices of Section 3.6 over a
// corpus and reports their shape.
//
//	socindex                                 build all five levels, print stats
//	socindex -level FULL_INF                 build one level
//	socindex -level FULL_INF -save idx.bin   persist the built index
//	socindex -level FULL_INF -shards 4       parallel sharded build
//	socindex -level FULL_INF -shards 4 -save idx.bin
//	                                         persist a manifest-anchored snapshot
//	socindex -verify idx.bin                 fsck a saved snapshot: manifest,
//	                                         per-shard checksums, WAL tail
//	socindex -verify idx.bin -mapped         fsck, then prove the snapshot
//	                                         opens memory-mapped and report
//	                                         the O(manifest) open time
//
// -verify exits 0 only when recovery from the snapshot would be
// complete and loss-free; anything else exits 1 with a per-file report.
// The fsck streams checksums — mapped-generation files are audited
// without loading them, and each intact file's line says whether it
// carries the TOC that lets -mapped serve it. The report tells damage
// apart from version skew: a shard file whose envelope or index codec
// is newer than this build (or a checksum-free legacy layout) is
// UNVERIFIABLE — intact as far as this binary can tell, readable after
// an upgrade — while a failed size or checksum check is DAMAGED. The
// mapped layout signals its version through the snapshot envelope, not
// a new manifest key, so an older binary sees exactly that
// UNVERIFIABLE-not-DAMAGED verdict on files it cannot audit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/semindex"
	"repro/internal/shard"
)

func main() {
	fs := flag.NewFlagSet("socindex", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	level := fs.String("level", "", "build only this level (TRAD, BASIC_EXT, FULL_EXT, FULL_INF, PHR_EXP)")
	save := fs.String("save", "", "save the (single) built index to this file")
	shards := fs.Int("shards", 0, "build an N-way sharded engine instead of a monolithic index")
	verify := fs.String("verify", "", "verify a saved sharded snapshot at this base and exit (fsck)")
	mapped := fs.Bool("mapped", false, "with -verify: also open the snapshot memory-mapped and report the open time")
	fs.Parse(os.Args[1:])

	if *verify != "" {
		rep := shard.Fsck(*verify)
		fmt.Print(rep.String())
		if !rep.OK() {
			os.Exit(1)
		}
		if *mapped {
			start := time.Now()
			eng, err := shard.LoadWith(*verify, nil, shard.LoadOptions{Mapped: true})
			if err != nil {
				cli.Fatal(fmt.Errorf("mapped open: %w", err))
			}
			fmt.Printf("mapped open: %d docs across %d shard(s) in %v\n",
				eng.NumDocs(), eng.NumShards(), time.Since(start).Round(time.Microsecond))
			if fb := eng.LoadReport().MappedFallback; len(fb) > 0 {
				fmt.Printf("mapped open: shards %v predate the mapped layout and heap-decoded\n", fb)
			}
			if err := eng.Close(); err != nil {
				cli.Fatal(err)
			}
		}
		return
	}

	pages, _, err := cf.LoadPages()
	if err != nil {
		cli.Fatal(err)
	}
	levels := semindex.Levels
	if *level != "" {
		levels = []semindex.Level{semindex.Level(*level)}
	}
	b := semindex.NewBuilder()
	for _, l := range levels {
		start := time.Now()
		if *shards > 0 {
			eng := shard.Build(b, l, pages, shard.Options{Shards: *shards})
			st := eng.Stats()
			fmt.Printf("%-10s %s, built in %v\n", l, st, time.Since(start).Round(time.Millisecond))
			if *save != "" && len(levels) == 1 {
				if err := eng.Save(*save); err != nil {
					cli.Fatal(err)
				}
				rep := shard.Fsck(*save)
				if !rep.OK() {
					cli.Fatal(fmt.Errorf("snapshot failed verification after save:\n%s", rep))
				}
				var total int64
				for _, f := range rep.Files {
					total += f.Size
				}
				fmt.Printf("saved %d shard file(s) + manifest to %s.* (%d payload bytes, generation %d)\n",
					len(rep.Files), *save, total, rep.Generation)
			}
			continue
		}
		si := b.Build(l, pages)
		st := si.Index.Stats()
		fmt.Printf("%-10s %6d docs, %2d fields, %7d terms, %8d postings, built in %v\n",
			l, st.Docs, st.Fields, st.Terms, st.Postings, time.Since(start).Round(time.Millisecond))
		if *save != "" && len(levels) == 1 {
			f, err := os.Create(*save)
			if err != nil {
				cli.Fatal(err)
			}
			if err := si.Save(f); err != nil {
				cli.Fatal(err)
			}
			if err := f.Close(); err != nil {
				cli.Fatal(err)
			}
			st, _ := os.Stat(*save)
			fmt.Printf("saved to %s (%d bytes)\n", *save, st.Size())
		}
	}
}
