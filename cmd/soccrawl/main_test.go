package main

import (
	"testing"

	"repro/internal/crawler"
	"repro/internal/soccer"
)

// TestRenderBackRoundTrip: pages saved by the crawl path must re-parse to
// the same content, including goals, subs and narrations.
func TestRenderBackRoundTrip(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 3, Seed: 21, NarrationsPerMatch: 50, PaperCoverage: true})
	for _, m := range c.Matches {
		page, err := crawler.ParseMatchPage(crawler.RenderMatchPage(m))
		if err != nil {
			t.Fatal(err)
		}
		again, err := crawler.ParseMatchPage(renderBack(page))
		if err != nil {
			t.Fatalf("re-parse of renderBack: %v", err)
		}
		if again.ID != page.ID || again.HomeScore != page.HomeScore {
			t.Errorf("header drift: %+v vs %+v", again, page)
		}
		if len(again.Narrations) != len(page.Narrations) {
			t.Fatalf("narrations %d vs %d", len(again.Narrations), len(page.Narrations))
		}
		for i := range page.Narrations {
			if again.Narrations[i] != page.Narrations[i] {
				t.Errorf("narration %d drifted", i)
			}
		}
		if len(again.Goals) != len(page.Goals) {
			t.Errorf("goals %d vs %d", len(again.Goals), len(page.Goals))
		}
		for i := range page.Goals {
			if again.Goals[i] != page.Goals[i] {
				t.Errorf("goal %d drifted: %+v vs %+v", i, again.Goals[i], page.Goals[i])
			}
		}
		if len(again.Subs) != len(page.Subs) {
			t.Errorf("subs %d vs %d", len(again.Subs), len(page.Subs))
		}
	}
}
