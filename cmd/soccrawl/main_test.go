package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/resilience"
	"repro/internal/soccer"
)

// TestCrawlUnderFaultsRendersBack is the -faults path in-process: serve
// the corpus behind the fault injector, crawl it with the hardened client
// the way `soccrawl -crawl` does, and verify every recovered page still
// renders back to re-parseable HTML.
func TestCrawlUnderFaultsRendersBack(t *testing.T) {
	corpus := soccer.Generate(soccer.Config{Matches: 3, Seed: 21, NarrationsPerMatch: 50})
	fc, err := crawler.ParseFaultConfig("seed=1,drop=0.2,error=0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(crawler.WithFaults(crawler.NewServer(corpus), fc))
	defer srv.Close()

	c := crawler.New()
	c.Retry.BaseDelay = time.Millisecond
	c.Retry.MaxDelay = 5 * time.Millisecond
	c.Breaker = resilience.NewBreaker(20, 10*time.Millisecond)
	rep, err := c.Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("crawl under faults: %v", err)
	}
	if rep.Degraded() || len(rep.Pages) != len(corpus.Matches) {
		t.Fatalf("report: %s", rep)
	}
	for _, p := range rep.Pages {
		if _, err := crawler.ParseMatchPage(renderBack(p)); err != nil {
			t.Errorf("page %s does not render back: %v", p.ID, err)
		}
	}
}

// TestRenderBackRoundTrip: pages saved by the crawl path must re-parse to
// the same content, including goals, subs and narrations.
func TestRenderBackRoundTrip(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 3, Seed: 21, NarrationsPerMatch: 50, PaperCoverage: true})
	for _, m := range c.Matches {
		page, err := crawler.ParseMatchPage(crawler.RenderMatchPage(m))
		if err != nil {
			t.Fatal(err)
		}
		again, err := crawler.ParseMatchPage(renderBack(page))
		if err != nil {
			t.Fatalf("re-parse of renderBack: %v", err)
		}
		if again.ID != page.ID || again.HomeScore != page.HomeScore {
			t.Errorf("header drift: %+v vs %+v", again, page)
		}
		if len(again.Narrations) != len(page.Narrations) {
			t.Fatalf("narrations %d vs %d", len(again.Narrations), len(page.Narrations))
		}
		for i := range page.Narrations {
			if again.Narrations[i] != page.Narrations[i] {
				t.Errorf("narration %d drifted", i)
			}
		}
		if len(again.Goals) != len(page.Goals) {
			t.Errorf("goals %d vs %d", len(again.Goals), len(page.Goals))
		}
		for i := range page.Goals {
			if again.Goals[i] != page.Goals[i] {
				t.Errorf("goal %d drifted: %+v vs %+v", i, again.Goals[i], page.Goals[i])
			}
		}
		if len(again.Subs) != len(page.Subs) {
			t.Errorf("subs %d vs %d", len(again.Subs), len(page.Subs))
		}
	}
}
