// Command soccrawl exercises the acquisition stage (Section 3.1 step 1) for
// real: it serves a simulated corpus as a small match-report site over
// HTTP, or crawls such a site and saves the fetched pages.
//
//	soccrawl -serve :8080                  serve the default corpus
//	soccrawl -crawl http://localhost:8080 -out pages/
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/crawler"
	"repro/internal/soccer"
)

func main() {
	fs := flag.NewFlagSet("soccrawl", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	serve := fs.String("serve", "", "serve the simulated corpus on this address")
	crawl := fs.String("crawl", "", "crawl a served site at this base URL")
	out := fs.String("out", "pages", "directory to save crawled pages into")
	timeout := fs.Duration("timeout", 30*time.Second, "crawl timeout")
	fs.Parse(os.Args[1:])

	switch {
	case *serve != "":
		corpus := soccer.Generate(cf.Config())
		fmt.Printf("serving %s on %s (index at /matches)\n", corpus.Stats(), *serve)
		if err := http.ListenAndServe(*serve, crawler.NewServer(corpus)); err != nil {
			cli.Fatal(err)
		}
	case *crawl != "":
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		pages, err := (&crawler.Crawler{}).Crawl(ctx, *crawl)
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			cli.Fatal(err)
		}
		for _, p := range pages {
			// Re-render from the parsed form: what we save is exactly what
			// the rest of the pipeline can re-read.
			path := filepath.Join(*out, p.ID+".html")
			if err := os.WriteFile(path, []byte(renderBack(p)), 0o644); err != nil {
				cli.Fatal(err)
			}
		}
		fmt.Printf("crawled %d pages into %s\n", len(pages), *out)
	default:
		fmt.Fprintln(os.Stderr, "usage: soccrawl -serve :8080 | -crawl http://host:8080 [-out dir]")
		os.Exit(2)
	}
}

// renderBack re-serializes a parsed page through the simulator-independent
// path: rebuild a minimal soccer.Match view and render it.
func renderBack(p *crawler.MatchPage) string {
	toTeam := func(name string) *soccer.Team {
		t := &soccer.Team{Name: name, Coach: p.Coaches[name], Stadium: p.Stadium}
		for _, pl := range p.Lineups[name] {
			t.Players = append(t.Players, &soccer.Player{
				Name: pl.Name, Short: pl.Short, Position: pl.Position, Shirt: pl.Shirt,
			})
		}
		return t
	}
	m := &soccer.Match{
		ID: p.ID, Home: toTeam(p.Home), Away: toTeam(p.Away),
		Date: p.Date, Referee: p.Referee,
		HomeScore: p.HomeScore, AwayScore: p.AwayScore,
	}
	find := func(t *soccer.Team, short string) *soccer.Player {
		if pl := t.FindPlayer(short); pl != nil {
			return pl
		}
		return &soccer.Player{Name: short, Short: short}
	}
	for _, g := range p.Goals {
		team := m.Home
		if g.Team == p.Away {
			team = m.Away
		}
		scorerTeam := team
		if g.OwnGoal {
			scorerTeam = m.OpponentOf(team)
		}
		m.Goals = append(m.Goals, soccer.GoalInfo{
			Minute: g.Minute, Scorer: find(scorerTeam, g.Scorer), Team: team, OwnGoal: g.OwnGoal,
		})
	}
	for _, s := range p.Subs {
		team := m.Home
		if s.Team == p.Away {
			team = m.Away
		}
		m.Substitutions = append(m.Substitutions, soccer.SubInfo{
			Minute: s.Minute, Off: find(team, s.Off), On: find(team, s.On), Team: team,
		})
	}
	for _, n := range p.Narrations {
		m.Narrations = append(m.Narrations, soccer.Narration{Minute: n.Minute, Text: n.Text})
	}
	return crawler.RenderMatchPage(m)
}
