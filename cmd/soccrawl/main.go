// Command soccrawl exercises the acquisition stage (Section 3.1 step 1) for
// real: it serves a simulated corpus as a small match-report site over
// HTTP — optionally behind a deterministic fault-injection layer — or
// crawls such a site with the hardened resilient client and saves the
// fetched pages.
//
//	soccrawl -serve :8080                       serve the default corpus
//	soccrawl -serve :8080 -faults seed=1,drop=0.2,error=0.1,latency=50ms
//	                                            serve it hostile: dropped
//	                                            connections, 500s, latency
//	soccrawl -crawl http://localhost:8080 -out pages/
//	soccrawl -crawl http://localhost:8080 -retries 5 -rate 50 -strict
//	soccrawl -crawl http://localhost:8080 -metrics-out crawl-metrics.prom
//	                                            dump retry/breaker counters
//	                                            after the crawl
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/crawler"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/soccer"
)

func main() {
	fs := flag.NewFlagSet("soccrawl", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	serve := fs.String("serve", "", "serve the simulated corpus on this address")
	faults := fs.String("faults", "", `inject faults while serving: "seed=1,drop=0.2,error=0.1,truncate=0.05,latency=50ms"`)
	crawl := fs.String("crawl", "", "crawl a served site at this base URL")
	out := fs.String("out", "pages", "directory to save crawled pages into")
	timeout := fs.Duration("timeout", 30*time.Second, "crawl timeout")
	retries := fs.Int("retries", 3, "retry budget per URL (0 = no retries)")
	rate := fs.Float64("rate", 0, "max requests/second per host (0 = unlimited)")
	strict := fs.Bool("strict", false, "abort the crawl on the first unrecoverable page")
	metricsOut := fs.String("metrics-out", "", "after a crawl, dump the process metrics (Prometheus text) to this file (- = stderr)")
	fs.Parse(os.Args[1:])

	switch {
	case *serve != "":
		corpus := soccer.Generate(cf.Config())
		handler := crawler.NewServer(corpus)
		fc, err := crawler.ParseFaultConfig(*faults)
		if err != nil {
			cli.Fatal(err)
		}
		if fc.Enabled() {
			handler = crawler.WithFaults(handler, fc)
			fmt.Printf("injecting faults: %s\n", fc)
		}
		fmt.Printf("serving %s on %s (index at /matches)\n", corpus.Stats(), *serve)
		if err := http.ListenAndServe(*serve, handler); err != nil {
			cli.Fatal(err)
		}
	case *crawl != "":
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		c := crawler.New()
		c.Retry.MaxRetries = *retries
		c.Strict = *strict
		if *rate > 0 {
			c.Limiter = resilience.NewLimiter(*rate, 4)
		}
		rep, err := c.Crawl(ctx, *crawl)
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			cli.Fatal(err)
		}
		for _, p := range rep.Pages {
			// Re-render from the parsed form: what we save is exactly what
			// the rest of the pipeline can re-read.
			path := filepath.Join(*out, p.ID+".html")
			if err := os.WriteFile(path, []byte(renderBack(p)), 0o644); err != nil {
				cli.Fatal(err)
			}
		}
		fmt.Printf("crawled %s into %s\n", rep, *out)
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "lost: %s\n", f)
		}
		if *metricsOut != "" {
			if err := dumpMetrics(*metricsOut); err != nil {
				cli.Fatal(err)
			}
		}
		if rep.Degraded() {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: soccrawl -serve :8080 [-faults ...] | -crawl http://host:8080 [-out dir] [-retries n] [-strict]")
		os.Exit(2)
	}
}

// dumpMetrics writes the default registry — a one-shot crawl has no
// /metrics endpoint to scrape, so the retry/breaker counters land in a
// file (or on stderr with "-") for post-mortem inspection.
func dumpMetrics(path string) error {
	if path == "-" {
		return obs.Default.WritePrometheus(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// renderBack re-serializes a parsed page through the simulator-independent
// path: rebuild a minimal soccer.Match view and render it.
func renderBack(p *crawler.MatchPage) string {
	toTeam := func(name string) *soccer.Team {
		t := &soccer.Team{Name: name, Coach: p.Coaches[name], Stadium: p.Stadium}
		for _, pl := range p.Lineups[name] {
			t.Players = append(t.Players, &soccer.Player{
				Name: pl.Name, Short: pl.Short, Position: pl.Position, Shirt: pl.Shirt,
			})
		}
		return t
	}
	m := &soccer.Match{
		ID: p.ID, Home: toTeam(p.Home), Away: toTeam(p.Away),
		Date: p.Date, Referee: p.Referee,
		HomeScore: p.HomeScore, AwayScore: p.AwayScore,
	}
	find := func(t *soccer.Team, short string) *soccer.Player {
		if pl := t.FindPlayer(short); pl != nil {
			return pl
		}
		return &soccer.Player{Name: short, Short: short}
	}
	for _, g := range p.Goals {
		team := m.Home
		if g.Team == p.Away {
			team = m.Away
		}
		scorerTeam := team
		if g.OwnGoal {
			scorerTeam = m.OpponentOf(team)
		}
		m.Goals = append(m.Goals, soccer.GoalInfo{
			Minute: g.Minute, Scorer: find(scorerTeam, g.Scorer), Team: team, OwnGoal: g.OwnGoal,
		})
	}
	for _, s := range p.Subs {
		team := m.Home
		if s.Team == p.Away {
			team = m.Away
		}
		m.Substitutions = append(m.Substitutions, soccer.SubInfo{
			Minute: s.Minute, Off: find(team, s.Off), On: find(team, s.On), Team: team,
		})
	}
	for _, n := range p.Narrations {
		m.Narrations = append(m.Narrations, soccer.Narration{Minute: n.Minute, Text: n.Text})
	}
	return crawler.RenderMatchPage(m)
}
