// The /v1 API is the versioned JSON contract: a typed envelope carrying
// the hits, the degradation report, the trace ID, the cache status and
// server-side timing. The unversioned /search and /related endpoints
// remain as frozen aliases with their original output; new fields land
// here without breaking them. The full contract is documented in API.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/crawler"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
	"repro/internal/shard"
)

// v1MaxLimit is the documented ceiling for the limit parameter. Values
// above it are clamped, not rejected — a client asking for "everything"
// gets the most the API serves.
const v1MaxLimit = 1000

// v1SearchResponse is the /v1/search envelope.
type v1SearchResponse struct {
	Query string `json:"query"`
	// TraceID echoes the X-Trace-ID header so logs join on the body alone.
	TraceID string `json:"traceId"`
	// TookUs is the server-side wall time in microseconds.
	TookUs int64 `json:"tookUs"`
	// Cache is the query-cache outcome: hit, miss, coalesced or bypass.
	Cache string `json:"cache"`
	// Total counts the full result set; Hits carries at most limit of them.
	Total      int              `json:"total"`
	Hits       []searchResult   `json:"hits"`
	Facets     []semindex.Facet `json:"facets,omitempty"`
	DidYouMean string           `json:"didYouMean,omitempty"`
	// Degraded is present only when a shard missed its deadline.
	Degraded *v1Degraded `json:"degraded,omitempty"`
}

type v1Degraded struct {
	MissingShards []int `json:"missingShards"`
}

// v1RelatedResponse is the /v1/related envelope.
type v1RelatedResponse struct {
	Doc     int            `json:"doc"`
	TraceID string         `json:"traceId"`
	TookUs  int64          `json:"tookUs"`
	Total   int            `json:"total"`
	Hits    []searchResult `json:"hits"`
}

// v1SuggestResponse is the /v1/suggest envelope. DidYouMean is empty
// when every query token is in the vocabulary.
type v1SuggestResponse struct {
	Query      string `json:"query"`
	TraceID    string `json:"traceId"`
	DidYouMean string `json:"didYouMean"`
}

// v1IngestResponse acknowledges one ingested page — the FROZEN legacy
// shape, returned only for the original single-page request body (a
// bare crawler.MatchPage object). New fields land on v1IngestBatchResponse;
// this alias never changes.
type v1IngestResponse struct {
	ID      string `json:"id"`
	TraceID string `json:"traceId"`
	// Docs is the engine's live document count after the ingest.
	Docs int `json:"docs"`
}

// v1IngestBatchRequest is the batched /v1/ingest body: a JSON object
// carrying the pages plus the batch's durability and atomicity knobs.
// The endpoint tells the two body shapes apart by the top-level "pages"
// key, so the legacy single-page body keeps working unchanged.
type v1IngestBatchRequest struct {
	Pages []*crawler.MatchPage `json:"pages"`
	// Durability: "" or "default" follows the WAL's sync policy, "sync"
	// forces an fsync before the 200, "async" acknowledges once the OS
	// holds the bytes.
	Durability string `json:"durability,omitempty"`
	// Atomic (default true) logs the batch as one WAL record: recovery
	// replays all of it or none. False logs per page; a mid-batch
	// failure commits a prefix, reported in the response.
	Atomic *bool `json:"atomic,omitempty"`
}

// v1IngestBatchResponse acknowledges one committed batch.
type v1IngestBatchResponse struct {
	// SegmentID identifies the in-memory segment the batch became (0 for
	// an empty batch).
	SegmentID uint64 `json:"segmentId"`
	TraceID   string `json:"traceId"`
	// TookUs is the server-side wall time in microseconds.
	TookUs int64 `json:"tookUs"`
	// Durability is the acknowledgement level actually delivered:
	// "none" (no WAL), "logged", "synced" or "buffered".
	Durability string `json:"durability"`
	// Pages and Docs count what committed; PerShard splits Docs by shard.
	Pages    int   `json:"pages"`
	Docs     int   `json:"docs"`
	PerShard []int `json:"perShard"`
	// Tombstones counts previously-live documents the batch replaced
	// (pages re-ingested under an existing ID).
	Tombstones int `json:"tombstones"`
	// TotalDocs is the engine's live document count after the batch.
	TotalDocs int `json:"totalDocs"`
}

// v1MaxIngestBytes bounds a legacy single-page ingest body (4 MiB — an
// order of magnitude above any real match page); batched bodies get
// v1MaxIngestBatchBytes.
const (
	v1MaxIngestBytes      = 4 << 20
	v1MaxIngestBatchBytes = 32 << 20
)

// ingester is the incremental-ingest surface: the sharded engine
// implements it, the monolithic index does not.
type ingester interface {
	Ingest(ctx context.Context, pages []*crawler.MatchPage, opts shard.IngestOptions) (shard.IngestResult, error)
	NumDocs() int
}

// parseV1Limit validates the limit parameter: absent defaults to 10,
// non-numeric or non-positive is a 400, anything above v1MaxLimit clamps.
func parseV1Limit(r *http.Request) (int, error) {
	s := r.URL.Query().Get("limit")
	if s == "" {
		return 10, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return 0, fmt.Errorf(`parameter "limit" must be a positive integer (values above %d are clamped)`, v1MaxLimit)
	}
	if v > v1MaxLimit {
		v = v1MaxLimit
	}
	return v, nil
}

// v1Results converts engine hits to the wire shape, snippeting the
// narration against the query when one is given.
func v1Results(hits []semindex.Hit, q string, hl index.Highlighter) []searchResult {
	out := make([]searchResult, 0, len(hits))
	for i, h := range hits {
		res := searchResult{
			Rank:    i + 1,
			Score:   h.Score,
			Kind:    h.Meta(semindex.MetaKind),
			Match:   h.Meta(semindex.MetaMatchID),
			Minute:  h.Meta(semindex.MetaMinute),
			Subject: h.Meta(semindex.MetaSubject),
			Object:  h.Meta(semindex.MetaObject),
		}
		if narr := h.Doc.Get(semindex.FieldNarration); narr != "" {
			if q != "" {
				res.Snippet = hl.Snippet(narr, q)
			} else {
				res.Snippet = narr
			}
		}
		out = append(out, res)
	}
	return out
}

func writeV1(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ingestLegacy serves the original single-page /v1/ingest body — a bare
// crawler.MatchPage object — with its original response shape, frozen.
func (h *Handler) ingestLegacy(w http.ResponseWriter, r *http.Request, ing ingester, body []byte) {
	if len(body) > v1MaxIngestBytes {
		http.Error(w, fmt.Sprintf("bad page: body exceeds %d bytes", v1MaxIngestBytes), http.StatusBadRequest)
		return
	}
	var page crawler.MatchPage
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&page); err != nil {
		http.Error(w, fmt.Sprintf("bad page: %v", err), http.StatusBadRequest)
		return
	}
	if page.ID == "" {
		http.Error(w, "bad page: missing id", http.StatusBadRequest)
		return
	}
	if _, err := ing.Ingest(r.Context(), []*crawler.MatchPage{&page}, shard.IngestOptions{}); err != nil {
		http.Error(w, fmt.Sprintf("ingest failed: %v", err), http.StatusInternalServerError)
		return
	}
	resp := v1IngestResponse{ID: page.ID, Docs: ing.NumDocs()}
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		resp.TraceID = tr.ID
	}
	writeV1(w, resp)
}

// registerV1 mounts the versioned API on the handler's mux.
func (h *Handler) registerV1(hl index.Highlighter) {
	h.mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
			return
		}
		limit, err := parseV1Limit(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		noCache := r.URL.Query().Get("nocache") == "1"
		start := time.Now()
		// Limit 0 fetches the full set: facets and Total need it, and it
		// keeps one cache entry per query across all client limits — the
		// limit itself is applied when slicing the response.
		res, err := h.search(r.Context(), s, q, 0, noCache)
		if err != nil {
			http.Error(w, "search timed out", http.StatusGatewayTimeout)
			return
		}
		all := res.Hits
		hits := all
		if len(hits) > limit {
			hits = hits[:limit]
		}
		resp := v1SearchResponse{
			Query:      q,
			TookUs:     time.Since(start).Microseconds(),
			Cache:      string(res.Cache),
			Total:      len(all),
			Hits:       v1Results(hits, q, hl),
			Facets:     semindex.Facets(all, semindex.MetaKind),
			DidYouMean: s.Suggest(q),
		}
		if tr := obs.TraceFrom(r.Context()); tr != nil {
			resp.TraceID = tr.ID
		}
		if res.Report.Degraded {
			resp.Degraded = &v1Degraded{MissingShards: res.Report.Missing}
			w.Header().Set("X-Search-Degraded", "true")
			w.Header().Set("X-Search-Missing-Shards", intsCSV(res.Report.Missing))
		}
		w.Header().Set("X-Cache", string(res.Cache))
		writeV1(w, resp)
	})

	h.mux.HandleFunc("/v1/related", func(w http.ResponseWriter, r *http.Request) {
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		id, err := strconv.Atoi(r.URL.Query().Get("doc"))
		if err != nil || id < 0 {
			http.Error(w, `parameter "doc" must be a document id`, http.StatusBadRequest)
			return
		}
		limit, err := parseV1Limit(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		hits := s.Related(id, limit)
		resp := v1RelatedResponse{
			Doc:    id,
			TookUs: time.Since(start).Microseconds(),
			Total:  len(hits),
			Hits:   v1Results(hits, "", hl),
		}
		if tr := obs.TraceFrom(r.Context()); tr != nil {
			resp.TraceID = tr.ID
		}
		writeV1(w, resp)
	})

	h.mux.HandleFunc("/v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `POST a batch {"pages":[...]} or a single crawler.MatchPage JSON body`, http.StatusMethodNotAllowed)
			return
		}
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		ing, ok := s.(ingester)
		if !ok {
			http.Error(w, "this index shape does not ingest incrementally (serve a sharded engine)", http.StatusNotImplemented)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, v1MaxIngestBatchBytes))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad body: %v", err), http.StatusBadRequest)
			return
		}
		// The two body shapes share one endpoint: a top-level "pages" key
		// selects the batch envelope, anything else is the frozen legacy
		// single-page form.
		var probe struct {
			Pages json.RawMessage `json:"pages"`
		}
		_ = json.Unmarshal(body, &probe)
		if probe.Pages == nil {
			h.ingestLegacy(w, r, ing, body)
			return
		}

		var req v1IngestBatchRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
			return
		}
		if len(req.Pages) == 0 {
			http.Error(w, "bad batch: empty pages", http.StatusBadRequest)
			return
		}
		opts := shard.IngestOptions{}
		switch req.Durability {
		case "", "default":
		case "sync":
			opts.Durability = shard.DurSync
		case "async":
			opts.Durability = shard.DurAsync
		default:
			http.Error(w, `bad batch: durability must be "default", "sync" or "async"`, http.StatusBadRequest)
			return
		}
		if req.Atomic != nil && !*req.Atomic {
			opts.Atomicity = shard.PerPage
		}
		for i, page := range req.Pages {
			if page == nil || page.ID == "" {
				http.Error(w, fmt.Sprintf("bad batch: page %d missing id", i), http.StatusBadRequest)
				return
			}
		}
		start := time.Now()
		// Ingest returns only after the batch is WAL-durable at the level
		// asked for, so this response is the acknowledgement the
		// crash-recovery guarantee is stated over.
		res, err := ing.Ingest(r.Context(), req.Pages, opts)
		if err != nil && res.Pages == 0 {
			http.Error(w, fmt.Sprintf("ingest failed: %v", err), http.StatusInternalServerError)
			return
		}
		resp := v1IngestBatchResponse{
			SegmentID:  res.Segment,
			TookUs:     time.Since(start).Microseconds(),
			Durability: res.Durability,
			Pages:      res.Pages,
			Docs:       res.Docs,
			PerShard:   res.PerShard,
			Tombstones: res.Tombstones,
			TotalDocs:  ing.NumDocs(),
		}
		if tr := obs.TraceFrom(r.Context()); tr != nil {
			resp.TraceID = tr.ID
		}
		if err != nil {
			// PerPage prefix commit: part of the batch is in. 207 keeps the
			// committed prefix visible while flagging the loss.
			w.Header().Set("X-Ingest-Partial", "true")
			w.WriteHeader(http.StatusMultiStatus)
		}
		writeV1(w, resp)
	})

	h.mux.HandleFunc("/v1/suggest", func(w http.ResponseWriter, r *http.Request) {
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
			return
		}
		resp := v1SuggestResponse{Query: q, DidYouMean: s.Suggest(q)}
		if tr := obs.TraceFrom(r.Context()); tr != nil {
			resp.TraceID = tr.ID
		}
		writeV1(w, resp)
	})
}
