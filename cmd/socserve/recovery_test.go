package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
	"repro/internal/wal"
)

// recoveryPages is a small crawled corpus for the persistence-facing
// handler tests.
func recoveryPages(t *testing.T) []*crawler.MatchPage {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 3, Seed: 42, NarrationsPerMatch: 20, PaperCoverage: true})
	return crawler.PagesFromCorpus(c)
}

// TestReadyzDegraded corrupts one shard file of a saved snapshot and
// asserts the handler's readiness endpoint names the quarantined shard:
// still 200 — the engine serves — but visibly degraded.
func TestReadyzDegraded(t *testing.T) {
	pages := recoveryPages(t)
	base := filepath.Join(t.TempDir(), "idx.bin")
	eng := shard.Build(nil, semindex.FullInf, pages, shard.Options{Shards: 2})
	if err := eng.Save(base); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(base + ".g*.shard*")
	if err != nil || len(names) == 0 {
		t.Fatalf("no shard files saved: %v", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	degraded, err := shard.Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(degraded))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("degraded readyz status %d, want 200 (the engine still serves)", resp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded") || !strings.Contains(string(body), "quarantined") {
		t.Errorf("degraded readyz body %q does not name the loss", body)
	}
	if resp.Header.Get("X-Search-Degraded") != "true" {
		t.Error("degraded readyz missing X-Search-Degraded header")
	}

	// A search against the degraded engine carries the same surface.
	sresp, err := srv.Client().Get(srv.URL + "/v1/search?q=goal")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.Header.Get("X-Search-Degraded") != "true" {
		t.Error("degraded search answer missing X-Search-Degraded header")
	}
}

// TestReadyzHealthyEngine guards the inverse: a cleanly loaded engine
// reports plain readiness.
func TestReadyzHealthyEngine(t *testing.T) {
	pages := recoveryPages(t)
	eng := shard.Build(nil, semindex.FullInf, pages, shard.Options{Shards: 2})
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf("ready (%d docs)", eng.NumDocs())
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != want {
		t.Errorf("healthy readyz: status %d body %q, want %q", resp.StatusCode, body, want)
	}
}

// TestV1IngestDurableAcrossRestart drives the WAL path end to end over
// HTTP: snapshot two pages, ingest the third through POST /v1/ingest
// with a WAL attached, kill the handle without any checkpoint, and
// require a reload to recover the ingested page from the log alone.
func TestV1IngestDurableAcrossRestart(t *testing.T) {
	pages := recoveryPages(t)
	base := filepath.Join(t.TempDir(), "idx.bin")
	eng := shard.Build(nil, semindex.FullInf, pages[:2], shard.Options{Shards: 2})
	if err := eng.Save(base); err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachWAL(base, wal.Options{Policy: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	body, err := json.Marshal(pages[2])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack v1IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || ack.ID != pages[2].ID {
		t.Fatalf("ingest ack: status %d, %+v", resp.StatusCode, ack)
	}
	if ack.Docs <= shard.Build(nil, semindex.FullInf, pages[:2], shard.Options{Shards: 2}).NumDocs() {
		t.Fatalf("ingest did not grow the index: %d docs", ack.Docs)
	}

	// Crash: no Save, no CloseWAL sync beyond the per-append fsync.
	back, err := shard.Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := back.LoadReport()
	if rep.WALReplayed != 1 {
		t.Fatalf("recovery replayed %d records, want the 1 acknowledged ingest", rep.WALReplayed)
	}
	want := shard.Build(nil, semindex.FullInf, pages[:3], shard.Options{Shards: 2})
	if back.NumDocs() != want.NumDocs() {
		t.Fatalf("recovered %d docs, want %d", back.NumDocs(), want.NumDocs())
	}
}

// TestV1IngestValidation covers the endpoint's rejection surface.
func TestV1IngestValidation(t *testing.T) {
	pages := recoveryPages(t)
	eng := shard.Build(nil, semindex.FullInf, pages, shard.Options{Shards: 2})
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	post := func(body string) int {
		resp, err := srv.Client().Post(srv.URL+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", code)
	}
	if code := post(`{"Home":"A"}`); code != http.StatusBadRequest {
		t.Errorf("missing id: status %d", code)
	}
	if code := post(`{"ID":"x","Bogus":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest: status %d", resp.StatusCode)
	}

	// The monolithic index cannot ingest incrementally.
	mono := semindex.NewBuilder().Build(semindex.FullInf, pages)
	msrv := httptest.NewServer(NewHandler(mono))
	defer msrv.Close()
	mresp, err := msrv.Client().Post(msrv.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte(`{"ID":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusNotImplemented {
		t.Errorf("monolith ingest: status %d", mresp.StatusCode)
	}
}
