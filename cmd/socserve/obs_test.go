package main

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/obs"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
)

// TestMetricsEndpoint is the /metrics acceptance test: after one sharded
// search, the default registry exposes per-shard search-latency
// histograms, the engine and handler counters, and the crawler's
// retry/breaker families (at zero — they register at package init).
func TestMetricsEndpoint(t *testing.T) {
	srv := testHandlerSharded(t)
	if resp, err := srv.Client().Get(srv.URL + "/search?q=goal&n=5"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`shard_search_seconds_bucket{shard="0"`,
		`shard_search_seconds_bucket{shard="1"`,
		`shard_search_seconds_bucket{shard="2"`,
		"# TYPE shard_engine_searches_total counter",
		"# TYPE shard_engine_degraded_total counter",
		"# TYPE socserve_requests_total counter",
		"# TYPE socserve_inflight_requests gauge",
		"# TYPE crawler_fetch_retries_total counter",
		"# TYPE crawler_breaker_open_total counter",
		"# TYPE semindex_queries_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceIDHeader: every response carries a unique X-Trace-ID.
func TestTraceIDHeader(t *testing.T) {
	srv := testHandler(t)
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/search?q=goal")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Trace-ID")
		if id == "" {
			t.Fatal("no X-Trace-ID header")
		}
		if ids[id] {
			t.Fatalf("trace ID %q repeated", id)
		}
		ids[id] = true
	}
}

// TestAccessLog: the access log gets one line per request carrying the
// trace ID the client saw, the path and the status.
func TestAccessLog(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 42, NarrationsPerMatch: 30})
	h := NewHandler(semindex.NewBuilder().Build(semindex.Trad, crawler.PagesFromCorpus(c)))
	var log syncBuilder
	h.AccessLog = &log
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/search?q=goal&n=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The log line lands after the response is flushed; wait for it.
	line := log.wait(t, "200")
	for _, want := range []string{resp.Header.Get("X-Trace-ID"), "GET", "/search?q=goal&n=3", " 200 "} {
		if !strings.Contains(line, want) {
			t.Errorf("access log %q missing %q", line, want)
		}
	}
}

// TestSlowQueryLog: with a floor-level threshold every sharded search is
// "slow" and the log line carries the per-shard spans and the merge.
func TestSlowQueryLog(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	eng := shard.Build(nil, semindex.FullInf, crawler.PagesFromCorpus(c), shard.Options{Shards: 2})
	h := NewHandler(eng)
	var log syncBuilder
	h.Slow = &obs.SlowLog{Threshold: time.Nanosecond, Out: &log}
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/search?q=goal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := log.wait(t, "merge=")
	for _, want := range []string{"slow query:", "/search", "shard0=", "shard1=", "merge="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log %q missing %q", line, want)
		}
	}
}

// syncBuilder is a mutex-guarded log sink: the handler writes its log
// line after the response is flushed to the client, so tests must both
// synchronize and wait.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// wait blocks until the log contains marker (or 2s pass) and returns it.
func (s *syncBuilder) wait(t *testing.T, marker string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := s.String(); strings.Contains(got, marker) || time.Now().After(deadline) {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPprofGated: the profiling endpoints 404 by default and come alive
// only through EnablePprof — the -pprof flag's wiring.
func TestPprofGated(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 42, NarrationsPerMatch: 30})
	h := NewHandler(semindex.NewBuilder().Build(semindex.Trad, crawler.PagesFromCorpus(c)))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("ungated pprof status %d, want 404", resp.StatusCode)
	}

	h.EnablePprof()
	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("gated-on pprof status %d, want 200", resp.StatusCode)
	}
}

// TestDegradedSearchCounter: a degraded answer moves the service-level
// degraded counter on an isolated registry.
func TestDegradedSearchCounter(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	eng := shard.Build(nil, semindex.FullInf, crawler.PagesFromCorpus(c), shard.Options{Shards: 3})
	eng.SetStall(func(i int) {
		if i == 1 {
			time.Sleep(2 * time.Second)
		}
	})
	h := NewHandler(eng)
	h.ShardTimeout = 30 * time.Millisecond
	r := obs.NewRegistry()
	h.SetMetrics(r)
	eng.SetMetrics(r)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/search?q=goal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The middleware counts after the response is flushed; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for r.Counter(metricRequests).Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := r.Counter(metricDegraded).Value(); got != 1 {
		t.Errorf("socserve degraded counter = %d, want 1", got)
	}
	if got := r.Counter("shard_engine_degraded_total").Value(); got != 1 {
		t.Errorf("engine degraded counter = %d, want 1", got)
	}
	if got := r.Counter(metricRequests).Value(); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
}
