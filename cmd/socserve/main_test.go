package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
)

func testHandler(t testing.TB) *httptest.Server {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	srv := httptest.NewServer(NewHandler(si))
	t.Cleanup(srv.Close)
	return srv
}

func TestSearchEndpointJSON(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/search?q=punishment&n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Query != "punishment" || sr.Total == 0 {
		t.Errorf("response = %+v", sr)
	}
	for _, r := range sr.Results {
		if !strings.Contains(r.Kind, "Card") {
			t.Errorf("punishment returned kind %q", r.Kind)
		}
	}
}

func TestSearchEndpointValidation(t *testing.T) {
	srv := testHandler(t)
	for _, path := range []string{"/search", "/search?q=goal&n=0", "/search?q=goal&n=9999", "/search?q=goal&n=abc"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTMLPage(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/?q=messi+goal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "<b>") {
		t.Errorf("no highlighted results in page:\n%s", body)
	}
	if !strings.Contains(body, `value="messi goal"`) {
		t.Error("search box does not echo the query")
	}
	// Escaping: a hostile query must not inject markup.
	resp2, err := srv.Client().Get(srv.URL + `/?q=%3Cscript%3E`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n2, _ := resp2.Body.Read(buf)
	if strings.Contains(string(buf[:n2]), "<script>") {
		t.Error("query not escaped in page")
	}
}

func TestHealthz(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestFacetsInSearchResponse(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/search?q=punishment")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Facets) == 0 {
		t.Error("no facets in response")
	}
}

func TestRelatedEndpoint(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/related?doc=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []searchResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Bad input validation.
	bad, err := srv.Client().Get(srv.URL + "/related?doc=x")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Errorf("bad doc param status %d", bad.StatusCode)
	}
}

func TestDidYouMean(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/search?q=mesi")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sr.DidYouMean, "messi") {
		t.Errorf("didYouMean = %q", sr.DidYouMean)
	}
}

// testHandlerSharded serves the same corpus as testHandler from a 3-shard
// scatter-gather engine.
func testHandlerSharded(t testing.TB) *httptest.Server {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	eng := shard.Build(nil, semindex.FullInf, crawler.PagesFromCorpus(c), shard.Options{Shards: 3})
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(srv.Close)
	return srv
}

// TestShardedHandlerMatchesMonolith: the same query against the sharded
// and monolithic handlers must produce identical result lists — the
// serving layer inherits the engine's ranking-equivalence guarantee.
func TestShardedHandlerMatchesMonolith(t *testing.T) {
	mono := testHandler(t)
	sharded := testHandlerSharded(t)
	for _, q := range []string{"punishment", "messi+barcelona+goal", "yellow+card"} {
		var responses [2]searchResponse
		for i, srv := range []*httptest.Server{mono, sharded} {
			resp, err := srv.Client().Get(srv.URL + "/search?q=" + q + "&n=10")
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("%s: status %d", q, resp.StatusCode)
			}
			err = json.NewDecoder(resp.Body).Decode(&responses[i])
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
		}
		if responses[1].Total == 0 {
			t.Fatalf("%s: sharded handler returned nothing", q)
		}
		if len(responses[0].Results) != len(responses[1].Results) {
			t.Fatalf("%s: %d vs %d results", q, len(responses[0].Results), len(responses[1].Results))
		}
		for r := range responses[0].Results {
			if responses[0].Results[r] != responses[1].Results[r] {
				t.Errorf("%s rank %d: monolith %+v, sharded %+v",
					q, r+1, responses[0].Results[r], responses[1].Results[r])
			}
		}
	}
}

// TestShardedHandlerValidation: the n clamp guards the sharded path too.
func TestShardedHandlerValidation(t *testing.T) {
	srv := testHandlerSharded(t)
	for _, path := range []string{"/search", "/search?q=goal&n=-3", "/search?q=goal&n=101", "/search?q=goal&n=abc"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestReadiness: the service is live from the first byte but not ready —
// and serves no queries — until a searcher is installed.
func TestReadiness(t *testing.T) {
	h := NewHandler(nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != 200 {
		t.Errorf("healthz while loading = %d, want 200 (liveness is not readiness)", got)
	}
	for _, path := range []string{"/readyz", "/search?q=goal", "/related?doc=0", "/"} {
		if got := get(path); got != http.StatusServiceUnavailable {
			t.Errorf("%s while loading = %d, want 503", path, got)
		}
	}

	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 42, NarrationsPerMatch: 30})
	h.SetSearcher(semindex.NewBuilder().Build(semindex.Trad, crawler.PagesFromCorpus(c)))
	if got := get("/readyz"); got != 200 {
		t.Errorf("readyz after SetSearcher = %d", got)
	}
	if got := get("/search?q=goal"); got != 200 {
		t.Errorf("search after SetSearcher = %d", got)
	}
}

// TestDegradedShardServing is the serving half of the degraded-search
// acceptance test: with one shard stalled past the per-shard deadline the
// endpoint still answers in budget, merges the live shards, and marks the
// response degraded in both the JSON body and the response headers.
func TestDegradedShardServing(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	eng := shard.Build(nil, semindex.FullInf, crawler.PagesFromCorpus(c), shard.Options{Shards: 3})
	const stalled = 2
	eng.SetStall(func(i int) {
		if i == stalled {
			time.Sleep(2 * time.Second)
		}
	})
	h := NewHandler(eng)
	h.ShardTimeout = 50 * time.Millisecond
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	start := time.Now()
	resp, err := srv.Client().Get(srv.URL + "/search?q=goal&n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("degraded search took %v against a 50ms per-shard budget", elapsed)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Search-Degraded"); got != "true" {
		t.Errorf("X-Search-Degraded = %q", got)
	}
	if got := resp.Header.Get("X-Search-Missing-Shards"); got != "2" {
		t.Errorf("X-Search-Missing-Shards = %q", got)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded || len(sr.MissingShards) != 1 || sr.MissingShards[0] != stalled {
		t.Errorf("body degradation: degraded=%v missing=%v", sr.Degraded, sr.MissingShards)
	}
	if sr.Total == 0 {
		t.Error("degraded answer carried no results from the live shards")
	}
}

// TestShardTimeoutHealthyNotDegraded: a configured deadline that every
// shard meets leaves the response unmarked and identical to the
// monolith's.
func TestShardTimeoutHealthyNotDegraded(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	eng := shard.Build(nil, semindex.FullInf, crawler.PagesFromCorpus(c), shard.Options{Shards: 3})
	h := NewHandler(eng)
	h.ShardTimeout = 5 * time.Second
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	resp, err := srv.Client().Get(srv.URL + "/search?q=punishment&n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Search-Degraded"); got != "" {
		t.Errorf("healthy search marked degraded: %q", got)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded || len(sr.MissingShards) != 0 || sr.Total == 0 {
		t.Errorf("response = %+v", sr)
	}

	// Same query through the monolithic reference handler: identical list.
	mono := testHandler(t)
	mresp, err := mono.Client().Get(mono.URL + "/search?q=punishment&n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var msr searchResponse
	if err := json.NewDecoder(mresp.Body).Decode(&msr); err != nil {
		t.Fatal(err)
	}
	if len(msr.Results) != len(sr.Results) {
		t.Fatalf("deadline path returned %d results, monolith %d", len(sr.Results), len(msr.Results))
	}
	for i := range msr.Results {
		if msr.Results[i] != sr.Results[i] {
			t.Errorf("rank %d: %+v vs %+v", i+1, sr.Results[i], msr.Results[i])
		}
	}
}

// TestGracefulServe exercises the configured server path: serve on a
// random port, hit /healthz, then shut down via SIGTERM-equivalent cancel.
func TestGracefulServe(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 42, NarrationsPerMatch: 30})
	si := semindex.NewBuilder().Build(semindex.Trad, crawler.PagesFromCorpus(c))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	drained := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- serve(addr, NewHandler(si), func() { close(drained) }) }()
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
	select {
	case <-drained:
	default:
		t.Error("drain hook did not run during shutdown")
	}
}
