package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func testHandler(t testing.TB) *httptest.Server {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	srv := httptest.NewServer(NewHandler(si))
	t.Cleanup(srv.Close)
	return srv
}

func TestSearchEndpointJSON(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/search?q=punishment&n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Query != "punishment" || sr.Total == 0 {
		t.Errorf("response = %+v", sr)
	}
	for _, r := range sr.Results {
		if !strings.Contains(r.Kind, "Card") {
			t.Errorf("punishment returned kind %q", r.Kind)
		}
	}
}

func TestSearchEndpointValidation(t *testing.T) {
	srv := testHandler(t)
	for _, path := range []string{"/search", "/search?q=goal&n=0", "/search?q=goal&n=9999", "/search?q=goal&n=abc"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTMLPage(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/?q=messi+goal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "<b>") {
		t.Errorf("no highlighted results in page:\n%s", body)
	}
	if !strings.Contains(body, `value="messi goal"`) {
		t.Error("search box does not echo the query")
	}
	// Escaping: a hostile query must not inject markup.
	resp2, err := srv.Client().Get(srv.URL + `/?q=%3Cscript%3E`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n2, _ := resp2.Body.Read(buf)
	if strings.Contains(string(buf[:n2]), "<script>") {
		t.Error("query not escaped in page")
	}
}

func TestHealthz(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestFacetsInSearchResponse(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/search?q=punishment")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Facets) == 0 {
		t.Error("no facets in response")
	}
}

func TestRelatedEndpoint(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/related?doc=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []searchResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Bad input validation.
	bad, err := srv.Client().Get(srv.URL + "/related?doc=x")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Errorf("bad doc param status %d", bad.StatusCode)
	}
}

func TestDidYouMean(t *testing.T) {
	srv := testHandler(t)
	resp, err := srv.Client().Get(srv.URL + "/search?q=mesi")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sr.DidYouMean, "messi") {
		t.Errorf("didYouMean = %q", sr.DidYouMean)
	}
}
