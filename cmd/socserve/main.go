// Command socserve exposes the semantic index as a web search service —
// the deployment shape behind the paper's claim that semantic indexing
// "scales our system up to web search engines". It builds (or loads) a
// FULL_INF index — monolithic or sharded — and serves:
//
//	GET /search?q=messi+barcelona+goal&n=10   JSON results with snippets
//	GET /                                      a minimal HTML search page
//	GET /healthz                               liveness
//
//	socserve -addr :8090
//	socserve -addr :8090 -index idx.bin
//	socserve -addr :8090 -shards 4             sharded engine, per-request scatter-gather
//	socserve -addr :8090 -shards 4 -index idx.bin
//	                                           load idx.bin.shard000 ... 003
//
// The listener is a fully-configured http.Server (header/read/write
// timeouts) and shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight searches before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/index"
	"repro/internal/semindex"
	"repro/internal/shard"
)

// maxResults caps the n query parameter: user input never reaches the
// search layer unclamped.
const maxResults = 100

// searcher is the serving surface both index shapes provide: the
// monolithic *semindex.SemanticIndex and the scatter-gather *shard.Engine.
type searcher interface {
	Search(query string, limit int) []semindex.Hit
	Related(docID int, limit int) []semindex.Hit
	Suggest(query string) string
}

type searchResult struct {
	Rank    int     `json:"rank"`
	Score   float64 `json:"score"`
	Kind    string  `json:"kind"`
	Match   string  `json:"match"`
	Minute  string  `json:"minute"`
	Subject string  `json:"subject,omitempty"`
	Object  string  `json:"object,omitempty"`
	Snippet string  `json:"snippet,omitempty"`
}

type searchResponse struct {
	Query   string           `json:"query"`
	Took    string           `json:"took"`
	Total   int              `json:"total"`
	Results []searchResult   `json:"results"`
	Facets  []semindex.Facet `json:"facets,omitempty"`
	// DidYouMean carries a spelling suggestion when the query has a token
	// matching nothing in the index.
	DidYouMean string `json:"didYouMean,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("socserve", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	addr := fs.String("addr", ":8090", "listen address")
	indexFile := fs.String("index", "", "load a saved index instead of building")
	shards := fs.Int("shards", 0, "serve from an N-way sharded engine (with -index: load <index>.shard* files)")
	fs.Parse(os.Args[1:])

	var s searcher
	switch {
	case *shards > 0 && *indexFile != "":
		eng, err := shard.Load(*indexFile, nil)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("serving %s engine (%d docs across %d shards) on %s\n",
			eng.Level(), eng.NumDocs(), eng.NumShards(), *addr)
		s = eng
	case *shards > 0:
		pages, _, err := cf.LoadPages()
		if err != nil {
			cli.Fatal(err)
		}
		eng := shard.Build(nil, semindex.FullInf, pages, shard.Options{Shards: *shards})
		fmt.Printf("serving %s engine (%d docs across %d shards) on %s\n",
			eng.Level(), eng.NumDocs(), eng.NumShards(), *addr)
		s = eng
	case *indexFile != "":
		f, err := os.Open(*indexFile)
		if err != nil {
			cli.Fatal(err)
		}
		si, err := semindex.Load(f, nil)
		f.Close()
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("serving %s index (%d docs) on %s\n", si.Level, si.Index.NumDocs(), *addr)
		s = si
	default:
		pages, _, err := cf.LoadPages()
		if err != nil {
			cli.Fatal(err)
		}
		si := semindex.NewBuilder().Build(semindex.FullInf, pages)
		fmt.Printf("serving %s index (%d docs) on %s\n", si.Level, si.Index.NumDocs(), *addr)
		s = si
	}

	if err := serve(*addr, NewHandler(s)); err != nil {
		cli.Fatal(err)
	}
}

// serve runs a configured http.Server until SIGINT/SIGTERM, then drains
// in-flight requests through a bounded graceful shutdown.
func serve(addr string, h http.Handler) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parseN clamps the n query parameter to 1..maxResults, defaulting to 10.
// Malformed, negative, zero or oversized values are rejected.
func parseN(r *http.Request) (int, error) {
	s := r.URL.Query().Get("n")
	if s == "" {
		return 10, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 || v > maxResults {
		return 0, fmt.Errorf(`parameter "n" must be 1..%d`, maxResults)
	}
	return v, nil
}

// NewHandler builds the service mux over any searcher (a monolithic index
// or a sharded engine).
func NewHandler(s searcher) http.Handler {
	hl := index.Highlighter{Pre: "<b>", Post: "</b>"}
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
			return
		}
		n, err := parseN(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		hits := s.Search(q, n)
		resp := searchResponse{
			Query: q,
			Took:  time.Since(start).Round(time.Microsecond).String(),
			Total: len(hits),
		}
		for i, h := range hits {
			res := searchResult{
				Rank:    i + 1,
				Score:   h.Score,
				Kind:    h.Meta(semindex.MetaKind),
				Match:   h.Meta(semindex.MetaMatchID),
				Minute:  h.Meta(semindex.MetaMinute),
				Subject: h.Meta(semindex.MetaSubject),
				Object:  h.Meta(semindex.MetaObject),
			}
			if narr := h.Doc.Get(semindex.FieldNarration); narr != "" {
				res.Snippet = hl.Snippet(narr, q)
			}
			resp.Results = append(resp.Results, res)
		}
		// Facet the full result set by event kind for drill-down.
		resp.Facets = semindex.Facets(s.Search(q, 0), semindex.MetaKind)
		resp.DidYouMean = s.Suggest(q)
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/related", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("doc"))
		if err != nil || id < 0 {
			http.Error(w, `parameter "doc" must be a document id`, http.StatusBadRequest)
			return
		}
		hits := s.Related(id, 10)
		out := make([]searchResult, 0, len(hits))
		for i, h := range hits {
			out = append(out, searchResult{
				Rank: i + 1, Score: h.Score,
				Kind:    h.Meta(semindex.MetaKind),
				Match:   h.Meta(semindex.MetaMatchID),
				Minute:  h.Meta(semindex.MetaMinute),
				Subject: h.Meta(semindex.MetaSubject),
				Snippet: h.Doc.Get(semindex.FieldNarration),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		q := r.URL.Query().Get("q")
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<html><head><title>Semantic Soccer Search</title></head><body>
<h2>Semantic Soccer Search</h2>
<form action="/"><input name="q" size="50" value="%s"> <input type="submit" value="Search"></form>
`, html.EscapeString(q))
		if q != "" {
			hits := s.Search(q, 10)
			fmt.Fprintf(w, "<p>%d results</p><ol>\n", len(hits))
			// Highlight on the raw text with sentinel markers, escape, then
			// swap the markers for tags — highlighting escaped text would
			// split names like Eto'o at the entity boundary.
			marker := index.Highlighter{Pre: "\x01", Post: "\x02"}
			for _, h := range hits {
				snippet := h.Doc.Get(semindex.FieldNarration)
				if snippet != "" {
					s := html.EscapeString(marker.Snippet(snippet, q))
					s = strings.ReplaceAll(s, "\x01", "<b>")
					snippet = strings.ReplaceAll(s, "\x02", "</b>")
				} else {
					snippet = html.EscapeString(h.Meta(semindex.MetaSubject))
				}
				fmt.Fprintf(w, "<li><b>%s</b> %s' — %s</li>\n",
					html.EscapeString(h.Meta(semindex.MetaKind)),
					html.EscapeString(h.Meta(semindex.MetaMinute)), snippet)
			}
			fmt.Fprintln(w, "</ol>")
		}
		fmt.Fprintln(w, "</body></html>")
	})
	return mux
}
