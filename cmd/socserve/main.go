// Command socserve exposes the semantic index as a web search service —
// the deployment shape behind the paper's claim that semantic indexing
// "scales our system up to web search engines". It builds (or loads) a
// FULL_INF index — monolithic or sharded — and serves:
//
//	GET /v1/search?q=...&limit=10             versioned JSON envelope (see API.md)
//	GET /v1/related?doc=3&limit=10            versioned related-documents lookup
//	GET /v1/suggest?q=mesi                    versioned spelling suggestion
//	GET /search?q=messi+barcelona+goal&n=10   legacy JSON results with snippets
//	GET /related?doc=3                        legacy related documents
//	GET /                                      a minimal HTML search page
//	POST /v1/ingest                            ingest one crawled match page (sharded engine)
//	GET /healthz                               liveness (always ok while up)
//	GET /readyz                                readiness (503 until the index is loaded;
//	                                           names quarantined shards when degraded)
//	GET /metrics                               Prometheus text-format metrics
//	GET /debug/pprof/*                         profiling endpoints (only with -pprof)
//
// Sharded engines answer repeated queries from an in-process result
// cache (-cache-mb sizes it, -cache-off disables it); every search
// response carries an X-Cache: hit|miss|coalesced|bypass header.
//
// Every response carries an X-Trace-ID header; -access-log prints one line
// per request with that ID, and -slow-query logs the per-shard timeline of
// any request over the threshold.
//
//	socserve -addr :8090
//	socserve -addr :8090 -index idx.bin
//	socserve -addr :8090 -shards 4             sharded engine, per-request scatter-gather
//	socserve -addr :8090 -shards 4 -index idx.bin
//	                                           load idx.bin.shard000 ... 003
//	socserve -addr :8090 -shards 4 -shard-timeout 200ms
//	                                           degraded serving: a shard that
//	                                           misses the deadline is dropped
//	                                           from the merge and the response
//	                                           is marked degraded
//	socserve -addr :8090 -shards 4 -index idx.bin -wal
//	                                           crash-safe ingest: every
//	                                           /v1/ingest page is WAL-appended
//	                                           before it is acknowledged and
//	                                           replayed on the next start
//	socserve ... -wal -wal-sync 100ms          amortized fsync (-wal-sync
//	                                           always|off|<interval>)
//	socserve -addr :8090 -shards 4 -index idx.bin -mapped
//	                                           serve straight from the snapshot
//	                                           bytes: O(manifest) open, lazy
//	                                           block decode, index may exceed
//	                                           RAM (see DESIGN.md §15)
//
// The listener comes up immediately and reports readiness once the index
// is loaded, so orchestrators can distinguish "starting" from "dead". It
// is a fully-configured http.Server (header/read/write timeouts) and shuts
// down gracefully on SIGINT/SIGTERM, draining in-flight searches before
// exiting. With -wal the drain also checkpoints: the engine is saved back
// to the -index base (folding the log into the snapshot) and the WAL is
// rotated, so the next start recovers instantly instead of replaying. A
// degraded engine refuses the checkpoint — the quarantined snapshot stays
// on disk for repair instead of being overwritten by a partial one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/wal"
)

// maxResults caps the n query parameter: user input never reaches the
// search layer unclamped.
const maxResults = 100

// searcher is the serving surface both index shapes provide beyond the
// main query path: related-document lookup and spelling suggestions.
// The query path itself splits by shape below.
type searcher interface {
	Related(docID int, limit int) []semindex.Hit
	Suggest(query string) string
}

// unifiedSearcher is the redesigned query surface: one Search taking a
// context (deadline, cancellation) and an options struct (trace, limit,
// cache bypass). The sharded engine implements it; results carry the
// degradation report and the cache status for the X-Cache header.
type unifiedSearcher interface {
	searcher
	Search(ctx context.Context, query string, opts shard.SearchOptions) (shard.SearchResult, error)
}

// legacySearcher is the monolithic index's plain query surface — no
// deadline, no cache, no per-shard spans.
type legacySearcher interface {
	searcher
	Search(query string, limit int) []semindex.Hit
}

type searchResult struct {
	Rank    int     `json:"rank"`
	Score   float64 `json:"score"`
	Kind    string  `json:"kind"`
	Match   string  `json:"match"`
	Minute  string  `json:"minute"`
	Subject string  `json:"subject,omitempty"`
	Object  string  `json:"object,omitempty"`
	Snippet string  `json:"snippet,omitempty"`
}

type searchResponse struct {
	Query   string           `json:"query"`
	Took    string           `json:"took"`
	Total   int              `json:"total"`
	Results []searchResult   `json:"results"`
	Facets  []semindex.Facet `json:"facets,omitempty"`
	// DidYouMean carries a spelling suggestion when the query has a token
	// matching nothing in the index.
	DidYouMean string `json:"didYouMean,omitempty"`
	// Degraded is true when a shard missed its deadline and the results
	// are merged from the remaining shards only.
	Degraded bool `json:"degraded,omitempty"`
	// MissingShards names the shards absent from a degraded answer.
	MissingShards []int `json:"missingShards,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("socserve", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	addr := fs.String("addr", ":8090", "listen address")
	indexFile := fs.String("index", "", "load a saved index instead of building")
	shards := fs.Int("shards", 0, "serve from an N-way sharded engine (with -index: load <index>.shard* files)")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-shard search deadline; a late shard degrades the answer instead of stalling it (0 = wait forever)")
	cacheMB := fs.Int("cache-mb", 64, "query-result cache capacity in MiB for the sharded engine (0 disables)")
	cacheOff := fs.Bool("cache-off", false, "disable the query-result cache entirely")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	slowQuery := fs.Duration("slow-query", 0, "log requests slower than this, with their per-shard trace (0 = off)")
	accessLog := fs.Bool("access-log", false, "log every request with its trace ID to stdout")
	mapped := fs.Bool("mapped", false, "serve the saved snapshot memory-mapped: O(manifest) open, postings decode lazily per block, the index may exceed RAM (requires -shards and -index)")
	walOn := fs.Bool("wal", false, "write-ahead log ingested pages next to -index and replay them on start (requires -shards and -index)")
	walSync := fs.String("wal-sync", "always", `WAL fsync policy: "always", "off", or a flush interval like "100ms"`)
	fs.Parse(os.Args[1:])

	walOpts, err := parseWALSync(*walSync)
	if err != nil {
		cli.Fatal(err)
	}
	if *walOn && (*shards == 0 || *indexFile == "") {
		cli.Fatal(errors.New("-wal requires -shards and -index: the log lives next to the snapshot it extends"))
	}
	if *mapped && (*shards == 0 || *indexFile == "") {
		cli.Fatal(errors.New("-mapped requires -shards and -index: only a saved sharded snapshot can be served from its file bytes"))
	}

	h := NewHandler(nil)
	h.ShardTimeout = *shardTimeout
	if *pprofOn {
		h.EnablePprof()
	}
	if *slowQuery > 0 {
		h.Slow = &obs.SlowLog{Threshold: *slowQuery, Out: os.Stderr}
	}
	if *accessLog {
		h.AccessLog = os.Stdout
	}

	// The listener comes up before the index so /healthz and /readyz can
	// tell "loading" apart from "down"; /readyz flips once the searcher
	// lands.
	cacheBytes := int64(*cacheMB) << 20
	if *cacheOff {
		cacheBytes = 0
	}

	// eng holds the sharded engine once loaded, for the shutdown
	// checkpoint; nil for monolithic shapes or while still loading.
	var eng atomic.Pointer[shard.Engine]
	go func() {
		s, desc, err := loadSearcher(&cf, *indexFile, *shards, cacheBytes, *mapped)
		if err != nil {
			cli.Fatal(err)
		}
		if e, ok := s.(*shard.Engine); ok {
			if *walOn {
				if err := e.AttachWAL(*indexFile, walOpts); err != nil {
					cli.Fatal(err)
				}
				rep := e.LoadReport()
				if rep.WALReplayed > 0 || rep.WALTorn {
					fmt.Printf("wal: replayed %d record(s), torn tail: %v\n", rep.WALReplayed, rep.WALTorn)
				}
			}
			if q := e.Quarantined(); len(q) > 0 {
				fmt.Printf("WARNING: serving degraded, shards %v quarantined at load\n", q)
			}
			// Background compaction keeps the segment count bounded under a
			// write firehose; stopped (and compacted) at shutdown.
			e.StartMerger(shard.MergePolicy{})
			eng.Store(e)
		}
		h.SetSearcher(s)
		fmt.Printf("serving %s on %s\n", desc, *addr)
	}()

	checkpoint := func() {
		e := eng.Load()
		if e == nil {
			return
		}
		e.StopMerger()
		if *walOn {
			// The drain is the last chance to fold the WAL into the snapshot;
			// a degraded engine refuses (ErrDegraded) so a partial index never
			// overwrites the repairable one, and its WAL stays for replay.
			if err := e.Save(*indexFile); err != nil {
				if errors.Is(err, shard.ErrDegraded) {
					fmt.Printf("skipping shutdown checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "shutdown checkpoint failed: %v\n", err)
				}
			} else {
				fmt.Printf("checkpointed %s at generation %d\n", *indexFile, e.Generation())
			}
		}
		// Close after the drain: no request can still be reading mapped
		// bytes, and the WAL (if any) syncs on detach.
		if err := e.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "closing engine: %v\n", err)
		}
	}

	if err := serve(*addr, h, checkpoint); err != nil {
		cli.Fatal(err)
	}
}

// parseWALSync maps the -wal-sync flag to a WAL policy: "always" fsyncs
// per append, "off"/"never" leaves durability to the page cache, and a
// duration amortizes fsyncs over that interval.
func parseWALSync(s string) (wal.Options, error) {
	switch s {
	case "always", "":
		return wal.Options{Policy: wal.SyncAlways}, nil
	case "off", "never":
		return wal.Options{Policy: wal.SyncNever}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return wal.Options{}, fmt.Errorf(`-wal-sync must be "always", "off" or a positive duration, not %q`, s)
	}
	return wal.Options{Policy: wal.SyncInterval, Interval: d}, nil
}

// loadSearcher builds or loads the configured index shape and describes
// it. Sharded shapes get the query-result cache sized by cacheBytes
// (0 serves every query cold). mapped serves a saved snapshot straight
// from its file bytes (LoadOptions{Mapped}).
func loadSearcher(cf *cli.CorpusFlags, indexFile string, shards int, cacheBytes int64, mapped bool) (searcher, string, error) {
	describe := func(eng *shard.Engine) string {
		d := fmt.Sprintf("%s engine (%d docs across %d shards", eng.Level(), eng.NumDocs(), eng.NumShards())
		if mapped {
			d += ", mapped"
		}
		if cacheBytes > 0 {
			return d + fmt.Sprintf(", %d MiB cache)", cacheBytes>>20)
		}
		return d + ")"
	}
	switch {
	case shards > 0 && indexFile != "":
		if _, err := os.Stat(shard.ManifestPath(indexFile)); os.IsNotExist(err) {
			if _, err := os.Stat(shard.ShardPath(indexFile, 0)); os.IsNotExist(err) {
				// First run: nothing saved at the base yet. Build from the
				// corpus and checkpoint immediately so a WAL has a snapshot
				// generation to anchor to.
				pages, _, err := cf.LoadPages()
				if err != nil {
					return nil, "", err
				}
				eng := shard.Build(nil, semindex.FullInf, pages, shard.Options{Shards: shards, CacheBytes: cacheBytes})
				if err := eng.Save(indexFile); err != nil {
					return nil, "", err
				}
				if !mapped {
					return eng, describe(eng) + " [bootstrapped]", nil
				}
				// Fall through to the mapped load of the snapshot just
				// written, so the bootstrapped run serves from disk too.
			}
		}
		eng, err := shard.LoadWith(indexFile, nil, shard.LoadOptions{Mapped: mapped})
		if err != nil {
			return nil, "", err
		}
		if fb := eng.LoadReport().MappedFallback; len(fb) > 0 {
			fmt.Printf("mapped: shards %v predate the mapped layout, serving them from heap until the next checkpoint\n", fb)
		}
		eng.EnableCache(cacheBytes, obs.Default)
		return eng, describe(eng), nil
	case shards > 0:
		pages, _, err := cf.LoadPages()
		if err != nil {
			return nil, "", err
		}
		eng := shard.Build(nil, semindex.FullInf, pages, shard.Options{Shards: shards, CacheBytes: cacheBytes})
		return eng, describe(eng), nil
	case indexFile != "":
		f, err := os.Open(indexFile)
		if err != nil {
			return nil, "", err
		}
		si, err := semindex.Load(f, nil)
		f.Close()
		if err != nil {
			return nil, "", err
		}
		return si, fmt.Sprintf("%s index (%d docs)", si.Level, si.Index.NumDocs()), nil
	default:
		pages, _, err := cf.LoadPages()
		if err != nil {
			return nil, "", err
		}
		si := semindex.NewBuilder().Build(semindex.FullInf, pages)
		return si, fmt.Sprintf("%s index (%d docs)", si.Level, si.Index.NumDocs()), nil
	}
}

// serve runs a configured http.Server until SIGINT/SIGTERM, then drains
// in-flight requests through a bounded graceful shutdown. drain runs
// after the listener has stopped accepting and in-flight requests have
// finished — the quiesced moment the shutdown checkpoint needs.
func serve(addr string, h http.Handler, drain func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if drain != nil {
		drain()
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parseN clamps the n query parameter to 1..maxResults, defaulting to 10.
// Malformed, negative, zero or oversized values are rejected.
func parseN(r *http.Request) (int, error) {
	s := r.URL.Query().Get("n")
	if s == "" {
		return 10, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 || v > maxResults {
		return 0, fmt.Errorf(`parameter "n" must be 1..%d`, maxResults)
	}
	return v, nil
}

// Handler is the service: it serves liveness from the moment it exists,
// readiness and search only once a searcher is installed, and degraded
// scatter-gather answers when a ShardTimeout is configured and a shard
// blows it.
type Handler struct {
	mux *http.ServeMux
	// s holds the installed searcher; nil until SetSearcher, after which
	// /readyz flips to ready. Atomic so readiness can land mid-traffic.
	s atomic.Pointer[searcherSlot]
	// ShardTimeout is the per-shard search deadline applied when the
	// searcher is a sharded engine; 0 waits for every shard.
	ShardTimeout time.Duration
	// AccessLog, when set, receives one line per request: trace ID,
	// method, path, status, duration. Nil disables access logging.
	AccessLog io.Writer
	// Slow, when set, logs traces slower than its threshold — the
	// slow-query log. Nil logs nothing.
	Slow *obs.SlowLog

	// reg backs /metrics and the handler's own series. Set before serving
	// traffic (SetMetrics); NewHandler wires obs.Default.
	reg *obs.Registry
	hm  handlerMetrics
}

// Handler metric names.
const (
	metricRequests = "socserve_requests_total"
	metricReqSec   = "socserve_request_seconds"
	metricInflight = "socserve_inflight_requests"
	metricDegraded = "socserve_degraded_searches_total"
)

// handlerMetrics are the service-level series, one step above the engine's.
type handlerMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
	inflight *obs.Gauge
	degraded *obs.Counter
}

// SetMetrics points /metrics and the handler's own series at a registry
// (nil disables the handler's instrumentation and empties /metrics).
// Call before serving traffic.
func (h *Handler) SetMetrics(r *obs.Registry) {
	h.reg = r
	r.Help(metricRequests, "HTTP requests served.")
	r.Help(metricReqSec, "HTTP request latency.")
	r.Help(metricInflight, "Requests currently being served.")
	r.Help(metricDegraded, "Search responses answered without every shard.")
	h.hm = handlerMetrics{
		requests: r.Counter(metricRequests),
		latency:  r.Histogram(metricReqSec, nil),
		inflight: r.Gauge(metricInflight),
		degraded: r.Counter(metricDegraded),
	}
}

// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ —
// behind the -pprof flag because profiling endpoints expose internals and
// cost CPU when scraped.
func (h *Handler) EnablePprof() {
	h.mux.HandleFunc("/debug/pprof/", pprof.Index)
	h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// searcherSlot boxes the searcher interface for atomic.Pointer.
type searcherSlot struct{ s searcher }

// SetSearcher installs (or replaces) the index the handler serves from
// and marks the service ready.
func (h *Handler) SetSearcher(s searcher) {
	h.s.Store(&searcherSlot{s: s})
}

// ready returns the installed searcher, or false while still loading.
func (h *Handler) ready() (searcher, bool) {
	slot := h.s.Load()
	if slot == nil || slot.s == nil {
		return nil, false
	}
	return slot.s, true
}

// ServeHTTP is the observability middleware around the mux: every request
// gets a trace (ID surfaced as X-Trace-ID and threaded through the
// context for the engine's per-shard spans), the in-flight gauge and
// request counter/histogram move, degraded search answers are counted,
// and the access log and slow-query log get their lines.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tr := obs.NewTrace(r.URL.Path)
	h.hm.inflight.Inc()
	defer h.hm.inflight.Dec()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	sw.Header().Set("X-Trace-ID", tr.ID)

	h.mux.ServeHTTP(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))

	total := tr.Finish()
	h.hm.requests.Inc()
	h.hm.latency.ObserveDuration(total)
	if sw.Header().Get("X-Search-Degraded") == "true" {
		h.hm.degraded.Inc()
	}
	if h.AccessLog != nil {
		fmt.Fprintf(h.AccessLog, "%s %s %s %d %s\n",
			tr.ID, r.Method, r.URL.RequestURI(), sw.code, total.Round(time.Microsecond))
	}
	h.Slow.Record(tr)
}

// search runs one query through the searcher's best surface: the unified
// context+options Search when available (ShardTimeout becomes the ctx
// deadline, the request trace and cache-bypass flag ride the options),
// else the legacy interface under a whole-query span. The error is
// non-nil only when the context expired before any answer — degraded
// answers come back as results with Report.Degraded set.
func (h *Handler) search(ctx context.Context, s searcher, q string, limit int, noCache bool) (shard.SearchResult, error) {
	tr := obs.TraceFrom(ctx)
	if us, ok := s.(unifiedSearcher); ok {
		if h.ShardTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, h.ShardTimeout)
			defer cancel()
		}
		return us.Search(ctx, q, shard.SearchOptions{Limit: limit, Trace: tr, NoCache: noCache})
	}
	ls, ok := s.(legacySearcher)
	if !ok {
		return shard.SearchResult{Cache: shard.CacheBypass}, nil
	}
	done := tr.Span("search")
	hits := ls.Search(q, limit)
	done()
	return shard.SearchResult{Hits: hits, Cache: shard.CacheBypass}, nil
}

// NewHandler builds the service over any searcher (a monolithic index or
// a sharded engine). Pass nil to start not-ready and install the searcher
// later with SetSearcher.
func NewHandler(s searcher) *Handler {
	h := &Handler{mux: http.NewServeMux()}
	h.SetMetrics(obs.Default)
	if s != nil {
		h.SetSearcher(s)
	}
	hl := index.Highlighter{Pre: "<b>", Post: "</b>"}
	mux := h.mux

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		obs.Handler(h.reg).ServeHTTP(w, r)
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		// An engine that quarantined shards at load still serves — every
		// intact shard answers — but orchestrators and operators need the
		// loss visible where they already look.
		if qs, ok := s.(interface{ Quarantined() []int }); ok {
			if q := qs.Quarantined(); len(q) > 0 {
				w.Header().Set("X-Search-Degraded", "true")
				fmt.Fprintf(w, "ready (degraded: shards %s quarantined)\n", intsCSV(q))
				return
			}
		}
		// Live document count — segment documents not yet merged included,
		// so the number moves the moment an ingest is acknowledged.
		if nd, ok := s.(interface{ NumDocs() int }); ok {
			fmt.Fprintf(w, "ready (%d docs)\n", nd.NumDocs())
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
			return
		}
		n, err := parseN(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		// One unbounded-size fetch serves both the ranked page and the
		// facet counts; the per-shard deadline bounds its time instead.
		// Fetching the full set also gives every user limit one cache key.
		res, err := h.search(r.Context(), s, q, 0, false)
		if err != nil {
			http.Error(w, "search timed out", http.StatusGatewayTimeout)
			return
		}
		all, rep := res.Hits, res.Report
		hits := all
		if len(hits) > n {
			hits = hits[:n]
		}
		resp := searchResponse{
			Query:         q,
			Took:          time.Since(start).Round(time.Microsecond).String(),
			Total:         len(hits),
			Degraded:      rep.Degraded,
			MissingShards: rep.Missing,
		}
		for i, h := range hits {
			res := searchResult{
				Rank:    i + 1,
				Score:   h.Score,
				Kind:    h.Meta(semindex.MetaKind),
				Match:   h.Meta(semindex.MetaMatchID),
				Minute:  h.Meta(semindex.MetaMinute),
				Subject: h.Meta(semindex.MetaSubject),
				Object:  h.Meta(semindex.MetaObject),
			}
			if narr := h.Doc.Get(semindex.FieldNarration); narr != "" {
				res.Snippet = hl.Snippet(narr, q)
			}
			resp.Results = append(resp.Results, res)
		}
		// Facet the full result set by event kind for drill-down.
		resp.Facets = semindex.Facets(all, semindex.MetaKind)
		resp.DidYouMean = s.Suggest(q)
		if rep.Degraded {
			// Headers mirror the JSON so load balancers and caches can act
			// on degradation without parsing the body.
			w.Header().Set("X-Search-Degraded", "true")
			w.Header().Set("X-Search-Missing-Shards", intsCSV(rep.Missing))
		}
		w.Header().Set("X-Cache", string(res.Cache))
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/related", func(w http.ResponseWriter, r *http.Request) {
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		id, err := strconv.Atoi(r.URL.Query().Get("doc"))
		if err != nil || id < 0 {
			http.Error(w, `parameter "doc" must be a document id`, http.StatusBadRequest)
			return
		}
		hits := s.Related(id, 10)
		out := make([]searchResult, 0, len(hits))
		for i, h := range hits {
			out = append(out, searchResult{
				Rank: i + 1, Score: h.Score,
				Kind:    h.Meta(semindex.MetaKind),
				Match:   h.Meta(semindex.MetaMatchID),
				Minute:  h.Meta(semindex.MetaMinute),
				Subject: h.Meta(semindex.MetaSubject),
				Snippet: h.Doc.Get(semindex.FieldNarration),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	h.registerV1(hl)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		s, ok := h.ready()
		if !ok {
			http.Error(w, "index loading", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query().Get("q")
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<html><head><title>Semantic Soccer Search</title></head><body>
<h2>Semantic Soccer Search</h2>
<form action="/"><input name="q" size="50" value="%s"> <input type="submit" value="Search"></form>
`, html.EscapeString(q))
		if q != "" {
			res, err := h.search(r.Context(), s, q, 10, false)
			if err != nil {
				fmt.Fprintln(w, "<p><i>search timed out</i></p></body></html>")
				return
			}
			hits, rep := res.Hits, res.Report
			if rep.Degraded {
				fmt.Fprintf(w, "<p><i>partial results: %d shard(s) timed out</i></p>\n", len(rep.Missing))
			}
			fmt.Fprintf(w, "<p>%d results</p><ol>\n", len(hits))
			// Highlight on the raw text with sentinel markers, escape, then
			// swap the markers for tags — highlighting escaped text would
			// split names like Eto'o at the entity boundary.
			marker := index.Highlighter{Pre: "\x01", Post: "\x02"}
			for _, h := range hits {
				snippet := h.Doc.Get(semindex.FieldNarration)
				if snippet != "" {
					s := html.EscapeString(marker.Snippet(snippet, q))
					s = strings.ReplaceAll(s, "\x01", "<b>")
					snippet = strings.ReplaceAll(s, "\x02", "</b>")
				} else {
					snippet = html.EscapeString(h.Meta(semindex.MetaSubject))
				}
				fmt.Fprintf(w, "<li><b>%s</b> %s' — %s</li>\n",
					html.EscapeString(h.Meta(semindex.MetaKind)),
					html.EscapeString(h.Meta(semindex.MetaMinute)), snippet)
			}
			fmt.Fprintln(w, "</ol>")
		}
		fmt.Fprintln(w, "</body></html>")
	})
	return h
}

// intsCSV renders shard indices as "1,3" for the degraded-answer header.
func intsCSV(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
