package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
)

// testHandlerCached serves a 3-shard engine with the query cache enabled
// — the full production shape of the versioned API.
func testHandlerCached(t testing.TB) *httptest.Server {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	eng := shard.Build(nil, semindex.FullInf, crawler.PagesFromCorpus(c),
		shard.Options{Shards: 3, CacheBytes: 1 << 20})
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(srv.Close)
	return srv
}

// TestV1SearchEnvelope: the /v1/search envelope round-trips with every
// contract field populated.
func TestV1SearchEnvelope(t *testing.T) {
	srv := testHandlerCached(t)
	resp, err := srv.Client().Get(srv.URL + "/v1/search?q=punishment&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env v1SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Query != "punishment" {
		t.Errorf("query = %q", env.Query)
	}
	if env.Total == 0 || len(env.Hits) == 0 {
		t.Fatalf("empty envelope: total=%d hits=%d", env.Total, len(env.Hits))
	}
	if len(env.Hits) > 5 {
		t.Errorf("%d hits exceed limit 5", len(env.Hits))
	}
	if env.Total < len(env.Hits) {
		t.Errorf("total %d < %d returned hits", env.Total, len(env.Hits))
	}
	if env.TraceID == "" || env.TraceID != resp.Header.Get("X-Trace-ID") {
		t.Errorf("traceId %q vs header %q", env.TraceID, resp.Header.Get("X-Trace-ID"))
	}
	if env.Cache != string(shard.CacheMiss) {
		t.Errorf("first query cache = %q, want miss", env.Cache)
	}
	if env.Cache != resp.Header.Get("X-Cache") {
		t.Errorf("body cache %q vs header %q", env.Cache, resp.Header.Get("X-Cache"))
	}
	if len(env.Facets) == 0 {
		t.Error("no facets")
	}
	if env.Degraded != nil {
		t.Errorf("healthy answer marked degraded: %+v", env.Degraded)
	}
	for i, h := range env.Hits {
		if h.Rank != i+1 {
			t.Errorf("hit %d rank %d", i, h.Rank)
		}
		if !strings.Contains(h.Kind, "Card") {
			t.Errorf("punishment returned kind %q", h.Kind)
		}
	}
}

// TestV1CacheStatusProgression: miss, then hit, then bypass via nocache.
func TestV1CacheStatusProgression(t *testing.T) {
	srv := testHandlerCached(t)
	get := func(url string) (string, v1SearchResponse) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env v1SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("X-Cache"), env
	}
	if hdr, env := get("/v1/search?q=goal"); hdr != "miss" || env.Cache != "miss" {
		t.Errorf("first query: header %q body %q, want miss", hdr, env.Cache)
	}
	hdr, warm := get("/v1/search?q=goal")
	if hdr != "hit" || warm.Cache != "hit" {
		t.Errorf("second query: header %q body %q, want hit", hdr, warm.Cache)
	}
	hdr, bypass := get("/v1/search?q=goal&nocache=1")
	if hdr != "bypass" || bypass.Cache != "bypass" {
		t.Errorf("nocache query: header %q body %q, want bypass", hdr, bypass.Cache)
	}
	// The hit serves the exact hits the bypass recomputes.
	if len(warm.Hits) != len(bypass.Hits) {
		t.Fatalf("hit returned %d hits, bypass %d", len(warm.Hits), len(bypass.Hits))
	}
	for i := range warm.Hits {
		if warm.Hits[i] != bypass.Hits[i] {
			t.Errorf("rank %d: cached %+v vs cold %+v", i+1, warm.Hits[i], bypass.Hits[i])
		}
	}
}

// TestV1MatchesLegacyRanking: /v1/search and the frozen /search alias
// serve the same ranking for the same query.
func TestV1MatchesLegacyRanking(t *testing.T) {
	srv := testHandlerCached(t)
	resp, err := srv.Client().Get(srv.URL + "/v1/search?q=messi+barcelona+goal&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var env v1SearchResponse
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := srv.Client().Get(srv.URL + "/search?q=messi+barcelona+goal&n=10")
	if err != nil {
		t.Fatal(err)
	}
	var sr searchResponse
	err = json.NewDecoder(legacy.Body).Decode(&sr)
	legacy.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Hits) == 0 || len(env.Hits) != len(sr.Results) {
		t.Fatalf("v1 %d hits, legacy %d", len(env.Hits), len(sr.Results))
	}
	for i := range env.Hits {
		if env.Hits[i] != sr.Results[i] {
			t.Errorf("rank %d: v1 %+v, legacy %+v", i+1, env.Hits[i], sr.Results[i])
		}
	}
}

// TestV1LimitValidation: non-numeric and non-positive limits are 400s;
// absurd limits clamp to v1MaxLimit instead of erroring.
func TestV1LimitValidation(t *testing.T) {
	srv := testHandlerCached(t)
	for _, path := range []string{
		"/v1/search",
		"/v1/search?q=goal&limit=0",
		"/v1/search?q=goal&limit=-3",
		"/v1/search?q=goal&limit=abc",
		"/v1/related?doc=0&limit=0",
		"/v1/related?doc=x",
		"/v1/suggest",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/v1/search?q=goal&limit=%d", v1MaxLimit*100))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("clamped limit status %d, want 200", resp.StatusCode)
	}
	var env v1SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if len(env.Hits) > v1MaxLimit {
		t.Errorf("clamp failed: %d hits", len(env.Hits))
	}
}

// TestV1RelatedAndSuggest: the auxiliary v1 endpoints answer with their
// envelopes.
func TestV1RelatedAndSuggest(t *testing.T) {
	srv := testHandlerCached(t)
	resp, err := srv.Client().Get(srv.URL + "/v1/related?doc=0&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	var rel v1RelatedResponse
	err = json.NewDecoder(resp.Body).Decode(&rel)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Doc != 0 || rel.TraceID == "" {
		t.Errorf("related envelope: %+v", rel)
	}
	if rel.Total != len(rel.Hits) || len(rel.Hits) > 5 {
		t.Errorf("related counts: total=%d hits=%d", rel.Total, len(rel.Hits))
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/suggest?q=mesi")
	if err != nil {
		t.Fatal(err)
	}
	var sug v1SuggestResponse
	err = json.NewDecoder(resp.Body).Decode(&sug)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sug.Query != "mesi" || !strings.Contains(sug.DidYouMean, "messi") {
		t.Errorf("suggest envelope: %+v", sug)
	}
}

// TestV1NotReady: the versioned endpoints 503 while the index loads,
// like the legacy ones.
func TestV1NotReady(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil))
	defer srv.Close()
	for _, path := range []string{"/v1/search?q=goal", "/v1/related?doc=0", "/v1/suggest?q=goal"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Errorf("%s while loading = %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestLegacySearchCacheHeader: the frozen /search alias also reports the
// cache outcome in its header without changing its JSON body.
func TestLegacySearchCacheHeader(t *testing.T) {
	srv := testHandlerCached(t)
	want := []string{"miss", "hit"}
	for i, exp := range want {
		resp, err := srv.Client().Get(srv.URL + "/search?q=yellow+card&n=5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Cache"); got != exp {
			t.Errorf("request %d: X-Cache = %q, want %q", i+1, got, exp)
		}
	}
}
