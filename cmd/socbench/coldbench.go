// Coldpath mode: the BENCH_5.json sweep quantifying the top-k scoring
// kernel. The same paper-query mix runs always-cold (NoCache, so every
// query pays the full scatter and scoring) through two engine
// configurations: the pruned document-at-a-time kernel and the
// term-at-a-time exhaustive path (SetExhaustiveScoring). Both arms are
// measured at limit 10 (the pruning sweet spot — a tight top-k raises the
// MaxScore threshold fast) and limit 100, alternating rounds so machine
// drift hits both arms; each arm keeps its best round. Scoring-path
// allocations are sampled separately with runtime.MemStats.
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/shard"
)

// coldReport is the BENCH_5.json schema.
type coldReport struct {
	Config config `json:"config"`
	// Limit10 and Limit100 compare the two scoring paths at each limit.
	Limit10  coldArm `json:"limit10"`
	Limit100 coldArm `json:"limit100"`
	// SpeedupP50 is exhaustive p50 / pruned p50 at limit 10 — the headline
	// number and the CI floor.
	SpeedupP50 float64 `json:"speedup_p50"`
}

// coldArm holds the naive-vs-pruned comparison for one limit.
type coldArm struct {
	Pruned     latency `json:"pruned"`
	Exhaustive latency `json:"exhaustive"`
	// SpeedupP50 is exhaustive p50 / pruned p50 at this limit.
	SpeedupP50 float64 `json:"speedup_p50"`
	// PrunedAllocsPerOp / ExhaustiveAllocsPerOp are mean heap allocations
	// per query on each path, from runtime.MemStats deltas.
	PrunedAllocsPerOp     float64 `json:"pruned_allocs_per_op"`
	ExhaustiveAllocsPerOp float64 `json:"exhaustive_allocs_per_op"`
}

// runColdBench measures both scoring paths, writes the report, and
// enforces the limit-10 speedup floor.
func runColdBench(eng *shard.Engine, queries []string, cfg config, rounds int, minSpeedup float64, out string) {
	arm10 := measureColdArm(eng, queries, cfg.Iters, rounds, 10)
	arm100 := measureColdArm(eng, queries, cfg.Iters, rounds, 100)

	rep := coldReport{
		Config:     cfg,
		Limit10:    arm10,
		Limit100:   arm100,
		SpeedupP50: arm10.SpeedupP50,
	}

	writeReport(out, rep, fmt.Sprintf("limit10 pruned p50 %.1fµs vs exhaustive %.1fµs (%.1fx), limit100 %.1fx, allocs/op %.0f vs %.0f",
		arm10.Pruned.P50us, arm10.Exhaustive.P50us, arm10.SpeedupP50,
		arm100.SpeedupP50, arm10.PrunedAllocsPerOp, arm10.ExhaustiveAllocsPerOp))
	failBelowFloor("cold-path speedup at limit 10", rep.SpeedupP50, minSpeedup)
}

// measureColdArm times the always-cold query mix at one limit on both
// scoring paths, alternating rounds, keeping each path's best round.
func measureColdArm(eng *shard.Engine, queries []string, iters, rounds, limit int) coldArm {
	pruned := make([][]time.Duration, 0, rounds)
	exhaustive := make([][]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		eng.SetExhaustiveScoring(false)
		pruned = append(pruned, measureCold(eng, queries, iters, limit))
		eng.SetExhaustiveScoring(true)
		exhaustive = append(exhaustive, measureCold(eng, queries, iters, limit))
	}

	eng.SetExhaustiveScoring(false)
	prunedAllocs := measureAllocs(eng, queries, limit)
	eng.SetExhaustiveScoring(true)
	exhaustiveAllocs := measureAllocs(eng, queries, limit)
	eng.SetExhaustiveScoring(false)

	prunedP50 := bestP50(pruned)
	exhaustiveP50 := bestP50(exhaustive)
	prunedAll := flatten(pruned)
	exhaustiveAll := flatten(exhaustive)
	return coldArm{
		Pruned: latency{
			Iters: len(prunedAll),
			P50us: prunedP50, P95us: quantile(prunedAll, 0.95),
		},
		Exhaustive: latency{
			Iters: len(exhaustiveAll),
			P50us: exhaustiveP50, P95us: quantile(exhaustiveAll, 0.95),
		},
		SpeedupP50:            exhaustiveP50 / prunedP50,
		PrunedAllocsPerOp:     prunedAllocs,
		ExhaustiveAllocsPerOp: exhaustiveAllocs,
	}
}

// measureCold runs iters always-cold queries (cycling the paper mix) at
// the given limit after a short warmup, returning each query's wall time.
func measureCold(eng *shard.Engine, queries []string, iters, limit int) []time.Duration {
	ctx := context.Background()
	opts := shard.SearchOptions{Limit: limit, NoCache: true}
	for i := 0; i < iters/10+1; i++ {
		if _, err := eng.Search(ctx, queries[i%len(queries)], opts); err != nil {
			cli.Fatal(err)
		}
	}
	out := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := eng.Search(ctx, queries[i%len(queries)], opts); err != nil {
			cli.Fatal(err)
		}
		out[i] = time.Since(start)
	}
	return out
}

// measureAllocs samples mean heap allocations per query over one pass of
// the query mix, via runtime.MemStats deltas (single-threaded, so the
// delta is attributable to the queries).
func measureAllocs(eng *shard.Engine, queries []string, limit int) float64 {
	ctx := context.Background()
	opts := shard.SearchOptions{Limit: limit, NoCache: true}
	const passes = 3
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < passes*len(queries); i++ {
		if _, err := eng.Search(ctx, queries[i%len(queries)], opts); err != nil {
			cli.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(passes*len(queries))
}
