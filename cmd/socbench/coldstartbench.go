// Coldstart mode: the BENCH_10.json heap-vs-mapped serving comparison.
// One tier-sized corpus (internal/corpus, streamed so tier size costs
// index memory only) is built, checkpointed, and dropped; then the same
// snapshot is opened twice — once heap-decoded (the pre-mapped world:
// every posting and stored field materialized before the first query)
// and once memory-mapped (LoadOptions{Mapped}: O(manifest) open, blocks
// decoded lazily as queries touch them). Each arm records its open
// time, its warm always-cold query quantiles, and its post-GC live heap
// after the warm workload — the steady-state serving footprint. Three
// CI gates ride on the ratios: mapped open must beat heap decode by
// -min-open-speedup, steady-state heap must stay under -max-heap-ratio
// of the heap arm, and warm p50 must stay within -max-warm-slowdown.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/loadgen"
	"repro/internal/semindex"
	"repro/internal/shard"
)

// coldstartReport is the BENCH_10.json schema.
type coldstartReport struct {
	Config coldstartConfig `json:"config"`
	// Docs and SnapshotBytes describe the checkpoint both arms open.
	Docs          int          `json:"docs"`
	SnapshotBytes int64        `json:"snapshot_bytes"`
	Heap          coldstartArm `json:"heap"`
	Mapped        coldstartArm `json:"mapped"`
	// OpenSpeedup is heap open time / mapped open time — the cold-start
	// headline and the -min-open-speedup CI floor.
	OpenSpeedup float64 `json:"open_speedup"`
	// HeapRatio is mapped live heap / heap live heap after the warm
	// workload — the -max-heap-ratio CI ceiling.
	HeapRatio float64 `json:"heap_ratio"`
	// WarmSlowdown is mapped warm p50 / heap warm p50 — the lazy-decode
	// price, gated by -max-warm-slowdown.
	WarmSlowdown float64 `json:"warm_slowdown"`
}

// coldstartArm is one serving mode's measurement.
type coldstartArm struct {
	// OpenMs is the wall time of Load/LoadWith — snapshot bytes to
	// ready-to-serve engine.
	OpenMs float64 `json:"open_ms"`
	// LiveHeapBytes is post-GC HeapAlloc growth attributable to the open
	// engine after the warm workload ran — what serving actually pins.
	LiveHeapBytes uint64 `json:"live_heap_bytes"`
	// Warm holds always-cold (NoCache) query quantiles once the engine
	// (and, mapped, the page cache) is warm.
	Warm latency `json:"warm"`
}

type coldstartConfig struct {
	Size   string `json:"size"`
	Docs   int    `json:"docs"`
	Shards int    `json:"shards"`
	Iters  int    `json:"iters"`
	Seed   int64  `json:"seed"`
}

// coldstartQueryPool sizes the warm workload's distinct-query pool.
const coldstartQueryPool = 64

// runColdstartBench builds the tier snapshot, measures both arms, writes
// the report, and enforces the three CI gates.
func runColdstartBench(cfg coldstartConfig, minOpenSpeedup, maxHeapRatio, maxWarmSlowdown float64, out string) {
	dir, err := os.MkdirTemp("", "socbench-coldstart-*")
	if err != nil {
		cli.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "idx.bin")

	// Build + checkpoint, then drop the builder engine: both arms must
	// start from bytes on disk, not from a warm heap.
	g := corpus.New(corpus.Spec{TargetDocs: cfg.Docs, Seed: cfg.Seed})
	buildStart := time.Now()
	eng, err := shard.BuildStream(nil, semindex.FullInf, g, shard.Options{Shards: cfg.Shards})
	if err != nil {
		cli.Fatal(err)
	}
	if err := eng.Save(base); err != nil {
		cli.Fatal(err)
	}
	docs := eng.NumDocs()
	fmt.Fprintf(os.Stderr, "coldstart: built and checkpointed %d docs in %.1fs\n",
		docs, time.Since(buildStart).Seconds())
	queries := coldstartQueries(g, cfg.Seed)
	if len(queries) == 0 {
		cli.Fatal(fmt.Errorf("coldstart: empty query pool"))
	}
	var snapBytes int64
	for _, f := range shard.Fsck(base).Files {
		snapBytes += f.Size
	}
	eng = nil
	g = nil

	heapArm := measureColdstartArm(base, false, queries, cfg.Iters)
	mappedArm := measureColdstartArm(base, true, queries, cfg.Iters)

	rep := coldstartReport{
		Config:        cfg,
		Docs:          docs,
		SnapshotBytes: snapBytes,
		Heap:          heapArm,
		Mapped:        mappedArm,
		OpenSpeedup:   heapArm.OpenMs / mappedArm.OpenMs,
		HeapRatio:     float64(mappedArm.LiveHeapBytes) / float64(heapArm.LiveHeapBytes),
		WarmSlowdown:  mappedArm.Warm.P50us / heapArm.Warm.P50us,
	}

	writeReport(out, rep, fmt.Sprintf("open %.0fms heap vs %.1fms mapped (%.0fx), live heap %.0f vs %.0f MiB (%.2fx), warm p50 %.0fµs vs %.0fµs (%.2fx)",
		heapArm.OpenMs, mappedArm.OpenMs, rep.OpenSpeedup,
		float64(heapArm.LiveHeapBytes)/(1<<20), float64(mappedArm.LiveHeapBytes)/(1<<20), rep.HeapRatio,
		heapArm.Warm.P50us, mappedArm.Warm.P50us, rep.WarmSlowdown))
	failBelowFloor("mapped open speedup", rep.OpenSpeedup, minOpenSpeedup)
	failAboveCeiling("mapped/heap live-heap ratio", rep.HeapRatio, maxHeapRatio)
	failAboveCeiling("mapped/heap warm p50 slowdown", rep.WarmSlowdown, maxWarmSlowdown)
}

// coldstartQueries templates the warm workload from the corpus's own
// vocabulary — scoring-path classes only (no fuzzy/suggest probes), so
// the warm quantiles measure block decode, not edit-distance expansion.
func coldstartQueries(g *corpus.Generator, seed int64) []string {
	qs := loadgen.GenerateQueries(loadgen.VocabFromUniverse(g.Universe()),
		map[loadgen.Class]int{loadgen.ClassKeyword: 3, loadgen.ClassPhrase: 1, loadgen.ClassField: 1},
		coldstartQueryPool, seed)
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.Text
	}
	return out
}

// measureColdstartArm opens the snapshot one way, runs the warm
// workload, and samples the steady-state live heap. The engine is
// closed (mappings released) before returning so the arms don't overlap.
func measureColdstartArm(base string, mapped bool, queries []string, iters int) coldstartArm {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	eng, err := shard.LoadWith(base, nil, shard.LoadOptions{Mapped: mapped})
	if err != nil {
		cli.Fatal(err)
	}
	openMs := float64(time.Since(start).Microseconds()) / 1e3
	if fb := eng.LoadReport().MappedFallback; len(fb) > 0 {
		cli.Fatal(fmt.Errorf("coldstart: mapped arm fell back to heap on shards %v", fb))
	}

	// Warm workload: always-cold searches (NoCache) so every query pays
	// the scoring path; the first pass faults mapped blocks in, the
	// measured passes see the steady state.
	ctx := context.Background()
	opts := shard.SearchOptions{Limit: 10, NoCache: true}
	for i := 0; i < len(queries); i++ {
		if _, err := eng.Search(ctx, queries[i], opts); err != nil {
			cli.Fatal(err)
		}
	}
	samples := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		qstart := time.Now()
		if _, err := eng.Search(ctx, queries[i%len(queries)], opts); err != nil {
			cli.Fatal(err)
		}
		samples[i] = time.Since(qstart)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	live := uint64(0)
	if after.HeapAlloc > before.HeapAlloc {
		live = after.HeapAlloc - before.HeapAlloc
	}
	arm := coldstartArm{
		OpenMs:        openMs,
		LiveHeapBytes: live,
		Warm: latency{
			Iters: iters,
			P50us: quantile(samples, 0.50), P95us: quantile(samples, 0.95),
		},
	}
	if err := eng.Close(); err != nil {
		cli.Fatal(err)
	}
	return arm
}
