// Codec mode: the BENCH_8.json before/after for the block-postings
// codec. The same FULL_INF index is serialized through the legacy v1
// layout and the v2 block layout (delta+varint postings, per-block
// max-impact metadata, flate-compressed stored fields), recording the
// byte sizes, the size ratio, and encode/decode wall times; the cold
// limit-10 arm from the coldpath sweep rides along so one artifact
// carries both acceptance gates: -min-ratio fails CI when v2 stops
// halving the v1 footprint, -min-speedup when Block-Max pruning stops
// paying at limit 10.
package main

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/crawler"
	"repro/internal/index"
	"repro/internal/semindex"
	"repro/internal/shard"
)

// codecReport is the BENCH_8.json schema.
type codecReport struct {
	Config config     `json:"config"`
	Codec  codecStats `json:"codec"`
	// Limit10 is the cold naive-vs-pruned comparison at limit 10, over an
	// engine whose shards carry the v2 block metadata.
	Limit10 coldArm `json:"limit10"`
	// SpeedupP50 echoes Limit10's speedup — the latency gate.
	SpeedupP50 float64 `json:"speedup_p50"`
}

// codecStats compares the two on-disk layouts over one monolithic index.
type codecStats struct {
	Docs    int `json:"docs"`
	V1Bytes int `json:"v1_bytes"`
	V2Bytes int `json:"v2_bytes"`
	// Ratio is v1_bytes / v2_bytes — the headline size reduction and the
	// CI floor (-min-ratio).
	Ratio      float64 `json:"ratio"`
	V1EncodeMs float64 `json:"v1_encode_ms"`
	V2EncodeMs float64 `json:"v2_encode_ms"`
	V1DecodeMs float64 `json:"v1_decode_ms"`
	V2DecodeMs float64 `json:"v2_decode_ms"`
	// V1/V2DecodeHeapBytes are the post-GC live heap each fully-decoded
	// index pins (runtime.MemStats HeapAlloc delta) — the in-RAM
	// footprint baseline the BENCH_10.json mapped arm is measured
	// against, where the same bytes stay on disk and only touched blocks
	// ever materialize.
	V1DecodeHeapBytes uint64 `json:"v1_decode_heap_bytes"`
	V2DecodeHeapBytes uint64 `json:"v2_decode_heap_bytes"`
}

// runCodecBench serializes the corpus both ways, measures the cold
// limit-10 arm on the sharded engine, writes the report, and enforces
// the size and speedup floors.
func runCodecBench(eng *shard.Engine, pages []*crawler.MatchPage, queries []string,
	cfg config, rounds int, minRatio, minSpeedup float64, out string) {
	si := semindex.NewBuilder().Build(semindex.FullInf, pages)

	var v1, v2 bytes.Buffer
	start := time.Now()
	if err := si.Index.EncodeV1(&v1); err != nil {
		cli.Fatal(err)
	}
	v1Enc := time.Since(start)
	start = time.Now()
	if err := si.Index.Encode(&v2); err != nil {
		cli.Fatal(err)
	}
	v2Enc := time.Since(start)

	v1Dec, v1Heap := decodeFootprint(v1.Bytes())
	v2Dec, v2Heap := decodeFootprint(v2.Bytes())

	arm10 := measureColdArm(eng, queries, cfg.Iters, rounds, 10)

	rep := codecReport{
		Config: cfg,
		Codec: codecStats{
			Docs:              si.Index.NumDocs(),
			V1Bytes:           v1.Len(),
			V2Bytes:           v2.Len(),
			Ratio:             float64(v1.Len()) / float64(v2.Len()),
			V1EncodeMs:        float64(v1Enc.Microseconds()) / 1e3,
			V2EncodeMs:        float64(v2Enc.Microseconds()) / 1e3,
			V1DecodeMs:        float64(v1Dec.Microseconds()) / 1e3,
			V2DecodeMs:        float64(v2Dec.Microseconds()) / 1e3,
			V1DecodeHeapBytes: v1Heap,
			V2DecodeHeapBytes: v2Heap,
		},
		Limit10:    arm10,
		SpeedupP50: arm10.SpeedupP50,
	}

	writeReport(out, rep, fmt.Sprintf("v2 %d bytes vs v1 %d (%.2fx smaller), encode %.1f/%.1fms decode %.1f/%.1fms, decoded heap %.1f/%.1f MiB, limit10 pruned p50 %.1fµs (%.1fx)",
		v2.Len(), v1.Len(), rep.Codec.Ratio,
		rep.Codec.V2EncodeMs, rep.Codec.V1EncodeMs, rep.Codec.V2DecodeMs, rep.Codec.V1DecodeMs,
		float64(v2Heap)/(1<<20), float64(v1Heap)/(1<<20),
		arm10.Pruned.P50us, arm10.SpeedupP50))
	failBelowFloor("on-disk size ratio (v1/v2)", rep.Codec.Ratio, minRatio)
	failBelowFloor("cold-path speedup at limit 10", rep.SpeedupP50, minSpeedup)
}

// decodeFootprint times a full decode of one codec image and samples the
// post-GC live heap the decoded index pins, via runtime.MemStats deltas.
func decodeFootprint(data []byte) (time.Duration, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	ix, err := index.Decode(bytes.NewReader(data), nil)
	if err != nil {
		cli.Fatal(err)
	}
	d := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(ix)
	if after.HeapAlloc <= before.HeapAlloc {
		return d, 0
	}
	return d, after.HeapAlloc - before.HeapAlloc
}
