// Load mode: the BENCH_6.json scale-truth sweep. Each tier streams a
// seeded synthetic corpus (internal/corpus) through the chunked sharded
// build — the generator never materializes the corpus, so tier size costs
// index memory only — then drives a closed-loop Zipfian query workload
// (internal/loadgen) of keyword/phrase/field/fuzzy/suggest classes
// against the engine and records build throughput, QPS and high-quantile
// latency. Declarative SLOs gate every tier; any violation exits 1, which
// is what turns a CI benchmark job into an enforced contract.
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/loadgen"
	"repro/internal/semindex"
	"repro/internal/shard"
)

// loadReport is the BENCH_6.json schema.
type loadReport struct {
	Config loadBenchConfig `json:"config"`
	// SLOs echoes the parsed assertions every tier was checked against.
	SLOs []string `json:"slos"`
	// Tiers carries one entry per -size value, in the order given — the
	// scale trajectory (e.g. 10k, 100k, 1M).
	Tiers []loadTier `json:"tiers"`
	// Violations flattens every tier's SLO violations ("100k: p99 = ...").
	Violations []string `json:"violations"`
}

// loadTier is one corpus size's build + load measurement.
type loadTier struct {
	Size  string `json:"size"`
	Docs  int    `json:"docs"`
	Pages int    `json:"pages"`
	// Build throughput of the streaming sharded build at this tier.
	BuildSeconds    float64 `json:"build_seconds"`
	BuildDocsPerSec float64 `json:"build_docs_per_sec"`
	// Closed-loop results over the measured (post-warmup) phase.
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Degraded int     `json:"degraded"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	P99us    float64 `json:"p99_us"`
	P999us   float64 `json:"p999_us"`
	// ByClass counts measured requests per query class.
	ByClass map[string]int `json:"by_class"`
	// Violations lists this tier's failed SLOs, empty when all hold.
	Violations []string `json:"violations,omitempty"`
}

type loadBenchConfig struct {
	Sizes    string  `json:"sizes"`
	Shards   int     `json:"shards"`
	Workers  int     `json:"workers"`
	Requests int     `json:"requests"`
	Warmup   int     `json:"warmup"`
	ZipfS    float64 `json:"zipf_s"`
	CacheMB  int     `json:"cache_mb"`
	Seed     int64   `json:"seed"`
}

// loadQueryPool is how many distinct queries the workload templates; the
// Zipf selector over the pool makes a head of them hot.
const loadQueryPool = 500

// runLoadBench sweeps every tier, writes the report, and exits 1 on any
// SLO violation.
func runLoadBench(cfg loadBenchConfig, sloSpec, out string) {
	slos, err := loadgen.ParseSLOs(sloSpec)
	if err != nil {
		cli.Fatal(err)
	}
	rep := loadReport{Config: cfg}
	for _, s := range slos {
		rep.SLOs = append(rep.SLOs, s.Raw)
	}

	for _, sizeStr := range strings.Split(cfg.Sizes, ",") {
		sizeStr = strings.TrimSpace(sizeStr)
		if sizeStr == "" {
			continue
		}
		docs, err := corpus.ParseSize(sizeStr)
		if err != nil {
			cli.Fatal(err)
		}
		tier := runLoadTier(cfg, slos, docs)
		rep.Tiers = append(rep.Tiers, tier)
		for _, v := range tier.Violations {
			rep.Violations = append(rep.Violations, tier.Size+": "+v)
		}
		// Drop the tier's engine before building the next one: tiers are
		// measured independently, not cumulatively.
		runtime.GC()
	}

	var heads []string
	for _, t := range rep.Tiers {
		heads = append(heads, fmt.Sprintf("%s %.0f qps p99 %.0fµs", t.Size, t.QPS, t.P99us))
	}
	writeReport(out, rep, strings.Join(heads, ", "))
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "SLO violations:\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
}

// runLoadTier builds one tier's engine from the stream and load-tests it.
func runLoadTier(cfg loadBenchConfig, slos []loadgen.SLO, docs int) loadTier {
	g := corpus.New(corpus.Spec{TargetDocs: docs, Seed: cfg.Seed})
	buildStart := time.Now()
	eng, err := shard.BuildStream(nil, semindex.FullInf, g, shard.Options{
		Shards:     cfg.Shards,
		CacheBytes: int64(cfg.CacheMB) << 20,
	})
	if err != nil {
		cli.Fatal(err)
	}
	buildSec := time.Since(buildStart).Seconds()
	fmt.Fprintf(os.Stderr, "tier %s: built %d docs over %d pages in %.1fs (%.0f docs/s)\n",
		corpus.SizeLabel(docs), eng.NumDocs(), g.Pages(), buildSec,
		float64(eng.NumDocs())/buildSec)

	queries := loadgen.GenerateQueries(loadgen.VocabFromUniverse(g.Universe()),
		nil, loadQueryPool, cfg.Seed)
	res, err := loadgen.Run(context.Background(), &loadgen.EngineTarget{Eng: eng}, loadgen.Config{
		Workers:  cfg.Workers,
		Requests: cfg.Requests,
		Warmup:   cfg.Warmup,
		ZipfS:    cfg.ZipfS,
		Seed:     cfg.Seed,
		Queries:  queries,
	})
	if err != nil {
		cli.Fatal(err)
	}

	tier := loadTier{
		Size: corpus.SizeLabel(docs), Docs: eng.NumDocs(), Pages: g.Pages(),
		BuildSeconds: buildSec, BuildDocsPerSec: float64(eng.NumDocs()) / buildSec,
		Requests: res.Requests, Errors: res.Errors, Degraded: res.Degraded,
		QPS:   res.QPS,
		P50us: us(res.P50), P95us: us(res.P95), P99us: us(res.P99), P999us: us(res.P999),
		ByClass: map[string]int{},
	}
	for c, n := range res.ByClass {
		tier.ByClass[string(c)] = n
	}
	for _, v := range loadgen.CheckSLOs(res, slos) {
		tier.Violations = append(tier.Violations, v.String())
	}
	return tier
}

func us(d time.Duration) float64 { return float64(d) / 1e3 }
