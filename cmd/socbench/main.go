// Command socbench is the benchmark smoke harness behind CI's BENCH_*.json
// artifacts: it builds the sharded FULL_INF engine, measures it, and
// writes one machine-readable file per mode. It is deliberately
// in-process (no `go test` exec) so one static binary run produces one
// artifact.
//
//	socbench -out BENCH_3.json
//	socbench -matches 50 -shards 8 -iters 1000 -out -
//
// The default (overhead) mode records query p50/p95, build throughput,
// and the instrumented-vs-uninstrumented p50 overhead percentage; the CI
// job fails the build if that overhead crosses the 5% acceptance bar.
//
// -mode cache switches to the query-cache sweep behind BENCH_4.json: a
// seeded Zipfian repeated-query mix runs once forced-cold (NoCache) and
// once against the cache, reporting cold/warm latency quantiles, the hit
// rate, and a singleflight coalescing burst. -min-speedup makes CI fail
// when the warm p50 stops beating the cold p50.
//
//	socbench -mode cache -out BENCH_4.json
//	socbench -mode cache -zipf-s 1.4 -cache-mb 16 -min-speedup 5
//
// -mode coldpath switches to the BENCH_5.json scoring-kernel comparison:
// the always-cold query mix runs through the pruned document-at-a-time
// kernel and the term-at-a-time exhaustive path at limits 10 and 100,
// reporting per-path latency quantiles, allocations per query, and the
// naive-vs-pruned speedup. -min-speedup makes CI fail when pruning stops
// paying at limit 10.
//
//	socbench -mode coldpath -out BENCH_5.json
//	socbench -mode coldpath -min-speedup 2
//
// -mode load switches to the BENCH_6.json scale-truth sweep: for each
// -size tier (comma-separated, e.g. 10k,100k,1M) it streams a synthetic
// corpus through the sharded build (internal/corpus — peak memory
// independent of corpus size), then drives a closed-loop Zipfian query
// mix of keyword/phrase/field/fuzzy/suggest classes against the engine
// (internal/loadgen), recording build throughput, QPS and p50/p95/p99/
// p999 latency per tier. -slo declares assertions ("p99<50ms,
// error_rate<1%") checked against every tier; any violation exits 1.
//
//	socbench -mode load -size 10k -slo 'p99<50ms,error_rate<1%' -out BENCH_6.json
//	socbench -mode load -size 10k,100k,1M -workers 8 -requests 5000
//
// -mode codec switches to the BENCH_8.json codec before/after: the same
// FULL_INF index is serialized through the legacy v1 layout and the v2
// block-postings layout, recording byte sizes, the v1/v2 size ratio and
// encode/decode times, plus the cold limit-10 pruned-vs-exhaustive arm
// over the v2-backed engine. -min-ratio fails CI when v2 stops halving
// the v1 footprint; -min-speedup guards the limit-10 speedup.
//
//	socbench -mode codec -out BENCH_8.json
//	socbench -mode codec -min-ratio 2 -min-speedup 2
//
// -mode ingest switches to the BENCH_9.json write-firehose comparison:
// two 10k-document engines — one with scoped (per-shard epoch +
// footprint/statistics) cache invalidation, one with the legacy
// evict-on-any-write policy — each take a paced hot-page upsert stream
// at -write-rate writes/s while closed-loop Zipfian readers measure the
// warm path. The report carries each arm's hit rate, eviction counters
// and latency under fire; -min-hit-rate and -max-p99-ms gate the scoped
// arm in CI.
//
//	socbench -mode ingest -out BENCH_9.json
//	socbench -mode ingest -shards 8 -write-rate 100 -min-hit-rate 0.5 -max-p99-ms 50
//
// -mode coldstart switches to the BENCH_10.json heap-vs-mapped serving
// comparison: a -size tier corpus is built, checkpointed and dropped,
// then the snapshot is opened heap-decoded and memory-mapped, recording
// each arm's open time, warm always-cold query quantiles, and post-GC
// live heap after the warm workload. -min-open-speedup fails CI when the
// mapped open stops beating the full decode, -max-heap-ratio when the
// mapped arm's steady-state heap stops undercutting the heap arm, and
// -max-warm-slowdown when lazy block decode costs too much warm latency.
//
//	socbench -mode coldstart -size 100k -out BENCH_10.json
//	socbench -mode coldstart -size 100k -min-open-speedup 10 -max-heap-ratio 0.33 -max-warm-slowdown 1.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
)

// report is the BENCH_3.json schema.
type report struct {
	Config   config  `json:"config"`
	Build    build   `json:"build"`
	Query    latency `json:"query"`
	Overhead ovh     `json:"overhead"`
}

type config struct {
	Matches int `json:"matches"`
	Shards  int `json:"shards"`
	Iters   int `json:"iters"`
}

type build struct {
	Docs       int     `json:"docs"`
	Seconds    float64 `json:"seconds"`
	DocsPerSec float64 `json:"docs_per_sec"`
}

type ovh struct {
	InstrumentedP50us   float64 `json:"instrumented_p50_us"`
	UninstrumentedP50us float64 `json:"uninstrumented_p50_us"`
	P50OverheadPct      float64 `json:"p50_overhead_pct"`
}

func main() {
	fs := flag.NewFlagSet("socbench", flag.ExitOnError)
	matches := fs.Int("matches", 10, "corpus size (paper scale is 10)")
	shards := fs.Int("shards", 4, "engine shard count")
	iters := fs.Int("iters", 400, "measured queries per arm and round")
	rounds := fs.Int("rounds", 3, "alternating measurement rounds per arm (best round wins)")
	maxOverhead := fs.Float64("max-overhead", 0, "fail (exit 1) if p50 overhead exceeds this percentage (0 = report only)")
	mode := fs.String("mode", "overhead", `benchmark: "overhead" (BENCH_3, observability price), "cache" (BENCH_4, query-cache sweep), "coldpath" (BENCH_5, scoring-kernel comparison), "load" (BENCH_6, scale-truth load/SLO sweep), "codec" (BENCH_8, v1-vs-v2 codec before/after), "ingest" (BENCH_9, scoped-vs-legacy cache invalidation under a write firehose) or "coldstart" (BENCH_10, heap-vs-mapped open time, live heap and warm latency)`)
	zipfS := fs.Float64("zipf-s", 1.2, "cache/load mode: Zipf exponent of the repeated-query mix")
	cacheMB := fs.Int("cache-mb", 64, "cache/load mode: query-cache capacity in MiB")
	minSpeedup := fs.Float64("min-speedup", 0, "cache/coldpath/codec mode: fail (exit 1) if the p50 speedup falls below this factor (0 = report only)")
	minRatio := fs.Float64("min-ratio", 0, "codec mode: fail (exit 1) if the v1/v2 size ratio falls below this factor (0 = report only)")
	size := fs.String("size", "10k", "load mode: comma-separated corpus tiers (e.g. 10k,100k,1M)")
	workers := fs.Int("workers", 4, "load mode: closed-loop worker concurrency")
	requests := fs.Int("requests", 2000, "load mode: measured requests per tier")
	warmup := fs.Int("warmup", 200, "load mode: warmup requests per tier (excluded from statistics)")
	slo := fs.String("slo", "", `load mode: SLO assertions, e.g. "p99<50ms,error_rate<1%" (violation = exit 1)`)
	seed := fs.Int64("seed", 42, "load mode: corpus and workload seed")
	writeRate := fs.Int("write-rate", 100, "ingest mode: hot-page upserts per second")
	window := fs.Int("seconds", 10, "ingest mode: measurement window per arm, in seconds")
	minHitRate := fs.Float64("min-hit-rate", 0, "ingest mode: fail (exit 1) if the scoped arm's warm hit rate falls below this fraction (0 = report only)")
	maxP99 := fs.Float64("max-p99-ms", 0, "ingest mode: fail (exit 1) if the scoped arm's p99 exceeds this many milliseconds (0 = report only)")
	minOpenSpeedup := fs.Float64("min-open-speedup", 0, "coldstart mode: fail (exit 1) if mapped open is not this many times faster than the heap decode (0 = report only)")
	maxHeapRatio := fs.Float64("max-heap-ratio", 0, "coldstart mode: fail (exit 1) if the mapped arm's steady-state live heap exceeds this fraction of the heap arm's (0 = report only)")
	maxWarmSlowdown := fs.Float64("max-warm-slowdown", 0, "coldstart mode: fail (exit 1) if the mapped warm p50 exceeds this multiple of the heap arm's (0 = report only)")
	out := fs.String("out", "", "output file (- = stdout; default BENCH_<n>.json by mode)")
	fs.Parse(os.Args[1:])
	if *out == "" {
		switch *mode {
		case "cache":
			*out = "BENCH_4.json"
		case "coldpath":
			*out = "BENCH_5.json"
		case "load":
			*out = "BENCH_6.json"
		case "codec":
			*out = "BENCH_8.json"
		case "ingest":
			*out = "BENCH_9.json"
		case "coldstart":
			*out = "BENCH_10.json"
		default:
			*out = "BENCH_3.json"
		}
	}

	// Coldstart mode builds its own tier snapshot and opens it both ways.
	if *mode == "coldstart" {
		docs, err := corpus.ParseSize(strings.SplitN(*size, ",", 2)[0])
		if err != nil {
			cli.Fatal(err)
		}
		runColdstartBench(coldstartConfig{
			Size: corpus.SizeLabel(docs), Docs: docs,
			Shards: *shards, Iters: *iters, Seed: *seed,
		}, *minOpenSpeedup, *maxHeapRatio, *maxWarmSlowdown, *out)
		return
	}

	// Ingest mode builds its own 10k engines (one per invalidation arm).
	if *mode == "ingest" {
		docs, err := corpus.ParseSize(strings.SplitN(*size, ",", 2)[0])
		if err != nil {
			cli.Fatal(err)
		}
		runIngestBench(ingestBenchConfig{
			Docs: docs, Shards: *shards, Workers: *workers,
			WriteRate: *writeRate, Seconds: *window,
			ZipfS: *zipfS, CacheMB: *cacheMB, Seed: *seed,
		}, *minHitRate, *maxP99, *out)
		return
	}

	// Load mode builds its own tiered corpora; the paper-scale engine
	// below would be wasted work.
	if *mode == "load" {
		runLoadBench(loadBenchConfig{
			Sizes: *size, Shards: *shards, Workers: *workers,
			Requests: *requests, Warmup: *warmup,
			ZipfS: *zipfS, CacheMB: *cacheMB, Seed: *seed,
		}, *slo, *out)
		return
	}

	cfg := soccer.DefaultConfig()
	cfg.Matches = *matches
	pages := crawler.PagesFromCorpus(soccer.Generate(cfg))

	buildStart := time.Now()
	eng := shard.Build(nil, semindex.FullInf, pages, shard.Options{Shards: *shards})
	buildSec := time.Since(buildStart).Seconds()

	queries := make([]string, 0, len(eval.PaperQueries()))
	for _, q := range eval.PaperQueries() {
		queries = append(queries, q.Keywords)
	}

	if *mode == "cache" {
		runCacheBench(eng, queries, cacheBenchConfig{
			Matches: *matches, Shards: *shards, Iters: *iters,
			ZipfS: *zipfS, CacheMB: *cacheMB,
		}, *minSpeedup, *out)
		return
	}
	if *mode == "coldpath" {
		runColdBench(eng, queries,
			config{Matches: *matches, Shards: *shards, Iters: *iters},
			*rounds, *minSpeedup, *out)
		return
	}
	if *mode == "codec" {
		runCodecBench(eng, pages, queries,
			config{Matches: *matches, Shards: *shards, Iters: *iters},
			*rounds, *minRatio, *minSpeedup, *out)
		return
	}

	// Alternate instrumented/uninstrumented rounds so drift (thermal, GC,
	// noisy neighbours) hits both arms; keep each arm's fastest round.
	reg := obs.NewRegistry()
	instr := make([][]time.Duration, 0, *rounds)
	plain := make([][]time.Duration, 0, *rounds)
	for r := 0; r < *rounds; r++ {
		eng.SetMetrics(reg)
		instr = append(instr, measure(eng, queries, *iters))
		eng.SetMetrics(nil)
		plain = append(plain, measure(eng, queries, *iters))
	}
	eng.SetMetrics(obs.Default)

	instrP50 := bestP50(instr)
	plainP50 := bestP50(plain)
	all := flatten(instr)

	rep := report{
		Config: config{Matches: *matches, Shards: *shards, Iters: *iters},
		Build: build{
			Docs: eng.NumDocs(), Seconds: buildSec,
			DocsPerSec: float64(eng.NumDocs()) / buildSec,
		},
		Query: latency{
			Iters: len(all),
			P50us: quantile(all, 0.50), P95us: quantile(all, 0.95),
		},
		Overhead: ovh{
			InstrumentedP50us:   instrP50,
			UninstrumentedP50us: plainP50,
			P50OverheadPct:      100 * (instrP50 - plainP50) / plainP50,
		},
	}

	writeReport(*out, rep, fmt.Sprintf("query p50 %.1fµs p95 %.1fµs, build %.0f docs/s, obs overhead %+.2f%%",
		rep.Query.P50us, rep.Query.P95us, rep.Build.DocsPerSec, rep.Overhead.P50OverheadPct))
	if *maxOverhead > 0 && rep.Overhead.P50OverheadPct > *maxOverhead {
		fmt.Fprintf(os.Stderr, "observability overhead %.2f%% exceeds the %.1f%% budget\n",
			rep.Overhead.P50OverheadPct, *maxOverhead)
		os.Exit(1)
	}
}

// measure runs iters queries (cycling the paper mix) after a short warmup
// and returns each query's wall time.
func measure(eng *shard.Engine, queries []string, iters int) []time.Duration {
	for i := 0; i < iters/10+1; i++ {
		eng.SearchHits(queries[i%len(queries)], 10)
	}
	out := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		eng.SearchHits(queries[i%len(queries)], 10)
		out[i] = time.Since(start)
	}
	return out
}
