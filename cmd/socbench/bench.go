// Shared measurement and reporting plumbing for every socbench mode.
// Each mode file (main.go overhead, cachebench.go, coldbench.go,
// loadbench.go) owns its schema and sweep; the sample math, the
// report-file handling and the CI floor enforcement live here once.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cli"
)

// latency is the per-arm quantile block shared by every report schema.
type latency struct {
	Iters int     `json:"iters"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
}

// writeReport marshals rep to out ("-" = stdout) and, when writing a
// file, prints the one-line summary so CI logs carry the headline numbers
// without opening the artifact.
func writeReport(out string, rep any, summary string) {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		cli.Fatal(err)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", out, summary)
}

// failBelowFloor exits 1 when a CI floor is armed (floor > 0) and the
// measured factor falls below it.
func failBelowFloor(what string, got, floor float64) {
	if floor > 0 && got < floor {
		fmt.Fprintf(os.Stderr, "%s %.2fx is below the %.1fx floor\n", what, got, floor)
		os.Exit(1)
	}
}

// failAboveCeiling exits 1 when a CI ceiling is armed (ceiling > 0) and
// the measured ratio exceeds it.
func failAboveCeiling(what string, got, ceiling float64) {
	if ceiling > 0 && got > ceiling {
		fmt.Fprintf(os.Stderr, "%s %.2fx exceeds the %.2fx ceiling\n", what, got, ceiling)
		os.Exit(1)
	}
}

// bestP50 returns the lowest per-round median, in microseconds.
func bestP50(rounds [][]time.Duration) float64 {
	best := 0.0
	for i, r := range rounds {
		p := quantile(r, 0.50)
		if i == 0 || p < best {
			best = p
		}
	}
	return best
}

func flatten(rounds [][]time.Duration) []time.Duration {
	var out []time.Duration
	for _, r := range rounds {
		out = append(out, r...)
	}
	return out
}

// quantile returns the q-quantile of samples in microseconds (nearest-rank
// with linear interpolation).
func quantile(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return float64(s[len(s)-1]) / 1e3
	}
	frac := pos - float64(lo)
	v := float64(s[lo])*(1-frac) + float64(s[lo+1])*frac
	return v / 1e3
}
