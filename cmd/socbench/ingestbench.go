// Ingest mode: the BENCH_9.json write-firehose sweep behind the LSM
// ingest work. One 10k-document engine per arm takes a paced stream of
// page upserts (a hot page re-ingested at -write-rate writes/s — the
// worst case for a cache: every write moves a shard epoch) while a
// closed-loop Zipfian query mix hammers the warm path. The two arms
// differ in exactly one switch:
//
//	scoped — per-shard epochs + footprint/statistics validation: a write
//	         to shard 3 can only evict answers whose terms live there
//	legacy — any epoch motion evicts every cached answer
//
// The report carries each arm's warm hit rate, eviction counters and
// latency under fire; -min-hit-rate and -max-p99-ms turn the scoped
// arm's numbers into CI floors.
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
)

// ingestReport is the BENCH_9.json schema.
type ingestReport struct {
	Config ingestBenchConfig `json:"config"`
	// Scoped is the arm under test; Legacy is the evict-everything
	// baseline the scoped validation replaces.
	Scoped ingestArm `json:"scoped"`
	Legacy ingestArm `json:"legacy"`
	// HitRateGain is scoped hit rate minus legacy hit rate, in points.
	HitRateGain float64 `json:"hit_rate_gain"`
}

// ingestArm is one invalidation policy's measurement under the firehose.
type ingestArm struct {
	Name string `json:"name"`
	// Writer-side accounting over the measured window.
	Writes     int     `json:"writes"`
	WriteRate  float64 `json:"write_rate_per_sec"`
	Tombstones int     `json:"tombstones"`
	Merges     uint64  `json:"merges"`
	// Cache counters over the whole arm (warmup included — the firehose
	// runs through it too).
	HitRate       float64 `json:"hit_rate"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Invalidations uint64  `json:"invalidations"`
	// Pool split: how many of the PoolSize queries have no postings on
	// the write-hot shard (the entries scoped invalidation can keep).
	PoolSize      int `json:"pool_size"`
	PoolLocalized int `json:"pool_localized"`
	// Closed-loop read results over the measured rounds.
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
}

type ingestBenchConfig struct {
	Docs      int     `json:"docs"`
	Shards    int     `json:"shards"`
	Workers   int     `json:"workers"`
	WriteRate int     `json:"write_rate"`
	Seconds   int     `json:"seconds"`
	ZipfS     float64 `json:"zipf_s"`
	CacheMB   int     `json:"cache_mb"`
	Seed      int64   `json:"seed"`
}

// ingestQueryPool sizes the templated query pool; the Zipf selector
// makes a head of it hot, which is what a cache serves.
const ingestQueryPool = 300

// ingestWriters is the concurrent writer count: upsert cost is
// analysis-dominated, so reaching a 100/s firehose needs overlapping
// analyses feeding the serialized commit path.
const ingestWriters = 8

// runIngestBench measures both arms and enforces the scoped floors.
func runIngestBench(cfg ingestBenchConfig, minHitRate, maxP99ms float64, out string) {
	scoped := runIngestArm(cfg, true)
	runtime.GC()
	legacy := runIngestArm(cfg, false)

	rep := ingestReport{
		Config: cfg, Scoped: scoped, Legacy: legacy,
		HitRateGain: scoped.HitRate - legacy.HitRate,
	}
	writeReport(out, rep, fmt.Sprintf(
		"scoped hit rate %.1f%% (legacy %.1f%%) at %.0f writes/s, warm p99 %.0fµs",
		100*scoped.HitRate, 100*legacy.HitRate, scoped.WriteRate, scoped.P99us))

	if minHitRate > 0 && scoped.HitRate < minHitRate {
		fmt.Fprintf(os.Stderr, "scoped hit rate %.1f%% is below the %.0f%% floor\n",
			100*scoped.HitRate, 100*minHitRate)
		os.Exit(1)
	}
	if maxP99ms > 0 && scoped.P99us > maxP99ms*1000 {
		fmt.Fprintf(os.Stderr, "scoped p99 %.0fµs exceeds the %.0fms ceiling\n",
			scoped.P99us, maxP99ms)
		os.Exit(1)
	}
}

// runIngestArm builds a fresh engine, switches the invalidation policy,
// and races the paced writer against the closed-loop readers for the
// configured window.
func runIngestArm(cfg ingestBenchConfig, scoped bool) ingestArm {
	g := corpus.New(corpus.Spec{TargetDocs: cfg.Docs, Seed: cfg.Seed})
	eng, err := shard.BuildStream(nil, semindex.FullInf, g, shard.Options{Shards: cfg.Shards})
	if err != nil {
		cli.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	eng.EnableCache(int64(cfg.CacheMB)<<20, reg)
	eng.SetScopedInvalidation(scoped)
	eng.StartMerger(shard.MergePolicy{})
	defer eng.StopMerger()

	// The hot set: small out-of-corpus matches that all hash to ONE
	// shard, re-ingested round-robin on every tick. Each write
	// tombstones the page's previous version and moves exactly that
	// shard's epoch — the scoped arm's intended case (writes
	// concentrated, reads elsewhere untouched) and the legacy arm's
	// worst (any write evicts all). Short matches keep per-upsert
	// analysis cheap enough to sustain the target rate.
	var hot []*crawler.MatchPage
	hotShard := -1
	for _, p := range crawler.PagesFromCorpus(soccer.Generate(soccer.Config{
		Matches: 400, Seed: cfg.Seed + 99, NarrationsPerMatch: 2,
	})) {
		if hotShard < 0 {
			hotShard = shard.ShardFor(p.ID, cfg.Shards)
		}
		if shard.ShardFor(p.ID, cfg.Shards) == hotShard {
			hot = append(hot, p)
			if len(hot) == ingestWriters {
				break
			}
		}
	}
	if len(hot) == 0 {
		cli.Fatal(fmt.Errorf("ingest bench: no hot pages generated"))
	}

	// Seed the hot pages once and compact, so the firehose below is pure
	// steady-state replacement: every write nets the corpus statistics
	// to exactly their prior values.
	ctx := context.Background()
	if _, err := eng.Ingest(ctx, hot, shard.IngestOptions{Merge: shard.MergeNow}); err != nil {
		cli.Fatal(err)
	}
	stop := make(chan struct{})
	arm := ingestArm{Name: "legacy"}
	if scoped {
		arm.Name = "scoped"
	}
	// The read pool: templated queries classified by whether their
	// terms have any postings on the write-hot shard. Live read traffic
	// concentrates on entities unrelated to the page being rewritten;
	// the pool mirrors that with a write-disjoint head (4:1 against the
	// generic tail) and the report carries the split so the number is
	// interpretable.
	cands := loadgen.GenerateQueries(loadgen.VocabFromUniverse(g.Universe()),
		nil, 10*ingestQueryPool, cfg.Seed)
	hotBase := eng.Shard(hotShard)
	var local, generic []loadgen.Query
	for _, q := range cands {
		touches := q.Class == loadgen.ClassSuggest
		if !touches {
			fp, ok := hotBase.QueryFootprint(q.Text)
			touches = !ok
			for _, ft := range fp {
				if hotBase.Index.DocFreq(ft.Field, ft.Term) > 0 {
					touches = true
					break
				}
			}
		}
		if touches {
			generic = append(generic, q)
		} else {
			local = append(local, q)
		}
	}
	var queries []loadgen.Query
	for len(queries) < ingestQueryPool && (len(local) > 0 || len(generic) > 0) {
		for k := 0; k < 4 && len(local) > 0 && len(queries) < ingestQueryPool; k++ {
			queries = append(queries, local[0])
			local = local[1:]
			arm.PoolLocalized++
		}
		if len(generic) > 0 && len(queries) < ingestQueryPool {
			queries = append(queries, generic[0])
			generic = generic[1:]
		}
	}
	arm.PoolSize = len(queries)

	// One paced token stream feeds ingestWriters concurrent writers:
	// page analysis dominates a single upsert's cost, so hitting the
	// target rate needs overlapping analyses. Commit order stays
	// serialized inside the engine.
	var writes, tombstones atomic.Int64
	tokens := make(chan *crawler.MatchPage, 1)
	var wg sync.WaitGroup
	for w := 0; w < ingestWriters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range tokens {
				res, err := eng.Ingest(ctx, []*crawler.MatchPage{p}, shard.IngestOptions{})
				if err != nil {
					cli.Fatal(err)
				}
				writes.Add(1)
				tombstones.Add(int64(res.Tombstones))
			}
		}()
	}
	writerStart := time.Now()
	go func() {
		defer close(tokens)
		tick := time.NewTicker(time.Second / time.Duration(cfg.WriteRate))
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				select {
				case tokens <- hot[i%len(hot)]:
				default: // writers saturated: the achieved rate is reported
				}
			}
		}
	}()

	// Closed-loop readers in rounds until the window closes; quantiles
	// come from the last full round (steady state), counters from the
	// whole window.
	deadline := time.Now().Add(time.Duration(cfg.Seconds) * time.Second)
	var last *loadgen.Result
	warmup := 100
	for round := 0; time.Now().Before(deadline); round++ {
		res, err := loadgen.Run(ctx, &loadgen.EngineTarget{Eng: eng}, loadgen.Config{
			Workers:  cfg.Workers,
			Requests: 2000,
			Warmup:   warmup,
			ZipfS:    cfg.ZipfS,
			Seed:     cfg.Seed + int64(round),
			Queries:  queries,
		})
		if err != nil {
			cli.Fatal(err)
		}
		warmup = 0
		arm.Requests += res.Requests
		arm.Errors += res.Errors
		last = res
	}
	close(stop)
	wg.Wait()
	arm.Writes = int(writes.Load())
	arm.Tombstones = int(tombstones.Load())
	arm.WriteRate = float64(arm.Writes) / time.Since(writerStart).Seconds()

	hits := reg.Counter(qcache.MetricHits).Value()
	misses := reg.Counter(qcache.MetricMisses).Value()
	arm.Hits, arm.Misses = hits, misses
	arm.Invalidations = reg.Counter(qcache.MetricInvalidations).Value()
	arm.Merges = reg.Counter("shard_engine_merges_total").Value()
	if hits+misses > 0 {
		arm.HitRate = float64(hits) / float64(hits+misses)
	}
	if last != nil {
		arm.QPS = last.QPS
		arm.P50us, arm.P99us = us(last.P50), us(last.P99)
	}
	fmt.Fprintf(os.Stderr, "arm %s: %d writes (%.0f/s), %d reads, hit rate %.1f%%, %d invalidations, %d merges, p99 %.0fµs\n",
		arm.Name, arm.Writes, arm.WriteRate, arm.Requests, 100*arm.HitRate,
		arm.Invalidations, arm.Merges, arm.P99us)
	return arm
}
