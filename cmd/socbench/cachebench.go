// Cache mode: the BENCH_4.json sweep quantifying the query-result cache.
// A seeded Zipfian stream over the paper queries — the classic web-search
// popularity shape, a few hot queries and a long tail — runs twice: once
// forced cold (NoCache on every call) and once against the cache. The
// same seed drives both arms, so the only difference is the cache. A
// final burst of concurrent identical queries exercises the singleflight
// layer and records how many callers shared one scatter.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/shard"
)

// cacheReport is the BENCH_4.json schema.
type cacheReport struct {
	Config cacheBenchConfig `json:"config"`
	// Cold is the NoCache arm: every query pays the full scatter-gather.
	Cold latency `json:"cold"`
	// Warm is the cached arm over the identical query stream.
	Warm latency `json:"warm"`
	// SpeedupP50 is cold p50 / warm p50 — the headline number.
	SpeedupP50 float64 `json:"speedup_p50"`
	// HitRate is hits / (hits + misses) over the warm arm.
	HitRate   float64 `json:"hit_rate"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	// Burst reports the singleflight check: BurstCallers concurrent
	// identical cold queries, of which BurstCoalesced shared the single
	// leader's scatter.
	BurstCallers   int    `json:"burst_callers"`
	BurstCoalesced uint64 `json:"burst_coalesced"`
}

type cacheBenchConfig struct {
	Matches int     `json:"matches"`
	Shards  int     `json:"shards"`
	Iters   int     `json:"iters"`
	ZipfS   float64 `json:"zipf_s"`
	CacheMB int     `json:"cache_mb"`
}

// runCacheBench measures both arms, writes the report, and enforces the
// speedup floor.
func runCacheBench(eng *shard.Engine, queries []string, cfg cacheBenchConfig, minSpeedup float64, out string) {
	// A fresh registry isolates this run's cache counters; the engine's
	// own metrics ride along on the same registry.
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	eng.EnableCache(int64(cfg.CacheMB)<<20, reg)
	defer eng.SetMetrics(obs.Default)

	// One seeded Zipf stream indexes the query mix for both arms: rank 0
	// is the hot query, the tail is cold. Identical streams make the two
	// arms differ only in caching.
	zrng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(zrng, cfg.ZipfS, 1, uint64(len(queries)-1))
	stream := make([]int, cfg.Iters)
	for i := range stream {
		stream[i] = int(z.Uint64())
	}

	ctx := context.Background()
	run := func(noCache bool) []time.Duration {
		durs := make([]time.Duration, len(stream))
		for i, qi := range stream {
			start := time.Now()
			if _, err := eng.Search(ctx, queries[qi], shard.SearchOptions{Limit: 10, NoCache: noCache}); err != nil {
				cli.Fatal(err)
			}
			durs[i] = time.Since(start)
		}
		return durs
	}

	// Cold first: NoCache bypasses the cache entirely, so the warm arm
	// still starts empty and pays its own compulsory misses.
	cold := run(true)
	warm := run(false)

	hits := reg.Counter(qcache.MetricHits).Value()
	misses := reg.Counter(qcache.MetricMisses).Value()

	// Singleflight burst: concurrent identical queries on a key the warm
	// arm never cached (a distinct limit), so every caller arrives cold.
	const burst = 16
	coalescedBefore := reg.Counter(qcache.MetricCoalesced).Value()
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Search(ctx, queries[0], shard.SearchOptions{Limit: 7}); err != nil {
				cli.Fatal(err)
			}
		}()
	}
	wg.Wait()

	coldP50, warmP50 := quantile(cold, 0.50), quantile(warm, 0.50)
	rep := cacheReport{
		Config: cfg,
		Cold: latency{
			Iters: len(cold),
			P50us: coldP50, P95us: quantile(cold, 0.95),
		},
		Warm: latency{
			Iters: len(warm),
			P50us: warmP50, P95us: quantile(warm, 0.95),
		},
		SpeedupP50:     coldP50 / warmP50,
		HitRate:        float64(hits) / float64(hits+misses),
		Hits:           hits,
		Misses:         misses,
		Coalesced:      reg.Counter(qcache.MetricCoalesced).Value(),
		BurstCallers:   burst,
		BurstCoalesced: reg.Counter(qcache.MetricCoalesced).Value() - coalescedBefore,
	}

	writeReport(out, rep, fmt.Sprintf("cold p50 %.1fµs, warm p50 %.1fµs (%.1fx), hit rate %.1f%%, burst coalesced %d/%d",
		coldP50, warmP50, rep.SpeedupP50, 100*rep.HitRate, rep.BurstCoalesced, burst-1))
	failBelowFloor("cache speedup", rep.SpeedupP50, minSpeedup)
}
