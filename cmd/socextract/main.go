// Command socextract runs information extraction and ontology population
// (Sections 3.3-3.4) over match pages, writing one Turtle model per match —
// the paper's "final OWL files" of pipeline step 5.
//
//	socextract -out models/              simulate, extract, populate, write
//	socextract -pages pages/ -out models/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/soccer"
)

func main() {
	fs := flag.NewFlagSet("socextract", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	out := fs.String("out", "models", "directory for the per-match Turtle models")
	fs.Parse(os.Args[1:])

	pages, _, err := cf.LoadPages()
	if err != nil {
		cli.Fatal(err)
	}
	sys := core.New()
	sys.LoadPages(pages)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		cli.Fatal(err)
	}
	totalEvents, unknown := 0, 0
	for _, page := range pages {
		pm := sys.Populate(page)
		for _, r := range pm.Events {
			totalEvents++
			if r.Kind == soccer.KindUnknown {
				unknown++
			}
		}
		f, err := os.Create(filepath.Join(*out, page.ID+".ttl"))
		if err != nil {
			cli.Fatal(err)
		}
		if err := sys.WriteModel(f, page, false); err != nil {
			cli.Fatal(err)
		}
		f.Close()
	}
	fmt.Printf("extracted %d event records (%d unknown) from %d matches into %s\n",
		totalEvents, unknown, len(pages), *out)
}
