// Command socsearch is the keyword query interface of Section 3.6: it
// builds the semantic index over a corpus and answers keyword queries,
// either from the command line or interactively from stdin.
//
//	socsearch "messi barcelona goal"
//	socsearch -level TRAD "goal"
//	socsearch -load idx.bin "goal"  search a saved index
//	socsearch -i                    interactive prompt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/index"
	"repro/internal/semindex"
)

func main() {
	fs := flag.NewFlagSet("socsearch", flag.ExitOnError)
	var cf cli.CorpusFlags
	cf.Register(fs)
	level := fs.String("level", string(semindex.FullInf), "index level to search")
	limit := fs.Int("n", 10, "number of results")
	interactive := fs.Bool("i", false, "interactive mode")
	load := fs.String("load", "", "load a saved index file instead of building")
	fs.Parse(os.Args[1:])

	var si *semindex.SemanticIndex
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			cli.Fatal(err)
		}
		si, err = semindex.Load(f, nil)
		f.Close()
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("loaded %s index (%d docs) from %s\n", si.Level, si.Index.NumDocs(), *load)
	} else {
		pages, _, err := cf.LoadPages()
		if err != nil {
			cli.Fatal(err)
		}
		start := time.Now()
		si = semindex.NewBuilder().Build(semindex.Level(*level), pages)
		fmt.Printf("built %s over %d matches (%d docs) in %v\n",
			si.Level, len(pages), si.Index.NumDocs(), time.Since(start).Round(time.Millisecond))
	}
	hl := index.Highlighter{Pre: "[", Post: "]"}

	run := func(q string) {
		t0 := time.Now()
		hits := si.Search(q, *limit)
		fmt.Printf("%d results in %v for %q\n", len(hits), time.Since(t0).Round(time.Microsecond), q)
		for i, h := range hits {
			kind := h.Meta(semindex.MetaKind)
			narr := h.Doc.Get(semindex.FieldNarration)
			if narr == "" {
				narr = "(no narration: " + h.Meta(semindex.MetaSubject) + ")"
			} else {
				narr = hl.Snippet(narr, q)
			}
			fmt.Printf("%2d. [%5.2f] %-16s %s' %s\n", i+1, h.Score, kind, h.Meta(semindex.MetaMinute), narr)
		}
	}

	if *interactive {
		sc := bufio.NewScanner(os.Stdin)
		fmt.Print("query> ")
		for sc.Scan() {
			q := sc.Text()
			if q == "" || q == "quit" || q == "exit" {
				return
			}
			run(q)
			fmt.Print("query> ")
		}
		return
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: socsearch [flags] <keyword query>")
		os.Exit(2)
	}
	run(fs.Arg(0))
}
