package repro

// Integration test for the command-line tools: build every binary once and
// drive the full disk-based pipeline the way a user would —
// generate pages -> extract models -> infer -> build+save index -> search.
// Skipped under -short (it shells out to the Go toolchain).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, binDir, name string) string {
	t.Helper()
	bin := filepath.Join(binDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	binDir := t.TempDir()
	work := t.TempDir()

	socgen := buildTool(t, binDir, "socgen")
	socextract := buildTool(t, binDir, "socextract")
	socinfer := buildTool(t, binDir, "socinfer")
	socindex := buildTool(t, binDir, "socindex")
	socsearch := buildTool(t, binDir, "socsearch")
	socontology := buildTool(t, binDir, "socontology")

	pages := filepath.Join(work, "pages")
	models := filepath.Join(work, "models")
	inferred := filepath.Join(work, "inferred")
	idx := filepath.Join(work, "idx.bin")

	// 1. Generate the corpus to disk.
	out := run(t, socgen, "-matches", "3", "-out", pages)
	if !strings.Contains(out, "3 matches") {
		t.Errorf("socgen output: %s", out)
	}
	entries, err := os.ReadDir(pages)
	if err != nil || len(entries) != 3 {
		t.Fatalf("pages dir: %v, %d entries", err, len(entries))
	}

	// 2. Extract and populate from the saved pages.
	out = run(t, socextract, "-pages", pages, "-out", models)
	if !strings.Contains(out, "extracted") {
		t.Errorf("socextract output: %s", out)
	}
	if files, _ := os.ReadDir(models); len(files) != 3 {
		t.Errorf("models dir has %d files", len(files))
	}

	// 3. Inference with consistency check; write inferred models.
	out = run(t, socinfer, "-pages", pages, "-check", "-out", inferred)
	if !strings.Contains(out, "consistent") {
		t.Errorf("socinfer output: %s", out)
	}

	// 4. Build and save the index from the same pages.
	out = run(t, socindex, "-pages", pages, "-level", "FULL_INF", "-save", idx)
	if !strings.Contains(out, "saved to") {
		t.Errorf("socindex output: %s", out)
	}

	// 5. Search the saved index.
	out = run(t, socsearch, "-load", idx, "-n", "3", "foul")
	if !strings.Contains(out, "results in") || !strings.Contains(out, "Foul") {
		t.Errorf("socsearch output: %s", out)
	}

	// 6. Ontology dump sanity.
	out = run(t, socontology)
	if !strings.Contains(out, "79 concepts, 95 properties") {
		t.Errorf("socontology output: %s", out)
	}
}

func TestCLIEvalTables(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	binDir := t.TempDir()
	soceval := buildTool(t, binDir, "soceval")
	out := run(t, soceval, "-matches", "4", "-table", "6")
	if !strings.Contains(out, "Table 6") || !strings.Contains(out, "PHR_EXP") {
		t.Errorf("soceval output: %s", out)
	}
}
