// Phrasal expressions (Section 6): resolving the structural ambiguity of
// keyword queries. "foul daniel florent" cannot say who fouled whom; the
// PHR_EXP index adds subject/object phrase fields ("by daniel" / "to
// florent") that the query parser routes explicitly.
//
//	go run ./examples/phrasal
package main

import (
	"fmt"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func main() {
	// The default corpus guarantees both orientations exist: Daniel (Alves,
	// Barcelona) fouls Florent (Malouda, Chelsea) and vice versa.
	corpus := soccer.Generate(soccer.DefaultConfig())
	pages := crawler.PagesFromCorpus(corpus)
	b := semindex.NewBuilder()
	inf := b.Build(semindex.FullInf, pages)
	phr := b.Build(semindex.PhrExp, pages)

	queries := []string{
		"foul by daniel",
		"foul by daniel to florent",
		"foul by florent to daniel",
	}
	for _, q := range queries {
		fmt.Printf("query: %q\n", q)
		for _, si := range []*semindex.SemanticIndex{inf, phr} {
			hits := si.Search(q, 1)
			if len(hits) == 0 {
				fmt.Printf("  %-9s no hits\n", si.Level)
				continue
			}
			h := hits[0]
			fmt.Printf("  %-9s top: subject=%-16s object=%-16s (%s)\n",
				si.Level, h.Meta(semindex.MetaSubject), h.Meta(semindex.MetaObject),
				h.Doc.Get(semindex.FieldNarration))
		}
		fmt.Println()
	}
	fmt.Println("FULL_INF cannot tell the subject from the object; PHR_EXP can —")
	fmt.Println("the paper's Table 6, reproduced by `go run ./cmd/soceval -table 6`.")
}
