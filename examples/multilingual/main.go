// Multilingual indexing (Section 7): the paper argues the semantic index
// makes the knowledge base flexible — supporting a second query language
// is "as easy as adding the translated value next to its original value
// for each field", where duplicating OWL individuals would be impractical.
//
// This example builds a bilingual English/Turkish index over the corpus
// events by appending Turkish translations to the event-type field, then
// answers the same information need in both languages.
//
//	go run ./examples/multilingual
package main

import (
	"fmt"

	"repro/internal/crawler"
	"repro/internal/index"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

// turkish maps English event-type words to Turkish, the paper's own second
// language (the system was built for both UEFA and SporX content).
var turkish = map[string]string{
	"Goal":         "Gol",
	"Foul":         "Faul",
	"Corner":       "Korner",
	"Offside":      "Ofsayt",
	"Punishment":   "Ceza",
	"YellowCard":   "Sari Kart",
	"RedCard":      "Kirmizi Kart",
	"Save":         "Kurtaris",
	"Substitution": "Oyuncu Degisikligi",
	"Pass":         "Pas",
}

func main() {
	corpus := soccer.Generate(soccer.Config{Matches: 4, Seed: 42, NarrationsPerMatch: 80, PaperCoverage: true})
	pages := crawler.PagesFromCorpus(corpus)

	// Build the monolingual semantic index first.
	si := semindex.NewBuilder().Build(semindex.FullInf, pages)

	// Re-index with the translated value appended next to the original —
	// the entire cost of adding a language under semantic indexing.
	bilingual := index.New(index.StandardAnalyzer{})
	for id := 0; id < si.Index.NumDocs(); id++ {
		src := si.Index.Doc(id)
		d := &index.Document{}
		for _, f := range src.Fields {
			d.Fields = append(d.Fields, f)
			if f.Name == semindex.FieldEvent {
				if tr := translate(f.Text); tr != "" {
					d.Add(semindex.FieldEvent, tr)
				}
			}
		}
		bilingual.Add(d)
	}
	both := &semindex.SemanticIndex{Level: semindex.FullInf, Index: bilingual}

	en := both.Search("goal", 0)
	tr := both.Search("gol", 0)
	fmt.Printf("bilingual index: %q -> %d hits, %q -> %d hits\n", "goal", len(en), "gol", len(tr))
	if len(en) > 0 && len(tr) > 0 && en[0].DocID == tr[0].DocID {
		fmt.Println("both languages rank the same top document:")
		fmt.Printf("  %s\n", en[0].Doc.Get(semindex.FieldNarration))
	}

	// The monolingual index cannot answer the Turkish query at all.
	mono := si.Search("gol", 0)
	fmt.Printf("monolingual index: %q -> %d hits\n", "gol", len(mono))
}

// translate appends Turkish equivalents for every known English word of a
// camel-split type value.
func translate(eventField string) string {
	out := ""
	for en, tr := range turkish {
		for _, w := range index.Tokenize(semindex.CamelSplit(en)) {
			_ = w
		}
		if containsWordSeq(eventField, semindex.CamelSplit(en)) {
			if out != "" {
				out += " "
			}
			out += tr
		}
	}
	return out
}

func containsWordSeq(haystack, needle string) bool {
	return len(needle) > 0 && len(haystack) >= len(needle) &&
		(haystack == needle || indexOfWord(haystack, needle) >= 0)
}

func indexOfWord(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			before := i == 0 || s[i-1] == ' '
			after := i+len(sub) == len(s) || s[i+len(sub)] == ' '
			if before && after {
				return i
			}
		}
	}
	return -1
}
