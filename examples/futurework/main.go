// Future work, implemented: the three extensions the paper's Sections 7-8
// sketch, running against the same semantic index —
//
//  1. synonym expansion ("keeper" reaching goalkeeper knowledge),
//
//  2. word-sense disambiguation ("save money" vs goalkeeper saves),
//
//  3. click-feedback index expansion (learning "spot kick" means penalty).
//
//     go run ./examples/futurework
package main

import (
	"fmt"
	"strings"

	"repro/internal/crawler"
	"repro/internal/feedback"
	"repro/internal/semindex"
	"repro/internal/soccer"
	"repro/internal/wsd"
)

func main() {
	corpus := soccer.Generate(soccer.Config{Matches: 4, Seed: 42, NarrationsPerMatch: 80, PaperCoverage: true})
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(corpus))

	// 1. Synonyms (Section 7): folk vocabulary reaches ontological fields.
	fmt.Println("1. synonym expansion")
	for _, q := range []string{"keeper save", "booking"} {
		plain := si.Search(q, 1)
		syn := si.SearchWithSynonyms(q, 1, semindex.SoccerSynonyms)
		fmt.Printf("   %-12q plain top: %-14s with synonyms: %s\n",
			q, topKind(plain), topKind(syn))
	}

	// 2. WSD (Section 8): out-of-domain senses are filtered from queries.
	fmt.Println("\n2. word-sense disambiguation")
	for _, q := range []string{"save money on tickets", "great save by the keeper"} {
		refined, decisions := wsd.RefineQuery(q, wsd.SoccerInventory)
		fmt.Printf("   %-28q -> %q", q, refined)
		for _, d := range decisions {
			fmt.Printf("  [%s: %s]", d.Token, d.Sense.ID)
		}
		fmt.Println()
	}

	// 3. Feedback (Section 8): clicks teach the index new vocabulary.
	fmt.Println("\n3. click-feedback index expansion")
	before := si.Search("spot kick", 0)
	fmt.Printf("   \"spot kick\" before feedback: %d penalty hits\n", countPenalty(before))
	// A user finds a penalty event (by browsing) and clicks it twice for
	// the failed query.
	target := -1
	for id := 0; id < si.Index.NumDocs(); id++ {
		if strings.HasPrefix(si.Index.Doc(id).Get(semindex.MetaKind), "Penalty") {
			target = id
			break
		}
	}
	if target < 0 {
		fmt.Println("   (no penalty events in this corpus)")
		return
	}
	tr := feedback.NewTracker(si)
	tr.RecordClick("spot kick", target)
	tr.RecordClick("spot kick", target)
	expanded := tr.Rebuild()
	after := feedback.SearchWithFeedback(expanded, "spot kick", 0)
	fmt.Printf("   \"spot kick\" after feedback:  %d penalty hits (learned terms: %v)\n",
		countPenalty(after), tr.LearnedTerms(target))
}

func topKind(hits []semindex.Hit) string {
	if len(hits) == 0 {
		return "(none)"
	}
	return hits[0].Meta(semindex.MetaKind)
}

func countPenalty(hits []semindex.Hit) int {
	n := 0
	for _, h := range hits {
		if strings.HasPrefix(h.Meta(semindex.MetaKind), "Penalty") {
			n++
		}
	}
	return n
}
