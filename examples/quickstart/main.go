// Quickstart: the full pipeline of Fig. 1 end to end — simulate a corpus,
// serve it over HTTP, crawl it, extract and populate the ontology, run the
// reasoner and rules offline, build the semantic index, and answer keyword
// queries.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func main() {
	// 1. A small simulated corpus stands in for uefa.com.
	corpus := soccer.Generate(soccer.Config{Matches: 4, Seed: 42, NarrationsPerMatch: 80, PaperCoverage: true})
	fmt.Println("corpus:", corpus.Stats())

	// 2. Serve it as a real site and crawl it over HTTP.
	site := httptest.NewServer(crawler.NewServer(corpus))
	defer site.Close()
	sys := core.New()
	if err := sys.CrawlFrom(context.Background(), site.URL); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d match pages from %s\n", len(sys.Pages()), site.URL)

	// 3. Offline processing happens lazily: consistency check forces
	//    extraction, population and inference for every match.
	if v := sys.CheckConsistency(); len(v) > 0 {
		log.Fatalf("inconsistent knowledge base: %v", v)
	}
	fmt.Println("knowledge base consistent;", sys.Summary())

	// 4. Keyword queries over the inferred semantic index.
	for _, q := range []string{
		"messi barcelona goal",    // extraction: scorer + team fields
		"punishment",              // inference: class hierarchy (yellow/red ⊑ punishment)
		"goal scored to casillas", // rules: concedingTeam + hasGoalkeeper
	} {
		hits := sys.Search(q, 3)
		fmt.Printf("\nquery %q -> %d hits, top results:\n", q, len(hits))
		for i, h := range hits {
			narr := h.Doc.Get(semindex.FieldNarration)
			if narr == "" {
				narr = "(basic info) " + h.Meta(semindex.MetaSubject)
			}
			fmt.Printf("  %d. [%s] %s\n", i+1, h.Meta(semindex.MetaKind), narr)
		}
	}

	// 5. The same query against the traditional index shows why semantic
	//    indexing matters: goal narrations never contain the word "goal".
	tradHits := sys.SearchLevel(semindex.Trad, "goal", 0)
	infHits := sys.SearchLevel(semindex.FullInf, "goal", 0)
	fmt.Printf("\n'goal' retrieves %d docs on TRAD vs %d on FULL_INF\n", len(tradHits), len(infHits))
}
