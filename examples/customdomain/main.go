// Custom domain (Section 2 / Section 7): the framework "can be extended to
// other domains as well by modifying the current ontology and the
// information extraction module". This example ports it to basketball:
// a small domain ontology, one inference rule, a handful of populated
// events, and a semantic index answering a hierarchy-exploiting query —
// all with the same substrate packages the soccer system uses.
//
//	go run ./examples/customdomain
package main

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/inference"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
)

func buildBasketballOntology() *owl.Ontology {
	o := owl.New(rdf.NSSoccer) // reuse the pre: prefix for rule parsing
	o.AddClass("Event")
	o.AddClass("ScoringEvent", "Event")
	o.AddClass("TwoPointer", "ScoringEvent")
	o.AddClass("ThreePointer", "ScoringEvent")
	o.AddClass("FreeThrow", "ScoringEvent")
	o.AddClass("Turnover", "Event")
	o.AddClass("Steal", "Event")
	o.AddClass("Block", "Event")
	o.AddClass("Player")
	o.AddClass("Guard", "Player")
	o.AddClass("Forward", "Player")
	o.AddClass("Center", "Player")
	o.AddObjectProperty("subjectPlayer")
	o.AddObjectProperty("scorerPlayer", "subjectPlayer")
	o.SetDomain("scorerPlayer", "ScoringEvent")
	o.SetRange("scorerPlayer", "Player")
	o.AddDataProperty("points")
	o.AddDataProperty("hasName")
	return o
}

// pointsRule assigns point values from the event class — the same
// rule-enrichment pattern as the soccer assist rule.
const pointsRule = `
[three: (?e rdf:type pre:ThreePointer) noValue(?e pre:points 3) -> (?e pre:points 3)]
[two:   (?e rdf:type pre:TwoPointer)   noValue(?e pre:points 2) -> (?e pre:points 2)]
[ft:    (?e rdf:type pre:FreeThrow)    noValue(?e pre:points 1) -> (?e pre:points 1)]
`

func main() {
	ont := buildBasketballOntology()
	if err := ont.Validate(); err != nil {
		panic(err)
	}
	r := reasoner.New(ont)
	m := owl.NewModel(ont)

	curry := m.NamedIndividual("Curry", "Guard")
	m.SetString(curry, "hasName", "Stephen Curry")
	duncan := m.NamedIndividual("Duncan", "Center")
	m.SetString(duncan, "hasName", "Tim Duncan")

	three := m.NewIndividual("ThreePointer")
	m.Set(three, "scorerPlayer", curry)
	two := m.NewIndividual("TwoPointer")
	m.Set(two, "scorerPlayer", duncan)
	m.NewIndividual("Turnover")

	res := inference.Run(r, rules.MustParse(pointsRule), m)
	g := res.Model.Graph

	// Classification lifts both shots to ScoringEvent; the rule assigned
	// point values.
	fmt.Println("inferred model:")
	for _, e := range g.Subjects(rdf.RDFType, ont.IRI("ScoringEvent")) {
		pts := g.FirstObject(e, ont.IRI("points"))
		scorer := g.FirstObject(e, ont.IRI("scorerPlayer"))
		fmt.Printf("  %s: %s points by %s\n", e.LocalName(), pts.Value, scorer.LocalName())
	}

	// Semantic indexing: one document per event, types camel-split into
	// the boosted event field — identical mechanics to the soccer index.
	ix := index.New(index.StandardAnalyzer{})
	for _, e := range g.Subjects(rdf.RDFType, ont.IRI("Event")) {
		d := &index.Document{}
		types := ""
		for _, t := range g.Objects(e, rdf.RDFType) {
			types += splitCamel(t.LocalName()) + " "
		}
		d.AddBoosted("event", types, 4)
		if s := g.FirstObject(e, ont.IRI("scorerPlayer")); !s.IsZero() {
			d.Add("subjectPlayer", g.FirstObject(s, ont.IRI("hasName")).Value)
		}
		ix.Add(d)
	}

	// The hierarchy-exploiting query: "scoring" finds both the two- and
	// three-pointer through the inferred ScoringEvent type, not the text.
	hits := ix.Search(index.MultiFieldQuery("scoring curry", []index.FieldBoost{
		{Field: "event", Boost: 4}, {Field: "subjectPlayer", Boost: 2},
	}), 0)
	fmt.Printf("\nquery \"scoring curry\": %d hits\n", len(hits))
	for i, h := range hits {
		fmt.Printf("  %d. [%.2f] %s / %s\n", i+1, h.Score,
			ix.Doc(h.DocID).Get("event"), ix.Doc(h.DocID).Get("subjectPlayer"))
	}
}

func splitCamel(s string) string {
	out := make([]rune, 0, len(s)+4)
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			out = append(out, ' ')
		}
		out = append(out, r)
	}
	return string(out)
}
