package repro

// The benchmark harness regenerating the paper's evaluation (one bench per
// table plus the scalability and ablation studies DESIGN.md calls out).
// Retrieval-quality benches report mean average precision as the custom
// metric "MAP%" alongside the usual time/op, so the paper's tables and the
// performance numbers come from one run:
//
//	go test -bench=. -benchmem
//
// Benchmarks share prebuilt corpora and indices through the caches below;
// building the 10-match FULL_INF index takes ~1s and would otherwise
// dominate every measurement.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/expansion"
	"repro/internal/ie"
	"repro/internal/index"
	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/populate"
	"repro/internal/rdf"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
	"repro/internal/sparql"
)

// extractFor and populatorFor are the bench-local shorthand for the
// extraction and population stages.
func extractFor(page *crawler.MatchPage) []ie.Event {
	return ie.Extractor{}.ExtractMatch(page)
}

func populatorFor(b *semindex.Builder) *populate.Populator {
	return &populate.Populator{Ontology: b.Ontology}
}

// corpusCache memoizes generated corpora and built indices by size.
var corpusCache sync.Map // int -> *benchEnv

type benchEnv struct {
	once    sync.Once
	corpus  *soccer.Corpus
	pages   []*crawler.MatchPage
	judge   *eval.Judge
	indices map[semindex.Level]*semindex.SemanticIndex

	// shardedMu guards sharded, the lazily-built FULL_INF engines by
	// shard count (engine builds are too expensive to repeat per bench).
	shardedMu sync.Mutex
	sharded   map[int]*shard.Engine
}

// shardedEngine returns the cached FULL_INF engine with n shards.
func (e *benchEnv) shardedEngine(n int) *shard.Engine {
	e.shardedMu.Lock()
	defer e.shardedMu.Unlock()
	if e.sharded == nil {
		e.sharded = map[int]*shard.Engine{}
	}
	if eng, ok := e.sharded[n]; ok {
		return eng
	}
	eng := shard.Build(semindex.NewBuilder(), semindex.FullInf, e.pages, shard.Options{Shards: n})
	e.sharded[n] = eng
	return eng
}

func env(matches int) *benchEnv {
	v, _ := corpusCache.LoadOrStore(matches, &benchEnv{})
	e := v.(*benchEnv)
	e.once.Do(func() {
		cfg := soccer.DefaultConfig()
		cfg.Matches = matches
		e.corpus = soccer.Generate(cfg)
		e.pages = crawler.PagesFromCorpus(e.corpus)
		e.judge = eval.NewJudge(e.corpus)
		e.indices = map[semindex.Level]*semindex.SemanticIndex{}
		b := semindex.NewBuilder()
		for _, l := range semindex.Levels {
			e.indices[l] = b.Build(l, e.pages)
		}
	})
	return e
}

// reportMAP attaches retrieval quality to a bench result.
func reportMAP(b *testing.B, j *eval.Judge, si *semindex.SemanticIndex, queries []eval.Query) {
	sum := 0.0
	for _, q := range queries {
		sum += j.Evaluate(q, si).AP
	}
	b.ReportMetric(100*sum/float64(len(queries)), "MAP%")
}

// BenchmarkTable4 measures query latency and reports MAP per index level
// over the ten paper queries — the machine-readable form of Table 4.
func BenchmarkTable4(b *testing.B) {
	e := env(10)
	queries := eval.PaperQueries()
	for _, level := range []semindex.Level{semindex.Trad, semindex.BasicExt, semindex.FullExt, semindex.FullInf} {
		b.Run(string(level), func(b *testing.B) {
			si := e.indices[level]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				si.Search(queries[i%len(queries)].Keywords, 10)
			}
			b.StopTimer()
			reportMAP(b, e.judge, si, queries)
		})
	}
}

// BenchmarkTable5QueryExpansion measures the expansion baseline: expansion
// plus search over the traditional index, reporting its MAP.
func BenchmarkTable5QueryExpansion(b *testing.B) {
	e := env(10)
	exp := expansion.New()
	queries := eval.PaperQueries()
	trad := e.indices[semindex.Trad]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		trad.Search(exp.Expand(q.Keywords), 10)
	}
	b.StopTimer()
	sum := 0.0
	for _, q := range queries {
		sum += e.judge.AveragePrecision(q, trad.Search(exp.Expand(q.Keywords), 0)).AP
	}
	b.ReportMetric(100*sum/float64(len(queries)), "MAP%")
}

// BenchmarkTable6Phrasal measures the phrasal index on the Section 6
// queries and reports their MAP (1.0 = the paper's 100% column).
func BenchmarkTable6Phrasal(b *testing.B) {
	e := env(10)
	queries := eval.PhrasalQueries()
	for _, level := range []semindex.Level{semindex.FullInf, semindex.PhrExp} {
		b.Run(string(level), func(b *testing.B) {
			si := e.indices[level]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				si.Search(queries[i%len(queries)].Keywords, 10)
			}
			b.StopTimer()
			reportMAP(b, e.judge, si, queries)
		})
	}
}

// BenchmarkIndexBuild measures full index construction per level over the
// paper-scale corpus (10 matches, ~1180 narrations).
func BenchmarkIndexBuild(b *testing.B) {
	e := env(10)
	for _, level := range semindex.Levels {
		b.Run(string(level), func(b *testing.B) {
			builder := semindex.NewBuilder()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				builder.Build(level, e.pages)
			}
		})
	}
}

// BenchmarkInferencePerMatch pins the scalability claim of Section 3.5:
// per-match models keep single-game inference time independent of corpus
// size. The measured work (one match) is identical across sub-benches;
// only the surrounding corpus grows.
func BenchmarkInferencePerMatch(b *testing.B) {
	for _, matches := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("corpus=%d", matches), func(b *testing.B) {
			e := env(matches)
			sys := semindex.NewBuilder()
			page := e.pages[0]
			pm := populatorFor(sys).Populate(page, extractFor(page))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inference.Run(sys.Reasoner, sys.Rules, pm.Model)
			}
		})
	}
}

// BenchmarkQueryLatencyScale shows keyword-query latency growing only
// gently with corpus size (posting-list length), versus the SPARQL
// comparator below.
func BenchmarkQueryLatencyScale(b *testing.B) {
	for _, matches := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("matches=%d", matches), func(b *testing.B) {
			si := env(matches).indices[semindex.FullInf]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				si.Search("messi barcelona goal", 10)
			}
		})
	}
}

// BenchmarkSPARQLvsIndex contrasts the paper's two querying regimes on the
// same information need (Q-4, all punishments): formal BGP evaluation over
// the merged inferred graph versus a keyword lookup on the semantic index.
func BenchmarkSPARQLvsIndex(b *testing.B) {
	for _, matches := range []int{10, 50} {
		e := env(matches)
		merged := rdf.NewGraph()
		builder := semindex.NewBuilder()
		for _, page := range e.pages {
			pm := populatorFor(builder).Populate(page, extractFor(page))
			res := inference.Run(builder.Reasoner, builder.Rules, pm.Model)
			merged.AddAll(res.Model.Graph)
		}
		q := sparql.MustParse(`SELECT DISTINCT ?e WHERE { ?e a pre:Punishment . }`)
		b.Run(fmt.Sprintf("sparql/matches=%d", matches), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Exec(merged)
			}
		})
		b.Run(fmt.Sprintf("index/matches=%d", matches), func(b *testing.B) {
			si := e.indices[semindex.FullInf]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				si.Search("punishment", 0)
			}
		})
	}
}

// BenchmarkAblationNoBoost disables the custom field weighting of Section
// 3.6.2 (all searched fields at weight 1) and reports the MAP damage —
// the "Ronaldo misses a goal" false positive returns.
func BenchmarkAblationNoBoost(b *testing.B) {
	e := env(10)
	queries := eval.PaperQueries()
	si := e.indices[semindex.FullInf]
	flat := make([]index.FieldBoost, 0, len(semindex.QueryBoosts))
	for _, fb := range semindex.QueryBoosts {
		flat = append(flat, index.FieldBoost{Field: fb.Field, Boost: 1})
	}
	b.Run("boosted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si.Search(queries[i%len(queries)].Keywords, 10)
		}
		b.StopTimer()
		reportMAP(b, e.judge, si, queries)
	})
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si.SearchWithBoosts(queries[i%len(queries)].Keywords, 10, flat)
		}
		b.StopTimer()
		sum := 0.0
		for _, q := range queries {
			sum += e.judge.AveragePrecision(q, si.SearchWithBoosts(q.Keywords, 0, flat)).AP
		}
		b.ReportMetric(100*sum/float64(len(queries)), "MAP%")
	})
}

// BenchmarkAblationNoStem rebuilds FULL_INF without Porter stemming and
// reports the MAP damage (query "goals" no longer matches type "Goal").
func BenchmarkAblationNoStem(b *testing.B) {
	e := env(10)
	queries := eval.PaperQueries()
	builder := semindex.NewBuilder()
	builder.Analyzer = index.StandardAnalyzer{NoStemming: true}
	si := builder.Build(semindex.FullInf, e.pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si.Search(queries[i%len(queries)].Keywords, 10)
	}
	b.StopTimer()
	reportMAP(b, e.judge, si, queries)
}

// BenchmarkAblationNoNarration drops the full-text field: the recall floor
// breaks on Q-8 and MAP drops accordingly.
func BenchmarkAblationNoNarration(b *testing.B) {
	e := env(10)
	queries := eval.PaperQueries()
	builder := semindex.NewBuilder()
	builder.DisableNarrationField = true
	si := builder.Build(semindex.FullInf, e.pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si.Search(queries[i%len(queries)].Keywords, 10)
	}
	b.StopTimer()
	reportMAP(b, e.judge, si, queries)
}

// BenchmarkAblationGlobalModel runs the rules over one merged corpus-wide
// graph instead of per-match models, quantifying why the paper keeps
// matches separate: the join space grows superlinearly.
func BenchmarkAblationGlobalModel(b *testing.B) {
	e := env(10)
	builder := semindex.NewBuilder()

	b.Run("per-match", func(b *testing.B) {
		models := make([]*owl.Model, 0, len(e.pages))
		for _, page := range e.pages {
			models = append(models, populatorFor(builder).Populate(page, extractFor(page)).Model)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range models {
				inference.Run(builder.Reasoner, builder.Rules, m)
			}
		}
	})
	b.Run("global", func(b *testing.B) {
		merged := owl.NewModel(builder.Ontology)
		for _, page := range e.pages {
			merged.Graph.AddAll(populatorFor(builder).Populate(page, extractFor(page)).Model.Graph)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inference.Run(builder.Reasoner, builder.Rules, merged)
		}
	})
}

// BenchmarkIndexCodec measures index persistence: serializing and loading
// the paper-scale FULL_INF index.
func BenchmarkIndexCodec(b *testing.B) {
	e := env(10)
	si := e.indices[semindex.FullInf]
	var buf bytes.Buffer
	if err := si.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := si.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := semindex.Load(bytes.NewReader(data), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryFeatures measures the retrieval extensions: fuzzy terms,
// synonym expansion and phrase parsing, against the plain keyword path.
func BenchmarkQueryFeatures(b *testing.B) {
	si := env(10).indices[semindex.FullInf]
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si.Search("messi barcelona goal", 10)
		}
	})
	b.Run("fuzzy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si.Search("mesi~ barcelona goal", 10)
		}
	})
	b.Run("synonyms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si.SearchWithSynonyms("keeper save", 10, semindex.SoccerSynonyms)
		}
	})
	b.Run("phrase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si.Search(`"yellow card"`, 10)
		}
	})
}

// BenchmarkHighlighter measures snippet generation over narration text.
func BenchmarkHighlighter(b *testing.B) {
	hl := index.Highlighter{}
	text := "Eto'o (Barcelona) scores! The crowd erupts as Barcelona take a deserved lead after sustained pressure on the edge of the box."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hl.Snippet(text, "barcelona goal scores")
	}
}

// BenchmarkAblationBM25 swaps the classic TF-IDF similarity for BM25 and
// reports the MAP difference on the paper queries.
func BenchmarkAblationBM25(b *testing.B) {
	e := env(10)
	queries := eval.PaperQueries()
	builder := semindex.NewBuilder()
	si := builder.Build(semindex.FullInf, e.pages)
	si.Index.SetSimilarity(index.BM25{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si.Search(queries[i%len(queries)].Keywords, 10)
	}
	b.StopTimer()
	reportMAP(b, e.judge, si, queries)
}

// BenchmarkShardedBuild contrasts the monolithic FULL_INF build with the
// sharded engine's three-phase parallel build at growing shard counts.
// On a multi-core runner the sharded build pulls ahead from ~4 shards:
// page preparation parallelizes identically in both, but the monolith
// commits every document on one goroutine while shards commit (analyze
// and post) concurrently.
func BenchmarkShardedBuild(b *testing.B) {
	e := env(10)
	b.Run("monolith", func(b *testing.B) {
		builder := semindex.NewBuilder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			builder.Build(semindex.FullInf, e.pages)
		}
	})
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			builder := semindex.NewBuilder()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shard.Build(builder, semindex.FullInf, e.pages, shard.Options{Shards: n})
			}
		})
	}
}

// BenchmarkShardedSearch sweeps query latency across corpus sizes for the
// monolith and the scatter-gather engine. Rankings are identical by
// construction (see internal/shard); this measures the fan-out/merge tax
// at small corpora and its amortization as posting lists grow.
func BenchmarkShardedSearch(b *testing.B) {
	for _, matches := range []int{10, 50} {
		e := env(matches)
		mono := e.indices[semindex.FullInf]
		b.Run(fmt.Sprintf("monolith/matches=%d", matches), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mono.Search("messi barcelona goal", 10)
			}
		})
		for _, n := range []int{4} {
			eng := e.shardedEngine(n)
			b.Run(fmt.Sprintf("shards=%d/matches=%d", n, matches), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					eng.SearchHits("messi barcelona goal", 10)
				}
			})
		}
	}
}

// BenchmarkObsOverhead prices the observability layer on the hottest
// path: the same sharded engine with its metrics pointed at a live
// registry versus stripped (SetMetrics(nil) makes every handle a no-op
// nil). The acceptance bar is <5% p50 overhead — a handful of atomic
// adds against a scatter-gather search. cmd/socbench records the same
// comparison into BENCH_3.json.
func BenchmarkObsOverhead(b *testing.B) {
	e := env(10)
	eng := e.shardedEngine(4)
	b.Run("instrumented", func(b *testing.B) {
		eng.SetMetrics(obs.NewRegistry())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.SearchHits("messi barcelona goal", 10)
		}
	})
	b.Run("uninstrumented", func(b *testing.B) {
		eng.SetMetrics(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.SearchHits("messi barcelona goal", 10)
		}
	})
	eng.SetMetrics(obs.Default)
}

// BenchmarkShardedIngest measures incremental ingest: one new match into
// an engine (owning shard + stats refresh only) versus the monolithic
// AddPage appended to a full index.
func BenchmarkShardedIngest(b *testing.B) {
	e := env(10)
	page := e.pages[len(e.pages)-1]
	b.Run("monolith", func(b *testing.B) {
		builder := semindex.NewBuilder()
		si := builder.Build(semindex.FullInf, e.pages[:len(e.pages)-1])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			builder.AddPage(si, page)
		}
	})
	b.Run("shards=4", func(b *testing.B) {
		eng := shard.Build(semindex.NewBuilder(), semindex.FullInf, e.pages[:len(e.pages)-1], shard.Options{Shards: 4})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.AddPage(page)
		}
	})
}
