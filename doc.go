// Package repro is a from-scratch Go reproduction of "An ontology-based
// retrieval system using semantic indexing" (Kara et al.): an end-to-end
// ontology-based information extraction and retrieval system for the
// soccer domain, built entirely on the standard library.
//
// The public entry point is internal/core.System; the substrate packages
// (rdf, owl, reasoner, rules, index, sparql) are reusable beyond the
// soccer domain, as examples/customdomain demonstrates. bench_test.go in
// this directory regenerates every table of the paper's evaluation; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results.
package repro
