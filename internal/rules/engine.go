package rules

import (
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Engine evaluates a rule set over RDF graphs by forward chaining to a
// fixpoint.
//
// Evaluation order within a rule body differs from Jena in one deliberate
// way: triple patterns are joined first (in source order) and guard builtins
// (noValue and the comparisons) are checked once the bindings are complete.
// The paper's assist rule (Fig. 6) lists noValue first with an unbound
// variable, where literal in-order evaluation would make the guard global
// rather than per-binding; deferring guards yields the per-binding reading
// the rule obviously intends.
type Engine struct {
	rules []*Rule
	// fired memoizes rule firings by canonical binding so that rules with
	// makeTemp create exactly one temp node per distinct match, matching
	// Jena's forward engine.
	fired map[string]bool
	// derived records rule provenance for every asserted triple; the
	// semantic indexer reads it to fill the FromRules field of Table 2.
	derived map[rdf.Triple]string
}

// NewEngine returns an engine over the given rules. Each rule must validate.
func NewEngine(rs []*Rule) *Engine {
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			panic("rules: " + err.Error())
		}
	}
	return &Engine{rules: rs}
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []*Rule { return e.rules }

// Run saturates the graph under the rule set and returns the number of
// triples added. Derivation provenance is reset per call and readable via
// Derived afterwards.
func (e *Engine) Run(g *rdf.Graph) int {
	e.fired = make(map[string]bool)
	e.derived = make(map[rdf.Triple]string)
	total := 0
	for {
		added := 0
		for _, r := range e.rules {
			added += e.applyRule(g, r)
		}
		total += added
		if added == 0 {
			return total
		}
	}
}

// Derived returns rule-name provenance for the triples asserted by the last
// Run call.
func (e *Engine) Derived() map[rdf.Triple]string { return e.derived }

type binding map[string]rdf.Term

func (b binding) resolve(n Node) rdf.Term {
	if n.IsVar() {
		return b[n.Var] // zero Term (wildcard) when unbound
	}
	return n.Term
}

func (e *Engine) applyRule(g *rdf.Graph, r *Rule) int {
	var patterns []*Pattern
	var guards []*Builtin
	var temps []string
	for _, item := range r.Body {
		switch {
		case item.Pattern != nil:
			patterns = append(patterns, item.Pattern)
		case item.Builtin.Name == "makeTemp":
			temps = append(temps, item.Builtin.Args[0].Var)
		default:
			guards = append(guards, item.Builtin)
		}
	}

	// Enumerate every complete binding first, then assert: asserting while
	// joining would let a rule observe its own conclusions mid-pass.
	var matches []binding
	e.join(g, patterns, binding{}, &matches)

	added := 0
	for _, b := range matches {
		if !e.checkGuards(g, guards, b) {
			continue
		}
		key := r.Name + "\x00" + canonicalBinding(b)
		if e.fired[key] {
			continue
		}
		e.fired[key] = true
		if len(temps) > 0 && tempFiringExists(g, r, temps, b) {
			// A previous run already minted a node for this match; re-firing
			// would duplicate it. This keeps makeTemp rules idempotent across
			// engine runs, not just within one.
			continue
		}
		for _, v := range temps {
			b[v] = g.NewBlankNode()
		}
		for _, h := range r.Head {
			t := rdf.Triple{S: b.resolve(h.S), P: b.resolve(h.P), O: b.resolve(h.O)}
			if g.Add(t) {
				e.derived[t] = r.Name
				added++
			}
		}
	}
	return added
}

func (e *Engine) join(g *rdf.Graph, pats []*Pattern, b binding, out *[]binding) {
	if len(pats) == 0 {
		cp := make(binding, len(b))
		for k, v := range b {
			cp[k] = v
		}
		*out = append(*out, cp)
		return
	}
	p := pats[0]
	s, pr, o := b.resolve(p.S), b.resolve(p.P), b.resolve(p.O)
	for _, t := range g.Match(s, pr, o) {
		undo := bindPattern(b, p, t)
		if undo == nil {
			continue // conflicting repeated variable
		}
		e.join(g, pats[1:], b, out)
		for _, k := range undo {
			delete(b, k)
		}
	}
}

// bindPattern extends b with the variable bindings implied by matching p
// against t. It returns the list of newly bound variables, or nil when a
// repeated variable conflicts (e.g. (?x p ?x) against s != o).
func bindPattern(b binding, p *Pattern, t rdf.Triple) []string {
	var bound []string
	try := func(n Node, val rdf.Term) bool {
		if !n.IsVar() {
			return true
		}
		if cur, ok := b[n.Var]; ok {
			return cur == val
		}
		b[n.Var] = val
		bound = append(bound, n.Var)
		return true
	}
	if try(p.S, t.S) && try(p.P, t.P) && try(p.O, t.O) {
		return ensureNonNil(bound)
	}
	for _, k := range bound {
		delete(b, k)
	}
	return nil
}

func ensureNonNil(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}

// tempFiringExists reports whether some existing node could have been the
// temp of an earlier firing with the same bindings: a node t such that every
// head triple holds with the temp variable bound to t (head triples not
// mentioning the temp must hold outright). Only the single-temp case is
// recognized; rules with several temps fall back to the per-run memo.
func tempFiringExists(g *rdf.Graph, r *Rule, temps []string, b binding) bool {
	if len(temps) != 1 {
		return false
	}
	v := temps[0]
	mentions := func(p Pattern) bool {
		return p.S.Var == v || p.P.Var == v || p.O.Var == v
	}
	// Candidates come from the first head pattern mentioning the temp.
	var candidates []rdf.Term
	var anchor *Pattern
	for i := range r.Head {
		if mentions(r.Head[i]) {
			anchor = &r.Head[i]
			break
		}
	}
	if anchor == nil {
		return false
	}
	s, p, o := b.resolve(anchor.S), b.resolve(anchor.P), b.resolve(anchor.O)
	for _, t := range g.Match(s, p, o) {
		switch {
		case anchor.S.Var == v:
			candidates = append(candidates, t.S)
		case anchor.P.Var == v:
			candidates = append(candidates, t.P)
		default:
			candidates = append(candidates, t.O)
		}
	}
next:
	for _, c := range candidates {
		for _, h := range r.Head {
			res := func(n Node) rdf.Term {
				if n.Var == v {
					return c
				}
				return b.resolve(n)
			}
			if !g.HasSPO(res(h.S), res(h.P), res(h.O)) {
				continue next
			}
		}
		return true
	}
	return false
}

func (e *Engine) checkGuards(g *rdf.Graph, guards []*Builtin, b binding) bool {
	for _, gd := range guards {
		switch gd.Name {
		case "noValue":
			s, p, o := b.resolve(gd.Args[0]), b.resolve(gd.Args[1]), b.resolve(gd.Args[2])
			if len(g.Match(s, p, o)) > 0 {
				return false
			}
		case "equal":
			if b.resolve(gd.Args[0]) != b.resolve(gd.Args[1]) {
				return false
			}
		case "notEqual":
			if b.resolve(gd.Args[0]) == b.resolve(gd.Args[1]) {
				return false
			}
		case "lessThan", "greaterThan":
			a, okA := b.resolve(gd.Args[0]).Int()
			c, okC := b.resolve(gd.Args[1]).Int()
			if !okA || !okC {
				return false
			}
			if gd.Name == "lessThan" && !(a < c) {
				return false
			}
			if gd.Name == "greaterThan" && !(a > c) {
				return false
			}
		}
	}
	return true
}

func canonicalBinding(b binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(b[k].String())
		sb.WriteByte(';')
	}
	return sb.String()
}
