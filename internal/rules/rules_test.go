package rules

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func iri(q string) rdf.Term {
	full, ok := rdf.ExpandQName(q)
	if !ok {
		panic("bad qname " + q)
	}
	return rdf.NewIRI(full)
}

func TestParseSimpleRule(t *testing.T) {
	rs, err := Parse(`[r1: (?e rdf:type pre:Goal) -> (?e rdf:type pre:Event)]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("parsed %d rules", len(rs))
	}
	r := rs[0]
	if r.Name != "r1" {
		t.Errorf("name = %q", r.Name)
	}
	if len(r.Body) != 1 || len(r.Head) != 1 {
		t.Fatalf("body/head sizes: %d/%d", len(r.Body), len(r.Head))
	}
	p := r.Body[0].Pattern
	if p == nil || !p.S.IsVar() || p.S.Var != "e" {
		t.Errorf("subject = %+v", p)
	}
	if p.P.Term != rdf.RDFType {
		t.Errorf("predicate = %v", p.P)
	}
}

func TestParseFig6AssistRule(t *testing.T) {
	// The paper's Fig. 6 rule, verbatim modulo whitespace.
	src := `
noValue (?pass rdf:type pre:Assist)
(?pass rdf:type pre:Pass)
(?pass pre:passingPlayer ?passer)
(?pass pre:passReceiver ?receiver)
(?pass pre:inMatch ?match)
(?pass pre:inMinute ?minute)
(?goal pre:inMatch ?match)
(?goal pre:inMinute ?minute)
(?goal pre:scorerPlayer ?receiver)
makeTemp (?tmp)
-> (?tmp rdf:type pre:Assist)
   (?tmp pre:inMatch ?match)
   (?tmp pre:inMinute ?minute)
   (?tmp pre:passingPlayer ?passer)
   (?tmp pre:passReceiver ?receiver)
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("parsed %d rules", len(rs))
	}
	r := rs[0]
	if len(r.Body) != 10 {
		t.Errorf("body items = %d, want 10", len(r.Body))
	}
	if len(r.Head) != 5 {
		t.Errorf("head items = %d, want 5", len(r.Head))
	}
	// Round-trip through String and Parse.
	rs2, err := Parse(r.String())
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, r.String())
	}
	if rs2[0].String() != r.String() {
		t.Error("String/Parse round trip unstable")
	}
}

func TestParseMultipleRulesCommentsLiterals(t *testing.T) {
	src := `
# leading comment
[a: (?x pre:hasName "Lionel Messi") -> (?x rdf:type pre:Player)]
// another comment
[b: (?x pre:inMinute 45) -> (?x rdf:type pre:Event)]
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d rules", len(rs))
	}
	if got := rs[0].Body[0].Pattern.O.Term; got != rdf.NewLiteral("Lionel Messi") {
		t.Errorf("string literal = %v", got)
	}
	if got := rs[1].Body[0].Pattern.O.Term; got != rdf.NewTypedLiteral("45", rdf.XSDInteger) {
		t.Errorf("integer literal = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown prefix", `[x: (?a nope:b ?c) -> (?a rdf:type pre:X)]`},
		{"unbound head var", `[x: (?a rdf:type pre:X) -> (?b rdf:type pre:Y)]`},
		{"empty head", `[x: (?a rdf:type pre:X) -> ]`},
		{"bad builtin", `[x: frobnicate(?a) (?a rdf:type pre:X) -> (?a rdf:type pre:Y)]`},
		{"noValue arity", `[x: noValue(?a) (?a rdf:type pre:X) -> (?a rdf:type pre:Y)]`},
		{"makeTemp non-var", `[x: makeTemp(pre:X) (?a rdf:type pre:X) -> (?a rdf:type pre:Y)]`},
		{"unterminated string", `[x: (?a pre:hasName "oops) -> (?a rdf:type pre:Y)]`},
		{"missing close bracket", `[x: (?a rdf:type pre:X) -> (?a rdf:type pre:Y)`},
		{"bare question mark", `[x: (? rdf:type pre:X) -> (?a rdf:type pre:Y)]`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("Parse accepted %q", c.src)
			}
		})
	}
}

func TestEngineSimpleDerivation(t *testing.T) {
	rs := MustParse(`[lift: (?e rdf:type pre:Goal) -> (?e rdf:type pre:PositiveEvent)]`)
	e := NewEngine(rs)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:g1"), rdf.RDFType, iri("pre:Goal"))
	n := e.Run(g)
	if n != 1 {
		t.Errorf("Run added %d, want 1", n)
	}
	if !g.HasSPO(iri("pre:g1"), rdf.RDFType, iri("pre:PositiveEvent")) {
		t.Error("derived triple missing")
	}
	if e.Derived()[rdf.NewTriple(iri("pre:g1"), rdf.RDFType, iri("pre:PositiveEvent"))] != "lift" {
		t.Error("provenance missing")
	}
}

func TestEngineChaining(t *testing.T) {
	// Rule 2 consumes rule 1's output: requires a second pass.
	rs := MustParse(`
[r1: (?e rdf:type pre:Goal) -> (?e rdf:type pre:PositiveEvent)]
[r2: (?e rdf:type pre:PositiveEvent) -> (?e rdf:type pre:Event)]
`)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:g1"), rdf.RDFType, iri("pre:Goal"))
	if n := NewEngine(rs).Run(g); n != 2 {
		t.Errorf("Run added %d, want 2", n)
	}
	if !g.HasSPO(iri("pre:g1"), rdf.RDFType, iri("pre:Event")) {
		t.Error("transitive derivation missing")
	}
}

func TestEngineJoin(t *testing.T) {
	rs := MustParse(`
[teams: (?e pre:subjectPlayer ?p) (?p pre:playsFor ?t) -> (?e pre:subjectTeam ?t)]
`)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:e1"), iri("pre:subjectPlayer"), iri("pre:Messi"))
	g.AddSPO(iri("pre:Messi"), iri("pre:playsFor"), iri("pre:Barcelona"))
	g.AddSPO(iri("pre:e2"), iri("pre:subjectPlayer"), iri("pre:Unknown"))
	NewEngine(rs).Run(g)
	if !g.HasSPO(iri("pre:e1"), iri("pre:subjectTeam"), iri("pre:Barcelona")) {
		t.Error("join derivation missing")
	}
	if len(g.Match(iri("pre:e2"), iri("pre:subjectTeam"), rdf.Wildcard)) != 0 {
		t.Error("derived team for player without club")
	}
}

func TestEngineNoValueGuard(t *testing.T) {
	rs := MustParse(`
[guarded: (?e rdf:type pre:Goal) noValue(?e pre:checked "yes") -> (?e pre:checked "yes")]
`)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:g1"), rdf.RDFType, iri("pre:Goal"))
	g.AddSPO(iri("pre:g2"), rdf.RDFType, iri("pre:Goal"))
	g.AddSPO(iri("pre:g2"), iri("pre:checked"), rdf.NewLiteral("yes"))
	if n := NewEngine(rs).Run(g); n != 1 {
		t.Errorf("Run added %d, want 1 (g2 already checked)", n)
	}
}

func TestEngineMakeTempOncePerBinding(t *testing.T) {
	rs := MustParse(`
[mk: (?g rdf:type pre:Goal) (?g pre:scorerPlayer ?p) makeTemp(?t)
  -> (?t rdf:type pre:Celebration) (?t pre:celebrant ?p)]
`)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:g1"), rdf.RDFType, iri("pre:Goal"))
	g.AddSPO(iri("pre:g1"), iri("pre:scorerPlayer"), iri("pre:Messi"))
	g.AddSPO(iri("pre:g2"), rdf.RDFType, iri("pre:Goal"))
	g.AddSPO(iri("pre:g2"), iri("pre:scorerPlayer"), iri("pre:Eto"))
	e := NewEngine(rs)
	e.Run(g)
	celebs := g.Match(rdf.Wildcard, rdf.RDFType, iri("pre:Celebration"))
	if len(celebs) != 2 {
		t.Fatalf("created %d Celebration temps, want 2", len(celebs))
	}
	// Re-running must not create more temps: the engine recognizes an
	// existing node satisfying the instantiated head. This must hold for the
	// same engine and for a fresh engine over the saturated graph.
	before := g.Len()
	if n := e.Run(g); n != 0 {
		t.Errorf("second Run added %d triples", n)
	}
	if n := NewEngine(rs).Run(g); n != 0 {
		t.Errorf("fresh-engine Run added %d triples", n)
	}
	if g.Len() != before {
		t.Error("graph grew on re-run")
	}
}

func TestEngineRepeatedVariable(t *testing.T) {
	rs := MustParse(`[self: (?x pre:marks ?x) -> (?x rdf:type pre:SelfMarker)]`)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:a"), iri("pre:marks"), iri("pre:a"))
	g.AddSPO(iri("pre:b"), iri("pre:marks"), iri("pre:c"))
	NewEngine(rs).Run(g)
	if !g.HasSPO(iri("pre:a"), rdf.RDFType, iri("pre:SelfMarker")) {
		t.Error("self-loop not derived")
	}
	if g.HasSPO(iri("pre:b"), rdf.RDFType, iri("pre:SelfMarker")) {
		t.Error("non-loop derived")
	}
}

func TestEngineComparisonGuards(t *testing.T) {
	rs := MustParse(`
[hw: (?m pre:homeScore ?h) (?m pre:awayScore ?a) greaterThan(?h ?a) -> (?m pre:outcome "home")]
[aw: (?m pre:homeScore ?h) (?m pre:awayScore ?a) lessThan(?h ?a) -> (?m pre:outcome "away")]
[eq: (?m pre:homeScore ?h) (?m pre:awayScore ?a) equal(?h ?a) -> (?m pre:outcome "draw")]
`)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:m1"), iri("pre:homeScore"), rdf.NewInt(2))
	g.AddSPO(iri("pre:m1"), iri("pre:awayScore"), rdf.NewInt(0))
	g.AddSPO(iri("pre:m2"), iri("pre:homeScore"), rdf.NewInt(1))
	g.AddSPO(iri("pre:m2"), iri("pre:awayScore"), rdf.NewInt(1))
	g.AddSPO(iri("pre:m3"), iri("pre:homeScore"), rdf.NewInt(0))
	g.AddSPO(iri("pre:m3"), iri("pre:awayScore"), rdf.NewInt(3))
	NewEngine(rs).Run(g)
	for m, want := range map[string]string{"pre:m1": "home", "pre:m2": "draw", "pre:m3": "away"} {
		got := g.FirstObject(iri(m), iri("pre:outcome"))
		if got.Value != want {
			t.Errorf("outcome(%s) = %q, want %q", m, got.Value, want)
		}
		if n := len(g.Match(iri(m), iri("pre:outcome"), rdf.Wildcard)); n != 1 {
			t.Errorf("%s has %d outcomes", m, n)
		}
	}
}

func TestEngineNotEqual(t *testing.T) {
	rs := MustParse(`
[opp: (?e pre:a ?x) (?e pre:b ?y) notEqual(?x ?y) -> (?e rdf:type pre:Distinct)]
`)
	g := rdf.NewGraph()
	g.AddSPO(iri("pre:e1"), iri("pre:a"), iri("pre:p1"))
	g.AddSPO(iri("pre:e1"), iri("pre:b"), iri("pre:p1"))
	g.AddSPO(iri("pre:e2"), iri("pre:a"), iri("pre:p1"))
	g.AddSPO(iri("pre:e2"), iri("pre:b"), iri("pre:p2"))
	NewEngine(rs).Run(g)
	if g.HasSPO(iri("pre:e1"), rdf.RDFType, iri("pre:Distinct")) {
		t.Error("notEqual passed on equal terms")
	}
	if !g.HasSPO(iri("pre:e2"), rdf.RDFType, iri("pre:Distinct")) {
		t.Error("notEqual failed on distinct terms")
	}
}

func TestEngineAssistEndToEnd(t *testing.T) {
	// The full Fig. 6 scenario: a pass and a goal in the same match and
	// minute with receiver == scorer must mint exactly one Assist.
	src := `
[assistRule:
  noValue(?pass rdf:type pre:Assist)
  (?pass rdf:type pre:Pass)
  (?pass pre:passingPlayer ?passer)
  (?pass pre:passReceiver ?receiver)
  (?pass pre:inMatch ?match)
  (?pass pre:inMinute ?minute)
  (?goal pre:inMatch ?match)
  (?goal pre:inMinute ?minute)
  (?goal pre:scorerPlayer ?receiver)
  makeTemp(?tmp)
  -> (?tmp rdf:type pre:Assist)
     (?tmp pre:inMatch ?match)
     (?tmp pre:inMinute ?minute)
     (?tmp pre:passingPlayer ?passer)
     (?tmp pre:passReceiver ?receiver)
]`
	g := rdf.NewGraph()
	match := iri("pre:Match_1")
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	g.AddSPO(iri("pre:pass1"), rdf.RDFType, iri("pre:Pass"))
	add("pre:pass1", "pre:passingPlayer", iri("pre:Iniesta"))
	add("pre:pass1", "pre:passReceiver", iri("pre:Eto"))
	add("pre:pass1", "pre:inMatch", match)
	add("pre:pass1", "pre:inMinute", rdf.NewInt(10))
	g.AddSPO(iri("pre:goal1"), rdf.RDFType, iri("pre:Goal"))
	add("pre:goal1", "pre:inMatch", match)
	add("pre:goal1", "pre:inMinute", rdf.NewInt(10))
	add("pre:goal1", "pre:scorerPlayer", iri("pre:Eto"))
	// A decoy pass in a different minute must not produce an assist.
	g.AddSPO(iri("pre:pass2"), rdf.RDFType, iri("pre:Pass"))
	add("pre:pass2", "pre:passingPlayer", iri("pre:Xavi"))
	add("pre:pass2", "pre:passReceiver", iri("pre:Eto"))
	add("pre:pass2", "pre:inMatch", match)
	add("pre:pass2", "pre:inMinute", rdf.NewInt(30))

	NewEngine(MustParse(src)).Run(g)
	assists := g.Match(rdf.Wildcard, rdf.RDFType, iri("pre:Assist"))
	if len(assists) != 1 {
		t.Fatalf("minted %d Assist individuals, want 1", len(assists))
	}
	a := assists[0].S
	if !a.IsBlank() {
		t.Errorf("assist node = %v, want blank temp", a)
	}
	if g.FirstObject(a, iri("pre:passingPlayer")) != iri("pre:Iniesta") {
		t.Error("assist passer wrong")
	}
}

func TestRuleStringRendersGuards(t *testing.T) {
	rs := MustParse(`[g: (?a pre:x ?b) noValue(?a pre:y ?b) greaterThan(?b 3) -> (?a pre:z ?b)]`)
	s := rs[0].String()
	for _, want := range []string{"noValue(?a pre:y ?b)", "greaterThan(?b", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNewEnginePanicsOnInvalidRule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine did not panic")
		}
	}()
	NewEngine([]*Rule{{Name: "bad", Head: []Pattern{{S: Node{Var: "x"}, P: Node{Term: rdf.RDFType}, O: Node{Term: rdf.OWLThing}}}}})
}
