// Package rules implements the forward-chaining production rule engine the
// paper drives through Jena (Section 3.5, Fig. 6). Rules are written in
// Jena's text syntax — triple patterns, the noValue guard and the makeTemp
// node constructor — and evaluated bottom-up to a fixpoint over an RDF
// graph.
//
// The engine fires each rule at most once per distinct binding of its body
// variables, which is Jena's forward-engine behaviour and what makes rules
// containing makeTemp terminate: re-running the engine over an already
// saturated graph adds nothing.
package rules

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Node is one slot of a rule pattern: either a concrete RDF term or a
// variable.
type Node struct {
	// Var is the variable name (without the leading '?'); empty for a
	// concrete term.
	Var string
	// Term is the concrete term when Var is empty.
	Term rdf.Term
}

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// String renders the node in rule syntax.
func (n Node) String() string {
	if n.IsVar() {
		return "?" + n.Var
	}
	if n.Term.IsIRI() {
		return rdf.CompactIRI(n.Term.Value)
	}
	return n.Term.String()
}

// Pattern is a triple pattern.
type Pattern struct {
	S, P, O Node
}

// String renders the pattern in rule syntax.
func (p Pattern) String() string {
	return "(" + p.S.String() + " " + p.P.String() + " " + p.O.String() + ")"
}

// Builtin is a guard or constructor call in a rule body.
type Builtin struct {
	// Name is one of "noValue", "makeTemp", "equal", "notEqual", "lessThan",
	// "greaterThan".
	Name string
	// Args are the call arguments; noValue takes three nodes forming a
	// pattern, makeTemp takes one variable, comparisons take two nodes.
	Args []Node
}

// String renders the builtin in rule syntax.
func (b Builtin) String() string {
	args := make([]string, len(b.Args))
	for i, a := range b.Args {
		args[i] = a.String()
	}
	return b.Name + "(" + strings.Join(args, " ") + ")"
}

// BodyItem is either a Pattern or a Builtin.
type BodyItem struct {
	Pattern *Pattern
	Builtin *Builtin
}

// Rule is one forward rule: when every body pattern matches and every guard
// holds, the head triples are asserted.
type Rule struct {
	// Name identifies the rule in diagnostics and provenance.
	Name string
	Body []BodyItem
	Head []Pattern
}

// String renders the rule in Jena bracket syntax.
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteByte('[')
	if r.Name != "" {
		b.WriteString(r.Name)
		b.WriteString(": ")
	}
	for i, item := range r.Body {
		if i > 0 {
			b.WriteByte(' ')
		}
		if item.Pattern != nil {
			b.WriteString(item.Pattern.String())
		} else {
			b.WriteString(item.Builtin.String())
		}
	}
	b.WriteString(" -> ")
	for i, p := range r.Head {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Validate checks that head variables are bound by the body (either by a
// pattern or by makeTemp) and that builtins are well-formed.
func (r *Rule) Validate() error {
	bound := map[string]bool{}
	for _, item := range r.Body {
		if item.Pattern != nil {
			for _, n := range []Node{item.Pattern.S, item.Pattern.P, item.Pattern.O} {
				if n.IsVar() {
					bound[n.Var] = true
				}
			}
			continue
		}
		b := item.Builtin
		switch b.Name {
		case "noValue":
			if len(b.Args) != 3 {
				return fmt.Errorf("rule %s: noValue takes 3 args, got %d", r.Name, len(b.Args))
			}
		case "makeTemp":
			if len(b.Args) != 1 || !b.Args[0].IsVar() {
				return fmt.Errorf("rule %s: makeTemp takes one variable", r.Name)
			}
			bound[b.Args[0].Var] = true
		case "equal", "notEqual", "lessThan", "greaterThan":
			if len(b.Args) != 2 {
				return fmt.Errorf("rule %s: %s takes 2 args", r.Name, b.Name)
			}
		default:
			return fmt.Errorf("rule %s: unknown builtin %q", r.Name, b.Name)
		}
	}
	for _, p := range r.Head {
		for _, n := range []Node{p.S, p.P, p.O} {
			if n.IsVar() && !bound[n.Var] {
				return fmt.Errorf("rule %s: head variable ?%s not bound in body", r.Name, n.Var)
			}
		}
	}
	if len(r.Head) == 0 {
		return fmt.Errorf("rule %s: empty head", r.Name)
	}
	return nil
}
