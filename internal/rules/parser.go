package rules

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Parse reads a rule set in Jena text syntax. Rules may be wrapped in
// brackets with an optional "name:" prefix, exactly as in the paper's
// Fig. 6:
//
//	[assistRule:
//	  noValue(?pass rdf:type pre:Assist)
//	  (?pass rdf:type pre:Pass)
//	  (?pass pre:passingPlayer ?passer)
//	  ...
//	  makeTemp(?tmp)
//	  -> (?tmp rdf:type pre:Assist) ...
//	]
//
// '#' and '//' start comments. Prefixed names resolve against rdf.Prefixes.
func Parse(src string) ([]*Rule, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &ruleParser{toks: toks}
	var out []*Rule
	for !p.eof() {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MustParse is Parse panicking on error, for rule sets embedded in source.
func MustParse(src string) []*Rule {
	rs, err := Parse(src)
	if err != nil {
		panic("rules: " + err.Error())
	}
	return rs
}

type token struct {
	kind string // "(", ")", "[", "]", "->", "ident", "var", "literal"
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == ',':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')' || c == '[' || c == ']':
			toks = append(toks, token{kind: string(c), line: line})
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{kind: "->", line: line})
			i += 2
		case c == '?':
			j := i + 1
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("rules: line %d: bare '?'", line)
			}
			toks = append(toks, token{kind: "var", text: src[i+1 : j], line: line})
			i = j
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("rules: line %d: unterminated string", line)
			}
			toks = append(toks, token{kind: "literal", text: src[i+1 : j], line: line})
			i = j + 1
		default:
			j := i
			for j < len(src) && (isIdentByte(src[j]) || src[j] == ':') {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("rules: line %d: unexpected character %q", line, c)
			}
			toks = append(toks, token{kind: "ident", text: src[i:j], line: line})
			i = j
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

type ruleParser struct {
	toks []token
	pos  int
}

func (p *ruleParser) eof() bool { return p.pos >= len(p.toks) }

func (p *ruleParser) peek() token {
	if p.eof() {
		return token{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *ruleParser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *ruleParser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("rules: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *ruleParser) parseRule() (*Rule, error) {
	bracketed := false
	if p.peek().kind == "[" {
		p.next()
		bracketed = true
	}
	r := &Rule{}
	// Optional "name:" — an ident ending with ':' right after '['.
	if t := p.peek(); bracketed && t.kind == "ident" && strings.HasSuffix(t.text, ":") {
		r.Name = strings.TrimSuffix(t.text, ":")
		p.next()
	}
	// Body until "->".
	for {
		t := p.peek()
		switch t.kind {
		case "->":
			p.next()
			goto head
		case "(":
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			r.Body = append(r.Body, BodyItem{Pattern: pat})
		case "ident":
			b, err := p.parseBuiltin()
			if err != nil {
				return nil, err
			}
			r.Body = append(r.Body, BodyItem{Builtin: b})
		default:
			return nil, p.errf(t, "expected pattern, builtin or '->', got %q", t.kind)
		}
	}
head:
	for {
		t := p.peek()
		if t.kind == "(" {
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			r.Head = append(r.Head, *pat)
			continue
		}
		break
	}
	if bracketed {
		if t := p.next(); t.kind != "]" {
			return nil, p.errf(t, "expected ']' after rule head, got %q", t.kind)
		}
	}
	return r, nil
}

func (p *ruleParser) parsePattern() (*Pattern, error) {
	if t := p.next(); t.kind != "(" {
		return nil, p.errf(t, "expected '('")
	}
	s, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	pr, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	o, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != ")" {
		return nil, p.errf(t, "expected ')' after triple pattern")
	}
	return &Pattern{S: s, P: pr, O: o}, nil
}

func (p *ruleParser) parseBuiltin() (*Builtin, error) {
	name := p.next()
	b := &Builtin{Name: name.text}
	if t := p.next(); t.kind != "(" {
		return nil, p.errf(t, "expected '(' after builtin %s", b.Name)
	}
	for p.peek().kind != ")" {
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		b.Args = append(b.Args, n)
	}
	p.next() // ')'
	return b, nil
}

func (p *ruleParser) parseNode() (Node, error) {
	t := p.next()
	switch t.kind {
	case "var":
		return Node{Var: t.text}, nil
	case "literal":
		return Node{Term: rdf.NewLiteral(t.text)}, nil
	case "ident":
		if isInteger(t.text) {
			return Node{Term: rdf.NewTypedLiteral(t.text, rdf.XSDInteger)}, nil
		}
		if iri, ok := rdf.ExpandQName(t.text); ok {
			return Node{Term: rdf.NewIRI(iri)}, nil
		}
		return Node{}, p.errf(t, "cannot resolve term %q", t.text)
	default:
		return Node{}, p.errf(t, "expected node, got %q", t.kind)
	}
}

func isInteger(s string) bool {
	if s == "" {
		return false
	}
	start := 0
	if s[0] == '-' {
		if len(s) == 1 {
			return false
		}
		start = 1
	}
	for i := start; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
