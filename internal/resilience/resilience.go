// Package resilience is the fault-tolerance substrate of the acquisition
// and serving paths: error classification, a retry policy with exponential
// backoff and full jitter, a per-host token-bucket rate limiter and a
// per-host circuit breaker with half-open probing.
//
// The paper's pipeline begins with a real crawl; real crawls lose requests.
// The machinery here lets the crawler degrade instead of abort — retry what
// is transient, give up fast on what is terminal, stop hammering a host
// that is down, and account precisely for every attempt — and the same
// classification vocabulary backs the degraded scatter-gather serving path.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/url"
	"syscall"
	"time"
)

// Class partitions errors by what retrying can achieve.
type Class int

const (
	// Retryable errors are transient: timeouts, connection resets, 5xx
	// responses. A later attempt may succeed.
	Retryable Class = iota
	// Terminal errors can never succeed by retrying: 4xx responses, parse
	// failures, cancelled contexts. Retrying them only wastes budget.
	Terminal
)

func (c Class) String() string {
	if c == Terminal {
		return "terminal"
	}
	return "retryable"
}

// HTTPError is a non-200 response, classified by status code.
type HTTPError struct {
	StatusCode int
	Status     string
}

func (e *HTTPError) Error() string { return "status " + e.Status }

// permanentError marks an error terminal regardless of its shape.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Classify reports it Terminal. Use it for failures
// retrying cannot fix: oversized bodies, malformed pages.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Classify decides whether an error is worth retrying. Unknown errors
// default to Retryable: on the acquisition path availability beats strictness,
// and the retry budget bounds the damage of a wrong guess.
func Classify(err error) Class {
	if err == nil {
		return Retryable
	}
	var pe *permanentError
	if errors.As(err, &pe) {
		return Terminal
	}
	// A cancelled or expired caller context terminates the whole operation;
	// retrying against it can only fail again.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Terminal
	}
	var he *HTTPError
	if errors.As(err, &he) {
		switch {
		case he.StatusCode >= 500:
			return Retryable // server-side hiccup
		case he.StatusCode == 429 || he.StatusCode == 408:
			return Retryable // throttled / request timeout
		case he.StatusCode >= 400:
			return Terminal // our request is wrong; it will stay wrong
		}
		return Retryable
	}
	// Malformed URLs never become well-formed.
	var ue *url.Error
	if errors.As(err, &ue) {
		if _, parseErr := url.Parse(ue.URL); parseErr != nil {
			return Terminal
		}
	}
	// Network-shaped transience: timeouts, resets, refused connections,
	// truncated reads.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return Retryable
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.EOF) {
		return Retryable
	}
	return Retryable
}

// Policy is a retry policy with exponential backoff and full jitter
// (delay drawn uniformly from [0, min(MaxDelay, BaseDelay<<attempt))), the
// schedule that decorrelates synchronized retry storms. The zero value
// retries nothing, so "no retries" is finally expressible; DefaultPolicy
// is the crawler's production setting.
type Policy struct {
	// MaxRetries is how many re-attempts follow the first try. 0 means none.
	MaxRetries int
	// BaseDelay seeds the exponential schedule; 0 with MaxRetries > 0 means
	// 50ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff; 0 means 2s.
	MaxDelay time.Duration
}

// DefaultPolicy is the crawler's production retry setting.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// Backoff returns the randomized delay before re-attempt number attempt
// (1-based: the delay after the attempt-th failure).
func (p Policy) Backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	ceil := base
	for i := 1; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	// Full jitter: anywhere in [0, ceil). Never zero so a retry always
	// yields the scheduler.
	return time.Duration(rand.Int63n(int64(ceil))) + 1
}

// Stats accounts for one resilient operation: how hard it had to work.
type Stats struct {
	// Attempts counts every call of the operation, including the first.
	Attempts int
	// Retries counts re-attempts after a retryable failure.
	Retries int
	// Backoff is the total time spent sleeping between attempts.
	Backoff time.Duration
	// ShortCircuits counts attempts denied by an open circuit breaker
	// before reaching the network.
	ShortCircuits int
}

// Add merges another operation's accounting into s.
func (s *Stats) Add(o Stats) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Backoff += o.Backoff
	s.ShortCircuits += o.ShortCircuits
}

// Do runs fn under the policy: retry retryable failures with backoff, stop
// at the first terminal one, respect ctx between attempts. It returns the
// accounting either way; the error is the last failure, wrapped with the
// attempt count when retries were exhausted.
func (p Policy) Do(ctx context.Context, fn func() error) (Stats, error) {
	var st Stats
	var lastErr error
	for attempt := 0; attempt <= p.MaxRetries; attempt++ {
		if attempt > 0 {
			d := p.Backoff(attempt)
			select {
			case <-ctx.Done():
				return st, ctx.Err()
			case <-time.After(d):
			}
			st.Backoff += d
			st.Retries++
		}
		st.Attempts++
		lastErr = fn()
		if lastErr == nil {
			return st, nil
		}
		if Classify(lastErr) == Terminal {
			return st, lastErr
		}
	}
	return st, fmt.Errorf("after %d attempts: %w", st.Attempts, lastErr)
}
