package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned in place of a network call when a host's circuit is
// open. Classify reports it Retryable: a later attempt may find the
// circuit half-open and probe through.
var ErrOpen = errors.New("resilience: circuit open")

// Breaker is a per-host circuit breaker. Threshold consecutive failures
// open a host's circuit; while open, Allow denies every request without
// touching the network. After Cooldown the circuit goes half-open and
// admits exactly one probe: a successful probe closes the circuit, a
// failed one re-opens it for another Cooldown.
//
// The zero value is not usable; construct with NewBreaker. All methods are
// safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	// now is the clock, swappable so tests can step through cooldowns
	// without sleeping.
	now func() time.Time

	mu    sync.Mutex
	hosts map[string]*circuit
}

type circuitState int

const (
	stateClosed circuitState = iota
	stateOpen
	stateHalfOpen
)

// circuit is one host's breaker state.
type circuit struct {
	state    circuitState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// NewBreaker builds a breaker opening after threshold consecutive failures
// (values < 1 mean 1) and probing again after cooldown (<= 0 means 1s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		hosts:     map[string]*circuit{},
	}
}

// SetClock swaps the breaker's time source; tests use it to cross
// cooldowns instantly.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Allow reports whether a request to host may proceed. A half-open circuit
// admits one probe at a time; callers that were admitted must Report the
// outcome or the probe slot stays taken.
func (b *Breaker) Allow(host string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.hosts[host]
	if c == nil {
		return true
	}
	switch c.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(c.openedAt) < b.cooldown {
			return false
		}
		c.state = stateHalfOpen
		c.probing = true
		return true
	default: // half-open: one probe only
		if c.probing {
			return false
		}
		c.probing = true
		return true
	}
}

// Report records the outcome of an admitted request. Success closes (or
// keeps closed) the host's circuit; failure counts toward the threshold,
// and a failed half-open probe re-opens immediately.
func (b *Breaker) Report(host string, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.hosts[host]
	if c == nil {
		c = &circuit{}
		b.hosts[host] = c
	}
	if err == nil {
		c.state = stateClosed
		c.failures = 0
		c.probing = false
		return
	}
	switch c.state {
	case stateHalfOpen:
		c.state = stateOpen
		c.openedAt = b.now()
		c.probing = false
	default:
		c.failures++
		if c.failures >= b.threshold {
			c.state = stateOpen
			c.openedAt = b.now()
			c.failures = 0
		}
	}
}

// State returns a host's circuit state as a string ("closed", "open",
// "half-open"), for logs and tests.
func (b *Breaker) State(host string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.hosts[host]
	if c == nil {
		return "closed"
	}
	switch c.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	}
	return "closed"
}
