package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"500", &HTTPError{StatusCode: 500, Status: "500 Internal Server Error"}, Retryable},
		{"503", &HTTPError{StatusCode: 503, Status: "503 Service Unavailable"}, Retryable},
		{"429", &HTTPError{StatusCode: 429, Status: "429 Too Many Requests"}, Retryable},
		{"408", &HTTPError{StatusCode: 408, Status: "408 Request Timeout"}, Retryable},
		{"404", &HTTPError{StatusCode: 404, Status: "404 Not Found"}, Terminal},
		{"400", &HTTPError{StatusCode: 400, Status: "400 Bad Request"}, Terminal},
		{"wrapped 404", fmt.Errorf("fetch: %w", &HTTPError{StatusCode: 404, Status: "404"}), Terminal},
		{"permanent", Permanent(errors.New("parse failed")), Terminal},
		{"wrapped permanent", fmt.Errorf("x: %w", Permanent(errors.New("truncated"))), Terminal},
		{"canceled", context.Canceled, Terminal},
		{"deadline", context.DeadlineExceeded, Terminal},
		{"conn reset", syscall.ECONNRESET, Retryable},
		{"conn refused", syscall.ECONNREFUSED, Retryable},
		{"unexpected EOF", io.ErrUnexpectedEOF, Retryable},
		{"unknown", errors.New("mystery"), Retryable},
		{"breaker open", ErrOpen, Retryable},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.err); got != c.want {
				t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	ceils := []time.Duration{10, 20, 40, 80, 80, 80} // ms, capped at MaxDelay
	for attempt := 1; attempt <= len(ceils); attempt++ {
		ceil := ceils[attempt-1] * time.Millisecond
		for i := 0; i < 50; i++ {
			d := p.Backoff(attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("Backoff(%d) = %v, want (0, %v]", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var p Policy // zero BaseDelay/MaxDelay must still produce sane delays
	for attempt := 1; attempt < 10; attempt++ {
		d := p.Backoff(attempt)
		if d <= 0 || d > 2*time.Second {
			t.Fatalf("zero-policy Backoff(%d) = %v", attempt, d)
		}
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	p := Policy{MaxRetries: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	calls := 0
	st, err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return &HTTPError{StatusCode: 500, Status: "500"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || st.Attempts != 3 || st.Retries != 2 {
		t.Errorf("calls=%d stats=%+v", calls, st)
	}
	if st.Backoff <= 0 {
		t.Error("no backoff recorded")
	}
}

func TestDoStopsAtTerminal(t *testing.T) {
	p := Policy{MaxRetries: 5, BaseDelay: time.Millisecond}
	calls := 0
	_, err := p.Do(context.Background(), func() error {
		calls++
		return &HTTPError{StatusCode: 404, Status: "404"}
	})
	if err == nil || calls != 1 {
		t.Errorf("terminal error retried: calls=%d err=%v", calls, err)
	}
}

func TestDoZeroValueMeansNoRetries(t *testing.T) {
	var p Policy
	calls := 0
	_, err := p.Do(context.Background(), func() error {
		calls++
		return &HTTPError{StatusCode: 500, Status: "500"}
	})
	if calls != 1 {
		t.Errorf("zero-value policy made %d attempts, want 1", calls)
	}
	if err == nil {
		t.Error("failure swallowed")
	}
}

func TestDoExhaustionMentionsAttempts(t *testing.T) {
	p := Policy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err := p.Do(context.Background(), func() error {
		return &HTTPError{StatusCode: 503, Status: "503"}
	})
	if err == nil || !errors.As(err, new(*HTTPError)) {
		t.Fatalf("err = %v", err)
	}
	if want := "after 3 attempts"; !strings.Contains(err.Error(), want) {
		t.Errorf("err %q does not contain %q", err, want)
	}
}

func TestDoRespectsContext(t *testing.T) {
	p := Policy{MaxRetries: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := p.Do(ctx, func() error { return &HTTPError{StatusCode: 500, Status: "500"} })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("cancelled Do took %v", time.Since(start))
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	fail := errors.New("boom")
	for i := 0; i < 3; i++ {
		if !b.Allow("h") {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Report("h", fail)
	}
	if b.State("h") != "open" {
		t.Fatalf("state after threshold = %s", b.State("h"))
	}
	if b.Allow("h") {
		t.Error("open breaker admitted a request before cooldown")
	}
}

func TestBreakerHalfOpenProbing(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	now := time.Unix(1000, 0)
	b.SetClock(func() time.Time { return now })
	fail := errors.New("boom")
	b.Report("h", fail)
	b.Report("h", fail)
	if b.Allow("h") {
		t.Fatal("open breaker admitted a request")
	}
	// Cross the cooldown: exactly one probe is admitted.
	now = now.Add(2 * time.Minute)
	if !b.Allow("h") {
		t.Fatal("half-open breaker denied the probe")
	}
	if b.Allow("h") {
		t.Error("half-open breaker admitted a second concurrent probe")
	}
	// A failed probe re-opens for another full cooldown.
	b.Report("h", fail)
	if b.State("h") != "open" || b.Allow("h") {
		t.Fatalf("failed probe did not re-open: state=%s", b.State("h"))
	}
	// After another cooldown a successful probe closes the circuit.
	now = now.Add(2 * time.Minute)
	if !b.Allow("h") {
		t.Fatal("second probe denied")
	}
	b.Report("h", nil)
	if b.State("h") != "closed" {
		t.Fatalf("state after successful probe = %s", b.State("h"))
	}
	if !b.Allow("h") || !b.Allow("h") {
		t.Error("closed breaker throttled requests")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	fail := errors.New("boom")
	b.Report("h", fail)
	b.Report("h", fail)
	b.Report("h", nil) // success wipes the streak
	b.Report("h", fail)
	b.Report("h", fail)
	if b.State("h") != "closed" {
		t.Errorf("non-consecutive failures opened the breaker: %s", b.State("h"))
	}
}

func TestBreakerIsolatesHosts(t *testing.T) {
	b := NewBreaker(1, time.Minute)
	b.Report("down", errors.New("boom"))
	if b.Allow("down") {
		t.Error("failing host not blocked")
	}
	if !b.Allow("up") {
		t.Error("healthy host blocked by another host's circuit")
	}
}

func TestLimiterBurstThenThrottle(t *testing.T) {
	l := NewLimiter(10, 2) // 10/s, burst 2
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })
	if !l.Allow("h") || !l.Allow("h") {
		t.Fatal("burst denied")
	}
	if l.Allow("h") {
		t.Error("over-burst request allowed without refill")
	}
	now = now.Add(100 * time.Millisecond) // refills exactly one token
	if !l.Allow("h") {
		t.Error("refilled token denied")
	}
}

func TestLimiterWaitBlocksAndHonorsContext(t *testing.T) {
	l := NewLimiter(1000, 1)
	if err := l.Wait(context.Background(), "h"); err != nil {
		t.Fatal(err)
	}
	// Second request must wait ~1ms for a refill — small enough to sleep for.
	start := time.Now()
	if err := l.Wait(context.Background(), "h"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) <= 0 {
		t.Error("second Wait did not block at all")
	}
	// A cancelled context aborts a long wait promptly.
	slow := NewLimiter(0.001, 1)
	slow.Allow("h")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := slow.Wait(ctx, "h"); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait on cancelled ctx = %v", err)
	}
}

func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if !l.Allow("h") {
			t.Fatal("unlimited limiter denied")
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Attempts: 2, Retries: 1, Backoff: time.Second, ShortCircuits: 1}
	a.Add(Stats{Attempts: 3, Retries: 2, Backoff: time.Second, ShortCircuits: 2})
	want := Stats{Attempts: 5, Retries: 3, Backoff: 2 * time.Second, ShortCircuits: 3}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}
