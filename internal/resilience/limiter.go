package resilience

import (
	"context"
	"sync"
	"time"
)

// Limiter is a per-host token bucket: each host refills at Rate tokens per
// second up to Burst, and every request costs one token. Wait blocks until
// a token is available or the context ends. It keeps a polite crawler from
// hammering one origin while still allowing short bursts.
//
// The zero value is not usable; construct with NewLimiter. Safe for
// concurrent use.
type Limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter refilling rate tokens/second (values <= 0
// mean unlimited) with the given burst capacity (values < 1 mean 1).
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), now: time.Now, buckets: map[string]*bucket{}}
}

// SetClock swaps the limiter's time source for tests.
func (l *Limiter) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// reserve takes one token from host's bucket, returning how long the
// caller must wait before acting on it.
func (l *Limiter) reserve(host string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 {
		return 0
	}
	now := l.now()
	b := l.buckets[host]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[host] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	// The bucket is in debt: the wait is the time to refill it back to zero.
	return time.Duration(-b.tokens / l.rate * float64(time.Second))
}

// Wait blocks until host may make one request. A cancelled context returns
// its error; the token stays spent (the debt keeps later callers honest).
func (l *Limiter) Wait(ctx context.Context, host string) error {
	d := l.reserve(host)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Allow reports whether host may make one request right now, consuming a
// token if so.
func (l *Limiter) Allow(host string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 {
		return true
	}
	now := l.now()
	b := l.buckets[host]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[host] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
