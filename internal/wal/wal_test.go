package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// openT opens a log at gen with fsync-always and fails the test on error.
func openT(t *testing.T, path string, gen uint64) *Log {
	t.Helper()
	l, err := Open(path, gen, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// collect replays the log and returns the payloads.
func collect(t *testing.T, path string, gen uint64) ([][]byte, Result) {
	t.Helper()
	var got [][]byte
	res, err := Replay(path, gen, nil, func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l := openT(t, path, 3)
	recs := [][]byte{
		[]byte("a"),
		[]byte(`{"id":"match-7","home":"Barcelona"}`),
		bytes.Repeat([]byte{0xAB}, 10_000),
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, path, 3)
	if res.Torn || res.GenMismatch || res.Records != len(recs) || res.Generation != 3 {
		t.Fatalf("replay result = %+v", res)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestEmptyAndOversizedAppendsRejected(t *testing.T) {
	l := openT(t, filepath.Join(t.TempDir(), "w"), 0)
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Error("empty append accepted")
	}
	if err := l.Append(make([]byte, MaxRecordLen+1)); err != ErrRecordTooLarge {
		t.Errorf("oversized append: %v", err)
	}
}

// TestTornTailEveryOffset is the kill-at-any-point property at the log
// layer: three records, then the file cut at every byte offset from the
// start of the last record to its end. Every cut short of the full file
// must replay exactly two records and report (and repair) the tear.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.wal")
	l := openT(t, path, 1)
	for i := 0; i < 2; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d-0123456789", i))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	boundary := st.Size()
	if err := l.Append([]byte("the-final-record-payload")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := boundary; cut <= int64(len(full)); cut++ {
		cp := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(cp, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, cp, 1)
		wantRecs := 2
		if cut == int64(len(full)) {
			wantRecs = 3
		}
		if len(got) != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), wantRecs)
		}
		// A cut exactly on the prior record boundary is indistinguishable
		// from a clean two-record log; every other cut is a tear.
		if wantTorn := cut != boundary && cut != int64(len(full)); res.Torn != wantTorn {
			t.Errorf("cut %d: torn = %v, want %v", cut, res.Torn, wantTorn)
		}
		// The tear was truncated: the log must accept appends and a
		// second replay must be clean.
		l2, err := Open(cp, 1, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if err := l2.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		got2, res2 := collect(t, cp, 1)
		if res2.Torn || len(got2) != wantRecs+1 {
			t.Errorf("cut %d: after repair+append: %d records, torn %v", cut, len(got2), res2.Torn)
		}
	}
}

// TestBitFlipTruncatesAtFlippedRecord flips every byte of the middle
// record in turn; replay must surface only the first record, report the
// tear, and never error or panic.
func TestBitFlipTruncatesAtFlippedRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.wal")
	l := openT(t, path, 1)
	if err := l.Append([]byte("first-record")); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	mid0 := st.Size()
	if err := l.Append([]byte("second-record")); err != nil {
		t.Fatal(err)
	}
	st, _ = os.Stat(path)
	mid1 := st.Size()
	if err := l.Append([]byte("third-record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)
	for off := mid0; off < mid1; off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		cp := filepath.Join(dir, "flip.wal")
		if err := os.WriteFile(cp, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, cp, 1)
		if len(got) != 1 || !res.Torn {
			t.Fatalf("flip at %d: %d records, torn %v", off, len(got), res.Torn)
		}
	}
}

func TestGenMismatchSkipsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l := openT(t, path, 5)
	if err := l.Append([]byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, path, 6)
	if len(got) != 0 || !res.GenMismatch || res.Generation != 5 {
		t.Fatalf("gen mismatch: %d records, %+v", len(got), res)
	}
	// Open at the new generation resets the stale log.
	l2 := openT(t, path, 6)
	if err := l2.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, res = collect(t, path, 6)
	if len(got) != 1 || res.GenMismatch {
		t.Fatalf("after reset: %d records, %+v", len(got), res)
	}
}

func TestRotateDiscardsRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l := openT(t, path, 1)
	if err := l.Append([]byte("pre-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(2); err != nil {
		t.Fatal(err)
	}
	if g := l.Generation(); g != 2 {
		t.Errorf("generation after rotate = %d", g)
	}
	if err := l.Append([]byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, path, 2)
	if len(got) != 1 || string(got[0]) != "post-checkpoint" || res.Torn {
		t.Fatalf("after rotate: %q torn=%v", got, res.Torn)
	}
}

func TestMissingFileIsEmptyLog(t *testing.T) {
	got, res := collect(t, filepath.Join(t.TempDir(), "absent.wal"), 9)
	if len(got) != 0 || res.Torn || res.GenMismatch {
		t.Fatalf("missing file: %d records, %+v", len(got), res)
	}
}

func TestZeroFilledTailIsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l := openT(t, path, 1)
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, res := collect(t, path, 1)
	if len(got) != 1 || !res.Torn {
		t.Fatalf("zero tail: %d records, torn %v", len(got), res.Torn)
	}
}

func TestSyncPolicies(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, err := Open(path, 0, Options{Policy: SyncNever, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Counter(metricFsyncs).Value() // header sync
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte("x-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(metricFsyncs).Value(); got != base {
		t.Errorf("SyncNever issued %d fsyncs", got-base)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(metricFsyncs).Value(); got != base+1 {
		t.Errorf("explicit Sync: fsyncs = %d, want %d", got, base+1)
	}
	l.Close()

	l2, err := Open(path, 0, Options{Policy: SyncInterval, Interval: time.Hour, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	mark := reg.Counter(metricFsyncs).Value()
	// The first append is past the (zero) lastSync mark, so it syncs;
	// the burst after it rides the interval.
	for i := 0; i < 5; i++ {
		if err := l2.Append([]byte("y-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(metricFsyncs).Value(); got != mark+1 {
		t.Errorf("SyncInterval burst: fsyncs = %d, want %d", got, mark+1)
	}
}

func TestScanReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l := openT(t, path, 4)
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)
	if err := os.WriteFile(path, full[:len(full)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || !res.Torn || res.Generation != 4 {
		t.Fatalf("scan: %+v", res)
	}
	// Read-only: the torn byte is still there.
	after, _ := os.ReadFile(path)
	if len(after) != len(full)-2 {
		t.Error("Scan mutated the file")
	}
}
