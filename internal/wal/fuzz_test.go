package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// record renders one valid WAL record for seeding.
func record(payload []byte) []byte {
	var hdr [recHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(hdr[:], payload...)
}

// FuzzReadRecords hardens the recovery scanner against arbitrary bytes:
// whatever a crash, a bit flip, or an adversarial file leaves behind the
// header, the scanner must terminate without panicking, never claim more
// valid bytes than exist, and never allocate past the input size (the
// length-prefix defense). Replay and Open both ride this function, so a
// panic here is a crashed recovery.
func FuzzReadRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(record([]byte("one")))
	f.Add(append(record([]byte("one")), record([]byte("two"))...))
	f.Add(append(record([]byte("one")), 0x03, 0x00))
	f.Add(make([]byte, 64)) // zero-filled tail
	// Length prefix claiming 4 GiB with no bytes behind it.
	huge := make([]byte, recHdrLen)
	binary.LittleEndian.PutUint32(huge[0:4], 0xFFFFFFFF)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn := readRecords(bytes.NewReader(data), int64(len(data)), false)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("clean scan but %d of %d bytes consumed", valid, len(data))
		}
		total := int64(0)
		for _, r := range recs.payloads {
			total += recHdrLen + int64(len(r))
		}
		if total != valid {
			t.Fatalf("records cover %d bytes, valid prefix is %d", total, valid)
		}
		// Count-only mode must agree with the materializing mode.
		only, validOnly, tornOnly := readRecords(bytes.NewReader(data), int64(len(data)), true)
		if only.n != recs.n || validOnly != valid || tornOnly != torn {
			t.Fatalf("count-only scan diverged: (%d,%d,%v) vs (%d,%d,%v)",
				only.n, validOnly, tornOnly, recs.n, valid, torn)
		}
	})
}
