// Package wal is the ingest write-ahead log behind the engine's
// kill-at-any-point durability guarantee. A snapshot (internal/shard's
// manifest-anchored checkpoint) captures the index at a generation; the
// WAL captures every ingest batch since, appended and (per policy)
// fsynced *before* the batch mutates memory. Recovery is snapshot +
// replay: whatever survives on disk reconstructs exactly the state the
// crashed process had acknowledged.
//
// File layout (little-endian):
//
//	header: magic "SWAL" | version u32 | generation u64
//	record: length u32 | crc32(IEEE, payload) u32 | payload bytes
//
// The generation ties a log to the snapshot it extends: replay applies a
// log only when its generation matches the manifest's, so a stale log
// left by a crash mid-checkpoint is ignored rather than double-applied.
//
// Torn writes are the normal crash artifact, not an error: a record cut
// anywhere — short header, short payload, bit-flipped bytes failing the
// CRC — ends the valid prefix. Replay surfaces the records before the
// tear, reports it, and truncates the file back to the last good
// boundary so the log is immediately appendable again. A length prefix
// larger than the bytes actually on disk is treated the same way, so a
// corrupt prefix can never drive allocation past the file size.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

const (
	logMagic   = "SWAL"
	logVersion = 1
	headerLen  = 4 + 4 + 8 // magic, version, generation
	recHdrLen  = 4 + 4     // length, crc
)

// MaxRecordLen bounds a single record's payload (64 MiB). Appends beyond
// it are rejected, and a length prefix claiming more marks a torn tail.
const MaxRecordLen = 64 << 20

// ErrBadHeader reports a file that is not a WAL: wrong magic or an
// unsupported version. Distinct from a torn tail — a bad header means
// the whole file is untrusted.
var ErrBadHeader = errors.New("wal: bad log header")

// ErrRecordTooLarge rejects an Append past MaxRecordLen.
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecordLen")

// Policy selects when Append makes its record durable.
type Policy int

const (
	// SyncAlways fsyncs after every append: the acknowledged-write-
	// survives-kill guarantee, at one fsync per batch.
	SyncAlways Policy = iota
	// SyncInterval fsyncs at most once per Options.Interval, amortizing
	// the fsync over a burst; a crash can lose up to one interval of
	// acknowledged appends.
	SyncInterval
	// SyncNever leaves durability to the OS page cache (and Close/Sync).
	// A crash can lose everything since the last explicit sync.
	SyncNever
)

// Options configures a log handle.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy Policy
	// Interval is the SyncInterval flush period (default 100ms).
	Interval time.Duration
	// Registry receives the wal_* counters; nil disables them. Callers
	// that want process-wide series pass obs.Default explicitly.
	Registry *obs.Registry
}

// Metric names the log publishes.
const (
	metricAppends     = "wal_appends_total"
	metricFsyncs      = "wal_fsyncs_total"
	metricReplayed    = "wal_replayed_records_total"
	metricTruncations = "wal_torn_truncations_total"
)

type logMetrics struct {
	appends     *obs.Counter
	fsyncs      *obs.Counter
	replayed    *obs.Counter
	truncations *obs.Counter
}

func newLogMetrics(r *obs.Registry) logMetrics {
	r.Help(metricAppends, "WAL records appended.")
	r.Help(metricFsyncs, "WAL fsync calls issued.")
	r.Help(metricReplayed, "WAL records replayed during recovery.")
	r.Help(metricTruncations, "WAL torn tails truncated during recovery.")
	return logMetrics{
		appends:     r.Counter(metricAppends),
		fsyncs:      r.Counter(metricFsyncs),
		replayed:    r.Counter(metricReplayed),
		truncations: r.Counter(metricTruncations),
	}
}

// Log is an append handle on one WAL file. Appends are serialized
// internally; a Log is safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	gen      uint64
	opts     Options
	met      logMetrics
	lastSync time.Time
	dirty    bool
}

// Open returns an append handle positioned after the last intact record,
// creating the file when absent. An existing log whose generation
// differs from gen is reset: its records belong to another snapshot
// lineage and replaying them here would corrupt state, so they are
// discarded and a fresh header is written. An existing log at the right
// generation keeps its records — they are the tail the caller just
// replayed (or an empty log) — with any torn tail truncated away.
func Open(path string, gen uint64, opts Options) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, gen: gen, opts: opts, met: newLogMetrics(opts.Registry)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	reset := st.Size() < headerLen
	if !reset {
		fileGen, err := readHeader(f)
		if err != nil || fileGen != gen {
			reset = true
		}
	}
	if reset {
		if err := l.rewriteHeader(gen); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	// Find the intact prefix and drop whatever tear follows it.
	end, _, torn, err := scanFrom(f, st.Size(), nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if torn {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		l.met.truncations.Inc()
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return l, nil
}

// rewriteHeader truncates the file to a fresh header at gen and syncs it.
func (l *Log) rewriteHeader(gen uint64) error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], gen)
	if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(headerLen, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.met.fsyncs.Inc()
	l.gen = gen
	l.dirty = false
	return nil
}

// Generation returns the snapshot generation this log extends.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Append writes one record and makes it durable per the sync policy.
// When Append returns nil under SyncAlways, the record survives an
// immediate kill -9. Empty records are rejected: a zero-filled tail
// (what some filesystems leave after a crash) must read as a torn tail,
// not as a run of valid empty records.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(payload); err != nil {
		return err
	}
	switch l.opts.Policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.syncLocked()
		}
	}
	return nil
}

// AppendAsync writes one record without consulting the sync policy: the
// record reaches the OS page cache but no fsync is issued, whatever the
// policy. It backs the engine's async-durability ingest acknowledgement —
// replayable after a process crash, lost on a machine crash — and a later
// Sync (or any policy-triggered one) makes it durable.
func (l *Log) AppendAsync(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload)
}

// appendLocked writes the record header and payload under l.mu.
func (l *Log) appendLocked(payload []byte) error {
	if len(payload) > MaxRecordLen {
		return ErrRecordTooLarge
	}
	if len(payload) == 0 {
		return errors.New("wal: empty record")
	}
	var hdr [recHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.met.appends.Inc()
	l.dirty = true
	return nil
}

// Sync forces pending appends to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.met.fsyncs.Inc()
	l.lastSync = time.Now()
	l.dirty = false
	return nil
}

// Rotate discards every record and starts the log over at a new
// generation — the checkpoint step: once a snapshot at gen is committed,
// the records folded into it are dead weight.
func (l *Log) Rotate(gen uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rewriteHeader(gen)
}

// Close syncs and releases the handle.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncLocked(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Result describes one replay or scan.
type Result struct {
	// Generation is the log's recorded snapshot generation.
	Generation uint64
	// Records counts the intact records visited.
	Records int
	// Torn is true when the file ended mid-record (crash artifact or
	// bit flip); the records before the tear are still good.
	Torn bool
	// GenMismatch is true when the log belongs to a different snapshot
	// generation than expected and was therefore skipped entirely.
	GenMismatch bool
}

// Replay feeds every intact record of the log at path to fn, in append
// order, then truncates any torn tail so the log is appendable again. A
// missing file is an empty log, not an error. A log at a different
// generation than expectGen is skipped (GenMismatch). fn errors abort
// the replay and are returned as-is; the torn tail is not truncated in
// that case, so a later attempt sees the same records.
func Replay(path string, expectGen uint64, reg *obs.Registry, fn func(rec []byte) error) (Result, error) {
	met := newLogMetrics(reg)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return Result{Generation: expectGen}, nil
	}
	if err != nil {
		return Result{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	res, end, err := scanFile(f, expectGen, true, fn)
	if err != nil {
		return res, err
	}
	met.replayed.Add(uint64(res.Records))
	if res.Torn {
		if err := f.Truncate(end); err != nil {
			return res, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		met.truncations.Inc()
	}
	return res, nil
}

// Scan is the read-only form of Replay for fsck: it reports the log's
// shape — generation, intact records, torn tail — without mutating the
// file. expectGen < 0 disables the generation check.
func Scan(path string, expectGen int64) (Result, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return Result{}, nil
	}
	if err != nil {
		return Result{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	res, _, err := scanFile(f, uint64(max64(expectGen, 0)), expectGen >= 0, nil)
	return res, err
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// scanFile validates the header and walks the records, returning the
// offset where the intact prefix ends. checkGen false disables the
// generation gate (read-only fsck of a log of unknown lineage).
func scanFile(f *os.File, expectGen uint64, checkGen bool, fn func(rec []byte) error) (Result, int64, error) {
	st, err := f.Stat()
	if err != nil {
		return Result{}, 0, fmt.Errorf("wal: %w", err)
	}
	if st.Size() < headerLen {
		// Shorter than a header: a crash before the first header sync.
		// Nothing to replay; treat as empty-and-torn at offset 0.
		return Result{Torn: st.Size() > 0}, 0, nil
	}
	gen, err := readHeader(f)
	if err != nil {
		return Result{}, 0, err
	}
	if checkGen && gen != expectGen {
		return Result{Generation: gen, GenMismatch: true}, headerLen, nil
	}
	end, n, torn, err := scanFrom(f, st.Size(), fn)
	return Result{Generation: gen, Records: n, Torn: torn}, end, err
}

// readHeader validates magic and version and returns the generation.
func readHeader(f *os.File) (uint64, error) {
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if string(hdr[:4]) != logMagic {
		return 0, fmt.Errorf("%w: magic %q", ErrBadHeader, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != logVersion {
		return 0, fmt.Errorf("%w: version %d", ErrBadHeader, v)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

// scanFrom walks records from the header to size, calling fn (when
// non-nil) per intact record. It returns the end of the intact prefix,
// the record count, and whether a tear cut the walk short. fn errors
// abort and propagate.
func scanFrom(f *os.File, size int64, fn func(rec []byte) error) (end int64, n int, torn bool, err error) {
	r := io.NewSectionReader(f, headerLen, size-headerLen)
	recs, valid, torn := readRecords(r, size-headerLen, fn == nil)
	if fn != nil {
		for _, rec := range recs.payloads {
			if err := fn(rec); err != nil {
				return headerLen + valid, recs.n, torn, err
			}
		}
	}
	return headerLen + valid, recs.n, torn, nil
}

// recordSet carries either materialized records (replay) or just their
// count (scan-only), so fsck never buffers payloads.
type recordSet struct {
	payloads [][]byte
	n        int
}

// readRecords is the core scanner: it consumes records off r until the
// stream ends or tears, where remaining bounds how many payload bytes
// can still exist (the file size minus the current offset — the defense
// against a corrupt length prefix driving unbounded allocation).
// countOnly skips payload retention. This function is the fuzz target:
// it must never panic on arbitrary input.
func readRecords(r io.Reader, remaining int64, countOnly bool) (recordSet, int64, bool) {
	var set recordSet
	var valid int64
	for {
		var hdr [recHdrLen]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// EOF exactly at a boundary is a clean end; anything else
			// (partial header) is a tear.
			return set, valid, !errors.Is(err, io.EOF)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordLen || length > remaining-valid-recHdrLen {
			// Zero length (a zero-filled tail reads as endless empty
			// records otherwise) or a prefix claiming more bytes than
			// the file holds: torn.
			return set, valid, true
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return set, valid, true
		}
		if crc32.ChecksumIEEE(payload) != want {
			return set, valid, true
		}
		valid += recHdrLen + length
		set.n++
		if !countOnly {
			set.payloads = append(set.payloads, payload)
		}
	}
}
