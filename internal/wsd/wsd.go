// Package wsd implements the word-sense disambiguation module the paper
// leaves as future work (Section 8: "The performance will be further
// improved by implementing a word disambiguation module for lexical
// ambiguities").
//
// The algorithm is simplified Lesk: each ambiguous lemma carries a sense
// inventory whose senses have signature words; a query occurrence is
// assigned the sense whose signature overlaps the query context most, with
// the domain sense as the default (the corpus is a soccer knowledge base,
// so domain senses are the priors). Out-of-domain winners are dropped from
// the retrieval query — "save money on tickets" should not rank goalkeeper
// saves.
package wsd

import (
	"sort"
	"strings"

	"repro/internal/index"
)

// Sense is one meaning of an ambiguous word.
type Sense struct {
	// ID names the sense, e.g. "save/goalkeeping".
	ID string
	// Gloss is a human-readable definition.
	Gloss string
	// Signature are context words indicating this sense.
	Signature []string
	// InDomain marks senses belonging to the soccer knowledge base.
	InDomain bool
}

// Inventory maps an ambiguous lemma to its senses. The first sense is the
// default (chosen when context decides nothing).
type Inventory map[string][]Sense

// SoccerInventory covers the lexical ambiguities the soccer query log can
// plausibly hit.
var SoccerInventory = Inventory{
	"save": {
		{ID: "save/goalkeeping", Gloss: "a goalkeeper stopping a shot", InDomain: true,
			Signature: []string{"goalkeeper", "keeper", "shot", "stop", "denies", "goal", "penalty"}},
		{ID: "save/economize", Gloss: "to spend less money", InDomain: false,
			Signature: []string{"money", "price", "ticket", "tickets", "cost", "cheap", "discount", "bank"}},
	},
	"goal": {
		{ID: "goal/score", Gloss: "the ball crossing the line", InDomain: true,
			Signature: []string{"scores", "scored", "net", "keeper", "match", "minute", "header"}},
		{ID: "goal/objective", Gloss: "an aim or objective", InDomain: false,
			Signature: []string{"project", "plan", "achieve", "career", "business", "target", "quarterly"}},
	},
	"cross": {
		{ID: "cross/delivery", Gloss: "a pass from the flank into the box", InDomain: true,
			Signature: []string{"box", "winger", "delivers", "header", "flank", "ball"}},
		{ID: "cross/angry", Gloss: "annoyed", InDomain: false,
			Signature: []string{"angry", "upset", "annoyed", "furious"}},
	},
	"pitch": {
		{ID: "pitch/field", Gloss: "the playing field", InDomain: true,
			Signature: []string{"grass", "field", "stadium", "players", "match"}},
		{ID: "pitch/sales", Gloss: "a persuasive presentation", InDomain: false,
			Signature: []string{"sales", "investor", "deck", "startup", "meeting"}},
	},
	"booked": {
		{ID: "booked/carded", Gloss: "shown a yellow card", InDomain: true,
			Signature: []string{"yellow", "card", "referee", "foul", "challenge"}},
		{ID: "booked/reserved", Gloss: "made a reservation", InDomain: false,
			Signature: []string{"hotel", "flight", "table", "room", "restaurant", "holiday"}},
	},
	"corner": {
		{ID: "corner/kick", Gloss: "a corner kick", InDomain: true,
			Signature: []string{"delivers", "kick", "header", "box", "flag"}},
		{ID: "corner/street", Gloss: "a street corner or market corner", InDomain: false,
			Signature: []string{"street", "shop", "market", "block"}},
	},
}

// Decision records how one query token was disambiguated.
type Decision struct {
	Token string
	Sense Sense
	// Overlap is the signature overlap that won (0 = default sense).
	Overlap int
	// Dropped reports whether the token was removed from the domain query.
	Dropped bool
}

// Disambiguate picks the sense of token given the other context tokens.
// The boolean is false when the token is not ambiguous in the inventory.
func Disambiguate(token string, context []string, inv Inventory) (Sense, int, bool) {
	senses, ok := inv[strings.ToLower(token)]
	if !ok || len(senses) == 0 {
		return Sense{}, 0, false
	}
	ctx := map[string]bool{}
	for _, c := range context {
		ctx[strings.ToLower(c)] = true
	}
	best := senses[0]
	bestOverlap := 0
	for _, s := range senses {
		overlap := 0
		for _, sig := range s.Signature {
			if ctx[sig] {
				overlap++
			}
		}
		if overlap > bestOverlap {
			best = s
			bestOverlap = overlap
		}
	}
	return best, bestOverlap, true
}

// RefineQuery disambiguates every token of a keyword query and removes the
// tokens whose winning sense is out of domain, returning the refined query
// and the decisions taken. Unambiguous tokens pass through untouched.
func RefineQuery(query string, inv Inventory) (string, []Decision) {
	tokens := index.Tokenize(strings.ToLower(query))
	var kept []string
	var decisions []Decision
	for i, tok := range tokens {
		context := make([]string, 0, len(tokens)-1)
		context = append(context, tokens[:i]...)
		context = append(context, tokens[i+1:]...)
		sense, overlap, ambiguous := Disambiguate(tok, context, inv)
		if !ambiguous {
			kept = append(kept, tok)
			continue
		}
		d := Decision{Token: tok, Sense: sense, Overlap: overlap}
		if sense.InDomain {
			kept = append(kept, tok)
		} else {
			d.Dropped = true
		}
		decisions = append(decisions, d)
	}
	return strings.Join(kept, " "), decisions
}

// AmbiguousTerms lists the inventory's lemmas, sorted, for documentation
// and CLI help.
func AmbiguousTerms(inv Inventory) []string {
	out := make([]string, 0, len(inv))
	for k := range inv {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
