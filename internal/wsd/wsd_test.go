package wsd

import (
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func TestDisambiguateByContext(t *testing.T) {
	cases := []struct {
		token   string
		context []string
		wantID  string
	}{
		{"save", []string{"money", "tickets"}, "save/economize"},
		{"save", []string{"great", "keeper"}, "save/goalkeeping"},
		{"save", nil, "save/goalkeeping"}, // domain default
		{"goal", []string{"quarterly", "business", "target"}, "goal/objective"},
		{"goal", []string{"messi", "scores"}, "goal/score"},
		{"booked", []string{"hotel", "room"}, "booked/reserved"},
		{"booked", []string{"late", "challenge", "yellow"}, "booked/carded"},
		{"pitch", []string{"investor", "deck"}, "pitch/sales"},
	}
	for _, c := range cases {
		sense, _, ok := Disambiguate(c.token, c.context, SoccerInventory)
		if !ok {
			t.Errorf("%q not in inventory", c.token)
			continue
		}
		if sense.ID != c.wantID {
			t.Errorf("Disambiguate(%q, %v) = %s, want %s", c.token, c.context, sense.ID, c.wantID)
		}
	}
}

func TestDisambiguateUnknownToken(t *testing.T) {
	if _, _, ok := Disambiguate("messi", []string{"goal"}, SoccerInventory); ok {
		t.Error("unambiguous token reported as ambiguous")
	}
}

func TestRefineQueryDropsOutOfDomain(t *testing.T) {
	refined, decisions := RefineQuery("save money on tickets", SoccerInventory)
	if strings.Contains(refined, "save") {
		t.Errorf("out-of-domain 'save' kept: %q", refined)
	}
	dropped := false
	for _, d := range decisions {
		if d.Token == "save" && d.Dropped && d.Sense.ID == "save/economize" {
			dropped = true
		}
	}
	if !dropped {
		t.Errorf("decisions = %+v", decisions)
	}

	refined, _ = RefineQuery("great save by the keeper", SoccerInventory)
	if !strings.Contains(refined, "save") {
		t.Errorf("in-domain 'save' dropped: %q", refined)
	}
}

func TestRefineQueryPassThrough(t *testing.T) {
	refined, decisions := RefineQuery("messi barcelona", SoccerInventory)
	if refined != "messi barcelona" {
		t.Errorf("refined = %q", refined)
	}
	if len(decisions) != 0 {
		t.Errorf("decisions on unambiguous query: %+v", decisions)
	}
}

// TestWSDImprovesOutOfDomainPrecision shows the retrieval effect the paper
// expects from the module: an out-of-domain query stops pulling in
// goalkeeper saves once its false domain term is disambiguated away.
func TestWSDImprovesOutOfDomainPrecision(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))

	naive := si.Search("save money on tickets", 0)
	savesNaive := 0
	for _, h := range naive {
		if strings.Contains(h.Meta(semindex.MetaKind), "Save") {
			savesNaive++
		}
	}
	refined, _ := RefineQuery("save money on tickets", SoccerInventory)
	var refinedHits int
	if refined != "" {
		refinedHits = len(si.Search(refined, 0))
	}
	if savesNaive == 0 {
		t.Skip("naive query did not hit saves; nothing to improve")
	}
	if refinedHits >= len(naive) {
		t.Errorf("refined query (%q) retrieved %d >= naive %d", refined, refinedHits, len(naive))
	}
}

func TestAmbiguousTerms(t *testing.T) {
	terms := AmbiguousTerms(SoccerInventory)
	if len(terms) != len(SoccerInventory) {
		t.Errorf("%d terms for %d lemmas", len(terms), len(SoccerInventory))
	}
	for i := 1; i < len(terms); i++ {
		if terms[i-1] >= terms[i] {
			t.Error("terms not sorted")
		}
	}
}
