package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/semindex"
)

// cachedEngine builds a 4-shard engine over pages with the query cache
// wired to a fresh registry, so tests can read the cache counters in
// isolation.
func cachedEngine(t testing.TB, pages int, r *obs.Registry) *Engine {
	all, _ := fixture(t)
	if pages <= 0 || pages > len(all) {
		pages = len(all)
	}
	e := Build(nil, semindex.FullInf, all[:pages], Options{Shards: 4})
	e.EnableCache(1<<20, r)
	return e
}

// TestCacheHitIdenticalToCold is the cache's core guarantee: a hit is
// byte-identical to the cold scatter that filled it, and to an uncached
// (NoCache) run of the same query.
func TestCacheHitIdenticalToCold(t *testing.T) {
	r := obs.NewRegistry()
	e := cachedEngine(t, 0, r)
	for _, q := range eval.PaperQueries() {
		cold, err := e.Search(context.Background(), q.Keywords, SearchOptions{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Cache != CacheMiss {
			t.Errorf("%s: first query status %q, want miss", q.ID, cold.Cache)
		}
		warm, err := e.Search(context.Background(), q.Keywords, SearchOptions{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Cache != CacheHit {
			t.Errorf("%s: second query status %q, want hit", q.ID, warm.Cache)
		}
		bypass, err := e.Search(context.Background(), q.Keywords, SearchOptions{Limit: 10, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if bypass.Cache != CacheBypass {
			t.Errorf("%s: NoCache status %q, want bypass", q.ID, bypass.Cache)
		}
		assertSameHits(t, q.ID+"/warm-vs-cold", warm.Hits, cold.Hits)
		assertSameHits(t, q.ID+"/warm-vs-bypass", warm.Hits, bypass.Hits)
	}
	if hits := r.Counter(qcache.MetricHits).Value(); hits != uint64(len(eval.PaperQueries())) {
		t.Errorf("cache hits = %d, want %d", hits, len(eval.PaperQueries()))
	}
}

// TestCacheKeyNormalization: whitespace shape does not fragment the
// cache, but different limits and different queries do.
func TestCacheKeyNormalization(t *testing.T) {
	r := obs.NewRegistry()
	e := cachedEngine(t, 0, r)
	first, _ := e.Search(context.Background(), "messi barcelona goal", SearchOptions{Limit: 10})
	spaced, _ := e.Search(context.Background(), "  messi   barcelona\tgoal ", SearchOptions{Limit: 10})
	if spaced.Cache != CacheHit {
		t.Errorf("whitespace variant status %q, want hit", spaced.Cache)
	}
	assertSameHits(t, "whitespace variant", spaced.Hits, first.Hits)
	if other, _ := e.Search(context.Background(), "messi barcelona goal", SearchOptions{Limit: 5}); other.Cache != CacheMiss {
		t.Errorf("different limit status %q, want miss", other.Cache)
	}
}

// TestCacheInvalidationEquivalence is the acceptance test for epoch
// invalidation: fill the cache, ingest a page, and every re-query must
// be served cold and byte-identical to a from-scratch index over the
// enlarged corpus. A stale hit would freeze pre-ingest rankings.
func TestCacheInvalidationEquivalence(t *testing.T) {
	pages, mono := fixture(t)
	r := obs.NewRegistry()
	e := cachedEngine(t, len(pages)-1, r)

	// Warm the cache on the smaller corpus.
	for _, q := range eval.PaperQueries() {
		if res, _ := e.Search(context.Background(), q.Keywords, SearchOptions{Limit: 10}); res.Cache != CacheMiss {
			t.Fatalf("%s: warmup status %q", q.ID, res.Cache)
		}
	}
	epochBefore := e.Epoch()

	e.AddPage(pages[len(pages)-1])

	if e.Epoch() == epochBefore {
		t.Fatal("AddPage did not advance the engine epoch")
	}
	for _, q := range eval.PaperQueries() {
		res, err := e.Search(context.Background(), q.Keywords, SearchOptions{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache != CacheMiss {
			t.Errorf("%s: post-ingest status %q, want miss (stale entry served?)", q.ID, res.Cache)
		}
		// mono is the from-scratch monolith over the full corpus: the
		// re-query must match it exactly, documents and scores.
		assertSameHits(t, q.ID+"/post-ingest", res.Hits, mono.Search(q.Keywords, 10))
	}
	if inv := r.Counter(qcache.MetricInvalidations).Value(); inv == 0 {
		t.Error("no invalidations recorded despite the epoch bump")
	}
	// And the refilled entries serve hits again at the new epoch.
	if res, _ := e.Search(context.Background(), eval.PaperQueries()[0].Keywords, SearchOptions{Limit: 10}); res.Cache != CacheHit {
		t.Errorf("refilled entry status %q, want hit", res.Cache)
	}
}

// TestSingleflightCoalescesQueries: N concurrent identical cold queries
// run exactly one scatter; one caller reports miss, the rest coalesced,
// and everyone gets the same ranking. Run under -race this also proves
// the flight handoff is clean.
func TestSingleflightCoalescesQueries(t *testing.T) {
	r := obs.NewRegistry()
	e := cachedEngine(t, 0, r)
	var scatters atomic.Int64
	release := make(chan struct{})
	e.SetStall(func(i int) {
		if i == 0 {
			scatters.Add(1)
		}
		<-release
	})

	const n = 8
	var wg sync.WaitGroup
	results := make([]SearchResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Search(context.Background(), "messi barcelona goal", SearchOptions{Limit: 10})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	// Hold the scatter open until every follower has joined the flight.
	deadline := time.Now().Add(5 * time.Second)
	for r.Counter(qcache.MetricCoalesced).Value() < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	e.SetStall(nil)

	if got := scatters.Load(); got != 1 {
		t.Errorf("%d scatters ran, want 1", got)
	}
	misses, coalesced := 0, 0
	for i, res := range results {
		switch res.Cache {
		case CacheMiss:
			misses++
		case CacheCoalesced:
			coalesced++
		default:
			t.Errorf("caller %d status %q", i, res.Cache)
		}
		assertSameHits(t, "coalesced caller", res.Hits, results[0].Hits)
	}
	if misses != 1 || coalesced != n-1 {
		t.Errorf("statuses: %d miss / %d coalesced, want 1 / %d", misses, coalesced, n-1)
	}
}

// TestDegradedAnswersNotCached: an answer missing a shard must not be
// served to later callers — the next healthy query runs cold and
// complete.
func TestDegradedAnswersNotCached(t *testing.T) {
	r := obs.NewRegistry()
	e := cachedEngine(t, 0, r)
	var stalling atomic.Bool
	stalling.Store(true)
	e.SetStall(func(i int) {
		if i == 1 && stalling.Load() {
			time.Sleep(500 * time.Millisecond)
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := e.Search(ctx, "goal", SearchOptions{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Degraded {
		t.Skip("stalled shard met the deadline; cannot exercise the degraded path")
	}

	stalling.Store(false)
	healthy, err := e.Search(context.Background(), "goal", SearchOptions{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Cache == CacheHit {
		t.Fatal("degraded answer was cached and served as a hit")
	}
	if healthy.Report.Degraded {
		t.Fatal("healthy re-query still degraded")
	}
	bypass, _ := e.Search(context.Background(), "goal", SearchOptions{Limit: 10, NoCache: true})
	assertSameHits(t, "healthy after degraded", healthy.Hits, bypass.Hits)
}

// TestDeprecatedWrappersMatchUnified: the four legacy entry points are
// thin shims over the unified Search and must return its exact answer.
func TestDeprecatedWrappersMatchUnified(t *testing.T) {
	r := obs.NewRegistry()
	e := cachedEngine(t, 0, r)
	want, err := e.Search(context.Background(), "messi barcelona goal", SearchOptions{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertSameHits(t, "SearchHits", e.SearchHits("messi barcelona goal", 10), want.Hits)
	tr := obs.NewTrace("wrapper")
	assertSameHits(t, "SearchTraced", e.SearchTraced("messi barcelona goal", 10, tr), want.Hits)
	hits, rep := e.SearchDeadline("messi barcelona goal", 10, time.Minute)
	if rep.Degraded {
		t.Error("SearchDeadline degraded with a one-minute budget")
	}
	assertSameHits(t, "SearchDeadline", hits, want.Hits)
	hits, rep = e.SearchDeadlineTraced("messi barcelona goal", 10, time.Minute, obs.NewTrace("wrapper"))
	if rep.Degraded {
		t.Error("SearchDeadlineTraced degraded with a one-minute budget")
	}
	assertSameHits(t, "SearchDeadlineTraced", hits, want.Hits)
}

// TestConcurrentCachedSearchAndIngest is the cached twin of the engine's
// concurrency test: searches race ingests with the cache on, the race
// detector arbitrates, and the final state serves the full corpus.
func TestConcurrentCachedSearchAndIngest(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:3], Options{Shards: 3})
	e.EnableCache(1<<20, obs.NewRegistry())
	queries := []string{"goal", "punishment", "messi barcelona goal", "yellow card"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				if _, err := e.Search(context.Background(), q, SearchOptions{Limit: 10}); err != nil {
					t.Errorf("search: %v", err)
				}
			}
		}(g)
	}
	for _, p := range pages[3:] {
		wg.Add(1)
		go func(p *crawler.MatchPage) {
			defer wg.Done()
			e.AddPage(p)
		}(p)
	}
	wg.Wait()
	// Concurrent ingest order permutes global docIDs, so the monolith is
	// not a valid reference here; the invariant is that the cached path
	// agrees with a forced-cold scatter over the final state.
	for _, q := range eval.PaperQueries() {
		res, err := e.Search(context.Background(), q.Keywords, SearchOptions{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := e.Search(context.Background(), q.Keywords, SearchOptions{Limit: 10, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameHits(t, q.ID+"/final", res.Hits, cold.Hits)
	}
}
