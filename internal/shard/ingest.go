package shard

// The unified ingest surface: one Engine.Ingest(ctx, batch, options)
// entry point mirroring the Search(ctx, query, options) redesign. Each
// batch commits as one immutable in-memory segment per touched shard —
// no shard rebuild, no statistics recompute, no lock held during
// document analysis. A page that was ingested before is REPLACED: its
// previous documents are tombstoned in place and the new version gets
// fresh global IDs (upsert semantics).

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/crawler"
	"repro/internal/index"
	"repro/internal/semindex"
)

// Durability selects the WAL acknowledgement an Ingest waits for.
type Durability int

const (
	// DurDefault follows the attached WAL's sync policy (wal.Options).
	DurDefault Durability = iota
	// DurSync forces an fsync before Ingest returns, whatever the
	// policy: an acknowledged batch survives a machine crash.
	DurSync
	// DurAsync appends without fsync: an acknowledged batch survives a
	// process crash (the OS holds the bytes) but may be lost on a
	// machine crash. The cheapest ack a firehose can buy.
	DurAsync
)

// MergeHint tells the engine what to do about compaction after commit.
type MergeHint int

const (
	// MergeAuto nudges the background merger (if running) — the default.
	MergeAuto MergeHint = iota
	// MergeNone leaves the new segment alone until policy catches up.
	MergeNone
	// MergeNow compacts every shard synchronously before returning —
	// for tests and checkpoint-shaped callers, not the hot path.
	MergeNow
)

// Atomicity selects the WAL record layout, which is what the batch's
// crash-consistency contract rides on.
type Atomicity int

const (
	// AtomicBatch logs the whole batch as ONE record: after a crash,
	// recovery replays all of it or none of it.
	AtomicBatch Atomicity = iota
	// PerPage logs one record per page: a crash (or a mid-batch append
	// failure) may commit a prefix. Ingest then returns the error along
	// with the result describing the committed prefix.
	PerPage
)

// IngestOptions configures one Ingest call. The zero value is an
// atomic batch under the WAL's own sync policy, merger nudged.
type IngestOptions struct {
	Durability Durability
	Merge      MergeHint
	Atomicity  Atomicity
}

// IngestResult describes one committed batch.
type IngestResult struct {
	// Segment is the batch's segment id (one per Ingest call; each
	// touched shard gets a segment carrying this id). 0 means the batch
	// was empty and no segment was created.
	Segment uint64
	// Pages and Docs count what committed (for PerPage with a mid-batch
	// WAL failure, the prefix).
	Pages int
	Docs  int
	// PerShard counts the new documents per shard.
	PerShard []int
	// Tombstones counts previously-live documents this batch replaced.
	Tombstones int
	// Durability reports the acknowledgement level: "none" (no WAL),
	// "logged" (appended under the WAL's policy), "synced" (fsynced),
	// or "buffered" (appended, fsync deferred).
	Durability string
}

// Ingest commits a batch of match pages: documents are prepared outside
// any lock, the batch is WAL-logged (when a WAL is attached) and then
// committed under the write lock as one immutable segment per touched
// shard. Previously-ingested pages with the same IDs are tombstoned
// (upsert). The new documents are searchable, and counted by NumDocs,
// the moment Ingest returns; corpus-wide statistics are maintained
// incrementally and stay integer-exact, so rankings remain byte-identical
// to a from-scratch build over the live documents.
//
// A ctx that is already done returns its error without committing; the
// deadline is NOT otherwise consulted (commits are short and atomic).
func (e *Engine) Ingest(ctx context.Context, pages []*crawler.MatchPage, opts IngestOptions) (IngestResult, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return IngestResult{}, err
	}
	if len(pages) == 0 {
		return IngestResult{PerShard: make([]int, len(e.shards)), Durability: "none"}, nil
	}
	docsByPage := e.prepareDocs(pages)
	if err := ctx.Err(); err != nil {
		return IngestResult{}, err
	}

	e.mu.Lock()
	committed := len(pages)
	var walErr error
	ack := "none"
	if e.wal != nil {
		ack = "logged"
		switch opts.Atomicity {
		case PerPage:
			committed = 0
			for _, p := range pages {
				rec, err := json.Marshal(p)
				if err == nil {
					err = e.walAppend(rec, opts.Durability)
				}
				if err != nil {
					walErr = fmt.Errorf("shard: WAL append (page %d of %d): %w", committed, len(pages), err)
					break
				}
				committed++
			}
		default:
			rec, err := json.Marshal(pages)
			if err == nil {
				err = e.walAppend(rec, opts.Durability)
			}
			if err != nil {
				committed = 0
				walErr = fmt.Errorf("shard: WAL append: %w", err)
			}
		}
		switch opts.Durability {
		case DurSync:
			if committed > 0 {
				if err := e.wal.Sync(); err != nil && walErr == nil {
					walErr = fmt.Errorf("shard: WAL sync: %w", err)
				}
			}
			ack = "synced"
		case DurAsync:
			ack = "buffered"
		}
	}
	if committed == 0 {
		e.mu.Unlock()
		return IngestResult{PerShard: make([]int, len(e.shards))}, walErr
	}
	res := e.commitLocked(pages[:committed], docsByPage[:committed])
	res.Durability = ack
	e.mu.Unlock()
	e.met.ingest.ObserveDuration(time.Since(start))

	switch opts.Merge {
	case MergeNow:
		e.ForceMerge()
	case MergeAuto:
		e.nudgeMerger()
	}
	return res, walErr
}

// AddPage ingests one page with default options (atomic, WAL policy
// durability, merger nudged).
//
// Deprecated: use Ingest with a context and IngestOptions.
func (e *Engine) AddPage(page *crawler.MatchPage) error {
	_, err := e.Ingest(context.Background(), []*crawler.MatchPage{page}, IngestOptions{})
	return err
}

// walAppend routes one record through the durability the caller asked
// for. Write lock held.
func (e *Engine) walAppend(rec []byte, d Durability) error {
	if d == DurAsync {
		return e.wal.AppendAsync(rec)
	}
	return e.wal.Append(rec)
}

// prepareDocs runs the expensive document preparation (extraction,
// population, inference) for every page on a worker pool, outside any
// engine lock — searches and other ingests proceed while it runs.
func (e *Engine) prepareDocs(pages []*crawler.MatchPage) [][]*index.Document {
	docsByPage := make([][]*index.Document, len(pages))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pages) {
		workers = len(pages)
	}
	if workers <= 1 {
		for i, p := range pages {
			docsByPage[i] = e.builder.PageDocuments(e.level, p)
		}
		return docsByPage
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, p := range pages {
		wg.Add(1)
		go func(i int, p *crawler.MatchPage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			docsByPage[i] = e.builder.PageDocuments(e.level, p)
		}(i, p)
	}
	wg.Wait()
	return docsByPage
}

// applyBatch is Ingest without the WAL append — the replay path: the
// records being applied are already durable in the log.
func (e *Engine) applyBatch(pages []*crawler.MatchPage) {
	docsByPage := e.prepareDocs(pages)
	e.mu.Lock()
	e.commitLocked(pages, docsByPage)
	e.mu.Unlock()
}

// commitLocked is the ingest commit: tombstone each page's previous
// version, append the new documents to per-shard segments (one new
// segment per touched shard, all carrying this batch's segment id), fold
// the segment statistics into the corpus-wide view, and bump the touched
// shards' epochs. Write lock required.
//
// Statistics stay integer-exact through any sequence of commits: a
// tombstone subtracts exactly what the document's Add once contributed
// (index.DocStats re-analyzes the stored fields), a new segment adds its
// tombstone-aware LocalStats, and integer adds/subtracts commute — so
// the global view always equals a from-scratch recompute over the live
// documents, which is what keeps scatter-gather rankings byte-identical
// to a monolithic build.
func (e *Engine) commitLocked(pages []*crawler.MatchPage, docsByPage [][]*index.Document) IngestResult {
	n := len(e.base)
	res := IngestResult{Pages: len(pages), PerShard: make([]int, n)}
	segID := e.nextSeg
	e.nextSeg++
	res.Segment = segID
	newSubs := make([]*subIndex, n)
	touched := make([]bool, n)

	for pi, page := range pages {
		// Tombstone the page's previous version. Its statistics leave the
		// corpus view here — except for documents from THIS batch (a page
		// repeated within one batch), whose statistics have not been
		// merged yet and are excluded by the segment's LocalStats below.
		for _, gid := range e.pageGIDs[page.ID] {
			ref := e.byGID[gid]
			if ref.sub == nil {
				continue
			}
			ix := ref.sub.si.Index
			if ix.IsDeleted(ref.local) {
				continue
			}
			if ref.sub.segID != segID {
				e.global.Remove(ix.DocStats(ref.local))
			}
			ix.Delete(ref.local)
			e.liveDocs--
			res.Tombstones++
			touched[ref.shard] = true
		}

		s := shardFor(page.ID, n)
		var gids []int
		for _, d := range docsByPage[pi] {
			sub := newSubs[s]
			if sub == nil {
				ix := index.New(e.builder.Analyzer)
				ix.SetExhaustive(e.exhaustive)
				ix.SetCorpusStats(e.global)
				sub = &subIndex{si: &semindex.SemanticIndex{Level: e.level, Index: ix}, segID: segID}
				newSubs[s] = sub
				e.segs[s] = append(e.segs[s], sub)
			}
			gid := len(e.byGID)
			d.Add(MetaGID, strconv.Itoa(gid))
			local := sub.si.Index.Add(d)
			sub.gids = append(sub.gids, gid)
			e.byGID = append(e.byGID, docRef{sub: sub, shard: s, local: local})
			gids = append(gids, gid)
			res.Docs++
			res.PerShard[s]++
			touched[s] = true
		}
		e.pageGIDs[page.ID] = gids
	}

	for _, sub := range newSubs {
		if sub != nil {
			e.global.Merge(sub.si.Index.LocalStats())
		}
	}
	e.liveDocs += res.Docs
	for s := range e.epochs {
		if touched[s] || !e.scoped {
			e.epochs[s]++
		}
	}
	e.epoch.Add(1)
	e.updateLSMGaugesLocked()
	return res
}
