package shard

// The manifest is the engine's commit point, in the Lucene segments_N
// lineage: a snapshot "exists" exactly when a manifest names its files,
// and Load reads only what the manifest names. Save writes every shard
// file (tmp + fsync + rename), then commits the manifest last — also
// tmp + fsync + rename — so a crash at any instant leaves either the
// old complete snapshot or the new complete snapshot, never a mix. The
// manifest carries per-file sizes and checksums so Load can reject a
// bit-flipped or truncated shard before trusting a byte of it, and it
// pins the snapshot generation that ties the ingest WAL to this exact
// commit point.

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/semindex"
)

const (
	manifestMagic   = "SOCMANIFEST"
	manifestVersion = 1
)

// ErrManifestCorrupt reports a manifest that exists but cannot be
// trusted: bad magic, unparseable lines, or a failed checksum. Nothing
// behind an untrusted manifest is loaded.
var ErrManifestCorrupt = errors.New("shard: manifest corrupt")

// ErrSnapshotCorrupt reports a shard snapshot file whose envelope,
// size or checksum does not match its manifest entry.
var ErrSnapshotCorrupt = errors.New("shard: snapshot corrupt")

// ErrWALCorrupt reports a WAL record that passed its CRC but does not
// decode as an ingest batch — the log itself is damaged beyond a torn
// tail, so recovery refuses to guess.
var ErrWALCorrupt = errors.New("shard: WAL record corrupt")

// ErrDegraded reports an operation refused because the engine is
// serving degraded (quarantined shards): checkpointing such an engine
// would silently bless the data loss into a clean-looking snapshot.
var ErrDegraded = errors.New("shard: engine degraded by quarantined shards")

// ManifestPath names the commit-point file next to the shard files.
func ManifestPath(base string) string { return base + ".manifest" }

// WALPath names the ingest write-ahead log for a snapshot base.
func WALPath(base string) string { return base + ".wal" }

// manifestEntry describes one committed shard file. Name is a basename:
// a snapshot directory can be copied or moved wholesale.
type manifestEntry struct {
	Name string
	Size int64
	CRC  uint32
}

// manifest is the parsed commit point.
type manifest struct {
	Generation uint64
	Level      semindex.Level
	// Codec is the index codec version of every shard payload in this
	// snapshot (0 in manifests written before codec tracking, whose
	// payloads are all codec v1).
	Codec uint32
	// NextGID is the next unused global docID when the snapshot's ID
	// space has holes (tombstoned documents compacted away before the
	// save). 0 — the common, hole-free case — is omitted from the
	// rendered manifest entirely, so ordinary snapshots stay
	// byte-identical to pre-LSM ones; Load then derives the next ID from
	// the document count as before.
	NextGID uint64
	Files   []manifestEntry
	// WAL is the basename of the ingest log extending this snapshot
	// ("" when the snapshot was committed without one).
	WAL string
}

// render produces the canonical manifest bytes: header lines, one line
// per file, the WAL name, and a trailing checksum line over everything
// before it.
func (m *manifest) render() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d\n", manifestMagic, manifestVersion)
	fmt.Fprintf(&b, "generation %d\n", m.Generation)
	fmt.Fprintf(&b, "level %s\n", m.Level)
	if m.Codec != 0 {
		fmt.Fprintf(&b, "codec %d\n", m.Codec)
	}
	if m.NextGID != 0 {
		fmt.Fprintf(&b, "nextgid %d\n", m.NextGID)
	}
	fmt.Fprintf(&b, "shards %d\n", len(m.Files))
	for _, f := range m.Files {
		fmt.Fprintf(&b, "file %s %d %08x\n", f.Name, f.Size, f.CRC)
	}
	if m.WAL != "" {
		fmt.Fprintf(&b, "wal %s\n", m.WAL)
	}
	body := b.String()
	return []byte(fmt.Sprintf("%schecksum %08x\n", body, crc32.ChecksumIEEE([]byte(body))))
}

// writeManifest commits the manifest atomically: tmp file, fsync,
// rename into place, fsync the directory so the rename itself is
// durable.
func writeManifest(base string, m *manifest) error {
	path := ManifestPath(base)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if _, err := f.Write(m.render()); err != nil {
		f.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// readManifest parses and verifies the commit point. A missing file
// returns os.ErrNotExist (callers fall back to the legacy layout); any
// other failure wraps ErrManifestCorrupt.
func readManifest(base string) (*manifest, error) {
	raw, err := os.ReadFile(ManifestPath(base))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	// Split off and verify the checksum line first: every other parse
	// error below is then a true format error, not a flipped bit.
	idx := strings.LastIndex(strings.TrimSuffix(string(raw), "\n"), "\n")
	if idx < 0 {
		return nil, fmt.Errorf("%w: no checksum line", ErrManifestCorrupt)
	}
	body, last := string(raw[:idx+1]), strings.TrimSpace(string(raw[idx+1:]))
	var sum uint32
	if _, err := fmt.Sscanf(last, "checksum %08x", &sum); err != nil {
		return nil, fmt.Errorf("%w: bad checksum line %q", ErrManifestCorrupt, last)
	}
	if crc32.ChecksumIEEE([]byte(body)) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrManifestCorrupt)
	}

	m := &manifest{}
	sc := bufio.NewScanner(strings.NewReader(body))
	line := 0
	shards := -1
	sawMagic := false
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		bad := func() (*manifest, error) {
			return nil, fmt.Errorf("%w: line %d %q", ErrManifestCorrupt, line, sc.Text())
		}
		switch fields[0] {
		case manifestMagic:
			if line != 1 || len(fields) != 2 || fields[1] != strconv.Itoa(manifestVersion) {
				return bad()
			}
			sawMagic = true
		case "generation":
			g, err := strconv.ParseUint(fields[1], 10, 64)
			if len(fields) != 2 || err != nil {
				return bad()
			}
			m.Generation = g
		case "level":
			if len(fields) != 2 {
				return bad()
			}
			m.Level = semindex.Level(fields[1])
		case "codec":
			c, err := strconv.ParseUint(fields[1], 10, 32)
			if len(fields) != 2 || err != nil || c == 0 {
				return bad()
			}
			m.Codec = uint32(c)
		case "nextgid":
			g, err := strconv.ParseUint(fields[1], 10, 64)
			if len(fields) != 2 || err != nil || g == 0 {
				return bad()
			}
			m.NextGID = g
		case "shards":
			n, err := strconv.Atoi(fields[1])
			if len(fields) != 2 || err != nil || n < 0 {
				return bad()
			}
			shards = n
		case "file":
			if len(fields) != 4 {
				return bad()
			}
			size, err1 := strconv.ParseInt(fields[2], 10, 64)
			crc, err2 := strconv.ParseUint(fields[3], 16, 32)
			if err1 != nil || err2 != nil || size < 0 {
				return bad()
			}
			m.Files = append(m.Files, manifestEntry{Name: fields[1], Size: size, CRC: uint32(crc)})
		case "wal":
			if len(fields) != 2 {
				return bad()
			}
			m.WAL = fields[1]
		default:
			return bad()
		}
	}
	if !sawMagic || shards != len(m.Files) {
		return nil, fmt.Errorf("%w: shard count %d does not match %d file lines",
			ErrManifestCorrupt, shards, len(m.Files))
	}
	return m, nil
}

// syncDir makes a rename in dir durable. Filesystems that do not
// support directory fsync report it as a real error — this layer exists
// for crash safety, so pretending would defeat it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("shard: syncing %s: %w", dir, err)
	}
	return nil
}
