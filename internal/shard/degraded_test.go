package shard

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/semindex"
)

// stallShard returns a hook delaying exactly one shard by d.
func stallShard(target int, d time.Duration) func(int) {
	return func(shard int) {
		if shard == target {
			time.Sleep(d)
		}
	}
}

// TestSearchDeadlineHealthy: with no shard stalled, the deadline path is
// byte-identical to the unbounded path and reports a complete answer.
func TestSearchDeadlineHealthy(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	for _, q := range []string{"goal", "messi barcelona goal", "yellow card"} {
		want := searchN(e, q, 10)
		got, rep := searchWithin(e, q, 10, 5*time.Second)
		if rep.Degraded || len(rep.Missing) != 0 {
			t.Fatalf("%q: healthy engine reported degraded: %+v", q, rep)
		}
		assertSameHits(t, q, got, want)
	}
}

// TestSearchDeadlineNoBudgetMeansUnbounded: perShard <= 0 disables the
// deadline entirely.
func TestSearchDeadlineNoBudgetMeansUnbounded(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	e.SetStall(stallShard(1, 30*time.Millisecond))
	got, rep := searchWithin(e, "goal", 10, 0)
	if rep.Degraded {
		t.Fatalf("unbounded search degraded: %+v", rep)
	}
	assertSameHits(t, "unbounded", got, searchN(e, "goal", 10))
}

// TestSearchDeadlineDegraded is the degraded-search acceptance test: with
// one shard stalled past the budget, the query returns within the budget,
// the merge is correct over the live shards, and the report names the
// stalled shard.
func TestSearchDeadlineDegraded(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	const stalled = 1
	e.SetStall(stallShard(stalled, 2*time.Second))

	// Reference: what the live shards alone contribute. Computed on an
	// identically-built engine with no stall so the merge is ground truth.
	ref := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	refPer := func(q string, limit int) []semindex.Hit {
		ref.mu.RLock()
		defer ref.mu.RUnlock()
		per := ref.scatter(nil, func(s int) []semindex.Hit {
			return ref.searchShardLocked(s, q, limit)
		})
		per[stalled] = nil
		return ref.merge(nil, per, limit)
	}

	for _, q := range []string{"goal", "foul", "yellow card"} {
		start := time.Now()
		got, rep := searchWithin(e, q, 10, 100*time.Millisecond)
		elapsed := time.Since(start)
		if elapsed > time.Second {
			t.Fatalf("%q: degraded search took %v, budget was 100ms", q, elapsed)
		}
		if !rep.Degraded || !reflect.DeepEqual(rep.Missing, []int{stalled}) {
			t.Fatalf("%q: report = %+v, want degraded with shard %d missing", q, rep, stalled)
		}
		want := refPer(q, 10)
		if len(want) == 0 {
			t.Fatalf("%q: live shards hold no results; fixture too small", q)
		}
		assertSameHits(t, q+" (degraded)", got, want)
	}
}

// TestSearchDeadlineStragglerBlocksIngest: an abandoned shard goroutine
// holds the read lock via the drain goroutine, so a subsequent ingest
// cannot mutate state under it. The race detector is the real assertion
// here; the test also checks ingest correctness after the straggler lands.
func TestSearchDeadlineStragglerBlocksIngest(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:len(pages)-1], Options{Shards: 2})
	e.SetStall(stallShard(0, 150*time.Millisecond))

	_, rep := searchWithin(e, "goal", 5, 10*time.Millisecond)
	if !rep.Degraded {
		t.Fatal("stalled shard met a 10ms budget")
	}
	// Removing the stall takes the write lock, so it queues behind the
	// straggler's read lock — exactly the ordering under test.
	e.SetStall(nil)
	e.AddPage(pages[len(pages)-1])
	if e.NumDocs() == 0 {
		t.Fatal("ingest lost documents")
	}
	// After the dust settles the engine still answers completely.
	got, rep := searchWithin(e, "goal", 5, 5*time.Second)
	if rep.Degraded || len(got) == 0 {
		t.Fatalf("engine unhealthy after straggler: %d hits, %+v", len(got), rep)
	}
}

// TestSearchDeadlineConcurrent: degraded searches, healthy searches and
// ingests interleave safely (exercised under -race in CI).
func TestSearchDeadlineConcurrent(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:len(pages)-2], Options{Shards: 3})
	e.SetStall(func(shard int) {
		if shard == 2 {
			time.Sleep(5 * time.Millisecond)
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				searchWithin(e, "goal", 5, time.Millisecond)
				searchN(e, "foul", 5)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pages[len(pages)-2:] {
			e.AddPage(p)
		}
	}()
	wg.Wait()
	hits, rep := searchWithin(e, "goal", 10, 5*time.Second)
	if rep.Degraded || len(hits) == 0 {
		t.Fatalf("engine unhealthy after churn: %d hits, %+v", len(hits), rep)
	}
}
