package shard

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/semindex"
)

// TestEngineMetrics wires a fresh registry through SetMetrics and checks
// every search-path series moves: query counters, whole-query and
// per-shard latency histograms, ingest timing, and the degraded/missing
// counters when a shard blows its deadline.
func TestEngineMetrics(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:len(pages)-1], Options{Shards: 3})
	r := obs.NewRegistry()
	e.SetMetrics(r)

	searchN(e, "goal", 10)
	searchN(e, "yellow card", 10)
	e.AddPage(pages[len(pages)-1])

	if got := r.Counter(metricSearches).Value(); got != 2 {
		t.Errorf("searches = %d, want 2", got)
	}
	if got := r.Histogram(metricSearchSec, nil).Count(); got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
	for i := 0; i < e.NumShards(); i++ {
		h := r.Histogram(metricShardSearch, nil, obs.L("shard", strconv.Itoa(i)))
		if h.Count() != 2 {
			t.Errorf("shard %d search observations = %d, want 2", i, h.Count())
		}
	}
	if got := r.Histogram(metricIngestSec, nil).Count(); got != 1 {
		t.Errorf("ingest observations = %d, want 1", got)
	}
	if got := r.Counter(metricDegraded).Value(); got != 0 {
		t.Errorf("degraded = %d before any deadline miss", got)
	}

	e.SetStall(stallShard(1, 300*time.Millisecond))
	_, rep := searchWithin(e, "goal", 10, 10*time.Millisecond)
	if !rep.Degraded {
		t.Fatal("stalled shard met a 10ms budget")
	}
	if got := r.Counter(metricDegraded).Value(); got != 1 {
		t.Errorf("degraded = %d, want 1", got)
	}
	if got := r.Counter(metricMissing).Value(); got != uint64(len(rep.Missing)) {
		t.Errorf("missing = %d, want %d", got, len(rep.Missing))
	}
	if got := r.Counter(metricSearches).Value(); got != 3 {
		t.Errorf("searches = %d after deadline query, want 3", got)
	}
}

// TestEngineMetricsExposition: the engine's series come out of the
// registry in Prometheus text format, per-shard labels and all — what the
// /metrics acceptance criterion scrapes.
func TestEngineMetricsExposition(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	r := obs.NewRegistry()
	e.SetMetrics(r)
	searchN(e, "goal", 10)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE shard_engine_searches_total counter",
		"shard_engine_searches_total 1",
		"# TYPE shard_engine_search_seconds histogram",
		"shard_engine_search_seconds_count 1",
		`shard_search_seconds_bucket{shard="0",le="+Inf"} 1`,
		`shard_search_seconds_bucket{shard="1",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestDisabledMetrics: SetMetrics(nil) strips instrumentation without
// breaking any search path — the uninstrumented arm of the overhead bench.
func TestDisabledMetrics(t *testing.T) {
	pages, mono := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	e.SetMetrics(nil)
	assertSameHits(t, "metrics off", searchN(e, "goal", 10), mono.Search("goal", 10))
	if _, rep := searchWithin(e, "goal", 10, time.Second); rep.Degraded {
		t.Fatalf("healthy deadline search degraded: %+v", rep)
	}
	e.Suggest("mesi goal")
}

// TestSearchTracedSpans: a traced query records one span per shard plus
// the merge, and the rendered line carries the trace ID.
func TestSearchTracedSpans(t *testing.T) {
	pages, mono := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	tr := obs.NewTrace("goal")
	hits := e.SearchTraced("goal", 10, tr)
	tr.Finish()
	assertSameHits(t, "traced", hits, mono.Search("goal", 10))

	names := map[string]bool{}
	for _, s := range tr.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"shard0", "shard1", "shard2", "merge"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
	if line := tr.String(); !strings.Contains(line, tr.ID) || !strings.Contains(line, "merge=") {
		t.Errorf("trace line %q missing ID or merge span", line)
	}
}

// TestSuggestEquivalence holds the deduplicated correction core to its
// contract: for a table of misspelled queries, the 1-shard engine, the
// multi-shard engine and the monolith all propose the same correction,
// because all three run semindex.CorrectQuery over the same vocabulary.
func TestSuggestEquivalence(t *testing.T) {
	pages, mono := fixture(t)
	one := Build(nil, semindex.FullInf, pages, Options{Shards: 1})
	four := Build(nil, semindex.FullInf, pages, Options{Shards: 4})
	for _, q := range []string{
		"mesi goal",
		"barcelon goal",
		"yelow card",
		"mesi barcelona gol",
		"messi goal",  // clean: no correction anywhere
		"zzzqqq goal", // hopeless token: no near neighbour
		"the of",      // pure stopwords
		"",            // empty query
	} {
		want := mono.Suggest(q)
		if got := one.Suggest(q); got != want {
			t.Errorf("1-shard Suggest(%q) = %q, monolith %q", q, got, want)
		}
		if got := four.Suggest(q); got != want {
			t.Errorf("4-shard Suggest(%q) = %q, monolith %q", q, got, want)
		}
	}
}

// TestSearchDeadlinePartialEqualsMonolithRestricted is the degraded-merge
// regression: the partial answer must equal the monolith's full ranking
// with the stalled shard's documents removed — same documents, same
// scores, same order. Global stats make live-shard scores independent of
// the outage, so the restriction is exact, not approximate.
func TestSearchDeadlinePartialEqualsMonolithRestricted(t *testing.T) {
	pages, mono := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	const stalled = 2
	e.SetStall(stallShard(stalled, 2*time.Second))

	for _, q := range []string{"goal", "foul", "yellow card"} {
		got, rep := searchWithin(e, q, 10, 50*time.Millisecond)
		if !rep.Degraded || len(rep.Missing) != 1 || rep.Missing[0] != stalled {
			t.Fatalf("%q: report %+v, want shard %d missing", q, rep, stalled)
		}
		full := mono.Search(q, 0)
		want := full[:0:0]
		for _, h := range full {
			if e.byGID[h.DocID].shard != stalled {
				want = append(want, h)
			}
		}
		if len(want) > 10 {
			want = want[:10]
		}
		if len(want) == 0 {
			t.Fatalf("%q: live shards hold no monolith hits; fixture too small", q)
		}
		assertSameHits(t, q+" (restricted)", got, want)
	}
}

// TestConcurrentSearchWithMetrics drives Search, SearchDeadline, Suggest
// and AddPage against one shared registry under -race: the lock-free
// handles and the engine's met swap must tolerate full interleaving. The
// final counter value is exact because counters are atomic.
func TestConcurrentSearchWithMetrics(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:len(pages)-2], Options{Shards: 3})
	r := obs.NewRegistry()
	e.SetMetrics(r)

	const workers, iters = 6, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if (w+i)%2 == 0 {
					searchN(e, "goal", 5)
				} else {
					searchWithin(e, "foul", 5, time.Second)
				}
				e.Suggest("mesi")
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pages[len(pages)-2:] {
			e.AddPage(p)
		}
	}()
	wg.Wait()

	if got := r.Counter(metricSearches).Value(); got != workers*iters {
		t.Errorf("searches = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram(metricIngestSec, nil).Count(); got != 2 {
		t.Errorf("ingest observations = %d, want 2", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}

// TestLoadedEngineHasMetrics: an engine reconstructed by Load must carry
// live metric handles — a save/load round-trip then a search must not
// panic and must count on the default registry's series.
func TestLoadedEngineHasMetrics(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	base := t.TempDir() + "/idx"
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	loaded.SetMetrics(r)
	if hits := searchN(loaded, "goal", 10); len(hits) == 0 {
		t.Fatal("loaded engine found nothing")
	}
	if got := r.Counter(metricSearches).Value(); got != 1 {
		t.Errorf("loaded engine searches = %d, want 1", got)
	}
}
