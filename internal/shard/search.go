package shard

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
)

// SearchOptions configures one unified Search call. The zero value is a
// plain unbounded keyword search: every match, no trace, cache allowed.
type SearchOptions struct {
	// Limit caps the merged result list; <= 0 returns every match.
	Limit int
	// Trace, when non-nil, receives per-shard "shardN" spans and the
	// "merge" span. Tracing never changes the answer, so it is excluded
	// from the cache key; a cache hit simply records no shard spans
	// (there was no scatter to time).
	Trace *obs.Trace
	// NoCache bypasses the query-result cache and the singleflight layer
	// for this call — the always-cold path benchmarks and invalidation
	// tests compare against.
	NoCache bool
}

// fingerprint summarizes the result-affecting options beyond the limit
// for cache keying. Trace and NoCache never change the bytes of an
// answer, so today this is a constant version tag; any future option
// that alters ranking or result shape must be folded in here.
func (o SearchOptions) fingerprint() string { return "v1" }

// CacheStatus reports how a Search answer was produced.
type CacheStatus string

const (
	// CacheHit: served from a valid cache entry, no scatter ran.
	CacheHit CacheStatus = "hit"
	// CacheMiss: this call ran the scatter-gather (and filled the cache
	// when the answer was complete).
	CacheMiss CacheStatus = "miss"
	// CacheCoalesced: shared a concurrent identical query's scatter via
	// the singleflight layer.
	CacheCoalesced CacheStatus = "coalesced"
	// CacheBypass: the cache was off or the call opted out (NoCache).
	CacheBypass CacheStatus = "bypass"
)

// SearchResult is the unified Search answer: the globally-ranked hits,
// the degradation report, and how the cache participated.
type SearchResult struct {
	// Hits is the merged global ranking (global docIDs).
	Hits []semindex.Hit
	// Report describes completeness: degraded answers name the shards
	// that missed the deadline. Degraded answers are never cached.
	Report SearchReport
	// Cache tells how this answer was produced (hit/miss/coalesced/bypass).
	Cache CacheStatus
}

// Search is the engine's one query entry point: it fans the keyword
// query out to every shard (base + unmerged segments), merges the
// per-shard top-k lists into the global top-k, and returns hits whose
// DocIDs are global. Because every sub-index scores with the maintained
// corpus-wide statistics and local order equals global order within a
// sub, the result — documents and scores — is identical to searching a
// monolithic index over the same live corpus, at any merge state.
//
// The context carries the deadline: with no deadline the call waits for
// every shard; with one, shards that miss it are dropped from the merge
// and named in the report (degraded serving). A ctx that is already done
// returns its error without searching.
//
// When a query-result cache is installed (Options.CacheBytes or
// EnableCache), complete answers are cached and validated with SCOPED
// invalidation: each entry captures the per-shard epochs, the query's
// statistics footprint and the shard-set it drew from, and a lookup
// proves the entry still byte-identical to a cold scatter — an ingest
// into a shard outside the entry's shard-set that leaves the footprint's
// statistics untouched does not evict it. Entries that cannot be proven
// current are evicted on the spot. Degraded answers are never cached.
func (e *Engine) Search(ctx context.Context, query string, opts SearchOptions) (SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return SearchResult{}, err
	}
	// Every non-positive limit means "all matches". Normalize to 0 before
	// anything looks at it so (a) the limit pushed down to each shard is
	// the canonical form and (b) the cache key for limit -1 and limit 0 is
	// the same entry — they are the same query.
	if opts.Limit < 0 {
		opts.Limit = 0
	}
	// Snapshot the swappable state under the read lock: SetMetrics and
	// EnableCache replace these under the write lock.
	e.mu.RLock()
	cache, flight, met := e.cache, e.flight, e.met
	e.mu.RUnlock()
	if cache == nil || opts.NoCache {
		res, _ := e.searchCold(ctx, query, opts, nil)
		res.Cache = CacheBypass
		return res, nil
	}
	start := time.Now()
	key := e.cacheKey(query, opts)
	if v, ok := cache.GetValidate(key, func(val any) bool {
		return e.validateEntry(val.(*cacheEntry))
	}); ok {
		ent := v.(*cacheEntry)
		met.cacheHit.ObserveDuration(time.Since(start))
		return SearchResult{Hits: cloneHits(ent.hits), Report: ent.report, Cache: CacheHit}, nil
	}
	v, leader, err := flight.Do(ctx, key, func() any {
		snap := &cacheSnap{}
		res, ok := e.searchCold(ctx, query, opts, snap)
		if ok && !res.Report.Degraded {
			// The cache owns a private copy: callers are free to truncate
			// or reorder their slice without poisoning later hits. The
			// snapshot (epochs, footprint, shard-set, statistics
			// signature) was captured under the same read lock as the
			// scatter, so validation is against exactly what this answer
			// was computed from.
			ent := &cacheEntry{hits: cloneHits(res.Hits), report: res.Report, snap: snap}
			cache.Put(key, ent, entryBytes(key, ent.hits), 0)
		}
		return res
	})
	if err != nil {
		return SearchResult{}, err
	}
	res := v.(SearchResult)
	if leader {
		res.Cache = CacheMiss
		met.cacheMiss.ObserveDuration(time.Since(start))
		return res, nil
	}
	// Followers share the leader's slice; hand each its own copy.
	return SearchResult{Hits: cloneHits(res.Hits), Report: res.Report, Cache: CacheCoalesced}, nil
}

// cacheSnap captures everything needed to later prove a cached answer is
// still byte-identical to a cold scatter — all read under the same lock
// as the scatter that produced the answer.
type cacheSnap struct {
	// epochs is every shard's content epoch at compute time. All equal
	// at lookup time → nothing changed → valid. Refreshed in place when
	// a lookup proves validity the long way (under the cache's segment
	// lock, see qcache.GetValidate).
	epochs []uint64
	// fp is the query's statistics footprint — the (field, term) pairs
	// its ranking reads — and fpOK whether it was computable (advanced
	// parser syntax is not). With fpOK false, any epoch motion evicts.
	fp   []index.FieldTerm
	fpOK bool
	// shardSet flags the shards holding at least one posting for any
	// footprint pair at compute time — the shards the answer could have
	// drawn hits from. A write to a shard in the set evicts.
	shardSet []bool
	// sig is the signature of every corpus statistic the query's scores
	// read (see statsSigLocked). Unchanged sig + untouched shard-set →
	// every score and tie-break input is unchanged → byte-identical.
	sig []int
}

// cacheEntry is the cached value for one query shape.
type cacheEntry struct {
	hits   []semindex.Hit
	report SearchReport
	snap   *cacheSnap
}

// validateEntry decides whether a cached answer is still byte-identical
// to what a cold scatter would return. It runs under the cache segment
// lock (GetValidate) and takes the engine read lock — never the reverse
// order anywhere, so no deadlock. On the slow path it may refresh the
// entry's epochs in place after proving validity.
func (e *Engine) validateEntry(ent *cacheEntry) bool {
	snap := ent.snap
	e.mu.RLock()
	defer e.mu.RUnlock()
	if snap == nil || len(snap.epochs) != len(e.epochs) {
		return false
	}
	stale := false
	for s := range e.epochs {
		if snap.epochs[s] != e.epochs[s] {
			stale = true
			break
		}
	}
	if !stale {
		return true
	}
	if !snap.fpOK {
		return false
	}
	for s := range e.epochs {
		if snap.epochs[s] == e.epochs[s] {
			continue
		}
		if snap.shardSet[s] {
			// The write landed in a shard the answer drew from (or could
			// have): hits, scores or tie order may differ. Evict.
			return false
		}
		if e.shardHasAnyLocked(s, snap.fp) {
			// The shard contributed nothing before but now holds postings
			// for the query's terms: it could contribute hits. Evict.
			return false
		}
	}
	// No contributing shard changed and the changed shards still cannot
	// match. The remaining risk is global statistics motion shifting
	// scores; the signature rules that out.
	if !sigEqual(snap.sig, e.statsSigLocked(snap.fp)) {
		return false
	}
	copy(snap.epochs, e.epochs)
	return true
}

// shardHasAnyLocked reports whether any sub-index of shard s holds at
// least one posting (live or tombstoned — conservative) for any of the
// footprint's (field, term) pairs. Read lock required.
func (e *Engine) shardHasAnyLocked(s int, fp []index.FieldTerm) bool {
	for _, sub := range e.subsLocked(s) {
		for _, ft := range fp {
			if sub.si.Index.DocFreq(ft.Field, ft.Term) > 0 {
				return true
			}
		}
	}
	return false
}

// statsSigLocked fingerprints every corpus-wide statistic the query's
// ranking reads: the global document count, each footprint pair's
// document frequency, and each footprint field's doc count and total
// length (the average-length inputs). All integers, deterministically
// ordered by the footprint. Read lock required.
func (e *Engine) statsSigLocked(fp []index.FieldTerm) []int {
	sig := make([]int, 0, 1+3*len(fp))
	sig = append(sig, e.global.Docs)
	seen := make(map[string]bool, 4)
	for _, ft := range fp {
		sig = append(sig, e.global.DocFreq(ft.Field, ft.Term))
		if !seen[ft.Field] {
			seen[ft.Field] = true
			if fs := e.global.Fields[ft.Field]; fs != nil {
				sig = append(sig, fs.Docs, fs.SumLen)
			} else {
				sig = append(sig, 0, 0)
			}
		}
	}
	return sig
}

func sigEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cacheKey builds the cache key: normalized query (whitespace collapsed
// — case and token order are preserved because the analyzer, not the
// cache, decides their meaning), the semantic level, the limit, and the
// options fingerprint.
func (e *Engine) cacheKey(query string, opts SearchOptions) string {
	norm := strings.Join(strings.Fields(query), " ")
	return norm + "\x00" + string(e.level) + "\x00" + strconv.Itoa(opts.Limit) + "\x00" + opts.fingerprint()
}

// entryBytes estimates a cached answer's resident cost: key, entry
// bookkeeping and the hit structs. Stored documents are shared with the
// index (the cache holds pointers, not copies), so they are not charged.
func entryBytes(key string, hits []semindex.Hit) int64 {
	const entryOverhead = 192 // entry + snapshot bookkeeping
	const hitSize = 40        // DocID + Score + Doc pointer, padded
	return int64(len(key)) + entryOverhead + int64(len(hits))*hitSize
}

// cloneHits copies a hit slice so cache, leader and followers never
// share a mutable header.
func cloneHits(hits []semindex.Hit) []semindex.Hit {
	if hits == nil {
		return nil
	}
	return append([]semindex.Hit(nil), hits...)
}

// searchCold runs the actual scatter-gather under the read lock. When
// snap is non-nil it is filled — under that same read lock — with the
// validation snapshot for caching, and the bool result reports whether
// it was filled (always true today). The context deadline, when present,
// is the per-scatter collection budget: shards that miss it are dropped
// from the merge and reported.
func (e *Engine) searchCold(ctx context.Context, query string, opts SearchOptions, snap *cacheSnap) (SearchResult, bool) {
	start := time.Now()
	tr := opts.Trace
	// Limit pushdown: each sub-index returns only its local top-limit.
	// That is safe for the global merge because every sub scores with the
	// corpus-wide statistics and its local ID order is its global ID
	// order — no document outside a sub's top-limit can sit in the global
	// top-limit. The pushed-down limit also arms the per-sub MaxScore
	// pruning in the index kernel.
	fn := func(s int) []semindex.Hit {
		return e.searchShardLocked(s, query, opts.Limit)
	}
	e.mu.RLock()
	met := e.met
	met.searches.Inc()
	var per [][]semindex.Hit
	var rep SearchReport
	release := e.mu.RUnlock
	if dl, ok := ctx.Deadline(); ok {
		per, rep, release = e.scatterDeadline(ctx, tr, fn, time.Until(dl))
	} else {
		per = e.scatter(tr, fn)
	}
	if len(e.quarantined) > 0 {
		// Degraded startup: shards quarantined at load time answer from
		// empty placeholders, so every answer is missing their documents.
		// Name them exactly like deadline-missed shards — one degradation
		// surface for callers, headers and /readyz.
		rep.Degraded = true
		rep.Missing = mergeMissing(e.quarantined, rep.Missing)
	}
	hits := e.merge(tr, per, opts.Limit)
	if snap != nil {
		snap.epochs = append([]uint64(nil), e.epochs...)
		snap.fp, snap.fpOK = e.shards[0].QueryFootprint(query)
		if snap.fpOK {
			snap.shardSet = make([]bool, len(e.base))
			for s := range e.base {
				snap.shardSet[s] = e.shardHasAnyLocked(s, snap.fp)
			}
			snap.sig = e.statsSigLocked(snap.fp)
		}
	}
	release()
	if rep.Degraded {
		met.degraded.Inc()
		met.missing.Add(uint64(len(rep.Missing)))
	}
	met.latency.ObserveDuration(time.Since(start))
	return SearchResult{Hits: hits, Report: rep}, true
}

// searchShardLocked runs the keyword query against one shard — base
// plus unmerged segments — and returns its local top-limit with GLOBAL
// docIDs, ranked exactly as the global merge ranks (score descending,
// global ID ascending). Read lock must be held for the duration (the
// scatter holds it).
func (e *Engine) searchShardLocked(s int, query string, limit int) []semindex.Hit {
	subs := e.subsLocked(s)
	if len(subs) == 1 {
		// Fast path: a sub's result order is already score desc, local
		// (= global) ID asc; mapping IDs preserves it.
		return mapToGlobal(subs[0], subs[0].si.Search(query, limit))
	}
	lists := make([][]semindex.Hit, len(subs))
	for i, sub := range subs {
		lists[i] = mapToGlobal(sub, sub.si.Search(query, limit))
	}
	return mergeRanked(lists, limit)
}

// mapToGlobal rewrites a sub-index's local docIDs to global ones, in
// place (the slice is freshly allocated by the sub's Search).
func mapToGlobal(sub *subIndex, hits []semindex.Hit) []semindex.Hit {
	for i := range hits {
		hits[i].DocID = sub.gids[hits[i].DocID]
	}
	return hits
}

// mergeRanked flattens ranked lists of global-ID hits into one ranking:
// score descending, global docID ascending on ties — exactly the
// monolith's sort.
func mergeRanked(lists [][]semindex.Hit, limit int) []semindex.Hit {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]semindex.Hit, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// SearchHits is the former two-argument Search: every shard is awaited,
// only the hits are returned.
//
// Deprecated: use Search with a context and SearchOptions.
func (e *Engine) SearchHits(query string, limit int) []semindex.Hit {
	res, _ := e.Search(context.Background(), query, SearchOptions{Limit: limit})
	return res.Hits
}

// SearchTraced is SearchHits with a request trace attached.
//
// Deprecated: use Search with SearchOptions.Trace.
func (e *Engine) SearchTraced(query string, limit int, tr *obs.Trace) []semindex.Hit {
	res, _ := e.Search(context.Background(), query, SearchOptions{Limit: limit, Trace: tr})
	return res.Hits
}

// SearchDeadline is the degraded-service form of SearchHits: every shard
// gets perShard time to answer; the merged top-k over the shards that
// made it is returned along with a report naming any that did not.
// perShard <= 0 means no deadline.
//
// Deprecated: use Search with a deadline context.
func (e *Engine) SearchDeadline(query string, limit int, perShard time.Duration) ([]semindex.Hit, SearchReport) {
	return e.SearchDeadlineTraced(query, limit, perShard, nil)
}

// SearchDeadlineTraced is SearchDeadline with a request trace attached.
//
// Deprecated: use Search with a deadline context and SearchOptions.Trace.
func (e *Engine) SearchDeadlineTraced(query string, limit int, perShard time.Duration, tr *obs.Trace) ([]semindex.Hit, SearchReport) {
	ctx := context.Background()
	if perShard > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, perShard)
		defer cancel()
	}
	res, _ := e.Search(ctx, query, SearchOptions{Limit: limit, Trace: tr})
	return res.Hits, res.Report
}

// SearchQuery scatters an already-built query across the shards — the
// hook for programmatic callers that bypass the keyword front-end. It is
// not cached: structured queries have no stable normalization to key on.
func (e *Engine) SearchQuery(q index.Query, limit int) []semindex.Hit {
	if limit < 0 {
		limit = 0
	}
	start := time.Now()
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.met.searches.Inc()
	hits := e.merge(nil, e.searchQueryLocked(q, limit), limit)
	e.met.latency.ObserveDuration(time.Since(start))
	return hits
}

func (e *Engine) searchQueryLocked(q index.Query, limit int) [][]semindex.Hit {
	return e.scatter(nil, func(s int) []semindex.Hit {
		subs := e.subsLocked(s)
		lists := make([][]semindex.Hit, len(subs))
		for i, sub := range subs {
			raw := sub.si.Index.Search(q, limit)
			hits := make([]semindex.Hit, len(raw))
			for j, h := range raw {
				hits[j] = semindex.Hit{DocID: sub.gids[h.DocID], Score: h.Score, Doc: sub.si.Index.Doc(h.DocID)}
			}
			lists[i] = hits
		}
		return mergeRanked(lists, limit)
	})
}

// scatter runs fn against every shard on its own goroutine, timing each
// shard into its shard_search_seconds series and, when tr is non-nil,
// into a "shardN" trace span. fn receives the shard index and must only
// read state guarded by the read lock, which the caller holds.
func (e *Engine) scatter(tr *obs.Trace, fn func(shard int) []semindex.Hit) [][]semindex.Hit {
	met := e.met
	n := len(e.base)
	per := make([][]semindex.Hit, n)
	if n == 1 && e.stall == nil {
		start := time.Now()
		per[0] = fn(0)
		d := time.Since(start)
		met.perShard[0].ObserveDuration(d)
		tr.AddSpan("shard0", start, d)
		return per
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if e.stall != nil {
				e.stall(i)
			}
			start := time.Now()
			per[i] = fn(i)
			d := time.Since(start)
			met.perShard[i].ObserveDuration(d)
			tr.AddSpan("shard"+strconv.Itoa(i), start, d)
		}(i)
	}
	wg.Wait()
	return per
}

// SearchReport annotates a deadline-bounded scatter-gather answer with how
// complete it is: a Degraded answer is correctly merged from the shards
// that met the deadline, with the stalled ones identified.
type SearchReport struct {
	// Degraded is true when at least one shard missed the deadline or
	// was quarantined at load time (corrupt snapshot file).
	Degraded bool
	// Missing lists the shard indices whose results are absent —
	// deadline-missed and quarantined shards alike, sorted ascending.
	Missing []int
}

// mergeMissing unions two ascending shard-index lists without
// duplicates.
func mergeMissing(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	uniq := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// scatterDeadline fans fn out to every shard and collects results for at
// most perShard (or until ctx is done — a cancelled client stops the
// wait the same way a blown budget does). Stragglers are abandoned, not
// cancelled — they finish in the background, and ingestion stays blocked
// behind them so an abandoned reader can never observe a mid-ingest
// shard. The caller must hold the read lock and must call the returned
// release func after it is done reading engine state: release either
// unlocks immediately (all shards answered) or hands the read lock to a
// drain goroutine that unlocks once the stragglers finish.
func (e *Engine) scatterDeadline(ctx context.Context, tr *obs.Trace, fn func(shard int) []semindex.Hit, perShard time.Duration) ([][]semindex.Hit, SearchReport, func()) {
	met := e.met
	n := len(e.base)
	type shardResult struct {
		i    int
		hits []semindex.Hit
	}
	results := make(chan shardResult, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			if e.stall != nil {
				e.stall(i)
			}
			start := time.Now()
			hits := fn(i)
			d := time.Since(start)
			met.perShard[i].ObserveDuration(d)
			tr.AddSpan("shard"+strconv.Itoa(i), start, d)
			results <- shardResult{i: i, hits: hits}
		}(i)
	}

	per := make([][]semindex.Hit, n)
	arrived := make([]bool, n)
	got := 0
	var timeout <-chan time.Time
	if perShard > 0 {
		t := time.NewTimer(perShard)
		defer t.Stop()
		timeout = t.C
	}
collect:
	for got < n {
		select {
		case r := <-results:
			per[r.i] = r.hits
			arrived[r.i] = true
			got++
		case <-timeout:
			break collect
		case <-ctx.Done():
			break collect
		}
	}

	rep := SearchReport{}
	for i, ok := range arrived {
		if !ok {
			rep.Degraded = true
			rep.Missing = append(rep.Missing, i)
		}
	}
	if got == n {
		return per, rep, e.mu.RUnlock
	}
	missing := n - got
	return per, rep, func() {
		// Drain the stragglers off the caller's critical path, then release
		// the read lock from the drain goroutine (sync.RWMutex permits a
		// different goroutine to unlock). Their late results are discarded.
		go func() {
			for i := 0; i < missing; i++ {
				<-results
			}
			e.mu.RUnlock()
		}()
	}
}

// merge produces the global ranking from per-shard (already global-ID)
// lists: score descending, global docID ascending on ties — exactly the
// monolith's sort. Read lock must be held.
func (e *Engine) merge(tr *obs.Trace, per [][]semindex.Hit, limit int) []semindex.Hit {
	defer tr.Span("merge")()
	return mergeRanked(per, limit)
}

// Related returns documents similar to the given global docID, mirroring
// semindex.Related: the more-like-this query is built on the owning
// sub-index (term selection already uses the corpus-wide statistics),
// scattered to every shard, and the source document is filtered from the
// merge. A tombstoned or lost source returns nil.
func (e *Engine) Related(gid int, limit int) []semindex.Hit {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if gid < 0 || gid >= len(e.byGID) {
		return nil
	}
	ref := e.byGID[gid]
	if ref.sub == nil || ref.sub.si.Index.IsDeleted(ref.local) {
		// The source document was lost with a quarantined shard or
		// replaced by a newer version of its page.
		return nil
	}
	q := ref.sub.si.Index.LikeThisQuery(ref.local, semindex.QueryBoosts, 8)
	if q == nil {
		return nil
	}
	// Over-fetch by one per shard so dropping the source cannot starve
	// the global top-k.
	fetch := limit
	if fetch > 0 {
		fetch++
	}
	merged := e.merge(nil, e.searchQueryLocked(q, fetch), 0)
	out := merged[:0]
	for _, h := range merged {
		if h.DocID != gid {
			out = append(out, h)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Suggest proposes a corrected query exactly like semindex.Suggest, but
// against the corpus-wide vocabulary: a token that exists only on another
// shard is not flagged as a typo, and the replacement is the globally
// most frequent near-miss, independent of shard layout. The correction
// logic itself is semindex.CorrectQuery — one implementation for both the
// monolith and the engine, fed here from the exchanged statistics.
func (e *Engine) Suggest(query string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	boosts := semindex.QueryBoosts
	if e.level == semindex.Trad {
		boosts = semindex.TradBoosts
	}
	return semindex.CorrectQuery(e.shards[0].Index.Analyzer(), boosts, query,
		e.global.DocFreq, e.globalTerms)
}

// globalTerms lists one field's corpus-wide vocabulary in ascending order
// — the engine-side terms source for CorrectQuery, mirroring
// index.Index.Terms over the exchanged statistics.
func (e *Engine) globalTerms(field string) []string {
	fs := e.global.Fields[field]
	if fs == nil {
		return nil
	}
	terms := make([]string, 0, len(fs.DocFreq))
	for t := range fs.DocFreq {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}
