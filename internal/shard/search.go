package shard

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
)

// Search fans the keyword query out to every shard concurrently, collects
// per-shard top-k lists and merges them into the global top-k. Hit DocIDs
// are global. Because every shard scores with the exchanged corpus-wide
// statistics and local order equals global order within a shard, the
// result — documents and scores — is identical to searching a monolithic
// index over the same corpus. limit <= 0 returns every match.
func (e *Engine) Search(query string, limit int) []semindex.Hit {
	return e.SearchTraced(query, limit, nil)
}

// SearchTraced is Search with a request trace attached: each shard's
// search is recorded as a "shardN" span and the global merge as "merge",
// so a slow query's timeline shows which shard dragged. A nil trace is
// free — Search calls through here.
func (e *Engine) SearchTraced(query string, limit int, tr *obs.Trace) []semindex.Hit {
	start := time.Now()
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.met.searches.Inc()
	per := e.scatter(tr, func(s *semindex.SemanticIndex) []semindex.Hit {
		return s.Search(query, limit)
	})
	hits := e.merge(tr, per, limit)
	e.met.latency.ObserveDuration(time.Since(start))
	return hits
}

// SearchQuery scatters an already-built query across the shards — the
// hook for programmatic callers that bypass the keyword front-end.
func (e *Engine) SearchQuery(q index.Query, limit int) []semindex.Hit {
	start := time.Now()
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.met.searches.Inc()
	hits := e.merge(nil, e.searchQueryLocked(q, limit), limit)
	e.met.latency.ObserveDuration(time.Since(start))
	return hits
}

func (e *Engine) searchQueryLocked(q index.Query, limit int) [][]semindex.Hit {
	return e.scatter(nil, func(s *semindex.SemanticIndex) []semindex.Hit {
		raw := s.Index.Search(q, limit)
		hits := make([]semindex.Hit, len(raw))
		for i, h := range raw {
			hits[i] = semindex.Hit{DocID: h.DocID, Score: h.Score, Doc: s.Index.Doc(h.DocID)}
		}
		return hits
	})
}

// scatter runs fn against every shard on its own goroutine, timing each
// shard into its shard_search_seconds series and, when tr is non-nil,
// into a "shardN" trace span. Read lock must be held by the caller.
func (e *Engine) scatter(tr *obs.Trace, fn func(*semindex.SemanticIndex) []semindex.Hit) [][]semindex.Hit {
	met := e.met
	per := make([][]semindex.Hit, len(e.shards))
	if len(e.shards) == 1 && e.stall == nil {
		start := time.Now()
		per[0] = fn(e.shards[0])
		d := time.Since(start)
		met.perShard[0].ObserveDuration(d)
		tr.AddSpan("shard0", start, d)
		return per
	}
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *semindex.SemanticIndex) {
			defer wg.Done()
			if e.stall != nil {
				e.stall(i)
			}
			start := time.Now()
			per[i] = fn(s)
			d := time.Since(start)
			met.perShard[i].ObserveDuration(d)
			tr.AddSpan("shard"+strconv.Itoa(i), start, d)
		}(i, s)
	}
	wg.Wait()
	return per
}

// SearchReport annotates a deadline-bounded scatter-gather answer with how
// complete it is: a Degraded answer is correctly merged from the shards
// that met the deadline, with the stalled ones identified.
type SearchReport struct {
	// Degraded is true when at least one shard missed the deadline.
	Degraded bool
	// Missing lists the shard indices whose results are absent.
	Missing []int
}

// SearchDeadline is the degraded-service form of Search: every shard gets
// perShard time to answer; the merged top-k over the shards that made it
// is returned along with a report naming any that did not. perShard <= 0
// means no deadline (identical to Search). Stragglers are abandoned, not
// cancelled — they finish in the background, and ingestion stays blocked
// behind them so an abandoned reader can never observe a mid-ingest shard.
func (e *Engine) SearchDeadline(query string, limit int, perShard time.Duration) ([]semindex.Hit, SearchReport) {
	return e.SearchDeadlineTraced(query, limit, perShard, nil)
}

// SearchDeadlineTraced is SearchDeadline with a request trace attached;
// shards that answer within the deadline contribute "shardN" spans (a
// straggler's span lands whenever it finishes, which may be after the
// trace is logged — AddSpan tolerates that).
func (e *Engine) SearchDeadlineTraced(query string, limit int, perShard time.Duration, tr *obs.Trace) ([]semindex.Hit, SearchReport) {
	start := time.Now()
	e.mu.RLock()
	met := e.met
	met.searches.Inc()
	per, rep, release := e.scatterDeadline(tr, func(s *semindex.SemanticIndex) []semindex.Hit {
		return s.Search(query, limit)
	}, perShard)
	hits := e.merge(tr, per, limit)
	release()
	if rep.Degraded {
		met.degraded.Inc()
		met.missing.Add(uint64(len(rep.Missing)))
	}
	met.latency.ObserveDuration(time.Since(start))
	return hits, rep
}

// scatterDeadline fans fn out to every shard and collects results for at
// most perShard. The caller must hold the read lock and must call the
// returned release func after it is done reading engine state: release
// either unlocks immediately (all shards answered) or hands the read lock
// to a drain goroutine that unlocks once the stragglers finish, keeping
// writers out while any abandoned goroutine can still touch a shard.
func (e *Engine) scatterDeadline(tr *obs.Trace, fn func(*semindex.SemanticIndex) []semindex.Hit, perShard time.Duration) ([][]semindex.Hit, SearchReport, func()) {
	met := e.met
	n := len(e.shards)
	type shardResult struct {
		i    int
		hits []semindex.Hit
	}
	results := make(chan shardResult, n)
	for i, s := range e.shards {
		go func(i int, s *semindex.SemanticIndex) {
			if e.stall != nil {
				e.stall(i)
			}
			start := time.Now()
			hits := fn(s)
			d := time.Since(start)
			met.perShard[i].ObserveDuration(d)
			tr.AddSpan("shard"+strconv.Itoa(i), start, d)
			results <- shardResult{i: i, hits: hits}
		}(i, s)
	}

	per := make([][]semindex.Hit, n)
	arrived := make([]bool, n)
	got := 0
	var timeout <-chan time.Time
	if perShard > 0 {
		t := time.NewTimer(perShard)
		defer t.Stop()
		timeout = t.C
	}
collect:
	for got < n {
		select {
		case r := <-results:
			per[r.i] = r.hits
			arrived[r.i] = true
			got++
		case <-timeout:
			break collect
		}
	}

	rep := SearchReport{}
	for i, ok := range arrived {
		if !ok {
			rep.Degraded = true
			rep.Missing = append(rep.Missing, i)
		}
	}
	if got == n {
		return per, rep, e.mu.RUnlock
	}
	missing := n - got
	return per, rep, func() {
		// Drain the stragglers off the caller's critical path, then release
		// the read lock from the drain goroutine (sync.RWMutex permits a
		// different goroutine to unlock). Their late results are discarded.
		go func() {
			for i := 0; i < missing; i++ {
				<-results
			}
			e.mu.RUnlock()
		}()
	}
}

// merge rewrites per-shard local docIDs to global ones and produces the
// global ranking: score descending, global docID ascending on ties —
// exactly the monolith's sort. Read lock must be held.
func (e *Engine) merge(tr *obs.Trace, per [][]semindex.Hit, limit int) []semindex.Hit {
	defer tr.Span("merge")()
	total := 0
	for _, hits := range per {
		total += len(hits)
	}
	out := make([]semindex.Hit, 0, total)
	for s, hits := range per {
		for _, h := range hits {
			out = append(out, semindex.Hit{DocID: e.gids[s][h.DocID], Score: h.Score, Doc: h.Doc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Related returns documents similar to the given global docID, mirroring
// semindex.Related: the more-like-this query is built on the owning shard
// (term selection already uses the corpus-wide statistics), scattered to
// every shard, and the source document is filtered from the merge.
func (e *Engine) Related(gid int, limit int) []semindex.Hit {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if gid < 0 || gid >= len(e.byGID) {
		return nil
	}
	ref := e.byGID[gid]
	q := e.shards[ref.shard].Index.LikeThisQuery(ref.local, semindex.QueryBoosts, 8)
	if q == nil {
		return nil
	}
	// Over-fetch by one per shard so dropping the source cannot starve
	// the global top-k.
	fetch := limit
	if fetch > 0 {
		fetch++
	}
	merged := e.merge(nil, e.searchQueryLocked(q, fetch), 0)
	out := merged[:0]
	for _, h := range merged {
		if h.DocID != gid {
			out = append(out, h)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Suggest proposes a corrected query exactly like semindex.Suggest, but
// against the corpus-wide vocabulary: a token that exists only on another
// shard is not flagged as a typo, and the replacement is the globally
// most frequent near-miss, independent of shard layout. The correction
// logic itself is semindex.CorrectQuery — one implementation for both the
// monolith and the engine, fed here from the exchanged statistics.
func (e *Engine) Suggest(query string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	boosts := semindex.QueryBoosts
	if e.level == semindex.Trad {
		boosts = semindex.TradBoosts
	}
	return semindex.CorrectQuery(e.shards[0].Index.Analyzer(), boosts, query,
		e.global.DocFreq, e.globalTerms)
}

// globalTerms lists one field's corpus-wide vocabulary in ascending order
// — the engine-side terms source for CorrectQuery, mirroring
// index.Index.Terms over the exchanged statistics.
func (e *Engine) globalTerms(field string) []string {
	fs := e.global.Fields[field]
	if fs == nil {
		return nil
	}
	terms := make([]string, 0, len(fs.DocFreq))
	for t := range fs.DocFreq {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}
