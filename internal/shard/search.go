package shard

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
)

// SearchOptions configures one unified Search call. The zero value is a
// plain unbounded keyword search: every match, no trace, cache allowed.
type SearchOptions struct {
	// Limit caps the merged result list; <= 0 returns every match.
	Limit int
	// Trace, when non-nil, receives per-shard "shardN" spans and the
	// "merge" span. Tracing never changes the answer, so it is excluded
	// from the cache key; a cache hit simply records no shard spans
	// (there was no scatter to time).
	Trace *obs.Trace
	// NoCache bypasses the query-result cache and the singleflight layer
	// for this call — the always-cold path benchmarks and invalidation
	// tests compare against.
	NoCache bool
}

// fingerprint summarizes the result-affecting options beyond the limit
// for cache keying. Trace and NoCache never change the bytes of an
// answer, so today this is a constant version tag; any future option
// that alters ranking or result shape must be folded in here.
func (o SearchOptions) fingerprint() string { return "v1" }

// CacheStatus reports how a Search answer was produced.
type CacheStatus string

const (
	// CacheHit: served from a valid cache entry, no scatter ran.
	CacheHit CacheStatus = "hit"
	// CacheMiss: this call ran the scatter-gather (and filled the cache
	// when the answer was complete).
	CacheMiss CacheStatus = "miss"
	// CacheCoalesced: shared a concurrent identical query's scatter via
	// the singleflight layer.
	CacheCoalesced CacheStatus = "coalesced"
	// CacheBypass: the cache was off or the call opted out (NoCache).
	CacheBypass CacheStatus = "bypass"
)

// SearchResult is the unified Search answer: the globally-ranked hits,
// the degradation report, and how the cache participated.
type SearchResult struct {
	// Hits is the merged global ranking (global docIDs).
	Hits []semindex.Hit
	// Report describes completeness: degraded answers name the shards
	// that missed the deadline. Degraded answers are never cached.
	Report SearchReport
	// Cache tells how this answer was produced (hit/miss/coalesced/bypass).
	Cache CacheStatus
}

// Search is the engine's one query entry point: it fans the keyword
// query out to every shard, merges the per-shard top-k lists into the
// global top-k, and returns hits whose DocIDs are global. Because every
// shard scores with the exchanged corpus-wide statistics and local order
// equals global order within a shard, the result — documents and scores
// — is identical to searching a monolithic index over the same corpus.
//
// The context carries the deadline: with no deadline the call waits for
// every shard; with one, shards that miss it are dropped from the merge
// and named in the report (degraded serving). A ctx that is already done
// returns its error without searching.
//
// When a query-result cache is installed (Options.CacheBytes or
// EnableCache), complete answers are cached under the normalized query
// shape and validated against the engine epoch, so a hit is always
// byte-identical to what a cold scatter would return; concurrent
// identical queries coalesce into one scatter. Degraded answers are
// never cached.
func (e *Engine) Search(ctx context.Context, query string, opts SearchOptions) (SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return SearchResult{}, err
	}
	// Every non-positive limit means "all matches". Normalize to 0 before
	// anything looks at it so (a) the limit pushed down to each shard is
	// the canonical form and (b) the cache key for limit -1 and limit 0 is
	// the same entry — they are the same query.
	if opts.Limit < 0 {
		opts.Limit = 0
	}
	// Snapshot the swappable state under the read lock: SetMetrics and
	// EnableCache replace these under the write lock.
	e.mu.RLock()
	cache, flight, met := e.cache, e.flight, e.met
	epoch := e.epoch.Load()
	e.mu.RUnlock()
	if cache == nil || opts.NoCache {
		res, _ := e.searchCold(ctx, query, opts)
		res.Cache = CacheBypass
		return res, nil
	}
	start := time.Now()
	key := e.cacheKey(query, opts)
	if v, ok := cache.Get(key, epoch); ok {
		ent := v.(*cacheEntry)
		met.cacheHit.ObserveDuration(time.Since(start))
		return SearchResult{Hits: cloneHits(ent.hits), Report: ent.report, Cache: CacheHit}, nil
	}
	v, leader, err := flight.Do(ctx, key, func() any {
		res, epoch := e.searchCold(ctx, query, opts)
		if !res.Report.Degraded {
			// The cache owns a private copy: callers are free to truncate
			// or reorder their slice without poisoning later hits. The
			// entry carries the epoch observed under the read lock during
			// the scatter, so an ingest landing after this line simply
			// makes the entry invisible.
			ent := &cacheEntry{hits: cloneHits(res.Hits), report: res.Report}
			cache.Put(key, ent, entryBytes(key, ent.hits), epoch)
		}
		return res
	})
	if err != nil {
		return SearchResult{}, err
	}
	res := v.(SearchResult)
	if leader {
		res.Cache = CacheMiss
		met.cacheMiss.ObserveDuration(time.Since(start))
		return res, nil
	}
	// Followers share the leader's slice; hand each its own copy.
	return SearchResult{Hits: cloneHits(res.Hits), Report: res.Report, Cache: CacheCoalesced}, nil
}

// cacheEntry is the cached value for one query shape.
type cacheEntry struct {
	hits   []semindex.Hit
	report SearchReport
}

// cacheKey builds the cache key: normalized query (whitespace collapsed
// — case and token order are preserved because the analyzer, not the
// cache, decides their meaning), the semantic level, the limit, and the
// options fingerprint.
func (e *Engine) cacheKey(query string, opts SearchOptions) string {
	norm := strings.Join(strings.Fields(query), " ")
	return norm + "\x00" + string(e.level) + "\x00" + strconv.Itoa(opts.Limit) + "\x00" + opts.fingerprint()
}

// entryBytes estimates a cached answer's resident cost: key, entry
// bookkeeping and the hit structs. Stored documents are shared with the
// index (the cache holds pointers, not copies), so they are not charged.
func entryBytes(key string, hits []semindex.Hit) int64 {
	const entryOverhead = 96
	const hitSize = 40 // DocID + Score + Doc pointer, padded
	return int64(len(key)) + entryOverhead + int64(len(hits))*hitSize
}

// cloneHits copies a hit slice so cache, leader and followers never
// share a mutable header.
func cloneHits(hits []semindex.Hit) []semindex.Hit {
	if hits == nil {
		return nil
	}
	return append([]semindex.Hit(nil), hits...)
}

// searchCold runs the actual scatter-gather under the read lock and
// returns the answer plus the engine epoch it was computed at. The
// context deadline, when present, is the per-scatter collection budget:
// shards that miss it are dropped from the merge and reported.
func (e *Engine) searchCold(ctx context.Context, query string, opts SearchOptions) (SearchResult, uint64) {
	start := time.Now()
	tr := opts.Trace
	// Limit pushdown: each shard returns only its local top-limit. That is
	// safe for the global merge because shards score with the exchanged
	// corpus-wide statistics — a shard's local ranking is its slice of the
	// global ranking, so no document outside a shard's top-limit can sit in
	// the global top-limit. The pushed-down limit also arms the shard-local
	// MaxScore pruning in the index kernel.
	fn := func(s *semindex.SemanticIndex) []semindex.Hit {
		return s.Search(query, opts.Limit)
	}
	e.mu.RLock()
	met := e.met
	met.searches.Inc()
	epoch := e.epoch.Load()
	var per [][]semindex.Hit
	var rep SearchReport
	release := e.mu.RUnlock
	if dl, ok := ctx.Deadline(); ok {
		per, rep, release = e.scatterDeadline(ctx, tr, fn, time.Until(dl))
	} else {
		per = e.scatter(tr, fn)
	}
	if len(e.quarantined) > 0 {
		// Degraded startup: shards quarantined at load time answer from
		// empty placeholders, so every answer is missing their documents.
		// Name them exactly like deadline-missed shards — one degradation
		// surface for callers, headers and /readyz.
		rep.Degraded = true
		rep.Missing = mergeMissing(e.quarantined, rep.Missing)
	}
	hits := e.merge(tr, per, opts.Limit)
	release()
	if rep.Degraded {
		met.degraded.Inc()
		met.missing.Add(uint64(len(rep.Missing)))
	}
	met.latency.ObserveDuration(time.Since(start))
	return SearchResult{Hits: hits, Report: rep}, epoch
}

// SearchHits is the former two-argument Search: every shard is awaited,
// only the hits are returned.
//
// Deprecated: use Search with a context and SearchOptions.
func (e *Engine) SearchHits(query string, limit int) []semindex.Hit {
	res, _ := e.Search(context.Background(), query, SearchOptions{Limit: limit})
	return res.Hits
}

// SearchTraced is SearchHits with a request trace attached.
//
// Deprecated: use Search with SearchOptions.Trace.
func (e *Engine) SearchTraced(query string, limit int, tr *obs.Trace) []semindex.Hit {
	res, _ := e.Search(context.Background(), query, SearchOptions{Limit: limit, Trace: tr})
	return res.Hits
}

// SearchDeadline is the degraded-service form of SearchHits: every shard
// gets perShard time to answer; the merged top-k over the shards that
// made it is returned along with a report naming any that did not.
// perShard <= 0 means no deadline.
//
// Deprecated: use Search with a deadline context.
func (e *Engine) SearchDeadline(query string, limit int, perShard time.Duration) ([]semindex.Hit, SearchReport) {
	return e.SearchDeadlineTraced(query, limit, perShard, nil)
}

// SearchDeadlineTraced is SearchDeadline with a request trace attached.
//
// Deprecated: use Search with a deadline context and SearchOptions.Trace.
func (e *Engine) SearchDeadlineTraced(query string, limit int, perShard time.Duration, tr *obs.Trace) ([]semindex.Hit, SearchReport) {
	ctx := context.Background()
	if perShard > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, perShard)
		defer cancel()
	}
	res, _ := e.Search(ctx, query, SearchOptions{Limit: limit, Trace: tr})
	return res.Hits, res.Report
}

// SearchQuery scatters an already-built query across the shards — the
// hook for programmatic callers that bypass the keyword front-end. It is
// not cached: structured queries have no stable normalization to key on.
func (e *Engine) SearchQuery(q index.Query, limit int) []semindex.Hit {
	if limit < 0 {
		limit = 0
	}
	start := time.Now()
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.met.searches.Inc()
	hits := e.merge(nil, e.searchQueryLocked(q, limit), limit)
	e.met.latency.ObserveDuration(time.Since(start))
	return hits
}

func (e *Engine) searchQueryLocked(q index.Query, limit int) [][]semindex.Hit {
	return e.scatter(nil, func(s *semindex.SemanticIndex) []semindex.Hit {
		raw := s.Index.Search(q, limit)
		hits := make([]semindex.Hit, len(raw))
		for i, h := range raw {
			hits[i] = semindex.Hit{DocID: h.DocID, Score: h.Score, Doc: s.Index.Doc(h.DocID)}
		}
		return hits
	})
}

// scatter runs fn against every shard on its own goroutine, timing each
// shard into its shard_search_seconds series and, when tr is non-nil,
// into a "shardN" trace span. Read lock must be held by the caller.
func (e *Engine) scatter(tr *obs.Trace, fn func(*semindex.SemanticIndex) []semindex.Hit) [][]semindex.Hit {
	met := e.met
	per := make([][]semindex.Hit, len(e.shards))
	if len(e.shards) == 1 && e.stall == nil {
		start := time.Now()
		per[0] = fn(e.shards[0])
		d := time.Since(start)
		met.perShard[0].ObserveDuration(d)
		tr.AddSpan("shard0", start, d)
		return per
	}
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *semindex.SemanticIndex) {
			defer wg.Done()
			if e.stall != nil {
				e.stall(i)
			}
			start := time.Now()
			per[i] = fn(s)
			d := time.Since(start)
			met.perShard[i].ObserveDuration(d)
			tr.AddSpan("shard"+strconv.Itoa(i), start, d)
		}(i, s)
	}
	wg.Wait()
	return per
}

// SearchReport annotates a deadline-bounded scatter-gather answer with how
// complete it is: a Degraded answer is correctly merged from the shards
// that met the deadline, with the stalled ones identified.
type SearchReport struct {
	// Degraded is true when at least one shard missed the deadline or
	// was quarantined at load time (corrupt snapshot file).
	Degraded bool
	// Missing lists the shard indices whose results are absent —
	// deadline-missed and quarantined shards alike, sorted ascending.
	Missing []int
}

// mergeMissing unions two ascending shard-index lists without
// duplicates.
func mergeMissing(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	uniq := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// scatterDeadline fans fn out to every shard and collects results for at
// most perShard (or until ctx is done — a cancelled client stops the
// wait the same way a blown budget does). Stragglers are abandoned, not
// cancelled — they finish in the background, and ingestion stays blocked
// behind them so an abandoned reader can never observe a mid-ingest
// shard. The caller must hold the read lock and must call the returned
// release func after it is done reading engine state: release either
// unlocks immediately (all shards answered) or hands the read lock to a
// drain goroutine that unlocks once the stragglers finish.
func (e *Engine) scatterDeadline(ctx context.Context, tr *obs.Trace, fn func(*semindex.SemanticIndex) []semindex.Hit, perShard time.Duration) ([][]semindex.Hit, SearchReport, func()) {
	met := e.met
	n := len(e.shards)
	type shardResult struct {
		i    int
		hits []semindex.Hit
	}
	results := make(chan shardResult, n)
	for i, s := range e.shards {
		go func(i int, s *semindex.SemanticIndex) {
			if e.stall != nil {
				e.stall(i)
			}
			start := time.Now()
			hits := fn(s)
			d := time.Since(start)
			met.perShard[i].ObserveDuration(d)
			tr.AddSpan("shard"+strconv.Itoa(i), start, d)
			results <- shardResult{i: i, hits: hits}
		}(i, s)
	}

	per := make([][]semindex.Hit, n)
	arrived := make([]bool, n)
	got := 0
	var timeout <-chan time.Time
	if perShard > 0 {
		t := time.NewTimer(perShard)
		defer t.Stop()
		timeout = t.C
	}
collect:
	for got < n {
		select {
		case r := <-results:
			per[r.i] = r.hits
			arrived[r.i] = true
			got++
		case <-timeout:
			break collect
		case <-ctx.Done():
			break collect
		}
	}

	rep := SearchReport{}
	for i, ok := range arrived {
		if !ok {
			rep.Degraded = true
			rep.Missing = append(rep.Missing, i)
		}
	}
	if got == n {
		return per, rep, e.mu.RUnlock
	}
	missing := n - got
	return per, rep, func() {
		// Drain the stragglers off the caller's critical path, then release
		// the read lock from the drain goroutine (sync.RWMutex permits a
		// different goroutine to unlock). Their late results are discarded.
		go func() {
			for i := 0; i < missing; i++ {
				<-results
			}
			e.mu.RUnlock()
		}()
	}
}

// merge rewrites per-shard local docIDs to global ones and produces the
// global ranking: score descending, global docID ascending on ties —
// exactly the monolith's sort. Read lock must be held.
func (e *Engine) merge(tr *obs.Trace, per [][]semindex.Hit, limit int) []semindex.Hit {
	defer tr.Span("merge")()
	total := 0
	for _, hits := range per {
		total += len(hits)
	}
	out := make([]semindex.Hit, 0, total)
	for s, hits := range per {
		for _, h := range hits {
			out = append(out, semindex.Hit{DocID: e.gids[s][h.DocID], Score: h.Score, Doc: h.Doc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Related returns documents similar to the given global docID, mirroring
// semindex.Related: the more-like-this query is built on the owning shard
// (term selection already uses the corpus-wide statistics), scattered to
// every shard, and the source document is filtered from the merge.
func (e *Engine) Related(gid int, limit int) []semindex.Hit {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if gid < 0 || gid >= len(e.byGID) {
		return nil
	}
	ref := e.byGID[gid]
	if ref.shard < 0 {
		// The source document was lost with a quarantined shard.
		return nil
	}
	q := e.shards[ref.shard].Index.LikeThisQuery(ref.local, semindex.QueryBoosts, 8)
	if q == nil {
		return nil
	}
	// Over-fetch by one per shard so dropping the source cannot starve
	// the global top-k.
	fetch := limit
	if fetch > 0 {
		fetch++
	}
	merged := e.merge(nil, e.searchQueryLocked(q, fetch), 0)
	out := merged[:0]
	for _, h := range merged {
		if h.DocID != gid {
			out = append(out, h)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Suggest proposes a corrected query exactly like semindex.Suggest, but
// against the corpus-wide vocabulary: a token that exists only on another
// shard is not flagged as a typo, and the replacement is the globally
// most frequent near-miss, independent of shard layout. The correction
// logic itself is semindex.CorrectQuery — one implementation for both the
// monolith and the engine, fed here from the exchanged statistics.
func (e *Engine) Suggest(query string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	boosts := semindex.QueryBoosts
	if e.level == semindex.Trad {
		boosts = semindex.TradBoosts
	}
	return semindex.CorrectQuery(e.shards[0].Index.Analyzer(), boosts, query,
		e.global.DocFreq, e.globalTerms)
}

// globalTerms lists one field's corpus-wide vocabulary in ascending order
// — the engine-side terms source for CorrectQuery, mirroring
// index.Index.Terms over the exchanged statistics.
func (e *Engine) globalTerms(field string) []string {
	fs := e.global.Fields[field]
	if fs == nil {
		return nil
	}
	terms := make([]string, 0, len(fs.DocFreq))
	for t := range fs.DocFreq {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}
