package shard

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/semindex"
)

// Search fans the keyword query out to every shard concurrently, collects
// per-shard top-k lists and merges them into the global top-k. Hit DocIDs
// are global. Because every shard scores with the exchanged corpus-wide
// statistics and local order equals global order within a shard, the
// result — documents and scores — is identical to searching a monolithic
// index over the same corpus. limit <= 0 returns every match.
func (e *Engine) Search(query string, limit int) []semindex.Hit {
	e.mu.RLock()
	defer e.mu.RUnlock()
	per := e.scatter(func(s *semindex.SemanticIndex) []semindex.Hit {
		return s.Search(query, limit)
	})
	return e.merge(per, limit)
}

// SearchQuery scatters an already-built query across the shards — the
// hook for programmatic callers that bypass the keyword front-end.
func (e *Engine) SearchQuery(q index.Query, limit int) []semindex.Hit {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.merge(e.searchQueryLocked(q, limit), limit)
}

func (e *Engine) searchQueryLocked(q index.Query, limit int) [][]semindex.Hit {
	return e.scatter(func(s *semindex.SemanticIndex) []semindex.Hit {
		raw := s.Index.Search(q, limit)
		hits := make([]semindex.Hit, len(raw))
		for i, h := range raw {
			hits[i] = semindex.Hit{DocID: h.DocID, Score: h.Score, Doc: s.Index.Doc(h.DocID)}
		}
		return hits
	})
}

// scatter runs fn against every shard on its own goroutine. Read lock
// must be held by the caller.
func (e *Engine) scatter(fn func(*semindex.SemanticIndex) []semindex.Hit) [][]semindex.Hit {
	per := make([][]semindex.Hit, len(e.shards))
	if len(e.shards) == 1 && e.stall == nil {
		per[0] = fn(e.shards[0])
		return per
	}
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *semindex.SemanticIndex) {
			defer wg.Done()
			if e.stall != nil {
				e.stall(i)
			}
			per[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	return per
}

// SearchReport annotates a deadline-bounded scatter-gather answer with how
// complete it is: a Degraded answer is correctly merged from the shards
// that met the deadline, with the stalled ones identified.
type SearchReport struct {
	// Degraded is true when at least one shard missed the deadline.
	Degraded bool
	// Missing lists the shard indices whose results are absent.
	Missing []int
}

// SearchDeadline is the degraded-service form of Search: every shard gets
// perShard time to answer; the merged top-k over the shards that made it
// is returned along with a report naming any that did not. perShard <= 0
// means no deadline (identical to Search). Stragglers are abandoned, not
// cancelled — they finish in the background, and ingestion stays blocked
// behind them so an abandoned reader can never observe a mid-ingest shard.
func (e *Engine) SearchDeadline(query string, limit int, perShard time.Duration) ([]semindex.Hit, SearchReport) {
	e.mu.RLock()
	per, rep, release := e.scatterDeadline(func(s *semindex.SemanticIndex) []semindex.Hit {
		return s.Search(query, limit)
	}, perShard)
	hits := e.merge(per, limit)
	release()
	return hits, rep
}

// scatterDeadline fans fn out to every shard and collects results for at
// most perShard. The caller must hold the read lock and must call the
// returned release func after it is done reading engine state: release
// either unlocks immediately (all shards answered) or hands the read lock
// to a drain goroutine that unlocks once the stragglers finish, keeping
// writers out while any abandoned goroutine can still touch a shard.
func (e *Engine) scatterDeadline(fn func(*semindex.SemanticIndex) []semindex.Hit, perShard time.Duration) ([][]semindex.Hit, SearchReport, func()) {
	n := len(e.shards)
	type shardResult struct {
		i    int
		hits []semindex.Hit
	}
	results := make(chan shardResult, n)
	for i, s := range e.shards {
		go func(i int, s *semindex.SemanticIndex) {
			if e.stall != nil {
				e.stall(i)
			}
			results <- shardResult{i: i, hits: fn(s)}
		}(i, s)
	}

	per := make([][]semindex.Hit, n)
	arrived := make([]bool, n)
	got := 0
	var timeout <-chan time.Time
	if perShard > 0 {
		t := time.NewTimer(perShard)
		defer t.Stop()
		timeout = t.C
	}
collect:
	for got < n {
		select {
		case r := <-results:
			per[r.i] = r.hits
			arrived[r.i] = true
			got++
		case <-timeout:
			break collect
		}
	}

	rep := SearchReport{}
	for i, ok := range arrived {
		if !ok {
			rep.Degraded = true
			rep.Missing = append(rep.Missing, i)
		}
	}
	if got == n {
		return per, rep, e.mu.RUnlock
	}
	missing := n - got
	return per, rep, func() {
		// Drain the stragglers off the caller's critical path, then release
		// the read lock from the drain goroutine (sync.RWMutex permits a
		// different goroutine to unlock). Their late results are discarded.
		go func() {
			for i := 0; i < missing; i++ {
				<-results
			}
			e.mu.RUnlock()
		}()
	}
}

// merge rewrites per-shard local docIDs to global ones and produces the
// global ranking: score descending, global docID ascending on ties —
// exactly the monolith's sort. Read lock must be held.
func (e *Engine) merge(per [][]semindex.Hit, limit int) []semindex.Hit {
	total := 0
	for _, hits := range per {
		total += len(hits)
	}
	out := make([]semindex.Hit, 0, total)
	for s, hits := range per {
		for _, h := range hits {
			out = append(out, semindex.Hit{DocID: e.gids[s][h.DocID], Score: h.Score, Doc: h.Doc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Related returns documents similar to the given global docID, mirroring
// semindex.Related: the more-like-this query is built on the owning shard
// (term selection already uses the corpus-wide statistics), scattered to
// every shard, and the source document is filtered from the merge.
func (e *Engine) Related(gid int, limit int) []semindex.Hit {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if gid < 0 || gid >= len(e.byGID) {
		return nil
	}
	ref := e.byGID[gid]
	q := e.shards[ref.shard].Index.LikeThisQuery(ref.local, semindex.QueryBoosts, 8)
	if q == nil {
		return nil
	}
	// Over-fetch by one per shard so dropping the source cannot starve
	// the global top-k.
	fetch := limit
	if fetch > 0 {
		fetch++
	}
	merged := e.merge(e.searchQueryLocked(q, fetch), 0)
	out := merged[:0]
	for _, h := range merged {
		if h.DocID != gid {
			out = append(out, h)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Suggest proposes a corrected query exactly like semindex.Suggest, but
// against the corpus-wide vocabulary: a token that exists only on another
// shard is not flagged as a typo, and the replacement is the globally
// most frequent near-miss, independent of shard layout.
func (e *Engine) Suggest(query string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	boosts := semindex.QueryBoosts
	if e.level == semindex.Trad {
		boosts = semindex.TradBoosts
	}
	analyzer := e.shards[0].Index.Analyzer()
	tokens := index.Tokenize(strings.ToLower(query))
	corrected := make([]string, len(tokens))
	changed := false
	for i, tok := range tokens {
		corrected[i] = tok
		analyzed := analyzer.Analyze(tok)
		if len(analyzed) == 0 {
			continue // pure stopword: nothing to correct
		}
		target := analyzed[0]
		matches := false
		for _, fb := range boosts {
			if e.global.DocFreq(fb.Field, target) > 0 {
				matches = true
				break
			}
		}
		if matches {
			continue
		}
		if alt := e.nearestTerm(target, boosts); alt != "" {
			corrected[i] = alt
			changed = true
		}
	}
	if !changed {
		return ""
	}
	return strings.Join(corrected, " ")
}

// nearestTerm finds the highest-global-df vocabulary term within edit
// distance 1 of the target, scanning fields in boost order and terms in
// lexicographic order for the same tie-breaks as the single-index path.
func (e *Engine) nearestTerm(target string, boosts []index.FieldBoost) string {
	best := ""
	bestDF := 0
	for _, fb := range boosts {
		fs := e.global.Fields[fb.Field]
		if fs == nil {
			continue
		}
		terms := make([]string, 0, len(fs.DocFreq))
		for t := range fs.DocFreq {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		for _, term := range terms {
			if term == target || !index.WithinEditDistance1(term, target) {
				continue
			}
			if df := fs.DocFreq[term]; df > bestDF {
				bestDF = df
				best = term
			}
		}
	}
	return best
}
