package shard

import (
	"strconv"

	"repro/internal/obs"
)

// Metric names the engine publishes. Engines sharing a registry (the
// default: obs.Default) share series — counts aggregate across engines,
// which is what a process serving one engine wants and what tests avoid
// by wiring a fresh registry through SetMetrics.
const (
	metricSearches    = "shard_engine_searches_total"
	metricDegraded    = "shard_engine_degraded_total"
	metricMissing     = "shard_engine_missing_shards_total"
	metricSearchSec   = "shard_engine_search_seconds"
	metricBuildSec    = "shard_engine_build_seconds"
	metricIngestSec   = "shard_engine_ingest_seconds"
	metricShardSearch = "shard_search_seconds"
	// metricCacheSearch splits whole-call latency by cache outcome
	// (result="hit" vs result="miss") — the histogram pair the cache's
	// speedup claim is measured from. Bypass calls land only in
	// metricSearchSec.
	metricCacheSearch = "shard_engine_cache_search_seconds"
	// metricQuarantined counts shard snapshot files Load rejected and
	// quarantined — any nonzero value means an engine started degraded.
	metricQuarantined = "shard_engine_quarantined_shards_total"
	// LSM observability: merge throughput/latency plus the two gauges
	// that describe the live tree shape — how many unmerged segments are
	// outstanding and how many tombstones await compaction.
	metricMerges     = "shard_engine_merges_total"
	metricMergeSec   = "shard_engine_merge_seconds"
	metricSegments   = "shard_engine_segments"
	metricTombstones = "shard_engine_tombstones"
)

// engineMetrics holds the engine's resolved metric handles. Handles are
// nil (and every update a no-op) when built from a nil registry, so the
// uninstrumented engine pays a nil check per event and nothing else.
type engineMetrics struct {
	// searches counts top-level queries (Search, SearchDeadline, SearchQuery).
	searches *obs.Counter
	// degraded counts deadline searches that lost at least one shard;
	// missing counts the shards lost across them.
	degraded *obs.Counter
	missing  *obs.Counter
	// latency observes whole-query wall time, scatter through merge.
	latency *obs.Histogram
	// build and ingest time the write paths.
	build  *obs.Histogram
	ingest *obs.Histogram
	// perShard observes each shard's individual search time, labeled
	// shard="N" — the histogram that makes a straggling shard visible.
	perShard []*obs.Histogram
	// cacheHit and cacheMiss observe whole-call latency on the cached
	// path, split by outcome (coalesced calls ride the leader's miss).
	cacheHit  *obs.Histogram
	cacheMiss *obs.Histogram
	// quarantined counts corrupt snapshot files rejected at load.
	quarantined *obs.Counter
	// merges counts completed segment compactions; mergeLatency times
	// them (snapshot through swap).
	merges       *obs.Counter
	mergeLatency *obs.Histogram
	// segments and tombstones gauge the engine-wide LSM state: unmerged
	// segment count and not-yet-compacted tombstone count.
	segments   *obs.Gauge
	tombstones *obs.Gauge
}

// newEngineMetrics resolves the engine's series in r (nil r means no-ops).
func newEngineMetrics(r *obs.Registry, shards int) *engineMetrics {
	r.Help(metricSearches, "Top-level engine queries.")
	r.Help(metricDegraded, "Deadline searches answered without every shard.")
	r.Help(metricMissing, "Shards missing from degraded answers, cumulative.")
	r.Help(metricSearchSec, "Whole-query latency: scatter through merge.")
	r.Help(metricBuildSec, "Full sharded build duration.")
	r.Help(metricIngestSec, "Incremental AddPage duration.")
	r.Help(metricShardSearch, "Per-shard search latency.")
	r.Help(metricCacheSearch, "Whole-call latency on the cached path, by outcome.")
	r.Help(metricQuarantined, "Corrupt shard snapshot files quarantined at load.")
	r.Help(metricMerges, "Completed background segment compactions.")
	r.Help(metricMergeSec, "Segment compaction duration, snapshot through swap.")
	r.Help(metricSegments, "Unmerged in-memory segments across all shards.")
	r.Help(metricTombstones, "Tombstoned documents awaiting compaction.")
	m := &engineMetrics{
		searches:     r.Counter(metricSearches),
		degraded:     r.Counter(metricDegraded),
		missing:      r.Counter(metricMissing),
		latency:      r.Histogram(metricSearchSec, nil),
		build:        r.Histogram(metricBuildSec, nil),
		ingest:       r.Histogram(metricIngestSec, nil),
		perShard:     make([]*obs.Histogram, shards),
		cacheHit:     r.Histogram(metricCacheSearch, nil, obs.L("result", "hit")),
		cacheMiss:    r.Histogram(metricCacheSearch, nil, obs.L("result", "miss")),
		quarantined:  r.Counter(metricQuarantined),
		merges:       r.Counter(metricMerges),
		mergeLatency: r.Histogram(metricMergeSec, nil),
		segments:     r.Gauge(metricSegments),
		tombstones:   r.Gauge(metricTombstones),
	}
	for i := range m.perShard {
		m.perShard[i] = r.Histogram(metricShardSearch, nil, obs.L("shard", strconv.Itoa(i)))
	}
	return m
}

// SetMetrics points the engine's instrumentation at a registry: obs.Default
// is wired by Build, a fresh registry isolates a test, and nil strips the
// instrumentation entirely (the uninstrumented arm of the overhead bench).
func (e *Engine) SetMetrics(r *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.met = newEngineMetrics(r, len(e.shards))
	e.updateLSMGaugesLocked()
}

// updateLSMGaugesLocked republishes the segment and tombstone gauges
// from the engine's current tree shape. Write lock (or build-time sole
// ownership) required.
func (e *Engine) updateLSMGaugesLocked() {
	segs, tombs := 0, 0
	for s := range e.base {
		segs += len(e.segs[s])
		if e.base[s] != nil {
			tombs += e.base[s].si.Index.NumDeleted()
		}
		for _, sub := range e.segs[s] {
			tombs += sub.si.Index.NumDeleted()
		}
	}
	e.met.segments.Set(float64(segs))
	e.met.tombstones.Set(float64(tombs))
}
