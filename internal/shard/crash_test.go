package shard

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/semindex"
	"repro/internal/soccer"
	"repro/internal/wal"
)

// crashCorpus is a deliberately small corpus so one ingest page is a
// small WAL record and the every-byte truncation sweep stays fast.
// PaperCoverage keeps the paper's entities present so the paper query
// mix still ranks real hits. The pages ingested through the WAL are
// trimmed further (trimPage) — the sweep's iteration count is the
// record's byte length.
func crashCorpus(t *testing.T) []*crawler.MatchPage {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 4, Seed: 7, NarrationsPerMatch: 5, PaperCoverage: true})
	pages := crawler.PagesFromCorpus(c)
	if len(pages) < 4 {
		t.Fatalf("crash corpus has %d pages, need 4", len(pages))
	}
	out := append([]*crawler.MatchPage(nil), pages[:4]...)
	out[2] = trimPage(pages[2])
	out[3] = trimPage(pages[3])
	return out
}

// trimPage shrinks a page to a handful of lineup rows and narrations so
// its JSON WAL record is ~1KB instead of ~11KB. The reference engines
// ingest the same trimmed page, so ranking identity is unaffected.
func trimPage(p *crawler.MatchPage) *crawler.MatchPage {
	q := *p
	q.Lineups = make(map[string][]crawler.PlayerLine, len(p.Lineups))
	for team, players := range p.Lineups {
		if len(players) > 3 {
			players = players[:3]
		}
		q.Lineups[team] = players
	}
	if len(q.Goals) > 1 {
		q.Goals = q.Goals[:1]
	}
	q.Subs = nil
	if len(q.Narrations) > 2 {
		q.Narrations = q.Narrations[:2]
	}
	return &q
}

// copySnapshot clones every file of a snapshot base (manifest, shard
// files, WAL) into dstDir under the same basenames, returning the new
// base path. Each truncation experiment recovers from its own clone so
// recovery's own truncation cannot leak between experiments.
func copySnapshot(t *testing.T, base, dstDir string) string {
	t.Helper()
	srcDir := filepath.Dir(base)
	prefix := filepath.Base(base)
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if !strings.HasPrefix(ent.Name(), prefix) {
			continue
		}
		src, err := os.Open(filepath.Join(srcDir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		dst, err := os.Create(filepath.Join(dstDir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(dst, src); err != nil {
			t.Fatal(err)
		}
		src.Close()
		if err := dst.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dstDir, prefix)
}

// TestCrashRecoveryEveryTruncationOffset is the kill-at-any-point
// harness: snapshot two pages, WAL-append two more, then simulate a
// crash at every byte offset of the log — inside the header, inside
// each record, and at every boundary — and require recovery to land on
// exactly the acknowledged prefix, with rankings over the paper query
// mix identical to an engine built from those pages directly.
func TestCrashRecoveryEveryTruncationOffset(t *testing.T) {
	pages := crashCorpus(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "idx.bin")

	e := Build(nil, semindex.FullInf, pages[:2], Options{Shards: 3})
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachWAL(base, wal.Options{Policy: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	walPath := WALPath(base)
	size := func() int64 {
		st, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	// boundaries[k] is the log size once k records are fully on disk.
	boundaries := []int64{size()}
	for _, p := range pages[2:4] {
		if err := e.AddPage(p); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, size())
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Reference engines: what recovery must be byte-identical to when
	// 0, 1 or 2 of the WAL records survive. Their rankings are computed
	// once; the sweep compares every recovery against them.
	queries := eval.PaperQueries()
	wantDocs := make([]int, 3)
	wantHits := make([][][]semindex.Hit, 3)
	for k := 0; k <= 2; k++ {
		ref := Build(nil, semindex.FullInf, pages[:2+k], Options{Shards: 3})
		wantDocs[k] = ref.NumDocs()
		wantHits[k] = make([][]semindex.Hit, len(queries))
		for qi, q := range queries {
			wantHits[k][qi] = searchN(ref, q.Keywords, 10)
		}
	}

	recovered := func(cut int64) int {
		n := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}
	atBoundary := func(cut int64) bool {
		if cut == 0 {
			return true // no file bytes at all: clean empty log
		}
		for _, b := range boundaries {
			if cut == b {
				return true
			}
		}
		return false
	}

	total := boundaries[len(boundaries)-1]
	t.Logf("sweeping %d truncation offsets (%d-record log)", total+1, len(boundaries)-1)
	for cut := int64(0); cut <= total; cut++ {
		scratch := t.TempDir()
		cutBase := copySnapshot(t, base, scratch)
		if err := os.Truncate(WALPath(cutBase), cut); err != nil {
			t.Fatal(err)
		}
		got, err := Load(cutBase, nil)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		k := recovered(cut)
		rep := got.LoadReport()
		if rep.WALReplayed != k {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, rep.WALReplayed, k)
		}
		if wantTorn := !atBoundary(cut); rep.WALTorn != wantTorn {
			t.Fatalf("cut %d: WALTorn = %v, want %v", cut, rep.WALTorn, wantTorn)
		}
		if got.NumDocs() != wantDocs[k] {
			t.Fatalf("cut %d: %d docs, want %d", cut, got.NumDocs(), wantDocs[k])
		}
		for qi, q := range queries {
			assertSameHits(t, q.ID, searchN(got, q.Keywords, 10), wantHits[k][qi])
			if t.Failed() {
				t.Fatalf("cut %d: recovered ranking diverged on %s", cut, q.ID)
			}
		}
		// Recovery must leave the log appendable: the next ingest and
		// checkpoint have to succeed on the truncated lineage.
		if err := got.AttachWAL(cutBase, wal.Options{Policy: wal.SyncNever}); err != nil {
			t.Fatalf("cut %d: reattach: %v", cut, err)
		}
		if err := got.CloseWAL(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestCrashMidMergeReopensMapped simulates a kill while a mapped
// engine's background merge was in flight: the directory holds the
// committed snapshot plus merger scratch segments — some complete, some
// torn mid-write. Scratch files are never named by the manifest, so a
// mapped reopen must serve the committed generation exactly (no
// quarantine, no fallback, rankings unchanged) and the next checkpoint
// must sweep the orphans away.
func TestCrashMidMergeReopensMapped(t *testing.T) {
	pages := crashCorpus(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "idx.bin")

	ref := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	if err := ref.Save(base); err != nil {
		t.Fatal(err)
	}

	// First life: a mapped engine merges, leaving real scratch segments,
	// and is then abandoned without Close — the crash.
	victim, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	victim.mergeShard(0)
	orphans, err := filepath.Glob(base + ".mapseg*")
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) == 0 {
		t.Fatal("merge on a mapped engine produced no scratch segment")
	}
	// Torn artifacts a kill mid-writeShardFile would leave: a half
	// snapshot under the scratch name and an un-renamed tmp.
	for _, junk := range []string{base + ".mapseg999998.shard001", base + ".mapseg999999.shard000.tmp"} {
		if err := os.WriteFile(junk, []byte("torn scratch write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: reopen mapped over the same directory.
	got, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatalf("mapped reopen amid scratch orphans failed: %v", err)
	}
	defer got.Close()
	rep := got.LoadReport()
	if len(rep.Quarantined) != 0 || len(rep.MappedFallback) != 0 {
		t.Fatalf("scratch orphans disturbed the reopen: %+v", rep)
	}
	if got.NumDocs() != ref.NumDocs() {
		t.Fatalf("reopened with %d docs, want %d", got.NumDocs(), ref.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(got, q.Keywords, 10), searchN(ref, q.Keywords, 10))
	}

	// The next checkpoint retires every orphan, torn or complete.
	if err := got.Save(base); err != nil {
		t.Fatal(err)
	}
	if left, _ := filepath.Glob(base + ".mapseg*"); len(left) != 0 {
		t.Fatalf("checkpoint left scratch orphans behind: %v", left)
	}
	if rep := Fsck(base); !rep.OK() {
		t.Fatalf("fsck after orphan sweep:\n%s", rep)
	}
}

// TestCrashBeforeManifestKeepsOldSnapshot simulates a crash between the
// shard-file renames and the manifest commit: the next generation's
// shard files sit fully written in the directory, but the manifest
// still names the previous generation. Load must serve the old snapshot
// untouched — the manifest is the commit point, and generation-stamped
// filenames guarantee the half-finished save never overwrote its files.
func TestCrashBeforeManifestKeepsOldSnapshot(t *testing.T) {
	pages := crashCorpus(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "idx.bin")

	e := Build(nil, semindex.FullInf, pages[:3], Options{Shards: 3})
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}

	// Run the next checkpoint to completion in a scratch clone, then
	// copy only its new shard files back — exactly the bytes a crash
	// right before the manifest rename would have left behind.
	scratch := t.TempDir()
	scratchBase := copySnapshot(t, base, scratch)
	e2, err := Load(scratchBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.AddPage(pages[3]); err != nil {
		t.Fatal(err)
	}
	if err := e2.Save(scratchBase); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(scratchBase + ".g*.shard*")
	if err != nil {
		t.Fatal(err)
	}
	copied := 0
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(dir, filepath.Base(name))); err == nil {
			continue // generation 1 file, already present
		}
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(name)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		copied++
	}
	if copied == 0 {
		t.Fatal("second save produced no new generation files")
	}

	got, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.LoadReport().Generation != 1 || got.NumDocs() != e.NumDocs() {
		t.Fatalf("recovered generation %d with %d docs, want generation 1 with %d",
			got.LoadReport().Generation, got.NumDocs(), e.NumDocs())
	}
	if len(got.Quarantined()) != 0 {
		t.Fatalf("old snapshot quarantined %v after unmanifested new files appeared", got.Quarantined())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(got, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
}
