// Package shard is the horizontally-partitioned index engine behind the
// paper's claim that semantic indexing "scales our system up to web search
// engines" (Sections 3.6, 7). Match pages are partitioned across N shards
// by a stable hash of the page ID; each shard holds an ordinary
// semindex.SemanticIndex over its slice of the corpus and is built
// concurrently. Queries fan out to every shard and the per-shard top-k
// lists are merged into a global top-k.
//
// The engine guarantees the merged ranking is *identical* — documents and
// scores — to the ranking a single monolithic index over the same corpus
// would produce. Two mechanisms carry that guarantee:
//
//   - Globally-consistent scoring: shards score against corpus-wide
//     document frequencies, document counts and average field lengths
//     (index.CorpusStats) instead of their local slice, so identical
//     documents earn bit-identical scores regardless of shard placement.
//     The view is built once at build/load time and maintained
//     incrementally by ingest: integer adds (new segment) and subtracts
//     (tombstones) land on exactly the state a from-scratch recompute
//     over the live documents would produce.
//
//   - Global document identity: every document carries its global docID
//     (the docID the monolith would have assigned) in the stored MetaGID
//     field. Ties are broken on the global ID, and because local IDs
//     within every sub-index are assigned in global order, per-shard
//     top-k truncation never discards a document the global merge would
//     have kept.
//
// Ingest is LSM-shaped: each Ingest batch becomes one small immutable
// in-memory segment per touched shard, appended to the shard without
// rebuilding anything; a replaced page's previous documents are
// tombstoned, not rewritten. Searches scatter across shards × (base +
// segments). A background merger (merger.go) compacts segments into the
// base and drops tombstones — invisible to queries: no statistics move,
// no epoch bumps, the ranking is byte-identical before, during and after.
package shard

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crawler"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/semindex"
	"repro/internal/wal"
)

// MetaGID is the stored-only document field carrying the global docID
// (the '_' prefix keeps it out of the term space, see index.Index.Add).
// It rides through the index codec, so persisted shards keep their global
// identity across save/load.
const MetaGID = "_gid"

// subIndex is one searchable unit inside a shard: the base index or one
// ingest batch's immutable segment. gids maps its local docIDs to global
// ones, ascending — locals are assigned in global order, which keeps
// per-sub top-k truncation safe for the global merge.
type subIndex struct {
	si   *semindex.SemanticIndex
	gids []int
	// segID is 0 for the base, else the Ingest batch's segment id.
	// Segment postings are immutable after the creating batch commits;
	// only tombstone bits move afterwards.
	segID uint64
	// release unmaps a mapped base's byte region (nil for heap subs).
	// Called only after the sub can no longer be referenced: base swaps
	// happen under the write lock, and every search holds the read lock
	// for its full duration (the deadline scatter's drain goroutine keeps
	// holding it until stragglers finish), so no reader survives the swap.
	release func() error
	// scratch names the merger-written segment file backing a mapped
	// base ("" for manifest-named files, which Save owns); removed
	// together with the mapping.
	scratch string
}

// docRef locates one global document inside the engine. A nil sub marks
// a hole in the global ID space (a document lost with a quarantined
// shard, or dropped by a merge after being tombstoned).
type docRef struct {
	sub   *subIndex
	shard int
	local int
}

// Options configures a sharded build.
type Options struct {
	// Shards is the partition count N (values < 1 mean 1).
	Shards int
	// Parallelism bounds the page-preparation worker pool; 0 means
	// GOMAXPROCS. Shard commits always run with one worker per shard.
	Parallelism int
	// CacheBytes, when > 0, installs a query-result cache of that
	// capacity (with request coalescing) on the built engine, registered
	// against obs.Default. Use EnableCache for an isolated registry.
	CacheBytes int64
	// ChunkPages bounds how many pages BuildStream materializes at a
	// time (0 means 512). Peak build working memory beyond the index
	// itself is one chunk's pages plus their prepared documents,
	// independent of corpus size.
	ChunkPages int
}

// Engine is an N-way sharded semantic index. Searches are safe for
// concurrent use and may overlap; ingestion (Ingest) commits are
// serialized against searches internally, with document analysis running
// outside the lock.
type Engine struct {
	level   semindex.Level
	builder *semindex.Builder

	// shards aliases each shard's base semantic index (base[s].si) — the
	// view Save, Shard and the statistics exchange work from. Swapped
	// together with base under the write lock when a merge lands.
	shards []*semindex.SemanticIndex

	// mu guards the mutable state below: ingest and merge swaps take the
	// write side while concurrent searches hold the read side.
	mu sync.RWMutex
	// base and segs are each shard's LSM pieces: one base index plus the
	// not-yet-merged segments in creation (= ascending global ID) order.
	base []*subIndex
	segs [][]*subIndex
	// byGID maps global docID -> location.
	byGID []docRef
	// pageGIDs maps a page ID to the global docIDs of its LIVE documents
	// — the index Ingest consults to tombstone a page's previous version
	// (upsert semantics).
	pageGIDs map[string][]int
	// liveDocs counts documents that match queries: ingested minus
	// tombstoned minus quarantined holes.
	liveDocs int
	// global is the corpus-wide statistics view installed on every sub.
	// The OBJECT IDENTITY is engine-wide and stable across ingests —
	// ingest mutates it in place under the write lock (integer-exact, see
	// package comment); only exchangeStats replaces it.
	global *index.CorpusStats

	// met holds the engine's metric handles (see metrics.go). Swapped by
	// SetMetrics under the write lock; read under the read lock on every
	// search path.
	met *engineMetrics

	// epoch counts ingests engine-wide — the coarse "anything changed"
	// counter. epochs (guarded by mu) is the per-shard refinement: an
	// ingest bumps only the shards it wrote to or tombstoned in, which is
	// what lets the query cache keep answers whose shard-set the write
	// does not intersect (scoped invalidation, see search.go).
	epoch  atomic.Uint64
	epochs []uint64
	// scoped selects per-shard cache invalidation (the default). Off,
	// every ingest bumps every shard's epoch — the legacy evict-the-world
	// behavior the ingest benchmark's baseline arm measures.
	scoped bool
	// exhaustive mirrors SetExhaustiveScoring so segments created later
	// inherit the scoring mode.
	exhaustive bool
	// nextSeg numbers ingest segments, starting at 1 (0 is the base).
	nextSeg uint64

	// cache and flight are the optional query-result cache and its
	// singleflight group (see internal/qcache). Installed before serving
	// traffic — Options.CacheBytes or EnableCache — and swapped only
	// under the write lock; nil means every query runs cold.
	cache  *qcache.Cache
	flight *qcache.Group

	// stall, when set, runs at the start of every per-shard scatter
	// goroutine with the shard index — the fault-injection hook degraded
	// serving is tested through. Install before serving traffic.
	stall func(shard int)

	// gen is the snapshot generation the engine's state extends: 0 for
	// a fresh build, the manifest's generation after Load, bumped by
	// every Save. It anchors the ingest WAL to its snapshot.
	gen uint64
	// wal, when attached, receives every Ingest batch before memory
	// mutates (see AttachWAL); Save rotates it at checkpoint.
	wal *wal.Log
	// quarantined lists shard slots Load replaced with empty
	// placeholders after their snapshot files failed verification. A
	// non-empty list means the engine serves degraded: every
	// SearchReport names these shards as missing.
	quarantined []int
	// loadRep records how the last Load recovered (zero for built
	// engines).
	loadRep LoadReport

	// mappedBase, when non-empty, is the snapshot base path the engine
	// was mapped-loaded from (LoadOptions.Mapped): the merger persists
	// compaction output next to it as mapped scratch segments and Save
	// re-anchors bases on the committed generation's files. Set once
	// before serving, read-only after.
	mappedBase string
	// mapSeq numbers merger scratch segment files so successive merges
	// of one shard never collide.
	mapSeq atomic.Uint64

	// mergeOpMu serializes merge/compaction operations (background
	// merger, ForceMerge, Save's checkpoint compaction) against each
	// other; mergerMu guards the background merger's lifecycle state.
	mergeOpMu  sync.Mutex
	mergerMu   sync.Mutex
	mergerStop chan struct{}
	mergerDone chan struct{}
	mergeNudge chan struct{}
}

// newEngine wires the empty N-shard skeleton shared by Build and Load.
func newEngine(level semindex.Level, b *semindex.Builder, n int) *Engine {
	return &Engine{
		level:    level,
		builder:  b,
		shards:   make([]*semindex.SemanticIndex, n),
		base:     make([]*subIndex, n),
		segs:     make([][]*subIndex, n),
		epochs:   make([]uint64, n),
		pageGIDs: map[string][]int{},
		scoped:   true,
		nextSeg:  1,
		met:      newEngineMetrics(obs.Default, n),
	}
}

// Generation returns the snapshot generation the engine extends: 0 for
// a fresh build, advanced by every Save.
func (e *Engine) Generation() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gen
}

// Quarantined lists the shard slots serving as empty placeholders for
// snapshot files Load rejected. Empty means the engine is complete;
// non-empty means degraded serving (surfaced in every SearchReport and
// socserve's /readyz).
func (e *Engine) Quarantined() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]int(nil), e.quarantined...)
}

// LoadReport describes the recovery that produced this engine: its
// generation, quarantined shards, and the WAL tail replayed. The zero
// report means the engine was built, not loaded.
func (e *Engine) LoadReport() LoadReport {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.loadRep
}

// SetStall installs a per-shard delay hook called at the start of every
// scatter goroutine. It exists for fault injection: tests (and drills)
// stall one shard past the SearchDeadline budget and assert the engine
// degrades instead of hanging. Pass nil to remove. Not for production use.
func (e *Engine) SetStall(hook func(shard int)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stall = hook
}

// SetScopedInvalidation toggles scoped (per-shard epoch) cache
// invalidation. On by default; turning it off makes every ingest bump
// every shard's epoch, reproducing the legacy evict-everything behavior —
// the baseline arm of the ingest benchmark.
func (e *Engine) SetScopedInvalidation(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.scoped = on
}

// ShardFor reports which shard of an n-shard engine owns a page ID —
// the stable routing hash, exported so writers (ingest routers, load
// harnesses) can reason about write placement.
func ShardFor(pageID string, n int) int { return shardFor(pageID, n) }

// shardFor places a page on a shard by stable hash, so the same page ID
// always lands on the same shard regardless of arrival order.
func shardFor(pageID string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(pageID))
	return int(h.Sum32() % uint32(n))
}

// Build constructs the engine over a fully-materialized page slice. It
// is BuildStream over a slice source — one code path whether the corpus
// arrives as a slice or as a stream. A nil builder gets the default
// soccer pipeline.
func Build(b *semindex.Builder, level semindex.Level, pages []*crawler.MatchPage, opts Options) *Engine {
	e, err := BuildStream(b, level, &sliceSource{pages: pages}, opts)
	if err != nil {
		// A slice source cannot fail; an error here is a programming error.
		panic("shard: slice build failed: " + err.Error())
	}
	return e
}

// PageSource streams match pages into a build. NextPage returns io.EOF
// when the stream is exhausted; any other error aborts the build.
// internal/corpus.Generator implements it, as does any parser pulling
// pages off disk or the network.
type PageSource interface {
	NextPage() (*crawler.MatchPage, error)
}

// sliceSource adapts a materialized page slice to PageSource.
type sliceSource struct {
	pages []*crawler.MatchPage
	i     int
}

func (s *sliceSource) NextPage() (*crawler.MatchPage, error) {
	if s.i >= len(s.pages) {
		return nil, io.EOF
	}
	p := s.pages[s.i]
	s.i++
	return p, nil
}

// BuildStream constructs the engine from a streaming page source in
// bounded chunks: up to Options.ChunkPages pages are pulled, their
// documents prepared on a worker pool (extraction, population,
// inference — the expensive, embarrassingly-parallel part), global
// docIDs assigned in arrival order (the order the monolith would use),
// and each shard's slice committed concurrently; then the chunk is
// dropped and the next one pulled. Build working memory beyond the
// index itself is therefore one chunk, independent of corpus size —
// the property that lets a million-document synthetic corpus
// (internal/corpus) build without ever materializing the corpus.
//
// The produced engine is identical — document identity, statistics,
// ranking — to Build over the same pages in the same order, because
// chunking changes when documents are prepared but not the order global
// docIDs are assigned or the order each shard commits.
func BuildStream(b *semindex.Builder, level semindex.Level, src PageSource, opts Options) (*Engine, error) {
	buildStart := time.Now()
	if b == nil {
		b = semindex.NewBuilder()
	}
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	e := newEngine(level, b, n)
	for s := 0; s < n; s++ {
		si := &semindex.SemanticIndex{Level: level, Index: index.New(b.Analyzer)}
		e.shards[s] = si
		e.base[s] = &subIndex{si: si}
	}

	chunk := opts.ChunkPages
	if chunk <= 0 {
		chunk = 512
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	buf := make([]*crawler.MatchPage, 0, chunk)
	for {
		page, err := src.NextPage()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		buf = append(buf, page)
		if len(buf) == chunk {
			e.commitChunk(b, level, buf, workers)
			buf = buf[:0]
		}
	}
	e.commitChunk(b, level, buf, workers)

	e.liveDocs = len(e.byGID)
	e.exchangeStats()
	if opts.CacheBytes > 0 {
		e.cache = qcache.New(opts.CacheBytes, 0, obs.Default)
		e.flight = qcache.NewGroup(obs.Default)
	}
	e.met.build.ObserveDuration(time.Since(buildStart))
	return e, nil
}

// commitChunk runs the three build phases over one chunk of pages.
// Only called before the engine serves traffic, so no locking.
func (e *Engine) commitChunk(b *semindex.Builder, level semindex.Level, pages []*crawler.MatchPage, workers int) {
	if len(pages) == 0 {
		return
	}
	n := len(e.base)

	// Phase 1: prepare per-page documents in parallel.
	docsByPage := make([][]*index.Document, len(pages))
	if workers <= 1 || len(pages) < 2 {
		for i, page := range pages {
			docsByPage[i] = b.PageDocuments(level, page)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, page := range pages {
			wg.Add(1)
			go func(i int, page *crawler.MatchPage) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				docsByPage[i] = b.PageDocuments(level, page)
			}(i, page)
		}
		wg.Wait()
	}

	// Phase 2: assign global docIDs in page order. Local commit order per
	// shard follows global order, so the shard/local mapping is known here.
	pagesByShard := make([][]int, n)
	for i, page := range pages {
		s := shardFor(page.ID, n)
		pagesByShard[s] = append(pagesByShard[s], i)
		for _, d := range docsByPage[i] {
			gid := len(e.byGID)
			d.Add(MetaGID, strconv.Itoa(gid))
			e.byGID = append(e.byGID, docRef{sub: e.base[s], shard: s, local: len(e.base[s].gids)})
			e.base[s].gids = append(e.base[s].gids, gid)
			e.pageGIDs[page.ID] = append(e.pageGIDs[page.ID], gid)
		}
	}

	// Phase 3: commit every shard concurrently.
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, pi := range pagesByShard[s] {
				for _, d := range docsByPage[pi] {
					e.shards[s].Index.Add(d)
				}
			}
		}(s)
	}
	wg.Wait()
}

// EnableCache installs (maxBytes > 0) or removes (maxBytes <= 0) the
// query-result cache and its singleflight group, registering cache
// metrics in r (nil r disables cache instrumentation). Call before the
// engine serves traffic; a swap mid-flight is safe but in-flight queries
// finish against the cache they started with.
func (e *Engine) EnableCache(maxBytes int64, r *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if maxBytes <= 0 {
		e.cache, e.flight = nil, nil
		return
	}
	e.cache = qcache.New(maxBytes, 0, r)
	e.flight = qcache.NewGroup(r)
}

// QueryCache exposes the installed query-result cache (nil when caching
// is off) — for stats endpoints and tests.
func (e *Engine) QueryCache() *qcache.Cache {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cache
}

// Epoch returns the engine's total ingest counter. Every ingest advances
// it; merges do not (they change nothing observable).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// ShardEpochs returns a copy of the per-shard content epochs — the
// counters scoped cache invalidation keys on.
func (e *Engine) ShardEpochs() []uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]uint64(nil), e.epochs...)
}

// subsLocked lists one shard's sub-indexes: base first, then segments in
// creation order — ascending, disjoint global-ID ranges. Read lock
// required; the returned slice is private to the caller.
func (e *Engine) subsLocked(s int) []*subIndex {
	subs := make([]*subIndex, 0, 1+len(e.segs[s]))
	subs = append(subs, e.base[s])
	return append(subs, e.segs[s]...)
}

// exchangeStats recomputes every shard's local statistics in parallel,
// merges them into a FRESH corpus-wide view and installs it on every
// sub-index — the post-build/post-load exchange that makes per-shard
// ranking globally consistent. LocalStats is tombstone-aware, so the
// result is exact even mid-LSM-state. Callers must hold the write lock
// (or be single-threaded, as during Build). All shard epochs advance:
// the statistics object was replaced, so nothing cached can be trusted
// structurally.
func (e *Engine) exchangeStats() {
	per := make([]*index.CorpusStats, len(e.base))
	var wg sync.WaitGroup
	for s := range e.base {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cs := e.base[s].si.Index.LocalStats()
			for _, sub := range e.segs[s] {
				cs.Merge(sub.si.Index.LocalStats())
			}
			per[s] = cs
		}(s)
	}
	wg.Wait()
	g := index.NewCorpusStats()
	for _, cs := range per {
		g.Merge(cs)
	}
	e.global = g
	for s := range e.base {
		for _, sub := range e.subsLocked(s) {
			sub.si.Index.SetCorpusStats(g)
		}
	}
	for s := range e.epochs {
		e.epochs[s]++
	}
	e.epoch.Add(1)
}

// SetExhaustiveScoring routes every sub-index through the term-at-a-time
// map-accumulator scoring path instead of the pruned DAAT kernel (see
// index.Index.SetExhaustive) — the engine-level escape hatch the cold-path
// benchmark compares against. Results are identical either way; only the
// evaluation strategy changes. Takes the write lock: do not flip it while
// queries are in flight you care about timing.
func (e *Engine) SetExhaustiveScoring(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.exhaustive = on
	for s := range e.base {
		for _, sub := range e.subsLocked(s) {
			sub.si.Index.SetExhaustive(on)
		}
	}
}

// Level returns the semantic level all shards are built at.
func (e *Engine) Level() semindex.Level { return e.level }

// NumShards returns the partition count.
func (e *Engine) NumShards() int { return len(e.shards) }

// NumDocs returns the number of live documents — ingested (including
// not-yet-merged segment documents, which are searchable the moment
// Ingest returns) minus tombstoned minus quarantined holes.
func (e *Engine) NumDocs() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.liveDocs
}

// Doc returns the stored document for a global docID, or nil for an
// unknown, tombstoned or lost ID (quarantined shards and merged-away
// tombstones leave holes in the ID space rather than renumbering).
func (e *Engine) Doc(gid int) *index.Document {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if gid < 0 || gid >= len(e.byGID) {
		return nil
	}
	ref := e.byGID[gid]
	if ref.sub == nil || ref.sub.si.Index.IsDeleted(ref.local) {
		return nil
	}
	return ref.sub.si.Index.Doc(ref.local)
}

// Shard exposes one shard's BASE semantic index (for stats, persistence
// and tests); the returned index must not be mutated. Segment documents
// live outside it until the merger folds them in.
func (e *Engine) Shard(i int) *semindex.SemanticIndex {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.shards[i]
}

// Stats summarizes the engine: the exchanged corpus-wide view plus each
// shard's size.
type Stats struct {
	// Shards is the partition count.
	Shards int
	// Docs is the live global document count, segment docs included.
	Docs int
	// Segments counts not-yet-merged ingest segments across all shards.
	Segments int
	// Tombstones counts deleted documents awaiting a merge.
	Tombstones int
	// Global is the merged corpus-wide statistics every shard scores with.
	Global *index.CorpusStats
	// PerShard holds each shard's size summary, base and segments
	// aggregated (Fields is the base's; segment fields are a subset).
	PerShard []index.Stats
}

// Stats reports the engine's shape after the statistics exchange.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := Stats{Shards: len(e.shards), Docs: e.liveDocs, Global: e.global}
	for s := range e.base {
		ps := e.base[s].si.Index.Stats()
		for _, sub := range e.segs[s] {
			ss := sub.si.Index.Stats()
			ps.Docs += ss.Docs
			ps.Deleted += ss.Deleted
			ps.Terms += ss.Terms
			ps.Postings += ss.Postings
		}
		ps.Docs -= ps.Deleted
		st.Segments += len(e.segs[s])
		st.Tombstones += ps.Deleted
		st.PerShard = append(st.PerShard, ps)
	}
	return st
}

// String renders a one-line summary for CLIs.
func (st Stats) String() string {
	out := fmt.Sprintf("%d shards, %d docs (", st.Shards, st.Docs)
	for i, ps := range st.PerShard {
		if i > 0 {
			out += "+"
		}
		out += strconv.Itoa(ps.Docs)
	}
	out += ")"
	if st.Segments > 0 || st.Tombstones > 0 {
		out += fmt.Sprintf(", %d unmerged segment(s), %d tombstone(s)", st.Segments, st.Tombstones)
	}
	return out
}
