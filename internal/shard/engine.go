// Package shard is the horizontally-partitioned index engine behind the
// paper's claim that semantic indexing "scales our system up to web search
// engines" (Sections 3.6, 7). Match pages are partitioned across N shards
// by a stable hash of the page ID; each shard holds an ordinary
// semindex.SemanticIndex over its slice of the corpus and is built
// concurrently. Queries fan out to every shard and the per-shard top-k
// lists are merged into a global top-k.
//
// The engine guarantees the merged ranking is *identical* — documents and
// scores — to the ranking a single monolithic index over the same corpus
// would produce. Two mechanisms carry that guarantee:
//
//   - Globally-consistent scoring: after build, shards exchange collection
//     statistics (index.CorpusStats). Every shard then scores against
//     corpus-wide document frequencies, document counts and average field
//     lengths instead of its local slice, so identical documents earn
//     bit-identical scores regardless of shard placement.
//
//   - Global document identity: every document carries its global docID
//     (the docID the monolith would have assigned) in the stored MetaGID
//     field. Ties are broken on the global ID, and because local IDs within
//     a shard are assigned in global order, per-shard top-k truncation
//     never discards a document the global merge would have kept.
//
// New matches are ingested incrementally: only the owning shard and the
// global statistics are refreshed; the other shards are untouched.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crawler"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/semindex"
	"repro/internal/wal"
)

// MetaGID is the stored-only document field carrying the global docID
// (the '_' prefix keeps it out of the term space, see index.Index.Add).
// It rides through the index codec, so persisted shards keep their global
// identity across save/load.
const MetaGID = "_gid"

// docRef locates one global document inside the engine.
type docRef struct {
	shard int
	local int
}

// Options configures a sharded build.
type Options struct {
	// Shards is the partition count N (values < 1 mean 1).
	Shards int
	// Parallelism bounds the page-preparation worker pool; 0 means
	// GOMAXPROCS. Shard commits always run with one worker per shard.
	Parallelism int
	// CacheBytes, when > 0, installs a query-result cache of that
	// capacity (with request coalescing) on the built engine, registered
	// against obs.Default. Use EnableCache for an isolated registry.
	CacheBytes int64
	// ChunkPages bounds how many pages BuildStream materializes at a
	// time (0 means 512). Peak build working memory beyond the index
	// itself is one chunk's pages plus their prepared documents,
	// independent of corpus size.
	ChunkPages int
}

// Engine is an N-way sharded semantic index. Searches are safe for
// concurrent use and may overlap; ingestion (AddPage) is serialized
// against searches internally.
type Engine struct {
	level   semindex.Level
	builder *semindex.Builder
	shards  []*semindex.SemanticIndex

	// mu guards the mutable state below: incremental ingest swaps it while
	// concurrent searches hold the read side.
	mu sync.RWMutex
	// byGID maps global docID -> location; gids is the inverse, per shard.
	byGID []docRef
	gids  [][]int
	// perShard caches each shard's local statistics so an ingest only
	// recomputes the owning shard's contribution before re-merging.
	perShard []*index.CorpusStats
	global   *index.CorpusStats

	// met holds the engine's metric handles (see metrics.go). Swapped by
	// SetMetrics under the write lock; read under the read lock on every
	// search path.
	met *engineMetrics

	// epoch counts statistics exchanges: mergeAndInstall bumps it under
	// the write lock, and every query-cache entry captures the epoch its
	// answer was computed at, so a cached hit is never served across an
	// ingest (invalidation by version, not by time).
	epoch atomic.Uint64

	// cache and flight are the optional query-result cache and its
	// singleflight group (see internal/qcache). Installed before serving
	// traffic — Options.CacheBytes or EnableCache — and swapped only
	// under the write lock; nil means every query runs cold.
	cache  *qcache.Cache
	flight *qcache.Group

	// stall, when set, runs at the start of every per-shard scatter
	// goroutine with the shard index — the fault-injection hook degraded
	// serving is tested through. Install before serving traffic.
	stall func(shard int)

	// gen is the snapshot generation the engine's state extends: 0 for
	// a fresh build, the manifest's generation after Load, bumped by
	// every Save. It anchors the ingest WAL to its snapshot.
	gen uint64
	// wal, when attached, receives every AddPage batch before memory
	// mutates (see AttachWAL); Save rotates it at checkpoint.
	wal *wal.Log
	// quarantined lists shard slots Load replaced with empty
	// placeholders after their snapshot files failed verification. A
	// non-empty list means the engine serves degraded: every
	// SearchReport names these shards as missing.
	quarantined []int
	// loadRep records how the last Load recovered (zero for built
	// engines).
	loadRep LoadReport
}

// Generation returns the snapshot generation the engine extends: 0 for
// a fresh build, advanced by every Save.
func (e *Engine) Generation() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gen
}

// Quarantined lists the shard slots serving as empty placeholders for
// snapshot files Load rejected. Empty means the engine is complete;
// non-empty means degraded serving (surfaced in every SearchReport and
// socserve's /readyz).
func (e *Engine) Quarantined() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]int(nil), e.quarantined...)
}

// LoadReport describes the recovery that produced this engine: its
// generation, quarantined shards, and the WAL tail replayed. The zero
// report means the engine was built, not loaded.
func (e *Engine) LoadReport() LoadReport {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.loadRep
}

// SetStall installs a per-shard delay hook called at the start of every
// scatter goroutine. It exists for fault injection: tests (and drills)
// stall one shard past the SearchDeadline budget and assert the engine
// degrades instead of hanging. Pass nil to remove. Not for production use.
func (e *Engine) SetStall(hook func(shard int)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stall = hook
}

// shardFor places a page on a shard by stable hash, so the same page ID
// always lands on the same shard regardless of arrival order.
func shardFor(pageID string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(pageID))
	return int(h.Sum32() % uint32(n))
}

// Build constructs the engine over a fully-materialized page slice. It
// is BuildStream over a slice source — one code path whether the corpus
// arrives as a slice or as a stream. A nil builder gets the default
// soccer pipeline.
func Build(b *semindex.Builder, level semindex.Level, pages []*crawler.MatchPage, opts Options) *Engine {
	e, err := BuildStream(b, level, &sliceSource{pages: pages}, opts)
	if err != nil {
		// A slice source cannot fail; an error here is a programming error.
		panic("shard: slice build failed: " + err.Error())
	}
	return e
}

// PageSource streams match pages into a build. NextPage returns io.EOF
// when the stream is exhausted; any other error aborts the build.
// internal/corpus.Generator implements it, as does any parser pulling
// pages off disk or the network.
type PageSource interface {
	NextPage() (*crawler.MatchPage, error)
}

// sliceSource adapts a materialized page slice to PageSource.
type sliceSource struct {
	pages []*crawler.MatchPage
	i     int
}

func (s *sliceSource) NextPage() (*crawler.MatchPage, error) {
	if s.i >= len(s.pages) {
		return nil, io.EOF
	}
	p := s.pages[s.i]
	s.i++
	return p, nil
}

// BuildStream constructs the engine from a streaming page source in
// bounded chunks: up to Options.ChunkPages pages are pulled, their
// documents prepared on a worker pool (extraction, population,
// inference — the expensive, embarrassingly-parallel part), global
// docIDs assigned in arrival order (the order the monolith would use),
// and each shard's slice committed concurrently; then the chunk is
// dropped and the next one pulled. Build working memory beyond the
// index itself is therefore one chunk, independent of corpus size —
// the property that lets a million-document synthetic corpus
// (internal/corpus) build without ever materializing the corpus.
//
// The produced engine is identical — document identity, statistics,
// ranking — to Build over the same pages in the same order, because
// chunking changes when documents are prepared but not the order global
// docIDs are assigned or the order each shard commits.
func BuildStream(b *semindex.Builder, level semindex.Level, src PageSource, opts Options) (*Engine, error) {
	buildStart := time.Now()
	if b == nil {
		b = semindex.NewBuilder()
	}
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	e := &Engine{
		level:   level,
		builder: b,
		shards:  make([]*semindex.SemanticIndex, n),
		gids:    make([][]int, n),
		met:     newEngineMetrics(obs.Default, n),
	}
	for s := 0; s < n; s++ {
		e.shards[s] = &semindex.SemanticIndex{Level: level, Index: index.New(b.Analyzer)}
	}

	chunk := opts.ChunkPages
	if chunk <= 0 {
		chunk = 512
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	buf := make([]*crawler.MatchPage, 0, chunk)
	for {
		page, err := src.NextPage()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		buf = append(buf, page)
		if len(buf) == chunk {
			e.commitChunk(b, level, buf, workers)
			buf = buf[:0]
		}
	}
	e.commitChunk(b, level, buf, workers)

	e.exchangeStats()
	if opts.CacheBytes > 0 {
		e.cache = qcache.New(opts.CacheBytes, 0, obs.Default)
		e.flight = qcache.NewGroup(obs.Default)
	}
	e.met.build.ObserveDuration(time.Since(buildStart))
	return e, nil
}

// commitChunk runs the three build phases over one chunk of pages.
// Only called before the engine serves traffic, so no locking.
func (e *Engine) commitChunk(b *semindex.Builder, level semindex.Level, pages []*crawler.MatchPage, workers int) {
	if len(pages) == 0 {
		return
	}
	n := len(e.shards)

	// Phase 1: prepare per-page documents in parallel.
	docsByPage := make([][]*index.Document, len(pages))
	if workers <= 1 || len(pages) < 2 {
		for i, page := range pages {
			docsByPage[i] = b.PageDocuments(level, page)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, page := range pages {
			wg.Add(1)
			go func(i int, page *crawler.MatchPage) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				docsByPage[i] = b.PageDocuments(level, page)
			}(i, page)
		}
		wg.Wait()
	}

	// Phase 2: assign global docIDs in page order. Local commit order per
	// shard follows global order, so the shard/local mapping is known here.
	pagesByShard := make([][]int, n)
	for i, page := range pages {
		s := shardFor(page.ID, n)
		pagesByShard[s] = append(pagesByShard[s], i)
		for _, d := range docsByPage[i] {
			gid := len(e.byGID)
			d.Add(MetaGID, strconv.Itoa(gid))
			e.byGID = append(e.byGID, docRef{shard: s, local: len(e.gids[s])})
			e.gids[s] = append(e.gids[s], gid)
		}
	}

	// Phase 3: commit every shard concurrently.
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, pi := range pagesByShard[s] {
				for _, d := range docsByPage[pi] {
					e.shards[s].Index.Add(d)
				}
			}
		}(s)
	}
	wg.Wait()
}

// EnableCache installs (maxBytes > 0) or removes (maxBytes <= 0) the
// query-result cache and its singleflight group, registering cache
// metrics in r (nil r disables cache instrumentation). Call before the
// engine serves traffic; a swap mid-flight is safe but in-flight queries
// finish against the cache they started with.
func (e *Engine) EnableCache(maxBytes int64, r *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if maxBytes <= 0 {
		e.cache, e.flight = nil, nil
		return
	}
	e.cache = qcache.New(maxBytes, 0, r)
	e.flight = qcache.NewGroup(r)
}

// QueryCache exposes the installed query-result cache (nil when caching
// is off) — for stats endpoints and tests.
func (e *Engine) QueryCache() *qcache.Cache {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cache
}

// Epoch returns the engine's current statistics epoch. Every ingest (or
// any other statistics exchange) advances it, invalidating all cached
// query results computed before.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// exchangeStats recomputes every shard's local statistics in parallel,
// merges them into the corpus-wide view and installs it on every shard —
// the post-build exchange that makes per-shard ranking globally
// consistent. Callers must hold the write lock (or be single-threaded,
// as during Build).
func (e *Engine) exchangeStats() {
	e.perShard = make([]*index.CorpusStats, len(e.shards))
	var wg sync.WaitGroup
	for s := range e.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			e.perShard[s] = e.shards[s].Index.LocalStats()
		}(s)
	}
	wg.Wait()
	e.mergeAndInstall()
}

// mergeAndInstall merges the cached per-shard statistics and installs the
// global view on every shard, then advances the epoch: any query-cache
// entry computed before this point is now invalid, because corpus-wide
// statistics (and therefore scores) may have changed. Write lock required.
func (e *Engine) mergeAndInstall() {
	g := index.NewCorpusStats()
	for _, cs := range e.perShard {
		g.Merge(cs)
	}
	e.global = g
	for _, sh := range e.shards {
		sh.Index.SetCorpusStats(g)
	}
	e.epoch.Add(1)
}

// AddPage ingests one new match incrementally: only the owning shard is
// extended and re-profiled; every other shard's inverted index is
// untouched. The global statistics are re-merged so rankings stay
// consistent with a from-scratch build over the enlarged corpus.
//
// With a WAL attached (AttachWAL), the page is appended to the log —
// and, under wal.SyncAlways, fsynced — before a single byte of memory
// mutates, so a nil return means the ingest survives an immediate
// kill -9: Load replays it from the log. A WAL append failure leaves
// the engine untouched and is returned; without a WAL, AddPage cannot
// fail.
func (e *Engine) AddPage(page *crawler.MatchPage) error {
	start := time.Now()
	docs := e.builder.PageDocuments(e.level, page)
	s := shardFor(page.ID, len(e.shards))

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		rec, err := json.Marshal(page)
		if err != nil {
			return fmt.Errorf("shard: encoding WAL record: %w", err)
		}
		if err := e.wal.Append(rec); err != nil {
			return fmt.Errorf("shard: WAL append: %w", err)
		}
	}
	defer func() { e.met.ingest.ObserveDuration(time.Since(start)) }()
	e.ingestDocsLocked(s, docs)
	return nil
}

// applyPage is AddPage without the WAL append — the replay path: the
// record being applied is already durable in the log.
func (e *Engine) applyPage(page *crawler.MatchPage) {
	docs := e.builder.PageDocuments(e.level, page)
	s := shardFor(page.ID, len(e.shards))
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ingestDocsLocked(s, docs)
}

// ingestDocsLocked commits prepared documents to their shard, assigns
// global IDs in arrival order, and re-exchanges statistics. Write lock
// required.
func (e *Engine) ingestDocsLocked(s int, docs []*index.Document) {
	for _, d := range docs {
		gid := len(e.byGID)
		d.Add(MetaGID, strconv.Itoa(gid))
		e.byGID = append(e.byGID, docRef{shard: s, local: len(e.gids[s])})
		e.gids[s] = append(e.gids[s], gid)
		e.shards[s].Index.Add(d)
	}
	e.perShard[s] = e.shards[s].Index.LocalStats()
	e.mergeAndInstall()
}

// SetExhaustiveScoring routes every shard through the term-at-a-time
// map-accumulator scoring path instead of the pruned DAAT kernel (see
// index.Index.SetExhaustive) — the engine-level escape hatch the cold-path
// benchmark compares against. Results are identical either way; only the
// evaluation strategy changes. Takes the write lock: do not flip it while
// queries are in flight you care about timing.
func (e *Engine) SetExhaustiveScoring(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, sh := range e.shards {
		sh.Index.SetExhaustive(on)
	}
}

// Level returns the semantic level all shards are built at.
func (e *Engine) Level() semindex.Level { return e.level }

// NumShards returns the partition count.
func (e *Engine) NumShards() int { return len(e.shards) }

// NumDocs returns the global document count.
func (e *Engine) NumDocs() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.byGID)
}

// Doc returns the stored document for a global docID, or nil for an
// unknown ID — including IDs lost to a quarantined shard, whose holes
// in the ID space are preserved rather than renumbered.
func (e *Engine) Doc(gid int) *index.Document {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if gid < 0 || gid >= len(e.byGID) {
		return nil
	}
	ref := e.byGID[gid]
	if ref.shard < 0 {
		return nil
	}
	return e.shards[ref.shard].Index.Doc(ref.local)
}

// Shard exposes one shard's semantic index (for stats and tests); the
// returned index must not be mutated.
func (e *Engine) Shard(i int) *semindex.SemanticIndex { return e.shards[i] }

// Stats summarizes the engine: the exchanged corpus-wide view plus each
// shard's size.
type Stats struct {
	// Shards is the partition count.
	Shards int
	// Docs is the global document count.
	Docs int
	// Global is the merged corpus-wide statistics every shard scores with.
	Global *index.CorpusStats
	// PerShard holds each shard's index size summary.
	PerShard []index.Stats
}

// Stats reports the engine's shape after the statistics exchange.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := Stats{Shards: len(e.shards), Docs: len(e.byGID), Global: e.global}
	for _, sh := range e.shards {
		st.PerShard = append(st.PerShard, sh.Index.Stats())
	}
	return st
}

// String renders a one-line summary for CLIs.
func (st Stats) String() string {
	out := fmt.Sprintf("%d shards, %d docs (", st.Shards, st.Docs)
	for i, ps := range st.PerShard {
		if i > 0 {
			out += "+"
		}
		out += strconv.Itoa(ps.Docs)
	}
	return out + ")"
}
