package shard

// Mapped serving glue: lifecycle of the byte regions behind mapped base
// segments. The index layer (internal/index OpenMapped) serves queries
// from the bytes; this file decides when the bytes live and die:
//
//   - LoadWith(Mapped) maps each manifest-named snapshot file; the
//     release func rides on the base subIndex.
//   - The background merger persists compaction output as a scratch
//     segment file ("<base>.mapseg000001.shard002") and reopens it
//     mapped, so a mapped engine stays mapped across merges instead of
//     accreting heap.
//   - Save re-anchors every base on the generation it just committed
//     and retires scratch files.
//   - Close unmaps whatever is still live.
//
// Unmap safety: a base swap happens under the engine write lock, and
// every search path holds the read lock for its entire duration (the
// deadline scatter's drain goroutine keeps holding it until straggler
// shards finish), so once a swap lands no reader can still touch the
// old region. Merges read sources off-lock, but merge operations are
// serialized by mergeOpMu and Close stops the merger first, so no merge
// outlives the mapping it reads. Data flowing out of a mapped index —
// merged postings, materialized stored documents — is always fresh heap
// memory (the block reader decodes, it never aliases), so nothing
// retains mapped bytes past the release.

import (
	"fmt"
	"io"
	"os"

	"repro/internal/index"
	"repro/internal/semindex"
)

// releaseSub unmaps a retired sub's byte region and removes its scratch
// file, if it has either. Callers must guarantee no reader can still
// reference the sub (see the unmap-safety note above).
func releaseSub(sub *subIndex) {
	if sub == nil || sub.release == nil {
		return
	}
	sub.release()
	sub.release = nil
	if sub.scratch != "" {
		os.Remove(sub.scratch)
	}
}

// Close releases the engine's resources: the background merger is
// stopped, the ingest WAL synced and detached, and every mapped base
// region unmapped. The engine must not serve after Close — mapped
// postings would read unmapped memory. Heap-only engines may call it
// too (it just stops the merger and WAL).
func (e *Engine) Close() error {
	e.StopMerger()
	err := e.CloseWAL()
	e.mu.Lock()
	defer e.mu.Unlock()
	for s := range e.base {
		releaseSub(e.base[s])
	}
	return err
}

// adoptMappedBaseLocked swaps shard s's base for a mapped view of the
// snapshot file just written for it — same documents, same local IDs,
// same bytes, so nothing observable changes: no statistics move, no
// epoch bumps, no cache entry is touched. Best-effort: on any failure
// the heap base stays. Write lock required; the base must be clean
// (Save compacts first) so its local IDs equal the file's.
func (e *Engine) adoptMappedBaseLocked(s int, path string, mf manifestEntry) {
	si, release, err := readShardFileMapped(path, e.base[s].si.Index.Analyzer(), mf)
	if err != nil || si.Level != e.level || si.Index.NumDocs() != len(e.base[s].gids) {
		if release != nil {
			release()
		}
		return
	}
	old := e.base[s]
	nb := &subIndex{si: si, gids: old.gids, release: release}
	si.Index.SetCorpusStats(e.global)
	si.Index.SetExhaustive(e.exhaustive)
	for local, gid := range nb.gids {
		e.byGID[gid] = docRef{sub: nb, shard: s, local: local}
	}
	e.base[s] = nb
	e.shards[s] = si
	releaseSub(old)
}

// writeMappedSeg persists a freshly merged index as a mapped scratch
// segment — tmp + fsync + rename, full CRC verification on reopen, the
// same write discipline as a snapshot — and returns the base-ready sub,
// or nil to signal the caller to fall back to serving the heap merge
// (the merge itself never fails here, only the mapping of it). Scratch
// files are invisible to Load (the manifest never names them) and are
// retired by the next Save or by releaseSub.
func (e *Engine) writeMappedSeg(s int, merged *index.Index) *subIndex {
	si := &semindex.SemanticIndex{Level: e.level, Index: merged}
	path := fmt.Sprintf("%s.mapseg%06d.shard%03d", e.mappedBase, e.mapSeq.Add(1), s)
	size, sum, err := writeShardFile(path, func(w io.Writer) ([]byte, error) {
		return si.SaveWithTOC(w, MetaGID, semindex.MetaMatchID)
	})
	if err != nil {
		os.Remove(path + ".tmp")
		return nil
	}
	msi, release, err := readShardFileMapped(path, merged.Analyzer(), manifestEntry{Name: path, Size: size, CRC: sum})
	if err != nil {
		os.Remove(path)
		return nil
	}
	return &subIndex{si: msi, release: release, scratch: path}
}
