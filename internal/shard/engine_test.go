package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

// searchN runs the unified Search with just a limit — the common test
// call shape (background context never errors).
func searchN(e *Engine, q string, limit int) []semindex.Hit {
	res, err := e.Search(context.Background(), q, SearchOptions{Limit: limit})
	if err != nil {
		panic(err)
	}
	return res.Hits
}

// searchWithin runs the unified Search under a per-scatter deadline
// (d <= 0 means unbounded), returning hits plus the degradation report.
func searchWithin(e *Engine, q string, limit int, d time.Duration) ([]semindex.Hit, SearchReport) {
	ctx := context.Background()
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	res, err := e.Search(ctx, q, SearchOptions{Limit: limit})
	if err != nil {
		panic(err)
	}
	return res.Hits, res.Report
}

// The fixture corpus and monolithic reference index are built once; the
// per-match pipeline (extraction, population, inference) dominates build
// time and every test compares against the same monolith.
var (
	fixOnce     sync.Once
	fixPages    []*crawler.MatchPage
	fixMonolith *semindex.SemanticIndex
)

func fixture(t testing.TB) ([]*crawler.MatchPage, *semindex.SemanticIndex) {
	t.Helper()
	fixOnce.Do(func() {
		c := soccer.Generate(soccer.Config{Matches: 6, Seed: 42, NarrationsPerMatch: 80, PaperCoverage: true})
		fixPages = crawler.PagesFromCorpus(c)
		fixMonolith = semindex.NewBuilder().Build(semindex.FullInf, fixPages)
	})
	return fixPages, fixMonolith
}

// assertSameHits fails unless the two rankings agree on documents and
// scores exactly. Engine hits carry global docIDs, which by construction
// equal the monolith's docIDs.
func assertSameHits(t *testing.T, label string, got, want []semindex.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID {
			t.Errorf("%s: rank %d doc %d, want %d", label, i+1, got[i].DocID, want[i].DocID)
		}
		if got[i].Score != want[i].Score {
			t.Errorf("%s: rank %d score %v, want %v (doc %d)",
				label, i+1, got[i].Score, want[i].Score, want[i].DocID)
		}
	}
}

// TestScatterGatherEquivalence is the engine's core guarantee: for the
// seeded corpus, the 4-shard scatter-gather top-10 — documents and scores
// — equals the single-index top-10 for all ten paper queries at FULL_INF.
func TestScatterGatherEquivalence(t *testing.T) {
	pages, mono := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 4})
	if e.NumDocs() != mono.Index.NumDocs() {
		t.Fatalf("engine has %d docs, monolith %d", e.NumDocs(), mono.Index.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(e, q.Keywords, 10), mono.Search(q.Keywords, 10))
		// The full ranking (limit 0), not just the top-10, must agree.
		assertSameHits(t, q.ID+"/full", searchN(e, q.Keywords, 0), mono.Search(q.Keywords, 0))
	}
}

// TestShardCountInvariance: the ranking must not depend on the partition
// count — 1, 2, 3 and 5 shards all reproduce the monolith.
func TestShardCountInvariance(t *testing.T) {
	pages, mono := fixture(t)
	want := mono.Search("messi barcelona goal", 10)
	for _, n := range []int{1, 2, 3, 5} {
		e := Build(nil, semindex.FullInf, pages, Options{Shards: n})
		assertSameHits(t, fmt.Sprintf("shards=%d", n), searchN(e, "messi barcelona goal", 10), want)
	}
}

// TestGlobalStatsExchange checks the consistency mechanism itself: the
// merged statistics equal the monolith's local ones, and each shard has
// the global view installed.
func TestGlobalStatsExchange(t *testing.T) {
	pages, mono := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 4})
	want := mono.Index.LocalStats()
	got := e.Stats().Global
	if got.Docs != want.Docs {
		t.Fatalf("global docs %d, want %d", got.Docs, want.Docs)
	}
	for field, wfs := range want.Fields {
		gfs := got.Fields[field]
		if gfs == nil {
			t.Fatalf("field %q missing from global stats", field)
		}
		if gfs.Docs != wfs.Docs || gfs.SumLen != wfs.SumLen {
			t.Errorf("field %q: docs/sumLen %d/%d, want %d/%d",
				field, gfs.Docs, gfs.SumLen, wfs.Docs, wfs.SumLen)
		}
		if gfs.AvgLen() != wfs.AvgLen() {
			t.Errorf("field %q: avgLen %v, want %v", field, gfs.AvgLen(), wfs.AvgLen())
		}
		for term, df := range wfs.DocFreq {
			if gfs.DocFreq[term] != df {
				t.Errorf("df(%s,%s) = %d, want %d", field, term, gfs.DocFreq[term], df)
			}
		}
	}
	for i := 0; i < e.NumShards(); i++ {
		if e.Shard(i).Index.CorpusStats() != got {
			t.Errorf("shard %d does not share the global stats", i)
		}
	}
}

// TestIncrementalIngest: adding a match must grow only the owning shard
// — as an appended segment, without rebuilding ANY base index — and
// afterwards rank identically to a from-scratch build over the enlarged
// corpus, both before and after the segment is merged in.
func TestIncrementalIngest(t *testing.T) {
	pages, mono := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:len(pages)-1], Options{Shards: 4})
	last := pages[len(pages)-1]
	owner := shardFor(last.ID, 4)
	perShard := func() []int {
		st := e.Stats()
		out := make([]int, len(st.PerShard))
		for i, ps := range st.PerShard {
			out[i] = ps.Docs
		}
		return out
	}
	before := perShard()
	baseBefore := make([]int, 4)
	for i := range baseBefore {
		baseBefore[i] = e.Shard(i).Index.NumDocs()
	}

	e.AddPage(last)

	after := perShard()
	for i := range before {
		if i == owner {
			if after[i] <= before[i] {
				t.Errorf("owning shard %d did not grow", i)
			}
		} else if after[i] != before[i] {
			t.Errorf("shard %d changed on ingest: %d docs, was %d", i, after[i], before[i])
		}
		// LSM contract: ingest appends a segment; no base is rebuilt.
		if e.Shard(i).Index.NumDocs() != baseBefore[i] {
			t.Errorf("shard %d base rebuilt on ingest: %d docs, was %d",
				i, e.Shard(i).Index.NumDocs(), baseBefore[i])
		}
	}
	if e.Stats().Segments == 0 {
		t.Error("ingest created no segment")
	}
	if e.NumDocs() != mono.Index.NumDocs() {
		t.Fatalf("engine has %d docs after ingest, monolith %d", e.NumDocs(), mono.Index.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(e, q.Keywords, 10), mono.Search(q.Keywords, 10))
	}
	// And again after compaction: merging is invisible to ranking.
	e.ForceMerge()
	if st := e.Stats(); st.Segments != 0 || st.Tombstones != 0 {
		t.Fatalf("ForceMerge left %d segments, %d tombstones", st.Segments, st.Tombstones)
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+" (merged)", searchN(e, q.Keywords, 10), mono.Search(q.Keywords, 10))
	}
}

// TestSuggestAndRelated: the auxiliary search features agree with the
// monolith too — suggestions come from the global vocabulary and related
// documents are ranked with the global statistics.
func TestSuggestAndRelated(t *testing.T) {
	pages, mono := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 4})
	if got, want := e.Suggest("mesi goal"), mono.Suggest("mesi goal"); got != want {
		t.Errorf("Suggest = %q, want %q", got, want)
	}
	if got := e.Suggest("messi goal"); got != "" {
		t.Errorf("Suggest on clean query = %q, want empty", got)
	}
	for _, gid := range []int{0, 7, mono.Index.NumDocs() - 1} {
		assertSameHits(t, fmt.Sprintf("related(%d)", gid), e.Related(gid, 10), mono.Related(gid, 10))
	}
	if hits := e.Related(-1, 10); hits != nil {
		t.Errorf("Related(-1) = %d hits", len(hits))
	}
	if hits := e.Related(1<<30, 10); hits != nil {
		t.Errorf("Related(out of range) = %d hits", len(hits))
	}
}

// TestConcurrentSearchAndIngest backs the engine's concurrency contract
// under -race: many goroutines search while matches are ingested.
func TestConcurrentSearchAndIngest(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:3], Options{Shards: 3})
	queries := []string{"goal", "punishment", "messi barcelona goal", "yellow card"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				searchN(e, q, 10)
				e.Suggest(q)
				e.Related(i%e.NumDocs(), 5)
			}
		}(g)
	}
	for _, p := range pages[3:] {
		wg.Add(1)
		go func(p *crawler.MatchPage) {
			defer wg.Done()
			e.AddPage(p)
		}(p)
	}
	wg.Wait()
	if e.NumDocs() == 0 {
		t.Fatal("engine empty after concurrent ingest")
	}
}

// TestEmptyAndSingle covers the degenerate shapes: no pages, one shard,
// shard count clamping.
func TestEmptyAndSingle(t *testing.T) {
	e := Build(nil, semindex.FullInf, nil, Options{Shards: 0})
	if e.NumShards() != 1 {
		t.Errorf("clamped shards = %d, want 1", e.NumShards())
	}
	if hits := searchN(e, "goal", 10); len(hits) != 0 {
		t.Errorf("empty engine returned %d hits", len(hits))
	}
	if e.Doc(0) != nil {
		t.Error("Doc(0) on empty engine")
	}
}
