package shard

// Version-skew coverage for the snapshot envelope: old files must keep
// loading (v1 envelopes around v1 codec payloads), and files from a
// NEWER build must be refused without being mistaken for damage — no
// quarantine rename, an UNVERIFIABLE fsck verdict rather than DAMAGED.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/semindex"
)

// wrapEnvelopeV1 builds the legacy 8-byte-header envelope around a
// payload, returning the file bytes and the payload CRC the manifest
// must carry.
func wrapEnvelopeV1(payload []byte) ([]byte, uint32) {
	var b bytes.Buffer
	b.WriteString(snapMagic)
	binary.Write(&b, binary.LittleEndian, uint32(snapVersionV1))
	b.Write(payload)
	var tr [snapTrailerLenV2]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(len(payload)))
	sum := crc32.ChecksumIEEE(payload)
	binary.LittleEndian.PutUint32(tr[8:12], sum)
	b.Write(tr[:])
	return b.Bytes(), sum
}

// TestEnvelopeV1SnapshotLoads pins the upgrade path: a snapshot exactly
// as a pre-v2 build wrote it — v1 envelopes, v1 codec payloads, a
// manifest with no codec line — must verify clean and load into an
// engine that searches identically to the one that wrote it.
func TestEnvelopeV1SnapshotLoads(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	base := filepath.Join(t.TempDir(), "idx.bin")
	m := &manifest{Generation: 1, Level: e.level}
	for i, sh := range e.shards {
		var payload bytes.Buffer
		fmt.Fprintf(&payload, "SEMIDX %s\n", sh.Level)
		if err := sh.Index.EncodeV1(&payload); err != nil {
			t.Fatal(err)
		}
		data, sum := wrapEnvelopeV1(payload.Bytes())
		path := shardGenPath(base, 1, i)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m.Files = append(m.Files, manifestEntry{Name: filepath.Base(path), Size: int64(len(data)), CRC: sum})
	}
	if err := writeManifest(base, m); err != nil {
		t.Fatal(err)
	}

	rep := Fsck(base)
	if !rep.OK() {
		t.Fatalf("v1-envelope snapshot failed fsck:\n%s", rep)
	}
	if rep.Codec != 0 {
		t.Errorf("pre-codec manifest reports codec %d, want 0", rep.Codec)
	}
	back, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDocs() != e.NumDocs() {
		t.Fatalf("legacy-envelope load has %d docs, want %d", back.NumDocs(), e.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(back, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
	// Re-saving migrates in place: the next checkpoint is v2 end to end.
	if err := back.Save(base); err != nil {
		t.Fatal(err)
	}
	m2, err := readManifest(base)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Codec != index.CodecVersionCurrent {
		t.Fatalf("re-save recorded codec %d, want %d", m2.Codec, index.CodecVersionCurrent)
	}
}

// TestNewerSnapshotUnverifiableNotDamaged is the forward-compatibility
// contract: a shard file claiming an envelope version or payload codec
// above what this build supports is a version skew, not corruption.
// Load must refuse with ErrSnapshotUnknownVersion and leave the file
// exactly where it is (no *.corrupt rename — quarantining would destroy
// data an upgraded binary reads fine), and fsck must say UNVERIFIABLE,
// not DAMAGED.
func TestNewerSnapshotUnverifiableNotDamaged(t *testing.T) {
	for name, patch := range map[string]func(hdr []byte){
		"newer codec":            func(hdr []byte) { binary.LittleEndian.PutUint32(hdr[8:12], index.CodecVersionCurrent+7) },
		"newer envelope version": func(hdr []byte) { binary.LittleEndian.PutUint32(hdr[4:8], snapVersion+1) },
	} {
		t.Run(name, func(t *testing.T) {
			pages, _ := fixture(t)
			e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
			base := filepath.Join(t.TempDir(), "idx.bin")
			if err := e.Save(base); err != nil {
				t.Fatal(err)
			}
			victim := shardGenPath(base, 1, 1)
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			// The header sits outside the payload CRC, so the patched file
			// is byte-for-byte what a newer build could have written.
			patch(data[:snapHeaderLen])
			if err := os.WriteFile(victim, data, 0o644); err != nil {
				t.Fatal(err)
			}

			rep := Fsck(base)
			if rep.OK() {
				t.Fatalf("fsck called a future-format snapshot OK:\n%s", rep)
			}
			s := rep.String()
			if !strings.Contains(s, "UNVERIFIABLE") || strings.Contains(s, "DAMAGED") {
				t.Fatalf("fsck verdict for a future-format file:\n%s", s)
			}
			unver := 0
			for _, f := range rep.Files {
				if f.Unverifiable {
					unver++
				}
			}
			if unver != 1 {
				t.Fatalf("fsck flagged %d files unverifiable, want 1:\n%s", unver, s)
			}

			if _, err := Load(base, nil); !errors.Is(err, ErrSnapshotUnknownVersion) {
				t.Fatalf("Load returned %v, want ErrSnapshotUnknownVersion", err)
			}
			if _, err := os.Stat(victim + ".corrupt"); !os.IsNotExist(err) {
				t.Error("Load quarantined a future-format file as corrupt")
			}
			if _, err := os.Stat(victim); err != nil {
				t.Errorf("future-format file no longer in place: %v", err)
			}
		})
	}
}

// TestManifestRecordsCodec checks the commit point names the codec its
// payloads were written with, and fsck surfaces it.
func TestManifestRecordsCodec(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	base := filepath.Join(t.TempDir(), "idx.bin")
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(base)
	if err != nil {
		t.Fatal(err)
	}
	if m.Codec != index.CodecVersionCurrent {
		t.Fatalf("manifest codec %d, want %d", m.Codec, index.CodecVersionCurrent)
	}
	want := fmt.Sprintf("codec v%d", index.CodecVersionCurrent)
	if rep := Fsck(base); !strings.Contains(rep.String(), want) {
		t.Errorf("fsck report does not surface %q:\n%s", want, rep)
	}
}
