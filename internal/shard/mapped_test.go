package shard

// Mapped-mode engine tests: LoadWith(Mapped) must serve byte-identical
// rankings to a heap load across every LSM state, survive the full
// merge → Save → reload lifecycle without leaking scratch files or
// mappings, fall back (not fail) on pre-TOC snapshot files, and keep
// exactly the heap path's corruption verdicts.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/semindex"
)

// saveFixture builds a sharded engine from the fixture pages and
// checkpoints it, returning the engine and the snapshot base path.
func saveFixture(t *testing.T, shards int) (*Engine, string) {
	t.Helper()
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: shards})
	base := filepath.Join(t.TempDir(), "idx.bin")
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	return e, base
}

// mapsegFiles lists the merger's scratch segment files under a base.
func mapsegFiles(t *testing.T, base string) []string {
	t.Helper()
	got, err := filepath.Glob(base + ".mapseg*")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestMappedLoadEquivalenceAcrossLSMStates is the mapped ranking gate:
// a mapped load and a heap load of the same snapshot, fed identical
// upsert batches, must return byte-identical rankings — documents,
// scores, tie order — with segments unmerged, mid-merge, and fully
// merged. The heap engine's own equivalence to the monolithic oracle is
// pinned by TestLSMUpsertEquivalenceAcrossMergeStates, so agreeing with
// it closes the chain mapped == heap == monolith.
func TestMappedLoadEquivalenceAcrossLSMStates(t *testing.T) {
	e, base := saveFixture(t, 3)
	pages, _ := fixture(t)

	heap, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if fb := mapped.LoadReport().MappedFallback; len(fb) != 0 {
		t.Fatalf("fresh v3 snapshot fell back to heap on shards %v", fb)
	}
	for s := range mapped.base {
		if mapped.base[s].release == nil {
			t.Fatalf("shard %d base carries no mapping release", s)
		}
	}

	check := func(label string) {
		t.Helper()
		for _, q := range eval.PaperQueries() {
			assertSameHits(t, q.ID+"/"+label, searchN(mapped, q.Keywords, 0), searchN(heap, q.Keywords, 0))
		}
	}

	// Clean load: both twins must also equal the engine that saved them.
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+"/clean", searchN(mapped, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
	check("clean")

	// Upsert batches land as unmerged segments on both twins.
	ctx := context.Background()
	for _, batch := range [][]*crawler.MatchPage{
		{pages[0], pages[3]},
		{pages[1], pages[1]}, // within-batch replacement
	} {
		if _, err := heap.Ingest(ctx, batch, IngestOptions{Merge: MergeNone}); err != nil {
			t.Fatalf("heap Ingest: %v", err)
		}
		if _, err := mapped.Ingest(ctx, batch, IngestOptions{Merge: MergeNone}); err != nil {
			t.Fatalf("mapped Ingest: %v", err)
		}
	}
	if st := mapped.Stats(); st.Segments == 0 || st.Tombstones == 0 {
		t.Fatalf("expected unmerged segments and tombstones, got %+v", st)
	}
	check("segments")

	// Mid-merge: compact one shard on each twin; the rest keep segments.
	heap.mergeShard(0)
	mapped.mergeShard(0)
	check("mid-merge")

	heap.ForceMerge()
	mapped.ForceMerge()
	if st := mapped.Stats(); st.Segments != 0 || st.Tombstones != 0 {
		t.Fatalf("ForceMerge left %d segments, %d tombstones", st.Segments, st.Tombstones)
	}
	check("merged")

	if got, want := mapped.NumDocs(), heap.NumDocs(); got != want {
		t.Fatalf("mapped NumDocs = %d, heap %d", got, want)
	}
}

// TestMappedMergeScratchLifecycle follows a scratch segment cradle to
// grave: a merge on a mapped engine persists its output as a mapped
// scratch file (the base stays mapped instead of reverting to heap),
// and the next Save re-anchors every base on the committed generation
// and retires the scratch. A reload of that checkpoint serves
// identically.
func TestMappedMergeScratchLifecycle(t *testing.T) {
	_, base := saveFixture(t, 2)
	pages, _ := fixture(t)

	mapped, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	heap, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	batch := []*crawler.MatchPage{pages[2], pages[5]}
	if _, err := mapped.Ingest(ctx, batch, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatal(err)
	}
	if _, err := heap.Ingest(ctx, batch, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatal(err)
	}

	mapped.ForceMerge()
	if got := mapsegFiles(t, base); len(got) == 0 {
		t.Fatal("merge on a mapped engine left no scratch segment file")
	}
	scratched := 0
	for s := range mapped.base {
		if mapped.base[s].release == nil {
			t.Errorf("shard %d base lost its mapping after merge", s)
		}
		if mapped.base[s].scratch != "" {
			scratched++
		}
	}
	if scratched == 0 {
		t.Fatal("no base serves from a mapped scratch segment after merge")
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+"/scratch", searchN(mapped, q.Keywords, 10), searchN(heap, q.Keywords, 10))
	}

	// Save retires scratch files and re-anchors bases on the new
	// generation's manifest-named snapshot files.
	if err := mapped.Save(base); err != nil {
		t.Fatal(err)
	}
	if got := mapsegFiles(t, base); len(got) != 0 {
		t.Fatalf("Save left scratch files behind: %v", got)
	}
	for s := range mapped.base {
		if mapped.base[s].scratch != "" {
			t.Errorf("shard %d still anchored on scratch %q after Save", s, mapped.base[s].scratch)
		}
		if mapped.base[s].release == nil {
			t.Errorf("shard %d base not re-anchored mapped after Save", s)
		}
	}
	if rep := Fsck(base); !rep.OK() {
		t.Fatalf("fsck after mapped save:\n%s", rep)
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+"/saved", searchN(mapped, q.Keywords, 10), searchN(heap, q.Keywords, 10))
	}

	back, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if fb := back.LoadReport().MappedFallback; len(fb) != 0 {
		t.Fatalf("checkpoint written by a mapped engine fell back on shards %v", fb)
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+"/reload", searchN(back, q.Keywords, 10), searchN(mapped, q.Keywords, 10))
	}
}

// rewriteAsV2Envelope rewrites a v3 snapshot file as the 12-byte-trailer
// v2 envelope a pre-mapped build would have written: same header magic
// and codec, version 2, TOC stripped. The payload — and therefore the
// manifest CRC — is untouched; only the file size changes.
func rewriteAsV2Envelope(t *testing.T, path string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := data[len(data)-snapTrailerLen:]
	payloadLen := binary.LittleEndian.Uint64(tr[12:20])
	payloadCRC := binary.LittleEndian.Uint32(tr[20:24])
	payload := data[snapHeaderLen : snapHeaderLen+int(payloadLen)]

	var b bytes.Buffer
	b.Write(data[:snapHeaderLen])
	binary.LittleEndian.PutUint32(b.Bytes()[4:8], uint32(snapVersionV2))
	b.Write(payload)
	var v2tr [snapTrailerLenV2]byte
	binary.LittleEndian.PutUint64(v2tr[0:8], payloadLen)
	binary.LittleEndian.PutUint32(v2tr[8:12], payloadCRC)
	b.Write(v2tr[:])
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return int64(b.Len())
}

// TestMappedLoadFallsBackOnV2Envelope pins the version-skew contract: a
// snapshot file written by a pre-TOC build (v2 envelope, no meta
// region) cannot be served mapped, and a mapped load must heap-decode
// that shard — noted in LoadReport.MappedFallback — rather than fail or
// call it damaged.
func TestMappedLoadFallsBackOnV2Envelope(t *testing.T) {
	e, base := saveFixture(t, 3)

	victim := 1
	path := shardGenPath(base, 1, victim)
	newSize := rewriteAsV2Envelope(t, path)
	m, err := readManifest(base)
	if err != nil {
		t.Fatal(err)
	}
	m.Files[victim].Size = newSize
	if err := writeManifest(base, m); err != nil {
		t.Fatal(err)
	}

	mapped, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatalf("mapped load failed on a v2-envelope shard: %v", err)
	}
	defer mapped.Close()
	rep := mapped.LoadReport()
	if len(rep.MappedFallback) != 1 || rep.MappedFallback[0] != victim {
		t.Fatalf("MappedFallback = %v, want exactly shard %d", rep.MappedFallback, victim)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("a TOC-less file was quarantined: %+v", rep.Quarantined)
	}
	if mapped.base[victim].release != nil {
		t.Error("fallback shard still carries a mapping release")
	}
	for s := range mapped.base {
		if s != victim && mapped.base[s].release == nil {
			t.Errorf("shard %d should still be mapped", s)
		}
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(mapped, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
}

// TestMappedLoadCorruptionVerdictParity flips bytes in the payload and
// in the TOC region of one shard file and requires the mapped load to
// reach exactly the heap path's verdict: the shard is quarantined
// (renamed *.corrupt) as DAMAGED — never a panic, never a silently
// wrong index — and the engine serves degraded.
func TestMappedLoadCorruptionVerdictParity(t *testing.T) {
	for name, flip := range map[string]func(data []byte) int{
		"payload": func(data []byte) int { return len(data) / 2 },
		"toc": func(data []byte) int {
			tr := data[len(data)-snapTrailerLen:]
			payloadLen := int(binary.LittleEndian.Uint64(tr[12:20]))
			metaLen := int(binary.LittleEndian.Uint64(tr[0:8]))
			if metaLen == 0 {
				return -1
			}
			return snapHeaderLen + payloadLen + metaLen/2
		},
	} {
		t.Run(name, func(t *testing.T) {
			_, base := saveFixture(t, 3)
			victim := shardGenPath(base, 1, 1)
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			at := flip(data)
			if at < 0 {
				t.Fatal("snapshot has no TOC region to corrupt")
			}
			data[at] ^= 0x40
			if err := os.WriteFile(victim, data, 0o644); err != nil {
				t.Fatal(err)
			}

			mapped, err := LoadWith(base, nil, LoadOptions{Mapped: true})
			if err != nil {
				t.Fatalf("mapped load failed outright on one corrupt shard: %v", err)
			}
			defer mapped.Close()
			rep := mapped.LoadReport()
			if len(rep.Quarantined) != 1 || rep.Quarantined[0].Shard != 1 {
				t.Fatalf("quarantined %+v, want exactly shard 1", rep.Quarantined)
			}
			if !errors.Is(rep.Quarantined[0].Err, ErrSnapshotCorrupt) {
				t.Errorf("quarantine error %v does not wrap ErrSnapshotCorrupt", rep.Quarantined[0].Err)
			}
			if len(rep.MappedFallback) != 0 {
				t.Errorf("corruption misread as a TOC-less fallback: %v", rep.MappedFallback)
			}
			if _, err := os.Stat(victim); !os.IsNotExist(err) {
				t.Error("corrupt shard file was not quarantined away")
			}
			if _, err := mapped.Search(context.Background(), "goal", SearchOptions{Limit: 5}); err != nil {
				t.Fatalf("degraded mapped engine cannot search: %v", err)
			}
		})
	}
}

// TestMappedCloseReleasesMappings: Close must unmap every base region
// exactly once, and a second Close must be harmless.
func TestMappedCloseReleasesMappings(t *testing.T) {
	_, base := saveFixture(t, 2)
	mapped, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := range mapped.base {
		if mapped.base[s].release == nil {
			t.Fatalf("shard %d not mapped before Close", s)
		}
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for s := range mapped.base {
		if mapped.base[s].release != nil {
			t.Errorf("shard %d mapping not released by Close", s)
		}
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMappedSaveIsRawCopy documents the clean-shard fast path: saving a
// mapped engine whose shards are clean re-emits the mapped bytes
// verbatim, so the new generation's files differ from the old only in
// name. (With tombstones or segments, Save compacts first and the bytes
// legitimately change.)
func TestMappedSaveIsRawCopy(t *testing.T) {
	_, base := saveFixture(t, 2)
	mapped, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	gen1 := make([][]byte, mapped.NumShards())
	for s := range gen1 {
		if gen1[s], err = os.ReadFile(shardGenPath(base, 1, s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mapped.Save(base); err != nil {
		t.Fatal(err)
	}
	for s := range gen1 {
		gen2, err := os.ReadFile(shardGenPath(base, 2, s))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gen1[s], gen2) {
			t.Errorf("shard %d: clean mapped re-save changed the file bytes", s)
		}
	}
}

// TestMappedEngineDocAndMeta: identity fields answer from the TOC, and
// full document retrieval (which inflates the stored region lazily)
// returns the same documents as a heap load.
func TestMappedEngineDocAndMeta(t *testing.T) {
	_, base := saveFixture(t, 2)
	heap, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadWith(base, nil, LoadOptions{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if got, want := mapped.NumDocs(), heap.NumDocs(); got != want {
		t.Fatalf("NumDocs = %d, want %d", got, want)
	}
	for gid := 0; gid < heap.NumDocs(); gid++ {
		hd, md := heap.Doc(gid), mapped.Doc(gid)
		if (hd == nil) != (md == nil) {
			t.Fatalf("doc %d: heap nil=%v mapped nil=%v", gid, hd == nil, md == nil)
		}
		if hd == nil {
			continue
		}
		if got, want := md.Get(semindex.MetaMatchID), hd.Get(semindex.MetaMatchID); got != want {
			t.Fatalf("doc %d match ID: mapped %q, heap %q", gid, got, want)
		}
		if got, want := fmt.Sprint(md.Fields), fmt.Sprint(hd.Fields); got != want {
			t.Fatalf("doc %d fields diverge:\nmapped: %s\nheap:   %s", gid, got, want)
		}
	}
}
