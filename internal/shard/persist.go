package shard

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
)

// ShardPath names the file one shard persists to: "<base>.shard000",
// "<base>.shard001", ... next to the monolithic "<base>".
func ShardPath(base string, i int) string {
	return fmt.Sprintf("%s.shard%03d", base, i)
}

// Save persists every shard through the existing semindex codec, one file
// per shard. Global document identity rides inside each file as the
// stored MetaGID field, and the statistics exchange is re-run at load
// time, so no side manifest is needed.
func (e *Engine) Save(base string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i, sh := range e.shards {
		f, err := os.Create(ShardPath(base, i))
		if err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		if err := sh.Save(f); err != nil {
			f.Close()
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Load reconstructs an engine from files written by Save, reading
// "<base>.shard000" onward until the sequence ends. The analyzer must
// match the build-time one (nil = StandardAnalyzer). The global docID
// mapping is rebuilt from the stored MetaGID fields and the statistics
// exchange is repeated, so a loaded engine ranks identically to the
// in-memory engine that was saved — and to the monolithic index.
func Load(base string, analyzer index.Analyzer) (*Engine, error) {
	var shards []*semindex.SemanticIndex
	for i := 0; ; i++ {
		f, err := os.Open(ShardPath(base, i))
		if os.IsNotExist(err) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		si, err := semindex.Load(f, analyzer)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards = append(shards, si)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no shard files at %s", ShardPath(base, 0))
	}
	return fromShards(shards)
}

// fromShards assembles an engine around already-loaded shard indices.
func fromShards(shards []*semindex.SemanticIndex) (*Engine, error) {
	e := &Engine{
		level:   shards[0].Level,
		builder: semindex.NewBuilder(),
		shards:  shards,
		gids:    make([][]int, len(shards)),
		met:     newEngineMetrics(obs.Default, len(shards)),
	}
	total := 0
	for _, sh := range shards {
		if sh.Level != e.level {
			return nil, fmt.Errorf("shard: mixed levels %s and %s", e.level, sh.Level)
		}
		total += sh.Index.NumDocs()
	}
	e.byGID = make([]docRef, total)
	seen := make([]bool, total)
	for s, sh := range shards {
		n := sh.Index.NumDocs()
		e.gids[s] = make([]int, n)
		for local := 0; local < n; local++ {
			gid, err := strconv.Atoi(sh.Index.Doc(local).Get(MetaGID))
			if err != nil || gid < 0 || gid >= total {
				return nil, fmt.Errorf("shard %d doc %d: bad global id %q",
					s, local, sh.Index.Doc(local).Get(MetaGID))
			}
			if seen[gid] {
				return nil, fmt.Errorf("shard %d doc %d: duplicate global id %d", s, local, gid)
			}
			seen[gid] = true
			e.gids[s][local] = gid
			e.byGID[gid] = docRef{shard: s, local: local}
		}
	}
	e.exchangeStats()
	return e, nil
}
