package shard

// Crash-safe persistence for the sharded engine. Three cooperating
// pieces give the kill-at-any-point guarantee:
//
//   - Shard snapshots: each shard's codec stream rides inside a
//     versioned envelope with a CRC32 trailer, written tmp + fsync +
//     rename so a crash never tears a live file.
//   - The manifest (manifest.go): the commit point naming every shard
//     file with its size and checksum, committed last. Load reads only
//     what the manifest names — stale shard files from an earlier,
//     wider save are invisible, fixing the read-until-missing bug where
//     a shrink-then-reload resurrected orphan shards.
//   - The ingest WAL (internal/wal): AddPage batches appended before
//     memory mutates, replayed on Load past the manifest's generation,
//     rotated on Save.
//
// Corruption degrades instead of killing the service: a shard that
// fails verification is quarantined (renamed *.corrupt) and replaced by
// an empty placeholder, the engine starts degraded with the loss named
// in every SearchReport, and Fsck/socindex -verify audits a snapshot
// offline without mutating it.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/crawler"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
	"repro/internal/wal"
)

// Snapshot envelope: magic, version, payload (the semindex codec
// stream), then a trailer of payload length and CRC32. The trailer
// length cross-checks the file size so truncation is caught even when
// the missing suffix would still CRC (it cannot, but belt and braces).
//
// Envelope v2 adds a codec field after the version: the index codec
// number of the payload (index.CodecVersionCurrent at write time).
// Carrying it in the envelope lets recovery and fsck tell "written by a
// newer build" apart from "damaged" without decoding a byte of payload:
// an unknown envelope version or a codec above what this binary
// supports is ErrSnapshotUnknownVersion, never quarantined as corrupt.
//
// Envelope v3 appends a metadata region between the payload and the
// trailer — the payload's mapped table of contents (semindex
// SaveWithTOC) — and widens the trailer to cover it: metaLen u64,
// metaCRC u32, then the v2 trailer shape (payloadLen u64, payloadCRC
// u32). The payload bytes are untouched, the manifest CRC still covers
// the payload alone, and no manifest key changes — version signaling
// rides entirely on the envelope version, so a pre-v3 binary reports a
// v3 snapshot UNVERIFIABLE (newer build) instead of DAMAGED. The TOC is
// what lets LoadWith serve the file memory-mapped in O(manifest) time
// without decoding the payload.
const (
	snapMagic        = "SSNP"
	snapVersionV1    = 1
	snapVersionV2    = 2
	snapVersion      = 3
	snapHeaderLenV1  = 4 + 4
	snapHeaderLen    = 4 + 4 + 4
	snapTrailerLenV2 = 8 + 4
	snapTrailerLen   = 8 + 4 + 8 + 4
)

// ErrSnapshotUnknownVersion reports a shard snapshot written by a newer
// build: its envelope version or payload codec is above what this
// binary understands. The file is not corrupt — quarantining it would
// destroy data an upgraded binary recovers losslessly — so Load refuses
// the snapshot outright and Fsck reports it unverifiable rather than
// damaged.
var ErrSnapshotUnknownVersion = errors.New("shard: snapshot from a newer version")

// ShardPath names the legacy (pre-manifest) file of one shard:
// "<base>.shard000", "<base>.shard001", ... Current saves use
// generation-stamped names (shardGenPath) so a checkpoint never
// overwrites the files the previous manifest still names; this helper
// remains for loading and auditing the legacy layout.
func ShardPath(base string, i int) string {
	return fmt.Sprintf("%s.shard%03d", base, i)
}

// shardGenPath names one shard file of one snapshot generation:
// "<base>.g000002.shard001". Stamping the generation into the name is
// what makes Save crash-safe end to end — the new generation's files
// land under fresh names, so a crash after the renames but before the
// manifest commit leaves the old manifest's files untouched and the old
// snapshot fully recoverable.
func shardGenPath(base string, gen uint64, i int) string {
	return fmt.Sprintf("%s.g%06d.shard%03d", base, gen, i)
}

// Save checkpoints the engine atomically. Every shard is written to a
// temporary file, fsynced and renamed into place; the manifest — the
// commit point — is written last the same way. Only then does the
// attached WAL (if any) rotate to the new generation and stale shard
// files from an earlier, wider save get removed. A crash at any instant
// therefore leaves either the previous snapshot (plus its still-valid
// WAL) or the new one — never a torn mix.
//
// Save refuses to checkpoint a degraded engine (ErrDegraded): writing a
// clean manifest over quarantined shards would make the data loss
// permanent and invisible.
//
// A checkpoint compacts first: every shard's unmerged segments and
// tombstones are folded into its base, so the snapshot is always
// base-only — the WAL rotation then means recovery replays exactly the
// batches ingested after this Save, never ones already merged in. When
// compaction leaves holes in the global ID space (tombstoned documents
// dropped for good), the manifest records the next unused ID so reloads
// keep assigning fresh IDs instead of reusing the holes.
func (e *Engine) Save(base string) error {
	// Same order as mergeShard: the merge-operation lock first, then the
	// engine lock. Holding mergeOpMu means no background merge is mid-
	// flight while the checkpoint compacts and writes.
	e.mergeOpMu.Lock()
	defer e.mergeOpMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.quarantined) > 0 {
		return fmt.Errorf("%w: shards %v", ErrDegraded, e.quarantined)
	}
	e.compactAllLocked()
	newGen := e.gen + 1
	m := &manifest{Generation: newGen, Level: e.level, Codec: index.CodecVersionCurrent}
	if len(e.byGID) != e.liveDocs {
		// Holes: compaction dropped tombstoned documents whose IDs must
		// never be reassigned (rankings tie-break on them).
		m.NextGID = uint64(len(e.byGID))
	}
	if e.wal != nil {
		m.WAL = filepath.Base(WALPath(base))
	}
	for i, sh := range e.shards {
		path := shardGenPath(base, newGen, i)
		sh := sh
		size, sum, err := writeShardFile(path, func(w io.Writer) ([]byte, error) {
			// The TOC captures the identity metadata (global docID, page ID)
			// so a mapped reload rebuilds its ID maps without inflating a
			// single stored document. On an already-mapped base this whole
			// save is a raw byte copy of the mapped region.
			return sh.SaveWithTOC(w, MetaGID, semindex.MetaMatchID)
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		m.Files = append(m.Files, manifestEntry{Name: filepath.Base(path), Size: size, CRC: sum})
	}
	// The renames above must be durable before the manifest can name
	// their targets.
	if err := syncDir(filepath.Dir(ManifestPath(base))); err != nil {
		return err
	}
	if err := writeManifest(base, m); err != nil {
		return err
	}
	e.gen = newGen
	if e.wal != nil {
		// Every record in the log is folded into the snapshot just
		// committed; start the next generation's log.
		if err := e.wal.Rotate(newGen); err != nil {
			return fmt.Errorf("shard: rotating WAL: %w", err)
		}
	}
	if e.mappedBase != "" {
		// A mapped engine re-anchors every base on the generation just
		// committed: the compaction above produced heap bases whose bytes
		// are exactly what landed on disk, so adopting the mapped view
		// frees that heap (and retires any merger scratch files) without
		// changing anything observable. Best-effort per shard — a shard
		// that fails to map simply keeps serving from the heap.
		for i := range e.shards {
			e.adoptMappedBaseLocked(i, filepath.Join(filepath.Dir(base), m.Files[i].Name), m.Files[i])
		}
	}
	removeStaleSnapshotFiles(base, m)
	return nil
}

// compactAllLocked folds every shard's segments and tombstones into its
// base synchronously — the checkpoint-time compaction Save runs so
// snapshots are always base-only. Write lock AND mergeOpMu required (no
// concurrent readers or background merge), so MergeIndexes can read the
// live tombstone bits directly.
func (e *Engine) compactAllLocked() {
	for s := range e.base {
		if len(e.segs[s]) == 0 && e.base[s].si.Index.NumDeleted() == 0 {
			continue
		}
		subs := e.subsLocked(s)
		sources := make([]*index.Index, len(subs))
		for i, sub := range subs {
			sources[i] = sub.si.Index
		}
		merged, remaps := index.MergeIndexes(sources, nil)
		// Heap output even on a mapped engine: Save is about to write the
		// merged bytes and then re-anchor the base on the committed file.
		e.applyMergedLocked(s, subs, merged, remaps, len(e.segs[s]), nil)
	}
}

// writeShardFile writes one enveloped, checksummed shard snapshot via
// tmp + fsync + rename, returning the final file size and payload CRC.
// save writes the payload and returns the envelope's metadata region —
// the payload's mapped TOC (empty is legal; the file just cannot be
// served mapped).
func writeShardFile(path string, save func(io.Writer) ([]byte, error)) (int64, uint32, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [snapHeaderLen]byte
	copy(hdr[:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], index.CodecVersionCurrent)
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return 0, 0, err
	}
	crc := crc32.NewIEEE()
	cw := &countingWriter{}
	meta, err := save(io.MultiWriter(bw, crc, cw))
	if err != nil {
		f.Close()
		return 0, 0, err
	}
	if _, err := bw.Write(meta); err != nil {
		f.Close()
		return 0, 0, err
	}
	var trailer [snapTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(len(meta)))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.ChecksumIEEE(meta))
	binary.LittleEndian.PutUint64(trailer[12:20], uint64(cw.n))
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(trailer[20:24], sum)
	if _, err := bw.Write(trailer[:]); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, 0, err
	}
	return snapHeaderLen + cw.n + int64(len(meta)) + snapTrailerLen, sum, nil
}

// countingWriter counts payload bytes for the envelope trailer.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// readShardFile verifies one snapshot file against its envelope and
// manifest entry and decodes it. Every mismatch — size, magic, version,
// trailer, CRC — wraps ErrSnapshotCorrupt; the caller quarantines.
func readShardFile(path string, analyzer index.Analyzer, want manifestEntry) (*semindex.SemanticIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if st.Size() != want.Size {
		return nil, fmt.Errorf("%w: size %d, manifest says %d", ErrSnapshotCorrupt, st.Size(), want.Size)
	}
	payloadLen, headerLen, _, err := verifyEnvelope(f, st.Size(), want.CRC, false)
	if err != nil {
		return nil, err
	}
	// Decode while checksumming: the codec is defensive against corrupt
	// bytes (it errors, never panics), and the CRC verdict lands before
	// the decoded index is trusted.
	crc := crc32.NewIEEE()
	tee := io.TeeReader(io.NewSectionReader(f, headerLen, payloadLen), crc)
	si, err := semindex.Load(tee, analyzer)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	// Drain whatever the decoder's buffering left unread so the CRC
	// covers the whole payload.
	if _, err := io.Copy(io.Discard, tee); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if got := crc.Sum32(); got != want.CRC {
		return nil, fmt.Errorf("%w: payload CRC %08x, manifest says %08x", ErrSnapshotCorrupt, got, want.CRC)
	}
	return si, nil
}

// errMappedFallback reports a verified snapshot file that cannot be
// served mapped — a pre-v3 envelope or a payload without a TOC (an
// older build wrote it). The caller falls back to the heap decoder;
// this is a capability gap, never damage.
var errMappedFallback = errors.New("shard: snapshot has no mapped TOC")

// readShardFileMapped verifies one snapshot file — envelope, full
// payload CRC, metadata CRC — and opens it memory-mapped: the codec
// stream is served from the file's bytes (postings decoded lazily,
// block by block, stored fields on first hit) instead of being decoded
// onto the heap. Open-time work is O(TOC), not O(postings). The
// returned release func unmaps the region; the caller must not use the
// index after calling it.
func readShardFileMapped(path string, analyzer index.Analyzer, want manifestEntry) (*semindex.SemanticIndex, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if st.Size() != want.Size {
		return nil, nil, fmt.Errorf("%w: size %d, manifest says %d", ErrSnapshotCorrupt, st.Size(), want.Size)
	}
	// Unlike the decode path — whose decoder validates as it reads — the
	// mapped path trusts the bytes for the life of the mapping, so the
	// CRC pass over payload AND metadata happens up front.
	payloadLen, headerLen, metaLen, err := verifyEnvelope(f, st.Size(), want.CRC, true)
	if err != nil {
		return nil, nil, err
	}
	if metaLen == 0 {
		return nil, nil, errMappedFallback
	}
	m, release, err := mapFile(f, st.Size())
	if err != nil {
		return nil, nil, fmt.Errorf("shard: mapping %s: %w", path, err)
	}
	payload := m[headerLen : headerLen+payloadLen]
	toc := m[headerLen+payloadLen : headerLen+payloadLen+metaLen]
	si, err := semindex.OpenMapped(payload, toc, analyzer)
	if err != nil {
		release()
		if errors.Is(err, index.ErrNoTOC) {
			return nil, nil, errMappedFallback
		}
		return nil, nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return si, release, nil
}

// verifyEnvelope checks header magic/version/codec and the trailer's
// length and CRC fields against the file size (and wantCRC), returning
// the payload length, the header length the payload starts after, and
// the metadata-region length (0 for pre-v3 envelopes; the region sits
// between payload and trailer). On v3 the metadata region is always
// CRC-checked; with sumPayload the payload is streamed through CRC32
// too — the decode-free integrity pass Fsck and the mapped loader
// use (the heap loader checksums the payload during decode). An
// envelope version or codec above what this build writes fails with
// ErrSnapshotUnknownVersion (forward compatibility), everything else
// with ErrSnapshotCorrupt.
func verifyEnvelope(f *os.File, size int64, wantCRC uint32, sumPayload bool) (payloadLen, headerLen, metaLen int64, err error) {
	if size < snapHeaderLenV1+snapTrailerLenV2 {
		return 0, 0, 0, fmt.Errorf("%w: %d bytes is shorter than an empty envelope", ErrSnapshotCorrupt, size)
	}
	var hdr [snapHeaderLen]byte
	if _, err := f.ReadAt(hdr[:snapHeaderLenV1], 0); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if string(hdr[:4]) != snapMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, hdr[:4])
	}
	trailerLen := int64(snapTrailerLenV2)
	version := binary.LittleEndian.Uint32(hdr[4:8])
	switch version {
	case snapVersionV1:
		// v1 envelopes predate the codec field; their payloads were all
		// written by the v1 index codec, which Decode still reads.
		headerLen = snapHeaderLenV1
	case snapVersionV2, snapVersion:
		headerLen = snapHeaderLen
		if version == snapVersion {
			trailerLen = snapTrailerLen
		}
		if size < headerLen+trailerLen {
			return 0, 0, 0, fmt.Errorf("%w: %d bytes is shorter than an empty envelope", ErrSnapshotCorrupt, size)
		}
		if _, err := f.ReadAt(hdr[8:12], 8); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		switch codec := binary.LittleEndian.Uint32(hdr[8:12]); {
		case codec == 0:
			return 0, 0, 0, fmt.Errorf("%w: codec 0 in envelope header", ErrSnapshotCorrupt)
		case codec > index.CodecVersionCurrent:
			return 0, 0, 0, fmt.Errorf("%w: payload codec %d, this build reads up to %d",
				ErrSnapshotUnknownVersion, codec, index.CodecVersionCurrent)
		}
	default:
		return 0, 0, 0, fmt.Errorf("%w: envelope version %d, this build reads up to %d",
			ErrSnapshotUnknownVersion, version, snapVersion)
	}
	var trailer [snapTrailerLen]byte
	if _, err := f.ReadAt(trailer[:trailerLen], size-trailerLen); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	var metaCRC uint32
	payloadTrailer := trailer[:snapTrailerLenV2]
	if version == snapVersion {
		metaLen = int64(binary.LittleEndian.Uint64(trailer[0:8]))
		metaCRC = binary.LittleEndian.Uint32(trailer[8:12])
		payloadTrailer = trailer[12:24]
		if metaLen < 0 || metaLen > size-headerLen-trailerLen {
			return 0, 0, 0, fmt.Errorf("%w: trailer claims %d metadata bytes, file holds %d",
				ErrSnapshotCorrupt, metaLen, size-headerLen-trailerLen)
		}
	}
	payloadLen = int64(binary.LittleEndian.Uint64(payloadTrailer[0:8]))
	if payloadLen != size-headerLen-metaLen-trailerLen {
		return 0, 0, 0, fmt.Errorf("%w: trailer claims %d payload bytes, file holds %d",
			ErrSnapshotCorrupt, payloadLen, size-headerLen-metaLen-trailerLen)
	}
	trailerCRC := binary.LittleEndian.Uint32(payloadTrailer[8:12])
	if trailerCRC != wantCRC {
		return 0, 0, 0, fmt.Errorf("%w: trailer CRC %08x, manifest says %08x", ErrSnapshotCorrupt, trailerCRC, wantCRC)
	}
	if sumPayload {
		crc := crc32.NewIEEE()
		if _, err := io.Copy(crc, io.NewSectionReader(f, headerLen, payloadLen)); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		if got := crc.Sum32(); got != wantCRC {
			return 0, 0, 0, fmt.Errorf("%w: payload CRC %08x, manifest says %08x", ErrSnapshotCorrupt, got, wantCRC)
		}
	}
	// The metadata region is small (a block TOC), so it is always
	// verified here — even when the caller streams the payload through
	// its own CRC during decode. Load and Fsck must agree on whether a
	// file is damaged, wherever the flipped byte lands.
	if metaLen > 0 {
		crc := crc32.NewIEEE()
		if _, err := io.Copy(crc, io.NewSectionReader(f, headerLen+payloadLen, metaLen)); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		if got := crc.Sum32(); got != metaCRC {
			return 0, 0, 0, fmt.Errorf("%w: metadata CRC %08x, trailer says %08x", ErrSnapshotCorrupt, got, metaCRC)
		}
	}
	return payloadLen, headerLen, metaLen, nil
}

// removeStaleSnapshotFiles deletes every shard file the just-committed
// manifest does not name: prior generations, legacy numbered files, and
// leftover *.tmp debris. Runs strictly after the manifest commit, so a
// crash before it leaves the previous snapshot whole. Best-effort: Load
// ignores unmanifested files anyway, this just reclaims the space.
func removeStaleSnapshotFiles(base string, m *manifest) {
	live := make(map[string]bool, len(m.Files))
	for _, mf := range m.Files {
		live[mf.Name] = true
	}
	dir := filepath.Dir(base)
	// Merger scratch segments (*.mapseg*) are never manifest-named; any
	// still mapped keep their pages through the unlink (inode semantics),
	// and Save just re-anchored every base on manifest files anyway.
	for _, pattern := range []string{base + ".g*.shard*", base + ".shard*", base + ".mapseg*"} {
		names, err := filepath.Glob(pattern)
		if err != nil {
			continue
		}
		for _, name := range names {
			// Quarantined files are operator evidence, not debris.
			if strings.HasSuffix(name, ".corrupt") || live[filepath.Base(name)] {
				continue
			}
			os.Remove(filepath.Join(dir, filepath.Base(name)))
		}
	}
	os.Remove(ManifestPath(base) + ".tmp")
}

// QuarantinedShard names one snapshot file Load rejected.
type QuarantinedShard struct {
	// Shard is the shard index the file held.
	Shard int
	// File is the quarantined filename (after the *.corrupt rename).
	File string
	// Err is the verification failure, wrapping ErrSnapshotCorrupt.
	Err error
}

// LoadReport describes how a recovery went: the generation restored,
// what was quarantined, and how much WAL tail was replayed.
type LoadReport struct {
	// Generation is the manifest generation the snapshot restored.
	Generation uint64
	// Legacy is true when no manifest existed and the pre-manifest
	// read-until-missing layout was loaded (no checksums, no WAL).
	Legacy bool
	// Quarantined lists the shard files that failed verification and
	// were replaced by empty placeholders. Non-empty means the engine
	// serves degraded.
	Quarantined []QuarantinedShard
	// WALReplayed counts ingest records re-applied from the WAL tail.
	WALReplayed int
	// WALTorn is true when the WAL ended mid-record (the expected crash
	// artifact) and the tear was truncated away.
	WALTorn bool
	// WALGenMismatch is true when a WAL existed but belonged to another
	// snapshot generation and was skipped.
	WALGenMismatch bool
	// MappedFallback lists shards a mapped load (LoadOptions.Mapped) had
	// to heap-decode because their snapshot files carry no mapped TOC —
	// written by a pre-v3 build. Harmless: those shards just serve from
	// the heap until the next Save rewrites them with a TOC.
	MappedFallback []int
}

// Load reconstructs an engine from a Save checkpoint: the manifest is
// read and checksum-verified, each named shard file is verified and
// decoded, and the ingest WAL tail past the manifest's generation is
// replayed (truncating at the first torn record), so the result is
// byte-identical — documents, statistics, rankings — to the engine that
// was saved plus every acknowledged AddPage since.
//
// Corrupt pieces degrade instead of failing where possible: a shard
// file that fails verification is quarantined (renamed *.corrupt) and
// the engine starts without it, serving every remaining shard and
// naming the loss in LoadReport and every SearchReport. A corrupt
// manifest, a WAL record that will not decode, or a snapshot with no
// intact shard at all is unrecoverable and returns a typed error
// (ErrManifestCorrupt, ErrWALCorrupt, ErrSnapshotCorrupt).
//
// Bases saved before the manifest format load through the legacy
// read-until-missing path, without integrity checks.
func Load(base string, analyzer index.Analyzer) (*Engine, error) {
	return LoadWith(base, analyzer, LoadOptions{})
}

// LoadOptions selects how LoadWith materializes shard snapshots.
type LoadOptions struct {
	// Mapped serves each shard directly from its snapshot file's bytes
	// (memory-mapped on linux) instead of decoding it onto the heap:
	// open-time work drops from O(postings) to O(TOC), postings decode
	// lazily block by block as queries touch them, stored fields inflate
	// on the first hit, and the OS pages cold index regions in and out —
	// so the index may exceed RAM. Every integrity check still runs (a
	// full CRC pass over payload and TOC before the bytes are trusted).
	// Rankings are byte-identical to a heap load. Snapshot files written
	// without a TOC (pre-v3 builds) fall back to heap decoding, noted in
	// LoadReport.MappedFallback. Engines loaded mapped should be released
	// with Close.
	Mapped bool
}

// LoadWith is Load with explicit load options.
func LoadWith(base string, analyzer index.Analyzer, opts LoadOptions) (*Engine, error) {
	m, err := readManifest(base)
	if os.IsNotExist(err) {
		return loadLegacy(base, analyzer)
	}
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(base)
	rep := LoadReport{Generation: m.Generation}
	shards := make([]*semindex.SemanticIndex, len(m.Files))
	closers := make([]func() error, len(m.Files))
	var quarantined []int
	intact := 0
	for i, mf := range m.Files {
		path := filepath.Join(dir, mf.Name)
		var si *semindex.SemanticIndex
		var err error
		if opts.Mapped {
			si, closers[i], err = readShardFileMapped(path, analyzer, mf)
			if errors.Is(err, errMappedFallback) {
				rep.MappedFallback = append(rep.MappedFallback, i)
				err = nil
				si = nil
			}
		}
		if si == nil && err == nil {
			si, err = readShardFile(path, analyzer, mf)
		}
		if err == nil && si.Level != m.Level {
			err = fmt.Errorf("%w: level %s, manifest says %s", ErrSnapshotCorrupt, si.Level, m.Level)
		}
		if err != nil {
			if closers[i] != nil {
				closers[i]()
				closers[i] = nil
			}
			if errors.Is(err, ErrSnapshotUnknownVersion) {
				// Not damage: a newer build wrote this file. Renaming it
				// *.corrupt and serving without it would turn a version
				// skew into data loss; refuse the load instead.
				releaseClosers(closers)
				return nil, fmt.Errorf("shard %d (%s): %w", i, mf.Name, err)
			}
			name := quarantine(path)
			quarantined = append(quarantined, i)
			rep.Quarantined = append(rep.Quarantined, QuarantinedShard{Shard: i, File: name, Err: err})
			shards[i] = &semindex.SemanticIndex{Level: m.Level, Index: index.New(analyzer)}
			continue
		}
		shards[i] = si
		intact++
	}
	if intact == 0 {
		releaseClosers(closers)
		return nil, fmt.Errorf("%w: no intact shard among %d at %s", ErrSnapshotCorrupt, len(m.Files), base)
	}
	e, err := fromShards(shards, closers, quarantined, int(m.NextGID))
	if err != nil {
		releaseClosers(closers)
		return nil, err
	}
	if opts.Mapped {
		// Arms the mapped write side: the merger persists compaction
		// output as mapped scratch segments and Save re-anchors bases on
		// the committed generation. Set before serving, read-only after.
		e.mappedBase = base
	}
	e.gen = m.Generation
	e.met.quarantined.Add(uint64(len(quarantined)))

	// Replay the ingest log whether or not the manifest names it: a WAL
	// attached after the snapshot was saved is exactly as authoritative
	// as one that existed at save time, and the generation gate already
	// rejects logs from another snapshot lineage. A missing file is an
	// empty log. Save compacts before rotating, so every record here is a
	// batch ingested after the snapshot — nothing replays twice.
	res, err := wal.Replay(WALPath(base), m.Generation, obs.Default, func(rec []byte) error {
		pages, err := decodeWALRecord(rec)
		if err != nil {
			return err
		}
		e.applyBatch(pages)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.WALReplayed = res.Records
	rep.WALTorn = res.Torn
	rep.WALGenMismatch = res.GenMismatch
	e.loadRep = rep
	return e, nil
}

// decodeWALRecord decodes one ingest log record. Batch records (the
// Ingest path) are JSON arrays of pages; single-object records are the
// legacy one-page AddPage format, kept readable so logs written before
// the batched API replay unchanged.
func decodeWALRecord(rec []byte) ([]*crawler.MatchPage, error) {
	i := 0
	for i < len(rec) && (rec[i] == ' ' || rec[i] == '\t' || rec[i] == '\r' || rec[i] == '\n') {
		i++
	}
	if i < len(rec) && rec[i] == '[' {
		var pages []*crawler.MatchPage
		if err := json.Unmarshal(rec, &pages); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
		}
		return pages, nil
	}
	var page crawler.MatchPage
	if err := json.Unmarshal(rec, &page); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
	}
	return []*crawler.MatchPage{&page}, nil
}

// quarantine moves a rejected snapshot file aside so the next Save (or
// an operator) cannot mistake it for live data, returning the name it
// ended up under. Best-effort: when the rename fails the original name
// is returned and Load simply ignores the file.
func quarantine(path string) string {
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		return filepath.Base(path)
	}
	return filepath.Base(dst)
}

// loadLegacy reads the pre-manifest layout: "<base>.shard000" onward
// until the sequence ends. No integrity verification is possible — the
// format carried no checksums — so this path exists only to load
// snapshots written before the manifest format.
func loadLegacy(base string, analyzer index.Analyzer) (*Engine, error) {
	var shards []*semindex.SemanticIndex
	for i := 0; ; i++ {
		f, err := os.Open(ShardPath(base, i))
		if os.IsNotExist(err) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		si, err := semindex.Load(f, analyzer)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards = append(shards, si)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no manifest and no shard files at %s", base)
	}
	e, err := fromShards(shards, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	e.loadRep = LoadReport{Legacy: true}
	return e, nil
}

// releaseClosers unmaps whatever a failed mapped load already mapped.
func releaseClosers(closers []func() error) {
	for _, c := range closers {
		if c != nil {
			c()
		}
	}
}

// fromShards assembles an engine around already-loaded shard indices
// (which become the shards' bases — snapshots are always base-only).
// closers, when non-nil, carries each shard's mapped-region release
// func (nil entries for heap-decoded shards); the engine owns them from
// here and releases them on Close or when a merge retires the base.
// quarantined lists shard slots holding empty placeholders for files
// Load rejected; with quarantined slots the global docID space keeps
// the holes the lost documents occupied (Doc returns nil for them)
// instead of silently renumbering the survivors. nextGID, when > 0, is
// the manifest's recorded next unused global ID: the snapshot's ID
// space legitimately has holes (compacted tombstones), and new ingests
// must start numbering there.
func fromShards(shards []*semindex.SemanticIndex, closers []func() error, quarantined []int, nextGID int) (*Engine, error) {
	e := newEngine(shards[0].Level, semindex.NewBuilder(), len(shards))
	e.shards = shards
	e.quarantined = append([]int(nil), quarantined...)
	sort.Ints(e.quarantined)
	total := 0
	maxGID := -1
	parsed := make([][]int, len(shards))
	for s, sh := range shards {
		if sh.Level != e.level {
			return nil, fmt.Errorf("shard: mixed levels %s and %s", e.level, sh.Level)
		}
		n := sh.Index.NumDocs()
		total += n
		parsed[s] = make([]int, n)
		for local := 0; local < n; local++ {
			// DocMeta answers from the mapped TOC when there is one — the
			// ID maps rebuild without inflating a single stored document,
			// which is what keeps a mapped load O(TOC), not O(corpus).
			gid, err := strconv.Atoi(sh.Index.DocMeta(local, MetaGID))
			if err != nil || gid < 0 {
				return nil, fmt.Errorf("shard %d doc %d: bad global id %q",
					s, local, sh.Index.DocMeta(local, MetaGID))
			}
			parsed[s][local] = gid
			if gid > maxGID {
				maxGID = gid
			}
		}
	}
	switch {
	case nextGID > 0:
		// The manifest vouches for holes below nextGID; an ID at or above
		// it still means missing documents.
		if maxGID >= nextGID {
			return nil, fmt.Errorf("shard: global id %d outside recorded id space %d", maxGID, nextGID)
		}
	case len(e.quarantined) == 0 && maxGID >= total:
		// A complete hole-free snapshot must use exactly the IDs
		// 0..total-1; a larger ID means a document went missing without a
		// quarantine or a nextgid record to explain it.
		return nil, fmt.Errorf("shard: global id %d outside %d documents", maxGID, total)
	}
	if maxGID+1 > total {
		total = maxGID + 1
	}
	if nextGID > total {
		total = nextGID
	}
	e.byGID = make([]docRef, total)
	for i := range e.byGID {
		e.byGID[i] = docRef{shard: -1}
	}
	seen := make([]bool, total)
	live := 0
	for s := range shards {
		e.base[s] = &subIndex{si: shards[s], gids: parsed[s]}
		if closers != nil {
			e.base[s].release = closers[s]
		}
		for local, gid := range parsed[s] {
			if seen[gid] {
				return nil, fmt.Errorf("shard %d doc %d: duplicate global id %d", s, local, gid)
			}
			seen[gid] = true
			e.byGID[gid] = docRef{sub: e.base[s], shard: s, local: local}
			live++
		}
	}
	e.liveDocs = live
	// Rebuild the page -> live-documents map Ingest's upsert path
	// consults, in ascending global ID order (documents of one page are
	// contiguous, so per-page order is preserved).
	for gid := 0; gid < total; gid++ {
		ref := e.byGID[gid]
		if ref.sub == nil {
			continue
		}
		if pid := ref.sub.si.Index.DocMeta(ref.local, semindex.MetaMatchID); pid != "" {
			e.pageGIDs[pid] = append(e.pageGIDs[pid], gid)
		}
	}
	e.exchangeStats()
	return e, nil
}

// AttachWAL opens (or creates) the ingest write-ahead log for base and
// arms AddPage's append-before-mutate path. Call after Load — the log
// then continues right after the records Load just replayed — or after
// Build+Save for a fresh engine. A log left by another snapshot
// generation is reset, since its records belong to a different lineage.
func (e *Engine) AttachWAL(base string, opts wal.Options) error {
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		return errors.New("shard: WAL already attached")
	}
	l, err := wal.Open(WALPath(base), e.gen, opts)
	if err != nil {
		return err
	}
	e.wal = l
	return nil
}

// CloseWAL syncs and detaches the ingest log (no-op when none is
// attached). Call on shutdown after the final checkpoint.
func (e *Engine) CloseWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil
	}
	err := e.wal.Close()
	e.wal = nil
	return err
}

// FsckFile is one file's verdict in an Fsck report.
type FsckFile struct {
	Name string
	Size int64
	CRC  uint32
	OK   bool
	// Unverifiable marks a file this build cannot audit — an envelope
	// version or payload codec from a newer build. Distinct from a
	// failed verdict: the file may be perfectly intact.
	Unverifiable bool
	// Mapped reports whether the file carries the envelope metadata
	// region (the codec TOC) that lets LoadOptions{Mapped} serve it
	// straight from its bytes. A v2-envelope file is intact but not
	// mapped-servable; it heap-decodes until the next Save rewrites it.
	Mapped bool
	// Detail explains a failed or unverifiable verdict.
	Detail string
}

// FsckReport is the offline integrity audit of one snapshot base:
// manifest, every named shard file, and the WAL. Read-only — unlike
// Load it neither quarantines nor truncates.
type FsckReport struct {
	Base       string
	Generation uint64
	Level      string
	// Codec is the index codec the manifest records for the snapshot's
	// payloads (0 when the manifest predates codec tracking).
	Codec      uint32
	Legacy     bool
	Files      []FsckFile
	WAL        string
	WALRecords int
	WALTorn    bool
	WALGenOK   bool
	WALDetail  string
	// Errs collects base-level problems (corrupt manifest, nothing to
	// verify). Empty Errs plus all-OK files and an un-torn WAL means
	// the snapshot recovers completely.
	Errs []string
}

// OK reports whether recovery from this snapshot would be complete: no
// base errors, every file intact, no WAL tear. A legacy layout is never
// OK — it carries no checksums, so nothing can be attested.
func (r *FsckReport) OK() bool {
	if len(r.Errs) > 0 || r.WALTorn || r.Legacy {
		return false
	}
	for _, f := range r.Files {
		if !f.OK {
			return false
		}
	}
	return true
}

// unverifiableOnly reports whether every failure in the report is a
// file this build cannot read (newer envelope or codec) rather than
// actual damage — the forward-compatibility verdict.
func (r *FsckReport) unverifiableOnly() bool {
	if len(r.Errs) > 0 || r.WALTorn {
		return false
	}
	any := false
	for _, f := range r.Files {
		if !f.OK {
			if !f.Unverifiable {
				return false
			}
			any = true
		}
	}
	return any
}

// String renders the fsck verdicts, one line per artifact.
func (r *FsckReport) String() string {
	codec := ""
	if r.Codec != 0 {
		codec = fmt.Sprintf(", codec v%d", r.Codec)
	}
	out := fmt.Sprintf("fsck %s: generation %d, level %s%s, %d shard file(s)\n",
		r.Base, r.Generation, r.Level, codec, len(r.Files))
	if r.Legacy {
		out += "  manifest: MISSING (legacy layout, no integrity metadata)\n"
	}
	for _, f := range r.Files {
		switch {
		case f.OK:
			storage := "heap-only"
			if f.Mapped {
				storage = "mapped"
			}
			out += fmt.Sprintf("  %-28s OK   %9d bytes crc32 %08x  %s\n", f.Name, f.Size, f.CRC, storage)
		case f.Unverifiable:
			out += fmt.Sprintf("  %-28s UNVERIFIABLE  %s\n", f.Name, f.Detail)
		default:
			out += fmt.Sprintf("  %-28s BAD  %s\n", f.Name, f.Detail)
		}
	}
	if r.WAL != "" {
		state := "clean"
		if r.WALTorn {
			state = "TORN TAIL (recovery truncates here)"
		}
		if !r.WALGenOK {
			state = "stale generation (ignored by recovery)"
		}
		out += fmt.Sprintf("  %-28s %d record(s), %s\n", r.WAL, r.WALRecords, state)
		if r.WALDetail != "" {
			out += fmt.Sprintf("    %s\n", r.WALDetail)
		}
	}
	for _, e := range r.Errs {
		out += fmt.Sprintf("  ERROR: %s\n", e)
	}
	switch {
	case r.OK():
		out += "  verdict: OK — recovery is complete and loss-free\n"
	case r.Legacy && len(r.Errs) == 0:
		out += "  verdict: UNVERIFIABLE — legacy layout carries no checksums; re-save to upgrade\n"
	case r.unverifiableOnly():
		out += "  verdict: UNVERIFIABLE — snapshot written by a newer build; upgrade this binary to verify\n"
	default:
		out += "  verdict: DAMAGED — recovery will degrade or truncate\n"
	}
	return out
}

// Fsck audits a snapshot base offline: manifest checksum, every shard
// file's envelope and payload CRC, and the WAL's record chain. It never
// mutates anything, so it is safe against a base another process
// serves from.
func Fsck(base string) *FsckReport {
	rep := &FsckReport{Base: base}
	m, err := readManifest(base)
	if os.IsNotExist(err) {
		rep.Legacy = true
		for i := 0; ; i++ {
			st, err := os.Stat(ShardPath(base, i))
			if err != nil {
				break
			}
			rep.Files = append(rep.Files, FsckFile{
				Name: filepath.Base(ShardPath(base, i)), Size: st.Size(),
				OK: true, Unverifiable: true,
				Detail: "unverifiable (no checksums in legacy layout)",
			})
		}
		if len(rep.Files) == 0 {
			rep.Errs = append(rep.Errs, "no manifest and no shard files")
		}
		return rep
	}
	if err != nil {
		rep.Errs = append(rep.Errs, err.Error())
		return rep
	}
	rep.Generation = m.Generation
	rep.Level = string(m.Level)
	rep.Codec = m.Codec
	dir := filepath.Dir(base)
	for _, mf := range m.Files {
		ff := FsckFile{Name: mf.Name, Size: mf.Size, CRC: mf.CRC}
		f, err := os.Open(filepath.Join(dir, mf.Name))
		if err != nil {
			ff.Detail = err.Error()
			rep.Files = append(rep.Files, ff)
			continue
		}
		st, err := f.Stat()
		if err == nil && st.Size() != mf.Size {
			err = fmt.Errorf("%w: size %d, manifest says %d", ErrSnapshotCorrupt, st.Size(), mf.Size)
		}
		if err == nil {
			var metaLen int64
			_, _, metaLen, err = verifyEnvelope(f, st.Size(), mf.CRC, true)
			ff.Mapped = err == nil && metaLen > 0
		}
		f.Close()
		if err != nil {
			ff.Detail = err.Error()
			ff.Unverifiable = errors.Is(err, ErrSnapshotUnknownVersion)
		} else {
			ff.OK = true
		}
		rep.Files = append(rep.Files, ff)
	}
	// Audit the ingest log whenever one sits next to the snapshot, named
	// by the manifest or attached later — recovery replays it either way.
	rep.WALGenOK = true
	if _, err := os.Stat(WALPath(base)); err == nil {
		rep.WAL = filepath.Base(WALPath(base))
		res, err := wal.Scan(WALPath(base), int64(m.Generation))
		rep.WALRecords = res.Records
		rep.WALTorn = res.Torn
		rep.WALGenOK = !res.GenMismatch
		if err != nil {
			rep.WALDetail = err.Error()
			rep.Errs = append(rep.Errs, fmt.Sprintf("wal: %v", err))
		}
	}
	return rep
}
