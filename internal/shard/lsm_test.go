package shard

// LSM ingest tests: ranking equivalence across every merge state
// (including upserts and within-batch replacement), scoped cache
// invalidation, batched WAL replay, and checkpointing mid-LSM-state.

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/semindex"
	"repro/internal/wal"
)

// monoOracle is a monolithic replay oracle for upsert sequences: it
// applies the same page-level operations the engine applies — tombstone
// the page's previous documents, append the new version at the end of
// the ID space — and rescoreses from tombstone-aware statistics after
// every step. Its docIDs therefore equal the engine's global IDs, and
// its ranking is what a from-scratch build over the live documents
// would produce.
type monoOracle struct {
	b      *semindex.Builder
	si     *semindex.SemanticIndex
	byPage map[string][]int
}

func newMonoOracle(pages []*crawler.MatchPage) *monoOracle {
	o := &monoOracle{b: semindex.NewBuilder(), byPage: map[string][]int{}}
	o.si = o.b.Build(semindex.FullInf, pages)
	for id := 0; id < o.si.Index.NumDocs(); id++ {
		pid := o.si.Index.Doc(id).Get(semindex.MetaMatchID)
		o.byPage[pid] = append(o.byPage[pid], id)
	}
	o.refresh()
	return o
}

func (o *monoOracle) refresh() {
	o.si.Index.SetCorpusStats(o.si.Index.LocalStats())
}

// update replays one page upsert: delete the previous version, append
// the new one.
func (o *monoOracle) update(page *crawler.MatchPage) {
	for _, id := range o.byPage[page.ID] {
		o.si.Index.Delete(id)
	}
	before := o.si.Index.NumDocs()
	o.b.AddPage(o.si, page)
	ids := make([]int, 0, o.si.Index.NumDocs()-before)
	for id := before; id < o.si.Index.NumDocs(); id++ {
		ids = append(ids, id)
	}
	o.byPage[page.ID] = ids
	o.refresh()
}

// TestLSMUpsertEquivalenceAcrossMergeStates is the extended ranking
// gate: after upserts (including a page repeated within one batch), the
// engine's full ranking — documents, scores, tie order — must equal the
// from-scratch oracle with segments unmerged, with only some shards
// merged, and fully merged.
func TestLSMUpsertEquivalenceAcrossMergeStates(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	oracle := newMonoOracle(pages)
	ctx := context.Background()

	check := func(label string) {
		t.Helper()
		for _, q := range eval.PaperQueries() {
			assertSameHits(t, q.ID+"/"+label, searchN(e, q.Keywords, 0), oracle.si.Search(q.Keywords, 0))
		}
	}

	// Batch 1: replace two pages in one atomic batch.
	if _, err := e.Ingest(ctx, []*crawler.MatchPage{pages[0], pages[3]}, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	oracle.update(pages[0])
	oracle.update(pages[3])
	check("one-segment")

	// Batch 2: the same page twice within one batch — the second
	// occurrence must replace the first (within-batch tombstoning).
	if _, err := e.Ingest(ctx, []*crawler.MatchPage{pages[1], pages[1]}, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	oracle.update(pages[1])
	oracle.update(pages[1])
	if st := e.Stats(); st.Segments == 0 || st.Tombstones == 0 {
		t.Fatalf("expected unmerged segments and tombstones, got %+v", st)
	}
	check("two-segments")

	// Mid-merge: compact one shard only; the others keep their segments.
	e.mergeShard(0)
	check("mid-merge")

	e.ForceMerge()
	if st := e.Stats(); st.Segments != 0 || st.Tombstones != 0 {
		t.Fatalf("ForceMerge left %d segments, %d tombstones", st.Segments, st.Tombstones)
	}
	check("merged")

	// Live doc count: every upsert replaced documents 1:1, so the count
	// must equal the oracle's live documents throughout.
	if got, want := e.NumDocs(), oracle.si.Index.LiveDocs(); got != want {
		t.Fatalf("NumDocs = %d, oracle %d", got, want)
	}
}

// TestNumDocsCountsSegmentDocs is the regression test for the
// visibility bug: documents sitting in not-yet-merged segments must be
// counted by NumDocs and Stats the moment Ingest returns.
func TestNumDocsCountsSegmentDocs(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages[:4], Options{Shards: 3})
	before := e.NumDocs()
	res, err := e.Ingest(context.Background(), []*crawler.MatchPage{pages[4], pages[5]}, IngestOptions{Merge: MergeNone})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Docs == 0 || res.Segment == 0 {
		t.Fatalf("batch committed nothing: %+v", res)
	}
	if st := e.Stats(); st.Segments == 0 {
		t.Fatal("batch produced no segment — the regression premise is gone")
	}
	if got, want := e.NumDocs(), before+res.Docs; got != want {
		t.Errorf("NumDocs = %d before merge, want %d (segment docs invisible)", got, want)
	}
	if st := e.Stats(); st.Docs != before+res.Docs {
		t.Errorf("Stats.Docs = %d before merge, want %d", st.Docs, before+res.Docs)
	}
	sum := 0
	for _, ps := range e.Stats().PerShard {
		sum += ps.Docs
	}
	if sum != before+res.Docs {
		t.Errorf("sum of PerShard docs = %d, want %d", sum, before+res.Docs)
	}
}

// scopedFixture finds a (query, page) pair where the query's statistics
// footprint has no postings on the page's owner shard — the setup where
// scoped invalidation can prove a cached answer survives the write.
func scopedFixture(t *testing.T, e *Engine, pages []*crawler.MatchPage) (string, *crawler.MatchPage) {
	t.Helper()
	var cands []string
	for _, p := range pages {
		for _, lines := range p.Lineups {
			for _, pl := range lines {
				cands = append(cands, strings.ToLower(pl.Short))
			}
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, p := range pages {
		s := shardFor(p.ID, len(e.base))
		for _, q := range cands {
			fp, ok := e.shards[0].QueryFootprint(q)
			if !ok || len(fp) == 0 {
				continue
			}
			if !e.shardHasAnyLocked(s, fp) {
				return q, p
			}
		}
	}
	t.Fatal("fixture has no shard-local query term; enlarge the corpus")
	return "", nil
}

// TestScopedInvalidationKeepsDisjointEntries is the scoped-invalidation
// unit test: a write to shard S evicts exactly the cached answers whose
// shard-set or statistics it could touch. A query with no footprint on
// S stays a HIT across the write; a query matching the written page
// itself misses and recomputes; every answer equals a cold scatter.
func TestScopedInvalidationKeepsDisjointEntries(t *testing.T) {
	pages, _ := fixture(t)
	ctx := context.Background()
	build := func() *Engine {
		e := Build(nil, semindex.FullInf, pages, Options{Shards: 4})
		e.EnableCache(1<<20, obs.NewRegistry())
		e.SetMetrics(obs.NewRegistry())
		return e
	}

	e := build()
	disjoint, target := scopedFixture(t, e, pages)
	// A query matching the target page itself — its shard-set contains
	// the written shard, so the write must evict it.
	var touching string
	for _, lines := range target.Lineups {
		for _, pl := range lines {
			touching = strings.ToLower(pl.Short)
			break
		}
		break
	}

	warm := func(eng *Engine, q string) {
		t.Helper()
		for i := 0; i < 2; i++ {
			if _, err := eng.Search(ctx, q, SearchOptions{Limit: 10}); err != nil {
				t.Fatal(err)
			}
		}
	}
	status := func(eng *Engine, q string) CacheStatus {
		t.Helper()
		res, err := eng.Search(ctx, q, SearchOptions{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := eng.Search(ctx, q, SearchOptions{Limit: 10, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameHits(t, q+" vs cold", res.Hits, cold.Hits)
		return res.Cache
	}

	warm(e, disjoint)
	warm(e, touching)
	// Re-ingest the target page unchanged: only its owner shard's epoch
	// moves, and the corpus statistics net out to exactly their old
	// values.
	res, err := e.Ingest(ctx, []*crawler.MatchPage{target}, IngestOptions{Merge: MergeNone})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Tombstones == 0 {
		t.Fatalf("re-ingest tombstoned nothing: %+v", res)
	}
	if got := status(e, disjoint); got != CacheHit {
		t.Errorf("disjoint query after scoped write: %s, want %s", got, CacheHit)
	}
	if got := status(e, touching); got != CacheMiss {
		t.Errorf("touching query after scoped write: %s, want %s", got, CacheMiss)
	}
	// A second disjoint write: the entry's refreshed epochs must keep it
	// valid, not just the first time.
	if _, err := e.Ingest(ctx, []*crawler.MatchPage{target}, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if got := status(e, disjoint); got != CacheHit {
		t.Errorf("disjoint query after second scoped write: %s, want %s", got, CacheHit)
	}

	// Legacy arm: with scoping off, the same write evicts everything.
	legacy := build()
	legacy.SetScopedInvalidation(false)
	warm(legacy, disjoint)
	if _, err := legacy.Ingest(ctx, []*crawler.MatchPage{target}, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if got := status(legacy, disjoint); got != CacheMiss {
		t.Errorf("disjoint query after unscoped write: %s, want %s", got, CacheMiss)
	}
}

// TestMergeInvisibleToCache: compaction changes nothing observable, so
// cached answers survive a merge byte-identically.
func TestMergeInvisibleToCache(t *testing.T) {
	pages, _ := fixture(t)
	ctx := context.Background()
	e := Build(nil, semindex.FullInf, pages[:4], Options{Shards: 3})
	e.EnableCache(1<<20, obs.NewRegistry())
	e.SetMetrics(obs.NewRegistry())
	if _, err := e.Ingest(ctx, []*crawler.MatchPage{pages[4], pages[0]}, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	for _, q := range eval.PaperQueries() {
		if _, err := e.Search(ctx, q.Keywords, SearchOptions{Limit: 10}); err != nil {
			t.Fatal(err)
		}
	}
	e.ForceMerge()
	for _, q := range eval.PaperQueries() {
		res, err := e.Search(ctx, q.Keywords, SearchOptions{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache != CacheHit {
			t.Errorf("%s after merge: %s, want %s", q.ID, res.Cache, CacheHit)
		}
		cold, err := e.Search(ctx, q.Keywords, SearchOptions{Limit: 10, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameHits(t, q.ID+" post-merge", res.Hits, cold.Hits)
	}
}

// TestIngestDurabilityAndAtomicityOptions exercises the IngestOptions
// surface: durability acknowledgement levels and the per-page WAL
// layout.
func TestIngestDurabilityAndAtomicityOptions(t *testing.T) {
	pages, _ := fixture(t)
	ctx := context.Background()
	base := filepath.Join(t.TempDir(), "idx.bin")
	e := Build(nil, semindex.FullInf, pages[:3], Options{Shards: 2})
	if err := e.Save(base); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := e.AttachWAL(base, wal.Options{Policy: wal.SyncAlways}); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	res, err := e.Ingest(ctx, []*crawler.MatchPage{pages[3]}, IngestOptions{Durability: DurSync})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Durability != "synced" {
		t.Errorf("DurSync ack = %q, want synced", res.Durability)
	}
	res, err = e.Ingest(ctx, []*crawler.MatchPage{pages[4]}, IngestOptions{Durability: DurAsync})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Durability != "buffered" {
		t.Errorf("DurAsync ack = %q, want buffered", res.Durability)
	}
	res, err = e.Ingest(ctx, []*crawler.MatchPage{pages[5], pages[0]}, IngestOptions{Atomicity: PerPage})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Pages != 2 || res.Durability != "logged" {
		t.Errorf("PerPage batch: %+v", res)
	}
	// A cancelled context refuses before committing anything.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Ingest(cctx, []*crawler.MatchPage{pages[1]}, IngestOptions{}); err == nil {
		t.Error("Ingest accepted a cancelled context")
	}

	// All three ingests (one record each for atomic + sync/async, two for
	// per-page) replay on a cold load into the same live corpus.
	e2, err := Load(base, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got, want := e2.LoadReport().WALReplayed, 4; got != want {
		t.Errorf("replayed %d records, want %d", got, want)
	}
	if e2.NumDocs() != e.NumDocs() {
		t.Fatalf("reloaded %d docs, want %d", e2.NumDocs(), e.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+"/replayed", searchN(e2, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
}

// TestSaveLoadMidLSMState: a checkpoint taken with live segments,
// tombstones and ID-space holes compacts, records the next global ID in
// the manifest, and reloads byte-identically — with upserts continuing
// to work (pageGIDs rebuilt) and fresh IDs never reusing the holes.
func TestSaveLoadMidLSMState(t *testing.T) {
	pages, _ := fixture(t)
	ctx := context.Background()
	base := filepath.Join(t.TempDir(), "idx.bin")
	e := Build(nil, semindex.FullInf, pages[:5], Options{Shards: 3})
	// An upsert and an append, left unmerged: the save must compact and
	// leave holes where pages[0]'s first version sat.
	if _, err := e.Ingest(ctx, []*crawler.MatchPage{pages[0], pages[5]}, IngestOptions{Merge: MergeNone}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	gidSpace := len(e.byGID)
	if err := e.Save(base); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if st := e.Stats(); st.Segments != 0 || st.Tombstones != 0 {
		t.Fatalf("Save left LSM state: %+v", st)
	}
	m, err := readManifest(base)
	if err != nil {
		t.Fatalf("readManifest: %v", err)
	}
	if m.NextGID != uint64(gidSpace) {
		t.Fatalf("manifest nextgid = %d, want %d", m.NextGID, gidSpace)
	}
	if rep := Fsck(base); !rep.OK() {
		t.Fatalf("fsck after mid-state save:\n%s", rep)
	}

	e2, err := Load(base, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if e2.NumDocs() != e.NumDocs() {
		t.Fatalf("reloaded %d docs, want %d", e2.NumDocs(), e.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+"/reloaded", searchN(e2, q.Keywords, 0), searchN(e, q.Keywords, 0))
	}
	// Fresh IDs continue after the recorded space on both engines, and a
	// reloaded upsert still tombstones the page's loaded documents.
	res2, err := e2.Ingest(ctx, []*crawler.MatchPage{pages[0]}, IngestOptions{})
	if err != nil {
		t.Fatalf("Ingest after load: %v", err)
	}
	if res2.Tombstones == 0 {
		t.Fatal("reloaded engine lost the page -> documents map (no tombstones on upsert)")
	}
	if _, err := e.Ingest(ctx, []*crawler.MatchPage{pages[0]}, IngestOptions{}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if got, want := len(e2.byGID), len(e.byGID); got != want {
		t.Fatalf("ID space diverged after reload: %d vs %d", got, want)
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID+"/post-reload-upsert", searchN(e2, q.Keywords, 0), searchN(e, q.Keywords, 0))
	}
}

// TestDocStatsRemoveExactness pins the statistics arithmetic the whole
// design rests on: removing a document's stats from a corpus view must
// leave exactly the view a from-scratch recompute over the remaining
// documents produces — term-for-term, integer-for-integer.
func TestDocStatsRemoveExactness(t *testing.T) {
	pages, _ := fixture(t)
	b := semindex.NewBuilder()
	si := b.Build(semindex.FullInf, pages[:2])
	ix := si.Index

	got := ix.LocalStats()
	for id := 0; id < ix.NumDocs(); id += 2 {
		got.Remove(ix.DocStats(id))
		ix.Delete(id)
	}
	want := ix.LocalStats() // tombstone-aware recompute

	if got.Docs != want.Docs {
		t.Fatalf("Docs = %d, want %d", got.Docs, want.Docs)
	}
	if len(got.Fields) != len(want.Fields) {
		t.Fatalf("%d fields, want %d", len(got.Fields), len(want.Fields))
	}
	for name, wfs := range want.Fields {
		gfs := got.Fields[name]
		if gfs == nil {
			t.Fatalf("field %q missing after Remove", name)
		}
		if gfs.Docs != wfs.Docs || gfs.SumLen != wfs.SumLen {
			t.Errorf("field %q: docs/sumLen %d/%d, want %d/%d", name, gfs.Docs, gfs.SumLen, wfs.Docs, wfs.SumLen)
		}
		if len(gfs.DocFreq) != len(wfs.DocFreq) {
			t.Errorf("field %q: %d terms, want %d", name, len(gfs.DocFreq), len(wfs.DocFreq))
		}
		for term, df := range wfs.DocFreq {
			if gfs.DocFreq[term] != df {
				t.Errorf("df(%s,%s) = %d, want %d", name, term, gfs.DocFreq[term], df)
			}
		}
	}
	_ = index.FieldTerm{} // keep the import honest if assertions above change
}
