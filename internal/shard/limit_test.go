package shard

import (
	"context"
	"testing"

	"repro/internal/semindex"
)

// TestSearchNegativeLimitNormalized pins the limit<=0 contract: every
// non-positive limit means "all matches" and is normalized before the
// scatter and the cache key, so limit -1 and limit 0 are the same query.
func TestSearchNegativeLimitNormalized(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	const q = "goal by player"

	all := searchN(e, q, 0)
	if len(all) == 0 {
		t.Fatal("fixture query matched nothing")
	}
	for _, limit := range []int{-1, -100} {
		assertSameHits(t, "negative limit", searchN(e, q, limit), all)
	}
}

// TestCacheKeyStableAcrossNegativeLimits asserts the normalization reaches
// the query cache: a limit 0 miss fills the entry that limits -1 and -7
// then hit — one cache slot per query, not one per spelling of "all".
func TestCacheKeyStableAcrossNegativeLimits(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2, CacheBytes: 1 << 20})
	const q = "corner kick"

	res, err := e.Search(context.Background(), q, SearchOptions{Limit: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheMiss {
		t.Fatalf("first call: cache %q, want miss", res.Cache)
	}
	for _, limit := range []int{-1, -7} {
		got, err := e.Search(context.Background(), q, SearchOptions{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cache != CacheHit {
			t.Errorf("limit %d: cache %q, want hit", limit, got.Cache)
		}
		assertSameHits(t, "cached negative limit", got.Hits, res.Hits)
	}
}

// TestSetExhaustiveScoringEquivalence flips every shard to the
// term-at-a-time path and back, asserting the answer — documents, scores,
// order — never changes. This is the engine-level face of the kernel's
// DAAT-equals-exhaustive contract.
func TestSetExhaustiveScoringEquivalence(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	queries := []string{"goal by player", "yellow card", "corner", "free kick save"}
	for _, q := range queries {
		for _, limit := range []int{0, 1, 10} {
			pruned := searchN(e, q, limit)
			e.SetExhaustiveScoring(true)
			exhaustive := searchN(e, q, limit)
			e.SetExhaustiveScoring(false)
			assertSameHits(t, q, pruned, exhaustive)
		}
	}
}

// BenchmarkEngineColdSearch times the full cold scatter at limit 10 on
// both scoring paths — the in-package twin of socbench -mode coldpath.
func BenchmarkEngineColdSearch(b *testing.B) {
	pages, _ := fixture(b)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 4})
	queries := []string{"goal by player", "yellow card", "corner", "free kick save"}
	for _, arm := range []struct {
		name       string
		exhaustive bool
	}{{"Pruned", false}, {"Exhaustive", true}} {
		b.Run(arm.name, func(b *testing.B) {
			e.SetExhaustiveScoring(arm.exhaustive)
			defer e.SetExhaustiveScoring(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				searchN(e, queries[i%len(queries)], 10)
			}
		})
	}
}
