//go:build !linux

package shard

import (
	"io"
	"os"
)

// mapFile on platforms without the mmap wiring reads the file into an
// anonymous heap buffer. The mapped load mode still works — lazy block
// decode, O(manifest) open-time work, lazy stored fields — it just does
// not page against the file, so the index must fit in memory. The
// release func is a no-op; the GC reclaims the buffer.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}
