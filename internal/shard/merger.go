package shard

// Background segment compaction. A segment's lifecycle:
//
//	active  — being filled by its Ingest batch (under the write lock)
//	sealed  — the batch committed; postings immutable, only tombstone
//	          bits move (searches scatter over it)
//	merging — snapshotted into a running merge; still serving searches
//	merged  — replaced by the new base; dropped from the shard
//
// A merge is invisible to queries: global IDs, scores, tie order and
// corpus statistics are all unchanged, so no epoch moves and no cache
// entry is evicted. The heavy work (postings concatenation, cap/block
// rebuilds) runs OUTSIDE the engine lock against a liveness snapshot;
// only the final swap takes the write lock, where documents tombstoned
// mid-merge are re-deleted on the merged index.

import (
	"time"

	"repro/internal/index"
	"repro/internal/semindex"
)

// MergePolicy throttles the background merger.
type MergePolicy struct {
	// MaxSegments triggers compaction when a shard's segment count
	// reaches it (0 means 4).
	MaxSegments int
	// Interval is the poll cadence (0 means 200ms). Ingest nudges the
	// merger too, so the ticker is a backstop, not the latency floor.
	Interval time.Duration
}

// StartMerger launches the background merger; a second call while one
// runs is a no-op. Stop it with StopMerger before discarding the engine.
func (e *Engine) StartMerger(p MergePolicy) {
	if p.MaxSegments <= 0 {
		p.MaxSegments = 4
	}
	if p.Interval <= 0 {
		p.Interval = 200 * time.Millisecond
	}
	e.mergerMu.Lock()
	defer e.mergerMu.Unlock()
	if e.mergerStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	nudge := make(chan struct{}, 1)
	e.mergerStop, e.mergerDone, e.mergeNudge = stop, done, nudge
	go func() {
		defer close(done)
		t := time.NewTicker(p.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			case <-nudge:
			}
			for s := 0; s < len(e.base); s++ {
				select {
				case <-stop:
					return
				default:
				}
				e.mu.RLock()
				due := len(e.segs[s]) >= p.MaxSegments
				e.mu.RUnlock()
				if due {
					e.mergeShard(s)
				}
			}
		}
	}()
}

// StopMerger stops the background merger and waits for an in-flight
// merge to land. No-op when none is running.
func (e *Engine) StopMerger() {
	e.mergerMu.Lock()
	stop, done := e.mergerStop, e.mergerDone
	e.mergerStop, e.mergerDone, e.mergeNudge = nil, nil, nil
	e.mergerMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// nudgeMerger wakes the merger without waiting (no-op when not running).
func (e *Engine) nudgeMerger() {
	e.mergerMu.Lock()
	nudge := e.mergeNudge
	e.mergerMu.Unlock()
	if nudge != nil {
		select {
		case nudge <- struct{}{}:
		default:
		}
	}
}

// ForceMerge synchronously compacts every shard that has segments or
// base tombstones — the "fully merged" state the equivalence gate
// compares against, and what Save runs before checkpointing.
func (e *Engine) ForceMerge() {
	for s := 0; s < len(e.base); s++ {
		e.mu.RLock()
		due := len(e.segs[s]) > 0 || e.base[s].si.Index.NumDeleted() > 0
		e.mu.RUnlock()
		if due {
			e.mergeShard(s)
		}
	}
}

// mergeShard compacts one shard's base + current segments into a new
// base. Three phases: snapshot under the read lock, merge off-lock,
// swap under the write lock.
func (e *Engine) mergeShard(s int) {
	e.mergeOpMu.Lock()
	defer e.mergeOpMu.Unlock()
	start := time.Now()

	// Phase 1: snapshot the merge set. Postings are immutable; the only
	// concurrently-moving state is tombstone bits, so the snapshot is a
	// copy of each sub's liveness mask.
	e.mu.RLock()
	oldBase := e.base[s]
	oldSegs := append([]*subIndex(nil), e.segs[s]...)
	met := e.met
	subs := make([]*subIndex, 0, 1+len(oldSegs))
	subs = append(subs, oldBase)
	subs = append(subs, oldSegs...)
	sources := make([]*index.Index, len(subs))
	masks := make([][]bool, len(subs))
	for i, sub := range subs {
		sources[i] = sub.si.Index
		masks[i] = sub.si.Index.DeletedMask()
		if masks[i] == nil {
			masks[i] = make([]bool, sub.si.Index.NumDocs())
		}
	}
	e.mu.RUnlock()

	// Phase 2: merge against the snapshot, off-lock. Searches and
	// ingests proceed; segments added meanwhile are simply not part of
	// this merge and survive the swap.
	merged, remaps := index.MergeIndexes(sources, masks)

	// Phase 2.5: a mapped engine persists the merge and reopens it as a
	// mapped scratch segment (tmp + fsync + rename + CRC reopen), still
	// off-lock, so compaction sheds its heap instead of accreting it. A
	// nil sub falls back to serving the heap merge. mappedBase is set
	// once before serving and read-only after, so the unlocked read is
	// safe.
	var nb *subIndex
	if e.mappedBase != "" {
		nb = e.writeMappedSeg(s, merged)
	}

	// Phase 3: swap.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.base[s] != oldBase || len(e.segs[s]) < len(oldSegs) {
		// Another compaction (Save's checkpoint path) replaced the merge
		// set while we worked; discard this merge.
		releaseSub(nb)
		return
	}
	e.applyMergedLocked(s, subs, merged, remaps, len(oldSegs), nb)
	met.merges.Inc()
	met.mergeLatency.ObserveDuration(time.Since(start))
}

// applyMergedLocked installs a merged index as shard s's new base:
// global-ID refs are rewritten through the remaps, documents tombstoned
// after the liveness snapshot are re-deleted on the merged index (their
// statistics were already subtracted when the tombstone landed), dropped
// documents become holes, and the first nOldSegs segments are retired.
// Nothing observable changes: no statistics move, no epochs bump, no
// cache entry is touched. Write lock required.
//
// newBase, when non-nil, is a mapped reopen of merged (writeMappedSeg) —
// the same documents under the same local IDs — and serves in its place;
// a retiring mapped old base is unmapped, which is safe here because the
// write lock excludes every reader (see mapped.go).
func (e *Engine) applyMergedLocked(s int, subs []*subIndex, merged *index.Index, remaps [][]int, nOldSegs int, newBase *subIndex) {
	if newBase == nil {
		newBase = &subIndex{si: &semindex.SemanticIndex{Level: e.level, Index: merged}}
	}
	serve := newBase.si.Index
	newBase.gids = make([]int, serve.NumDocs())
	serve.SetCorpusStats(e.global)
	serve.SetExhaustive(e.exhaustive)
	for i, sub := range subs {
		remap := remaps[i]
		for local := 0; local < len(remap); local++ {
			gid := sub.gids[local]
			nid := remap[local]
			if nid < 0 {
				// Dead at snapshot time: dropped by the merge, now a hole.
				e.byGID[gid] = docRef{sub: nil, shard: -1}
				continue
			}
			if sub.si.Index.IsDeleted(local) && !serve.IsDeleted(nid) {
				// Tombstoned while the merge ran: carry the bit forward.
				serve.Delete(nid)
			}
			newBase.gids[nid] = gid
			e.byGID[gid] = docRef{sub: newBase, shard: s, local: nid}
		}
	}
	oldBase := e.base[s]
	e.base[s] = newBase
	e.shards[s] = newBase.si
	e.segs[s] = append([]*subIndex(nil), e.segs[s][nOldSegs:]...)
	releaseSub(oldBase)
	e.updateLSMGaugesLocked()
}
