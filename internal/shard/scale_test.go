// Scale-truth integration test: the streaming corpus generator, the
// chunked sharded build, the query cache and the closed-loop load
// harness all running against each other at 10k-document scale, under
// the race detector in CI. It lives in an external test package because
// it wires internal/loadgen (which imports shard) back onto the engine.
package shard_test

import (
	"context"
	"io"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/semindex"
	"repro/internal/shard"
)

// TestCacheInvalidationUnderLoadAt10k races a full Zipfian query workload
// against live ingest on a 10k-document engine: every cached answer
// produced while epochs advance must still be safe, and once ingest
// quiesces the cached path must agree byte-for-byte with a forced-cold
// scatter — the epoch invalidation contract at a scale where stale
// entries would actually surface.
func TestCacheInvalidationUnderLoadAt10k(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 10k-doc engine")
	}
	g := corpus.New(corpus.Spec{TargetDocs: 10_000, Seed: 21})
	eng, err := shard.BuildStream(nil, semindex.FullInf, g, shard.Options{
		Shards:     4,
		CacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatalf("BuildStream: %v", err)
	}
	eng.SetMetrics(obs.NewRegistry())

	// Ingest pages from the same universe (fresh seed, no fixtures) so the
	// hot query vocabulary keeps matching the incoming documents.
	ingest := corpus.New(corpus.Spec{TargetDocs: 3_000, Seed: 22, NoCoverage: true})
	var pages []*crawler.MatchPage
	for {
		p, err := ingest.NextPage()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextPage: %v", err)
		}
		pages = append(pages, p)
	}

	queries := loadgen.GenerateQueries(loadgen.VocabFromUniverse(g.Universe()), nil, 200, 23)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pages {
			eng.AddPage(p)
		}
	}()
	epochBefore := eng.Epoch()
	res, err := loadgen.Run(context.Background(), &loadgen.EngineTarget{Eng: eng}, loadgen.Config{
		Workers:  8,
		Requests: 1_500,
		Warmup:   100,
		Seed:     24,
		Queries:  queries,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors during concurrent load", res.Errors)
	}
	if eng.Epoch() == epochBefore {
		t.Fatalf("ingest never advanced the epoch — the test raced nothing")
	}

	// Quiesced: every cached answer must be byte-identical to a cold
	// scatter over the final corpus. A stale (pre-ingest) entry surviving
	// epoch invalidation would differ on any query the new pages match.
	ctx := context.Background()
	for _, q := range queries {
		if q.Class == loadgen.ClassSuggest {
			continue
		}
		warm, err := eng.Search(ctx, q.Text, shard.SearchOptions{Limit: 10})
		if err != nil {
			t.Fatalf("%q: %v", q.Text, err)
		}
		cold, err := eng.Search(ctx, q.Text, shard.SearchOptions{Limit: 10, NoCache: true})
		if err != nil {
			t.Fatalf("%q: %v", q.Text, err)
		}
		if len(warm.Hits) != len(cold.Hits) {
			t.Fatalf("%q: cached %d hits vs cold %d", q.Text, len(warm.Hits), len(cold.Hits))
		}
		for i := range warm.Hits {
			if warm.Hits[i].DocID != cold.Hits[i].DocID || warm.Hits[i].Score != cold.Hits[i].Score {
				t.Fatalf("%q hit %d: cached (%d, %g) vs cold (%d, %g)", q.Text, i,
					warm.Hits[i].DocID, warm.Hits[i].Score, cold.Hits[i].DocID, cold.Hits[i].Score)
			}
		}
	}
}

// TestLSMIngestVsSearchAt10k is the write-firehose half of the
// scale-truth suite: a 10k-document engine with the background merger
// running takes batched Ingest traffic — fresh pages AND repeated
// upserts of a hot set, so tombstones and net-zero statistics churn are
// both in play — while 8 closed-loop workers search it under the race
// detector. It asserts the two LSM safety contracts at scale:
//
//  1. No search observes mixed statistics epochs: every cold scatter
//     snapshots segments and corpus stats under one read-lock, so every
//     answer equals SOME consistent corpus state, and after quiescing
//     the cached path is byte-identical to a forced-cold scatter.
//  2. Compaction is invisible: a ForceMerge after the firehose changes
//     no answer byte.
func TestLSMIngestVsSearchAt10k(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 10k-doc engine")
	}
	g := corpus.New(corpus.Spec{TargetDocs: 10_000, Seed: 41})
	eng, err := shard.BuildStream(nil, semindex.FullInf, g, shard.Options{
		Shards:     4,
		CacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatalf("BuildStream: %v", err)
	}
	eng.SetMetrics(obs.NewRegistry())
	eng.StartMerger(shard.MergePolicy{})
	defer eng.StopMerger()

	fresh := corpus.New(corpus.Spec{TargetDocs: 1_200, Seed: 42, NoCoverage: true})
	var pages []*crawler.MatchPage
	for {
		p, err := fresh.NextPage()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextPage: %v", err)
		}
		pages = append(pages, p)
	}
	// Hot set: the first few fresh pages get re-ingested over and over,
	// exercising tombstoned upserts whose statistics net to zero.
	hot := pages[:8]

	queries := loadgen.GenerateQueries(loadgen.VocabFromUniverse(g.Universe()), nil, 200, 43)
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const batch = 16
		for i := 0; i < len(pages); i += batch {
			end := i + batch
			if end > len(pages) {
				end = len(pages)
			}
			if _, err := eng.Ingest(ctx, pages[i:end], shard.IngestOptions{}); err != nil {
				t.Errorf("Ingest: %v", err)
				return
			}
			// Interleave a hot-set upsert between append batches.
			if _, err := eng.Ingest(ctx, hot, shard.IngestOptions{}); err != nil {
				t.Errorf("hot Ingest: %v", err)
				return
			}
		}
	}()
	res, err := loadgen.Run(ctx, &loadgen.EngineTarget{Eng: eng}, loadgen.Config{
		Workers:  8,
		Requests: 1_500,
		Warmup:   100,
		Seed:     44,
		Queries:  queries,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors during concurrent firehose", res.Errors)
	}

	// Quiesced: cached answers must equal a cold scatter byte-for-byte.
	check := func(label string) {
		t.Helper()
		for _, q := range queries {
			if q.Class == loadgen.ClassSuggest {
				continue
			}
			warm, err := eng.Search(ctx, q.Text, shard.SearchOptions{Limit: 10})
			if err != nil {
				t.Fatalf("%s %q: %v", label, q.Text, err)
			}
			cold, err := eng.Search(ctx, q.Text, shard.SearchOptions{Limit: 10, NoCache: true})
			if err != nil {
				t.Fatalf("%s %q: %v", label, q.Text, err)
			}
			if len(warm.Hits) != len(cold.Hits) {
				t.Fatalf("%s %q: cached %d hits vs cold %d", label, q.Text, len(warm.Hits), len(cold.Hits))
			}
			for i := range warm.Hits {
				if warm.Hits[i].DocID != cold.Hits[i].DocID || warm.Hits[i].Score != cold.Hits[i].Score {
					t.Fatalf("%s %q hit %d: cached (%d, %g) vs cold (%d, %g)", label, q.Text, i,
						warm.Hits[i].DocID, warm.Hits[i].Score, cold.Hits[i].DocID, cold.Hits[i].Score)
				}
			}
		}
	}
	check("quiesced")

	// Compaction must not change a single answer byte.
	eng.ForceMerge()
	st := eng.Stats()
	if st.Segments != 0 || st.Tombstones != 0 {
		t.Fatalf("ForceMerge left %d segments, %d tombstones", st.Segments, st.Tombstones)
	}
	check("merged")
}

// TestSaveLoadRoundTripAt10k is the persistence half of the scale-truth
// suite: a 10k-document engine checkpointed through the block-postings
// codec (v2 envelopes, compressed stored fields) must verify clean and
// reload into an engine whose rankings are byte-identical to the one
// that saved — the on-disk block metadata pruning exactly like the
// in-memory metadata at a scale where every skip path fires.
func TestSaveLoadRoundTripAt10k(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 10k-doc engine")
	}
	g := corpus.New(corpus.Spec{TargetDocs: 10_000, Seed: 31})
	eng, err := shard.BuildStream(nil, semindex.FullInf, g, shard.Options{Shards: 4})
	if err != nil {
		t.Fatalf("BuildStream: %v", err)
	}
	base := filepath.Join(t.TempDir(), "idx.bin")
	if err := eng.Save(base); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if rep := shard.Fsck(base); !rep.OK() {
		t.Fatalf("fsck after 10k save:\n%s", rep)
	}
	back, err := shard.Load(base, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.NumDocs() != eng.NumDocs() {
		t.Fatalf("reloaded %d docs, want %d", back.NumDocs(), eng.NumDocs())
	}
	ctx := context.Background()
	queries := loadgen.GenerateQueries(loadgen.VocabFromUniverse(g.Universe()), nil, 150, 32)
	for _, q := range queries {
		if q.Class == loadgen.ClassSuggest {
			continue
		}
		want, err := eng.Search(ctx, q.Text, shard.SearchOptions{Limit: 10, NoCache: true})
		if err != nil {
			t.Fatalf("%q: %v", q.Text, err)
		}
		got, err := back.Search(ctx, q.Text, shard.SearchOptions{Limit: 10, NoCache: true})
		if err != nil {
			t.Fatalf("%q: %v", q.Text, err)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("%q: reloaded %d hits vs %d", q.Text, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if got.Hits[i].DocID != want.Hits[i].DocID || got.Hits[i].Score != want.Hits[i].Score {
				t.Fatalf("%q hit %d: reloaded (%d, %g) vs saved (%d, %g)", q.Text, i,
					got.Hits[i].DocID, got.Hits[i].Score, want.Hits[i].DocID, want.Hits[i].Score)
			}
		}
	}
}
