//go:build linux

package shard

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release func
// unmaps the region; after it runs, every slice into the mapping is
// invalid. On linux this is a real mmap — the kernel pages index blocks
// in and out on demand, which is what lets a mapped engine serve an
// index larger than RAM.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
