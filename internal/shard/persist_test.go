package shard

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eval"
	"repro/internal/semindex"
)

// TestSaveLoadRoundTrip persists a sharded engine through the per-shard
// codec files and asserts the loaded engine searches identically to the
// in-memory one (and therefore to the monolith).
func TestSaveLoadRoundTrip(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	base := filepath.Join(t.TempDir(), "idx.bin")
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(ShardPath(base, i)); err != nil {
			t.Fatalf("missing shard file %d: %v", i, err)
		}
	}
	back, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level() != semindex.FullInf || back.NumShards() != 3 || back.NumDocs() != e.NumDocs() {
		t.Fatalf("loaded engine shape: level %s, %d shards, %d docs",
			back.Level(), back.NumShards(), back.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(back, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
	if got, want := back.Suggest("mesi goal"), e.Suggest("mesi goal"); got != want {
		t.Errorf("loaded Suggest = %q, want %q", got, want)
	}
	// A loaded engine keeps ingesting incrementally.
	extra := pages[0]
	extraCopy := *extra
	extraCopy.ID = extra.ID + "-replay"
	docsBefore := back.NumDocs()
	back.AddPage(&extraCopy)
	if back.NumDocs() <= docsBefore {
		t.Error("loaded engine did not ingest")
	}
}

// TestLoadErrors covers the failure modes: nothing at the path and a
// truncated shard file.
func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "nope"), nil); err == nil {
		t.Error("Load on missing files succeeded")
	}
	if err := os.WriteFile(ShardPath(filepath.Join(dir, "trunc"), 0), []byte("SEMIDX FULL_INF\nGARB"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "trunc"), nil); err == nil {
		t.Error("Load on corrupt shard succeeded")
	}
}
