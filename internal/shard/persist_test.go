package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/semindex"
)

// TestSaveLoadRoundTrip persists a sharded engine through the per-shard
// codec files and asserts the loaded engine searches identically to the
// in-memory one (and therefore to the monolith).
func TestSaveLoadRoundTrip(t *testing.T) {
	pages, _ := fixture(t)
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	base := filepath.Join(t.TempDir(), "idx.bin")
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ManifestPath(base)); err != nil {
		t.Fatalf("missing manifest: %v", err)
	}
	if rep := Fsck(base); !rep.OK() {
		t.Fatalf("fsck after save:\n%s", rep)
	}
	back, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level() != semindex.FullInf || back.NumShards() != 3 || back.NumDocs() != e.NumDocs() {
		t.Fatalf("loaded engine shape: level %s, %d shards, %d docs",
			back.Level(), back.NumShards(), back.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(back, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
	if got, want := back.Suggest("mesi goal"), e.Suggest("mesi goal"); got != want {
		t.Errorf("loaded Suggest = %q, want %q", got, want)
	}
	// A loaded engine keeps ingesting incrementally.
	extra := pages[0]
	extraCopy := *extra
	extraCopy.ID = extra.ID + "-replay"
	docsBefore := back.NumDocs()
	back.AddPage(&extraCopy)
	if back.NumDocs() <= docsBefore {
		t.Error("loaded engine did not ingest")
	}
}

// TestShrinkThenReload is the stale-shard-file regression: saving a
// narrower engine over a base that previously held a wider one must not
// resurrect the orphaned shard files on reload. The manifest names
// exactly the live files; the read-until-missing scan that caused the
// bug survives only in the legacy path.
func TestShrinkThenReload(t *testing.T) {
	pages, _ := fixture(t)
	base := filepath.Join(t.TempDir(), "idx.bin")
	wide := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	if err := wide.Save(base); err != nil {
		t.Fatal(err)
	}
	narrow := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	if err := narrow.Save(base); err != nil {
		t.Fatal(err)
	}
	back, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumShards() != 2 {
		t.Fatalf("reloaded %d shards, want the narrower save's 2", back.NumShards())
	}
	if back.NumDocs() != narrow.NumDocs() {
		t.Fatalf("reloaded %d docs, want %d", back.NumDocs(), narrow.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(back, q.Keywords, 10), searchN(narrow, q.Keywords, 10))
	}
}

// TestLoadQuarantinesCorruptShard flips one payload byte in one shard
// file and requires Load to keep serving: the corrupt shard is
// quarantined (renamed *.corrupt), the engine starts degraded, every
// search names the missing shard, lost documents read as nil, and a
// checkpoint of the degraded engine is refused.
func TestLoadQuarantinesCorruptShard(t *testing.T) {
	pages, _ := fixture(t)
	base := filepath.Join(t.TempDir(), "idx.bin")
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 3})
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	victim := shardGenPath(base, 1, 1)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	back, err := Load(base, nil)
	if err != nil {
		t.Fatalf("Load failed outright on one corrupt shard: %v", err)
	}
	rep := back.LoadReport()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Shard != 1 {
		t.Fatalf("quarantined %+v, want exactly shard 1", rep.Quarantined)
	}
	if !errors.Is(rep.Quarantined[0].Err, ErrSnapshotCorrupt) {
		t.Errorf("quarantine error %v does not wrap ErrSnapshotCorrupt", rep.Quarantined[0].Err)
	}
	if got := back.Quarantined(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Quarantined() = %v, want [1]", got)
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Errorf("corrupt file was not renamed aside: %v", err)
	}

	res, err := back.Search(context.Background(), "goal", SearchOptions{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Degraded {
		t.Error("degraded engine answered without Degraded set")
	}
	if len(res.Report.Missing) != 1 || res.Report.Missing[0] != 1 {
		t.Errorf("Report.Missing = %v, want [1]", res.Report.Missing)
	}

	// The gid space keeps the holes: surviving documents stay at their
	// monolith-equal ids, lost ones read as nil.
	lost, survived := 0, 0
	for gid := 0; gid < e.NumDocs(); gid++ {
		if back.Doc(gid) == nil {
			lost++
		} else {
			survived++
		}
	}
	if lost == 0 || survived == 0 {
		t.Fatalf("lost %d / survived %d docs, want both nonzero", lost, survived)
	}
	// Survivors keep their monolith-equal ids instead of being
	// renumbered into the holes: the stored document at each surviving
	// gid is the one the intact engine stored there.
	for gid := 0; gid < e.NumDocs(); gid++ {
		d := back.Doc(gid)
		if d == nil {
			continue
		}
		if want := e.Doc(gid); d.Get(MetaGID) != want.Get(MetaGID) || d.Get("narration") != want.Get("narration") {
			t.Fatalf("gid %d: surviving document was renumbered", gid)
		}
	}

	if err := back.Save(base); !errors.Is(err, ErrDegraded) {
		t.Errorf("degraded Save returned %v, want ErrDegraded", err)
	}
}

// TestLoadManifestCorrupt covers the unrecoverable commit-point cases:
// a flipped manifest byte and a truncated manifest both fail with
// ErrManifestCorrupt rather than loading something wrong.
func TestLoadManifestCorrupt(t *testing.T) {
	pages, _ := fixture(t)
	base := filepath.Join(t.TempDir(), "idx.bin")
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ManifestPath(base))
	if err != nil {
		t.Fatal(err)
	}
	for name, mutated := range map[string][]byte{
		"bit flip":  append(append([]byte{}, data[:8]...), append([]byte{data[8] ^ 0x01}, data[9:]...)...),
		"truncated": data[:len(data)/2],
	} {
		if err := os.WriteFile(ManifestPath(base), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(base, nil); !errors.Is(err, ErrManifestCorrupt) {
			t.Errorf("%s manifest: Load returned %v, want ErrManifestCorrupt", name, err)
		}
	}
}

// TestLegacyLayoutLoads exercises the pre-manifest fallback: raw codec
// streams under numbered names, no manifest. Load must still work (the
// files predate checksums) and flag the layout in its report; Fsck must
// call it unverifiable rather than OK.
func TestLegacyLayoutLoads(t *testing.T) {
	pages, _ := fixture(t)
	base := filepath.Join(t.TempDir(), "idx.bin")
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	for i, sh := range e.shards {
		f, err := os.Create(ShardPath(base, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	back, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !back.LoadReport().Legacy {
		t.Error("legacy layout loaded without Legacy flag")
	}
	if back.NumDocs() != e.NumDocs() {
		t.Fatalf("legacy load has %d docs, want %d", back.NumDocs(), e.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		assertSameHits(t, q.ID, searchN(back, q.Keywords, 10), searchN(e, q.Keywords, 10))
	}
	rep := Fsck(base)
	if rep.OK() {
		t.Error("fsck called a checksum-free legacy layout OK")
	}
	if !strings.Contains(rep.String(), "UNVERIFIABLE") {
		t.Errorf("legacy fsck verdict:\n%s", rep)
	}
}

// TestFsckVerdicts drives the offline audit across the intact and
// damaged states of one base.
func TestFsckVerdicts(t *testing.T) {
	pages, _ := fixture(t)
	base := filepath.Join(t.TempDir(), "idx.bin")
	e := Build(nil, semindex.FullInf, pages, Options{Shards: 2})
	if err := e.Save(base); err != nil {
		t.Fatal(err)
	}
	rep := Fsck(base)
	if !rep.OK() || !strings.Contains(rep.String(), "verdict: OK") {
		t.Fatalf("clean snapshot fsck:\n%s", rep)
	}

	victim := shardGenPath(base, 1, 0)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0x80
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep = Fsck(base)
	if rep.OK() || !strings.Contains(rep.String(), "DAMAGED") {
		t.Fatalf("fsck missed the flipped byte:\n%s", rep)
	}
	bad := 0
	for _, f := range rep.Files {
		if !f.OK {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("fsck marked %d files bad, want 1:\n%s", bad, rep)
	}
	// Fsck is read-only: the damaged base must still load (degraded).
	back, err := Load(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Quarantined()) != 1 {
		t.Fatalf("after fsck, Load quarantined %v", back.Quarantined())
	}
}

// TestLoadErrors covers the failure modes: nothing at the path and a
// truncated shard file.
func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "nope"), nil); err == nil {
		t.Error("Load on missing files succeeded")
	}
	if err := os.WriteFile(ShardPath(filepath.Join(dir, "trunc"), 0), []byte("SEMIDX FULL_INF\nGARB"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "trunc"), nil); err == nil {
		t.Error("Load on corrupt shard succeeded")
	}
}
