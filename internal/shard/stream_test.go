package shard

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

// TestBuildStreamEquivalentToBuild pins the streaming build contract:
// chunked streaming over the same pages in the same order produces an
// engine identical to the slice build — document identity, statistics,
// and ranking — for every query in the paper mix. A tiny chunk size
// forces many flushes so the chunk boundary logic is actually exercised.
func TestBuildStreamEquivalentToBuild(t *testing.T) {
	cfg := soccer.DefaultConfig()
	cfg.Matches = 12
	pages := crawler.PagesFromCorpus(soccer.Generate(cfg))

	slice := Build(nil, semindex.FullInf, pages, Options{Shards: 4})
	streamed, err := BuildStream(nil, semindex.FullInf, &sliceSource{pages: pages},
		Options{Shards: 4, ChunkPages: 3})
	if err != nil {
		t.Fatalf("BuildStream: %v", err)
	}

	if slice.NumDocs() != streamed.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", slice.NumDocs(), streamed.NumDocs())
	}
	for _, q := range eval.PaperQueries() {
		a := searchN(slice, q.Keywords, 20)
		b := searchN(streamed, q.Keywords, 20)
		if len(a) != len(b) {
			t.Fatalf("%s: hit counts differ: %d vs %d", q.ID, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID || a[i].Score != b[i].Score {
				t.Fatalf("%s hit %d: slice (%d, %g) vs streamed (%d, %g)",
					q.ID, i, a[i].DocID, a[i].Score, b[i].DocID, b[i].Score)
			}
		}
	}
}

// failingSource errors after a few pages; the build must surface the
// error instead of committing a truncated engine.
type failingSource struct {
	pages []*crawler.MatchPage
	i     int
}

func (s *failingSource) NextPage() (*crawler.MatchPage, error) {
	if s.i >= len(s.pages) {
		return nil, fmt.Errorf("page source: connection reset")
	}
	p := s.pages[s.i]
	s.i++
	return p, nil
}

func TestBuildStreamPropagatesSourceError(t *testing.T) {
	cfg := soccer.DefaultConfig()
	cfg.Matches = 3
	pages := crawler.PagesFromCorpus(soccer.Generate(cfg))
	_, err := BuildStream(nil, semindex.Trad, &failingSource{pages: pages}, Options{Shards: 2})
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("want the source error, got %v", err)
	}
}
