package ie

import (
	"strings"

	"repro/internal/crawler"
	"repro/internal/soccer"
)

// Event is one extracted (or Unknown) event. Exactly one Event is produced
// per narration: the paper keeps unrecognized narrations as UnknownEvent
// individuals so full-text recall never drops below the traditional
// baseline (Section 3.4).
type Event struct {
	Kind   soccer.EventKind
	Minute int
	// Subject and Object are resolved entities; zero-valued when the
	// template has no such slot or the event is Unknown.
	Subject Entity
	Object  Entity
	// SubjectTeam and ObjectTeam are team names ("" when unknown). For
	// player slots they come from the player's lineup side; for team slots
	// from the tag itself.
	SubjectTeam string
	ObjectTeam  string
	// NarrationIdx indexes the page's narration list.
	NarrationIdx int
	// Narration is the raw text, preserved for the index's full-text field.
	Narration string
}

// HasSubject reports whether a subject player was extracted.
func (e Event) HasSubject() bool { return e.Subject.Name != "" }

// HasObject reports whether an object player was extracted.
func (e Event) HasObject() bool { return e.Object.Name != "" }

// Extractor runs NER plus two-level lexical analysis over match pages.
type Extractor struct{}

// ExtractMatch processes every narration of a page. len(result) equals
// len(page.Narrations).
func (Extractor) ExtractMatch(page *crawler.MatchPage) []Event {
	tagger := NewTagger(page)
	teamName := map[int]string{1: page.Home, 2: page.Away}
	events := make([]Event, 0, len(page.Narrations))
	for idx, n := range page.Narrations {
		ev := extractOne(tagger, teamName, n.Text)
		ev.Minute = n.Minute
		ev.NarrationIdx = idx
		ev.Narration = n.Text
		events = append(events, ev)
	}
	return events
}

func extractOne(tagger *Tagger, teamName map[int]string, text string) Event {
	// Level one: keyword screen.
	if !passesLevelOne(text) {
		return Event{Kind: soccer.KindUnknown}
	}
	// Level two: template matching over the tagged text, with the optional
	// running-score prefix stripped.
	tagged := stripScorePrefix(tagger.Tag(text))
	for _, ct := range compiledTemplates {
		bind, ok := ct.match(tagged)
		if !ok {
			continue
		}
		ev := Event{Kind: ct.kind}
		if tag, ok := bind["S"]; ok {
			if e, ok := tagger.Resolve(tag); ok {
				ev.Subject = e
				ev.SubjectTeam = teamName[e.Team]
			}
		}
		if tag, ok := bind["O"]; ok {
			if e, ok := tagger.Resolve(tag); ok {
				ev.Object = e
				ev.ObjectTeam = teamName[e.Team]
			}
		}
		if tag, ok := bind["T"]; ok {
			if e, ok := tagger.Resolve(tag); ok {
				ev.SubjectTeam = e.Name
			}
		}
		if tag, ok := bind["OT"]; ok {
			if e, ok := tagger.Resolve(tag); ok {
				ev.ObjectTeam = e.Name
			}
		}
		return ev
	}
	// Level one fired but no template matched: the narration mentions
	// domain vocabulary without the structure we extract — keep it as
	// Unknown rather than guessing.
	return Event{Kind: soccer.KindUnknown}
}

// stripScorePrefix removes a leading "(1 - 0) " running-score marker.
func stripScorePrefix(s string) string {
	if len(s) == 0 || s[0] != '(' {
		return s
	}
	j := strings.IndexByte(s, ')')
	if j < 0 {
		return s
	}
	inner := s[1:j]
	// Accept only "<digits> - <digits>".
	dash := strings.Index(inner, " - ")
	if dash < 0 || !allDigits(inner[:dash]) || !allDigits(inner[dash+3:]) {
		return s
	}
	rest := s[j+1:]
	return strings.TrimPrefix(rest, " ")
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
