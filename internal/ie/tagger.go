// Package ie implements the information-extraction module of Section 3.3:
// a named-entity recognizer that rewrites player and team mentions into
// positional tags ("Iniesta scores!" becomes "<t2p8> scores!"), and a
// two-level lexical analyzer that first screens narrations for known
// trigger keywords and then applies hand-crafted templates to extract typed
// events with their subject and object roles.
//
// As in the paper ([30]), the approach uses no linguistic tooling — no POS
// tagging, parsing or chunking — just the entity dictionary built from the
// crawled basic information and an ordered template table. On the
// simulated UEFA-style corpus it reaches the 100% extraction rate the
// authors report for uefa.com narrations; TestExtractionRecall pins that.
package ie

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/crawler"
)

// EntityKind discriminates tag referents.
type EntityKind uint8

const (
	// EntityPlayer tags resolve to a lineup (or bench) player.
	EntityPlayer EntityKind = iota
	// EntityTeam tags resolve to one of the two teams.
	EntityTeam
)

// Entity is what a tag resolves back to.
type Entity struct {
	Kind EntityKind
	// Team is 1 (home) or 2 (away).
	Team int
	// Player is the 1-based lineup slot for player entities (bench players
	// get slots past the lineup), 0 for team entities.
	Player int
	// Name is the player's short narration name, or the team name.
	Name string
	// FullName is the player's full name ("" for teams).
	FullName string
	// Position is the player's squad position code ("" for teams/bench
	// players of unknown position).
	Position string
}

// Tag returns the positional tag text for the entity, e.g. "<t1p5>" in the
// paper's "<team1 player5>" notation.
func (e Entity) Tag() string {
	if e.Kind == EntityTeam {
		return fmt.Sprintf("<t%d>", e.Team)
	}
	return fmt.Sprintf("<t%dp%d>", e.Team, e.Player)
}

// Tagger is the NER stage: it owns the per-match entity dictionary built
// from the crawled basic information.
type Tagger struct {
	// entities in decreasing name length, so "Van der Sar" wins over any
	// shorter overlapping name at the same position.
	entities []Entity
	byTag    map[string]Entity
}

// NewTagger builds the dictionary for one match page: both teams, their
// lineups, and the bench players appearing in substitutions.
func NewTagger(page *crawler.MatchPage) *Tagger {
	t := &Tagger{byTag: map[string]Entity{}}
	teams := [2]string{page.Home, page.Away}
	for ti, teamName := range teams {
		team := Entity{Kind: EntityTeam, Team: ti + 1, Name: teamName}
		t.add(team)
		for pi, p := range page.Lineups[teamName] {
			t.add(Entity{
				Kind: EntityPlayer, Team: ti + 1, Player: pi + 1,
				Name: p.Short, FullName: p.Name, Position: p.Position,
			})
		}
		// Bench players from the substitution list.
		slot := len(page.Lineups[teamName])
		for _, s := range page.Subs {
			if s.Team != teamName {
				continue
			}
			slot++
			t.add(Entity{
				Kind: EntityPlayer, Team: ti + 1, Player: slot,
				Name: s.On, FullName: s.On,
			})
		}
	}
	// Longest-name-first ordering for the scanner.
	for i := 1; i < len(t.entities); i++ {
		for j := i; j > 0 && len(t.entities[j].Name) > len(t.entities[j-1].Name); j-- {
			t.entities[j], t.entities[j-1] = t.entities[j-1], t.entities[j]
		}
	}
	return t
}

func (t *Tagger) add(e Entity) {
	t.entities = append(t.entities, e)
	t.byTag[e.Tag()] = e
}

// Resolve maps a tag back to its entity.
func (t *Tagger) Resolve(tag string) (Entity, bool) {
	e, ok := t.byTag[tag]
	return e, ok
}

// Tag rewrites every entity mention in the text into its positional tag.
// Matching is longest-first at word boundaries, so "Real Madrid" does not
// decay into a mention of a hypothetical "Real".
func (t *Tagger) Tag(text string) string {
	var b strings.Builder
	i := 0
	for i < len(text) {
		if !atWordStart(text, i) {
			b.WriteByte(text[i])
			i++
			continue
		}
		matched := false
		for _, e := range t.entities {
			n := len(e.Name)
			if i+n > len(text) || text[i:i+n] != e.Name {
				continue
			}
			if !atWordEnd(text, i+n) {
				continue
			}
			b.WriteString(e.Tag())
			i += n
			matched = true
			break
		}
		if !matched {
			b.WriteByte(text[i])
			i++
		}
	}
	return b.String()
}

// atWordStart reports whether position i begins a word (start of text or
// preceded by a non-letter).
func atWordStart(s string, i int) bool {
	if i == 0 {
		return true
	}
	r := rune(s[i-1])
	return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '\''
}

// atWordEnd reports whether position i (one past a candidate match) ends a
// word.
func atWordEnd(s string, i int) bool {
	if i >= len(s) {
		return true
	}
	r := rune(s[i])
	return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '\''
}
