package ie

import (
	"testing"

	"repro/internal/crawler"
	"repro/internal/soccer"
)

func pageFor(t testing.TB, m *soccer.Match) *crawler.MatchPage {
	t.Helper()
	page, err := crawler.ParseMatchPage(crawler.RenderMatchPage(m))
	if err != nil {
		t.Fatalf("page round trip: %v", err)
	}
	return page
}

func TestTaggerBasics(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 3, NarrationsPerMatch: 30})
	m := c.Matches[0]
	page := pageFor(t, m)
	tagger := NewTagger(page)

	home := m.Home.Players[9] // CF
	tagged := tagger.Tag(home.Short + " scores!")
	want := "<t1p10> scores!"
	if tagged != want {
		t.Errorf("Tag = %q, want %q", tagged, want)
	}
	e, ok := tagger.Resolve("<t1p10>")
	if !ok || e.Name != home.Short || e.Position != "CF" {
		t.Errorf("Resolve = %+v, %v", e, ok)
	}
}

func TestTaggerTeamNames(t *testing.T) {
	teams := soccer.BuildTeams()
	var real, united *soccer.Team
	for _, tm := range teams {
		switch tm.Name {
		case "Real Madrid":
			real = tm
		case "Manchester United":
			united = tm
		}
	}
	m := &soccer.Match{ID: "x", Home: real, Away: united, Date: "2009-05-01", Referee: "R"}
	page := pageFor(t, m)
	tagger := NewTagger(page)
	if got := tagger.Tag("Corner to Real Madrid. Ramos takes it."); got != "Corner to <t1>. <t1p3> takes it." {
		t.Errorf("multiword team tag = %q", got)
	}
	// Multiword player name.
	if got := tagger.Tag("Great save by Van der Sar (Manchester United), denying Raul."); got != "Great save by <t2p1> (<t2>), denying <t1p10>." {
		t.Errorf("multiword player tag = %q", got)
	}
}

func TestTaggerWordBoundaries(t *testing.T) {
	teams := soccer.BuildTeams()
	var chelsea, arsenal *soccer.Team
	for _, tm := range teams {
		switch tm.Name {
		case "Chelsea":
			chelsea = tm
		case "Arsenal":
			arsenal = tm
		}
	}
	m := &soccer.Match{ID: "x", Home: chelsea, Away: arsenal, Date: "2009-05-01", Referee: "R"}
	tagger := NewTagger(pageFor(t, m))
	// "Alex" must not be found inside "Alexander".
	if got := tagger.Tag("Alexander is not playing"); got != "Alexander is not playing" {
		t.Errorf("boundary violated: %q", got)
	}
	if got := tagger.Tag("Alex clears the danger."); got != "<t1p5> clears the danger." {
		t.Errorf("Alex not tagged: %q", got)
	}
}

func TestStripScorePrefix(t *testing.T) {
	cases := map[string]string{
		"(1 - 0) X scores!":    "X scores!",
		"(12 - 3) header":      "header",
		"(not a score) text":   "(not a score) text",
		"no prefix here":       "no prefix here",
		"(1-0) missing spaces": "(1-0) missing spaces",
		"":                     "",
		"( - ) empty numbers":  "( - ) empty numbers",
	}
	for in, want := range cases {
		if got := stripScorePrefix(in); got != want {
			t.Errorf("stripScorePrefix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExtractGoalEvent(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 3, NarrationsPerMatch: 30})
	m := c.Matches[0]
	page := pageFor(t, m)
	events := Extractor{}.ExtractMatch(page)
	if len(events) != len(page.Narrations) {
		t.Fatalf("%d events for %d narrations", len(events), len(page.Narrations))
	}
	// Find the truth goals and check each was extracted with the scorer.
	for _, tr := range m.Truth {
		if tr.Kind != soccer.KindGoal || tr.NarrationIdx < 0 {
			continue
		}
		ev := events[tr.NarrationIdx]
		if ev.Kind != soccer.KindGoal {
			t.Errorf("narration %d: kind %s, want Goal (%q)", tr.NarrationIdx, ev.Kind, ev.Narration)
			continue
		}
		if ev.Subject.Name != tr.Subject.Short {
			t.Errorf("goal scorer = %q, want %q", ev.Subject.Name, tr.Subject.Short)
		}
		if ev.Minute != tr.Minute {
			t.Errorf("goal minute = %d, want %d", ev.Minute, tr.Minute)
		}
	}
}

// TestExtractionRecall pins the paper's "100% success rate in UEFA
// narrations" claim: every simulator event with a narration must be
// extracted with exactly the right kind, subject and object, and every
// color narration must come back as UnknownEvent.
func TestExtractionRecall(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 10, Seed: 42, NarrationsPerMatch: 118})
	totalEvents, totalUnknown := 0, 0
	for _, m := range c.Matches {
		page := pageFor(t, m)
		events := Extractor{}.ExtractMatch(page)

		// Map narration index -> truth event.
		truthByNarr := map[int]*soccer.TruthEvent{}
		for i := range m.Truth {
			if m.Truth[i].NarrationIdx >= 0 {
				truthByNarr[m.Truth[i].NarrationIdx] = &m.Truth[i]
			}
		}
		for idx, ev := range events {
			tr, hasTruth := truthByNarr[idx]
			if !hasTruth {
				totalUnknown++
				if ev.Kind != soccer.KindUnknown {
					t.Errorf("match %s narration %d (%q): extracted %s from color text",
						m.ID, idx, ev.Narration, ev.Kind)
				}
				continue
			}
			totalEvents++
			if ev.Kind != tr.Kind {
				t.Errorf("match %s narration %d (%q): kind %s, want %s",
					m.ID, idx, ev.Narration, ev.Kind, tr.Kind)
				continue
			}
			if tr.Subject != nil && ev.Subject.Name != tr.Subject.Short {
				t.Errorf("match %s %s@%d: subject %q, want %q (%q)",
					m.ID, tr.Kind, tr.Minute, ev.Subject.Name, tr.Subject.Short, ev.Narration)
			}
			if tr.Object != nil && ev.Object.Name != tr.Object.Short {
				t.Errorf("match %s %s@%d: object %q, want %q (%q)",
					m.ID, tr.Kind, tr.Minute, ev.Object.Name, tr.Object.Short, ev.Narration)
			}
			if tr.SubjectTeam != nil && ev.SubjectTeam != tr.SubjectTeam.Name {
				t.Errorf("match %s %s@%d: subject team %q, want %q (%q)",
					m.ID, tr.Kind, tr.Minute, ev.SubjectTeam, tr.SubjectTeam.Name, ev.Narration)
			}
		}
	}
	if totalEvents < 500 {
		t.Errorf("only %d events checked; corpus generation too small?", totalEvents)
	}
	if totalUnknown < 100 {
		t.Errorf("only %d unknown narrations; color padding missing?", totalUnknown)
	}
	t.Logf("verified %d extracted events, %d unknown narrations", totalEvents, totalUnknown)
}

func TestLevelOneScreen(t *testing.T) {
	if passesLevelOne("The atmosphere at Camp Nou is electric tonight.") {
		t.Error("level one passed pure color text")
	}
	if !passesLevelOne("Eto'o (Barcelona) scores! The crowd erupts.") {
		t.Error("level one rejected a goal narration")
	}
}

func TestExtractorPositionMetadata(t *testing.T) {
	// Position codes must flow through extraction so ontology population
	// can assert position classes (needed for Q-10's defence players).
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 9, NarrationsPerMatch: 40})
	m := c.Matches[0]
	events := Extractor{}.ExtractMatch(pageFor(t, m))
	found := false
	for _, ev := range events {
		if ev.HasSubject() && ev.Subject.Position != "" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no extracted event carries subject position metadata")
	}
}

func TestEventHelpers(t *testing.T) {
	var e Event
	if e.HasSubject() || e.HasObject() {
		t.Error("zero event claims subject/object")
	}
	e.Subject = Entity{Name: "Messi"}
	if !e.HasSubject() {
		t.Error("HasSubject false after set")
	}
}

func TestTemplateCompileRoundTrip(t *testing.T) {
	ct := compileTemplate(Template{Kind: soccer.KindFoul, Pattern: "{S} fouls {O} badly"})
	bind, ok := ct.match("<t1p3> fouls <t2p4> badly")
	if !ok {
		t.Fatal("match failed")
	}
	if bind["S"] != "<t1p3>" || bind["O"] != "<t2p4>" {
		t.Errorf("bindings = %v", bind)
	}
	if _, ok := ct.match("<t1p3> fouls <t2> badly"); ok {
		t.Error("team tag accepted in player slot")
	}
	if _, ok := ct.match("<t1p3> tackles <t2p4> badly"); ok {
		t.Error("wrong literal accepted")
	}
}
