package ie

import (
	"strings"

	"repro/internal/soccer"
)

// Template is one hand-crafted extraction pattern, matched against the
// NER-tagged narration. Placeholders:
//
//	{S}  the subject player tag
//	{O}  the object player tag
//	{T}  the subject's team tag
//	{OT} the object's team tag
//
// A pattern matches as a prefix of the tagged narration (after the optional
// "(1 - 0) " running-score prefix), so trailing flavor text never blocks
// extraction.
type Template struct {
	Kind    soccer.EventKind
	Pattern string
}

// Templates is the ordered template table of the two-level lexical
// analyzer. Order matters where patterns share prefixes (the penalty save
// must precede the plain save). Every narration template the simulator can
// emit has a counterpart here; TestExtractionRecall enforces the pairing.
var Templates = []Template{
	// Goals. UEFA-style goal narrations never contain the word "goal" —
	// the observation behind Table 4's TRAD collapse on Q-1.
	{soccer.KindGoal, "{S} ({T}) scores!"},
	{soccer.KindGoal, "{S} ({T}) slots it home"},
	{soccer.KindGoal, "{S} ({T}) finds the net"},
	{soccer.KindHeaderGoal, "{S} ({T}) heads it in!"},
	{soccer.KindPenaltyGoal, "{S} ({T}) converts the penalty"},
	{soccer.KindFreeKickGoal, "{S} ({T}) curls the free-kick into"},
	{soccer.KindOwnGoal, "Disaster for {OT}! {S} turns the ball into his own net."},

	// Passes.
	{soccer.KindLongPass, "{S} ({T}) delivers a long pass to {O}"},
	{soccer.KindShortPass, "{S} ({T}) plays a short pass to {O}"},
	{soccer.KindCrossPass, "{S} ({T}) crosses to {O}"},
	{soccer.KindThroughPass, "{S} ({T}) threads a through ball to {O}"},

	// Shots.
	{soccer.KindShoot, "{S} ({T}) shoots from distance"},
	{soccer.KindShotOnTarget, "{S} ({T}) fires a shot on target"},
	{soccer.KindShotOffTarget, "{S} ({T}) drags a shot off target"},
	{soccer.KindHeaderShot, "{S} ({T}) heads the effort at goal"},

	// Saves: penalty save first, it shares the "saves" prefix.
	{soccer.KindPenaltySave, "{S} ({T}) saves the penalty from {O}"},
	{soccer.KindSave, "{S} ({T}) saves from {O}"},
	{soccer.KindSave, "Great save by {S} ({T}), denying {O}"},

	// Defensive play.
	{soccer.KindTackle, "{S} ({T}) wins the ball with a strong tackle on {O}"},
	{soccer.KindInterception, "{S} ({T}) intercepts a loose ball"},
	{soccer.KindClearance, "{S} ({T}) clears the danger"},
	{soccer.KindDribble, "{S} ({T}) dribbles past {O}"},

	// Fouls.
	{soccer.KindFoul, "{S} gives away a free-kick following a challenge on {O}"},
	{soccer.KindFoul, "{S} ({T}) fouls {O}"},
	{soccer.KindFoul, "{S} brings down {O}. Free-kick."},
	{soccer.KindHandBall, "{S} ({T}) is penalised for handball"},

	// Cards. The second-yellow template must precede the generic red card.
	{soccer.KindYellowCard, "{S} ({T}) is booked for a late challenge on {O}"},
	{soccer.KindYellowCard, "{S} ({T}) sees yellow"},
	{soccer.KindYellowCard, "{S} ({T}) is cautioned after a cynical challenge"},
	{soccer.KindSecondYellow, "{S} ({T}) is shown a second yellow and is sent off!"},
	{soccer.KindRedCard, "{S} ({T}) is sent off! Straight red."},

	// Other negative events.
	{soccer.KindOffside, "{S} ({T}) is flagged for offside"},
	{soccer.KindMissedGoal, "{S} ({T}) misses a goal from close range"},
	{soccer.KindMissedGoal, "{S} ({T}) fires wide of the post"},
	{soccer.KindMissedGoal, "{S} ({T}) blazes over the bar"},
	{soccer.KindMissedPenalty, "{S} ({T}) misses the penalty"},
	{soccer.KindInjury, "{O} ({OT}) stays down after a challenge from {S}"},

	// Neutral events.
	{soccer.KindSubstitution, "{T} substitution: {O} replaces {S}."},
	{soccer.KindCorner, "{S} ({T}) delivers the corner"},
	{soccer.KindCorner, "Corner to {T}. {S} takes it"},
	{soccer.KindFreeKick, "{S} ({T}) takes the free-kick"},
	{soccer.KindPenaltyKick, "Penalty to {T}! {S} steps up"},
	{soccer.KindThrowIn, "{S} ({T}) takes a long throw"},
	{soccer.KindGoalKick, "Goal kick for {T}. {S} will restart play"},
	{soccer.KindKickOff, "The referee blows and {T} kick off"},
	{soccer.KindHalfTime, "The referee blows for half-time."},
	{soccer.KindFullTime, "The final whistle goes."},
}

// triggerKeywords is the first analysis level (Section 3.3.2): a narration
// containing none of these phrases is discarded as UnknownEvent without
// template matching. The second level then applies the template table.
var triggerKeywords = []string{
	"scores", "slots it home", "finds the net", "heads it in", "converts the penalty",
	"curls the free-kick", "own net", "pass to", "crosses to", "through ball",
	"shoots", "shot on target", "shot off target", "effort at goal",
	"save", "saves", "tackle", "intercepts", "clears the danger", "dribbles",
	"free-kick", "fouls", "brings down", "handball", "booked", "sees yellow", "cautioned",
	"second yellow", "sent off", "offside", "misses", "fires wide", "blazes over",
	"stays down", "substitution", "replaces", "corner", "penalty", "long throw",
	"goal kick", "kick off", "half-time", "final whistle",
}

// passesLevelOne reports whether the raw narration contains any trigger.
func passesLevelOne(text string) bool {
	lower := strings.ToLower(text)
	for _, k := range triggerKeywords {
		if strings.Contains(lower, k) {
			return true
		}
	}
	return false
}

// compiledTemplate is the token form of a pattern: alternating literal
// segments and placeholder slots.
type compiledTemplate struct {
	kind soccer.EventKind
	// parts are the literal segments; between parts[i] and parts[i+1] sits
	// slots[i].
	parts []string
	slots []string // "S", "O", "T", "OT"
}

var compiledTemplates = compileAll()

func compileAll() []compiledTemplate {
	out := make([]compiledTemplate, len(Templates))
	for i, t := range Templates {
		out[i] = compileTemplate(t)
	}
	return out
}

func compileTemplate(t Template) compiledTemplate {
	c := compiledTemplate{kind: t.Kind}
	rest := t.Pattern
	for {
		i := strings.IndexByte(rest, '{')
		if i < 0 {
			c.parts = append(c.parts, rest)
			return c
		}
		j := strings.IndexByte(rest, '}')
		c.parts = append(c.parts, rest[:i])
		c.slots = append(c.slots, rest[i+1:j])
		rest = rest[j+1:]
	}
}

// match attempts the template against tagged text. On success it returns
// the slot bindings (slot name -> tag).
func (c compiledTemplate) match(tagged string) (map[string]string, bool) {
	bind := map[string]string{}
	rest := tagged
	for i, lit := range c.parts {
		if !strings.HasPrefix(rest, lit) {
			return nil, false
		}
		rest = rest[len(lit):]
		if i < len(c.slots) {
			tag, after, ok := readTag(rest)
			if !ok {
				return nil, false
			}
			slot := c.slots[i]
			if (slot == "T" || slot == "OT") != isTeamTag(tag) {
				return nil, false
			}
			bind[slot] = tag
			rest = after
		}
	}
	return bind, true
}

// readTag consumes a leading "<...>" tag.
func readTag(s string) (tag, rest string, ok bool) {
	if len(s) == 0 || s[0] != '<' {
		return "", "", false
	}
	j := strings.IndexByte(s, '>')
	if j < 0 {
		return "", "", false
	}
	return s[:j+1], s[j+1:], true
}

// isTeamTag distinguishes "<t1>" from "<t1p5>".
func isTeamTag(tag string) bool { return !strings.Contains(tag, "p") }
