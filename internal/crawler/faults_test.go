package crawler

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// outcomeSequence records what a client observes across n sequential
// requests to path: "ok", "500", or "neterr" (drop/truncation).
func outcomeSequence(t *testing.T, h http.Handler, path string, n int) []string {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	var out []string
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			out = append(out, "neterr")
			continue
		}
		_, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case readErr != nil:
			out = append(out, "neterr")
		case resp.StatusCode == http.StatusOK:
			out = append(out, "ok")
		default:
			out = append(out, "500")
		}
	}
	return out
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeHTML(w, "<html><body>hello hello hello</body></html>")
	})
}

// TestWithFaultsDeterministic: two injectors with the same seed produce
// the identical outcome sequence; a different seed produces a different
// one (for any reasonable seed pair).
func TestWithFaultsDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 7, DropRate: 0.3, ErrorRate: 0.3}
	a := outcomeSequence(t, WithFaults(okHandler(), cfg), "/x", 24)
	b := outcomeSequence(t, WithFaults(okHandler(), cfg), "/x", 24)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different fault schedules:\n%v\n%v", a, b)
	}
	faults := 0
	for _, o := range a {
		if o != "ok" {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Errorf("fault mix degenerate: %v", a)
	}
	cfg.Seed = 8
	c := outcomeSequence(t, WithFaults(okHandler(), cfg), "/x", 24)
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced identical schedules: %v", a)
	}
}

// TestWithFaultsZeroConfigTransparent: a zero-value config passes every
// request through untouched.
func TestWithFaultsZeroConfigTransparent(t *testing.T) {
	var cfg FaultConfig
	if cfg.Enabled() {
		t.Error("zero config claims to be enabled")
	}
	got := outcomeSequence(t, WithFaults(okHandler(), cfg), "/x", 10)
	for _, o := range got {
		if o != "ok" {
			t.Fatalf("zero-config injector faulted: %v", got)
		}
	}
}

// TestWithFaultsTruncation: a truncated body surfaces as a client read
// error, not a short success.
func TestWithFaultsTruncation(t *testing.T) {
	got := outcomeSequence(t, WithFaults(okHandler(), FaultConfig{Seed: 1, TruncateRate: 1}), "/x", 5)
	for _, o := range got {
		if o != "neterr" {
			t.Fatalf("truncated response read as %q", o)
		}
	}
}

// TestWithFaultsErrorRate: error-only faults surface as 500s.
func TestWithFaultsErrorRate(t *testing.T) {
	got := outcomeSequence(t, WithFaults(okHandler(), FaultConfig{Seed: 1, ErrorRate: 1}), "/x", 3)
	for _, o := range got {
		if o != "500" {
			t.Fatalf("forced error read as %q", o)
		}
	}
}

// TestWithFaultsLatency: latency jitter delays but does not fault.
func TestWithFaultsLatency(t *testing.T) {
	cfg := FaultConfig{Seed: 1, LatencyJitter: 10 * time.Millisecond}
	if !cfg.Enabled() {
		t.Error("latency-only config claims disabled")
	}
	got := outcomeSequence(t, WithFaults(okHandler(), cfg), "/x", 3)
	for _, o := range got {
		if o != "ok" {
			t.Fatalf("latency jitter faulted: %q", o)
		}
	}
}

func TestParseFaultConfig(t *testing.T) {
	fc, err := ParseFaultConfig("seed=9,drop=0.25,error=0.5,truncate=0.1,latency=75ms")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{Seed: 9, DropRate: 0.25, ErrorRate: 0.5, TruncateRate: 0.1, LatencyJitter: 75 * time.Millisecond}
	if fc != want {
		t.Errorf("ParseFaultConfig = %+v, want %+v", fc, want)
	}
	if fc, err := ParseFaultConfig("  "); err != nil || fc.Enabled() {
		t.Errorf("blank config: %+v, %v", fc, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-0.1", "bogus=1", "latency=fast", "seed=x"} {
		if _, err := ParseFaultConfig(bad); err == nil {
			t.Errorf("ParseFaultConfig(%q) accepted", bad)
		}
	}
}
