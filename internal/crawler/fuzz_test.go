package crawler

import (
	"strings"
	"testing"

	"repro/internal/soccer"
)

// FuzzParseMatchPage hardens the acquisition path against arbitrary
// upstream HTML: whatever bytes an origin serves, the parser must return a
// page or an error — never panic — and an accepted page must carry the
// non-empty ID the rest of the pipeline keys on.
func FuzzParseMatchPage(f *testing.F) {
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: 3, NarrationsPerMatch: 20})
	f.Add(RenderMatchPage(c.Matches[0]))
	f.Add("")
	f.Add("<html><body></body></html>")
	f.Add(`<h1 class="match" data-id="x" data-home-score="0" data-away-score="0"></h1>`)
	f.Add(`<h1 class="match" data-id="x" data-home-score="NaN" data-away-score="0"></h1>`)
	f.Add(`<h1 class="match" data-id="x" data-home-score="0" data-away-score="0"></h1>` + "\n" +
		`<li class="player" data-shirt="ten">P</li>`)
	f.Add(`<li class="goal" data-minute="90">x</li>`)
	f.Add(`<ul class="lineup" data-team=`)
	f.Add(`<h1 class="match" data-id="` + strings.Repeat("a", 100) + `"`)
	f.Fuzz(func(t *testing.T, src string) {
		page, err := ParseMatchPage(src)
		if err == nil && page.ID == "" {
			t.Errorf("accepted page with empty ID")
		}
		if err == nil {
			// Accepted pages must also survive link extraction untouched —
			// the two parsers see the same upstream bytes.
			ExtractLinks(src)
		}
	})
}

// FuzzExtractLinks: link extraction over arbitrary bytes must terminate
// and never return empty or duplicate hrefs.
func FuzzExtractLinks(f *testing.F) {
	f.Add(`<a href="/match/a">A</a>`)
	f.Add(`<a href='/b'>B</a>`)
	f.Add(`<a href="unterminated`)
	f.Add(`href=href=href="`)
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		links := ExtractLinks(src)
		seen := map[string]bool{}
		for _, l := range links {
			if l == "" {
				t.Error("empty href returned")
			}
			if seen[l] {
				t.Errorf("duplicate href %q", l)
			}
			seen[l] = true
		}
	})
}
