// Package crawler implements the web acquisition front of the pipeline
// (Section 3.1 step 1): an HTTP crawler that walks a match-listing site,
// fetches match pages and parses out the "basic information" (teams,
// lineups, goals, substitutions, stadium, referee) and the minute-by-minute
// narrations.
//
// The paper crawls uefa.com and sporx.com; this package substitutes an
// in-process net/http site (Server) generated from the simulated corpus,
// so the crawler exercises real HTTP fetching, link extraction and page
// parsing against pages with the same information content.
package crawler

import (
	"fmt"
	"html"
	"strconv"
	"strings"
)

// PlayerLine is one lineup row of a match page.
type PlayerLine struct {
	Name     string
	Short    string
	Position string
	Shirt    int
}

// GoalLine is one goal in the basic information.
type GoalLine struct {
	Minute  int
	Scorer  string // short name
	Team    string
	OwnGoal bool
}

// SubLine is one substitution in the basic information.
type SubLine struct {
	Minute int
	Off    string // short name leaving
	On     string // short name entering
	Team   string
}

// NarrationLine is one commentary entry.
type NarrationLine struct {
	Minute int
	Text   string
}

// MatchPage is everything parsed from one crawled match page. It is the
// crawler-side mirror of soccer.Match, decoupled so the extraction pipeline
// never depends on simulator internals.
type MatchPage struct {
	ID        string
	Home      string
	Away      string
	HomeScore int
	AwayScore int
	Date      string
	Referee   string
	Stadium   string
	// Lineups maps team name to its players.
	Lineups map[string][]PlayerLine
	// Coaches maps team name to coach name.
	Coaches    map[string]string
	Goals      []GoalLine
	Subs       []SubLine
	Narrations []NarrationLine
}

// ParseMatchPage parses the HTML produced by Server. The format is one
// element per line with data-* attributes, so parsing is a line scan; a
// malformed page yields an error naming the offending line.
func ParseMatchPage(htmlSrc string) (*MatchPage, error) {
	p := &MatchPage{Lineups: map[string][]PlayerLine{}, Coaches: map[string]string{}}
	currentTeam := ""
	for lineNo, raw := range strings.Split(htmlSrc, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, `<h1 class="match"`):
			p.ID = attr(line, "data-id")
			p.Home = attr(line, "data-home")
			p.Away = attr(line, "data-away")
			var err error
			if p.HomeScore, err = atoiAttr(line, "data-home-score"); err != nil {
				return nil, fmt.Errorf("crawler: line %d: %v", lineNo+1, err)
			}
			if p.AwayScore, err = atoiAttr(line, "data-away-score"); err != nil {
				return nil, fmt.Errorf("crawler: line %d: %v", lineNo+1, err)
			}
		case strings.HasPrefix(line, `<div class="meta"`):
			p.Date = attr(line, "data-date")
			p.Referee = attr(line, "data-referee")
			p.Stadium = attr(line, "data-stadium")
		case strings.HasPrefix(line, `<ul class="lineup"`):
			currentTeam = attr(line, "data-team")
			p.Coaches[currentTeam] = attr(line, "data-coach")
		case strings.HasPrefix(line, `<li class="player"`):
			shirt, err := atoiAttr(line, "data-shirt")
			if err != nil {
				return nil, fmt.Errorf("crawler: line %d: %v", lineNo+1, err)
			}
			p.Lineups[currentTeam] = append(p.Lineups[currentTeam], PlayerLine{
				Name:     text(line),
				Short:    attr(line, "data-short"),
				Position: attr(line, "data-pos"),
				Shirt:    shirt,
			})
		case strings.HasPrefix(line, `<li class="goal"`):
			min, err := atoiAttr(line, "data-minute")
			if err != nil {
				return nil, fmt.Errorf("crawler: line %d: %v", lineNo+1, err)
			}
			p.Goals = append(p.Goals, GoalLine{
				Minute:  min,
				Scorer:  text(line),
				Team:    attr(line, "data-team"),
				OwnGoal: attr(line, "data-own") == "true",
			})
		case strings.HasPrefix(line, `<li class="sub"`):
			min, err := atoiAttr(line, "data-minute")
			if err != nil {
				return nil, fmt.Errorf("crawler: line %d: %v", lineNo+1, err)
			}
			p.Subs = append(p.Subs, SubLine{
				Minute: min,
				Off:    text(line),
				On:     attr(line, "data-on"),
				Team:   attr(line, "data-team"),
			})
		case strings.HasPrefix(line, `<li class="narration"`):
			min, err := atoiAttr(line, "data-minute")
			if err != nil {
				return nil, fmt.Errorf("crawler: line %d: %v", lineNo+1, err)
			}
			p.Narrations = append(p.Narrations, NarrationLine{Minute: min, Text: text(line)})
		}
	}
	if p.ID == "" {
		return nil, fmt.Errorf("crawler: page has no match header")
	}
	return p, nil
}

// attr extracts an HTML attribute value from a single-line element.
func attr(line, name string) string {
	key := name + `="`
	i := strings.Index(line, key)
	if i < 0 {
		return ""
	}
	rest := line[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return html.UnescapeString(rest[:j])
}

// text extracts the unescaped inner text of a single-line element.
func text(line string) string {
	i := strings.IndexByte(line, '>')
	j := strings.LastIndexByte(line, '<')
	if i < 0 || j <= i {
		return ""
	}
	return html.UnescapeString(line[i+1 : j])
}

func atoiAttr(line, name string) (int, error) {
	v := attr(line, name)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("attribute %s=%q not a number", name, v)
	}
	return n, nil
}
