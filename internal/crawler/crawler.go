package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Crawler fetches a match site: the listing page, then every linked match
// page, concurrently with a bounded worker pool. It is deliberately a real
// HTTP client so the acquisition path of the paper's pipeline is exercised
// end to end, even though the site it points at is usually the in-process
// Server.
type Crawler struct {
	// Client is the HTTP client; nil uses a client with a 10s timeout.
	Client *http.Client
	// Concurrency bounds parallel fetches; 0 means 4.
	Concurrency int
	// Retries is how many times a failed page fetch is retried before the
	// crawl aborts; 0 means 2. Real match sites drop requests under load,
	// and losing a whole crawl to one hiccup would lose a whole index build.
	Retries int
	// RetryDelay spaces retries; 0 means 50ms.
	RetryDelay time.Duration
}

// fetchWithRetry fetches a URL, retrying transient failures.
func (c *Crawler) fetchWithRetry(ctx context.Context, client *http.Client, u string) (string, error) {
	retries := c.Retries
	if retries == 0 {
		retries = 2
	}
	delay := c.RetryDelay
	if delay == 0 {
		delay = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(delay):
			}
		}
		body, err := fetch(ctx, client, u)
		if err == nil {
			return body, nil
		}
		lastErr = err
	}
	return "", fmt.Errorf("after %d attempts: %w", retries+1, lastErr)
}

// Crawl fetches baseURL's /matches listing and every match page it links,
// returning parsed pages in listing order. Any fetch or parse error aborts
// the crawl.
func (c *Crawler) Crawl(ctx context.Context, baseURL string) ([]*MatchPage, error) {
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	conc := c.Concurrency
	if conc <= 0 {
		conc = 4
	}

	listing, err := c.fetchWithRetry(ctx, client, strings.TrimSuffix(baseURL, "/")+"/matches")
	if err != nil {
		return nil, fmt.Errorf("crawler: listing: %w", err)
	}
	links := ExtractLinks(listing)
	var matchURLs []string
	for _, l := range links {
		if strings.Contains(l, "/match/") {
			abs, err := resolveURL(baseURL, l)
			if err != nil {
				return nil, fmt.Errorf("crawler: bad link %q: %w", l, err)
			}
			matchURLs = append(matchURLs, abs)
		}
	}

	type result struct {
		idx  int
		page *MatchPage
		err  error
	}
	results := make([]result, len(matchURLs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	for i, u := range matchURLs {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body, err := c.fetchWithRetry(ctx, client, u)
			if err != nil {
				results[i] = result{idx: i, err: fmt.Errorf("fetch %s: %w", u, err)}
				return
			}
			page, err := ParseMatchPage(body)
			if err != nil {
				results[i] = result{idx: i, err: fmt.Errorf("parse %s: %w", u, err)}
				return
			}
			results[i] = result{idx: i, page: page}
		}(i, u)
	}
	wg.Wait()

	pages := make([]*MatchPage, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("crawler: %w", r.err)
		}
		pages = append(pages, r.page)
	}
	return pages, nil
}

func fetch(ctx context.Context, client *http.Client, u string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// ExtractLinks returns the href targets of every anchor in the HTML, in
// document order with duplicates removed.
func ExtractLinks(htmlSrc string) []string {
	var out []string
	seen := map[string]bool{}
	rest := htmlSrc
	for {
		i := strings.Index(rest, `href="`)
		if i < 0 {
			break
		}
		rest = rest[i+len(`href="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			break
		}
		href := rest[:j]
		rest = rest[j:]
		if href != "" && !seen[href] {
			seen[href] = true
			out = append(out, href)
		}
	}
	return out
}

func resolveURL(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", err
	}
	r, err := url.Parse(ref)
	if err != nil {
		return "", err
	}
	return b.ResolveReference(r).String(), nil
}

// SortPagesByID orders pages deterministically, which downstream indexing
// relies on for reproducible document ids.
func SortPagesByID(pages []*MatchPage) {
	sort.Slice(pages, func(i, j int) bool { return pages[i].ID < pages[j].ID })
}
