package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/resilience"
)

// DefaultMaxBodyBytes caps a fetched page body. The cap exists so a
// misbehaving origin cannot balloon an index build; exceeding it is a
// terminal per-page error, never a silently clipped page.
const DefaultMaxBodyBytes = 8 << 20

// Crawler fetches a match site: the listing page, then every linked match
// page, concurrently with a bounded worker pool. It is deliberately a real
// HTTP client so the acquisition path of the paper's pipeline is exercised
// end to end, even though the site it points at is usually the in-process
// Server.
//
// The zero value is the *unprotected* client: no retries, no rate limit,
// no circuit breaker, degrade-don't-abort crawls. New returns the hardened
// production configuration. Either way "no retries" is now expressible —
// the old zero-means-2 trap is gone.
type Crawler struct {
	// Client is the HTTP client; nil uses a client with a 10s timeout.
	Client *http.Client
	// Concurrency bounds parallel fetches; 0 means 4.
	Concurrency int
	// Retry is the backoff policy for transient per-request failures. The
	// zero value retries nothing; terminal errors (4xx, oversized or
	// malformed pages) are never retried regardless.
	Retry resilience.Policy
	// Limiter, when set, throttles requests per host.
	Limiter *resilience.Limiter
	// Breaker, when set, short-circuits requests to hosts that keep
	// failing, and probes them back in half-open state.
	Breaker *resilience.Breaker
	// Strict restores the historical all-or-nothing contract: any page
	// failure aborts the crawl. When false (the default), Crawl returns
	// every recoverable page plus an accounting of the losses.
	Strict bool
	// MaxBodyBytes caps one page body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// met holds resolved metric handles (see metrics.go); nil means the
	// process-wide defaults on obs.Default. Set through SetMetrics.
	met *crawlerMetrics
}

// New returns the production crawler: retries with exponential backoff and
// full jitter, a per-host circuit breaker, and degraded (non-strict)
// crawls. Real match sites drop requests under load, and losing a whole
// crawl to one hiccup would lose a whole index build.
func New() *Crawler {
	return &Crawler{
		Retry:   resilience.DefaultPolicy(),
		Breaker: resilience.NewBreaker(8, time.Second),
	}
}

// FetchFailure is one page the crawl could not recover: its URL, the final
// error after the retry budget, and how many attempts were spent on it.
type FetchFailure struct {
	URL      string
	Err      error
	Attempts int
}

func (f FetchFailure) String() string {
	return fmt.Sprintf("%s: %v (after %d attempts)", f.URL, f.Err, f.Attempts)
}

// CrawlReport is the full accounting of one crawl: every recovered page in
// listing order, every unrecoverable page, and the retry/backoff counters
// the resilience layer spent getting there.
type CrawlReport struct {
	// Pages are the successfully fetched and parsed match pages, in
	// listing order (failed pages leave no gap).
	Pages []*MatchPage
	// Failures lists pages lost after the retry budget. Empty on a clean
	// crawl; always empty in strict mode (failures abort instead).
	Failures []FetchFailure
	// Stats aggregates attempts, retries, backoff time and breaker
	// short-circuits across the listing and every page fetch.
	Stats resilience.Stats
}

// Degraded reports whether the crawl lost any page.
func (r *CrawlReport) Degraded() bool { return len(r.Failures) > 0 }

func (r *CrawlReport) String() string {
	return fmt.Sprintf("%d pages, %d failed (%d attempts, %d retries, %v backoff, %d short-circuits)",
		len(r.Pages), len(r.Failures), r.Stats.Attempts, r.Stats.Retries,
		r.Stats.Backoff.Round(time.Millisecond), r.Stats.ShortCircuits)
}

func (c *Crawler) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// fetchResilient fetches one URL under the full resilience stack: rate
// limiter, circuit breaker, retry policy with backoff. It returns the
// body, the attempt accounting, and the final error if the budget ran out
// or the failure was terminal.
func (c *Crawler) fetchResilient(ctx context.Context, client *http.Client, u string) (string, resilience.Stats, error) {
	met := c.metrics()
	fetchStart := time.Now()
	host := hostOf(u)
	var body string
	shortCircuits := 0
	st, err := c.Retry.Do(ctx, func() error {
		if c.Breaker != nil && !c.Breaker.Allow(host) {
			shortCircuits++
			return resilience.ErrOpen
		}
		if c.Limiter != nil {
			waitStart := time.Now()
			err := c.Limiter.Wait(ctx, host)
			met.limitWait.ObserveDuration(time.Since(waitStart))
			if err != nil {
				return err
			}
		}
		b, err := fetch(ctx, client, u, c.maxBody())
		if c.Breaker != nil {
			// Successes and transient failures shape the host's circuit;
			// terminal failures (a 404, an oversized body) say nothing
			// about the host's health and are not counted against it.
			if err == nil || resilience.Classify(err) == resilience.Retryable {
				c.Breaker.Report(host, err)
			}
		}
		if err == nil {
			body = b
		}
		return err
	})
	st.ShortCircuits = shortCircuits
	met.attempts.Add(uint64(st.Attempts))
	met.retries.Add(uint64(st.Retries))
	met.breaker.Add(uint64(shortCircuits))
	if err != nil {
		met.failures.Inc()
	}
	met.fetch.ObserveDuration(time.Since(fetchStart))
	return body, st, err
}

// Crawl fetches baseURL's /matches listing and every match page it links,
// returning parsed pages in listing order inside a CrawlReport. A listing
// failure or a done context aborts the crawl; per-page failures are
// retried under the policy and then either recorded in the report
// (default) or, in strict mode, abort the crawl as every failure once did.
func (c *Crawler) Crawl(ctx context.Context, baseURL string) (*CrawlReport, error) {
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	conc := c.Concurrency
	if conc <= 0 {
		conc = 4
	}

	rep := &CrawlReport{}
	listing, st, err := c.fetchResilient(ctx, client, strings.TrimSuffix(baseURL, "/")+"/matches")
	rep.Stats.Add(st)
	if err != nil {
		return nil, fmt.Errorf("crawler: listing: %w", err)
	}
	links := ExtractLinks(listing)
	var matchURLs []string
	for _, l := range links {
		if strings.Contains(l, "/match/") {
			abs, err := resolveURL(baseURL, l)
			if err != nil {
				if c.Strict {
					return nil, fmt.Errorf("crawler: bad link %q: %w", l, err)
				}
				rep.Failures = append(rep.Failures, FetchFailure{URL: l, Err: err, Attempts: 0})
				continue
			}
			matchURLs = append(matchURLs, abs)
		}
	}

	type result struct {
		page  *MatchPage
		err   error
		stats resilience.Stats
	}
	results := make([]result, len(matchURLs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	for i, u := range matchURLs {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body, st, err := c.fetchResilient(ctx, client, u)
			results[i].stats = st
			if err != nil {
				results[i].err = fmt.Errorf("fetch %s: %w", u, err)
				return
			}
			page, err := ParseMatchPage(body)
			if err != nil {
				// A page that fetched but won't parse is terminal: the
				// origin is serving garbage and retrying re-fetches the
				// same garbage.
				results[i].err = fmt.Errorf("parse %s: %w", u, resilience.Permanent(err))
				return
			}
			results[i].page = page
		}(i, u)
	}
	wg.Wait()

	for i, r := range results {
		rep.Stats.Add(r.stats)
		switch {
		case r.err != nil && c.Strict:
			return nil, fmt.Errorf("crawler: %w", r.err)
		case r.err != nil:
			rep.Failures = append(rep.Failures, FetchFailure{
				URL: matchURLs[i], Err: r.err, Attempts: r.stats.Attempts,
			})
		default:
			rep.Pages = append(rep.Pages, r.page)
		}
	}
	// A crawl cut off by the caller's context is an abort, not a
	// degradation — the report would undercount arbitrarily.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("crawler: %w", err)
	}
	c.metrics().pages.Add(uint64(len(rep.Pages)))
	return rep, nil
}

// hostOf keys the limiter and breaker; an unparsable URL keys on itself so
// its failures cannot poison a real host's circuit.
func hostOf(u string) string {
	parsed, err := url.Parse(u)
	if err != nil || parsed.Host == "" {
		return u
	}
	return parsed.Host
}

// fetch performs one GET. Non-200 statuses become resilience.HTTPError
// (classified by code), and a body exceeding maxBytes is a terminal error:
// a clipped page must never be silently indexed as a corrupt one.
func fetch(ctx context.Context, client *http.Client, u string, maxBytes int64) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &resilience.HTTPError{StatusCode: resp.StatusCode, Status: resp.Status}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes+1))
	if err != nil {
		return "", err
	}
	if int64(len(body)) > maxBytes {
		return "", resilience.Permanent(fmt.Errorf("body exceeds %d byte limit", maxBytes))
	}
	return string(body), nil
}

// ExtractLinks returns the href targets of every anchor in the HTML, in
// document order with duplicates removed. Both double- and single-quoted
// attribute values are understood; an unterminated quote ends the scan
// rather than swallowing the rest of the document as one link.
func ExtractLinks(htmlSrc string) []string {
	var out []string
	seen := map[string]bool{}
	rest := htmlSrc
	for {
		i := strings.Index(rest, `href=`)
		if i < 0 {
			break
		}
		rest = rest[i+len(`href=`):]
		if rest == "" {
			break
		}
		quote := rest[0]
		if quote != '"' && quote != '\'' {
			continue
		}
		rest = rest[1:]
		j := strings.IndexByte(rest, quote)
		if j < 0 {
			break
		}
		href := rest[:j]
		rest = rest[j+1:]
		if href != "" && !seen[href] {
			seen[href] = true
			out = append(out, href)
		}
	}
	return out
}

func resolveURL(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", err
	}
	r, err := url.Parse(ref)
	if err != nil {
		return "", err
	}
	return b.ResolveReference(r).String(), nil
}

// SortPagesByID orders pages deterministically, which downstream indexing
// relies on for reproducible document ids.
func SortPagesByID(pages []*MatchPage) {
	sort.Slice(pages, func(i, j int) bool { return pages[i].ID < pages[j].ID })
}
