package crawler

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultConfig drives the deterministic fault-injection middleware. Rates
// are probabilities in [0, 1]; they are drawn per request from a stream
// seeded by (Seed, path, per-path request ordinal), so the k-th request
// for a given URL faults — or not — identically across runs regardless of
// goroutine interleaving. That determinism is what lets tests assert the
// hardened crawler recovers the exact fault-free page set.
type FaultConfig struct {
	// Seed fixes the fault schedule; the same seed reproduces the same
	// faults per (path, ordinal).
	Seed int64
	// DropRate is the probability a request's connection is severed before
	// a response is written (the client sees EOF/ECONNRESET).
	DropRate float64
	// ErrorRate is the probability of a 500 response.
	ErrorRate float64
	// LatencyJitter adds a uniform [0, LatencyJitter) delay to every
	// response, faulted or not.
	LatencyJitter time.Duration
	// TruncateRate is the probability the response body is cut short under
	// an inflated Content-Length (the client sees io.ErrUnexpectedEOF).
	TruncateRate float64
}

// Enabled reports whether the config injects anything at all.
func (fc FaultConfig) Enabled() bool {
	return fc.DropRate > 0 || fc.ErrorRate > 0 || fc.TruncateRate > 0 || fc.LatencyJitter > 0
}

func (fc FaultConfig) String() string {
	return fmt.Sprintf("seed=%d drop=%.2f error=%.2f truncate=%.2f latency=%s",
		fc.Seed, fc.DropRate, fc.ErrorRate, fc.TruncateRate, fc.LatencyJitter)
}

// ParseFaultConfig reads the comma-separated "key=value" syntax of the
// soccrawl -faults flag, e.g. "seed=1,drop=0.2,error=0.1,latency=50ms".
// Keys: seed, drop, error, truncate, latency. Unknown keys are errors.
func ParseFaultConfig(s string) (FaultConfig, error) {
	var fc FaultConfig
	s = strings.TrimSpace(s)
	if s == "" {
		return fc, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fc, fmt.Errorf("faults: %q is not key=value", part)
		}
		var err error
		switch k {
		case "seed":
			fc.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			fc.DropRate, err = parseRate(v)
		case "error":
			fc.ErrorRate, err = parseRate(v)
		case "truncate":
			fc.TruncateRate, err = parseRate(v)
		case "latency":
			fc.LatencyJitter, err = time.ParseDuration(v)
		default:
			return fc, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return fc, fmt.Errorf("faults: %s: %v", k, err)
		}
	}
	return fc, nil
}

func parseRate(v string) (float64, error) {
	r, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// faultInjector wraps a handler with the configured faults.
type faultInjector struct {
	inner http.Handler
	cfg   FaultConfig

	mu       sync.Mutex
	ordinals map[string]int64 // per-path request counter
}

// WithFaults wraps handler in the deterministic fault-injection
// middleware. With a zero-value config it injects nothing. It is how tests
// and `soccrawl -serve -faults ...` turn the in-process match site into a
// hostile origin: dropped connections, 500s, latency spikes and truncated
// bodies, on a schedule fixed by the seed.
func WithFaults(handler http.Handler, cfg FaultConfig) http.Handler {
	return &faultInjector{inner: handler, cfg: cfg, ordinals: map[string]int64{}}
}

// draw produces this request's private random stream: seeded by the global
// seed, the request path and the per-path ordinal, so concurrency cannot
// reorder fault decisions.
func (f *faultInjector) draw(path string) *rand.Rand {
	f.mu.Lock()
	n := f.ordinals[path]
	f.ordinals[path] = n + 1
	f.mu.Unlock()
	h := fnv.New64a()
	h.Write([]byte(path))
	return rand.New(rand.NewSource(f.cfg.Seed ^ int64(h.Sum64()) ^ (n+1)*0x5851f42d4c957f2d))
}

func (f *faultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rnd := f.draw(r.URL.Path)
	if f.cfg.LatencyJitter > 0 {
		time.Sleep(time.Duration(rnd.Int63n(int64(f.cfg.LatencyJitter))))
	}
	p := rnd.Float64()
	switch {
	case p < f.cfg.DropRate:
		// Sever the connection without a response; net/http turns the
		// abort panic into a closed connection, which the client observes
		// as EOF / connection reset — a retryable network fault.
		panic(http.ErrAbortHandler)
	case p < f.cfg.DropRate+f.cfg.ErrorRate:
		http.Error(w, "injected fault", http.StatusInternalServerError)
	case p < f.cfg.DropRate+f.cfg.ErrorRate+f.cfg.TruncateRate:
		// Record the real response, then replay it under its true
		// Content-Length while writing only half the body: the server
		// closes the connection early and the client's read ends in
		// io.ErrUnexpectedEOF — the truncated-body fault.
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		for k, vs := range rec.Header() {
			w.Header()[k] = vs
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.Code)
		if len(body) > 1 {
			w.Write(body[:len(body)/2])
		}
		panic(http.ErrAbortHandler)
	default:
		f.inner.ServeHTTP(w, r)
	}
}
