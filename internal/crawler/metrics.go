package crawler

import (
	"repro/internal/obs"
)

// Metric names the crawler publishes. The CrawlReport already carries the
// same accounting per crawl; these series are the long-lived view a
// scraper watches across crawls.
const (
	metricAttempts  = "crawler_fetch_attempts_total"
	metricRetries   = "crawler_fetch_retries_total"
	metricFailures  = "crawler_fetch_failures_total"
	metricBreaker   = "crawler_breaker_open_total"
	metricPages     = "crawler_pages_total"
	metricFetchSec  = "crawler_fetch_seconds"
	metricLimitWait = "crawler_ratelimit_wait_seconds"
)

// crawlerMetrics holds the crawler's resolved handles; nil handles (from a
// nil registry) make every update a no-op.
type crawlerMetrics struct {
	attempts *obs.Counter
	retries  *obs.Counter
	failures *obs.Counter
	breaker  *obs.Counter
	pages    *obs.Counter
	// fetch observes one resilient fetch end to end — every attempt,
	// backoff and rate-limit wait included.
	fetch *obs.Histogram
	// limitWait observes time spent blocked in the rate limiter, the
	// self-inflicted share of fetch latency.
	limitWait *obs.Histogram
}

func newCrawlerMetrics(r *obs.Registry) *crawlerMetrics {
	r.Help(metricAttempts, "HTTP fetch attempts, including retries.")
	r.Help(metricRetries, "Fetch attempts beyond the first, per request.")
	r.Help(metricFailures, "Requests lost after the whole retry budget.")
	r.Help(metricBreaker, "Attempts short-circuited by an open breaker.")
	r.Help(metricPages, "Match pages successfully fetched and parsed.")
	r.Help(metricFetchSec, "Resilient fetch duration, retries included.")
	r.Help(metricLimitWait, "Time spent waiting on the per-host rate limiter.")
	return &crawlerMetrics{
		attempts:  r.Counter(metricAttempts),
		retries:   r.Counter(metricRetries),
		failures:  r.Counter(metricFailures),
		breaker:   r.Counter(metricBreaker),
		pages:     r.Counter(metricPages),
		fetch:     r.Histogram(metricFetchSec, nil),
		limitWait: r.Histogram(metricLimitWait, nil),
	}
}

// defaultCrawlerMetrics backs every crawler that was not pointed
// elsewhere, so the series exist on obs.Default (with zero values) from
// process start.
var defaultCrawlerMetrics = newCrawlerMetrics(obs.Default)

// SetMetrics points the crawler's instrumentation at a registry: a fresh
// registry isolates a test, nil disables the instrumentation. Crawlers
// left alone publish to obs.Default. Call before Crawl; the field is read
// concurrently by fetch workers afterwards.
func (c *Crawler) SetMetrics(r *obs.Registry) {
	c.met = newCrawlerMetrics(r)
}

// metrics returns the crawler's handles, defaulting to obs.Default.
func (c *Crawler) metrics() *crawlerMetrics {
	if c.met != nil {
		return c.met
	}
	return defaultCrawlerMetrics
}
