package crawler

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/soccer"
)

func testCorpus(t testing.TB) *soccer.Corpus {
	t.Helper()
	return soccer.Generate(soccer.Config{Matches: 3, Seed: 7, NarrationsPerMatch: 40})
}

// fastRetry is a test retry policy: generous budget, negligible delays.
func fastRetry(maxRetries int) resilience.Policy {
	return resilience.Policy{MaxRetries: maxRetries, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestPageRoundTrip(t *testing.T) {
	c := testCorpus(t)
	m := c.Matches[0]
	page, err := ParseMatchPage(RenderMatchPage(m))
	if err != nil {
		t.Fatalf("ParseMatchPage: %v", err)
	}
	if page.ID != m.ID || page.Home != m.Home.Name || page.Away != m.Away.Name {
		t.Errorf("header mismatch: %+v", page)
	}
	if page.HomeScore != m.HomeScore || page.AwayScore != m.AwayScore {
		t.Errorf("score mismatch: %d-%d vs %d-%d", page.HomeScore, page.AwayScore, m.HomeScore, m.AwayScore)
	}
	if page.Date != m.Date || page.Referee != m.Referee || page.Stadium != m.Home.Stadium {
		t.Errorf("meta mismatch: %+v", page)
	}
	if len(page.Lineups[m.Home.Name]) != 11 || len(page.Lineups[m.Away.Name]) != 11 {
		t.Errorf("lineups: %d home, %d away", len(page.Lineups[m.Home.Name]), len(page.Lineups[m.Away.Name]))
	}
	if page.Coaches[m.Home.Name] != m.Home.Coach {
		t.Errorf("coach = %q", page.Coaches[m.Home.Name])
	}
	for i, p := range m.Home.Players {
		got := page.Lineups[m.Home.Name][i]
		want := PlayerLine{Name: p.Name, Short: p.Short, Position: p.Position, Shirt: p.Shirt}
		if got != want {
			t.Errorf("player %d = %+v, want %+v", i, got, want)
		}
	}
	if len(page.Goals) != len(m.Goals) {
		t.Fatalf("goals = %d, want %d", len(page.Goals), len(m.Goals))
	}
	for i, g := range m.Goals {
		got := page.Goals[i]
		if got.Minute != g.Minute || got.Scorer != g.Scorer.Short || got.Team != g.Team.Name || got.OwnGoal != g.OwnGoal {
			t.Errorf("goal %d = %+v", i, got)
		}
	}
	if len(page.Subs) != len(m.Substitutions) {
		t.Errorf("subs = %d, want %d", len(page.Subs), len(m.Substitutions))
	}
	if len(page.Narrations) != len(m.Narrations) {
		t.Fatalf("narrations = %d, want %d", len(page.Narrations), len(m.Narrations))
	}
	for i, n := range m.Narrations {
		if page.Narrations[i].Text != n.Text || page.Narrations[i].Minute != n.Minute {
			t.Errorf("narration %d = %+v, want %+v", i, page.Narrations[i], n)
		}
	}
}

func TestPageEscaping(t *testing.T) {
	// Names with apostrophes (Eto'o, O'Shea) and narration punctuation must
	// survive the HTML round trip.
	c := soccer.Generate(soccer.Config{Matches: 10, Seed: 1, NarrationsPerMatch: 60})
	for _, m := range c.Matches {
		page, err := ParseMatchPage(RenderMatchPage(m))
		if err != nil {
			t.Fatalf("match %s: %v", m.ID, err)
		}
		for i, n := range m.Narrations {
			if page.Narrations[i].Text != n.Text {
				t.Fatalf("match %s narration %d: %q != %q", m.ID, i, page.Narrations[i].Text, n.Text)
			}
		}
	}
}

func TestParseMatchPageErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no header", "<html><body></body></html>"},
		{"bad score", `<h1 class="match" data-id="x" data-home-score="NaN" data-away-score="0"></h1>`},
		{"bad minute", `<h1 class="match" data-id="x" data-home-score="0" data-away-score="0"></h1>` + "\n" +
			`<li class="narration" data-minute="soon">text</li>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseMatchPage(c.src); err == nil {
				t.Error("ParseMatchPage accepted malformed page")
			}
		})
	}
}

func TestExtractLinks(t *testing.T) {
	html := `<a href="/match/a">A</a> <a href="/match/b">B</a> <a href="/match/a">dup</a> <a href="http://x/y">ext</a>`
	got := ExtractLinks(html)
	want := []string{"/match/a", "/match/b", "http://x/y"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractLinks = %v", got)
	}
}

// TestExtractLinksEdgeCases: malformed markup from a hostile or broken
// origin must degrade gracefully, never panic or mis-extract.
func TestExtractLinksEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{"empty input", "", nil},
		{"no links", "<p>plain text</p>", nil},
		{"unterminated quote", `<a href="/match/a`, nil},
		{"unterminated after good link", `<a href="/a">x</a><a href="/b`, []string{"/a"}},
		{"empty href", `<a href="">x</a><a href="/a">y</a>`, []string{"/a"}},
		{"duplicates collapse", `<a href="/a"></a><a href="/a"></a><a href="/a"></a>`, []string{"/a"}},
		{"single-quoted", `<a href='/match/a'>A</a> <a href='/b'>B</a>`, []string{"/match/a", "/b"}},
		{"mixed quoting", `<a href='/a'>x</a><a href="/b">y</a>`, []string{"/a", "/b"}},
		{"double quote inside single-quoted value", `<a href='/a"b'>x</a>`, []string{`/a"b`}},
		{"unquoted value skipped", `<a href=/a>x</a><a href="/b">y</a>`, []string{"/b"}},
		{"href at end of input", `<a href=`, nil},
		{"bare href", `href`, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := ExtractLinks(c.src)
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("ExtractLinks(%q) = %v, want %v", c.src, got, c.want)
			}
		})
	}
}

func TestCrawlEndToEnd(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	rep, err := (&Crawler{}).Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if rep.Degraded() {
		t.Fatalf("clean crawl degraded: %v", rep.Failures)
	}
	if len(rep.Pages) != len(c.Matches) {
		t.Fatalf("crawled %d pages, want %d", len(rep.Pages), len(c.Matches))
	}
	for i, m := range c.Matches {
		if rep.Pages[i].ID != m.ID {
			t.Errorf("page %d id = %q, want %q", i, rep.Pages[i].ID, m.ID)
		}
	}
	// 1 listing + N pages, no retries.
	if want := len(c.Matches) + 1; rep.Stats.Attempts != want || rep.Stats.Retries != 0 {
		t.Errorf("stats = %+v, want %d attempts, 0 retries", rep.Stats, want)
	}
}

func TestCrawlRootRedirect(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	// The crawler appends /matches itself; fetching the root should also
	// work through the redirect for humans pointing a browser at it.
	rep, err := (&Crawler{Concurrency: 1}).Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Crawl with trailing slash: %v", err)
	}
	if len(rep.Pages) != len(c.Matches) {
		t.Errorf("crawled %d pages", len(rep.Pages))
	}
}

func TestCrawlUnknownHost(t *testing.T) {
	_, err := (&Crawler{}).Crawl(context.Background(), "http://127.0.0.1:1")
	if err == nil {
		t.Error("Crawl of dead endpoint succeeded")
	}
}

func TestCrawl404Page(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	// A direct fetch of a missing match must 404, classified terminal.
	body, err := fetch(context.Background(), srv.Client(), srv.URL+"/match/nope", DefaultMaxBodyBytes)
	if err == nil {
		t.Fatalf("missing match fetched: %q", body[:40])
	}
	if resilience.Classify(err) != resilience.Terminal {
		t.Errorf("404 classified %v, want terminal", resilience.Classify(err))
	}
}

func TestCrawlSurvivesFlakyServer(t *testing.T) {
	// The server fails every first request per URL with a 500; retries must
	// carry the crawl through.
	c := testCorpus(t)
	inner := NewServer(c)
	var mu sync.Mutex
	failed := map[string]bool{}
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		first := !failed[r.URL.Path]
		failed[r.URL.Path] = true
		mu.Unlock()
		if first {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	rep, err := (&Crawler{Retry: fastRetry(2)}).Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Crawl with retries: %v", err)
	}
	if len(rep.Pages) != len(c.Matches) {
		t.Errorf("crawled %d pages, want %d", len(rep.Pages), len(c.Matches))
	}
	if rep.Stats.Retries == 0 {
		t.Error("report shows no retries despite a flaky server")
	}
}

// TestNoRetriesIsExpressible: the zero-value crawler really makes a single
// attempt per URL — the old "0 silently means 2" trap is gone.
func TestNoRetriesIsExpressible(t *testing.T) {
	var requests atomic.Int64
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer always.Close()
	_, err := (&Crawler{}).Crawl(context.Background(), always.URL)
	if err == nil {
		t.Fatal("crawl of failing server succeeded")
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("zero-value crawler made %d requests to the listing, want exactly 1", n)
	}
}

// TestTerminalErrorsNotRetried: 4xx pages burn one attempt, not the whole
// retry budget.
func TestTerminalErrorsNotRetried(t *testing.T) {
	c := testCorpus(t)
	inner := NewServer(c)
	var matchRequests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/match/") {
			matchRequests.Add(1)
			http.Error(w, "gone", http.StatusGone)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rep, err := (&Crawler{Retry: fastRetry(5)}).Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(rep.Failures) != len(c.Matches) || len(rep.Pages) != 0 {
		t.Fatalf("report: %d pages, %d failures", len(rep.Pages), len(rep.Failures))
	}
	if n := matchRequests.Load(); n != int64(len(c.Matches)) {
		t.Errorf("match pages requested %d times, want %d (no retries of terminal 410s)", n, len(c.Matches))
	}
}

// TestParseFailuresNotRetried: a page that fetches but does not parse is
// terminal — the crawler must not re-download garbage.
func TestParseFailuresNotRetried(t *testing.T) {
	var matchRequests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/matches":
			writeHTML(w, `<a href="/match/x">x</a>`)
		default:
			matchRequests.Add(1)
			writeHTML(w, "<html><body>not a match page</body></html>")
		}
	}))
	defer srv.Close()
	rep, err := (&Crawler{Retry: fastRetry(5)}).Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %v", rep.Failures)
	}
	if n := matchRequests.Load(); n != 1 {
		t.Errorf("unparseable page fetched %d times, want 1", n)
	}
}

// TestCrawlDegradesInsteadOfAborting: one permanently broken page no
// longer costs the other pages; strict mode restores the old contract.
func TestCrawlDegradesInsteadOfAborting(t *testing.T) {
	c := testCorpus(t)
	inner := NewServer(c)
	broken := "/match/" + c.Matches[1].ID
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == broken {
			http.Error(w, "hopeless", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rep, err := (&Crawler{Retry: fastRetry(1)}).Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("degraded crawl errored: %v", err)
	}
	if !rep.Degraded() || len(rep.Failures) != 1 || len(rep.Pages) != len(c.Matches)-1 {
		t.Fatalf("report = %s", rep)
	}
	if !strings.Contains(rep.Failures[0].URL, broken) {
		t.Errorf("failure URL = %q, want suffix %q", rep.Failures[0].URL, broken)
	}
	if rep.Failures[0].Attempts != 2 {
		t.Errorf("failure attempts = %d, want 2", rep.Failures[0].Attempts)
	}

	// Strict mode: the same site aborts the whole crawl.
	if _, err := (&Crawler{Retry: fastRetry(1), Strict: true}).Crawl(context.Background(), srv.URL); err == nil {
		t.Error("strict crawl of broken site succeeded")
	}
}

// TestCrawlDeterministicFaultRecovery is the fault-injection acceptance
// test: under seeded drops and 500s the hardened crawler recovers the
// identical page set a fault-free crawl yields, and the report shows the
// retries it took. In strict mode with no retry budget the same fault
// schedule aborts, as every fault once did.
func TestCrawlDeterministicFaultRecovery(t *testing.T) {
	c := testCorpus(t)
	cfg := FaultConfig{Seed: 42, DropRate: 0.2, ErrorRate: 0.1}

	clean := httptest.NewServer(NewServer(c))
	defer clean.Close()
	want, err := (&Crawler{}).Crawl(context.Background(), clean.URL)
	if err != nil {
		t.Fatalf("fault-free crawl: %v", err)
	}

	faulty := httptest.NewServer(WithFaults(NewServer(c), cfg))
	defer faulty.Close()
	hardened := &Crawler{Retry: fastRetry(8), Breaker: resilience.NewBreaker(10, 10*time.Millisecond)}
	got, err := hardened.Crawl(context.Background(), faulty.URL)
	if err != nil {
		t.Fatalf("hardened crawl under faults: %v", err)
	}
	if got.Degraded() {
		t.Fatalf("hardened crawl lost pages: %v", got.Failures)
	}
	if len(got.Pages) != len(want.Pages) {
		t.Fatalf("recovered %d pages, want %d", len(got.Pages), len(want.Pages))
	}
	for i := range want.Pages {
		if !reflect.DeepEqual(got.Pages[i], want.Pages[i]) {
			t.Errorf("page %d differs between faulty and fault-free crawls", i)
		}
	}
	if got.Stats.Retries == 0 {
		t.Error("report records zero retries under a 30% fault rate")
	}

	// Strict mode, fresh identical fault schedule, no retry budget: abort.
	strictSrv := httptest.NewServer(WithFaults(NewServer(c), cfg))
	defer strictSrv.Close()
	if _, err := (&Crawler{Strict: true}).Crawl(context.Background(), strictSrv.URL); err == nil {
		t.Error("strict no-retry crawl survived the fault schedule")
	}
}

// TestCrawlerCircuitBreaker is the circuit-breaker acceptance test: a
// persistently failing host opens the breaker at the threshold, subsequent
// attempts short-circuit without touching the network, and a half-open
// probe closes the circuit once the fault clears.
func TestCrawlerCircuitBreaker(t *testing.T) {
	var requests atomic.Int64
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		writeHTML(w, "ok")
	}))
	defer srv.Close()

	breaker := resilience.NewBreaker(2, time.Minute)
	now := time.Unix(0, 0)
	var clockMu sync.Mutex
	breaker.SetClock(func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now })
	c := &Crawler{Retry: fastRetry(5), Breaker: breaker}

	_, st, err := c.fetchResilient(context.Background(), srv.Client(), srv.URL+"/x")
	if err == nil {
		t.Fatal("fetch from failing host succeeded")
	}
	// 6 attempts, but only 2 reach the network before the circuit opens.
	if n := requests.Load(); n != 2 {
		t.Fatalf("network saw %d requests, want 2 (breaker threshold)", n)
	}
	if st.ShortCircuits != 4 {
		t.Errorf("short-circuits = %d, want 4", st.ShortCircuits)
	}

	// Host recovers, but the circuit is still open: no network traffic.
	healthy.Store(true)
	if _, _, err := c.fetchResilient(context.Background(), srv.Client(), srv.URL+"/x"); err == nil {
		t.Fatal("open circuit let a request through")
	}
	if n := requests.Load(); n != 2 {
		t.Fatalf("open circuit leaked %d extra requests", n-2)
	}

	// Cooldown passes: the half-open probe succeeds and closes the circuit.
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	body, _, err := c.fetchResilient(context.Background(), srv.Client(), srv.URL+"/x")
	if err != nil || body != "ok" {
		t.Fatalf("probe after recovery: %q, %v", body, err)
	}
	if state := breaker.State(hostOf(srv.URL)); state != "closed" {
		t.Errorf("breaker state after successful probe = %s", state)
	}
}

// TestFetchRejectsOversizedBody: a body larger than the cap fails loudly
// instead of being silently clipped and indexed corrupt.
func TestFetchRejectsOversizedBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeHTML(w, strings.Repeat("x", 2048))
	}))
	defer srv.Close()
	_, err := fetch(context.Background(), srv.Client(), srv.URL, 1024)
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if !strings.Contains(err.Error(), "exceeds 1024 byte limit") {
		t.Errorf("err = %v", err)
	}
	if resilience.Classify(err) != resilience.Terminal {
		t.Error("oversized body classified retryable")
	}
	// A body exactly at the cap is fine.
	if _, err := fetch(context.Background(), srv.Client(), srv.URL, 2048+int64(len("<html>"))+100); err != nil {
		t.Errorf("body under cap rejected: %v", err)
	}
}

func TestCrawlContextCancellation(t *testing.T) {
	// A cancelled context must abort retries promptly.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer always.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := (&Crawler{Retry: resilience.Policy{MaxRetries: 5, BaseDelay: time.Second}}).Crawl(ctx, always.URL)
	if err == nil {
		t.Fatal("cancelled crawl succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("cancelled crawl took %v", time.Since(start))
	}
}

func TestCrawlBadBaseURL(t *testing.T) {
	if _, err := (&Crawler{}).Crawl(context.Background(), "://not a url"); err == nil {
		t.Error("malformed base URL accepted")
	}
}

func TestNewCrawlerDefaults(t *testing.T) {
	c := New()
	if c.Retry.MaxRetries == 0 {
		t.Error("production crawler has no retry budget")
	}
	if c.Breaker == nil {
		t.Error("production crawler has no circuit breaker")
	}
	if c.Strict {
		t.Error("production crawler is strict by default")
	}
}

func TestSortPagesByID(t *testing.T) {
	pages := []*MatchPage{{ID: "c"}, {ID: "a"}, {ID: "b"}}
	SortPagesByID(pages)
	if pages[0].ID != "a" || pages[2].ID != "c" {
		t.Errorf("sorted order: %v %v %v", pages[0].ID, pages[1].ID, pages[2].ID)
	}
}

func TestServerListingContainsAllMatches(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	body, err := fetch(context.Background(), srv.Client(), srv.URL+"/matches", DefaultMaxBodyBytes)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Matches {
		if !strings.Contains(body, m.ID) {
			t.Errorf("listing missing match %s", m.ID)
		}
	}
}
