package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/soccer"
)

func testCorpus(t testing.TB) *soccer.Corpus {
	t.Helper()
	return soccer.Generate(soccer.Config{Matches: 3, Seed: 7, NarrationsPerMatch: 40})
}

func TestPageRoundTrip(t *testing.T) {
	c := testCorpus(t)
	m := c.Matches[0]
	page, err := ParseMatchPage(RenderMatchPage(m))
	if err != nil {
		t.Fatalf("ParseMatchPage: %v", err)
	}
	if page.ID != m.ID || page.Home != m.Home.Name || page.Away != m.Away.Name {
		t.Errorf("header mismatch: %+v", page)
	}
	if page.HomeScore != m.HomeScore || page.AwayScore != m.AwayScore {
		t.Errorf("score mismatch: %d-%d vs %d-%d", page.HomeScore, page.AwayScore, m.HomeScore, m.AwayScore)
	}
	if page.Date != m.Date || page.Referee != m.Referee || page.Stadium != m.Home.Stadium {
		t.Errorf("meta mismatch: %+v", page)
	}
	if len(page.Lineups[m.Home.Name]) != 11 || len(page.Lineups[m.Away.Name]) != 11 {
		t.Errorf("lineups: %d home, %d away", len(page.Lineups[m.Home.Name]), len(page.Lineups[m.Away.Name]))
	}
	if page.Coaches[m.Home.Name] != m.Home.Coach {
		t.Errorf("coach = %q", page.Coaches[m.Home.Name])
	}
	for i, p := range m.Home.Players {
		got := page.Lineups[m.Home.Name][i]
		want := PlayerLine{Name: p.Name, Short: p.Short, Position: p.Position, Shirt: p.Shirt}
		if got != want {
			t.Errorf("player %d = %+v, want %+v", i, got, want)
		}
	}
	if len(page.Goals) != len(m.Goals) {
		t.Fatalf("goals = %d, want %d", len(page.Goals), len(m.Goals))
	}
	for i, g := range m.Goals {
		got := page.Goals[i]
		if got.Minute != g.Minute || got.Scorer != g.Scorer.Short || got.Team != g.Team.Name || got.OwnGoal != g.OwnGoal {
			t.Errorf("goal %d = %+v", i, got)
		}
	}
	if len(page.Subs) != len(m.Substitutions) {
		t.Errorf("subs = %d, want %d", len(page.Subs), len(m.Substitutions))
	}
	if len(page.Narrations) != len(m.Narrations) {
		t.Fatalf("narrations = %d, want %d", len(page.Narrations), len(m.Narrations))
	}
	for i, n := range m.Narrations {
		if page.Narrations[i].Text != n.Text || page.Narrations[i].Minute != n.Minute {
			t.Errorf("narration %d = %+v, want %+v", i, page.Narrations[i], n)
		}
	}
}

func TestPageEscaping(t *testing.T) {
	// Names with apostrophes (Eto'o, O'Shea) and narration punctuation must
	// survive the HTML round trip.
	c := soccer.Generate(soccer.Config{Matches: 10, Seed: 1, NarrationsPerMatch: 60})
	for _, m := range c.Matches {
		page, err := ParseMatchPage(RenderMatchPage(m))
		if err != nil {
			t.Fatalf("match %s: %v", m.ID, err)
		}
		for i, n := range m.Narrations {
			if page.Narrations[i].Text != n.Text {
				t.Fatalf("match %s narration %d: %q != %q", m.ID, i, page.Narrations[i].Text, n.Text)
			}
		}
	}
}

func TestParseMatchPageErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no header", "<html><body></body></html>"},
		{"bad score", `<h1 class="match" data-id="x" data-home-score="NaN" data-away-score="0"></h1>`},
		{"bad minute", `<h1 class="match" data-id="x" data-home-score="0" data-away-score="0"></h1>` + "\n" +
			`<li class="narration" data-minute="soon">text</li>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseMatchPage(c.src); err == nil {
				t.Error("ParseMatchPage accepted malformed page")
			}
		})
	}
}

func TestExtractLinks(t *testing.T) {
	html := `<a href="/match/a">A</a> <a href="/match/b">B</a> <a href="/match/a">dup</a> <a href="http://x/y">ext</a>`
	got := ExtractLinks(html)
	want := []string{"/match/a", "/match/b", "http://x/y"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractLinks = %v", got)
	}
}

func TestCrawlEndToEnd(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	pages, err := (&Crawler{}).Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(pages) != len(c.Matches) {
		t.Fatalf("crawled %d pages, want %d", len(pages), len(c.Matches))
	}
	for i, m := range c.Matches {
		if pages[i].ID != m.ID {
			t.Errorf("page %d id = %q, want %q", i, pages[i].ID, m.ID)
		}
	}
}

func TestCrawlRootRedirect(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	// The crawler appends /matches itself; fetching the root should also
	// work through the redirect for humans pointing a browser at it.
	pages, err := (&Crawler{Concurrency: 1}).Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Crawl with trailing slash: %v", err)
	}
	if len(pages) != len(c.Matches) {
		t.Errorf("crawled %d pages", len(pages))
	}
}

func TestCrawlUnknownHost(t *testing.T) {
	_, err := (&Crawler{}).Crawl(context.Background(), "http://127.0.0.1:1")
	if err == nil {
		t.Error("Crawl of dead endpoint succeeded")
	}
}

func TestCrawl404Page(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	// A direct fetch of a missing match must 404.
	body, err := fetch(context.Background(), srv.Client(), srv.URL+"/match/nope")
	if err == nil {
		t.Errorf("missing match fetched: %q", body[:40])
	}
}

func TestCrawlSurvivesFlakyServer(t *testing.T) {
	// The server fails every first request per URL with a 500; retries must
	// carry the crawl through.
	c := testCorpus(t)
	inner := NewServer(c)
	var mu sync.Mutex
	failed := map[string]bool{}
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		first := !failed[r.URL.Path]
		failed[r.URL.Path] = true
		mu.Unlock()
		if first {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	pages, err := (&Crawler{Retries: 2, RetryDelay: time.Millisecond}).Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Crawl with retries: %v", err)
	}
	if len(pages) != len(c.Matches) {
		t.Errorf("crawled %d pages, want %d", len(pages), len(c.Matches))
	}
}

func TestCrawlGivesUpAfterRetries(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer always.Close()
	_, err := (&Crawler{Retries: 1, RetryDelay: time.Millisecond}).Crawl(context.Background(), always.URL)
	if err == nil {
		t.Fatal("crawl of permanently failing server succeeded")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error does not mention retries: %v", err)
	}
}

func TestSortPagesByID(t *testing.T) {
	pages := []*MatchPage{{ID: "c"}, {ID: "a"}, {ID: "b"}}
	SortPagesByID(pages)
	if pages[0].ID != "a" || pages[2].ID != "c" {
		t.Errorf("sorted order: %v %v %v", pages[0].ID, pages[1].ID, pages[2].ID)
	}
}

func TestServerListingContainsAllMatches(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	body, err := fetch(context.Background(), srv.Client(), srv.URL+"/matches")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Matches {
		if !strings.Contains(body, m.ID) {
			t.Errorf("listing missing match %s", m.ID)
		}
	}
}

func TestCrawlContextCancellation(t *testing.T) {
	// A cancelled context must abort retries promptly.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer always.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := (&Crawler{Retries: 5, RetryDelay: time.Second}).Crawl(ctx, always.URL)
	if err == nil {
		t.Fatal("cancelled crawl succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("cancelled crawl took %v", time.Since(start))
	}
}

func TestCrawlBadBaseURL(t *testing.T) {
	if _, err := (&Crawler{}).Crawl(context.Background(), "://not a url"); err == nil {
		t.Error("malformed base URL accepted")
	}
}
