package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// TestCrawlMetricsCleanCrawl: a clean crawl moves attempts, pages and the
// fetch histogram, and nothing else.
func TestCrawlMetricsCleanCrawl(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	cr := New()
	r := obs.NewRegistry()
	cr.SetMetrics(r)
	rep, err := cr.Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Listing + one fetch per match page, no retries needed.
	wantAttempts := uint64(len(rep.Pages) + 1)
	if got := r.Counter(metricAttempts).Value(); got != wantAttempts {
		t.Errorf("attempts = %d, want %d", got, wantAttempts)
	}
	if got := r.Counter(metricPages).Value(); got != uint64(len(rep.Pages)) {
		t.Errorf("pages = %d, want %d", got, len(rep.Pages))
	}
	if got := r.Histogram(metricFetchSec, nil).Count(); got != wantAttempts {
		t.Errorf("fetch observations = %d, want %d", got, wantAttempts)
	}
	for _, name := range []string{metricRetries, metricFailures, metricBreaker} {
		if got := r.Counter(name).Value(); got != 0 {
			t.Errorf("%s = %d on a clean crawl", name, got)
		}
	}
}

// TestCrawlMetricsRetriesAndFailures: a flaky origin shows up in the retry
// counter, a permanently dead page in the failure counter, and the per-
// crawl CrawlReport stats agree with the registry.
func TestCrawlMetricsRetriesAndFailures(t *testing.T) {
	c := testCorpus(t)
	inner := NewServer(c)
	dead := "/match/" + c.Matches[0].ID
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/match/") {
			if r.URL.Path == dead {
				http.Error(w, "gone for good", http.StatusServiceUnavailable)
				return
			}
			// Every other page fails once, then recovers.
			if n.Add(1)%2 == 1 {
				http.Error(w, "flaky", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cr := &Crawler{Retry: fastRetry(2)}
	r := obs.NewRegistry()
	cr.SetMetrics(r)
	rep, err := cr.Crawl(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded() {
		t.Fatal("dead page did not degrade the crawl")
	}
	if got := r.Counter(metricRetries).Value(); got != uint64(rep.Stats.Retries) {
		t.Errorf("retries = %d, report says %d", got, rep.Stats.Retries)
	}
	if got := r.Counter(metricAttempts).Value(); got != uint64(rep.Stats.Attempts) {
		t.Errorf("attempts = %d, report says %d", got, rep.Stats.Attempts)
	}
	if got := r.Counter(metricFailures).Value(); got != uint64(len(rep.Failures)) {
		t.Errorf("failures = %d, report lists %d", got, len(rep.Failures))
	}
	if got := r.Counter(metricPages).Value(); got != uint64(len(rep.Pages)) {
		t.Errorf("pages = %d, report has %d", got, len(rep.Pages))
	}
}

// TestCrawlMetricsBreakerAndLimiter: breaker short-circuits land in
// crawler_breaker_open_total and limiter waits in the wait histogram.
func TestCrawlMetricsBreakerAndLimiter(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer always.Close()

	cr := &Crawler{
		Retry:   fastRetry(6),
		Breaker: resilience.NewBreaker(2, time.Minute),
		Limiter: resilience.NewLimiter(1000, 1),
	}
	r := obs.NewRegistry()
	cr.SetMetrics(r)
	if _, err := cr.Crawl(context.Background(), always.URL); err == nil {
		t.Fatal("crawl of a dead origin succeeded")
	}
	if got := r.Counter(metricBreaker).Value(); got == 0 {
		t.Error("breaker opened but crawler_breaker_open_total = 0")
	}
	if got := r.Counter(metricFailures).Value(); got == 0 {
		t.Error("listing was lost but crawler_fetch_failures_total = 0")
	}
	if got := r.Histogram(metricLimitWait, nil).Count(); got == 0 {
		t.Error("limiter engaged but wait histogram is empty")
	}
}

// TestCrawlerDefaultRegistry: an untouched crawler publishes to
// obs.Default, so the series exist process-wide without wiring.
func TestCrawlerDefaultRegistry(t *testing.T) {
	c := testCorpus(t)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	before := obs.Default.Counter(metricPages).Value()
	if _, err := New().Crawl(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if after := obs.Default.Counter(metricPages).Value(); after <= before {
		t.Errorf("default-registry pages did not grow: %d -> %d", before, after)
	}
}
