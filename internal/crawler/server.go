package crawler

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"repro/internal/soccer"
)

// NewServer returns an http.Handler serving the simulated corpus as a small
// match-report site: "/matches" lists links to "/match/<id>" pages whose
// markup ParseMatchPage understands. It stands in for uefa.com in every
// test and example, and cmd/soccrawl can serve it on a real port.
func NewServer(c *soccer.Corpus) http.Handler {
	mux := http.NewServeMux()
	byID := make(map[string]*soccer.Match, len(c.Matches))
	for _, m := range c.Matches {
		byID[m.ID] = m
	}
	mux.HandleFunc("/matches", func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		b.WriteString("<html><head><title>Matches</title></head><body>\n<ul>\n")
		for _, m := range c.Matches {
			fmt.Fprintf(&b, "<li><a href=\"/match/%s\">%s vs %s</a></li>\n",
				html.EscapeString(m.ID), html.EscapeString(m.Home.Name), html.EscapeString(m.Away.Name))
		}
		b.WriteString("</ul>\n</body></html>\n")
		writeHTML(w, b.String())
	})
	mux.HandleFunc("/match/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/match/")
		m, ok := byID[id]
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeHTML(w, RenderMatchPage(m))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/matches", http.StatusFound)
	})
	return mux
}

func writeHTML(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, body)
}

// PagesFromCorpus renders and re-parses every match, producing the pages a
// crawl of the served site would yield without the HTTP round trip. Tests,
// benches and examples that don't exercise the network use this.
func PagesFromCorpus(c *soccer.Corpus) []*MatchPage {
	pages := make([]*MatchPage, 0, len(c.Matches))
	for _, m := range c.Matches {
		page, err := ParseMatchPage(RenderMatchPage(m))
		if err != nil {
			// Render and Parse are inverse by construction; a failure here
			// is a programming error, not an input error.
			panic("crawler: corpus page round trip failed: " + err.Error())
		}
		pages = append(pages, page)
	}
	return pages
}

// RenderMatchPage renders one match as the line-oriented HTML the parser
// reads back. Round-tripping through Render/Parse is lossless for all the
// basic information and narrations (TestPageRoundTrip pins this).
func RenderMatchPage(m *soccer.Match) string {
	var b strings.Builder
	esc := html.EscapeString
	fmt.Fprintf(&b, "<html><head><title>%s vs %s</title></head><body>\n", esc(m.Home.Name), esc(m.Away.Name))
	fmt.Fprintf(&b, "<h1 class=\"match\" data-id=\"%s\" data-home=\"%s\" data-away=\"%s\" data-home-score=\"%d\" data-away-score=\"%d\">%s %d - %d %s</h1>\n",
		esc(m.ID), esc(m.Home.Name), esc(m.Away.Name), m.HomeScore, m.AwayScore,
		esc(m.Home.Name), m.HomeScore, m.AwayScore, esc(m.Away.Name))
	fmt.Fprintf(&b, "<div class=\"meta\" data-date=\"%s\" data-referee=\"%s\" data-stadium=\"%s\"></div>\n",
		esc(m.Date), esc(m.Referee), esc(m.Home.Stadium))
	for _, t := range m.Teams() {
		fmt.Fprintf(&b, "<ul class=\"lineup\" data-team=\"%s\" data-coach=\"%s\">\n", esc(t.Name), esc(t.Coach))
		for _, p := range t.Players {
			fmt.Fprintf(&b, "<li class=\"player\" data-short=\"%s\" data-pos=\"%s\" data-shirt=\"%d\">%s</li>\n",
				esc(p.Short), esc(p.Position), p.Shirt, esc(p.Name))
		}
		b.WriteString("</ul>\n")
	}
	b.WriteString("<ul class=\"goals\">\n")
	for _, g := range m.Goals {
		fmt.Fprintf(&b, "<li class=\"goal\" data-minute=\"%d\" data-team=\"%s\" data-own=\"%t\">%s</li>\n",
			g.Minute, esc(g.Team.Name), g.OwnGoal, esc(g.Scorer.Short))
	}
	b.WriteString("</ul>\n<ul class=\"subs\">\n")
	for _, s := range m.Substitutions {
		fmt.Fprintf(&b, "<li class=\"sub\" data-minute=\"%d\" data-team=\"%s\" data-on=\"%s\">%s</li>\n",
			s.Minute, esc(s.Team.Name), esc(s.On.Short), esc(s.Off.Short))
	}
	b.WriteString("</ul>\n<ol class=\"narrations\">\n")
	for _, n := range m.Narrations {
		fmt.Fprintf(&b, "<li class=\"narration\" data-minute=\"%d\">%s</li>\n", n.Minute, esc(n.Text))
	}
	b.WriteString("</ol>\n</body></html>\n")
	return b.String()
}
