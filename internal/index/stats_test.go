package index

import (
	"math"
	"testing"
)

func statsFixture() (*Index, *Index, *Index) {
	full := New(nil)
	a := New(nil)
	b := New(nil)
	docs := []string{
		"goal by messi",
		"yellow card for ramos",
		"messi misses a goal",
		"corner kick",
	}
	for i, text := range docs {
		d := &Document{}
		d.Add("narration", text)
		full.Add(d)
		half := &Document{}
		half.Add("narration", text)
		if i%2 == 0 {
			a.Add(half)
		} else {
			b.Add(half)
		}
	}
	return full, a, b
}

// TestLocalStatsExport checks the exported statistics against hand counts.
func TestLocalStatsExport(t *testing.T) {
	full, _, _ := statsFixture()
	cs := full.LocalStats()
	if cs.Docs != 4 {
		t.Errorf("docs = %d", cs.Docs)
	}
	fs := cs.Fields["narration"]
	if fs == nil {
		t.Fatal("no narration stats")
	}
	if fs.Docs != 4 {
		t.Errorf("field docs = %d", fs.Docs)
	}
	// "messi" appears in two documents; stemming leaves it intact.
	if df := cs.DocFreq("narration", "messi"); df != 2 {
		t.Errorf("df(messi) = %d", df)
	}
	if cs.DocFreq("narration", "absent") != 0 || cs.DocFreq("nofield", "messi") != 0 {
		t.Error("df of unknown term/field not zero")
	}
}

// TestMergeReproducesWhole: merging two disjoint partitions' statistics
// must reproduce the whole collection's, and installing the merged view
// must make a partition score exactly like the whole.
func TestMergeReproducesWhole(t *testing.T) {
	full, a, b := statsFixture()
	want := full.LocalStats()
	merged := NewCorpusStats()
	merged.Merge(a.LocalStats())
	merged.Merge(b.LocalStats())
	if merged.Docs != want.Docs {
		t.Fatalf("merged docs %d, want %d", merged.Docs, want.Docs)
	}
	for field, wfs := range want.Fields {
		mfs := merged.Fields[field]
		if mfs == nil || mfs.Docs != wfs.Docs || mfs.SumLen != wfs.SumLen {
			t.Fatalf("field %q stats diverge", field)
		}
		for term, df := range wfs.DocFreq {
			if mfs.DocFreq[term] != df {
				t.Errorf("df(%s) = %d, want %d", term, mfs.DocFreq[term], df)
			}
		}
	}

	// Without the override partition A computes IDF from its own 2 docs...
	localIDF := a.IDF("narration", "messi")
	a.SetCorpusStats(merged)
	if got, want := a.IDF("narration", "messi"), full.IDF("narration", "messi"); got != want {
		t.Errorf("global IDF = %v, want %v", got, want)
	}
	if a.IDF("narration", "messi") == localIDF {
		t.Error("override did not change the IDF")
	}
	// ...and scores on the partition match the whole index's for the same
	// document under both similarities.
	for _, sim := range []Similarity{ClassicTFIDF{}, BM25{}} {
		a.SetSimilarity(sim)
		full.SetSimilarity(sim)
		ga := a.Search(TermQuery{Field: "narration", Term: "goal"}, 0)
		gf := full.Search(TermQuery{Field: "narration", Term: "goal"}, 0)
		if len(ga) == 0 {
			t.Fatal("partition matched nothing")
		}
		// Partition A holds full docs 0 and 2 as its docs 0 and 1.
		for _, h := range ga {
			var fullScore float64
			for _, fh := range gf {
				if fh.DocID == h.DocID*2 {
					fullScore = fh.Score
				}
			}
			if h.Score != fullScore {
				t.Errorf("%T: partition score %v, full score %v", sim, h.Score, fullScore)
			}
		}
	}
	// Reverting restores local scoring.
	a.SetCorpusStats(nil)
	if got := a.IDF("narration", "messi"); got != localIDF {
		t.Errorf("revert: IDF %v, want %v", got, localIDF)
	}
}

// TestAvgLenEdgeCases: empty stats answer zero, not NaN.
func TestAvgLenEdgeCases(t *testing.T) {
	cs := NewCorpusStats()
	if v := cs.AvgLen("nope"); v != 0 || math.IsNaN(v) {
		t.Errorf("AvgLen on empty = %v", v)
	}
	var fs *FieldStats
	if v := fs.AvgLen(); v != 0 {
		t.Errorf("nil FieldStats AvgLen = %v", v)
	}
}
