package index

// PorterStem reduces an English word to its stem using Porter's algorithm
// (M.F. Porter, "An algorithm for suffix stripping", 1980) — the stemmer
// Lucene's classic English analysis uses. The input must already be
// lowercased. Words of one or two letters are returned unchanged, as in the
// original definition.
func PorterStem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant at position i.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in w[:k].
func measure(w []byte) int {
	n := 0
	i := 0
	k := len(w)
	// Skip initial consonants.
	for i < k && isCons(w, i) {
		i++
	}
	for i < k {
		// In a vowel run.
		for i < k && !isCons(w, i) {
			i++
		}
		if i >= k {
			break
		}
		n++
		for i < k && isCons(w, i) {
			i++
		}
	}
	return n
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a double consonant.
func endsDoubleCons(w []byte) bool {
	k := len(w)
	return k >= 2 && w[k-1] == w[k-2] && isCons(w, k-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func endsCVC(w []byte) bool {
	k := len(w)
	if k < 3 {
		return false
	}
	if !isCons(w, k-3) || isCons(w, k-2) || !isCons(w, k-1) {
		return false
	}
	c := w[k-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the stem before s has
// measure > m. It reports whether the suffix matched (regardless of the
// measure test).
func replaceSuffix(w *[]byte, s, r string, m int) bool {
	if !hasSuffix(*w, s) {
		return false
	}
	stem := (*w)[:len(*w)-len(s)]
	if measure(stem) > m {
		*w = append(stem, r...)
	}
	return true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		stem := w[:len(w)-3]
		if measure(stem) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	// Post-adjustment after removing -ed/-ing.
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem):
		c := stem[len(stem)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Pairs = []struct{ s, r string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, p := range step2Pairs {
		if replaceSuffix(&w, p.s, p.r, 0) {
			return w
		}
	}
	return w
}

var step3Pairs = []struct{ s, r string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, p := range step3Pairs {
		if replaceSuffix(&w, p.s, p.r, 0) {
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) <= 1 {
			return w
		}
		if s == "ion" {
			c := stem[len(stem)-1]
			if c != 's' && c != 't' {
				return w
			}
		}
		return stem
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
