package index

import "testing"

// zeroBoostIndex holds one document matching "shadow" only through the
// body field, and one matching through the title field — the minimal
// corpus on which zero-weighting a field is observable.
func zeroBoostIndex() *Index {
	ix := New(nil)
	ix.Add((&Document{}).Add("title", "alpha report").Add("body", "the shadow archive"))
	ix.Add((&Document{}).Add("title", "shadow ledger").Add("body", "quarterly numbers"))
	return ix
}

// TestMultiFieldQueryZeroBoostDropsField is the boost-ablation regression
// test: a field listed with Boost 0 must contribute no score at all. On
// the seed code the zero boost was silently promoted to 1.0 by the
// TermQuery sentinel, so doc 0 (matching only via body) still surfaced at
// full weight.
func TestMultiFieldQueryZeroBoostDropsField(t *testing.T) {
	ix := zeroBoostIndex()

	both := ix.Search(MultiFieldQuery("shadow", []FieldBoost{
		{Field: "title", Boost: 1},
		{Field: "body", Boost: 1},
	}), 0)
	if len(both) != 2 {
		t.Fatalf("sanity: both fields searched gave %d hits, want 2", len(both))
	}

	titleOnly := ix.Search(MultiFieldQuery("shadow", []FieldBoost{
		{Field: "title", Boost: 1},
		{Field: "body", Boost: 0},
	}), 0)
	if len(titleOnly) != 1 || titleOnly[0].DocID != 1 {
		t.Fatalf("zero-boosted body still scored: hits = %+v, want only doc 1", titleOnly)
	}

	// Zero-boosting must rank identically to omitting the field outright.
	omitted := ix.Search(MultiFieldQuery("shadow", []FieldBoost{
		{Field: "title", Boost: 1},
	}), 0)
	if len(omitted) != len(titleOnly) {
		t.Fatalf("zero boost gave %d hits, omission %d", len(titleOnly), len(omitted))
	}
	for i := range omitted {
		if titleOnly[i].DocID != omitted[i].DocID || titleOnly[i].Score != omitted[i].Score {
			t.Errorf("rank %d: zero boost (doc %d, %v) != omission (doc %d, %v)",
				i+1, titleOnly[i].DocID, titleOnly[i].Score, omitted[i].DocID, omitted[i].Score)
		}
	}

	// All fields zero-boosted means nothing is searched, not everything.
	if none := ix.Search(MultiFieldQuery("shadow", []FieldBoost{
		{Field: "title", Boost: 0},
		{Field: "body", Boost: 0},
	}), 0); len(none) != 0 {
		t.Errorf("all-zero boosts returned %d hits, want 0", len(none))
	}
}
