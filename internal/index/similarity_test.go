package index

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassicTFIDFProperties(t *testing.T) {
	s := ClassicTFIDF{}
	if s.TermScore(0, 1, 100, 10, 10) != 0 {
		t.Error("zero freq must score 0")
	}
	if s.TermScore(1, 1, 100, 0, 10) != 0 {
		t.Error("zero field length must score 0")
	}
	// Rarer terms score higher.
	rare := s.TermScore(1, 2, 1000, 10, 10)
	common := s.TermScore(1, 500, 1000, 10, 10)
	if rare <= common {
		t.Errorf("rare %f <= common %f", rare, common)
	}
	// More occurrences score higher, sublinearly.
	one := s.TermScore(1, 10, 1000, 10, 10)
	four := s.TermScore(4, 10, 1000, 10, 10)
	if four <= one || four >= 4*one {
		t.Errorf("tf scaling wrong: tf1=%f tf4=%f", one, four)
	}
	if math.Abs(four-2*one) > 1e-9 {
		t.Errorf("sqrt tf expected: tf4=%f vs 2*tf1=%f", four, 2*one)
	}
	// Longer fields are normalized down.
	short := s.TermScore(1, 10, 1000, 4, 10)
	long := s.TermScore(1, 10, 1000, 64, 10)
	if short <= long {
		t.Errorf("length norm wrong: short=%f long=%f", short, long)
	}
}

func TestBM25Properties(t *testing.T) {
	s := BM25{}
	if s.TermScore(0, 1, 100, 10, 10) != 0 {
		t.Error("zero freq must score 0")
	}
	rare := s.TermScore(1, 2, 1000, 10, 10)
	common := s.TermScore(1, 500, 1000, 10, 10)
	if rare <= common {
		t.Errorf("rare %f <= common %f", rare, common)
	}
	// BM25 tf saturates: going 1 -> 2 gains more than 9 -> 10.
	g12 := s.TermScore(2, 10, 1000, 10, 10) - s.TermScore(1, 10, 1000, 10, 10)
	g910 := s.TermScore(10, 10, 1000, 10, 10) - s.TermScore(9, 10, 1000, 10, 10)
	if g12 <= g910 {
		t.Errorf("tf not saturating: g12=%f g910=%f", g12, g910)
	}
	// Below-average-length fields score higher.
	short := s.TermScore(1, 10, 1000, 5, 10)
	long := s.TermScore(1, 10, 1000, 40, 10)
	if short <= long {
		t.Errorf("length norm wrong: short=%f long=%f", short, long)
	}
	// Custom parameters apply: b=0 removes length sensitivity.
	noLen := BM25{K1: 1.2, B: -0} // zero B defaults to 0.75; use tiny epsilon instead
	_ = noLen
	flat := BM25{K1: 1.2, B: 0.0001}
	a := flat.TermScore(1, 10, 1000, 5, 10)
	b := flat.TermScore(1, 10, 1000, 40, 10)
	if math.Abs(a-b)/a > 0.01 {
		t.Errorf("b~0 should flatten length norm: %f vs %f", a, b)
	}
}

func TestSetSimilarityChangesRanking(t *testing.T) {
	build := func() *Index {
		ix := New(StandardAnalyzer{})
		// Doc 0: "goal" many times in a long field; doc 1: once in a short one.
		ix.Add(new(Document).Add("f", "goal goal goal goal goal goal filler filler filler filler filler filler filler filler"))
		ix.Add(new(Document).Add("f", "goal here"))
		return ix
	}
	classic := build()
	hitsClassic := classic.Search(TermQuery{Field: "f", Term: "goal"}, 0)

	bm := build()
	bm.SetSimilarity(BM25{})
	hitsBM := bm.Search(TermQuery{Field: "f", Term: "goal"}, 0)

	if len(hitsClassic) != 2 || len(hitsBM) != 2 {
		t.Fatal("expected 2 hits each")
	}
	// Both must retrieve the same set; scores will differ.
	if hitsClassic[0].Score == hitsBM[0].Score {
		t.Error("similarities produced identical scores; SetSimilarity inert?")
	}
}

// Property: both similarities are monotone in freq and antitone in df.
func TestSimilarityMonotonicityProperty(t *testing.T) {
	sims := []Similarity{ClassicTFIDF{}, BM25{}}
	f := func(freq, df uint8) bool {
		fr := int(freq%20) + 1
		d := int(df%50) + 1
		for _, s := range sims {
			if s.TermScore(fr+1, d, 1000, 20, 20) < s.TermScore(fr, d, 1000, 20, 20) {
				return false
			}
			if s.TermScore(fr, d, 1000, 20, 20) < s.TermScore(fr, d+10, 1000, 20, 20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
