package index

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// checkEquiv asserts the DAAT kernel and the exhaustive oracle agree
// exactly — same documents, byte-identical scores, identical tie order —
// at every limit in limits.
func checkEquiv(t *testing.T, ix *Index, q Query, limits ...int) {
	t.Helper()
	if len(limits) == 0 {
		limits = []int{0, 1, 2, 3, 10, 1000}
	}
	for _, limit := range limits {
		want := ix.ExhaustiveSearch(q, limit)
		got := ix.Search(q, limit)
		if len(got) != len(want) {
			t.Fatalf("limit %d: Search returned %d hits, ExhaustiveSearch %d\ngot:  %v\nwant: %v",
				limit, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i].DocID != want[i].DocID {
				t.Fatalf("limit %d hit %d: docID %d, want %d\ngot:  %v\nwant: %v",
					limit, i, got[i].DocID, want[i].DocID, got, want)
			}
			if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("limit %d hit %d (doc %d): score %v (%x), want %v (%x)",
					limit, i, got[i].DocID,
					got[i].Score, math.Float64bits(got[i].Score),
					want[i].Score, math.Float64bits(want[i].Score))
			}
		}
	}
}

// equivSimilarities runs fn under both built-in similarities.
func equivSimilarities(t *testing.T, ix *Index, fn func(t *testing.T)) {
	t.Helper()
	for _, sim := range []struct {
		name string
		sim  Similarity
	}{{"ClassicTFIDF", ClassicTFIDF{}}, {"BM25", BM25{}}} {
		ix.SetSimilarity(sim.sim)
		t.Run(sim.name, fn)
	}
	ix.SetSimilarity(ClassicTFIDF{})
}

func TestDAATEquivalenceTermQuery(t *testing.T) {
	ix := buildTestIndex()
	equivSimilarities(t, ix, func(t *testing.T) {
		checkEquiv(t, ix, TermQuery{Field: "narration", Term: "goal"})
		checkEquiv(t, ix, TermQuery{Field: "narration", Term: "goal", Boost: 2.5})
		checkEquiv(t, ix, TermQuery{Field: "event", Term: "Goal"})
		checkEquiv(t, ix, TermQuery{Field: "narration", Term: "unicorn"})
		checkEquiv(t, ix, TermQuery{Field: "nosuchfield", Term: "goal"})
		// Multi-token term falls back to a phrase; stopword-only analyzes away.
		checkEquiv(t, ix, TermQuery{Field: "narration", Term: "close range"})
		checkEquiv(t, ix, TermQuery{Field: "narration", Term: "the"})
	})
}

func TestDAATEquivalencePhraseQuery(t *testing.T) {
	ix := buildTestIndex()
	equivSimilarities(t, ix, func(t *testing.T) {
		checkEquiv(t, ix, PhraseQuery{Field: "narration", Terms: []string{"close", "range"}})
		checkEquiv(t, ix, PhraseQuery{Field: "narration", Terms: []string{"scores", "a", "wonderful"}})
		checkEquiv(t, ix, PhraseQuery{Field: "narration", Terms: []string{"wonderful", "range"}})
		checkEquiv(t, ix, PhraseQuery{Field: "narration", Terms: []string{"goal"}, Boost: 3})
		checkEquiv(t, ix, PhraseQuery{Field: "narration", Terms: nil})
	})
}

func TestDAATEquivalenceBooleanQuery(t *testing.T) {
	ix := buildTestIndex()
	goal := TermQuery{Field: "narration", Term: "goal"}
	scores := TermQuery{Field: "narration", Term: "scores"}
	miss := TermQuery{Field: "event", Term: "Miss"}
	equivSimilarities(t, ix, func(t *testing.T) {
		checkEquiv(t, ix, BooleanQuery{Should: []Query{goal, scores}})
		checkEquiv(t, ix, BooleanQuery{Should: []Query{goal, scores}, DisableCoord: true})
		checkEquiv(t, ix, BooleanQuery{Must: []Query{goal}, Should: []Query{scores}})
		checkEquiv(t, ix, BooleanQuery{Must: []Query{goal, scores}})
		checkEquiv(t, ix, BooleanQuery{Should: []Query{goal}, MustNot: []Query{miss}})
		checkEquiv(t, ix, BooleanQuery{Must: []Query{goal}, MustNot: []Query{goal}})
		checkEquiv(t, ix, BooleanQuery{MustNot: []Query{goal}})
		checkEquiv(t, ix, BooleanQuery{})
		// Nested booleans, the MultiFieldQuery shape.
		checkEquiv(t, ix, BooleanQuery{Should: []Query{
			BooleanQuery{Should: []Query{goal, miss}, DisableCoord: true},
			BooleanQuery{Should: []Query{scores}, DisableCoord: true},
		}})
	})
}

func TestDAATEquivalenceMultiFieldAndMatchAll(t *testing.T) {
	ix := buildTestIndex()
	fields := []FieldBoost{{Field: "event", Boost: 4}, {Field: "narration", Boost: 1}}
	equivSimilarities(t, ix, func(t *testing.T) {
		checkEquiv(t, ix, MultiFieldQuery("goal scores", fields))
		checkEquiv(t, ix, MultiFieldQuery("ronaldo offside challenge", fields))
		checkEquiv(t, ix, MultiFieldQuery("", fields))
		checkEquiv(t, ix, MatchAllQuery{})
	})
}

func TestDAATEquivalenceFuzzyQuery(t *testing.T) {
	ix := buildTestIndex()
	equivSimilarities(t, ix, func(t *testing.T) {
		checkEquiv(t, ix, FuzzyQuery{Field: "narration", Term: "goal"})
		checkEquiv(t, ix, FuzzyQuery{Field: "narration", Term: "goap"})
		checkEquiv(t, ix, FuzzyQuery{Field: "narration", Term: "mesi", Boost: 2})
		checkEquiv(t, ix, FuzzyQuery{Field: "narration", Term: "qqqqqq"})
	})
}

func TestDAATEquivalenceNegativeBoost(t *testing.T) {
	// Negative boosts must not overprune: the kernel disables the affected
	// clause's cap instead of trusting a flipped bound.
	ix := buildTestIndex()
	pos := TermQuery{Field: "narration", Term: "goal", Boost: 2}
	neg := TermQuery{Field: "narration", Term: "scores", Boost: -1}
	checkEquiv(t, ix, BooleanQuery{Should: []Query{pos, neg}})
	checkEquiv(t, ix, PhraseQuery{Field: "narration", Terms: []string{"close", "range"}, Boost: -2})
}

func TestDAATEquivalenceParsedQueries(t *testing.T) {
	ix := buildTestIndex()
	fields := []FieldBoost{{Field: "event", Boost: 4}, {Field: "narration", Boost: 1}}
	queries := []string{
		`goal`,
		`"close range"`,
		`+goal -ronaldo`,
		`event:goal narration:scores`,
		`mesi~ goal`,
		`+narration:"a wonderful goal" offside`,
	}
	equivSimilarities(t, ix, func(t *testing.T) {
		for _, src := range queries {
			q, err := ParseQuery(src, fields)
			if err != nil {
				t.Fatalf("ParseQuery(%q): %v", src, err)
			}
			checkEquiv(t, ix, q)
		}
	})
}

// TestDAATEquivalenceProperty is the randomized oracle test: random
// corpora, random structured queries, every limit — pruned DAAT must
// reproduce the exhaustive path bit-for-bit.
func TestDAATEquivalenceProperty(t *testing.T) {
	vocab := strings.Fields(
		"goal foul corner kick save miss offside card yellow red header " +
			"shot cross pass tackle keeper striker winger messi eto ronaldo " +
			"ballack giggs busquets lead range challenge wonderful close free")
	fields := []string{"event", "narration", "players"}

	rng := rand.New(rand.NewSource(20260805))
	for round := 0; round < 40; round++ {
		ix := New(StandardAnalyzer{})
		if round%2 == 1 {
			ix.SetSimilarity(BM25{})
		}
		nDocs := 1 + rng.Intn(60)
		for d := 0; d < nDocs; d++ {
			doc := new(Document)
			for _, f := range fields {
				if rng.Intn(4) == 0 {
					continue
				}
				n := 1 + rng.Intn(15)
				words := make([]string, n)
				for i := range words {
					words[i] = vocab[rng.Intn(len(vocab))]
				}
				boost := 0.0
				if rng.Intn(3) == 0 {
					boost = 0.5 + rng.Float64()*3
				}
				doc.Fields = append(doc.Fields, Field{Name: f, Text: strings.Join(words, " "), Boost: boost})
			}
			ix.Add(doc)
		}
		for qi := 0; qi < 25; qi++ {
			q := randomQuery(rng, vocab, fields, 2)
			limit := []int{0, 1, 2, 5, 10, 100}[rng.Intn(6)]
			want := ix.ExhaustiveSearch(q, limit)
			got := ix.Search(q, limit)
			if !hitsEqual(got, want) {
				t.Fatalf("round %d query %d (%#v) limit %d:\ngot:  %v\nwant: %v",
					round, qi, q, limit, got, want)
			}
		}
	}
}

func hitsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].DocID != b[i].DocID || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// randomQuery builds a random structured query over the vocabulary:
// terms, phrases, fuzzies and (while depth lasts) boolean combinations.
func randomQuery(rng *rand.Rand, vocab, fields []string, depth int) Query {
	leaf := func() Query {
		f := fields[rng.Intn(len(fields))]
		boost := float64(rng.Intn(4)) // 0 = the "unset" sentinel, also covered
		switch rng.Intn(4) {
		case 0:
			terms := make([]string, 1+rng.Intn(3))
			for i := range terms {
				terms[i] = vocab[rng.Intn(len(vocab))]
			}
			return PhraseQuery{Field: f, Terms: terms, Boost: boost}
		case 1:
			return FuzzyQuery{Field: f, Term: vocab[rng.Intn(len(vocab))], Boost: boost}
		default:
			return TermQuery{Field: f, Term: vocab[rng.Intn(len(vocab))], Boost: boost}
		}
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		return leaf()
	}
	sub := func() Query { return randomQuery(rng, vocab, fields, depth-1) }
	var q BooleanQuery
	for i := 1 + rng.Intn(3); i > 0; i-- {
		q.Should = append(q.Should, sub())
	}
	for i := rng.Intn(2); i > 0; i-- {
		q.Must = append(q.Must, sub())
	}
	for i := rng.Intn(2); i > 0; i-- {
		q.MustNot = append(q.MustNot, sub())
	}
	q.DisableCoord = rng.Intn(2) == 0
	return q
}

func TestSetExhaustiveRoutesSearch(t *testing.T) {
	ix := buildTestIndex()
	q := TermQuery{Field: "narration", Term: "goal"}
	want := ix.Search(q, 2)
	ix.SetExhaustive(true)
	if got := ix.Search(q, 2); !hitsEqual(got, want) {
		t.Errorf("exhaustive-routed Search = %v, want %v", got, want)
	}
	ix.SetExhaustive(false)
}

func TestDAATEquivalenceAfterCodecRoundTrip(t *testing.T) {
	// Caps are rebuilt, not serialized: a decoded index must prune
	// identically to the one that was encoded.
	ix := buildTestIndex()
	var buf strings.Builder
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(strings.NewReader(buf.String()), StandardAnalyzer{})
	if err != nil {
		t.Fatal(err)
	}
	fields := []FieldBoost{{Field: "event", Boost: 4}, {Field: "narration", Boost: 1}}
	checkEquiv(t, loaded, MultiFieldQuery("goal scores offside", fields))
	checkEquiv(t, loaded, PhraseQuery{Field: "narration", Terms: []string{"close", "range"}})
}

func TestBoundedHeap(t *testing.T) {
	b := bounded[int]{k: 3, worse: func(a, c int) bool { return a < c }}
	for _, v := range []int{5, 1, 9, 3, 7, 2, 8} {
		b.push(v)
	}
	got := b.sorted()
	want := []int{9, 8, 7}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("sorted = %v, want %v", got, want)
	}
}

func TestBoundedHeapUnbounded(t *testing.T) {
	b := bounded[int]{k: 0, worse: func(a, c int) bool { return a < c }}
	for _, v := range []int{2, 9, 4} {
		b.push(v)
	}
	if b.full() {
		t.Error("unbounded heap reports full")
	}
	if got := b.sorted(); fmt.Sprint(got) != "[9 4 2]" {
		t.Errorf("sorted = %v", got)
	}
}

func TestHitCollectorTieBreaksOnDocID(t *testing.T) {
	// Equal scores keep the lower docID regardless of offer order.
	for _, order := range [][]int{{3, 1, 2}, {1, 2, 3}, {2, 3, 1}} {
		c := acquireCollector(2)
		for _, id := range order {
			c.collect(id, 1.0)
		}
		hits := c.results()
		c.release()
		if len(hits) != 2 || hits[0].DocID != 1 || hits[1].DocID != 2 {
			t.Errorf("offer order %v: results %v, want docs [1 2]", order, hits)
		}
	}
}

func TestHitCollectorThreshold(t *testing.T) {
	c := acquireCollector(2)
	defer c.release()
	if th := c.threshold(); th != 0 {
		t.Fatalf("empty threshold = %v", th)
	}
	c.collect(1, 5)
	if th := c.threshold(); th != 0 {
		t.Fatalf("partial threshold = %v", th)
	}
	c.collect(2, 3)
	if th := c.threshold(); th != 3 {
		t.Fatalf("full threshold = %v, want 3", th)
	}
	c.collect(3, 4)
	if th := c.threshold(); th != 4 {
		t.Fatalf("threshold after eviction = %v, want 4", th)
	}
}

func TestMoreLikeThisSameResults(t *testing.T) {
	// Satellite regression: the heap-based candidate selection must pick
	// the same terms (and therefore the same related docs) the sort-based
	// selection did — top maxTerms by IDF descending, term ascending.
	ix := buildTestIndex()
	fields := []FieldBoost{{Field: "narration", Boost: 1}}
	for docID := 0; docID < ix.NumDocs(); docID++ {
		for _, maxTerms := range []int{1, 2, 4, 8, 100} {
			q := ix.LikeThisQuery(docID, fields, maxTerms)
			if q == nil {
				continue
			}
			bq, ok := q.(BooleanQuery)
			if !ok {
				t.Fatalf("LikeThisQuery returned %T", q)
			}
			// Reference selection: all candidates, sorted the old way.
			type scored struct {
				term  string
				score float64
			}
			var all []scored
			seen := map[string]bool{}
			for _, term := range ix.analyzer.Analyze(ix.Doc(docID).Get("narration")) {
				if seen[term] {
					continue
				}
				seen[term] = true
				df := ix.DocFreq("narration", term)
				ceiling := ix.NumDocs() / 3
				if ceiling < 5 {
					ceiling = 5
				}
				if df <= 0 || df > ceiling {
					continue
				}
				all = append(all, scored{term, ix.IDF("narration", term)})
			}
			for i := 1; i < len(all); i++ {
				for j := i; j > 0; j-- {
					a, b := all[j], all[j-1]
					if a.score > b.score || (a.score == b.score && a.term < b.term) {
						all[j], all[j-1] = b, a
					}
				}
			}
			if len(all) > maxTerms {
				all = all[:maxTerms]
			}
			if len(bq.Should) != len(all) {
				t.Fatalf("doc %d maxTerms %d: %d clauses, want %d", docID, maxTerms, len(bq.Should), len(all))
			}
			for i, c := range bq.Should {
				if got := c.(TermQuery).Term; got != all[i].term {
					t.Fatalf("doc %d maxTerms %d clause %d: term %q, want %q", docID, maxTerms, i, got, all[i].term)
				}
			}
		}
	}
}

func TestMoreLikeThisEquivalence(t *testing.T) {
	ix := buildTestIndex()
	fields := []FieldBoost{{Field: "narration", Boost: 1}}
	for docID := 0; docID < ix.NumDocs(); docID++ {
		if q := ix.MoreLikeThis(docID, fields, 8); q != nil {
			checkEquiv(t, ix, q)
		}
	}
}

// TestPhraseQueryAllocs pins the analyze-once fix: evaluating a warm
// phrase query must not pay per-term analyzer passes.
func TestPhraseQueryAllocs(t *testing.T) {
	ix := buildTestIndex()
	q := PhraseQuery{Field: "narration", Terms: []string{"close", "range"}}
	// Warm the pools.
	ix.Search(q, 10)
	allocs := testing.AllocsPerRun(200, func() { ix.Search(q, 10) })
	// One analyzer pass (token slice + strings) plus the result slice. The
	// seed path re-ran the analyzer once per term per call and built a
	// score map on top — well over 20.
	if allocs > 15 {
		t.Errorf("phrase Search allocates %.0f/op, want <= 15", allocs)
	}
}

func BenchmarkPhraseQuery(b *testing.B) {
	ix := buildTestIndex()
	q := PhraseQuery{Field: "narration", Terms: []string{"close", "range"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}

func BenchmarkSearchDAATvsExhaustive(b *testing.B) {
	vocab := strings.Fields(
		"goal foul corner kick save miss offside card yellow red header " +
			"shot cross pass tackle keeper striker winger messi ronaldo")
	rng := rand.New(rand.NewSource(7))
	ix := New(StandardAnalyzer{})
	for d := 0; d < 5000; d++ {
		words := make([]string, 12)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		ix.Add(new(Document).Add("narration", strings.Join(words, " ")))
	}
	q := MultiFieldQuery("goal messi corner", []FieldBoost{{Field: "narration", Boost: 1}})
	for _, bench := range []struct {
		name string
		run  func(limit int) []Hit
	}{
		{"DAAT", func(limit int) []Hit { return ix.Search(q, limit) }},
		{"Exhaustive", func(limit int) []Hit { return ix.ExhaustiveSearch(q, limit) }},
	} {
		for _, limit := range []int{10, 100} {
			b.Run(fmt.Sprintf("%s/limit%d", bench.name, limit), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bench.run(limit)
				}
			})
		}
	}
}
