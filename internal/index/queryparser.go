package index

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// ParseQuery parses Lucene-flavoured user query syntax into a Query:
//
//	goal barcelona          terms over the default fields
//	"yellow card"           phrase
//	event:goal              explicit field
//	+messi -ronaldo         required / excluded terms
//	mesi~                   fuzzy term (edit distance 1)
//
// defaultFields carries the fields (with boosts) unfielded terms search.
func ParseQuery(src string, defaultFields []FieldBoost) (Query, error) {
	toks, err := lexQuery(src)
	if err != nil {
		return nil, err
	}
	var q BooleanQuery
	for _, t := range toks {
		clause := buildClause(t, defaultFields)
		if clause == nil {
			continue
		}
		switch t.op {
		case '+':
			q.Must = append(q.Must, clause)
		case '-':
			q.MustNot = append(q.MustNot, clause)
		default:
			q.Should = append(q.Should, clause)
		}
	}
	if len(q.Must)+len(q.Should)+len(q.MustNot) == 0 {
		return nil, fmt.Errorf("index: empty query %q", src)
	}
	return q, nil
}

type queryToken struct {
	op     byte   // '+', '-' or 0
	field  string // "" = default fields
	text   string
	phrase bool
	fuzzy  bool
}

func lexQuery(src string) ([]queryToken, error) {
	var out []queryToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
			continue
		}
		var t queryToken
		if c == '+' || c == '-' {
			t.op = c
			i++
		}
		// Optional field prefix.
		if j := fieldPrefixEnd(src[i:]); j > 0 {
			t.field = src[i : i+j]
			i += j + 1 // past ':'
		}
		if i < len(src) && src[i] == '"' {
			j := strings.IndexByte(src[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("index: unterminated phrase in %q", src)
			}
			t.text = src[i+1 : i+1+j]
			t.phrase = true
			i += j + 2
		} else {
			j := i
			for j < len(src) && src[j] != ' ' && src[j] != '\t' && src[j] != '\n' {
				j++
			}
			t.text = src[i:j]
			i = j
			if strings.HasSuffix(t.text, "~") {
				t.text = strings.TrimSuffix(t.text, "~")
				t.fuzzy = true
			}
		}
		if t.text != "" {
			out = append(out, t)
		} else if t.op != 0 || t.field != "" {
			return nil, fmt.Errorf("index: dangling operator or field in %q", src)
		}
	}
	return out, nil
}

// fieldPrefixEnd returns the length of a leading "name" if src starts with
// "name:" where name is alphanumeric, else 0.
func fieldPrefixEnd(src string) int {
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == ':':
			if i > 0 {
				return i
			}
			return 0
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			return 0
		}
	}
	return 0
}

func buildClause(t queryToken, defaultFields []FieldBoost) Query {
	fields := defaultFields
	if t.field != "" {
		fields = []FieldBoost{{Field: t.field, Boost: 1}}
	}
	var per []Query
	for _, fb := range fields {
		switch {
		case t.phrase:
			per = append(per, PhraseQuery{Field: fb.Field, Terms: strings.Fields(t.text), Boost: fb.Boost})
		case t.fuzzy:
			per = append(per, FuzzyQuery{Field: fb.Field, Term: t.text, Boost: fb.Boost})
		default:
			per = append(per, TermQuery{Field: fb.Field, Term: t.text, Boost: fb.Boost})
		}
	}
	if len(per) == 1 {
		return per[0]
	}
	return BooleanQuery{Should: per, DisableCoord: true}
}

// FuzzyQuery matches terms within Levenshtein distance 1 of the query term
// (after analysis), rescoring exact matches at full weight and fuzzy
// matches at half. It exists for misspelled player names ("mesi~").
type FuzzyQuery struct {
	Field string
	Term  string
	Boost float64
}

func (q FuzzyQuery) scores(ix *Index) map[int]float64 {
	analyzed := ix.analyzer.Analyze(q.Term)
	if len(analyzed) != 1 {
		return nil
	}
	target := analyzed[0]
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	fi := ix.fields[q.Field]
	if fi == nil {
		return nil
	}
	out := make(map[int]float64)
	avg := ix.scoringAvgLen(q.Field)
	numDocs := ix.scoringNumDocs()
	for _, term := range fi.termNames() {
		var weight float64
		switch {
		case term == target:
			weight = 1
		case WithinEditDistance1(term, target):
			weight = 0.5
		default:
			continue
		}
		df := ix.scoringDocFreq(q.Field, term)
		// postingsOf after the edit-distance filter: only the few matching
		// expansions are materialized on a mapped index.
		for _, p := range fi.postingsOf(term) {
			s := ix.sim.TermScore(p.Freq(), df, numDocs, fi.lengthOf(p.DocID), avg) * p.Boost * boost * weight
			if s > out[p.DocID] {
				out[p.DocID] = s
			}
		}
	}
	return out
}

// newScorer expands the fuzzy term against the field's dictionary once —
// the same scan the exhaustive path pays — and evaluates the expansion
// document-at-a-time as a weighted per-document maximum, reproducing the
// "best matching variant wins" semantics of scores.
func (q FuzzyQuery) newScorer(ix *Index) scorer {
	analyzed := ix.analyzer.Analyze(q.Term)
	if len(analyzed) != 1 {
		return emptyScorer{}
	}
	target := analyzed[0]
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	fi := ix.fields[q.Field]
	if fi == nil {
		return emptyScorer{}
	}
	var subs []scorer
	var weights []float64
	for _, term := range fi.termNames() {
		var weight float64
		switch {
		case term == target:
			weight = 1
		case WithinEditDistance1(term, target):
			weight = 0.5
		default:
			continue
		}
		subs = append(subs, newTermScorer(ix, q.Field, term, boost))
		weights = append(weights, weight)
	}
	return newMaxScorer(subs, weights)
}

// WithinEditDistance1 reports whether two strings are within Levenshtein
// distance 1 (one insertion, deletion or substitution), computed without
// building a distance matrix.
func WithinEditDistance1(a, b string) bool {
	if a == b {
		return true
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if lb-la > 1 {
		return false
	}
	ra, rb := []rune(a), []rune(b)
	i, j := 0, 0
	edited := false
	for i < len(ra) && j < len(rb) {
		if ra[i] == rb[j] {
			i++
			j++
			continue
		}
		if edited {
			return false
		}
		edited = true
		if len(ra) == len(rb) {
			i++ // substitution
		}
		j++ // insertion into a / deletion from b
	}
	// Whatever remains unconsumed must fit in the edit budget: nothing if
	// an edit was already spent, at most one trailing rune otherwise.
	remaining := (len(ra) - i) + (len(rb) - j)
	if edited {
		return remaining == 0
	}
	return remaining <= 1
}
