package index

// Field is one named, analyzed region of a document. In the semantic index
// of Section 3.6.1 fields carry the ontological slots of an event (event
// type, subject player, narration, ...), each with its own boost.
type Field struct {
	// Name identifies the field ("event", "narration", ...).
	Name string
	// Text is the raw field value; it is analyzed at indexing time and kept
	// verbatim as the stored value.
	Text string
	// Boost scales the score contribution of matches in this field.
	// Zero means 1.0.
	Boost float64
}

// Document is an ordered set of fields. The semantic index stores one
// document per soccer event.
type Document struct {
	Fields []Field
}

// Add appends a field with the default boost and returns the document for
// chaining.
func (d *Document) Add(name, text string) *Document {
	d.Fields = append(d.Fields, Field{Name: name, Text: text})
	return d
}

// AddBoosted appends a field with an explicit boost.
func (d *Document) AddBoosted(name, text string, boost float64) *Document {
	d.Fields = append(d.Fields, Field{Name: name, Text: text, Boost: boost})
	return d
}

// Get returns the concatenation of the stored values of the named field
// ("" when absent). Multi-valued fields are space-joined.
func (d *Document) Get(name string) string {
	out := ""
	for _, f := range d.Fields {
		if f.Name != name {
			continue
		}
		if out == "" {
			out = f.Text
		} else {
			out += " " + f.Text
		}
	}
	return out
}
