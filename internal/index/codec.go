package index

// On-disk persistence for indices. The paper's production argument is that
// the semantic index — not the ontology store — is the system's serving
// data structure; a serving structure needs to be built offline and shipped
// to query nodes, so the index supports a compact binary codec:
//
//	ix.Encode(f)             // offline builder
//	ix, err := index.Decode(f, nil)  // query node
//
// Format (little-endian, length-prefixed strings):
//
//	magic "SIDX" | version u32
//	numDocs u32
//	  per doc: numFields u32, then per field: name, text, boost f64
//	numFields u32
//	  per field: name
//	    numTerms u32
//	    per term: term, numPostings u32
//	      per posting: docID u32, boost f64, numPositions u32, positions u32...
//	    numDocLens u32, per entry: docID u32, len u32
//	    numBoosts u32, per entry: docID u32, boost f64
//
// The analyzer is not serialized: the reader must be constructed with the
// same analyzer configuration the writer used (the soccer pipeline always
// uses StandardAnalyzer, and readers that disagree would disagree on query
// analysis anyway).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

const (
	codecMagic   = "SIDX"
	codecVersion = 1
)

// Encode serializes the index. Output is deterministic for a given index.
func (ix *Index) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	writeU32(bw, codecVersion)

	// Stored documents.
	writeU32(bw, uint32(len(ix.docs)))
	for _, d := range ix.docs {
		writeU32(bw, uint32(len(d.Fields)))
		for _, f := range d.Fields {
			writeString(bw, f.Name)
			writeString(bw, f.Text)
			writeF64(bw, f.Boost)
		}
	}

	// Inverted fields, sorted for determinism.
	names := ix.FieldNames()
	writeU32(bw, uint32(len(names)))
	for _, name := range names {
		fi := ix.fields[name]
		writeString(bw, name)

		terms := make([]string, 0, len(fi.postings))
		for t := range fi.postings {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		writeU32(bw, uint32(len(terms)))
		for _, t := range terms {
			writeString(bw, t)
			pl := fi.postings[t]
			writeU32(bw, uint32(len(pl)))
			for _, p := range pl {
				writeU32(bw, uint32(p.DocID))
				writeF64(bw, p.Boost)
				writeU32(bw, uint32(len(p.Positions)))
				for _, pos := range p.Positions {
					writeU32(bw, uint32(pos))
				}
			}
		}

		writeU32(bw, uint32(len(fi.docLen)))
		for _, id := range sortedKeys(fi.docLen) {
			writeU32(bw, uint32(id))
			writeU32(bw, uint32(fi.docLen[id]))
		}
		writeU32(bw, uint32(len(fi.boost)))
		boostIDs := make([]int, 0, len(fi.boost))
		for id := range fi.boost {
			boostIDs = append(boostIDs, id)
		}
		sort.Ints(boostIDs)
		for _, id := range boostIDs {
			writeU32(bw, uint32(id))
			writeF64(bw, fi.boost[id])
		}
	}
	return bw.Flush()
}

// capHint bounds speculative allocation from an untrusted length
// prefix: a corrupt u32 can claim 2^32-1 elements, so slices and maps
// start at min(n, limit) capacity and grow only as elements actually
// parse — allocation stays proportional to bytes read, and a lying
// prefix dies on a read error instead of an OOM.
func capHint(n uint32, limit int) int {
	if int64(n) < int64(limit) {
		return int(n)
	}
	return limit
}

// Decode deserializes an index written by Encode. The analyzer must
// match the one used at build time.
//
// The input is untrusted: every length prefix is bounded before use,
// allocation is proportional to bytes actually read (see capHint), and
// structural violations — counts past plausibility caps, posting or
// document IDs outside the stored document range — return errors.
// Decode never panics on corrupt input (FuzzDecode enforces it).
func Decode(r io.Reader, analyzer Analyzer) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}

	ix := New(analyzer)

	numDocs, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numDocs > 1<<28 {
		return nil, fmt.Errorf("index: implausible doc count %d", numDocs)
	}
	ix.docs = make([]*Document, 0, capHint(numDocs, 1<<16))
	for i := uint32(0); i < numDocs; i++ {
		nf, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if nf > 1<<16 {
			return nil, fmt.Errorf("index: implausible field count %d on doc %d", nf, i)
		}
		d := &Document{Fields: make([]Field, 0, capHint(nf, 256))}
		for j := uint32(0); j < nf; j++ {
			var f Field
			if f.Name, err = readString(br); err != nil {
				return nil, err
			}
			if f.Text, err = readString(br); err != nil {
				return nil, err
			}
			if f.Boost, err = readF64(br); err != nil {
				return nil, err
			}
			d.Fields = append(d.Fields, f)
		}
		ix.docs = append(ix.docs, d)
	}

	numFields, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numFields > 1<<16 {
		return nil, fmt.Errorf("index: implausible field count %d", numFields)
	}
	for i := uint32(0); i < numFields; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		fi := &fieldIndex{
			postings: make(map[string][]Posting),
			docLen:   make(map[int]int),
			boost:    make(map[int]float64),
			caps:     make(map[string]termCap),
		}
		ix.fields[name] = fi

		numTerms, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for t := uint32(0); t < numTerms; t++ {
			term, err := readString(br)
			if err != nil {
				return nil, err
			}
			numPostings, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if numPostings > numDocs {
				// A term cannot appear in more documents than exist.
				return nil, fmt.Errorf("index: term %q claims %d postings over %d docs",
					term, numPostings, numDocs)
			}
			pl := make([]Posting, 0, capHint(numPostings, 1<<16))
			for p := uint32(0); p < numPostings; p++ {
				docID, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if docID >= numDocs {
					return nil, fmt.Errorf("index: posting references doc %d of %d", docID, numDocs)
				}
				boost, err := readF64(br)
				if err != nil {
					return nil, err
				}
				numPos, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if numPos > 1<<24 {
					return nil, fmt.Errorf("index: implausible position count %d", numPos)
				}
				positions := make([]int, 0, capHint(numPos, 1<<12))
				for k := uint32(0); k < numPos; k++ {
					v, err := readU32(br)
					if err != nil {
						return nil, err
					}
					positions = append(positions, int(v))
				}
				pl = append(pl, Posting{DocID: int(docID), Boost: boost, Positions: positions})
			}
			fi.postings[term] = pl
		}

		numLens, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for l := uint32(0); l < numLens; l++ {
			id, err := readU32(br)
			if err != nil {
				return nil, err
			}
			n, err := readU32(br)
			if err != nil {
				return nil, err
			}
			fi.docLen[int(id)] = int(n)
			fi.sumLen += int(n)
		}
		numBoosts, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for bIdx := uint32(0); bIdx < numBoosts; bIdx++ {
			id, err := readU32(br)
			if err != nil {
				return nil, err
			}
			v, err := readF64(br)
			if err != nil {
				return nil, err
			}
			fi.boost[int(id)] = v
		}
		// Score-bound caps are derived state: recompute rather than
		// serialize, so the codec format is unchanged.
		fi.rebuildCaps()
	}
	return ix, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func writeF64(w *bufio.Writer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.Write(buf[:])
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("index: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readF64(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("index: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<26 {
		return "", fmt.Errorf("index: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("index: %w", err)
	}
	return string(buf), nil
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
