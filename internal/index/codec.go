package index

// On-disk persistence for indices. The paper's production argument is that
// the semantic index — not the ontology store — is the system's serving
// data structure; a serving structure needs to be built offline and shipped
// to query nodes, so the index supports a compact binary codec:
//
//	ix.Encode(f)             // offline builder
//	ix, err := index.Decode(f, nil)  // query node
//
// Decode reads both codec versions; Encode writes the current one.
//
// Version 2 (current) is a block-postings layout. Posting lists are split
// into blocks of postingBlockSize documents: docIDs are delta+varint
// coded, per-posting frequencies and position deltas are varints, and
// per-posting boosts collapse to a single value when the block is uniform
// (the overwhelmingly common case — boosts are per (doc, field), so a
// block raises them only at multi-valued-field boundaries). Every block of
// a multi-block term is preceded by its max-impact metadata — the exact
// (maxFreq, minLen, maxBoost) over the block, computed at encode time —
// which the DAAT kernel turns into Block-Max WAND skipping at query time.
// Stored document fields live in a separate flate-compressed region after
// the postings, so the postings region can be scanned without touching
// document text:
//
//	magic "SIDX" | version u32 = 3 | numDocs u32
//	numFields u32
//	  per field: name
//	    numTerms u32
//	    per term: term, numPostings u32
//	      per block of <=postingBlockSize postings:
//	        if numPostings > postingBlockSize:
//	          maxFreq uvarint, minLen uvarint, maxBoost f64
//	        docID deltas uvarint... (strictly positive; first is docID+1)
//	        freqs uvarint... (one per posting, each >= 1)
//	        boost flag u8: 0 | boost f64 (whole block)
//	                       1 | boost f64 per posting
//	        per posting: position deltas uvarint... (freq of them)
//	    numDocLens u32, per entry (docID ascending): docID delta uvarint, len uvarint
//	    numBoosts u32, flag u8 (when > 0):
//	      0: docID delta uvarint per entry, then one boost f64
//	      1: per entry: docID delta uvarint, boost f64
//	chunkDocs u32
//	  per chunk of <=chunkDocs docs: compLen u64 | flate stream:
//	    per doc: numFields u32, then per field: name, text, boost f64
//
// Version 2 (still readable) is identical except the stored region is
// one flate stream over every document, length-prefixed:
//
//	storedLen u64 | flate stream: per doc as above
//
// Version 1 (legacy, still readable; written by EncodeV1) stores documents
// first and postings raw:
//
//	magic "SIDX" | version u32 = 1
//	numDocs u32
//	  per doc: numFields u32, then per field: name, text, boost f64
//	numFields u32
//	  per field: name
//	    numTerms u32
//	    per term: term, numPostings u32
//	      per posting: docID u32, boost f64, numPositions u32, positions u32...
//	    numDocLens u32, per entry: docID u32, len u32
//	    numBoosts u32, per entry: docID u32, boost f64
//
// Everything is little-endian; strings are u32-length-prefixed. The
// analyzer is not serialized: the reader must be constructed with the
// same analyzer configuration the writer used (the soccer pipeline always
// uses StandardAnalyzer, and readers that disagree would disagree on query
// analysis anyway).

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

const codecMagic = "SIDX"

// Codec versions. Decode accepts all of them; Encode writes
// CodecVersionCurrent. The shard persistence envelope records the version
// of the stream it wraps so fsck can tell "damaged" from "newer than me".
const (
	// CodecVersionV1 is the legacy raw-postings layout (see EncodeV1).
	CodecVersionV1 = 1
	// CodecVersionV2 is the first block-postings layout; its stored region
	// is one flate stream covering every document.
	CodecVersionV2 = 2
	// CodecVersionCurrent is the block-postings layout with the stored
	// region split into independently-compressed chunks of storedChunkDocs
	// documents, so a mapped reader can serve one document by inflating
	// one chunk instead of pinning the whole region in heap.
	CodecVersionCurrent = 3
)

// storedChunkDocs is how many documents share one flate stream in the
// stored region. Small enough that a random Doc() on a mapped index
// inflates tens of kilobytes, large enough that the flate window still
// sees repeated structure (field names recur per document, so even a
// part-filled window compresses well — BENCH_8 guards the ratio).
const storedChunkDocs = 128

// Encode serializes the index in the current (block-postings) format.
// Output is deterministic for a given index. A mapped index re-encodes as
// a raw copy of its byte region — the same bytes a heap re-encode of the
// identical postings would produce, without materializing anything.
func (ix *Index) Encode(w io.Writer) error {
	if ix.mapped != nil {
		_, err := w.Write(ix.mapped.raw)
		return err
	}
	return ix.encodeV2(w, nil)
}

// EncodeWithTOC writes exactly Encode's stream and additionally returns
// the serialized table of contents OpenMapped needs to serve the stream
// without decoding it: per-term block offsets and boundaries, exact score
// caps, table offsets, and the values of the requested stored-only meta
// fields (so identity lookups never open the flate region). The TOC rides
// outside the payload — callers (the shard envelope) store it next to the
// stream — so the payload stays byte-identical whether or not a TOC was
// requested.
func (ix *Index) EncodeWithTOC(w io.Writer, metaFields ...string) ([]byte, error) {
	if m := ix.mapped; m != nil {
		// Clean mapped index: the region and its TOC are already exactly
		// what this function would produce.
		if _, err := w.Write(m.raw); err != nil {
			return nil, err
		}
		return m.rawTOC, nil
	}
	tb := newTOCBuilder(ix, metaFields)
	if err := ix.encodeV2(w, tb); err != nil {
		return nil, err
	}
	return tb.serialize(), nil
}

// countingWriter tracks bytes written through it so encodeV2 can record
// logical stream offsets for the TOC.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// encodeV2 is the codec-v2 writer behind Encode and EncodeWithTOC; tb is
// nil when no TOC is wanted. Offsets are recorded as cw.n plus the bufio
// backlog — the logical position in the stream, regardless of flushes.
func (ix *Index) encodeV2(w io.Writer, tb *tocBuilder) error {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	pos := func() uint64 { return uint64(cw.n) + uint64(bw.Buffered()) }
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	writeU32(bw, CodecVersionCurrent)
	writeU32(bw, uint32(len(ix.docs)))

	// Postings region, sorted for determinism.
	names := ix.FieldNames()
	writeU32(bw, uint32(len(names)))
	for _, name := range names {
		fi := ix.fields[name]
		writeString(bw, name)
		var tf *tocField
		if tb != nil {
			tf = tb.field(name)
		}

		terms := make([]string, 0, len(fi.postings))
		for t := range fi.postings {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		writeU32(bw, uint32(len(terms)))
		for _, t := range terms {
			writeString(bw, t)
			pl := fi.postings[t]
			writeU32(bw, uint32(len(pl)))
			multi := len(pl) > postingBlockSize
			prev := -1
			var offs []uint64
			var lasts []int32
			for s := 0; s < len(pl); s += postingBlockSize {
				e := s + postingBlockSize
				if e > len(pl) {
					e = len(pl)
				}
				if tb != nil {
					offs = append(offs, pos())
				}
				prev = encodeBlock(bw, fi, pl[s:e], multi, prev)
				if tb != nil {
					lasts = append(lasts, int32(prev))
				}
			}
			if tb != nil {
				// The TOC cap is the exact bound over the whole list — the
				// same value rebuildCaps derives on the heap decode path, so
				// mapped and heap prune with identical numbers.
				tf.terms = append(tf.terms, tocTerm{
					term: t, n: len(pl), cap: fi.exactCap(pl), offs: offs, lasts: lasts,
				})
			}
		}

		if tb != nil {
			tf.docLenOff = pos()
		}
		writeU32(bw, uint32(len(fi.docLen)))
		prev := -1
		for _, id := range sortedKeys(fi.docLen) {
			writeUvarint(bw, uint64(id-prev))
			writeUvarint(bw, uint64(fi.docLen[id]))
			prev = id
		}

		if tb != nil {
			tf.boostOff = pos()
		}
		ids := make([]int, 0, len(fi.boost))
		for id := range fi.boost {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		writeU32(bw, uint32(len(ids)))
		if len(ids) > 0 {
			uniform := true
			for _, id := range ids[1:] {
				if math.Float64bits(fi.boost[id]) != math.Float64bits(fi.boost[ids[0]]) {
					uniform = false
					break
				}
			}
			prev := -1
			if uniform {
				bw.WriteByte(0)
				for _, id := range ids {
					writeUvarint(bw, uint64(id-prev))
					prev = id
				}
				writeF64(bw, fi.boost[ids[0]])
			} else {
				bw.WriteByte(1)
				for _, id := range ids {
					writeUvarint(bw, uint64(id-prev))
					writeF64(bw, fi.boost[id])
					prev = id
				}
			}
		}
	}

	// Stored region: independently-compressed chunks, each buffered in
	// memory first because every chunk is length-prefixed (the decoder
	// must know where to hand bytes to the flate reader — and where the
	// next chunk starts — without trusting the flate framing itself).
	if tb != nil {
		tb.storedOff = pos()
	}
	writeU32(bw, storedChunkDocs)
	var stored bytes.Buffer
	zw, err := flate.NewWriter(&stored, flate.DefaultCompression)
	if err != nil {
		return err
	}
	for beg := 0; beg < len(ix.docs); beg += storedChunkDocs {
		end := beg + storedChunkDocs
		if end > len(ix.docs) {
			end = len(ix.docs)
		}
		stored.Reset()
		zw.Reset(&stored)
		sw := bufio.NewWriter(zw)
		for _, d := range ix.docs[beg:end] {
			writeU32(sw, uint32(len(d.Fields)))
			for _, f := range d.Fields {
				writeString(sw, f.Name)
				writeString(sw, f.Text)
				writeF64(sw, f.Boost)
			}
		}
		if err := sw.Flush(); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		writeU64(bw, uint64(stored.Len()))
		if _, err := bw.Write(stored.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeBlock writes one posting block: for multi-block terms the exact
// max-impact header first, then the docID deltas, frequencies, boosts,
// and position deltas. Metadata is computed here, at encode time, so a
// loaded index prunes with exact bounds even when the in-memory builder
// tracked them conservatively. prev is the previous block's last docID
// (-1 for the first block) — the delta chain runs across the whole
// posting list; the returned value seeds the next block.
func encodeBlock(bw *bufio.Writer, fi *fieldIndex, blk []Posting, multi bool, prev int) int {
	if multi {
		c := fi.exactCap(blk)
		writeUvarint(bw, uint64(c.maxFreq))
		writeUvarint(bw, uint64(c.minLen))
		writeF64(bw, c.maxBoost)
	}
	for i := range blk {
		writeUvarint(bw, uint64(blk[i].DocID-prev))
		prev = blk[i].DocID
	}
	for i := range blk {
		writeUvarint(bw, uint64(len(blk[i].Positions)))
	}
	uniform := true
	for i := 1; i < len(blk); i++ {
		if math.Float64bits(blk[i].Boost) != math.Float64bits(blk[0].Boost) {
			uniform = false
			break
		}
	}
	if uniform {
		bw.WriteByte(0)
		writeF64(bw, blk[0].Boost)
	} else {
		bw.WriteByte(1)
		for i := range blk {
			writeF64(bw, blk[i].Boost)
		}
	}
	for i := range blk {
		pp := -1
		for _, pos := range blk[i].Positions {
			writeUvarint(bw, uint64(pos-pp))
			pp = pos
		}
	}
	return prev
}

// EncodeV1 serializes the index in the legacy version-1 format, kept for
// migration tooling and the codec size benchmarks. Output is deterministic
// for a given index. A mapped index is materialized to heap first — v1
// downgrades are a migration path, not a serving path.
func (ix *Index) EncodeV1(w io.Writer) error {
	if ix.mapped != nil {
		heap, err := Decode(bytes.NewReader(ix.mapped.raw), ix.analyzer)
		if err != nil {
			return err
		}
		return heap.EncodeV1(w)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	writeU32(bw, CodecVersionV1)

	// Stored documents.
	writeU32(bw, uint32(len(ix.docs)))
	for _, d := range ix.docs {
		writeU32(bw, uint32(len(d.Fields)))
		for _, f := range d.Fields {
			writeString(bw, f.Name)
			writeString(bw, f.Text)
			writeF64(bw, f.Boost)
		}
	}

	// Inverted fields, sorted for determinism.
	names := ix.FieldNames()
	writeU32(bw, uint32(len(names)))
	for _, name := range names {
		fi := ix.fields[name]
		writeString(bw, name)

		terms := make([]string, 0, len(fi.postings))
		for t := range fi.postings {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		writeU32(bw, uint32(len(terms)))
		for _, t := range terms {
			writeString(bw, t)
			pl := fi.postings[t]
			writeU32(bw, uint32(len(pl)))
			for _, p := range pl {
				writeU32(bw, uint32(p.DocID))
				writeF64(bw, p.Boost)
				writeU32(bw, uint32(len(p.Positions)))
				for _, pos := range p.Positions {
					writeU32(bw, uint32(pos))
				}
			}
		}

		writeU32(bw, uint32(len(fi.docLen)))
		for _, id := range sortedKeys(fi.docLen) {
			writeU32(bw, uint32(id))
			writeU32(bw, uint32(fi.docLen[id]))
		}
		writeU32(bw, uint32(len(fi.boost)))
		boostIDs := make([]int, 0, len(fi.boost))
		for id := range fi.boost {
			boostIDs = append(boostIDs, id)
		}
		sort.Ints(boostIDs)
		for _, id := range boostIDs {
			writeU32(bw, uint32(id))
			writeF64(bw, fi.boost[id])
		}
	}
	return bw.Flush()
}

// capHint bounds speculative allocation from an untrusted length
// prefix: a corrupt u32 can claim 2^32-1 elements, so slices and maps
// start at min(n, limit) capacity and grow only as elements actually
// parse — allocation stays proportional to bytes read, and a lying
// prefix dies on a read error instead of an OOM.
func capHint(n uint32, limit int) int {
	if int64(n) < int64(limit) {
		return int(n)
	}
	return limit
}

// Decode deserializes an index written by Encode (either version). The
// analyzer must match the one used at build time.
//
// The input is untrusted: every length prefix is bounded before use,
// allocation is proportional to bytes actually read (see capHint and
// readString), and structural violations — counts past plausibility caps,
// posting or document IDs outside the stored document range, unsorted
// postings or positions, block metadata that is not a valid score bound —
// return errors. Decode never panics on corrupt input (FuzzDecode
// enforces it).
func Decode(r io.Reader, analyzer Analyzer) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case CodecVersionV1:
		return decodeV1(br, analyzer)
	case CodecVersionV2:
		return decodeV2(br, analyzer, false)
	case CodecVersionCurrent:
		return decodeV2(br, analyzer, true)
	default:
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}
}

func decodeV1(br *bufio.Reader, analyzer Analyzer) (*Index, error) {
	ix := New(analyzer)

	numDocs, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numDocs > 1<<28 {
		return nil, fmt.Errorf("index: implausible doc count %d", numDocs)
	}
	ix.docs = make([]*Document, 0, capHint(numDocs, 1<<16))
	for i := uint32(0); i < numDocs; i++ {
		d, err := readStoredDoc(br, i)
		if err != nil {
			return nil, err
		}
		ix.docs = append(ix.docs, d)
	}

	numFields, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numFields > 1<<16 {
		return nil, fmt.Errorf("index: implausible field count %d", numFields)
	}
	for i := uint32(0); i < numFields; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		fi := newFieldIndex()
		ix.fields[name] = fi

		numTerms, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for t := uint32(0); t < numTerms; t++ {
			term, err := readString(br)
			if err != nil {
				return nil, err
			}
			numPostings, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if numPostings > numDocs {
				// A term cannot appear in more documents than exist.
				return nil, fmt.Errorf("index: term %q claims %d postings over %d docs",
					term, numPostings, numDocs)
			}
			pl := make([]Posting, 0, capHint(numPostings, 1<<16))
			prevDoc := -1
			for p := uint32(0); p < numPostings; p++ {
				docID, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if docID >= numDocs {
					return nil, fmt.Errorf("index: posting references doc %d of %d", docID, numDocs)
				}
				if int(docID) <= prevDoc {
					return nil, fmt.Errorf("index: postings for %q not in docID order", term)
				}
				prevDoc = int(docID)
				boost, err := readF64(br)
				if err != nil {
					return nil, err
				}
				numPos, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if numPos == 0 || numPos > 1<<24 {
					return nil, fmt.Errorf("index: implausible position count %d", numPos)
				}
				positions := make([]int, 0, capHint(numPos, 1<<12))
				prevPos := -1
				for k := uint32(0); k < numPos; k++ {
					v, err := readU32(br)
					if err != nil {
						return nil, err
					}
					if int(v) <= prevPos {
						return nil, fmt.Errorf("index: positions for %q not ascending", term)
					}
					prevPos = int(v)
					positions = append(positions, int(v))
				}
				pl = append(pl, Posting{DocID: int(docID), Boost: boost, Positions: positions})
			}
			fi.postings[term] = pl
		}

		numLens, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for l := uint32(0); l < numLens; l++ {
			id, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if id >= numDocs {
				// An out-of-range entry cannot belong to any stored document;
				// accepting it would corrupt sumLen and every average-length
				// statistic the similarity uses.
				return nil, fmt.Errorf("index: field length references doc %d of %d", id, numDocs)
			}
			n, err := readU32(br)
			if err != nil {
				return nil, err
			}
			fi.docLen[int(id)] = int(n)
			fi.sumLen += int(n)
		}
		numBoosts, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for bIdx := uint32(0); bIdx < numBoosts; bIdx++ {
			id, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if id >= numDocs {
				return nil, fmt.Errorf("index: field boost references doc %d of %d", id, numDocs)
			}
			v, err := readF64(br)
			if err != nil {
				return nil, err
			}
			fi.boost[int(id)] = v
		}
		// Score-bound caps and block metadata are derived state in this
		// version: recompute from the postings.
		fi.rebuildCaps()
		fi.rebuildBlocks()
	}
	return ix, nil
}

// decodeV2 parses both block-postings layouts: chunked reads the
// version-3 stored region (per-chunk flate streams), otherwise the
// version-2 single stream.
func decodeV2(br *bufio.Reader, analyzer Analyzer, chunked bool) (*Index, error) {
	ix := New(analyzer)

	numDocs, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numDocs > 1<<28 {
		return nil, fmt.Errorf("index: implausible doc count %d", numDocs)
	}

	numFields, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numFields > 1<<16 {
		return nil, fmt.Errorf("index: implausible field count %d", numFields)
	}
	for i := uint32(0); i < numFields; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		fi := newFieldIndex()
		ix.fields[name] = fi
		if err := decodeV2Field(br, fi, int(numDocs)); err != nil {
			return nil, err
		}
	}

	// Stored region.
	if chunked {
		if err := decodeChunkedStored(br, ix, numDocs); err != nil {
			return nil, err
		}
		return ix, nil
	}
	storedLen, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if storedLen > 1<<38 {
		return nil, fmt.Errorf("index: implausible stored-region length %d", storedLen)
	}
	zr := flate.NewReader(io.LimitReader(br, int64(storedLen)))
	defer zr.Close()
	sr := bufio.NewReader(zr)
	ix.docs = make([]*Document, 0, capHint(numDocs, 1<<16))
	for i := uint32(0); i < numDocs; i++ {
		d, err := readStoredDoc(sr, i)
		if err != nil {
			return nil, err
		}
		ix.docs = append(ix.docs, d)
	}
	if _, err := sr.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("index: stored region longer than its %d documents", numDocs)
	}
	return ix, nil
}

// decodeChunkedStored reads the version-3 stored region into ix.docs.
// Each chunk's compressed bytes are read fully before inflating — a
// flate reader over the stream directly could buffer past the chunk
// boundary and lose the next chunk's length prefix.
func decodeChunkedStored(br *bufio.Reader, ix *Index, numDocs uint32) error {
	chunkDocs, err := readU32(br)
	if err != nil {
		return err
	}
	if chunkDocs == 0 || chunkDocs > 1<<20 {
		return fmt.Errorf("index: implausible stored chunk size %d", chunkDocs)
	}
	ix.docs = make([]*Document, 0, capHint(numDocs, 1<<16))
	var comp []byte
	for beg := uint32(0); beg < numDocs; beg += chunkDocs {
		end := beg + chunkDocs
		if end > numDocs {
			end = numDocs
		}
		compLen, err := readU64(br)
		if err != nil {
			return err
		}
		if compLen > 1<<32 {
			return fmt.Errorf("index: implausible stored-chunk length %d", compLen)
		}
		if uint64(cap(comp)) < compLen {
			comp = make([]byte, compLen)
		}
		comp = comp[:compLen]
		if _, err := io.ReadFull(br, comp); err != nil {
			return fmt.Errorf("index: %w", err)
		}
		zr := flate.NewReader(bytes.NewReader(comp))
		sr := bufio.NewReader(zr)
		for i := beg; i < end; i++ {
			d, err := readStoredDoc(sr, i)
			if err != nil {
				zr.Close()
				return err
			}
			ix.docs = append(ix.docs, d)
		}
		if _, err := sr.ReadByte(); err != io.EOF {
			zr.Close()
			return fmt.Errorf("index: stored chunk at doc %d longer than its documents", beg)
		}
		zr.Close()
	}
	return nil
}

// decodeV2Field parses one field's postings region: the term dictionary
// with its posting blocks and per-block metadata, then the field-length
// and field-boost tables. Block metadata is validated against the exact
// per-block values once the lengths are known — an understated maxFreq or
// overstated minLen would make Block-Max skipping drop true top-k
// documents, so metadata that is not a provable upper bound is rejected
// as corruption.
func decodeV2Field(br *bufio.Reader, fi *fieldIndex, numDocs int) error {
	numTerms, err := readU32(br)
	if err != nil {
		return err
	}
	freqs := make([]int, postingBlockSize)
	for t := uint32(0); t < numTerms; t++ {
		term, err := readString(br)
		if err != nil {
			return err
		}
		numPostings, err := readU32(br)
		if err != nil {
			return err
		}
		if int64(numPostings) > int64(numDocs) {
			return fmt.Errorf("index: term %q claims %d postings over %d docs",
				term, numPostings, numDocs)
		}
		n := int(numPostings)
		pl := make([]Posting, 0, capHint(numPostings, 1<<16))
		multi := n > postingBlockSize
		var blks []termCap
		if multi {
			blks = make([]termCap, 0, (n+postingBlockSize-1)/postingBlockSize)
		}
		prevDoc := -1
		for len(pl) < n {
			blkLen := n - len(pl)
			if blkLen > postingBlockSize {
				blkLen = postingBlockSize
			}
			if multi {
				mf, err := readUvarint(br)
				if err != nil {
					return err
				}
				ml, err := readUvarint(br)
				if err != nil {
					return err
				}
				mb, err := readF64(br)
				if err != nil {
					return err
				}
				if mf > 1<<24 || ml > 1<<32 {
					return fmt.Errorf("index: implausible block metadata for %q", term)
				}
				blks = append(blks, termCap{maxFreq: int(mf), minLen: int(ml), maxBoost: mb})
			}
			start := len(pl)
			for k := 0; k < blkLen; k++ {
				delta, err := readUvarint(br)
				if err != nil {
					return err
				}
				if delta == 0 || delta > uint64(numDocs) {
					return fmt.Errorf("index: bad docID delta for %q", term)
				}
				doc := prevDoc + int(delta)
				if doc >= numDocs {
					return fmt.Errorf("index: posting references doc %d of %d", doc, numDocs)
				}
				prevDoc = doc
				pl = append(pl, Posting{DocID: doc})
			}
			blk := pl[start:]
			for k := range blk {
				f, err := readUvarint(br)
				if err != nil {
					return err
				}
				if f == 0 || f > 1<<24 {
					return fmt.Errorf("index: implausible position count %d", f)
				}
				freqs[k] = int(f)
			}
			flag, err := br.ReadByte()
			if err != nil {
				return fmt.Errorf("index: %w", err)
			}
			switch flag {
			case 0:
				b, err := readF64(br)
				if err != nil {
					return err
				}
				for k := range blk {
					blk[k].Boost = b
				}
			case 1:
				for k := range blk {
					if blk[k].Boost, err = readF64(br); err != nil {
						return err
					}
				}
			default:
				return fmt.Errorf("index: bad posting boost flag %d", flag)
			}
			for k := range blk {
				positions := make([]int, 0, capHint(uint32(freqs[k]), 1<<12))
				prevPos := -1
				for q := 0; q < freqs[k]; q++ {
					delta, err := readUvarint(br)
					if err != nil {
						return err
					}
					if delta == 0 || delta > 1<<32 {
						return fmt.Errorf("index: bad position delta for %q", term)
					}
					pos := prevPos + int(delta)
					if pos > 1<<32 {
						return fmt.Errorf("index: implausible position %d", pos)
					}
					prevPos = pos
					positions = append(positions, pos)
				}
				blk[k].Positions = positions
			}
		}
		fi.postings[term] = pl
		if multi {
			fi.blocks[term] = blks
		}
	}

	numLens, err := readU32(br)
	if err != nil {
		return err
	}
	prevID := -1
	for l := uint32(0); l < numLens; l++ {
		delta, err := readUvarint(br)
		if err != nil {
			return err
		}
		if delta == 0 || delta > uint64(numDocs) {
			return fmt.Errorf("index: bad field-length docID delta")
		}
		id := prevID + int(delta)
		if id >= numDocs {
			return fmt.Errorf("index: field length references doc %d of %d", id, numDocs)
		}
		prevID = id
		v, err := readUvarint(br)
		if err != nil {
			return err
		}
		if v > 1<<32 {
			return fmt.Errorf("index: implausible field length %d", v)
		}
		fi.docLen[id] = int(v)
		fi.sumLen += int(v)
	}

	numBoosts, err := readU32(br)
	if err != nil {
		return err
	}
	if numBoosts > 0 {
		flag, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		if flag > 1 {
			return fmt.Errorf("index: bad field boost flag %d", flag)
		}
		ids := make([]int, 0, capHint(numBoosts, 1<<16))
		prevID := -1
		for bIdx := uint32(0); bIdx < numBoosts; bIdx++ {
			delta, err := readUvarint(br)
			if err != nil {
				return err
			}
			if delta == 0 || delta > uint64(numDocs) {
				return fmt.Errorf("index: bad field-boost docID delta")
			}
			id := prevID + int(delta)
			if id >= numDocs {
				return fmt.Errorf("index: field boost references doc %d of %d", id, numDocs)
			}
			prevID = id
			if flag == 1 {
				if fi.boost[id], err = readF64(br); err != nil {
					return err
				}
			} else {
				ids = append(ids, id)
			}
		}
		if flag == 0 {
			v, err := readF64(br)
			if err != nil {
				return err
			}
			for _, id := range ids {
				fi.boost[id] = v
			}
		}
	}

	// Lengths are known now: check every block header is a valid bound.
	// Looser-than-exact is fine (the builder tracks conservatively);
	// tighter-than-exact would prune documents that can win.
	for t, blks := range fi.blocks {
		pl := fi.postings[t]
		for bi := range blks {
			s := bi * postingBlockSize
			e := s + postingBlockSize
			if e > len(pl) {
				e = len(pl)
			}
			exact := fi.exactCap(pl[s:e])
			b := blks[bi]
			if b.minLen < 1 || b.maxFreq < exact.maxFreq || b.minLen > exact.minLen ||
				!(b.maxBoost >= exact.maxBoost) {
				return fmt.Errorf("index: term %q block %d metadata is not a valid score bound", t, bi)
			}
		}
	}
	fi.rebuildCaps()
	return nil
}

// readStoredDoc parses one stored document (shared by both versions; in
// v2 the reader is positioned inside the compressed stored region).
func readStoredDoc(r *bufio.Reader, i uint32) (*Document, error) {
	nf, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nf > 1<<16 {
		return nil, fmt.Errorf("index: implausible field count %d on doc %d", nf, i)
	}
	d := &Document{Fields: make([]Field, 0, capHint(nf, 256))}
	for j := uint32(0); j < nf; j++ {
		var f Field
		if f.Name, err = readString(r); err != nil {
			return nil, err
		}
		if f.Text, err = readString(r); err != nil {
			return nil, err
		}
		if f.Boost, err = readF64(r); err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, f)
	}
	return d, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

func writeF64(w *bufio.Writer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.Write(buf[:])
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("index: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("index: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readF64(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("index: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("index: %w", err)
	}
	return v, nil
}

// readStringChunk is how much of a string readString materializes per
// read: big enough to amortize the copy, small enough that a lying length
// prefix cannot force a large one-shot allocation.
const readStringChunk = 64 << 10

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<26 {
		return "", fmt.Errorf("index: implausible string length %d", n)
	}
	if n <= readStringChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", fmt.Errorf("index: %w", err)
		}
		return string(buf), nil
	}
	// The prefix is untrusted: a 64 MiB claim backed by a 10-byte file
	// must die on the read error after one chunk, not after a 64 MiB
	// make. The builder grows geometrically, so allocation stays
	// proportional to bytes actually read.
	var sb strings.Builder
	buf := make([]byte, readStringChunk)
	for remaining := int(n); remaining > 0; {
		c := readStringChunk
		if remaining < c {
			c = remaining
		}
		if _, err := io.ReadFull(r, buf[:c]); err != nil {
			return "", fmt.Errorf("index: %w", err)
		}
		sb.Write(buf[:c])
		remaining -= c
	}
	return sb.String(), nil
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
