package index

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	ix := buildTestIndex()
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()), StandardAnalyzer{})
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if back.NumDocs() != ix.NumDocs() {
		t.Fatalf("docs %d != %d", back.NumDocs(), ix.NumDocs())
	}
	// Stored documents survive verbatim.
	for i := 0; i < ix.NumDocs(); i++ {
		if ix.Doc(i).Get("narration") != back.Doc(i).Get("narration") {
			t.Errorf("doc %d stored field differs", i)
		}
	}
	// Every query returns identical results on the reloaded index.
	queries := []Query{
		TermQuery{Field: "narration", Term: "goal"},
		TermQuery{Field: "event", Term: "goal", Boost: 4},
		PhraseQuery{Field: "narration", Terms: []string{"free", "kick"}},
		MultiFieldQuery("goal ronaldo", []FieldBoost{{"event", 4}, {"narration", 1}}),
	}
	for _, q := range queries {
		a := ix.Search(q, 0)
		b := back.Search(q, 0)
		if len(a) != len(b) {
			t.Fatalf("hit counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID || !close(a[i].Score, b[i].Score) {
				t.Errorf("hit %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestCodecDeterministic(t *testing.T) {
	ix := buildTestIndex()
	var a, b bytes.Buffer
	if err := ix.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteTo output not deterministic")
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE\x01\x00\x00\x00")},
		{"bad version", []byte("SIDX\xff\x00\x00\x00")},
		{"truncated", func() []byte {
			var buf bytes.Buffer
			buildTestIndex().Encode(&buf)
			return buf.Bytes()[:buf.Len()/2]
		}()},
		{"implausible doc count", []byte("SIDX\x01\x00\x00\x00\xff\xff\xff\xff")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(c.data), nil); err == nil {
				t.Error("ReadFrom accepted corrupt data")
			}
		})
	}
}

func TestCodecStoredOnlyFields(t *testing.T) {
	ix := New(StandardAnalyzer{})
	d := &Document{}
	d.Add("text", "searchable")
	d.Add("_meta", "hidden payload")
	ix.Add(d)
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf, StandardAnalyzer{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Doc(0).Get("_meta") != "hidden payload" {
		t.Error("stored-only field lost")
	}
	if back.DocFreq("_meta", "hidden") != 0 {
		t.Error("stored-only field got indexed on reload")
	}
}

// Property: random indices survive the codec with identical search results.
func TestCodecRoundTripProperty(t *testing.T) {
	vocab := strings.Fields("goal foul save corner messi ronaldo card pass shot keeper")
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ix := New(StandardAnalyzer{})
		for i := 0; i < int(n%30)+1; i++ {
			d := &Document{}
			var words []string
			for j := 0; j < r.Intn(10)+1; j++ {
				words = append(words, vocab[r.Intn(len(vocab))])
			}
			if r.Intn(2) == 0 {
				d.AddBoosted("f", strings.Join(words, " "), float64(r.Intn(4)+1))
			} else {
				d.Add("f", strings.Join(words, " "))
			}
			ix.Add(d)
		}
		var buf bytes.Buffer
		if ix.Encode(&buf) != nil {
			return false
		}
		back, err := Decode(&buf, StandardAnalyzer{})
		if err != nil {
			return false
		}
		probe := vocab[r.Intn(len(vocab))]
		a := ix.Search(TermQuery{Field: "f", Term: probe}, 0)
		b := back.Search(TermQuery{Field: "f", Term: probe}, 0)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].DocID != b[i].DocID || !close(a[i].Score, b[i].Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
