package index

import (
	"testing"
	"testing/quick"
)

var defaultQPFields = []FieldBoost{{Field: "event", Boost: 4}, {Field: "narration", Boost: 1}}

func TestParseQueryTerms(t *testing.T) {
	ix := buildTestIndex()
	q, err := ParseQuery("goal messi", defaultQPFields)
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(q, 0)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// Top hit should be the Messi goal (matches both terms).
	if got := ix.Doc(hits[0].DocID).Get("narration"); got != "Messi scores a wonderful goal" {
		t.Errorf("top = %q", got)
	}
}

func TestParseQueryFieldPrefix(t *testing.T) {
	ix := buildTestIndex()
	q, err := ParseQuery("event:goal", defaultQPFields)
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(q, 0)
	if len(hits) != 2 {
		t.Fatalf("field query hits = %d", len(hits))
	}
	for _, h := range hits {
		if ix.Doc(h.DocID).Get("event") != "Goal" {
			t.Errorf("non-goal doc matched event:goal")
		}
	}
}

func TestParseQueryPhrase(t *testing.T) {
	ix := buildTestIndex()
	q, err := ParseQuery(`"free kick"`, defaultQPFields)
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(q, 0)
	if len(hits) != 1 {
		t.Fatalf("phrase hits = %d", len(hits))
	}
	if ix.Doc(hits[0].DocID).Get("event") != "Foul" {
		t.Error("phrase matched wrong doc")
	}
}

func TestParseQueryRequiredExcluded(t *testing.T) {
	ix := buildTestIndex()
	q, err := ParseQuery("+goal -misses", defaultQPFields)
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(q, 0)
	for _, h := range hits {
		n := ix.Doc(h.DocID).Get("narration")
		if n == "Ronaldo misses a goal from close range" {
			t.Errorf("excluded doc returned: %q", n)
		}
	}
	if len(hits) == 0 {
		t.Error("no hits for required term")
	}
}

func TestParseQueryFuzzy(t *testing.T) {
	ix := buildTestIndex()
	q, err := ParseQuery("mesi~", defaultQPFields) // misspelled Messi
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(q, 0)
	found := false
	for _, h := range hits {
		if ix.Doc(h.DocID).Get("narration") == "Messi scores a wonderful goal" {
			found = true
		}
	}
	if !found {
		t.Error("fuzzy query missed Messi")
	}
	// Exact matches outrank fuzzy ones.
	exact, _ := ParseQuery("messi", defaultQPFields)
	he := ix.Search(exact, 1)
	hf := ix.Search(q, 1)
	if len(he) > 0 && len(hf) > 0 && hf[0].Score >= he[0].Score {
		t.Errorf("fuzzy score %f >= exact %f", hf[0].Score, he[0].Score)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, src := range []string{"", "   ", `"unterminated`, "+", "field:"} {
		if _, err := ParseQuery(src, defaultQPFields); err == nil {
			t.Errorf("ParseQuery accepted %q", src)
		}
	}
}

func TestWithinEditDistance1(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"messi", "messi", true},
		{"mesi", "messi", true},   // insertion
		{"messsi", "messi", true}, // deletion
		{"massi", "messi", true},  // substitution
		{"mess", "messi", true},   // trailing insertion
		{"mi", "messi", false},
		{"ronaldo", "messi", false},
		{"", "a", true},
		{"", "", true},
		{"ab", "ba", false}, // transposition is distance 2 here
	}
	for _, c := range cases {
		if got := WithinEditDistance1(c.a, c.b); got != c.want {
			t.Errorf("WithinEditDistance1(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: edit distance 1 is symmetric.
func TestEditDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		return WithinEditDistance1(a, b) == WithinEditDistance1(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMoreLikeThis(t *testing.T) {
	ix := New(StandardAnalyzer{})
	// Three card-ish docs and two unrelated corners.
	ix.Add(new(Document).Add("event", "YellowCard").Add("narration", "booked for a late challenge"))
	ix.Add(new(Document).Add("event", "YellowCard").Add("narration", "sees yellow after a challenge"))
	ix.Add(new(Document).Add("event", "RedCard").Add("narration", "sent off after a second booking"))
	ix.Add(new(Document).Add("event", "Corner").Add("narration", "delivers the corner"))
	ix.Add(new(Document).Add("event", "Corner").Add("narration", "takes the corner short"))

	fields := []FieldBoost{{Field: "event", Boost: 4}, {Field: "narration", Boost: 1}}
	q := ix.MoreLikeThis(0, fields, 8)
	if q == nil {
		t.Fatal("nil query")
	}
	hits := ix.Search(q, 0)
	for _, h := range hits {
		if h.DocID == 0 {
			t.Error("source doc in its own results")
		}
	}
	if len(hits) == 0 {
		t.Fatal("no related docs")
	}
	if got := ix.Doc(hits[0].DocID).Get("event"); got == "Corner" {
		t.Errorf("top related is a Corner; ranking = %v", hits)
	}
}

func TestMoreLikeThisBounds(t *testing.T) {
	ix := New(StandardAnalyzer{})
	ix.Add(new(Document).Add("f", "term"))
	if q := ix.MoreLikeThis(-1, []FieldBoost{{Field: "f", Boost: 1}}, 5); q != nil {
		t.Error("negative id produced a query")
	}
	if q := ix.MoreLikeThis(99, []FieldBoost{{Field: "f", Boost: 1}}, 5); q != nil {
		t.Error("out-of-range id produced a query")
	}
	// A doc whose only term is ubiquitous (df above the ceiling) yields nil.
	ubiq := New(StandardAnalyzer{})
	for i := 0; i < 30; i++ {
		ubiq.Add(new(Document).Add("f", "same"))
	}
	if q := ubiq.MoreLikeThis(0, []FieldBoost{{Field: "f", Boost: 1}}, 5); q != nil {
		t.Error("ubiquitous-term doc produced a query")
	}
}

func TestIndexStats(t *testing.T) {
	ix := buildTestIndex()
	s := ix.Stats()
	if s.Docs != 5 || s.Fields != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Terms == 0 || s.Postings < s.Terms {
		t.Errorf("stats = %+v", s)
	}
}
