// Package index implements the inverted-index retrieval substrate the paper
// builds on Apache Lucene (Section 3.6): text analysis (tokenization,
// stopwords, Porter stemming), an in-memory inverted index with positional
// postings and stored fields, TF-IDF vector-space ranking in the style of
// Lucene's classic similarity, per-field boosts, and term, boolean and
// phrase queries with a keyword query parser.
//
// It is the layer that connects "real life applications to the theoretical
// background of vector space models", as the paper puts it — and the layer
// the semantic index of internal/semindex is constructed on.
package index

import (
	"strings"
	"unicode"
)

// Analyzer turns field text into index terms.
type Analyzer interface {
	// Analyze returns the terms of the text, in order of appearance.
	// Positions in the returned slice are the token positions used by
	// phrase queries.
	Analyze(text string) []string
}

// StandardAnalyzer is the default analysis chain: unicode word
// tokenization, lowercasing, English stopword removal and Porter stemming.
// Stopword removal and stemming can be disabled for ablation experiments.
type StandardAnalyzer struct {
	// KeepStopwords disables stopword removal.
	KeepStopwords bool
	// NoStemming disables the Porter stemmer.
	NoStemming bool
}

// Analyze implements Analyzer.
func (a StandardAnalyzer) Analyze(text string) []string {
	tokens := Tokenize(text)
	out := tokens[:0]
	for _, t := range tokens {
		t = strings.ToLower(t)
		if !a.KeepStopwords && stopwords[t] {
			continue
		}
		if !a.NoStemming {
			t = PorterStem(t)
		}
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// KeywordAnalyzer indexes the whole field value as a single lowercased
// term, for exact-match fields such as dates.
type KeywordAnalyzer struct{}

// Analyze implements Analyzer.
func (KeywordAnalyzer) Analyze(text string) []string {
	t := strings.ToLower(strings.TrimSpace(text))
	if t == "" {
		return nil
	}
	return []string{t}
}

// Tokenize splits text into maximal runs of letters, digits and
// apostrophes, so "Eto'o" and "4-4-2" survive sensibly ("4", "4", "2").
func Tokenize(text string) []string {
	var out []string
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, trimApostrophes(text[start:i]))
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, trimApostrophes(text[start:]))
	}
	// Drop tokens that were nothing but apostrophes.
	filtered := out[:0]
	for _, t := range out {
		if t != "" {
			filtered = append(filtered, t)
		}
	}
	if len(filtered) == 0 {
		return nil
	}
	return filtered
}

func trimApostrophes(s string) string { return strings.Trim(s, "'") }

// stopwords is Lucene's classic English stopword set.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "if": true, "in": true,
	"into": true, "is": true, "it": true, "no": true, "not": true, "of": true,
	"on": true, "or": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// IsStopword reports whether the lowercased token is in the stopword set.
// The query parser uses it to keep phrasal prepositions ("by", "to", "of")
// out of ordinary term queries while still recognizing them as operators.
func IsStopword(token string) bool { return stopwords[token] }
