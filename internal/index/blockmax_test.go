package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// buildMultiBlockIndex grows a corpus large enough that common terms span
// several posting blocks — the regime the per-term equivalence suite
// (<=60 docs) never reaches and Block-Max skipping actually fires in.
func buildMultiBlockIndex(tb testing.TB, rng *rand.Rand, nDocs int, vocab, fields []string) *Index {
	tb.Helper()
	ix := New(StandardAnalyzer{})
	for d := 0; d < nDocs; d++ {
		doc := new(Document)
		for _, f := range fields {
			if rng.Intn(5) == 0 {
				continue
			}
			n := 1 + rng.Intn(12)
			words := make([]string, n)
			for i := range words {
				words[i] = vocab[rng.Intn(len(vocab))]
			}
			boost := 0.0
			if rng.Intn(3) == 0 {
				boost = 0.5 + rng.Float64()*3
			}
			doc.Fields = append(doc.Fields, Field{Name: f, Text: strings.Join(words, " "), Boost: boost})
		}
		ix.Add(doc)
	}
	multi := false
	for _, f := range fields {
		if fi := ix.fields[f]; fi != nil && len(fi.blocks) > 0 {
			multi = true
		}
	}
	if !multi {
		tb.Fatal("corpus produced no multi-block terms; the test would not exercise Block-Max")
	}
	return ix
}

// TestBlockMaxEquivalenceMultiBlock is the Block-Max oracle: random
// multi-block corpora, random structured queries, both similarities,
// every limit — and the same again after a codec v2 round trip, so the
// metadata read back from disk prunes exactly like the metadata tracked
// in memory. Pruned results must match the exhaustive path bit-for-bit.
func TestBlockMaxEquivalenceMultiBlock(t *testing.T) {
	vocab := strings.Fields("goal foul save corner pass shot keeper header")
	fields := []string{"event", "narration"}
	rng := rand.New(rand.NewSource(20260808))
	for round := 0; round < 4; round++ {
		ix := buildMultiBlockIndex(t, rng, 900+rng.Intn(400), vocab, fields)
		if round%2 == 1 {
			ix.SetSimilarity(BM25{})
		}

		var buf bytes.Buffer
		if err := ix.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Decode(bytes.NewReader(buf.Bytes()), StandardAnalyzer{})
		if err != nil {
			t.Fatal(err)
		}
		if round%2 == 1 {
			loaded.SetSimilarity(BM25{})
		}

		for qi := 0; qi < 30; qi++ {
			q := randomQuery(rng, vocab, fields, 2)
			limit := []int{0, 1, 2, 5, 10, 100}[rng.Intn(6)]
			want := ix.ExhaustiveSearch(q, limit)
			if got := ix.Search(q, limit); !hitsEqual(got, want) {
				t.Fatalf("round %d query %d (%#v) limit %d:\ngot:  %v\nwant: %v",
					round, qi, q, limit, got, want)
			}
			if got := loaded.Search(q, limit); !hitsEqual(got, want) {
				t.Fatalf("round %d query %d (%#v) limit %d after round trip:\ngot:  %v\nwant: %v",
					round, qi, q, limit, got, want)
			}
		}
	}
}

// TestAddMaintainsBlockBounds is the whitebox check on the incremental
// tracking: Add must keep one metadata entry per block for multi-block
// terms, each a valid (possibly loose) bound over its block, and no
// entries at all for single-block terms.
func TestAddMaintainsBlockBounds(t *testing.T) {
	ix := New(StandardAnalyzer{})
	rng := rand.New(rand.NewSource(7))
	for d := 0; d < 300; d++ {
		doc := new(Document)
		text := "goal"
		for i := 0; i < rng.Intn(4); i++ {
			text += " goal"
		}
		if d == 150 {
			text += " unicorn"
		}
		doc.AddBoosted("f", text, 0.5+rng.Float64())
		ix.Add(doc)
	}
	fi := ix.fields["f"]
	pl := fi.postings["goal"]
	if len(pl) <= postingBlockSize {
		t.Fatalf("term spans %d postings, need > %d", len(pl), postingBlockSize)
	}
	blks := fi.blocks["goal"]
	if want := (len(pl) + postingBlockSize - 1) / postingBlockSize; len(blks) != want {
		t.Fatalf("got %d block entries, want %d", len(blks), want)
	}
	for bi, blk := range blks {
		s := bi * postingBlockSize
		e := s + postingBlockSize
		if e > len(pl) {
			e = len(pl)
		}
		exact := fi.exactCap(pl[s:e])
		if blk.maxFreq < exact.maxFreq || blk.minLen > exact.minLen || blk.minLen < 1 ||
			blk.maxBoost < exact.maxBoost {
			t.Errorf("block %d metadata %+v is not a valid bound for exact %+v", bi, blk, exact)
		}
	}
	if _, ok := fi.blocks["unicorn"]; ok {
		t.Error("single-block term carries block metadata")
	}
}

// TestCodecV1BackCompat pins the migration story: a legacy v1 stream
// (what every pre-v2 snapshot on disk is) must still decode, search
// byte-identically to the index that wrote it, and prune correctly.
func TestCodecV1BackCompat(t *testing.T) {
	vocab := strings.Fields("goal foul save corner pass shot keeper header")
	fields := []string{"event", "narration"}
	rng := rand.New(rand.NewSource(42))
	ix := buildMultiBlockIndex(t, rng, 600, vocab, fields)

	var buf bytes.Buffer
	if err := ix.EncodeV1(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(bytes.NewReader(buf.Bytes()), StandardAnalyzer{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != ix.NumDocs() {
		t.Fatalf("docs %d != %d", loaded.NumDocs(), ix.NumDocs())
	}
	for qi := 0; qi < 20; qi++ {
		q := randomQuery(rng, vocab, fields, 2)
		limit := []int{0, 1, 5, 10}[rng.Intn(4)]
		want := ix.Search(q, limit)
		if got := loaded.Search(q, limit); !hitsEqual(got, want) {
			t.Fatalf("query %d (%#v) limit %d:\ngot:  %v\nwant: %v", qi, q, limit, got, want)
		}
		checkEquiv(t, loaded, q, limit)
	}
}

// v1 stream-building helpers for the decoder-hardening regressions.
func v1u32(b *bytes.Buffer, v uint32)  { binary.Write(b, binary.LittleEndian, v) }
func v1f64(b *bytes.Buffer, v float64) { binary.Write(b, binary.LittleEndian, v) }
func v1str(b *bytes.Buffer, s string)  { v1u32(b, uint32(len(s))); b.WriteString(s) }

// v1Field starts a minimal valid v1 stream — one stored doc with no
// fields, one inverted field "f" with no terms — and hands the buffer to
// build to append the field-length and boost tables under test.
func v1Field(build func(b *bytes.Buffer)) []byte {
	var b bytes.Buffer
	b.WriteString(codecMagic)
	v1u32(&b, CodecVersionV1)
	v1u32(&b, 1) // one stored doc
	v1u32(&b, 0) // with no fields
	v1u32(&b, 1) // one inverted field
	v1str(&b, "f")
	v1u32(&b, 0) // no terms
	build(&b)
	return b.Bytes()
}

// TestDecodeRejectsStrayDocLenID is the regression for the v1 decoder
// accepting field-length entries for documents that do not exist: the
// stray entry inflated sumLen, skewing the average-length statistic every
// similarity divides by. Such an entry must now be rejected like an
// out-of-range posting.
func TestDecodeRejectsStrayDocLenID(t *testing.T) {
	data := v1Field(func(b *bytes.Buffer) {
		v1u32(b, 1) // one docLen entry...
		v1u32(b, 5) // ...for doc 5 of 1
		v1u32(b, 3)
		v1u32(b, 0) // no boosts
	})
	if _, err := Decode(bytes.NewReader(data), nil); err == nil {
		t.Fatal("decoder accepted a field-length entry for a nonexistent doc")
	}
}

// TestDecodeRejectsStrayBoostID is the boost-table variant of the same
// hardening fix.
func TestDecodeRejectsStrayBoostID(t *testing.T) {
	data := v1Field(func(b *bytes.Buffer) {
		v1u32(b, 0) // no docLens
		v1u32(b, 1) // one boost entry...
		v1u32(b, 5) // ...for doc 5 of 1
		v1f64(b, 2.0)
	})
	if _, err := Decode(bytes.NewReader(data), nil); err == nil {
		t.Fatal("decoder accepted a boost entry for a nonexistent doc")
	}
}

// TestReadStringBoundedAlloc pins the capHint contract on strings: a
// length prefix claiming 64 MiB backed by a 1 KiB input must fail after
// reading what is actually there, not after a 64 MiB allocation.
func TestReadStringBoundedAlloc(t *testing.T) {
	data := make([]byte, 4+1024)
	binary.LittleEndian.PutUint32(data, 1<<26)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := readString(bufio.NewReader(bytes.NewReader(data)))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("readString accepted a lying length prefix")
	}
	if d := after.TotalAlloc - before.TotalAlloc; d > 8<<20 {
		t.Fatalf("readString allocated %d bytes for a %d-byte input", d, len(data))
	}
}

// TestReadStringChunkedRoundTrip covers the multi-chunk path with an
// honest large string.
func TestReadStringChunkedRoundTrip(t *testing.T) {
	want := strings.Repeat("semantic index ", 20000) // ~300 KiB, several chunks
	var b bytes.Buffer
	bw := bufio.NewWriter(&b)
	writeString(bw, want)
	bw.Flush()
	got, err := readString(bufio.NewReader(&b))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("large string corrupted in transit (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDecodeRejectsInvalidBlockMetadata flips the first block's maxFreq
// header to a value below the block's real maximum: pruning with it could
// drop a true top-k document, so the decoder must treat it as corruption.
func TestDecodeRejectsInvalidBlockMetadata(t *testing.T) {
	ix := New(StandardAnalyzer{})
	for d := 0; d < 200; d++ {
		doc := new(Document)
		doc.Add("f", "goal")
		ix.Add(doc)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Offset of the first block header's maxFreq uvarint: magic(4),
	// version(4), numDocs(4), numFields(4), name "f"(5), numTerms(4),
	// term "goal"(8), numPostings(4).
	const off = 37
	if data[off] != 1 {
		t.Fatalf("layout drifted: expected maxFreq uvarint 1 at offset %d, got %d", off, data[off])
	}
	data[off] = 0 // claim maxFreq 0 while the block holds freq-1 postings
	if _, err := Decode(bytes.NewReader(data), StandardAnalyzer{}); err == nil {
		t.Fatal("decoder accepted block metadata below the block's real maximum")
	}
}

// TestCodecV2SmallerThanV1 sanity-checks the size direction on a corpus
// with realistic redundancy; the >=2x acceptance bar is enforced by the
// codec benchmark (BENCH_8.json) over the full paper corpus.
func TestCodecV2SmallerThanV1(t *testing.T) {
	vocab := strings.Fields("goal foul save corner pass shot keeper header")
	ix := buildMultiBlockIndex(t, rand.New(rand.NewSource(9)), 500, vocab, []string{"event", "narration"})
	var v1, v2 bytes.Buffer
	if err := ix.EncodeV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := ix.Encode(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 stream (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
}
