package index

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTestIndex() *Index {
	ix := New(StandardAnalyzer{})
	docs := []*Document{
		new(Document).Add("event", "Goal").Add("narration", "Eto'o scores! Barcelona take the lead"),
		new(Document).Add("event", "Miss").Add("narration", "Ronaldo misses a goal from close range"),
		new(Document).Add("event", "Foul").Add("narration", "Ballack gives away a free-kick following a challenge on Busquets"),
		new(Document).Add("event", "Goal").Add("narration", "Messi scores a wonderful goal"),
		new(Document).Add("event", "Offside").Add("narration", "Giggs is flagged for offside"),
	}
	for _, d := range docs {
		ix.Add(d)
	}
	return ix
}

func TestIndexAddAndStats(t *testing.T) {
	ix := buildTestIndex()
	if ix.NumDocs() != 5 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if got := ix.FieldNames(); len(got) != 2 || got[0] != "event" || got[1] != "narration" {
		t.Errorf("FieldNames = %v", got)
	}
	if df := ix.DocFreq("event", "goal"); df != 2 {
		t.Errorf("DocFreq(event, goal) = %d, want 2", df)
	}
	if ix.Doc(0) == nil || ix.Doc(99) != nil || ix.Doc(-1) != nil {
		t.Error("Doc bounds handling wrong")
	}
	if ix.Doc(0).Get("event") != "Goal" {
		t.Errorf("stored field = %q", ix.Doc(0).Get("event"))
	}
}

func TestDocumentMultiValuedGet(t *testing.T) {
	d := new(Document).Add("event", "Foul").Add("event", "NegativeEvent")
	if got := d.Get("event"); got != "Foul NegativeEvent" {
		t.Errorf("Get = %q", got)
	}
	if got := d.Get("missing"); got != "" {
		t.Errorf("Get(missing) = %q", got)
	}
}

func TestPostingsPositions(t *testing.T) {
	ix := New(StandardAnalyzer{})
	ix.Add(new(Document).Add("narration", "goal after goal after goal"))
	pl := ix.Postings("narration", "goal")
	if len(pl) != 1 {
		t.Fatalf("postings = %v", pl)
	}
	if pl[0].Freq() != 3 {
		t.Errorf("freq = %d, want 3", pl[0].Freq())
	}
	// "after" is not in the classic stopword set, so positions are 0, 2, 4.
	want := []int{0, 2, 4}
	for i, p := range pl[0].Positions {
		if p != want[i] {
			t.Errorf("positions = %v", pl[0].Positions)
			break
		}
	}
}

func TestMultiValuedFieldPositionsContinue(t *testing.T) {
	ix := New(StandardAnalyzer{})
	d := new(Document).Add("event", "Foul").Add("event", "NegativeEvent Event")
	ix.Add(d)
	pl := ix.Postings("event", "event")
	if len(pl) != 1 {
		t.Fatalf("postings for 'event' = %+v", pl)
	}
	// "foul" at 0; second value continues: "negativeevent" 1, "event" 2.
	if pl[0].Positions[0] != 2 {
		t.Errorf("continuation position = %d, want 2", pl[0].Positions[0])
	}
}

func TestTermQueryRanking(t *testing.T) {
	ix := buildTestIndex()
	hits := ix.Search(TermQuery{Field: "narration", Term: "goal"}, 0)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	// Both docs 1 and 3 contain "goal" in narration once; doc 3 is shorter
	// after stopword removal? Verify scores are positive and sorted.
	if hits[0].Score < hits[1].Score {
		t.Error("hits not sorted by score")
	}
}

func TestTermQueryFieldSeparation(t *testing.T) {
	ix := buildTestIndex()
	// "goal" in event field only matches the two Goal-typed docs.
	hits := ix.Search(TermQuery{Field: "event", Term: "goal"}, 0)
	if len(hits) != 2 {
		t.Fatalf("event-field hits = %v", hits)
	}
	for _, h := range hits {
		if ix.Doc(h.DocID).Get("event") != "Goal" {
			t.Errorf("doc %d has event %q", h.DocID, ix.Doc(h.DocID).Get("event"))
		}
	}
}

func TestTermQueryStemmedMatch(t *testing.T) {
	ix := buildTestIndex()
	// Query "scores" must match "scores!" via stemming.
	hits := ix.Search(TermQuery{Field: "narration", Term: "scoring"}, 0)
	if len(hits) != 2 {
		t.Errorf("stemmed query hits = %v", hits)
	}
}

func TestTermQueryBoost(t *testing.T) {
	ix := buildTestIndex()
	base := ix.Search(TermQuery{Field: "event", Term: "goal"}, 1)[0].Score
	boosted := ix.Search(TermQuery{Field: "event", Term: "goal", Boost: 4}, 1)[0].Score
	if boosted <= base*3.9 || boosted >= base*4.1 {
		t.Errorf("boost 4 gave %f vs base %f", boosted, base)
	}
}

func TestFieldBoostAtIndexTime(t *testing.T) {
	ix := New(StandardAnalyzer{})
	ix.Add(new(Document).AddBoosted("event", "goal", 8))
	ix.Add(new(Document).Add("event", "goal"))
	hits := ix.Search(TermQuery{Field: "event", Term: "goal"}, 0)
	if len(hits) != 2 || hits[0].DocID != 0 {
		t.Fatalf("hits = %v", hits)
	}
	if ratio := hits[0].Score / hits[1].Score; ratio < 7.9 || ratio > 8.1 {
		t.Errorf("index-time boost ratio = %f, want ~8", ratio)
	}
}

func TestPhraseQuery(t *testing.T) {
	ix := New(StandardAnalyzer{})
	ix.Add(new(Document).Add("n", "foul by daniel on the wing"))
	ix.Add(new(Document).Add("n", "daniel wins a foul"))
	ix.Add(new(Document).Add("n", "by daniel a foul was made")) // "foul by daniel" not consecutive
	hits := ix.Search(PhraseQuery{Field: "n", Terms: []string{"foul", "daniel"}}, 0)
	// Analysis drops "by", so in doc 0 "foul daniel" are consecutive.
	if len(hits) != 1 || hits[0].DocID != 0 {
		t.Errorf("phrase hits = %v", hits)
	}
}

func TestPhraseQueryViaTermQueryMultiToken(t *testing.T) {
	ix := New(StandardAnalyzer{})
	ix.Add(new(Document).Add("n", "yellow card for Alex"))
	ix.Add(new(Document).Add("n", "card shown after a yellow flag incident")) // not consecutive
	hits := ix.Search(TermQuery{Field: "n", Term: "yellow card"}, 0)
	if len(hits) != 1 || hits[0].DocID != 0 {
		t.Errorf("multi-token term query hits = %v", hits)
	}
}

func TestBooleanQueryShould(t *testing.T) {
	ix := buildTestIndex()
	q := BooleanQuery{Should: []Query{
		TermQuery{Field: "narration", Term: "scores"},
		TermQuery{Field: "narration", Term: "offside"},
	}}
	hits := ix.Search(q, 0)
	if len(hits) != 3 {
		t.Errorf("hits = %v", hits)
	}
}

func TestBooleanQueryMust(t *testing.T) {
	ix := buildTestIndex()
	q := BooleanQuery{Must: []Query{
		TermQuery{Field: "narration", Term: "goal"},
		TermQuery{Field: "narration", Term: "ronaldo"},
	}}
	hits := ix.Search(q, 0)
	if len(hits) != 1 || ix.Doc(hits[0].DocID).Get("event") != "Miss" {
		t.Errorf("hits = %v", hits)
	}
}

func TestBooleanQueryMustNot(t *testing.T) {
	ix := buildTestIndex()
	q := BooleanQuery{
		Should:  []Query{TermQuery{Field: "narration", Term: "goal"}},
		MustNot: []Query{TermQuery{Field: "narration", Term: "misses"}},
	}
	hits := ix.Search(q, 0)
	if len(hits) != 1 || ix.Doc(hits[0].DocID).Get("event") != "Goal" {
		t.Errorf("hits = %v", hits)
	}
}

func TestBooleanCoord(t *testing.T) {
	ix := buildTestIndex()
	with := BooleanQuery{Should: []Query{
		TermQuery{Field: "narration", Term: "messi"},
		TermQuery{Field: "narration", Term: "nonexistentterm"},
	}}
	without := BooleanQuery{Should: []Query{
		TermQuery{Field: "narration", Term: "messi"},
		TermQuery{Field: "narration", Term: "nonexistentterm"},
	}, DisableCoord: true}
	hw := ix.Search(with, 1)
	hwo := ix.Search(without, 1)
	if len(hw) != 1 || len(hwo) != 1 {
		t.Fatal("expected one hit each")
	}
	if ratio := hw[0].Score / hwo[0].Score; ratio < 0.45 || ratio > 0.55 {
		t.Errorf("coord ratio = %f, want ~0.5", ratio)
	}
}

func TestMatchAllQuery(t *testing.T) {
	ix := buildTestIndex()
	if hits := ix.Search(MatchAllQuery{}, 0); len(hits) != 5 {
		t.Errorf("MatchAll hits = %d", len(hits))
	}
	if hits := ix.Search(MatchAllQuery{}, 2); len(hits) != 2 {
		t.Errorf("limited hits = %d", len(hits))
	}
}

func TestMultiFieldQuery(t *testing.T) {
	ix := buildTestIndex()
	q := MultiFieldQuery("goal", []FieldBoost{{"event", 4}, {"narration", 1}})
	hits := ix.Search(q, 0)
	// Docs 0 and 3 (Goal events) plus doc 1 ("misses a goal" narration).
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	// The Goal-typed docs must outrank the Miss false positive thanks to the
	// boosted event field — the paper's "Ronaldo misses a goal" example.
	missRank := -1
	for i, h := range hits {
		if ix.Doc(h.DocID).Get("event") == "Miss" {
			missRank = i
		}
	}
	if missRank != 2 {
		t.Errorf("Miss doc ranked %d, want last; hits=%v", missRank, hits)
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := New(StandardAnalyzer{})
	for i := 0; i < 10; i++ {
		ix.Add(new(Document).Add("f", "same text"))
	}
	for trial := 0; trial < 3; trial++ {
		hits := ix.Search(TermQuery{Field: "f", Term: "same"}, 0)
		for i, h := range hits {
			if h.DocID != i {
				t.Fatalf("tie-break order broken: %v", hits)
			}
		}
	}
}

func TestEmptyAndUnknownQueries(t *testing.T) {
	ix := buildTestIndex()
	if hits := ix.Search(TermQuery{Field: "nosuchfield", Term: "goal"}, 0); len(hits) != 0 {
		t.Errorf("unknown field hits = %v", hits)
	}
	if hits := ix.Search(TermQuery{Field: "narration", Term: "the"}, 0); len(hits) != 0 {
		t.Errorf("stopword query hits = %v", hits)
	}
	if hits := ix.Search(BooleanQuery{}, 0); len(hits) != 0 {
		t.Errorf("empty boolean hits = %v", hits)
	}
	if hits := ix.Search(PhraseQuery{Field: "narration"}, 0); len(hits) != 0 {
		t.Errorf("empty phrase hits = %v", hits)
	}
}

func TestNewNilAnalyzerDefaults(t *testing.T) {
	ix := New(nil)
	ix.Add(new(Document).Add("f", "goals"))
	if hits := ix.Search(TermQuery{Field: "f", Term: "goal"}, 0); len(hits) != 1 {
		t.Error("default analyzer not applied")
	}
}

// Property: every document containing a query term (per analyzer) is
// returned by TermQuery, and no document lacking it is.
func TestTermQueryCompletenessProperty(t *testing.T) {
	vocab := []string{"goal", "foul", "save", "corner", "messi", "ronaldo", "card"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ix := New(StandardAnalyzer{})
		contains := make([]bool, 0, int(n%40)+1)
		for i := 0; i < int(n%40)+1; i++ {
			var words []string
			for j := 0; j < r.Intn(8)+1; j++ {
				words = append(words, vocab[r.Intn(len(vocab))])
			}
			text := ""
			has := false
			for _, w := range words {
				text += w + " "
				if w == "goal" {
					has = true
				}
			}
			ix.Add(new(Document).Add("f", text))
			contains = append(contains, has)
		}
		hits := ix.Search(TermQuery{Field: "f", Term: "goal"}, 0)
		got := make(map[int]bool)
		for _, h := range hits {
			got[h.DocID] = true
		}
		for id, want := range contains {
			if got[id] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: scores scale linearly with query boost.
func TestBoostLinearityProperty(t *testing.T) {
	ix := buildTestIndex()
	f := func(b uint8) bool {
		boost := float64(b%20) + 1
		base := ix.Search(TermQuery{Field: "narration", Term: "goal"}, 1)
		boosted := ix.Search(TermQuery{Field: "narration", Term: "goal", Boost: boost}, 1)
		if len(base) == 0 || len(boosted) == 0 {
			return false
		}
		ratio := boosted[0].Score / base[0].Score
		return ratio > boost*0.999 && ratio < boost*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	texts := make([]string, 100)
	for i := range texts {
		texts[i] = fmt.Sprintf("narration %d with goal and players scoring at minute %d", i, i%90)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(StandardAnalyzer{})
		for _, tx := range texts {
			ix.Add(new(Document).Add("narration", tx))
		}
	}
}

func BenchmarkTermQuery(b *testing.B) {
	ix := New(StandardAnalyzer{})
	for i := 0; i < 5000; i++ {
		ix.Add(new(Document).Add("n", fmt.Sprintf("doc %d goal score player %d", i, i%500)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(TermQuery{Field: "n", Term: "goal"}, 10)
	}
}
