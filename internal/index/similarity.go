package index

import "math"

// Similarity scores a single term's contribution to a document, the
// pluggable ranking core. The default reproduces Lucene's classic
// TF-IDF similarity (what the paper's Lucene 2.x would have used); BM25 is
// provided as the modern alternative for the ranking ablation bench.
type Similarity interface {
	// TermScore scores one term occurrence set: freq occurrences in a field
	// of fieldLen tokens, df documents containing the term out of numDocs,
	// avgLen the mean field length across documents.
	TermScore(freq, df, numDocs, fieldLen int, avgLen float64) float64
}

// UpperBoundSimilarity is implemented by similarities whose TermScore is
// monotone nondecreasing in freq and nonincreasing in fieldLen — which
// lets the DAAT kernel derive a per-term score cap by evaluating the
// formula at a term's best-case posting shape. Both built-in similarities
// qualify (see DESIGN.md §10 for the derivations); a custom similarity
// that does not implement the interface simply runs without MaxScore
// pruning.
type UpperBoundSimilarity interface {
	Similarity
	// TermScoreBound returns an upper bound on TermScore over every
	// posting with freq <= maxFreq and fieldLen >= minLen, at the given
	// collection statistics.
	TermScoreBound(maxFreq, df, numDocs, minLen int, avgLen float64) float64
}

// ClassicTFIDF is Lucene's classic similarity:
// sqrt(tf) · idf² · 1/sqrt(fieldLen), idf = 1 + ln(N/(df+1)).
type ClassicTFIDF struct{}

// TermScore implements Similarity.
func (ClassicTFIDF) TermScore(freq, df, numDocs, fieldLen int, avgLen float64) float64 {
	if freq == 0 || fieldLen == 0 {
		return 0
	}
	idf := 1 + math.Log(float64(numDocs)/float64(df+1))
	return math.Sqrt(float64(freq)) * idf * idf / math.Sqrt(float64(fieldLen))
}

// TermScoreBound implements UpperBoundSimilarity: sqrt(tf) rises with tf
// and 1/sqrt(len) falls with len, so the formula at (maxFreq, minLen)
// dominates every real posting.
func (s ClassicTFIDF) TermScoreBound(maxFreq, df, numDocs, minLen int, avgLen float64) float64 {
	return s.TermScore(maxFreq, df, numDocs, minLen, avgLen)
}

// BM25 is Okapi BM25 with the usual k1/b parameterization. Zero values get
// the standard defaults k1=1.2, b=0.75.
type BM25 struct {
	K1 float64
	B  float64
}

// TermScore implements Similarity.
func (s BM25) TermScore(freq, df, numDocs, fieldLen int, avgLen float64) float64 {
	if freq == 0 || fieldLen == 0 {
		return 0
	}
	k1, b := s.K1, s.B
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	idf := math.Log(1 + (float64(numDocs)-float64(df)+0.5)/(float64(df)+0.5))
	tf := float64(freq)
	norm := 1 - b + b*float64(fieldLen)/math.Max(avgLen, 1)
	return idf * tf * (k1 + 1) / (tf + k1*norm)
}

// TermScoreBound implements UpperBoundSimilarity: tf·(k1+1)/(tf+k1·norm)
// rises with tf and falls with norm (which rises with len), so the
// formula at (maxFreq, minLen) dominates every real posting.
func (s BM25) TermScoreBound(maxFreq, df, numDocs, minLen int, avgLen float64) float64 {
	return s.TermScore(maxFreq, df, numDocs, minLen, avgLen)
}
