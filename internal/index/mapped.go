package index

// Mapped (zero-copy) read path. A heap index materializes every posting
// list at Decode time; a mapped index keeps the codec-v2 stream as one
// []byte region (mmap'd by the shard layer on linux, read into memory
// elsewhere) plus a table of contents (TOC) the encoder wrote next to the
// payload, and decodes a posting block only when a scorer actually lands
// on it. The TOC carries, per term: the byte offset and last docID of
// every 128-posting block and the exact term-level score cap — enough for
// Block-Max WAND to skip a beaten block without ever touching its bytes
// (the per-block max-impact header is read from the mapped region only
// when a block survives the term-level cap), and for advance() to binary
// search block boundaries entirely in RAM.
//
// Immutability contract: everything reachable from mappedIndex is
// read-only after OpenMapped returns, so concurrent searches share it
// freely; all per-query decode state lives in BlockReader instances owned
// by a single scorer. The only mutation is the per-document decode cache,
// whose atomic entries are written once with an immutable value (Doc() on
// a hit is the trigger — exactly the "fetch stored fields on hit
// materialization" contract).
//
// Corruption policy: the shard layer CRC-checks payload and TOC before
// handing them here, so decode failures after open are impossible on a
// verified file. The parsers stay fully defensive anyway (FuzzOpenMapped
// feeds truncated and bit-flipped images): every read is bounds-checked,
// a corrupt block decodes to empty rather than panicking, and OpenMapped
// rejects structurally inconsistent TOCs with an error.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// TOC serialization constants. The TOC rides outside the codec payload
// (the shard envelope's meta block), so the payload stays byte-identical
// to what Encode always wrote; codec v2 files without a TOC simply cannot
// be opened mapped and fall back to the heap decoder.
const (
	tocMagic   = "STOC"
	tocVersion = 1
)

// ErrNoTOC reports a codec stream that cannot be served mapped — a v1
// payload, or a v2 payload without a table of contents. Callers fall back
// to the heap Decode path.
var ErrNoTOC = errors.New("index: stream has no mapped table of contents")

// mappedIndex is the index-wide mapped state.
type mappedIndex struct {
	// raw is the whole codec-v2 stream, magic through stored region.
	raw []byte
	// rawTOC is the serialized TOC exactly as read, kept so re-encoding a
	// clean mapped index (checkpointing an unchanged shard) is a raw copy.
	rawTOC []byte
	// numDocs mirrors the payload header's document count.
	numDocs int
	// storedOff is the offset of the stored region's chunk table.
	storedOff int
	// metaNames/metaVals are the stored-only ('_'-prefixed) field values
	// captured in the TOC so identity plumbing (global docIDs, page IDs)
	// never forces the flate region open. metaVals[k][doc] is "" when the
	// doc does not carry the field.
	metaNames []string
	metaVals  [][]string
	// chunkDocs/chunkOffs describe the stored region's chunk table, parsed
	// (and fully bounds-validated) at open: documents per chunk, and
	// chunkOffs[c] as the offset of chunk c's u64 length prefix in raw,
	// with a final sentinel at len(raw). The compressed bytes stay in the
	// mapped region; Doc inflates one chunk transiently to decode one
	// document, so serving stored fields never pins the region in heap.
	chunkDocs int
	chunkOffs []int
	// docCache holds decoded documents by docID — populated only for
	// documents actually served (hit materialization is top-k, so a
	// serving process inflates the handful of documents queries return,
	// not the corpus). Entries are immutable once stored; a racing decode
	// publishes an equal value.
	docCache []atomic.Pointer[Document]
}

// mappedField is one field's mapped postings view.
type mappedField struct {
	raw   []byte
	terms map[string]*mappedTerm
	// docLen[doc] is the field length; present marks which docs carry an
	// entry (a zero length is distinguishable from no entry, which the
	// merge path needs to reproduce the table byte-exactly).
	docLen  []int32
	present []uint64
	// docCount and sumLen mirror len(fi.docLen) and fi.sumLen.
	docCount int
	sumLen   int
	// boostIDs/boostVals are the field-boost table entries, docID
	// ascending (iteration-only: scoring reads boosts from postings).
	boostIDs  []int32
	boostVals []float64
}

// mappedTerm is one term's TOC entry: exact score cap, posting count and
// per-block (offset, last docID) pairs.
type mappedTerm struct {
	n     int
	cap   termCap
	multi bool
	// offs[b] is the absolute offset of block b in the codec stream (at
	// the max-impact header for multi-block terms); lastDocs[b] is the
	// block's final docID — the Block-Max window boundary, and the delta
	// seed for decoding block b+1.
	offs     []int64
	lastDocs []int32
}

func (t *mappedTerm) numBlocks() int { return len(t.offs) }

// blockLen returns the posting count of block b.
func (t *mappedTerm) blockLen(b int) int {
	n := t.n - b*postingBlockSize
	if n > postingBlockSize {
		n = postingBlockSize
	}
	return n
}

// hasEntry reports whether doc has a docLen table entry.
func (f *mappedField) hasEntry(doc int) bool {
	return doc >= 0 && doc < len(f.docLen) && f.present[doc>>6]&(1<<(doc&63)) != 0
}

// lengthOf mirrors fi.docLen[doc] map semantics (missing = 0).
func (f *mappedField) lengthOf(doc int) int {
	if doc < 0 || doc >= len(f.docLen) {
		return 0
	}
	return int(f.docLen[doc])
}

// byteReader is a bounds-checked cursor over an untrusted byte region.
// All reads after a failure return zero values; callers check bad once.
type byteReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *byteReader) fail() {
	r.bad = true
	r.pos = len(r.b)
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) u32() uint32 {
	if r.pos+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *byteReader) u64() uint64 {
	if r.pos+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *byteReader) f64() float64 { return math.Float64frombits(r.u64()) }

// str reads a u32-length-prefixed string (the codec's string shape).
func (r *byteReader) str() string {
	n := r.u32()
	if r.bad || n > 1<<26 || r.pos+int(n) > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// vstr reads a uvarint-length-prefixed string (the TOC's string shape).
func (r *byteReader) vstr() string {
	n := r.uvarint()
	if r.bad || n > 1<<26 || r.pos+int(n) > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// BlockReader decodes one term's 128-posting blocks from the mapped byte
// region, one block at a time into small reused buffers — the unit of
// work the mapped scorers drive. Loading block b seeds the docID delta
// chain from the TOC's lastDocs[b-1], so any block decodes independently;
// position bytes are only parsed when the owner asked for them (term
// scoring never does — frequencies are stored separately from positions,
// so TF scoring never touches position bytes at all).
//
// A BlockReader belongs to exactly one scorer; it is not safe for
// concurrent use (the mapped structures it reads are).
type BlockReader struct {
	f       *mappedField
	t       *mappedTerm
	withPos bool

	blk    int // decoded block index, -1 before first load
	bad    bool
	docs   []int32
	freqs  []int32
	boosts []float64
	// posOff[k]..posOff[k+1] delimit posting k's positions.
	posOff    []int32
	positions []int
}

// newBlockReader positions a reader before the term's first block.
func newBlockReader(f *mappedField, t *mappedTerm, withPos bool) *BlockReader {
	return &BlockReader{f: f, t: t, withPos: withPos, blk: -1}
}

// load decodes block b (a no-op when already current). It returns false —
// with every buffer emptied — when the bytes do not parse as a valid
// block; on a CRC-verified file that cannot happen.
func (r *BlockReader) load(b int) bool {
	if r.blk == b {
		return !r.bad
	}
	r.blk = b
	r.bad = false
	r.docs = r.docs[:0]
	r.freqs = r.freqs[:0]
	r.boosts = r.boosts[:0]
	r.posOff = r.posOff[:0]
	r.positions = r.positions[:0]
	if b < 0 || b >= r.t.numBlocks() || r.t.offs[b] < 0 || r.t.offs[b] > int64(len(r.f.raw)) {
		r.bad = true
		return false
	}
	br := byteReader{b: r.f.raw, pos: int(r.t.offs[b])}
	if r.t.multi {
		// Skip the max-impact header; bounds are read via blockCap when a
		// scorer needs them, without decoding the block.
		br.uvarint()
		br.uvarint()
		br.f64()
	}
	n := r.t.blockLen(b)
	numDocs := len(r.f.docLen)
	prev := int32(-1)
	if b > 0 {
		prev = r.t.lastDocs[b-1]
	}
	for k := 0; k < n; k++ {
		d := br.uvarint()
		if br.bad || d == 0 || d > uint64(numDocs) {
			return r.spoil()
		}
		doc := prev + int32(d)
		if int(doc) >= numDocs {
			return r.spoil()
		}
		prev = doc
		r.docs = append(r.docs, doc)
	}
	if prev != r.t.lastDocs[b] {
		// The payload disagrees with the TOC: one of them is corrupt.
		return r.spoil()
	}
	totalFreq := 0
	for k := 0; k < n; k++ {
		f := br.uvarint()
		if br.bad || f == 0 || f > 1<<24 {
			return r.spoil()
		}
		totalFreq += int(f)
		r.freqs = append(r.freqs, int32(f))
	}
	flag := byte(0)
	if br.pos < len(br.b) {
		flag = br.b[br.pos]
		br.pos++
	} else {
		return r.spoil()
	}
	switch flag {
	case 0:
		v := br.f64()
		if br.bad {
			return r.spoil()
		}
		for k := 0; k < n; k++ {
			r.boosts = append(r.boosts, v)
		}
	case 1:
		for k := 0; k < n; k++ {
			v := br.f64()
			if br.bad {
				return r.spoil()
			}
			r.boosts = append(r.boosts, v)
		}
	default:
		return r.spoil()
	}
	if r.withPos {
		// Position deltas are at least one byte each, so the remaining
		// region bounds the honest total — a lying freq cannot force an
		// allocation past the bytes that exist.
		if totalFreq > len(br.b)-br.pos {
			return r.spoil()
		}
		for k := 0; k < n; k++ {
			r.posOff = append(r.posOff, int32(len(r.positions)))
			prevPos := -1
			for q := int32(0); q < r.freqs[k]; q++ {
				delta := br.uvarint()
				if br.bad || delta == 0 || delta > 1<<32 {
					return r.spoil()
				}
				pos := prevPos + int(delta)
				if pos > 1<<32 {
					return r.spoil()
				}
				prevPos = pos
				r.positions = append(r.positions, pos)
			}
		}
		r.posOff = append(r.posOff, int32(len(r.positions)))
	}
	return true
}

// spoil marks the current block corrupt and empties every buffer so the
// owner sees an exhausted, never an out-of-bounds, cursor.
func (r *BlockReader) spoil() bool {
	r.bad = true
	r.docs = r.docs[:0]
	r.freqs = r.freqs[:0]
	r.boosts = r.boosts[:0]
	r.posOff = r.posOff[:0]
	r.positions = r.positions[:0]
	return false
}

// docAt returns the docID at posting index i, decoding the containing
// block on demand; noMoreDocs past the end or on a corrupt block.
func (r *BlockReader) docAt(i int) int {
	if i >= r.t.n {
		return noMoreDocs
	}
	b := i / postingBlockSize
	if !r.load(b) {
		return noMoreDocs
	}
	k := i - b*postingBlockSize
	if k >= len(r.docs) {
		return noMoreDocs
	}
	return int(r.docs[k])
}

// at returns the (freq, boost) of posting index i. Only valid right after
// a successful docAt(i).
func (r *BlockReader) at(i int) (freq int, boost float64) {
	k := i - r.blk*postingBlockSize
	return int(r.freqs[k]), r.boosts[k]
}

// positionsAt returns posting index i's position list (withPos readers
// only). The slice aliases the reader's buffer: valid until the next load.
func (r *BlockReader) positionsAt(i int) []int {
	k := i - r.blk*postingBlockSize
	if k < 0 || k+1 >= len(r.posOff) {
		return nil
	}
	return r.positions[r.posOff[k]:r.posOff[k+1]]
}

// findDoc locates doc's posting index, or (-1, false). It binary searches
// the in-RAM block boundaries first, so at most one block is decoded.
func (r *BlockReader) findDoc(doc int) (int, bool) {
	t := r.t
	nb := t.numBlocks()
	lo, hi := 0, nb
	for lo < hi {
		mid := (lo + hi) / 2
		if int(t.lastDocs[mid]) < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= nb || !r.load(lo) {
		return -1, false
	}
	j, found := searchInt32(r.docs, int32(doc))
	if !found {
		return -1, false
	}
	return lo*postingBlockSize + j, true
}

// searchInt32 binary searches an ascending []int32.
func searchInt32(a []int32, v int32) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == v
}

// blockCap reads block b's max-impact header from the mapped region —
// ~20 bytes at the block's start, no posting decoded. Single-block terms
// answer with the exact term cap (they carry no header).
func (f *mappedField) blockCap(t *mappedTerm, b int) termCap {
	if !t.multi {
		return t.cap
	}
	if b < 0 || b >= t.numBlocks() || t.offs[b] < 0 || t.offs[b] > int64(len(f.raw)) {
		return termCap{maxFreq: int(^uint(0) >> 1), minLen: 1, maxBoost: math.Inf(1)}
	}
	br := byteReader{b: f.raw, pos: int(t.offs[b])}
	mf := br.uvarint()
	ml := br.uvarint()
	mb := br.f64()
	if br.bad || mf == 0 || ml == 0 || mf > 1<<24 || ml > 1<<32 {
		// Unreadable header (impossible post-CRC): never prune on it.
		return termCap{maxFreq: int(^uint(0) >> 1), minLen: 1, maxBoost: math.Inf(1)}
	}
	return termCap{maxFreq: int(mf), minLen: int(ml), maxBoost: mb}
}

// hasPosition reports whether term's posting for doc contains pos —
// the mapped analogue of the heap path's binary search, decoding at most
// one block (with positions) per probe. Used by the exhaustive phrase
// oracle; the mapped phrase scorer keeps per-term readers instead.
func (f *mappedField) hasPosition(term string, doc, pos int) bool {
	t := f.terms[term]
	if t == nil {
		return false
	}
	r := newBlockReader(f, t, true)
	i, ok := r.findDoc(doc)
	if !ok {
		return false
	}
	pl := r.positionsAt(i)
	lo, hi := 0, len(pl)
	for lo < hi {
		mid := (lo + hi) / 2
		if pl[mid] < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(pl) && pl[lo] == pos
}

// materialize decodes term's full posting list into heap Postings —
// the escape hatch for the exhaustive oracle, merges and stats, bounded
// to one term at a time.
func (f *mappedField) materialize(term string) []Posting {
	t := f.terms[term]
	if t == nil {
		return nil
	}
	r := newBlockReader(f, t, true)
	pl := make([]Posting, 0, t.n)
	for b := 0; b < t.numBlocks(); b++ {
		if !r.load(b) {
			return nil
		}
		for k := range r.docs {
			pl = append(pl, Posting{
				DocID:     int(r.docs[k]),
				Boost:     r.boosts[k],
				Positions: append([]int(nil), r.positions[r.posOff[k]:r.posOff[k+1]]...),
			})
		}
	}
	return pl
}

// --- TOC build (encoder side) ---

// tocBuilder accumulates offsets during encodeV2 and serializes them.
type tocBuilder struct {
	numDocs   int
	storedOff uint64
	metaNames []string
	metaVals  [][]string
	fields    []*tocField
}

type tocField struct {
	name                string
	docLenOff, boostOff uint64
	terms               []tocTerm
}

type tocTerm struct {
	term  string
	n     int
	cap   termCap
	offs  []uint64
	lasts []int32
}

// newTOCBuilder captures the requested stored-only meta fields from the
// documents up front; offsets arrive during the encode walk.
func newTOCBuilder(ix *Index, metaFields []string) *tocBuilder {
	tb := &tocBuilder{numDocs: len(ix.docs)}
	for _, name := range metaFields {
		vals := make([]string, len(ix.docs))
		for i, d := range ix.docs {
			vals[i] = d.Get(name)
		}
		tb.metaNames = append(tb.metaNames, name)
		tb.metaVals = append(tb.metaVals, vals)
	}
	return tb
}

func (tb *tocBuilder) field(name string) *tocField {
	tf := &tocField{name: name}
	tb.fields = append(tb.fields, tf)
	return tf
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVstr(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// serialize renders the TOC bytes. Offsets are delta-coded (they are
// strictly monotone across the payload), so the whole table stays a small
// fraction of the postings it describes.
func (tb *tocBuilder) serialize() []byte {
	out := make([]byte, 0, 1<<12)
	out = append(out, tocMagic...)
	out = binary.LittleEndian.AppendUint32(out, tocVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(tb.numDocs))
	out = binary.LittleEndian.AppendUint64(out, tb.storedOff)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(tb.metaNames)))
	for k, name := range tb.metaNames {
		out = appendVstr(out, name)
		for _, v := range tb.metaVals[k] {
			out = appendVstr(out, v)
		}
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(tb.fields)))
	for _, tf := range tb.fields {
		out = appendVstr(out, tf.name)
		out = binary.LittleEndian.AppendUint64(out, tf.docLenOff)
		out = binary.LittleEndian.AppendUint64(out, tf.boostOff)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(tf.terms)))
		prevOff := uint64(0)
		for _, t := range tf.terms {
			out = appendVstr(out, t.term)
			out = appendUvarint(out, uint64(t.n))
			out = appendUvarint(out, uint64(t.cap.maxFreq))
			out = appendUvarint(out, uint64(t.cap.minLen))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(t.cap.maxBoost))
			for b, off := range t.offs {
				out = appendUvarint(out, off-prevOff)
				prevOff = off
				last := uint64(t.lasts[b]) + 1
				if b > 0 {
					last = uint64(t.lasts[b] - t.lasts[b-1])
				}
				out = appendUvarint(out, last)
			}
		}
	}
	return out
}

// --- Open (reader side) ---

// OpenMapped builds an index that serves queries directly from raw — a
// codec-v2 stream — using the TOC bytes its encoder produced alongside
// (EncodeWithTOC). Neither slice is copied: the caller owns their
// lifetime and must keep them valid (and unmodified) for the life of the
// index; the shard layer ties this to the mmap's lifetime.
//
// Integrity is the caller's job (the shard envelope CRCs both regions);
// OpenMapped validates structure, not checksums: header magic/version,
// TOC/payload agreement on counts and offsets, table parses, and monotone
// block boundaries. A v1 payload or missing TOC returns ErrNoTOC so
// callers can fall back to the heap decoder.
func OpenMapped(raw, toc []byte, analyzer Analyzer) (*Index, error) {
	if len(toc) == 0 {
		return nil, ErrNoTOC
	}
	pr := byteReader{b: raw}
	if string(pr.b[:min(4, len(pr.b))]) != codecMagic {
		return nil, fmt.Errorf("index: bad magic in mapped stream")
	}
	pr.pos = 4
	switch v := pr.u32(); {
	case pr.bad:
		return nil, fmt.Errorf("index: truncated mapped stream")
	case v == CodecVersionV1:
		return nil, ErrNoTOC
	case v != CodecVersionCurrent:
		return nil, fmt.Errorf("index: unsupported codec version %d", v)
	}
	payloadDocs := pr.u32()
	if pr.bad || payloadDocs > 1<<28 {
		return nil, fmt.Errorf("index: implausible doc count in mapped stream")
	}

	tr := byteReader{b: toc}
	if string(tr.b[:min(4, len(tr.b))]) != tocMagic {
		return nil, ErrNoTOC
	}
	tr.pos = 4
	if v := tr.u32(); tr.bad || v != tocVersion {
		return nil, fmt.Errorf("index: unsupported TOC version")
	}
	numDocs := int(tr.u32())
	storedOff := tr.u64()
	if tr.bad || numDocs != int(payloadDocs) {
		return nil, fmt.Errorf("index: TOC/payload doc count mismatch")
	}
	// The stored region must close the payload exactly: a u32 chunk size
	// at storedOff, then length-prefixed flate chunks to the end. The
	// chunk walk is O(numDocs/chunkDocs) pointer arithmetic — no chunk is
	// inflated here.
	if storedOff > uint64(len(raw)) || storedOff < 12 {
		return nil, fmt.Errorf("index: TOC stored-region offset out of range")
	}
	sr := byteReader{b: raw, pos: int(storedOff)}
	chunkDocs := sr.u32()
	if sr.bad || chunkDocs == 0 || chunkDocs > 1<<20 {
		return nil, fmt.Errorf("index: implausible mapped stored chunk size")
	}
	chunkCount := (numDocs + int(chunkDocs) - 1) / int(chunkDocs)
	chunkOffs := make([]int, chunkCount+1)
	for c := 0; c < chunkCount; c++ {
		chunkOffs[c] = sr.pos
		n := sr.u64()
		if sr.bad || n > uint64(len(raw)-sr.pos) {
			return nil, fmt.Errorf("index: truncated mapped stored chunk %d", c)
		}
		sr.pos += int(n)
	}
	chunkOffs[chunkCount] = sr.pos
	if sr.pos != len(raw) {
		return nil, fmt.Errorf("index: stored-region length mismatch")
	}

	ix := New(analyzer)
	m := &mappedIndex{
		raw:       raw,
		rawTOC:    toc,
		numDocs:   numDocs,
		storedOff: int(storedOff),
		chunkDocs: int(chunkDocs),
		chunkOffs: chunkOffs,
		docCache:  make([]atomic.Pointer[Document], numDocs),
	}
	numMeta := tr.u32()
	if tr.bad || numMeta > 1<<10 {
		return nil, fmt.Errorf("index: implausible TOC meta field count")
	}
	for k := uint32(0); k < numMeta; k++ {
		name := tr.vstr()
		vals := make([]string, 0, capHint(uint32(numDocs), 1<<16))
		for d := 0; d < numDocs; d++ {
			vals = append(vals, tr.vstr())
			if tr.bad {
				return nil, fmt.Errorf("index: truncated TOC meta values")
			}
		}
		m.metaNames = append(m.metaNames, name)
		m.metaVals = append(m.metaVals, vals)
	}
	numFields := tr.u32()
	if tr.bad || numFields > 1<<16 {
		return nil, fmt.Errorf("index: implausible TOC field count")
	}
	for i := uint32(0); i < numFields; i++ {
		name := tr.vstr()
		docLenOff := tr.u64()
		boostOff := tr.u64()
		numTerms := tr.u32()
		if tr.bad || numTerms > 1<<28 {
			return nil, fmt.Errorf("index: truncated TOC field header")
		}
		mf := &mappedField{
			raw:   raw,
			terms: make(map[string]*mappedTerm, capHint(numTerms, 1<<16)),
		}
		prevOff := uint64(0)
		for t := uint32(0); t < numTerms; t++ {
			term := tr.vstr()
			n := tr.uvarint()
			maxFreq := tr.uvarint()
			minLen := tr.uvarint()
			maxBoost := math.Float64frombits(tr.u64())
			if tr.bad || n == 0 || n > uint64(numDocs) || maxFreq == 0 || maxFreq > 1<<24 || minLen == 0 || minLen > 1<<32 {
				return nil, fmt.Errorf("index: bad TOC term entry")
			}
			nb := (int(n) + postingBlockSize - 1) / postingBlockSize
			mt := &mappedTerm{
				n:        int(n),
				cap:      termCap{maxFreq: int(maxFreq), minLen: int(minLen), maxBoost: maxBoost},
				multi:    int(n) > postingBlockSize,
				offs:     make([]int64, 0, nb),
				lastDocs: make([]int32, 0, nb),
			}
			prevLast := int32(-1)
			for b := 0; b < nb; b++ {
				off := prevOff + tr.uvarint()
				delta := tr.uvarint()
				if tr.bad || delta == 0 || off >= storedOff {
					return nil, fmt.Errorf("index: bad TOC block entry for %q", term)
				}
				last := prevLast + int32(delta)
				if int(last) >= numDocs {
					return nil, fmt.Errorf("index: TOC block boundary out of range for %q", term)
				}
				prevOff = off
				prevLast = last
				mt.offs = append(mt.offs, int64(off))
				mt.lastDocs = append(mt.lastDocs, last)
			}
			mf.terms[term] = mt
		}
		// The field-length and boost tables parse out of the payload at the
		// recorded offsets, into compact arrays (they are read per scored
		// document, unlike postings).
		if docLenOff >= storedOff || boostOff >= storedOff {
			return nil, fmt.Errorf("index: TOC table offset out of range for field %q", name)
		}
		if err := mf.parseTables(raw, int(docLenOff), int(boostOff), numDocs); err != nil {
			return nil, err
		}
		fi := newFieldIndex()
		fi.m = mf
		fi.sumLen = mf.sumLen
		ix.fields[name] = fi
	}
	if !tr.bad && tr.pos != len(toc) {
		return nil, fmt.Errorf("index: %d trailing TOC bytes", len(toc)-tr.pos)
	}
	ix.mapped = m
	return ix, nil
}

// parseTables decodes the payload's field-length and field-boost tables
// (the same wire shapes decodeV2Field reads) into arrays.
func (f *mappedField) parseTables(raw []byte, docLenOff, boostOff, numDocs int) error {
	f.docLen = make([]int32, numDocs)
	f.present = make([]uint64, (numDocs+63)/64)
	br := byteReader{b: raw, pos: docLenOff}
	numLens := br.u32()
	if br.bad || int64(numLens) > int64(numDocs) {
		return fmt.Errorf("index: bad mapped field-length table")
	}
	prev := -1
	for l := uint32(0); l < numLens; l++ {
		delta := br.uvarint()
		if br.bad || delta == 0 || delta > uint64(numDocs) {
			return fmt.Errorf("index: bad mapped field-length delta")
		}
		id := prev + int(delta)
		if id >= numDocs {
			return fmt.Errorf("index: mapped field length references doc %d of %d", id, numDocs)
		}
		prev = id
		v := br.uvarint()
		if br.bad || v > 1<<31 {
			return fmt.Errorf("index: implausible mapped field length")
		}
		f.docLen[id] = int32(v)
		f.present[id>>6] |= 1 << (id & 63)
		f.sumLen += int(v)
		f.docCount++
	}
	br = byteReader{b: raw, pos: boostOff}
	numBoosts := br.u32()
	if br.bad || int64(numBoosts) > int64(numDocs) {
		return fmt.Errorf("index: bad mapped field-boost table")
	}
	if numBoosts > 0 {
		flag := byte(0)
		if br.pos < len(br.b) {
			flag = br.b[br.pos]
			br.pos++
		} else {
			return fmt.Errorf("index: truncated mapped field-boost table")
		}
		if flag > 1 {
			return fmt.Errorf("index: bad mapped field-boost flag")
		}
		prev := -1
		for k := uint32(0); k < numBoosts; k++ {
			delta := br.uvarint()
			if br.bad || delta == 0 || delta > uint64(numDocs) {
				return fmt.Errorf("index: bad mapped field-boost delta")
			}
			id := prev + int(delta)
			if id >= numDocs {
				return fmt.Errorf("index: mapped field boost references doc %d of %d", id, numDocs)
			}
			prev = id
			f.boostIDs = append(f.boostIDs, int32(id))
			if flag == 1 {
				f.boostVals = append(f.boostVals, br.f64())
			}
		}
		if flag == 0 {
			v := br.f64()
			for range f.boostIDs {
				f.boostVals = append(f.boostVals, v)
			}
		}
		if br.bad {
			return fmt.Errorf("index: truncated mapped field-boost table")
		}
	}
	return nil
}

// --- Index-level mapped plumbing ---

// Mapped reports whether this index serves postings from a mapped byte
// region instead of heap structures.
func (ix *Index) Mapped() bool { return ix.mapped != nil }

// docCount is the stored-document count whatever the storage mode — the
// internal replacement for len(ix.docs), which is 0 on a mapped index
// until the stored region materializes.
func (ix *Index) docCount() int {
	if ix.mapped != nil {
		return ix.mapped.numDocs
	}
	return len(ix.docs)
}

// DocMeta returns a stored-only field's value for one document without
// forcing stored-region materialization when the value was captured in
// the mapped TOC (identity fields like the shard layer's global docID).
// Fields outside the TOC fall back to Doc(id).Get(name).
func (ix *Index) DocMeta(id int, name string) string {
	if m := ix.mapped; m != nil {
		for k, n := range m.metaNames {
			if n == name {
				if id >= 0 && id < len(m.metaVals[k]) {
					return m.metaVals[k][id]
				}
				return ""
			}
		}
	}
	d := ix.Doc(id)
	if d == nil {
		return ""
	}
	return d.Get(name)
}

// storedDocAt returns one stored document: from the cache if it was
// served before, otherwise by inflating its chunk from the mapped region
// (transiently — the decompressed bytes are garbage after the decode)
// and decoding the one document out of it. Returns nil on structural
// corruption inside the chunk (impossible on a CRC-verified file; the
// parse stays defensive anyway). id is in [0, numDocs).
func (m *mappedIndex) storedDocAt(id int) *Document {
	if d := m.docCache[id].Load(); d != nil {
		return d
	}
	c := id / m.chunkDocs
	comp := m.raw[m.chunkOffs[c]+8 : m.chunkOffs[c+1]]
	zr := flate.NewReader(bytes.NewReader(comp))
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil
	}
	r := byteReader{b: raw}
	for k := id % m.chunkDocs; k > 0; k-- {
		if !skipStoredDoc(&r) {
			return nil
		}
	}
	nf := r.u32()
	if r.bad || nf > 1<<16 {
		return nil
	}
	d := &Document{Fields: make([]Field, 0, capHint(nf, 256))}
	for j := uint32(0); j < nf; j++ {
		var f Field
		f.Name = r.str()
		f.Text = r.str()
		f.Boost = r.f64()
		if r.bad {
			return nil
		}
		d.Fields = append(d.Fields, f)
	}
	m.docCache[id].Store(d)
	return d
}

// skipStoredDoc advances r over one stored document's wire bytes (u32
// field count, then name/text strings and a boost f64 per field) without
// building the Document. Reports false on corruption.
func skipStoredDoc(r *byteReader) bool {
	nf := r.u32()
	if r.bad || nf > 1<<16 {
		return false
	}
	for j := uint32(0); j < nf; j++ {
		r.str()
		r.str()
		r.f64()
		if r.bad {
			return false
		}
	}
	return true
}
