package index

import (
	"math"
	"sort"
)

// Posting records the occurrences of one term in one document field.
type Posting struct {
	// DocID is the document the term occurs in.
	DocID int
	// Positions are the token positions of each occurrence, ascending.
	Positions []int
	// Boost is the field boost captured at indexing time.
	Boost float64
}

// Freq returns the within-document term frequency.
func (p Posting) Freq() int { return len(p.Positions) }

// postingBlockSize is the number of postings per Block-Max block: posting
// lists are carved into fixed runs of this many entries, each carrying its
// own score-bound inputs (termCap), so the DAAT kernel can skip whole
// blocks — not just whole terms — against the collector's threshold. 128
// matches the codec v2 on-disk block size (Lucene's choice), small enough
// that a block's bound is much tighter than the term's, large enough that
// the metadata is negligible next to the postings it covers.
const postingBlockSize = 128

// fieldIndex is the inverted index of a single field.
type fieldIndex struct {
	postings map[string][]Posting
	// docLen maps docID to the field's token count, for length norms.
	docLen map[int]int
	// sumLen accumulates total tokens, for BM25's average field length.
	sumLen int
	// boost records the per-doc field boost (last write wins per doc).
	boost map[int]float64
	// caps tracks each term's score-bound inputs for MaxScore pruning,
	// maintained incrementally by Add and rebuilt by the codec on load.
	caps map[string]termCap
	// blocks tracks per-block score-bound inputs for terms spanning more
	// than one posting block (block i covers postings
	// [i*postingBlockSize, (i+1)*postingBlockSize)). Single-block terms
	// carry no entry — their only block bound is exactly caps[term].
	// Maintained incrementally by Add, read from codec v2 snapshots,
	// rebuilt from the postings for codec v1.
	blocks map[string][]termCap
	// m, when set, is the mapped (zero-copy) postings view: the maps above
	// stay empty and every reader branches to the byte region (mapped.go).
	m *mappedField
}

// termCap records the inputs from which a term's score upper bound is
// derived at query time: the largest within-document frequency, the
// shortest document carrying the term (tracked conservatively — a
// multi-valued field observed mid-growth only shrinks the bound's length,
// which loosens, never invalidates, the cap), and the largest posting
// boost.
type termCap struct {
	maxFreq  int
	minLen   int
	maxBoost float64
}

// newFieldIndex returns an empty single-field inverted index.
func newFieldIndex() *fieldIndex {
	return &fieldIndex{
		postings: make(map[string][]Posting),
		docLen:   make(map[int]int),
		boost:    make(map[int]float64),
		caps:     make(map[string]termCap),
		blocks:   make(map[string][]termCap),
	}
}

// avgLen is the mean field length across documents carrying the field.
func (fi *fieldIndex) avgLen() float64 {
	n := len(fi.docLen)
	if fi.m != nil {
		n = fi.m.docCount
	}
	if n == 0 {
		return 0
	}
	return float64(fi.sumLen) / float64(n)
}

// numTerms is the distinct-term count whatever the storage mode.
func (fi *fieldIndex) numTerms() int {
	if fi.m != nil {
		return len(fi.m.terms)
	}
	return len(fi.postings)
}

// termNames returns the unsorted term dictionary keys.
func (fi *fieldIndex) termNames() []string {
	if fi.m != nil {
		out := make([]string, 0, len(fi.m.terms))
		for t := range fi.m.terms {
			out = append(out, t)
		}
		return out
	}
	out := make([]string, 0, len(fi.postings))
	for t := range fi.postings {
		out = append(out, t)
	}
	return out
}

// numPostings is a term's posting count without materializing anything.
func (fi *fieldIndex) numPostings(term string) int {
	if fi.m != nil {
		if t := fi.m.terms[term]; t != nil {
			return t.n
		}
		return 0
	}
	return len(fi.postings[term])
}

// postingsOf materializes a term's posting list — O(1) slice handout on
// the heap path, a full block decode on the mapped path (the escape hatch
// the exhaustive oracle, merges and stats walk through; scorers use block
// cursors instead).
func (fi *fieldIndex) postingsOf(term string) []Posting {
	if fi.m != nil {
		return fi.m.materialize(term)
	}
	return fi.postings[term]
}

// termCapOf returns a term's score-bound inputs (exact on both storage
// modes once loaded from disk).
func (fi *fieldIndex) termCapOf(term string) (termCap, bool) {
	if fi.m != nil {
		if t := fi.m.terms[term]; t != nil {
			return t.cap, true
		}
		return termCap{}, false
	}
	c, ok := fi.caps[term]
	return c, ok
}

// lengthOf is fi.docLen[docID] whatever the storage mode.
func (fi *fieldIndex) lengthOf(docID int) int {
	if fi.m != nil {
		return fi.m.lengthOf(docID)
	}
	return fi.docLen[docID]
}

// eachDocLen visits every field-length entry (docID, length). Ascending
// docID on the mapped path, map order on the heap path — callers must not
// depend on order.
func (fi *fieldIndex) eachDocLen(fn func(id, l int)) {
	if fi.m != nil {
		for id := 0; id < len(fi.m.docLen); id++ {
			if fi.m.hasEntry(id) {
				fn(id, int(fi.m.docLen[id]))
			}
		}
		return
	}
	for id, l := range fi.docLen {
		fn(id, l)
	}
}

// boostOf is fi.boost[id] (missing = 0) whatever the storage mode.
func (fi *fieldIndex) boostOf(id int) float64 {
	if fi.m != nil {
		j, ok := searchInt32(fi.m.boostIDs, int32(id))
		if !ok {
			return 0
		}
		return fi.m.boostVals[j]
	}
	return fi.boost[id]
}

// Index is an in-memory inverted index over documents with analyzed fields,
// the stand-in for a Lucene index. Build it once with Add, then search; it
// is not safe for concurrent mutation but safe for concurrent searching,
// mirroring the paper's offline-build / online-query discipline.
type Index struct {
	analyzer Analyzer
	sim      Similarity
	fields   map[string]*fieldIndex
	docs     []*Document
	// global, when set, replaces the local df / doc-count / avg-length
	// statistics in every ranking formula (see stats.go) so a shard of a
	// partitioned corpus ranks exactly like the whole.
	global *CorpusStats
	// exhaustive routes Search through the term-at-a-time map-accumulator
	// path instead of the DAAT kernel (see SetExhaustive).
	exhaustive bool
	// deleted marks tombstoned documents (Lucene's liveDocs, inverted).
	// Postings are never rewritten; the collect points in Search and
	// ExhaustiveSearch skip dead docIDs instead, and a merge drops them.
	deleted    []bool
	numDeleted int
	// mapped, when set, means this index serves from a mapped byte region
	// (OpenMapped): ix.docs stays empty until the stored region lazily
	// materializes, and ix.fields carry mappedField views. The index is
	// read-only except for tombstones.
	mapped *mappedIndex
}

// New returns an empty index using the analyzer for every field and the
// classic TF-IDF similarity.
func New(a Analyzer) *Index {
	if a == nil {
		a = StandardAnalyzer{}
	}
	return &Index{analyzer: a, sim: ClassicTFIDF{}, fields: make(map[string]*fieldIndex)}
}

// SetSimilarity swaps the ranking function (e.g. for the BM25 ablation).
// Must be called before searching; it does not affect indexed data.
func (ix *Index) SetSimilarity(s Similarity) { ix.sim = s }

// Analyzer returns the index's analyzer, which query parsers must reuse so
// query terms and index terms agree.
func (ix *Index) Analyzer() Analyzer { return ix.analyzer }

// Add indexes the document and returns its docID. Fields whose name starts
// with '_' are stored but not indexed — the semantic index uses them to
// carry evaluation metadata without polluting the term space.
func (ix *Index) Add(d *Document) int {
	if ix.mapped != nil {
		// The mapped region is immutable; fresh writes belong in a new
		// (heap) segment — the LSM write side the shard layer runs.
		panic("index: Add on a mapped index")
	}
	id := len(ix.docs)
	ix.docs = append(ix.docs, d)
	ix.deleted = append(ix.deleted, false)
	for _, f := range d.Fields {
		if len(f.Name) > 0 && f.Name[0] == '_' {
			continue
		}
		fi := ix.fields[f.Name]
		if fi == nil {
			fi = newFieldIndex()
			ix.fields[f.Name] = fi
		}
		terms := ix.analyzer.Analyze(f.Text)
		base := fi.docLen[id] // continuation position for multi-valued fields
		fi.docLen[id] = base + len(terms)
		fi.sumLen += len(terms)
		boost := f.Boost
		if boost == 0 {
			boost = 1
		}
		fi.boost[id] = boost
		for pos, term := range terms {
			pl := fi.postings[term]
			if n := len(pl); n > 0 && pl[n-1].DocID == id {
				pl[n-1].Positions = append(pl[n-1].Positions, base+pos)
			} else {
				pl = append(pl, Posting{DocID: id, Positions: []int{base + pos}, Boost: boost})
			}
			fi.postings[term] = pl
			// Keep the term's score-bound inputs current: the last posting
			// is always this document's.
			p := &pl[len(pl)-1]
			freq, dlen := len(p.Positions), fi.docLen[id]
			if c, ok := fi.caps[term]; !ok {
				fi.caps[term] = termCap{maxFreq: freq, minLen: dlen, maxBoost: p.Boost}
			} else if c.observe(freq, dlen, p.Boost) {
				fi.caps[term] = c
			}
			fi.observeBlock(term, pl, freq, dlen, p.Boost)
		}
	}
	return id
}

// NumDocs returns the number of indexed documents, including tombstoned
// ones — it is the docID space size, not the live count (see LiveDocs).
func (ix *Index) NumDocs() int { return ix.docCount() }

// Delete tombstones a document: it stops matching queries immediately but
// keeps its docID (and its stored fields, for merge-time bookkeeping)
// until a merge drops it. Reports whether the document was newly deleted.
// Like Add, not safe against concurrent searches.
func (ix *Index) Delete(id int) bool {
	if id < 0 || id >= ix.docCount() {
		return false
	}
	// Decoded snapshots carry no tombstones and leave the slice unsized;
	// grow it on the first delete after a load.
	if len(ix.deleted) < ix.docCount() {
		ix.deleted = append(ix.deleted, make([]bool, ix.docCount()-len(ix.deleted))...)
	}
	if ix.deleted[id] {
		return false
	}
	ix.deleted[id] = true
	ix.numDeleted++
	return true
}

// IsDeleted reports whether the document is tombstoned.
func (ix *Index) IsDeleted(id int) bool {
	return id >= 0 && id < len(ix.deleted) && ix.deleted[id]
}

// NumDeleted returns the tombstone count.
func (ix *Index) NumDeleted() int { return ix.numDeleted }

// DeletedMask returns a copy of the tombstone bits — the liveness
// snapshot a background merge works against (see MergeIndexes).
func (ix *Index) DeletedMask() []bool {
	if len(ix.deleted) == 0 {
		return nil
	}
	return append([]bool(nil), ix.deleted...)
}

// LiveDocs returns the number of documents that still match queries.
func (ix *Index) LiveDocs() int { return ix.docCount() - ix.numDeleted }

// Stats summarizes index size.
type Stats struct {
	// Docs is the document count, including tombstoned documents.
	Docs int
	// Deleted is the tombstone count awaiting a merge.
	Deleted int
	// Fields is the number of distinct indexed fields.
	Fields int
	// Terms is the total distinct (field, term) pairs.
	Terms int
	// Postings is the total posting count across all terms.
	Postings int
}

// Stats computes the index size summary by walking the term dictionaries
// (posting counts come from the TOC on a mapped index — no decode).
func (ix *Index) Stats() Stats {
	s := Stats{Docs: ix.docCount(), Deleted: ix.numDeleted, Fields: len(ix.fields)}
	for _, fi := range ix.fields {
		if fi.m != nil {
			s.Terms += len(fi.m.terms)
			for _, t := range fi.m.terms {
				s.Postings += t.n
			}
			continue
		}
		s.Terms += len(fi.postings)
		for _, pl := range fi.postings {
			s.Postings += len(pl)
		}
	}
	return s
}

// Doc returns the stored document for a docID. On a mapped index it
// inflates the document's stored chunk on first access (hit
// materialization is the trigger; pure scoring never lands here) and
// caches the decoded document — only documents actually served ever
// inflate, so the heap cost of stored fields tracks the working set,
// not the corpus.
func (ix *Index) Doc(id int) *Document {
	if m := ix.mapped; m != nil {
		if id < 0 || id >= m.numDocs {
			return nil
		}
		return m.storedDocAt(id)
	}
	if id < 0 || id >= len(ix.docs) {
		return nil
	}
	return ix.docs[id]
}

// FieldNames returns the indexed field names, sorted.
func (ix *Index) FieldNames() []string {
	out := make([]string, 0, len(ix.fields))
	for n := range ix.fields {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasField reports whether any document has indexed the named field.
// Query routers use it to decide if a "name:" prefix in user input refers
// to a real field or is just punctuation in a keyword ("2:1 goal").
func (ix *Index) HasField(name string) bool {
	_, ok := ix.fields[name]
	return ok
}

// Terms returns the sorted term dictionary of a field, for vocabulary
// scans such as spelling suggestion.
func (ix *Index) Terms(field string) []string {
	fi := ix.fields[field]
	if fi == nil {
		return nil
	}
	out := fi.termNames()
	sort.Strings(out)
	return out
}

// Postings returns the posting list of an analyzed term in a field. The
// term must already be in index form (lowercased, stemmed); use the
// analyzer to normalize raw text first. On a mapped index this decodes
// the term's blocks into fresh heap postings.
func (ix *Index) Postings(field, term string) []Posting {
	fi := ix.fields[field]
	if fi == nil {
		return nil
	}
	return fi.postingsOf(term)
}

// DocFreq returns the number of documents containing the term in the field.
func (ix *Index) DocFreq(field, term string) int {
	fi := ix.fields[field]
	if fi == nil {
		return 0
	}
	return fi.numPostings(term)
}

// IDF computes the classic Lucene inverse document frequency:
// 1 + ln(N / (df + 1)), over corpus-wide statistics when installed.
func (ix *Index) IDF(field, term string) float64 {
	df := ix.scoringDocFreq(field, term)
	return 1 + math.Log(float64(ix.scoringNumDocs())/float64(df+1))
}

// fieldNorm is Lucene's length normalization: 1/sqrt(tokens in field).
func (ix *Index) fieldNorm(field string, docID int) float64 {
	fi := ix.fields[field]
	if fi == nil {
		return 0
	}
	l := fi.lengthOf(docID)
	if l == 0 {
		return 0
	}
	return 1 / math.Sqrt(float64(l))
}

// termUpperBound returns an upper bound on the score any single document
// can earn from the (field, term) clause at the given query boost — the
// per-term cap MaxScore pruning compares against the top-k threshold.
// The bound evaluates the similarity at the term's best-case posting
// shape (max freq, min length, max boost, tracked in fieldIndex.caps
// since build time) under the same collection statistics real scoring
// uses, so it holds per shard even when corpus-wide statistics are
// installed. Similarities that do not implement UpperBoundSimilarity get
// +Inf, which disables pruning but keeps evaluation correct.
func (ix *Index) termUpperBound(field, term string, queryBoost float64) float64 {
	fi := ix.fields[field]
	if fi == nil {
		return 0
	}
	c, ok := fi.termCapOf(term)
	if !ok {
		return 0
	}
	ubs, ok := ix.sim.(UpperBoundSimilarity)
	if !ok {
		return math.Inf(1)
	}
	// A negative boost flips "evaluate at the best-case posting" into a
	// lower bound; no pruning rather than wrong pruning.
	if c.maxBoost < 0 || queryBoost < 0 {
		return math.Inf(1)
	}
	df := ix.scoringDocFreq(field, term)
	b := ubs.TermScoreBound(c.maxFreq, df, ix.scoringNumDocs(), c.minLen, ix.scoringAvgLen(field))
	return b * c.maxBoost * queryBoost * capSlack
}

// observe widens the cap to cover a posting with the given shape,
// reporting whether anything changed.
func (c *termCap) observe(freq, dlen int, boost float64) bool {
	changed := false
	if freq > c.maxFreq {
		c.maxFreq, changed = freq, true
	}
	if dlen < c.minLen {
		c.minLen, changed = dlen, true
	}
	if boost > c.maxBoost {
		c.maxBoost, changed = boost, true
	}
	return changed
}

// observeBlock keeps a term's per-block score-bound inputs current for the
// posting state just written. Blocks materialize only once a term outgrows
// a single block — a single-block term's only block bound is exactly its
// cap, so storing it again would double the metadata for the long tail of
// rare terms. On the first crossing the completed earlier block is
// backfilled from the postings. Like the cap, tracking is conservative: a
// document observed mid-growth (multi-valued field) only shrinks the
// recorded minLen, which loosens — never invalidates — the bound.
func (fi *fieldIndex) observeBlock(term string, pl []Posting, freq, dlen int, boost float64) {
	if len(pl) <= postingBlockSize {
		return
	}
	blks := fi.blocks[term]
	cur := (len(pl) - 1) / postingBlockSize
	for len(blks) < cur {
		s := len(blks) * postingBlockSize
		blks = append(blks, fi.exactCap(pl[s:s+postingBlockSize]))
	}
	if cur == len(blks) {
		blks = append(blks, termCap{maxFreq: freq, minLen: dlen, maxBoost: boost})
	} else {
		blks[cur].observe(freq, dlen, boost)
	}
	fi.blocks[term] = blks
}

// exactCap computes the exact score-bound inputs over a posting run — the
// load-time (and encode-time) counterpart of Add's incremental tracking,
// slightly tighter since the docLens it reads are final.
func (fi *fieldIndex) exactCap(ps []Posting) termCap {
	c := termCap{minLen: math.MaxInt}
	for i := range ps {
		p := &ps[i]
		if f := len(p.Positions); f > c.maxFreq {
			c.maxFreq = f
		}
		if l := fi.docLen[p.DocID]; l < c.minLen {
			c.minLen = l
		}
		if p.Boost > c.maxBoost {
			c.maxBoost = p.Boost
		}
	}
	return c
}

// rebuildCaps recomputes the per-term score-bound inputs from the posting
// lists — the codec's load-time equivalent of Add's incremental tracking.
func (fi *fieldIndex) rebuildCaps() {
	fi.caps = make(map[string]termCap, len(fi.postings))
	for t, pl := range fi.postings {
		fi.caps[t] = fi.exactCap(pl)
	}
}

// rebuildBlocks recomputes the per-block score-bound inputs for every
// multi-block term — the codec v1 load path, which has no block metadata
// on disk to read. Codec v2 snapshots carry the metadata instead.
func (fi *fieldIndex) rebuildBlocks() {
	fi.blocks = make(map[string][]termCap)
	for t, pl := range fi.postings {
		if len(pl) <= postingBlockSize {
			continue
		}
		blks := make([]termCap, 0, (len(pl)+postingBlockSize-1)/postingBlockSize)
		for s := 0; s < len(pl); s += postingBlockSize {
			e := s + postingBlockSize
			if e > len(pl) {
				e = len(pl)
			}
			blks = append(blks, fi.exactCap(pl[s:e]))
		}
		fi.blocks[t] = blks
	}
}
