package index

// MoreLikeThis builds a query from the most discriminative terms of an
// existing document — the "related events" feature of a search UI. Terms
// are ranked by TF-IDF within the given fields; the top maxTerms become a
// Should-disjunction over the same fields.
//
// It returns nil when the document has no usable terms.
func (ix *Index) MoreLikeThis(docID int, fields []FieldBoost, maxTerms int) Query {
	q := ix.LikeThisQuery(docID, fields, maxTerms)
	if q == nil {
		return nil
	}
	bq := q.(BooleanQuery)
	bq.MustNot = []Query{docIDQuery{docID}}
	return bq
}

// LikeThisQuery is MoreLikeThis without the source-document exclusion.
// Callers that fan the query out across index partitions (where another
// partition may reuse the same local docID) filter the source from the
// merged results themselves.
func (ix *Index) LikeThisQuery(docID int, fields []FieldBoost, maxTerms int) Query {
	d := ix.Doc(docID)
	if d == nil {
		return nil
	}
	if maxTerms <= 0 {
		maxTerms = 8
	}
	type scored struct {
		term  string
		score float64
	}
	// Select the maxTerms most discriminative terms with the same bounded
	// heap the search kernel uses — no full sort of the candidate set.
	top := bounded[scored]{k: maxTerms, worse: func(a, b scored) bool {
		if a.score != b.score {
			return a.score < b.score
		}
		return a.term > b.term
	}}
	seen := map[string]bool{}
	for _, fb := range fields {
		text := d.Get(fb.Field)
		if text == "" {
			continue
		}
		for _, term := range ix.analyzer.Analyze(text) {
			if seen[term] {
				continue
			}
			seen[term] = true
			df := ix.scoringDocFreq(fb.Field, term)
			if df <= 0 {
				continue
			}
			// Skip terms in more than a third of documents (but never below
			// a floor of 5, so tiny indices keep their vocabulary): such
			// terms carry no signal and would drag in everything.
			ceiling := ix.scoringNumDocs() / 3
			if ceiling < 5 {
				ceiling = 5
			}
			if df > ceiling {
				continue
			}
			top.push(scored{term: term, score: ix.IDF(fb.Field, term)})
		}
	}
	candidates := top.sorted()
	if len(candidates) == 0 {
		return nil
	}
	var should []Query
	for _, c := range candidates {
		for _, fb := range fields {
			should = append(should, TermQuery{Field: fb.Field, Term: c.term, Boost: fb.Boost})
		}
	}
	return BooleanQuery{Should: should, DisableCoord: true}
}

// docIDQuery matches exactly one document, used to exclude the source doc
// from its own related-results list.
type docIDQuery struct{ id int }

func (q docIDQuery) scores(ix *Index) map[int]float64 {
	if q.id < 0 || q.id >= ix.NumDocs() {
		return nil
	}
	return map[int]float64{q.id: 1}
}

func (q docIDQuery) newScorer(ix *Index) scorer {
	if q.id < 0 || q.id >= ix.NumDocs() {
		return emptyScorer{}
	}
	return &singleDocScorer{id: q.id, cur: -1}
}
