package index

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// openMappedPair encodes ix with a TOC and opens the same bytes both ways:
// through the heap decoder and through the mapped reader. Every equivalence
// test in this file compares the two against each other and the oracle.
func openMappedPair(tb testing.TB, ix *Index, metaFields ...string) (heap, mapped *Index, raw, toc []byte) {
	tb.Helper()
	var buf bytes.Buffer
	toc, err := ix.EncodeWithTOC(&buf, metaFields...)
	if err != nil {
		tb.Fatal(err)
	}
	raw = buf.Bytes()
	heap, err = Decode(bytes.NewReader(raw), StandardAnalyzer{})
	if err != nil {
		tb.Fatal(err)
	}
	mapped, err = OpenMapped(raw, toc, StandardAnalyzer{})
	if err != nil {
		tb.Fatal(err)
	}
	if !mapped.Mapped() || heap.Mapped() {
		tb.Fatal("storage-mode flags inverted")
	}
	return heap, mapped, raw, toc
}

// TestMappedEquivalenceMultiBlock is the mapped-path oracle: the same
// random multi-block corpora and structured queries as the Block-Max
// suite, with the index served straight from codec-v2 bytes. Mapped
// Search must reproduce heap Search and the exhaustive path bit-for-bit
// — same documents, byte-identical scores, identical tie order — under
// both similarities, so lazy block decode provably changes nothing about
// ranking.
func TestMappedEquivalenceMultiBlock(t *testing.T) {
	vocab := strings.Fields("goal foul save corner pass shot keeper header")
	fields := []string{"event", "narration"}
	rng := rand.New(rand.NewSource(20260808))
	for round := 0; round < 4; round++ {
		ix := buildMultiBlockIndex(t, rng, 900+rng.Intn(400), vocab, fields)
		if round%2 == 1 {
			ix.SetSimilarity(BM25{})
		}
		heap, mapped, _, _ := openMappedPair(t, ix)
		if round%2 == 1 {
			heap.SetSimilarity(BM25{})
			mapped.SetSimilarity(BM25{})
		}
		for qi := 0; qi < 30; qi++ {
			q := randomQuery(rng, vocab, fields, 2)
			limit := []int{0, 1, 2, 5, 10, 100}[rng.Intn(6)]
			want := ix.ExhaustiveSearch(q, limit)
			if got := mapped.ExhaustiveSearch(q, limit); !hitsEqual(got, want) {
				t.Fatalf("round %d query %d (%#v) limit %d mapped exhaustive:\ngot:  %v\nwant: %v",
					round, qi, q, limit, got, want)
			}
			if got := heap.Search(q, limit); !hitsEqual(got, want) {
				t.Fatalf("round %d query %d (%#v) limit %d heap decode:\ngot:  %v\nwant: %v",
					round, qi, q, limit, got, want)
			}
			if got := mapped.Search(q, limit); !hitsEqual(got, want) {
				t.Fatalf("round %d query %d (%#v) limit %d mapped DAAT:\ngot:  %v\nwant: %v",
					round, qi, q, limit, got, want)
			}
		}
	}
}

// TestMappedEquivalenceWithTombstones covers the read path the LSM engine
// exercises on a mapped base segment: documents tombstoned after open must
// vanish from results and statistics exactly as on a heap index.
func TestMappedEquivalenceWithTombstones(t *testing.T) {
	vocab := strings.Fields("goal foul save corner pass shot keeper header")
	fields := []string{"event", "narration"}
	rng := rand.New(rand.NewSource(7))
	ix := buildMultiBlockIndex(t, rng, 700, vocab, fields)
	heap, mapped, _, _ := openMappedPair(t, ix)
	for d := 0; d < ix.NumDocs(); d += 3 {
		if heap.Delete(d) != mapped.Delete(d) {
			t.Fatalf("Delete(%d) disagreed between heap and mapped", d)
		}
	}
	if heap.LiveDocs() != mapped.LiveDocs() {
		t.Fatalf("LiveDocs %d != %d", heap.LiveDocs(), mapped.LiveDocs())
	}
	if hs, ms := heap.LocalStats(), mapped.LocalStats(); !reflect.DeepEqual(hs, ms) {
		t.Fatalf("tombstone-aware LocalStats diverged:\nheap:   %+v\nmapped: %+v", hs, ms)
	}
	for qi := 0; qi < 20; qi++ {
		q := randomQuery(rng, vocab, fields, 2)
		limit := []int{0, 1, 5, 10, 100}[rng.Intn(5)]
		want := heap.Search(q, limit)
		if got := mapped.Search(q, limit); !hitsEqual(got, want) {
			t.Fatalf("query %d (%#v) limit %d with tombstones:\ngot:  %v\nwant: %v",
				qi, q, limit, got, want)
		}
		if got := mapped.ExhaustiveSearch(q, limit); !hitsEqual(got, want) {
			t.Fatalf("query %d (%#v) limit %d mapped exhaustive with tombstones:\ngot:  %v\nwant: %v",
				qi, q, limit, got, want)
		}
	}
}

// TestMappedLocalStatsClean pins the O(vocabulary) load-time contract: a
// freshly opened mapped index must export the same statistics as the heap
// decode of the same bytes, answered from the TOC alone.
func TestMappedLocalStatsClean(t *testing.T) {
	vocab := strings.Fields("goal foul save corner pass shot keeper header")
	ix := buildMultiBlockIndex(t, rand.New(rand.NewSource(11)), 500, vocab, []string{"event", "narration"})
	heap, mapped, _, _ := openMappedPair(t, ix)
	if hs, ms := heap.LocalStats(), mapped.LocalStats(); !reflect.DeepEqual(hs, ms) {
		t.Fatalf("clean LocalStats diverged:\nheap:   %+v\nmapped: %+v", hs, ms)
	}
	if hs, ms := heap.Stats(), mapped.Stats(); hs != ms {
		t.Fatalf("Stats diverged: heap %+v, mapped %+v", hs, ms)
	}
	if mapped.docs != nil {
		t.Fatal("statistics export materialized the stored region")
	}
}

// TestMappedDocMetaAndLazyStored: identity metadata recorded in the TOC is
// served without touching the stored region; anything else falls back to
// Doc(), which inflates it once and returns documents identical to the
// heap decode's.
func TestMappedDocMetaAndLazyStored(t *testing.T) {
	ix := New(StandardAnalyzer{})
	for d := 0; d < 10; d++ {
		doc := new(Document)
		doc.Add("narration", strings.Repeat("goal ", d+1))
		doc.Fields = append(doc.Fields,
			Field{Name: "_gid", Text: string(rune('a' + d))},
			Field{Name: "color", Text: []string{"red", "blue"}[d%2]})
		ix.Add(doc)
	}
	heap, mapped, _, _ := openMappedPair(t, ix, "_gid")

	q := TermQuery{Field: "narration", Term: "goal"}
	if got, want := mapped.Search(q, 5), heap.Search(q, 5); !hitsEqual(got, want) {
		t.Fatalf("search diverged: %v vs %v", got, want)
	}
	for d := 0; d < 10; d++ {
		if got, want := mapped.DocMeta(d, "_gid"), string(rune('a'+d)); got != want {
			t.Fatalf("DocMeta(%d, _gid) = %q, want %q", d, got, want)
		}
	}
	if mapped.DocMeta(-1, "_gid") != "" || mapped.DocMeta(10, "_gid") != "" {
		t.Fatal("out-of-range DocMeta must be empty")
	}
	// Search and TOC-backed metadata must not have decoded any stored
	// document; documents never inflate into ix.docs on a mapped index.
	for d := range mapped.mapped.docCache {
		if mapped.mapped.docCache[d].Load() != nil {
			t.Fatalf("doc %d decoded before any Doc access", d)
		}
	}
	if mapped.docs != nil {
		t.Fatal("stored region materialized into ix.docs on a mapped index")
	}
	// A non-TOC field falls back to the stored document.
	if got := mapped.DocMeta(3, "color"); got != "blue" || got != heap.DocMeta(3, "color") {
		t.Fatalf("fallback DocMeta = %q", got)
	}
	if mapped.mapped.docCache[3].Load() == nil {
		t.Fatal("fallback DocMeta did not decode (and cache) its document")
	}
	if mapped.docs != nil {
		t.Fatal("mapped Doc access must decode per document, not inflate ix.docs")
	}
	for d := 0; d < 10; d++ {
		if got, want := mapped.Doc(d), heap.Doc(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("Doc(%d) diverged:\nmapped: %+v\nheap:   %+v", d, got, want)
		}
	}
}

// TestMappedEncodeIsRawCopy: re-encoding a mapped index must be a byte
// copy of the mapped region (the merger and snapshot writer rely on this
// being cheap and exact), and the v1 downgrade path must still work by
// decoding first.
func TestMappedEncodeIsRawCopy(t *testing.T) {
	vocab := strings.Fields("goal foul save corner")
	ix := buildMultiBlockIndex(t, rand.New(rand.NewSource(3)), 400, vocab, []string{"event", "narration"})
	heap, mapped, raw, toc := openMappedPair(t, ix)

	var re bytes.Buffer
	if err := mapped.Encode(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), raw) {
		t.Fatal("Encode on a mapped index is not a byte copy of the mapped region")
	}
	var re2 bytes.Buffer
	toc2, err := mapped.EncodeWithTOC(&re2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re2.Bytes(), raw) || !bytes.Equal(toc2, toc) {
		t.Fatal("EncodeWithTOC on a mapped index must return the original payload and TOC")
	}

	var v1 bytes.Buffer
	if err := mapped.EncodeV1(&v1); err != nil {
		t.Fatal(err)
	}
	down, err := Decode(bytes.NewReader(v1.Bytes()), StandardAnalyzer{})
	if err != nil {
		t.Fatal(err)
	}
	q := TermQuery{Field: "event", Term: "goal"}
	if got, want := down.Search(q, 10), heap.Search(q, 10); !hitsEqual(got, want) {
		t.Fatalf("v1 downgrade search diverged: %v vs %v", got, want)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Add on a mapped index must panic")
		}
	}()
	doc := new(Document)
	doc.Add("event", "goal")
	mapped.Add(doc)
}

// TestMappedMergeEquivalence: merging a mapped source must produce the
// same index a merge of its heap twin does — the compaction path the LSM
// merger takes when the base segment is mapped.
func TestMappedMergeEquivalence(t *testing.T) {
	vocab := strings.Fields("goal foul save corner pass shot")
	rng := rand.New(rand.NewSource(5))
	ix := buildMultiBlockIndex(t, rng, 400, vocab, []string{"event", "narration"})
	heap, mapped, _, _ := openMappedPair(t, ix)
	for d := 0; d < 400; d += 7 {
		heap.Delete(d)
		mapped.Delete(d)
	}
	fromHeap, remapsH := MergeIndexes([]*Index{heap}, nil)
	fromMapped, remapsM := MergeIndexes([]*Index{mapped}, nil)
	if !reflect.DeepEqual(remapsH, remapsM) {
		t.Fatal("merge remaps diverged")
	}
	if fromHeap.NumDocs() != fromMapped.NumDocs() {
		t.Fatalf("merged doc counts diverged: %d vs %d", fromHeap.NumDocs(), fromMapped.NumDocs())
	}
	for qi := 0; qi < 15; qi++ {
		q := randomQuery(rng, vocab, []string{"event", "narration"}, 2)
		want := fromHeap.Search(q, 10)
		if got := fromMapped.Search(q, 10); !hitsEqual(got, want) {
			t.Fatalf("merged search diverged on %#v:\ngot:  %v\nwant: %v", q, got, want)
		}
	}
	if !reflect.DeepEqual(fromHeap.LocalStats(), fromMapped.LocalStats()) {
		t.Fatal("merged statistics diverged")
	}
}

// TestOpenMappedRejects covers the structured error surface: v1 payloads
// and absent TOCs signal ErrNoTOC (fall back to the heap decoder), while
// mismatched or trailing TOC bytes are hard errors.
func TestOpenMappedRejects(t *testing.T) {
	ix := New(StandardAnalyzer{})
	doc := new(Document)
	doc.Add("f", "goal goal save")
	ix.Add(doc)
	var buf bytes.Buffer
	toc, err := ix.EncodeWithTOC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := OpenMapped(raw, nil, nil); err != ErrNoTOC {
		t.Fatalf("empty TOC: got %v, want ErrNoTOC", err)
	}
	var v1 bytes.Buffer
	if err := ix.EncodeV1(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(v1.Bytes(), toc, nil); err != ErrNoTOC {
		t.Fatalf("v1 payload: got %v, want ErrNoTOC", err)
	}
	if _, err := OpenMapped(raw[:len(raw)-1], toc, nil); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := OpenMapped(raw, toc[:len(toc)-1], nil); err == nil {
		t.Fatal("truncated TOC accepted")
	}
	if _, err := OpenMapped(raw, append(append([]byte(nil), toc...), 0), nil); err == nil {
		t.Fatal("trailing TOC bytes accepted")
	}
}

// TestMappedCorruptionFailsClosed flips every byte of the posting region
// in turn (coarsely) and asserts the worst outcome is an open error or
// wrong results — never a panic, never an out-of-bounds read. The shard
// envelope's checksums make these images unreachable in practice; this
// pins the defence-in-depth contract.
func TestMappedCorruptionFailsClosed(t *testing.T) {
	vocab := strings.Fields("goal foul save corner")
	ix := buildMultiBlockIndex(t, rand.New(rand.NewSource(13)), 300, vocab, []string{"event"})
	var buf bytes.Buffer
	toc, err := ix.EncodeWithTOC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	probe := func(raw, toc []byte) {
		m, err := OpenMapped(raw, toc, StandardAnalyzer{})
		if err != nil {
			return
		}
		for _, q := range []Query{
			TermQuery{Field: "event", Term: "goal"},
			PhraseQuery{Field: "event", Terms: []string{"goal", "save"}},
			BooleanQuery{Must: []Query{TermQuery{Field: "event", Term: "foul"}}},
		} {
			m.Search(q, 10)
			m.ExhaustiveSearch(q, 10)
		}
		m.LocalStats()
		m.Doc(0)
		m.Stats()
	}
	for off := 0; off < len(raw); off += 13 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x41
		probe(mut, toc)
	}
	for off := 0; off < len(toc); off += 7 {
		mut := append([]byte(nil), toc...)
		mut[off] ^= 0x41
		probe(raw, mut)
	}
}

// FuzzOpenMapped hammers the mapped reader with arbitrary payload/TOC
// pairs: whatever the bytes, opening and then searching must not panic.
func FuzzOpenMapped(f *testing.F) {
	ix := New(StandardAnalyzer{})
	for d := 0; d < 200; d++ {
		doc := new(Document)
		doc.Add("f", strings.Repeat("goal ", d%5+1)+"save")
		doc.Fields = append(doc.Fields, Field{Name: "_gid", Text: "g"})
		ix.Add(doc)
	}
	var buf bytes.Buffer
	toc, err := ix.EncodeWithTOC(&buf, "_gid")
	if err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw, toc)
	f.Add(raw[:len(raw)/2], toc)
	f.Add(raw, toc[:len(toc)/2])
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped, toc)
	f.Add([]byte("SIDX"), []byte("STOC"))

	f.Fuzz(func(t *testing.T, raw, toc []byte) {
		m, err := OpenMapped(raw, toc, StandardAnalyzer{})
		if err != nil {
			return
		}
		for _, q := range []Query{
			TermQuery{Field: "f", Term: "goal"},
			PhraseQuery{Field: "f", Terms: []string{"goal", "save"}},
			FuzzyQuery{Field: "f", Term: "goap"},
		} {
			m.Search(q, 5)
			m.ExhaustiveSearch(q, 5)
		}
		m.LocalStats()
		m.DocMeta(0, "_gid")
		m.Doc(0)
	})
}
