package index

import "strings"

// Highlighter produces query-focused snippets from stored field text, the
// usual search-results affordance on top of the retrieval core. Matching
// is analyzer-aware: the query "goals" highlights "goal" because both stem
// the same way.
type Highlighter struct {
	// Analyzer must be the index's analyzer. nil uses StandardAnalyzer.
	Analyzer Analyzer
	// Pre and Post wrap each matched token; defaults are "«" and "»".
	Pre, Post string
	// MaxTokens bounds the snippet window (default 24 tokens).
	MaxTokens int
}

// Snippet returns the best window of the text for the query, with matched
// tokens wrapped. With no match it returns the head of the text.
func (h Highlighter) Snippet(text, query string) string {
	a := h.Analyzer
	if a == nil {
		a = StandardAnalyzer{}
	}
	pre, post := h.Pre, h.Post
	if pre == "" && post == "" {
		pre, post = "«", "»"
	}
	window := h.MaxTokens
	if window <= 0 {
		window = 24
	}

	queryTerms := map[string]bool{}
	for _, t := range a.Analyze(query) {
		queryTerms[t] = true
	}

	toks := tokenizeOffsets(text)
	if len(toks) == 0 {
		return text
	}
	matched := make([]bool, len(toks))
	for i, tok := range toks {
		for _, t := range a.Analyze(tok.text) {
			if queryTerms[t] {
				matched[i] = true
			}
		}
	}

	// Best window: the window-sized token span with the most matches,
	// found with a sliding window.
	best, bestCount := 0, 0
	count := 0
	for i := 0; i < len(toks); i++ {
		if matched[i] {
			count++
		}
		if i >= window && matched[i-window] {
			count--
		}
		if count > bestCount {
			bestCount = count
			best = max(0, i-window+1)
		}
	}
	end := min(len(toks), best+window)

	var b strings.Builder
	if best > 0 {
		b.WriteString("… ")
	}
	// Emit original text between token boundaries so punctuation survives.
	cursor := toks[best].start
	for i := best; i < end; i++ {
		b.WriteString(text[cursor:toks[i].start])
		if matched[i] {
			b.WriteString(pre)
			b.WriteString(text[toks[i].start:toks[i].end])
			b.WriteString(post)
		} else {
			b.WriteString(text[toks[i].start:toks[i].end])
		}
		cursor = toks[i].end
	}
	if end < len(toks) {
		b.WriteString(" …")
	} else {
		b.WriteString(text[cursor:])
	}
	return b.String()
}

type offsetToken struct {
	text       string
	start, end int
}

// tokenizeOffsets is Tokenize with byte offsets preserved.
func tokenizeOffsets(text string) []offsetToken {
	var out []offsetToken
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		raw := text[start:end]
		trimmed := strings.Trim(raw, "'")
		if trimmed != "" {
			lead := strings.Index(raw, trimmed)
			out = append(out, offsetToken{text: trimmed, start: start + lead, end: start + lead + len(trimmed)})
		}
		start = -1
	}
	for i, r := range text {
		if isTokenRune(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return out
}

func isTokenRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '\'':
		return true
	case r > 127: // non-ASCII letters pass through like Tokenize
		return true
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
