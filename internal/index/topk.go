package index

import "sync"

// Bounded top-k selection for the scoring kernel. A query that wants the
// best k of potentially every document must not sort the full hit set
// (the seed-era path); it keeps a k-element min-heap whose root is the
// weakest kept item, so each candidate costs O(1) when it loses and
// O(log k) when it wins. The heap is typed — no reflection-based
// sort.Slice on the hot path — and doubles as the final sorter: draining
// it heap-sorts the survivors best-first in place.

// bounded is a typed bounded min-heap keeping the k best items pushed so
// far under the given order; k <= 0 keeps everything. worse(a, b) reports
// that a ranks strictly below b, i.e. a would be evicted before b. The
// root is always the worst kept item.
type bounded[T any] struct {
	k     int
	worse func(a, b T) bool
	items []T
}

// push offers an item, evicting the current worst when full and beaten.
func (b *bounded[T]) push(x T) {
	if b.k <= 0 || len(b.items) < b.k {
		b.items = append(b.items, x)
		b.siftUp(len(b.items) - 1)
		return
	}
	if b.worse(b.items[0], x) {
		b.items[0] = x
		b.siftDown(0, len(b.items))
	}
}

// full reports whether the heap holds k items (never true when unbounded).
func (b *bounded[T]) full() bool { return b.k > 0 && len(b.items) >= b.k }

// root returns the worst kept item. Only valid when non-empty.
func (b *bounded[T]) root() T { return b.items[0] }

// sorted heap-sorts the kept items best-first in place and returns the
// backing slice. The heap is consumed; push must not be called after.
func (b *bounded[T]) sorted() []T {
	for end := len(b.items) - 1; end > 0; end-- {
		b.items[0], b.items[end] = b.items[end], b.items[0]
		b.siftDown(0, end)
	}
	return b.items
}

func (b *bounded[T]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !b.worse(b.items[i], b.items[p]) {
			return
		}
		b.items[i], b.items[p] = b.items[p], b.items[i]
		i = p
	}
}

func (b *bounded[T]) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && b.worse(b.items[r], b.items[l]) {
			m = r
		}
		if !b.worse(b.items[m], b.items[i]) {
			return
		}
		b.items[i], b.items[m] = b.items[m], b.items[i]
		i = m
	}
}

// worseHit is the collector's eviction order — the exact inverse of the
// result order (score descending, docID ascending on ties): lower score
// first, higher docID first among equals.
func worseHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.DocID > b.DocID
}

// hitCollector accumulates search hits into the global result contract:
// the top limit hits by score descending, docID ascending on ties, and
// only hits scoring strictly above zero. Collectors are pooled; acquire
// with acquireCollector and release after copying results out.
type hitCollector struct {
	heap bounded[Hit]
}

var collectorPool = sync.Pool{
	New: func() any { return &hitCollector{heap: bounded[Hit]{worse: worseHit}} },
}

// acquireCollector returns a pooled collector for the given limit
// (limit <= 0 keeps every hit).
func acquireCollector(limit int) *hitCollector {
	c := collectorPool.Get().(*hitCollector)
	c.heap.k = limit
	c.heap.items = c.heap.items[:0]
	return c
}

// release returns the collector (and its scratch buffer) to the pool.
func (c *hitCollector) release() { collectorPool.Put(c) }

// threshold is the score a new hit must strictly beat to be kept: zero
// until the heap fills (matching the exhaustive path's score > 0 filter),
// then the weakest kept score. Equal scores lose because document-at-a-time
// evaluation visits docIDs in ascending order, so a later tie would rank
// below every kept hit anyway.
func (c *hitCollector) threshold() float64 {
	if c.heap.full() {
		return c.heap.root().Score
	}
	return 0
}

// collect offers one scoring document. Callers on an unordered feed (the
// exhaustive path) may offer ties freely: the heap's eviction order keeps
// the lower docID.
func (c *hitCollector) collect(docID int, score float64) {
	c.heap.push(Hit{DocID: docID, Score: score})
}

// results copies the ranked hits out (nil when nothing scored), leaving
// the scratch buffer to the pool.
func (c *hitCollector) results() []Hit {
	s := c.heap.sorted()
	if len(s) == 0 {
		return nil
	}
	out := make([]Hit, len(s))
	copy(out, s)
	return out
}
