package index

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the snapshot codec. Decode reads
// snapshot files whose durability we cannot guarantee (torn writes, bit
// rot), so the property under test is purely defensive: it must never
// panic and never allocate past what the input can back, and any input
// it accepts must round-trip through Encode without blowing up.
func FuzzDecode(f *testing.F) {
	// Seed 1: a small valid index so the fuzzer starts with the real
	// grammar rather than rediscovering the magic number.
	ix := New(StandardAnalyzer{})
	for _, text := range []string{
		"semantic indexing of soccer ontologies",
		"fuzzy inference over crisp instances",
	} {
		d := &Document{}
		d.Add("text", text)
		d.AddBoosted("title", "seed doc", 2)
		ix.Add(d)
	}
	var valid bytes.Buffer
	if err := ix.Encode(&valid); err != nil {
		f.Fatalf("encoding seed: %v", err)
	}
	f.Add(valid.Bytes())

	// Seed 2: truncated valid prefix — the torn-write shape.
	f.Add(valid.Bytes()[:valid.Len()/2])

	// Seed 3: valid header claiming 2^32-1 docs with no bytes behind
	// the claim — the allocation-bomb shape.
	bomb := []byte(codecMagic)
	bomb = binary.LittleEndian.AppendUint32(bomb, CodecVersionCurrent)
	bomb = binary.LittleEndian.AppendUint32(bomb, 0xFFFFFFFF)
	f.Add(bomb)

	// Seed 4: zero-filled tail after the header.
	zeros := append([]byte(codecMagic), make([]byte, 64)...)
	f.Add(zeros)

	// Seed 5: the same index in the legacy v1 layout, so the fuzzer
	// explores both decoder paths.
	var v1 bytes.Buffer
	if err := ix.EncodeV1(&v1); err != nil {
		f.Fatalf("encoding v1 seed: %v", err)
	}
	f.Add(v1.Bytes())

	// Seed 6: a string length prefix claiming 64 MiB with four bytes
	// behind it — the one-shot-allocation shape readString must survive.
	lying := []byte(codecMagic)
	lying = binary.LittleEndian.AppendUint32(lying, CodecVersionV1)
	lying = binary.LittleEndian.AppendUint32(lying, 1) // one doc
	lying = binary.LittleEndian.AppendUint32(lying, 1) // one field
	lying = binary.LittleEndian.AppendUint32(lying, 1<<26)
	lying = append(lying, "name"...)
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data), StandardAnalyzer{})
		if err != nil {
			return
		}
		// Accepted input must be structurally sound enough to encode.
		var buf bytes.Buffer
		if err := got.Encode(&buf); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		// Postings may only reference stored documents.
		for _, field := range got.FieldNames() {
			for _, term := range got.Terms(field) {
				for _, p := range got.Postings(field, term) {
					if p.DocID < 0 || p.DocID >= got.NumDocs() {
						t.Fatalf("field %q term %q: posting doc %d outside [0,%d)",
							field, term, p.DocID, got.NumDocs())
					}
				}
			}
		}
	})
}
