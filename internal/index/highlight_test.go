package index

import (
	"strings"
	"testing"
)

func TestSnippetHighlightsStemmedMatches(t *testing.T) {
	h := Highlighter{}
	got := h.Snippet("Eto'o scores! Barcelona take the lead with two quick goals.", "goal scoring")
	if !strings.Contains(got, "«scores»") {
		t.Errorf("missing stemmed highlight for scores: %q", got)
	}
	if !strings.Contains(got, "«goals»") {
		t.Errorf("missing stemmed highlight for goals: %q", got)
	}
	if strings.Contains(got, "«Barcelona»") {
		t.Errorf("highlighted non-query token: %q", got)
	}
}

func TestSnippetWindowSelection(t *testing.T) {
	long := strings.Repeat("filler words here and there again ", 20) +
		"suddenly Messi scores a wonderful goal for Barcelona " +
		strings.Repeat("more filler text trailing on ", 20)
	h := Highlighter{MaxTokens: 12}
	got := h.Snippet(long, "messi goal")
	if !strings.Contains(got, "«Messi»") || !strings.Contains(got, "«goal»") {
		t.Errorf("window missed the match region: %q", got)
	}
	if !strings.HasPrefix(got, "… ") || !strings.HasSuffix(got, " …") {
		t.Errorf("window ellipses missing: %q", got)
	}
	if len(got) > 200 {
		t.Errorf("snippet too long (%d bytes)", len(got))
	}
}

func TestSnippetNoMatchReturnsHead(t *testing.T) {
	h := Highlighter{MaxTokens: 5}
	got := h.Snippet("one two three four five six seven eight", "nonexistent")
	if strings.Contains(got, "«") {
		t.Errorf("highlighted nothing-match: %q", got)
	}
	if !strings.HasPrefix(got, "one two three") {
		t.Errorf("head window expected: %q", got)
	}
}

func TestSnippetCustomMarkers(t *testing.T) {
	h := Highlighter{Pre: "<b>", Post: "</b>"}
	got := h.Snippet("a goal was scored", "goal")
	if !strings.Contains(got, "<b>goal</b>") {
		t.Errorf("custom markers not applied: %q", got)
	}
}

func TestSnippetEmptyAndPunctuation(t *testing.T) {
	h := Highlighter{}
	if got := h.Snippet("", "goal"); got != "" {
		t.Errorf("empty text snippet = %q", got)
	}
	if got := h.Snippet("!!!", "goal"); got != "!!!" {
		t.Errorf("punctuation-only snippet = %q", got)
	}
	// Apostrophe names keep their punctuation when highlighted.
	got := h.Snippet("Eto'o scores!", "eto'o")
	if !strings.Contains(got, "«Eto'o»") {
		t.Errorf("apostrophe name: %q", got)
	}
}

func TestTokenizeOffsetsAgreesWithTokenize(t *testing.T) {
	texts := []string{
		"Eto'o scores! Barcelona take the lead",
		"  spaced   out  ",
		"(1 - 0) running score prefix",
		"'''",
	}
	for _, text := range texts {
		plain := Tokenize(text)
		offs := tokenizeOffsets(text)
		if len(plain) != len(offs) {
			t.Errorf("token counts differ for %q: %d vs %d", text, len(plain), len(offs))
			continue
		}
		for i := range plain {
			if plain[i] != offs[i].text {
				t.Errorf("token %d differs: %q vs %q", i, plain[i], offs[i].text)
			}
			if text[offs[i].start:offs[i].end] != offs[i].text {
				t.Errorf("offsets wrong for %q", offs[i].text)
			}
		}
	}
}
