package index

// Corpus-wide statistics for globally-consistent ranking across index
// partitions. A single index scores terms against its own document
// frequencies and lengths; a sharded deployment must not — each shard sees
// only its slice of the corpus, and per-shard IDF would make the same
// document score differently depending on which shard it landed in,
// breaking the merged ranking. The sharded engine therefore exchanges
// statistics after build: every shard exports LocalStats, the engine merges
// them with Merge, and SetCorpusStats installs the merged view so that
// every Similarity computation (TF-IDF, BM25, fuzzy, phrase IDF sums,
// more-like-this term selection) uses corpus-wide df, doc counts and
// average field lengths. With identical inputs the per-shard scores are
// bit-identical to the single-index scores, so a scatter-gather merge
// reproduces the monolithic ranking exactly.

// FieldTerm names one (field, analyzed term) pair — the unit of a query's
// statistics footprint (see semindex.QueryFootprint and the shard
// engine's scoped cache validation).
type FieldTerm struct {
	Field string
	Term  string
}

// FieldStats aggregates one field's collection statistics.
type FieldStats struct {
	// Docs is the number of documents carrying the field.
	Docs int
	// SumLen is the total token count of the field across those documents.
	SumLen int
	// DocFreq maps each term to the number of documents containing it.
	DocFreq map[string]int
}

// AvgLen is the mean field length across documents carrying the field.
func (fs *FieldStats) AvgLen() float64 {
	if fs == nil || fs.Docs == 0 {
		return 0
	}
	return float64(fs.SumLen) / float64(fs.Docs)
}

// CorpusStats carries collection-wide statistics, either exported from a
// single index (LocalStats) or merged across partitions (Merge).
type CorpusStats struct {
	// Docs is the total document count.
	Docs int
	// Fields maps field name to its aggregated statistics.
	Fields map[string]*FieldStats
}

// NewCorpusStats returns empty statistics ready for merging.
func NewCorpusStats() *CorpusStats {
	return &CorpusStats{Fields: map[string]*FieldStats{}}
}

// DocFreq returns the corpus-wide document frequency of a term in a field.
func (cs *CorpusStats) DocFreq(field, term string) int {
	fs := cs.Fields[field]
	if fs == nil {
		return 0
	}
	return fs.DocFreq[term]
}

// AvgLen returns the corpus-wide average length of a field.
func (cs *CorpusStats) AvgLen(field string) float64 {
	return cs.Fields[field].AvgLen()
}

// Merge folds another partition's statistics into cs. Partitions must be
// disjoint document sets for the result to be meaningful.
func (cs *CorpusStats) Merge(o *CorpusStats) {
	if o == nil {
		return
	}
	cs.Docs += o.Docs
	for name, ofs := range o.Fields {
		fs := cs.Fields[name]
		if fs == nil {
			fs = &FieldStats{DocFreq: map[string]int{}}
			cs.Fields[name] = fs
		}
		fs.Docs += ofs.Docs
		fs.SumLen += ofs.SumLen
		for t, df := range ofs.DocFreq {
			fs.DocFreq[t] += df
		}
	}
}

// Remove subtracts one partition's (or one document's) statistics from
// cs — the tombstone-time inverse of Merge. All counters are integers, so
// any interleaving of Merge and Remove calls lands on exactly the state a
// from-scratch recompute over the surviving documents would produce:
// entries that reach zero are deleted, matching LocalStats, which never
// emits zero-df terms or fields carried only by dead documents.
func (cs *CorpusStats) Remove(o *CorpusStats) {
	if o == nil {
		return
	}
	cs.Docs -= o.Docs
	for name, ofs := range o.Fields {
		fs := cs.Fields[name]
		if fs == nil {
			continue
		}
		fs.Docs -= ofs.Docs
		fs.SumLen -= ofs.SumLen
		for t, df := range ofs.DocFreq {
			if n := fs.DocFreq[t] - df; n > 0 {
				fs.DocFreq[t] = n
			} else {
				delete(fs.DocFreq, t)
			}
		}
		if fs.Docs <= 0 {
			delete(cs.Fields, name)
		}
	}
}

// LocalStats exports the index's own statistics — one partition's
// contribution to the corpus-wide exchange. Tombstoned documents are
// excluded: the result equals what a from-scratch index over only the
// live documents would export.
func (ix *Index) LocalStats() *CorpusStats {
	if ix.numDeleted == 0 {
		// Clean path: per-term document frequencies are the posting counts,
		// which a mapped index answers from its TOC — no block decoded, so
		// the load-time stats exchange stays O(vocabulary), not O(postings).
		cs := &CorpusStats{Docs: ix.docCount(), Fields: make(map[string]*FieldStats, len(ix.fields))}
		for name, fi := range ix.fields {
			fs := &FieldStats{
				SumLen:  fi.sumLen,
				DocFreq: make(map[string]int, fi.numTerms()),
			}
			if fi.m != nil {
				fs.Docs = fi.m.docCount
				for t, mt := range fi.m.terms {
					fs.DocFreq[t] = mt.n
				}
			} else {
				fs.Docs = len(fi.docLen)
				for t, pl := range fi.postings {
					fs.DocFreq[t] = len(pl)
				}
			}
			cs.Fields[name] = fs
		}
		return cs
	}
	cs := &CorpusStats{Docs: ix.LiveDocs(), Fields: make(map[string]*FieldStats, len(ix.fields))}
	for name, fi := range ix.fields {
		fs := &FieldStats{DocFreq: map[string]int{}}
		if fi.m != nil {
			for id := 0; id < len(fi.m.docLen); id++ {
				if !fi.m.hasEntry(id) || ix.deleted[id] {
					continue
				}
				fs.Docs++
				fs.SumLen += int(fi.m.docLen[id])
			}
		} else {
			for id, l := range fi.docLen {
				if ix.deleted[id] {
					continue
				}
				fs.Docs++
				fs.SumLen += l
			}
		}
		if fs.Docs == 0 {
			continue // the field survives only on tombstoned documents
		}
		if fi.m != nil {
			// Tombstone-aware export must count live postings per term; on a
			// mapped field that means decoding each term's docID chains once.
			// This path only runs when stats are recomputed over an index
			// with pending tombstones — not at load, where indexes are clean.
			for t, mt := range fi.m.terms {
				r := newBlockReader(fi.m, mt, false)
				df := 0
				for b := 0; b < mt.numBlocks(); b++ {
					if !r.load(b) {
						break
					}
					for _, d := range r.docs {
						if !ix.deleted[d] {
							df++
						}
					}
				}
				if df > 0 {
					fs.DocFreq[t] = df
				}
			}
			cs.Fields[name] = fs
			continue
		}
		for t, pl := range fi.postings {
			df := 0
			for i := range pl {
				if !ix.deleted[pl[i].DocID] {
					df++
				}
			}
			if df > 0 {
				fs.DocFreq[t] = df
			}
		}
		cs.Fields[name] = fs
	}
	return cs
}

// DocStats computes one stored document's statistics contribution — what
// removing it must subtract from the corpus-wide view. It re-analyzes the
// stored field text with the index's own analyzer, so the result is
// exactly what Add contributed when the document was indexed.
func (ix *Index) DocStats(id int) *CorpusStats {
	d := ix.Doc(id)
	if d == nil {
		return nil
	}
	cs := NewCorpusStats()
	cs.Docs = 1
	for _, f := range d.Fields {
		if len(f.Name) > 0 && f.Name[0] == '_' {
			continue
		}
		fs := cs.Fields[f.Name]
		if fs == nil {
			fs = &FieldStats{Docs: 1, DocFreq: map[string]int{}}
			cs.Fields[f.Name] = fs
		}
		for _, t := range ix.analyzer.Analyze(f.Text) {
			fs.SumLen++
			fs.DocFreq[t] = 1 // df counts documents, not occurrences
		}
	}
	return cs
}

// SetCorpusStats installs corpus-wide statistics: all subsequent scoring
// uses them instead of the index's local counts. Passing nil reverts to
// local statistics. Like SetSimilarity it must not race with searches;
// the sharded engine serializes it behind its ingest lock.
func (ix *Index) SetCorpusStats(cs *CorpusStats) { ix.global = cs }

// CorpusStats returns the installed corpus-wide statistics (nil when the
// index scores against its local counts).
func (ix *Index) CorpusStats() *CorpusStats { return ix.global }

// scoringNumDocs is the document count every ranking formula sees.
func (ix *Index) scoringNumDocs() int {
	if ix.global != nil {
		return ix.global.Docs
	}
	return ix.docCount()
}

// scoringDocFreq is the document frequency every ranking formula sees.
func (ix *Index) scoringDocFreq(field, term string) int {
	if ix.global != nil {
		return ix.global.DocFreq(field, term)
	}
	return ix.DocFreq(field, term)
}

// scoringAvgLen is the average field length every ranking formula sees.
func (ix *Index) scoringAvgLen(field string) float64 {
	if ix.global != nil {
		return ix.global.AvgLen(field)
	}
	fi := ix.fields[field]
	if fi == nil {
		return 0
	}
	return fi.avgLen()
}
