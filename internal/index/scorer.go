package index

import (
	"math"
	"sort"
)

// Document-at-a-time (DAAT) evaluation. The seed-era kernel scored
// term-at-a-time: every clause materialized a map[int]float64 over all its
// matching documents and BooleanQuery merged the maps — allocation-heavy
// and oblivious to the caller's limit. This kernel walks the already
// docID-sorted posting lists in lockstep instead: a scorer is a cursor
// over one clause's matching documents, compound scorers align their
// children on the same docID, and the top-k collector's rising threshold
// feeds MaxScore pruning (Turtle & Flood) that stops evaluating documents
// which provably cannot enter the top k.
//
// The contract with the exhaustive path is strict: identical hit sets,
// byte-identical scores, identical tie order. Scores are therefore
// computed with exactly the same expressions, in exactly the same
// floating-point order (musts before shoulds, clause order within each),
// as the map-accumulator path in search.go.

// noMoreDocs is the docID sentinel every exhausted scorer reports.
const noMoreDocs = math.MaxInt

// capSlack inflates score upper bounds by a hair. The bounds are derived
// from monotonicity of TermScore in freq and fieldLen, which holds
// exactly over the reals; the slack keeps a last-ulp rounding inversion
// from ever producing a bound below an achievable score, so pruning can
// never drop a true top-k document.
const capSlack = 1 + 1e-9

// scorer is a cursor over one query clause's matching documents in
// ascending docID order. A fresh scorer is positioned before the first
// document (doc() == -1); next and advance move it forward only.
type scorer interface {
	// doc returns the current docID: -1 before iteration, noMoreDocs
	// after exhaustion.
	doc() int
	// next advances to the next matching document and returns its docID
	// (noMoreDocs when exhausted).
	next() int
	// advance moves to the first matching document with docID >= target
	// (staying put if already there) and returns its docID.
	advance(target int) int
	// score returns the current document's score. Only valid while
	// positioned on a document.
	score() float64
	// maxScore returns an upper bound on score() over every remaining
	// document (+Inf when no bound is available).
	maxScore() float64
}

// prunable is implemented by scorers that can exploit the collector's
// rising top-k threshold. Only the root scorer of a search receives
// thresholds: compound scorers must report exact sums when probed by a
// parent, so pruning is a root-only privilege.
type prunable interface {
	// setThreshold promises that only documents scoring strictly above th
	// will be collected; the scorer may skip any document it can prove at
	// or below the bar. Thresholds only rise.
	setThreshold(th float64)
}

// blockMaxScorer is implemented by scorers that can bound their score
// over a bounded docID window — the Block-Max WAND contract (Ding &
// Suel). Where maxScore bounds the whole remaining tail, maxScoreUpTo
// reads the per-block metadata the codec wrote at encode time, so a
// compound parent can prove "nothing in this window can win" and jump
// its children past the window boundary in one advance.
type blockMaxScorer interface {
	scorer
	// maxScoreUpTo returns an upper bound on score() for every matching
	// document in [target, boundary], together with that boundary (the
	// last docID the bound is known to cover; no document of this scorer
	// lies in (boundary, next block)). An exhausted scorer returns
	// (0, noMoreDocs). It is a shallow probe: the document cursor does
	// not move. Targets must not decrease across calls.
	maxScoreUpTo(target int) (bound float64, boundary int)
}

// ceilingTo is maxScoreUpTo with a graceful fallback: scorers without
// block metadata answer with their whole-tail bound and an unbounded
// window, which keeps compound bounds valid — just windowless.
func ceilingTo(s scorer, target int) (float64, int) {
	if bm, ok := s.(blockMaxScorer); ok {
		return bm.maxScoreUpTo(target)
	}
	if s.doc() == noMoreDocs {
		return 0, noMoreDocs
	}
	return s.maxScore(), noMoreDocs
}

// emptyScorer matches nothing: the scorer of an impossible clause.
type emptyScorer struct{}

func (emptyScorer) doc() int          { return noMoreDocs }
func (emptyScorer) next() int         { return noMoreDocs }
func (emptyScorer) advance(int) int   { return noMoreDocs }
func (emptyScorer) score() float64    { return 0 }
func (emptyScorer) maxScore() float64 { return 0 }

// termScorer walks one term's posting list, scoring with the index's
// similarity exactly like TermQuery.scores.
type termScorer struct {
	ix    *Index
	fi    *fieldIndex
	pl    []Posting
	df    int
	nDocs int
	avg   float64
	boost float64
	i     int
	cap   float64

	// Block-Max state. blocks is the term's per-block metadata (nil for
	// single-block terms, whose only block bound is cap); shallow is the
	// maxScoreUpTo probe position, always >= i and monotone because
	// targets only rise; th is the collector threshold (root-only, see
	// setThreshold); cachedBlock/cachedBound memoize the last block bound
	// evaluation — the similarity math runs once per block, not once per
	// probe.
	blocks      []termCap
	shallow     int
	th          float64
	cachedBlock int
	cachedBound float64
}

// newTermScorer builds the cursor for one analyzed term. The term must be
// in index form; queryBoost is the resolved (zero-defaulted) clause boost.
func newTermScorer(ix *Index, field, term string, queryBoost float64) scorer {
	fi := ix.fields[field]
	if fi == nil {
		return emptyScorer{}
	}
	if fi.m != nil {
		return newMappedTermScorer(ix, fi.m, field, term, queryBoost)
	}
	pl := fi.postings[term]
	if len(pl) == 0 {
		return emptyScorer{}
	}
	return &termScorer{
		ix: ix, fi: fi, pl: pl,
		df:          ix.scoringDocFreq(field, term),
		nDocs:       ix.scoringNumDocs(),
		avg:         ix.scoringAvgLen(field),
		boost:       queryBoost,
		i:           -1,
		cap:         ix.termUpperBound(field, term, queryBoost),
		blocks:      fi.blocks[term],
		cachedBlock: -1,
	}
}

func (s *termScorer) doc() int {
	if s.i < 0 {
		return -1
	}
	if s.i >= len(s.pl) {
		return noMoreDocs
	}
	return s.pl[s.i].DocID
}

func (s *termScorer) next() int {
	s.i++
	if s.th > 0 {
		s.skipBeatenBlocks()
	}
	return s.doc()
}

// setThreshold implements prunable. As the root scorer of a plain term
// query the cursor hops whole blocks whose bound cannot beat the
// collector threshold; children never receive thresholds (a parent needs
// every hit to sum exact clause scores), so th stays 0 there and next()
// surfaces every posting.
func (s *termScorer) setThreshold(th float64) { s.th = th }

// skipBeatenBlocks moves the cursor forward over whole blocks proven
// unable to produce a score above th. Documents skipped here score at or
// below the collector threshold and would never be collected, so the
// pruned ranking stays byte-identical to the exhaustive one.
func (s *termScorer) skipBeatenBlocks() {
	n := len(s.pl)
	for s.i < n {
		if s.blocks == nil {
			if s.cap <= s.th {
				s.i = n
			}
			return
		}
		b := s.i / postingBlockSize
		if s.blockBound(b) > s.th {
			return
		}
		s.i = (b + 1) * postingBlockSize
	}
}

// blockBound is the per-block analogue of Index.termUpperBound: the
// similarity evaluated at the block's best-case posting shape. +Inf
// (never prune) when the similarity cannot provide bounds or a negative
// boost flips the best case into a worst case.
func (s *termScorer) blockBound(b int) float64 {
	if b == s.cachedBlock {
		return s.cachedBound
	}
	bound := math.Inf(1)
	blk := s.blocks[b]
	if ubs, ok := s.ix.sim.(UpperBoundSimilarity); ok && blk.maxBoost >= 0 && s.boost >= 0 {
		bound = ubs.TermScoreBound(blk.maxFreq, s.df, s.nDocs, blk.minLen, s.avg) *
			blk.maxBoost * s.boost * capSlack
	}
	s.cachedBlock, s.cachedBound = b, bound
	return bound
}

// maxScoreUpTo implements blockMaxScorer over the codec's per-block
// metadata: the bound for the window [target, boundary] is the bound of
// the single block holding every posting in that window.
func (s *termScorer) maxScoreUpTo(target int) (float64, int) {
	n := len(s.pl)
	j := s.shallow
	if j < s.i {
		j = s.i
	}
	if j < 0 {
		j = 0
	}
	if j < n && s.pl[j].DocID < target {
		// Same probe shape as advance: short linear scan, then binary
		// search for real jumps.
		for k := 0; k < 4 && j < n && s.pl[j].DocID < target; k++ {
			j++
		}
		if j < n && s.pl[j].DocID < target {
			j += sort.Search(n-j, func(k int) bool { return s.pl[j+k].DocID >= target })
		}
	}
	s.shallow = j
	if j >= n {
		return 0, noMoreDocs
	}
	if s.blocks == nil {
		return s.cap, s.pl[n-1].DocID
	}
	b := j / postingBlockSize
	e := (b + 1) * postingBlockSize
	if e > n {
		e = n
	}
	return s.blockBound(b), s.pl[e-1].DocID
}

func (s *termScorer) advance(target int) int {
	if s.i >= 0 && s.i < len(s.pl) && s.pl[s.i].DocID >= target {
		return s.pl[s.i].DocID
	}
	base := s.i + 1
	if base < 0 {
		base = 0
	}
	// A short linear probe catches the common advance-by-little case;
	// binary search handles real jumps.
	n := len(s.pl)
	for k := 0; k < 4 && base < n; k++ {
		if s.pl[base].DocID >= target {
			s.i = base
			return s.pl[base].DocID
		}
		base++
	}
	s.i = base + sort.Search(n-base, func(k int) bool { return s.pl[base+k].DocID >= target })
	return s.doc()
}

func (s *termScorer) score() float64 {
	p := &s.pl[s.i]
	base := s.ix.sim.TermScore(p.Freq(), s.df, s.nDocs, s.fi.docLen[p.DocID], s.avg)
	return base * p.Boost * s.boost
}

func (s *termScorer) maxScore() float64 { return s.cap }

// phraseScorer walks the first term's posting list and verifies the full
// phrase positionally per document, scoring exactly like
// PhraseQuery.scores.
type phraseScorer struct {
	ix     *Index
	field  string
	terms  []string
	first  []Posting
	idfSum float64
	boost  float64
	i      int
	freq   int
	cap    float64

	// Block-Max state over the first term's posting list (the candidate
	// generator): its per-block metadata, the whole-phrase freq/length
	// extremes the cap was derived from (kept so maxScoreUpTo can tighten
	// them per block), and the shallow probe position.
	blocks     []termCap
	minMaxFreq int
	maxMinLen  int
	shallow    int
}

// newPhraseScorer builds the cursor for already-analyzed phrase terms.
func newPhraseScorer(ix *Index, field string, terms []string, boost float64) scorer {
	fi := ix.fields[field]
	if fi == nil {
		return emptyScorer{}
	}
	if fi.m != nil {
		return newMappedPhraseScorer(ix, fi.m, field, terms, boost)
	}
	// Any term absent from the field makes the phrase unmatchable.
	for _, t := range terms {
		if len(fi.postings[t]) == 0 {
			return emptyScorer{}
		}
	}
	idfSum := 0.0
	for _, t := range terms {
		idfSum += ix.IDF(field, t)
	}
	s := &phraseScorer{
		ix: ix, field: field, terms: terms,
		first:  fi.postings[terms[0]],
		idfSum: idfSum, boost: boost, i: -1,
		blocks: fi.blocks[terms[0]],
	}
	// Bound: phrase freq cannot exceed any member term's max freq, a
	// matching doc is at least as long as every member term's shortest
	// doc, and the scored boost is the first term's posting boost.
	s.minMaxFreq, s.maxMinLen = math.MaxInt, 1
	for _, t := range terms {
		c := fi.caps[t]
		if c.maxFreq < s.minMaxFreq {
			s.minMaxFreq = c.maxFreq
		}
		if c.minLen > s.maxMinLen {
			s.maxMinLen = c.minLen
		}
	}
	if maxBoost := fi.caps[terms[0]].maxBoost; maxBoost < 0 || boost < 0 {
		// Negative boosts turn the best-case evaluation into a lower bound;
		// disable pruning for this clause instead.
		s.cap = math.Inf(1)
	} else {
		s.cap = math.Sqrt(float64(s.minMaxFreq)) * idfSum * maxBoost /
			math.Sqrt(float64(s.maxMinLen)) * boost * capSlack
	}
	return s
}

// maxScoreUpTo implements blockMaxScorer. A phrase match needs a first-
// term posting, so the window is the first term's current block and the
// whole-phrase bound tightens with that block's metadata: block maxFreq
// caps the phrase frequency and block minLen floors the matching
// document's length.
func (s *phraseScorer) maxScoreUpTo(target int) (float64, int) {
	n := len(s.first)
	j := s.shallow
	if j < s.i {
		j = s.i
	}
	if j < 0 {
		j = 0
	}
	if j < n && s.first[j].DocID < target {
		for k := 0; k < 4 && j < n && s.first[j].DocID < target; k++ {
			j++
		}
		if j < n && s.first[j].DocID < target {
			j += sort.Search(n-j, func(k int) bool { return s.first[j+k].DocID >= target })
		}
	}
	s.shallow = j
	if j >= n {
		return 0, noMoreDocs
	}
	if s.blocks == nil {
		return s.cap, s.first[n-1].DocID
	}
	b := j / postingBlockSize
	e := (b + 1) * postingBlockSize
	if e > n {
		e = n
	}
	boundary := s.first[e-1].DocID
	blk := s.blocks[b]
	if blk.maxBoost < 0 || s.boost < 0 {
		// cap is the negative-boost-safe whole-tail bound (+Inf there).
		return s.cap, boundary
	}
	mf := s.minMaxFreq
	if blk.maxFreq < mf {
		mf = blk.maxFreq
	}
	ml := s.maxMinLen
	if blk.minLen > ml {
		ml = blk.minLen
	}
	bound := math.Sqrt(float64(mf)) * s.idfSum * blk.maxBoost /
		math.Sqrt(float64(ml)) * s.boost * capSlack
	return bound, boundary
}

func (s *phraseScorer) doc() int {
	if s.i < 0 {
		return -1
	}
	if s.i >= len(s.first) {
		return noMoreDocs
	}
	return s.first[s.i].DocID
}

func (s *phraseScorer) next() int {
	for s.i++; s.i < len(s.first); s.i++ {
		if s.computeFreq() {
			return s.first[s.i].DocID
		}
	}
	return noMoreDocs
}

func (s *phraseScorer) advance(target int) int {
	if s.i >= 0 && s.i < len(s.first) && s.first[s.i].DocID >= target {
		return s.first[s.i].DocID
	}
	base := s.i + 1
	if base < 0 {
		base = 0
	}
	// Position just before the first candidate >= target; next() verifies
	// the phrase positionally from there.
	s.i = base + sort.Search(len(s.first)-base, func(k int) bool {
		return s.first[base+k].DocID >= target
	}) - 1
	return s.next()
}

// computeFreq counts phrase occurrences at the current first-term posting.
func (s *phraseScorer) computeFreq() bool {
	p0 := &s.first[s.i]
	freq := 0
	for _, start := range p0.Positions {
		if phraseAt(s.ix, s.field, s.terms, p0.DocID, start) {
			freq++
		}
	}
	s.freq = freq
	return freq > 0
}

func (s *phraseScorer) score() float64 {
	p0 := &s.first[s.i]
	tf := math.Sqrt(float64(s.freq))
	return tf * s.idfSum * p0.Boost * s.ix.fieldNorm(s.field, p0.DocID) * s.boost
}

func (s *phraseScorer) maxScore() float64 { return s.cap }

// allScorer matches every document at constant score 1, mirroring
// MatchAllQuery.scores.
type allScorer struct {
	n   int
	cur int
}

func (s *allScorer) doc() int { return s.cur }

func (s *allScorer) next() int {
	if s.cur >= s.n-1 {
		s.cur = noMoreDocs
	} else {
		s.cur++
	}
	return s.cur
}

func (s *allScorer) advance(target int) int {
	if s.cur >= target {
		return s.cur
	}
	if target >= s.n {
		s.cur = noMoreDocs
	} else {
		s.cur = target
	}
	return s.cur
}

func (s *allScorer) score() float64    { return 1 }
func (s *allScorer) maxScore() float64 { return 1 }

// singleDocScorer matches exactly one document at score 1 (docIDQuery).
type singleDocScorer struct {
	id  int
	cur int
}

func (s *singleDocScorer) doc() int { return s.cur }

func (s *singleDocScorer) next() int { return s.advance(s.cur + 1) }

func (s *singleDocScorer) advance(target int) int {
	switch {
	case s.cur >= target:
	case target <= s.id:
		s.cur = s.id
	default:
		s.cur = noMoreDocs
	}
	return s.cur
}

func (s *singleDocScorer) score() float64    { return 1 }
func (s *singleDocScorer) maxScore() float64 { return 1 }

// maxScorer takes the per-document maximum over weighted sub-scorers —
// FuzzyQuery's semantics, where a document matching several expansions of
// the query term keeps only its best one. The weight multiplies outside
// the sub-score, reproducing the exhaustive path's expression order.
type maxScorer struct {
	subs     []scorer
	weights  []float64
	cur      int
	curScore float64
	cap      float64
}

func newMaxScorer(subs []scorer, weights []float64) scorer {
	if len(subs) == 0 {
		return emptyScorer{}
	}
	m := &maxScorer{subs: subs, weights: weights, cur: -1}
	for i, sub := range subs {
		if c := sub.maxScore() * weights[i]; c > m.cap {
			m.cap = c
		}
	}
	return m
}

func (m *maxScorer) doc() int { return m.cur }

func (m *maxScorer) next() int { return m.seek(m.cur + 1) }

func (m *maxScorer) advance(target int) int {
	if m.cur >= target {
		return m.cur
	}
	return m.seek(target)
}

func (m *maxScorer) seek(target int) int {
	d := noMoreDocs
	for _, sub := range m.subs {
		sd := sub.doc()
		if sd < target {
			sd = sub.advance(target)
		}
		if sd < d {
			d = sd
		}
	}
	m.cur = d
	if d == noMoreDocs {
		return d
	}
	best := 0.0
	for i, sub := range m.subs {
		if sub.doc() == d {
			if s := sub.score() * m.weights[i]; s > best {
				best = s
			}
		}
	}
	m.curScore = best
	return d
}

func (m *maxScorer) score() float64    { return m.curScore }
func (m *maxScorer) maxScore() float64 { return m.cap }

// maxScoreUpTo implements blockMaxScorer: the best weighted sub-bound
// over the window, the window ending where the first sub-scorer's block
// does (the mirror of the cap computation in newMaxScorer).
func (m *maxScorer) maxScoreUpTo(target int) (float64, int) {
	bound := 0.0
	boundary := noMoreDocs
	for i, sub := range m.subs {
		sb, sboundary := ceilingTo(sub, target)
		if c := sb * m.weights[i]; c > bound {
			bound = c
		}
		if sboundary < boundary {
			boundary = sboundary
		}
	}
	return bound, boundary
}

// booleanScorer evaluates BooleanQuery document-at-a-time. With Must
// clauses it leapfrogs their cursors to common documents; without, it is
// a disjunction over the Should clauses with MaxScore pruning: once the
// collector's threshold covers the summed bounds of the weakest clauses,
// those clauses stop generating candidates and are only probed to score
// documents the essential clauses surfaced.
type booleanScorer struct {
	musts   []scorer
	shoulds []scorer
	nots    []scorer
	coord   bool
	total   int

	cur      int
	curScore float64
	cap      float64
	dead     bool
	// th is the collector threshold (root-only), kept for Block-Max
	// window checks in seek.
	th float64

	// MaxScore partition (disjunction mode only): sorted holds should
	// indices by ascending bound, prefix[i] the bound-sum of sorted[:i],
	// and the first nonEss entries are currently non-essential.
	sorted []int
	prefix []float64
	nonEss int
}

func newBooleanScorer(ix *Index, q BooleanQuery) scorer {
	if len(q.Must)+len(q.Should) == 0 {
		return emptyScorer{}
	}
	b := &booleanScorer{
		coord: !q.DisableCoord,
		total: len(q.Must) + len(q.Should),
		cur:   -1,
	}
	for _, c := range q.Must {
		b.musts = append(b.musts, c.newScorer(ix))
	}
	for _, c := range q.Should {
		b.shoulds = append(b.shoulds, c.newScorer(ix))
	}
	for _, c := range q.MustNot {
		b.nots = append(b.nots, c.newScorer(ix))
	}
	for _, m := range b.musts {
		b.cap += m.maxScore()
	}
	for _, sh := range b.shoulds {
		b.cap += sh.maxScore()
	}
	if len(b.musts) == 0 {
		b.initPartition()
	}
	return b
}

// newDisjunctionScorer wraps pre-built clause scorers as a coord-free
// disjunction — the scorer shape of BooleanQuery{Should: ...,
// DisableCoord: true} without re-deriving each clause from a Query.
func newDisjunctionScorer(shoulds []scorer) scorer {
	if len(shoulds) == 0 {
		return emptyScorer{}
	}
	b := &booleanScorer{coord: false, total: len(shoulds), shoulds: shoulds, cur: -1}
	for _, sh := range shoulds {
		b.cap += sh.maxScore()
	}
	b.initPartition()
	return b
}

// initPartition precomputes the MaxScore bookkeeping for disjunction mode.
func (b *booleanScorer) initPartition() {
	b.sorted = make([]int, len(b.shoulds))
	for i := range b.sorted {
		b.sorted[i] = i
	}
	// Insertion sort by ascending bound: clause counts are small and this
	// keeps reflection-based sorting off the query path.
	for i := 1; i < len(b.sorted); i++ {
		for j := i; j > 0 && b.shoulds[b.sorted[j]].maxScore() < b.shoulds[b.sorted[j-1]].maxScore(); j-- {
			b.sorted[j], b.sorted[j-1] = b.sorted[j-1], b.sorted[j]
		}
	}
	b.prefix = make([]float64, len(b.sorted)+1)
	for i, idx := range b.sorted {
		b.prefix[i+1] = b.prefix[i] + b.shoulds[idx].maxScore()
	}
}

// setThreshold implements prunable: clauses whose collective bounds fall
// under the bar stop generating candidates, and the whole scorer dies
// once no document can beat it.
func (b *booleanScorer) setThreshold(th float64) {
	b.th = th
	if b.cap <= th {
		b.dead = true
		return
	}
	for b.sorted != nil && b.nonEss < len(b.sorted) && b.prefix[b.nonEss+1] <= th {
		b.nonEss++
	}
}

// maxScoreUpTo implements blockMaxScorer: the clause bounds summed over
// the window, the window ending at the earliest clause block boundary.
// The sum bounds the coord-free clause-score sum; the coordination
// factor only shrinks it (every clause bound is >= 0), and MustNot
// clauses only remove documents, so it is an upper bound on score() for
// any document in the window.
func (b *booleanScorer) maxScoreUpTo(target int) (float64, int) {
	bound := 0.0
	boundary := noMoreDocs
	for _, m := range b.musts {
		mb, mboundary := ceilingTo(m, target)
		bound += mb
		if mboundary < boundary {
			boundary = mboundary
		}
	}
	for _, sh := range b.shoulds {
		sb, sboundary := ceilingTo(sh, target)
		bound += sb
		if sboundary < boundary {
			boundary = sboundary
		}
	}
	return bound, boundary
}

func (b *booleanScorer) doc() int { return b.cur }

func (b *booleanScorer) next() int { return b.seek(b.cur + 1) }

func (b *booleanScorer) advance(target int) int {
	if b.cur >= target {
		return b.cur
	}
	return b.seek(target)
}

func (b *booleanScorer) seek(target int) int {
	if b.dead {
		b.cur = noMoreDocs
		return b.cur
	}
	for {
		// Block-Max window check (root-only: th is 0 as a child). When no
		// document up to the earliest clause block boundary can beat the
		// collector threshold, jump every clause past the whole window
		// instead of scoring through it.
		if b.th > 0 {
			bound, boundary := b.maxScoreUpTo(target)
			if bound <= b.th {
				if boundary == noMoreDocs {
					b.cur = noMoreDocs
					return b.cur
				}
				if boundary >= target {
					target = boundary + 1
					continue
				}
			}
		}
		var d int
		if len(b.musts) > 0 {
			d = b.leapfrog(target)
		} else {
			d = b.minEssential(target)
		}
		if d == noMoreDocs {
			b.cur = noMoreDocs
			return b.cur
		}
		if b.excluded(d) {
			target = d + 1
			continue
		}
		b.cur = d
		b.curScore = b.scoreAt(d)
		return d
	}
}

// leapfrog aligns every Must cursor on the next common docID >= target.
func (b *booleanScorer) leapfrog(target int) int {
	d := target
	for {
		raised := false
		for _, m := range b.musts {
			md := m.doc()
			if md < d {
				md = m.advance(d)
			}
			if md == noMoreDocs {
				return noMoreDocs
			}
			if md > d {
				d = md
				raised = true
			}
		}
		if !raised {
			return d
		}
	}
}

// minEssential returns the smallest docID >= target among the essential
// Should cursors — the disjunction-mode candidate generator. Documents
// matched only by non-essential clauses are skipped: their summed bounds
// are at or under the collector threshold, so they cannot enter the top k.
func (b *booleanScorer) minEssential(target int) int {
	d := noMoreDocs
	for _, i := range b.sorted[b.nonEss:] {
		sh := b.shoulds[i]
		sd := sh.doc()
		if sd < target {
			sd = sh.advance(target)
		}
		if sd < d {
			d = sd
		}
	}
	return d
}

// excluded reports whether any MustNot clause matches d.
func (b *booleanScorer) excluded(d int) bool {
	for _, nt := range b.nots {
		nd := nt.doc()
		if nd < d {
			nd = nt.advance(d)
		}
		if nd == d {
			return true
		}
	}
	return false
}

// scoreAt sums the matching clause scores in clause order — Musts first,
// then Shoulds, exactly the accumulation order of the exhaustive path —
// and applies the coordination factor.
func (b *booleanScorer) scoreAt(d int) float64 {
	sum := 0.0
	matched := 0
	for _, m := range b.musts {
		sum += m.score()
		matched++
	}
	for _, sh := range b.shoulds {
		sd := sh.doc()
		if sd < d {
			sd = sh.advance(d)
		}
		if sd == d {
			sum += sh.score()
			matched++
		}
	}
	if !b.coord {
		return sum
	}
	coord := float64(matched) / float64(b.total)
	return sum * coord
}

func (b *booleanScorer) score() float64    { return b.curScore }
func (b *booleanScorer) maxScore() float64 { return b.cap }
