package index

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSearch backs the "safe for concurrent searching" claim in
// index.go under -race: after an offline build, many goroutines hammer
// every query shape — term, phrase, boolean, fuzzy, parsed, more-like-this
// — against the same index and must observe identical results.
func TestConcurrentSearch(t *testing.T) {
	ix := New(nil)
	for i := 0; i < 200; i++ {
		d := &Document{}
		d.Add("event", fmt.Sprintf("Goal Shoot event %d", i))
		d.Add("narration", fmt.Sprintf("player%d scores a wonderful goal in minute %d", i%17, i))
		ix.Add(d)
	}
	fields := []FieldBoost{{Field: "event", Boost: 2}, {Field: "narration", Boost: 1}}
	queries := []Query{
		TermQuery{Field: "narration", Term: "goal"},
		PhraseQuery{Field: "narration", Terms: []string{"wonderful", "goal"}},
		MultiFieldQuery("goal player3", fields),
		FuzzyQuery{Field: "narration", Term: "goql"},
		BooleanQuery{Must: []Query{TermQuery{Field: "event", Term: "goal"}},
			MustNot: []Query{TermQuery{Field: "narration", Term: "player5"}}},
	}
	want := make([][]Hit, len(queries))
	for i, q := range queries {
		want[i] = ix.Search(q, 10)
		if len(want[i]) == 0 {
			t.Fatalf("query %d matches nothing; bad fixture", i)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []string
	fail := func(msg string) {
		mu.Lock()
		errs = append(errs, msg)
		mu.Unlock()
	}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				qi := (g + i) % len(queries)
				got := ix.Search(queries[qi], 10)
				if len(got) != len(want[qi]) {
					fail(fmt.Sprintf("goroutine %d query %d: %d hits, want %d",
						g, qi, len(got), len(want[qi])))
					return
				}
				for r := range got {
					if got[r] != want[qi][r] {
						fail(fmt.Sprintf("goroutine %d query %d rank %d: %+v != %+v",
							g, qi, r, got[r], want[qi][r]))
						return
					}
				}
				ix.MoreLikeThis(i%ix.NumDocs(), fields, 4)
			}
		}(g)
	}
	wg.Wait()
	for _, e := range errs {
		t.Error(e)
	}
}
