package index

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Eto'o scores!", []string{"Eto'o", "scores"}},
		{"a 4-4-2 formation", []string{"a", "4", "4", "2", "formation"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"", nil},
		{"!!!", nil},
		{"Ballack gives away a free-kick", []string{"Ballack", "gives", "away", "a", "free", "kick"}},
		{"'''", nil},
		{"rock'n'roll", []string{"rock'n'roll"}},
		{"Güiza çıkıyor", []string{"Güiza", "çıkıyor"}}, // unicode letters survive
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStandardAnalyzer(t *testing.T) {
	a := StandardAnalyzer{}
	got := a.Analyze("Ballack gives away a free-kick following a challenge on Busquets")
	// Stopwords removed, tokens stemmed and lowercased.
	want := []string{"ballack", "give", "awai", "free", "kick", "follow", "challeng", "busquet"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v, want %v", got, want)
	}
}

func TestStandardAnalyzerQueryDocAgreement(t *testing.T) {
	// The crucial retrieval property: "goal" in a query matches "goals" in
	// a document, "scores" matches "score!", etc.
	a := StandardAnalyzer{}
	pairs := [][2]string{
		{"goal", "goals"},
		{"scores", "scoring"},
		{"punishment", "punishments"},
		{"save", "saves"},
		{"miss", "missed"},
		{"booking", "booked"},
	}
	for _, p := range pairs {
		qa, da := a.Analyze(p[0]), a.Analyze(p[1])
		if len(qa) != 1 || len(da) != 1 || qa[0] != da[0] {
			t.Errorf("Analyze(%q)=%v vs Analyze(%q)=%v: stems disagree", p[0], qa, p[1], da)
		}
	}
}

func TestStandardAnalyzerFlags(t *testing.T) {
	keep := StandardAnalyzer{KeepStopwords: true}
	if got := keep.Analyze("the goal"); len(got) != 2 {
		t.Errorf("KeepStopwords dropped tokens: %v", got)
	}
	nostem := StandardAnalyzer{NoStemming: true}
	if got := nostem.Analyze("scores"); len(got) != 1 || got[0] != "scores" {
		t.Errorf("NoStemming stemmed anyway: %v", got)
	}
}

func TestKeywordAnalyzer(t *testing.T) {
	a := KeywordAnalyzer{}
	if got := a.Analyze("  2009-05-06 "); len(got) != 1 || got[0] != "2009-05-06" {
		t.Errorf("Analyze = %v", got)
	}
	if got := a.Analyze("   "); got != nil {
		t.Errorf("Analyze(blank) = %v", got)
	}
}

func TestIsStopword(t *testing.T) {
	for _, s := range []string{"by", "to", "of", "the", "a"} {
		if !IsStopword(s) {
			t.Errorf("IsStopword(%q) = false", s)
		}
	}
	if IsStopword("goal") {
		t.Error("IsStopword(goal) = true")
	}
}

func TestPorterStemFixtures(t *testing.T) {
	// Classic fixtures from Porter's paper plus soccer vocabulary.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formaliti":    "formal",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		// Soccer domain.
		"goals":        "goal",
		"scores":       "score",
		"scored":       "score",
		"punishments":  "punish",
		"substitution": "substitut",
		"offsides":     "offsid",
		"fouls":        "foul",
		"saves":        "save",
		"penalties":    "penalti",
	}
	for in, want := range cases {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "is", "go", ""} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: stemming is idempotent-ish in the sense that it never panics and
// always returns a non-longer, non-empty stem for non-empty lowercase input.
func TestPorterStemProperty(t *testing.T) {
	f := func(s string) bool {
		// Constrain to plausible tokens: lowercase ASCII letters.
		var b strings.Builder
		for _, r := range s {
			if unicode.IsLetter(r) && r < 128 {
				b.WriteRune(unicode.ToLower(r))
			}
		}
		w := b.String()
		got := PorterStem(w)
		if w == "" {
			return got == ""
		}
		return got != "" && len(got) <= len(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
