package index

// Mapped DAAT scorers: the zero-copy counterparts of termScorer and
// phraseScorer (scorer.go). The contract is the heap contract verbatim —
// identical hit sets, byte-identical scores, identical tie order versus
// the exhaustive path — so every score is computed with exactly the same
// floating-point expression in exactly the same order; only where the
// postings come from differs.
//
// What changes is the cost model. The heap scorer owns a materialized
// []Posting; block skipping saves score computations but the bytes were
// already decoded. Here a scorer owns a BlockReader and the TOC's
// per-block (offset, lastDoc) table:
//
//   - skipBeatenBlocks compares the collector threshold against a bound
//     computed from the block's ~20-byte max-impact header read straight
//     from the mapped region — a beaten block's posting bytes are never
//     decoded at all;
//   - maxScoreUpTo answers from the in-RAM block boundaries and the same
//     header reads, decoding nothing (the shallow probe tracks a block
//     index, not a posting index — the bound and boundary only depend on
//     the block, and the block of the heap path's probe index is exactly
//     the first block at or after the cursor whose last docID reaches the
//     target, which the boundary table yields directly);
//   - advance binary searches the boundary table first and decodes at
//     most the one block the target lands in.

import (
	"math"
	"sort"
)

// mappedTermScorer mirrors termScorer over a mapped term.
type mappedTermScorer struct {
	ix    *Index
	f     *mappedField
	t     *mappedTerm
	cur   *BlockReader
	df    int
	nDocs int
	avg   float64
	boost float64
	i     int
	cap   float64

	// shallowBlk is the maxScoreUpTo probe's block (monotone; numBlocks()
	// once exhausted); th and the bound memo mirror termScorer.
	shallowBlk  int
	th          float64
	cachedBlock int
	cachedBound float64
}

func newMappedTermScorer(ix *Index, f *mappedField, field, term string, queryBoost float64) scorer {
	mt := f.terms[term]
	if mt == nil {
		return emptyScorer{}
	}
	return &mappedTermScorer{
		ix: ix, f: f, t: mt,
		cur:         newBlockReader(f, mt, false),
		df:          ix.scoringDocFreq(field, term),
		nDocs:       ix.scoringNumDocs(),
		avg:         ix.scoringAvgLen(field),
		boost:       queryBoost,
		i:           -1,
		cap:         ix.termUpperBound(field, term, queryBoost),
		cachedBlock: -1,
	}
}

func (s *mappedTermScorer) doc() int {
	if s.i < 0 {
		return -1
	}
	if s.i >= s.t.n {
		return noMoreDocs
	}
	return s.cur.docAt(s.i)
}

func (s *mappedTermScorer) next() int {
	s.i++
	if s.th > 0 {
		s.skipBeatenBlocks()
	}
	return s.doc()
}

func (s *mappedTermScorer) setThreshold(th float64) { s.th = th }

// skipBeatenBlocks mirrors termScorer.skipBeatenBlocks; here a skipped
// block's postings are never read from disk, only its header.
func (s *mappedTermScorer) skipBeatenBlocks() {
	n := s.t.n
	for s.i < n {
		if !s.t.multi {
			if s.cap <= s.th {
				s.i = n
			}
			return
		}
		b := s.i / postingBlockSize
		if s.blockBound(b) > s.th {
			return
		}
		s.i = (b + 1) * postingBlockSize
	}
}

// blockBound evaluates the same expression as termScorer.blockBound over
// the header read from the mapped region. The header holds the exact
// per-block values the encoder computed — the identical numbers the heap
// decode path carries in fi.blocks — so pruning decisions match.
func (s *mappedTermScorer) blockBound(b int) float64 {
	if b == s.cachedBlock {
		return s.cachedBound
	}
	bound := math.Inf(1)
	blk := s.f.blockCap(s.t, b)
	if ubs, ok := s.ix.sim.(UpperBoundSimilarity); ok && blk.maxBoost >= 0 && s.boost >= 0 {
		bound = ubs.TermScoreBound(blk.maxFreq, s.df, s.nDocs, blk.minLen, s.avg) *
			blk.maxBoost * s.boost * capSlack
	}
	s.cachedBlock, s.cachedBound = b, bound
	return bound
}

// probeBlock advances blk to the first block at or after it whose last
// docID reaches target, using only the in-RAM boundary table.
func (t *mappedTerm) probeBlock(blk, target int) int {
	nb := t.numBlocks()
	if blk >= nb || int(t.lastDocs[blk]) >= target {
		return blk
	}
	blk++
	return blk + sort.Search(nb-blk, func(k int) bool { return int(t.lastDocs[blk+k]) >= target })
}

func (s *mappedTermScorer) maxScoreUpTo(target int) (float64, int) {
	b := s.shallowBlk
	if s.i > 0 {
		if ib := s.i / postingBlockSize; ib > b {
			b = ib
		}
	}
	if s.i >= s.t.n {
		return 0, noMoreDocs
	}
	b = s.t.probeBlock(b, target)
	s.shallowBlk = b
	if b >= s.t.numBlocks() {
		return 0, noMoreDocs
	}
	if !s.t.multi {
		return s.cap, int(s.t.lastDocs[0])
	}
	return s.blockBound(b), int(s.t.lastDocs[b])
}

// firstAtLeast returns the index of the first posting at or after base
// whose docID reaches target (t.n when none), decoding at most one block.
func firstAtLeast(cur *BlockReader, t *mappedTerm, base, target int) int {
	if base >= t.n {
		return t.n
	}
	b := t.probeBlock(base/postingBlockSize, target)
	if b >= t.numBlocks() || !cur.load(b) {
		return t.n
	}
	lo := 0
	if b == base/postingBlockSize {
		lo = base - b*postingBlockSize
	}
	j := lo + sort.Search(len(cur.docs)-lo, func(k int) bool { return cur.docs[lo+k] >= int32(target) })
	if j >= len(cur.docs) {
		// Only reachable when the TOC boundary and the payload disagree
		// (excluded by the envelope CRC); fail closed as exhausted.
		return t.n
	}
	return b*postingBlockSize + j
}

func (s *mappedTermScorer) advance(target int) int {
	if s.i >= 0 && s.i < s.t.n {
		if d := s.cur.docAt(s.i); d >= target {
			return d
		}
	}
	base := s.i + 1
	if base < 0 {
		base = 0
	}
	s.i = firstAtLeast(s.cur, s.t, base, target)
	return s.doc()
}

func (s *mappedTermScorer) score() float64 {
	d := s.cur.docAt(s.i)
	freq, pboost := s.cur.at(s.i)
	base := s.ix.sim.TermScore(freq, s.df, s.nDocs, s.f.lengthOf(d), s.avg)
	return base * pboost * s.boost
}

func (s *mappedTermScorer) maxScore() float64 { return s.cap }

// mappedPhraseScorer mirrors phraseScorer: the first term's reader
// generates candidates (with positions), and each later term keeps its
// own positional reader so verification decodes at most one block per
// probe — candidates arrive in ascending docID order, so those reads are
// nearly sequential.
type mappedPhraseScorer struct {
	ix     *Index
	f      *mappedField
	field  string
	t0     *mappedTerm
	first  *BlockReader
	probes []*BlockReader
	idfSum float64
	boost  float64
	i      int
	freq   int
	cap    float64

	minMaxFreq  int
	maxMinLen   int
	shallowBlk  int
	cachedBlock int
	cachedBound float64
	cachedCap   termCap
}

func newMappedPhraseScorer(ix *Index, f *mappedField, field string, terms []string, boost float64) scorer {
	for _, t := range terms {
		if f.terms[t] == nil {
			return emptyScorer{}
		}
	}
	idfSum := 0.0
	for _, t := range terms {
		idfSum += ix.IDF(field, t)
	}
	t0 := f.terms[terms[0]]
	s := &mappedPhraseScorer{
		ix: ix, f: f, field: field, t0: t0,
		first:  newBlockReader(f, t0, true),
		idfSum: idfSum, boost: boost, i: -1,
		cachedBlock: -1,
	}
	for _, t := range terms[1:] {
		s.probes = append(s.probes, newBlockReader(f, f.terms[t], true))
	}
	s.minMaxFreq, s.maxMinLen = math.MaxInt, 1
	for _, t := range terms {
		c := f.terms[t].cap
		if c.maxFreq < s.minMaxFreq {
			s.minMaxFreq = c.maxFreq
		}
		if c.minLen > s.maxMinLen {
			s.maxMinLen = c.minLen
		}
	}
	if maxBoost := t0.cap.maxBoost; maxBoost < 0 || boost < 0 {
		s.cap = math.Inf(1)
	} else {
		s.cap = math.Sqrt(float64(s.minMaxFreq)) * idfSum * maxBoost /
			math.Sqrt(float64(s.maxMinLen)) * boost * capSlack
	}
	return s
}

func (s *mappedPhraseScorer) maxScoreUpTo(target int) (float64, int) {
	b := s.shallowBlk
	if s.i > 0 {
		if ib := s.i / postingBlockSize; ib > b {
			b = ib
		}
	}
	if s.i >= s.t0.n {
		return 0, noMoreDocs
	}
	b = s.t0.probeBlock(b, target)
	s.shallowBlk = b
	nb := s.t0.numBlocks()
	if b >= nb {
		return 0, noMoreDocs
	}
	if !s.t0.multi {
		return s.cap, int(s.t0.lastDocs[0])
	}
	boundary := int(s.t0.lastDocs[b])
	if b != s.cachedBlock {
		s.cachedBlock, s.cachedCap = b, s.f.blockCap(s.t0, b)
	}
	blk := s.cachedCap
	if blk.maxBoost < 0 || s.boost < 0 {
		return s.cap, boundary
	}
	mf := s.minMaxFreq
	if blk.maxFreq < mf {
		mf = blk.maxFreq
	}
	ml := s.maxMinLen
	if blk.minLen > ml {
		ml = blk.minLen
	}
	bound := math.Sqrt(float64(mf)) * s.idfSum * blk.maxBoost /
		math.Sqrt(float64(ml)) * s.boost * capSlack
	return bound, boundary
}

func (s *mappedPhraseScorer) doc() int {
	if s.i < 0 {
		return -1
	}
	if s.i >= s.t0.n {
		return noMoreDocs
	}
	return s.first.docAt(s.i)
}

func (s *mappedPhraseScorer) next() int {
	for s.i++; s.i < s.t0.n; s.i++ {
		if s.computeFreq() {
			return s.first.docAt(s.i)
		}
	}
	return noMoreDocs
}

func (s *mappedPhraseScorer) advance(target int) int {
	if s.i >= 0 && s.i < s.t0.n {
		if d := s.first.docAt(s.i); d >= target {
			return d
		}
	}
	base := s.i + 1
	if base < 0 {
		base = 0
	}
	// Position just before the first candidate >= target; next() verifies
	// the phrase positionally from there (the heap shape exactly).
	s.i = firstAtLeast(s.first, s.t0, base, target) - 1
	return s.next()
}

// computeFreq mirrors phraseScorer.computeFreq at the current candidate.
func (s *mappedPhraseScorer) computeFreq() bool {
	d := s.first.docAt(s.i)
	if d == noMoreDocs {
		s.freq = 0
		return false
	}
	freq := 0
	for _, start := range s.first.positionsAt(s.i) {
		if s.phraseAt(d, start) {
			freq++
		}
	}
	s.freq = freq
	return freq > 0
}

// phraseAt verifies terms[1:] at consecutive positions in doc d.
func (s *mappedPhraseScorer) phraseAt(d, start int) bool {
	for k, r := range s.probes {
		idx, ok := r.findDoc(d)
		if !ok {
			return false
		}
		pl := r.positionsAt(idx)
		pos := start + k + 1
		j := searchInts(pl, pos)
		if j >= len(pl) || pl[j] != pos {
			return false
		}
	}
	return true
}

func (s *mappedPhraseScorer) score() float64 {
	d := s.first.docAt(s.i)
	_, p0boost := s.first.at(s.i)
	tf := math.Sqrt(float64(s.freq))
	return tf * s.idfSum * p0boost * s.ix.fieldNorm(s.field, d) * s.boost
}

func (s *mappedPhraseScorer) maxScore() float64 { return s.cap }
