package index

// Segment merging for the LSM-shaped shard engine: many small immutable
// indexes (a base plus per-ingest-batch segments) are compacted into one,
// dropping tombstoned documents, WITHOUT re-analyzing any text. Postings
// are remapped and concatenated — sources are given in ascending global
// order and each source's posting lists are ascending locally, so the
// merged lists come out ascending by construction. The merged index is
// indistinguishable from a from-scratch Add of the surviving documents in
// the same order: same docID assignment, same posting shapes, same
// score-bound caps (rebuilt exactly), same statistics.

// MergeIndexes compacts sources (in order) into one new index, skipping
// tombstoned documents. Surviving documents are renumbered densely in
// source order; the returned remap slices (one per source, -1 for dropped
// documents) let the caller translate old docIDs to merged ones. Stored
// documents and position slices are shared with the sources, which must
// be treated as immutable afterwards. The merged index carries no corpus
// stats; the caller installs them.
//
// dead, when non-nil, supplies a per-source liveness snapshot (see
// DeletedMask) consulted INSTEAD of each source's own tombstone bits —
// the hook that lets a background merge run outside the engine lock
// while concurrent ingests keep tombstoning: the merge works against the
// snapshot, and the caller reconciles documents tombstoned mid-merge by
// re-deleting them on the merged index. A nil dead (or nil dead[i])
// reads the source's live bits, which requires the caller to hold off
// writers for the duration.
func MergeIndexes(sources []*Index, dead [][]bool) (*Index, [][]int) {
	out := New(nil)
	remaps := make([][]int, len(sources))
	if len(sources) == 0 {
		return out, remaps
	}
	out.analyzer = sources[0].analyzer
	out.sim = sources[0].sim
	out.exhaustive = sources[0].exhaustive

	for si, src := range sources {
		isDead := func(id int) bool { return src.numDeleted > 0 && src.deleted[id] }
		if dead != nil && dead[si] != nil {
			mask := dead[si]
			isDead = func(id int) bool { return mask[id] }
		}
		// src.Doc materializes a mapped source's stored region — the merge
		// output is a heap index that needs the documents regardless.
		n := src.docCount()
		remap := make([]int, n)
		for id := 0; id < n; id++ {
			if isDead(id) {
				remap[id] = -1
				continue
			}
			remap[id] = len(out.docs)
			out.docs = append(out.docs, src.Doc(id))
			out.deleted = append(out.deleted, false)
		}
		remaps[si] = remap

		for name, sfi := range src.fields {
			// A field carried only by tombstoned documents does not survive
			// the merge — exactly as a from-scratch build would not see it.
			live := false
			sfi.eachDocLen(func(id, _ int) { live = live || remap[id] >= 0 })
			if !live {
				continue
			}
			fi := out.fields[name]
			if fi == nil {
				fi = newFieldIndex()
				out.fields[name] = fi
			}
			sfi.eachDocLen(func(id, l int) {
				nid := remap[id]
				if nid < 0 {
					return
				}
				fi.docLen[nid] = l
				fi.sumLen += l
				fi.boost[nid] = sfi.boostOf(id)
			})
			// Mapped sources materialize one term at a time; memory stays
			// bounded by a posting list, never the whole field.
			for _, term := range sfi.termNames() {
				pl := sfi.postingsOf(term)
				kept := fi.postings[term]
				for i := range pl {
					nid := remap[pl[i].DocID]
					if nid < 0 {
						continue
					}
					kept = append(kept, Posting{DocID: nid, Positions: pl[i].Positions, Boost: pl[i].Boost})
				}
				if len(kept) > 0 {
					fi.postings[term] = kept
				}
			}
		}
	}
	for _, fi := range out.fields {
		fi.rebuildCaps()
		fi.rebuildBlocks()
	}
	return out, remaps
}
