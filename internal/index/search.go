package index

import (
	"math"
	"sort"
)

// Query scores documents against the index. Implementations are TermQuery,
// PhraseQuery and BooleanQuery.
type Query interface {
	// scores returns the raw per-document scores of this query clause.
	scores(ix *Index) map[int]float64
}

// Hit is one search result.
type Hit struct {
	DocID int
	Score float64
}

// Search evaluates the query and returns hits sorted by descending score
// (docID ascending on ties, for determinism). limit <= 0 returns all hits.
func (ix *Index) Search(q Query, limit int) []Hit {
	sc := q.scores(ix)
	hits := make([]Hit, 0, len(sc))
	for id, s := range sc {
		if s > 0 {
			hits = append(hits, Hit{DocID: id, Score: s})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DocID < hits[j].DocID
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// TermQuery matches documents containing a single term in one field,
// scored with classic TF-IDF: sqrt(tf) · idf² · fieldBoost · lengthNorm.
type TermQuery struct {
	Field string
	// Term must be in raw text form; it is analyzed against the index's
	// analyzer before lookup.
	Term string
	// Boost scales this clause. Zero is a convenience sentinel meaning
	// "unset" and scores as 1.0 — a TermQuery cannot express "weight this
	// field at nothing". To drop a field entirely, omit the clause;
	// MultiFieldQuery does exactly that for zero-boost FieldBoosts.
	Boost float64
}

func (q TermQuery) scores(ix *Index) map[int]float64 {
	terms := ix.analyzer.Analyze(q.Term)
	if len(terms) != 1 {
		// A term that analyzes to several tokens (or none, e.g. a pure
		// stopword) is treated as a phrase or as unmatchable respectively.
		if len(terms) == 0 {
			return nil
		}
		return PhraseQuery{Field: q.Field, Terms: terms, Boost: q.Boost}.scores(ix)
	}
	term := terms[0]
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	fi := ix.fields[q.Field]
	if fi == nil {
		return nil
	}
	pl := fi.postings[term]
	df := ix.scoringDocFreq(q.Field, term)
	numDocs := ix.scoringNumDocs()
	avg := ix.scoringAvgLen(q.Field)
	out := make(map[int]float64, len(pl))
	for _, p := range pl {
		base := ix.sim.TermScore(p.Freq(), df, numDocs, fi.docLen[p.DocID], avg)
		out[p.DocID] = base * p.Boost * boost
	}
	return out
}

// PhraseQuery matches documents where the terms occur consecutively in one
// field. Terms are raw tokens, analyzed individually before matching.
type PhraseQuery struct {
	Field string
	Terms []string
	// Boost scales this clause; like TermQuery.Boost, zero means "unset"
	// and scores as 1.0 — it cannot zero-weight the clause.
	Boost float64
}

func (q PhraseQuery) scores(ix *Index) map[int]float64 {
	var terms []string
	for _, t := range q.Terms {
		terms = append(terms, ix.analyzer.Analyze(t)...)
	}
	if len(terms) == 0 {
		return nil
	}
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	// Intersect posting lists positionally.
	first := ix.Postings(q.Field, terms[0])
	idfSum := 0.0
	for _, t := range terms {
		idfSum += ix.IDF(q.Field, t)
	}
	out := make(map[int]float64)
	for _, p0 := range first {
		freq := 0
		for _, start := range p0.Positions {
			if phraseAt(ix, q.Field, terms, p0.DocID, start) {
				freq++
			}
		}
		if freq > 0 {
			tf := math.Sqrt(float64(freq))
			out[p0.DocID] = tf * idfSum * p0.Boost * ix.fieldNorm(q.Field, p0.DocID) * boost
		}
	}
	return out
}

func phraseAt(ix *Index, field string, terms []string, docID, start int) bool {
	for i := 1; i < len(terms); i++ {
		if !hasPosition(ix.Postings(field, terms[i]), docID, start+i) {
			return false
		}
	}
	return true
}

func hasPosition(pl []Posting, docID, pos int) bool {
	// Posting lists are built in ascending docID order.
	i := sort.Search(len(pl), func(i int) bool { return pl[i].DocID >= docID })
	if i >= len(pl) || pl[i].DocID != docID {
		return false
	}
	ps := pl[i].Positions
	j := sort.SearchInts(ps, pos)
	return j < len(ps) && ps[j] == pos
}

// BooleanQuery combines clauses: Must clauses all have to match, MustNot
// clauses exclude documents, Should clauses add score. A document matches
// when every Must matches, no MustNot matches, and (if there are no Must
// clauses) at least one Should matches. Scores are summed and multiplied by
// Lucene's coord factor: matchedClauses/totalScoringClauses.
type BooleanQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
	// DisableCoord turns off the coordination factor, which the semantic
	// ranking layer does when it applies its own field weighting.
	DisableCoord bool
}

func (q BooleanQuery) scores(ix *Index) map[int]float64 {
	total := len(q.Must) + len(q.Should)
	if total == 0 {
		return nil
	}
	sum := make(map[int]float64)
	matched := make(map[int]int)
	mustMatched := make(map[int]int)
	for _, c := range q.Must {
		for id, s := range c.scores(ix) {
			sum[id] += s
			matched[id]++
			mustMatched[id]++
		}
	}
	for _, c := range q.Should {
		for id, s := range c.scores(ix) {
			sum[id] += s
			matched[id]++
		}
	}
	excluded := make(map[int]bool)
	for _, c := range q.MustNot {
		for id := range c.scores(ix) {
			excluded[id] = true
		}
	}
	out := make(map[int]float64, len(sum))
	for id, s := range sum {
		if excluded[id] || mustMatched[id] < len(q.Must) {
			continue
		}
		coord := 1.0
		if !q.DisableCoord {
			coord = float64(matched[id]) / float64(total)
		}
		out[id] = s * coord
	}
	return out
}

// MatchAllQuery matches every document with a constant score, useful for
// "list everything" style queries and tests.
type MatchAllQuery struct{}

func (MatchAllQuery) scores(ix *Index) map[int]float64 {
	out := make(map[int]float64, len(ix.docs))
	for id := range ix.docs {
		out[id] = 1
	}
	return out
}

// FieldBoost pairs a field with a query-time boost, for multi-field keyword
// search.
type FieldBoost struct {
	Field string
	Boost float64
}

// MultiFieldQuery builds the query Lucene's MultiFieldQueryParser would:
// for each whitespace token of the text, a disjunction of term queries over
// the given fields, all combined as Should clauses.
//
// A FieldBoost with Boost 0 drops its field from the query entirely. The
// per-clause queries treat 0 as the "unset, score at 1.0" sentinel, so
// forwarding a zero boost would silently search the field at full weight
// — exactly what the Section 3.6.2 boost-ablation hook
// (semindex.SearchWithBoosts) must not do when it zero-weights a field.
func MultiFieldQuery(text string, fields []FieldBoost) Query {
	searched := make([]FieldBoost, 0, len(fields))
	for _, fb := range fields {
		if fb.Boost != 0 {
			searched = append(searched, fb)
		}
	}
	var should []Query
	for _, tok := range Tokenize(text) {
		var perField []Query
		for _, fb := range searched {
			perField = append(perField, TermQuery{Field: fb.Field, Term: tok, Boost: fb.Boost})
		}
		should = append(should, BooleanQuery{Should: perField, DisableCoord: true})
	}
	return BooleanQuery{Should: should}
}
