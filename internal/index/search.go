package index

import (
	"math"
	"sync"
)

// Query scores documents against the index. Implementations are TermQuery,
// PhraseQuery and BooleanQuery.
type Query interface {
	// scores returns the raw per-document scores of this query clause —
	// the exhaustive term-at-a-time path kept as the ExhaustiveSearch
	// escape hatch and the oracle the DAAT kernel is verified against.
	scores(ix *Index) map[int]float64
	// newScorer returns the clause's document-at-a-time cursor (see
	// scorer.go). It must reproduce scores exactly: same documents, same
	// floating-point expression order, byte-identical scores.
	newScorer(ix *Index) scorer
}

// Hit is one search result.
type Hit struct {
	DocID int
	Score float64
}

// Search evaluates the query and returns hits sorted by descending score
// (docID ascending on ties, for determinism). limit <= 0 returns all hits.
//
// Evaluation is document-at-a-time with MaxScore pruning against the
// top-k threshold: posting lists are walked in docID lockstep, a bounded
// typed min-heap keeps the best limit hits, and once the heap is full the
// weakest kept score becomes a bar that lets the evaluator skip documents
// whose per-term score caps prove they cannot qualify. The result is
// byte-identical — documents, scores and tie order — to ExhaustiveSearch.
func (ix *Index) Search(q Query, limit int) []Hit {
	if ix.exhaustive {
		return ix.ExhaustiveSearch(q, limit)
	}
	sc := q.newScorer(ix)
	if _, empty := sc.(emptyScorer); empty {
		return nil
	}
	c := acquireCollector(limit)
	pr, canPrune := sc.(prunable)
	th := 0.0
	for d := sc.next(); d != noMoreDocs; d = sc.next() {
		// Tombstoned documents keep their postings until a merge; the
		// collect point is where they stop existing for queries.
		if ix.numDeleted > 0 && ix.deleted[d] {
			continue
		}
		if s := sc.score(); s > th {
			c.collect(d, s)
			if nt := c.threshold(); nt > th {
				th = nt
				if canPrune {
					pr.setThreshold(nt)
				}
			}
		}
	}
	hits := c.results()
	c.release()
	return hits
}

// ExhaustiveSearch evaluates the query term-at-a-time over every matching
// document — the seed-era map-accumulator path. It is the baseline arm of
// the cold-path benchmark and the oracle for the DAAT equivalence tests;
// production callers should use Search.
func (ix *Index) ExhaustiveSearch(q Query, limit int) []Hit {
	sc := q.scores(ix)
	c := acquireCollector(limit)
	for id, s := range sc {
		if ix.numDeleted > 0 && ix.deleted[id] {
			continue
		}
		if s > 0 {
			c.collect(id, s)
		}
	}
	hits := c.results()
	c.release()
	return hits
}

// SetExhaustive routes Search through ExhaustiveSearch (true) or the DAAT
// kernel (false, the default). It exists for benchmarks and equivalence
// tests; like SetSimilarity it must not race with searches.
func (ix *Index) SetExhaustive(on bool) { ix.exhaustive = on }

// TermQuery matches documents containing a single term in one field,
// scored with classic TF-IDF: sqrt(tf) · idf² · fieldBoost · lengthNorm.
type TermQuery struct {
	Field string
	// Term must be in raw text form; it is analyzed against the index's
	// analyzer before lookup.
	Term string
	// Boost scales this clause. Zero is a convenience sentinel meaning
	// "unset" and scores as 1.0 — a TermQuery cannot express "weight this
	// field at nothing". To drop a field entirely, omit the clause;
	// MultiFieldQuery does exactly that for zero-boost FieldBoosts.
	Boost float64
}

func (q TermQuery) scores(ix *Index) map[int]float64 {
	terms := ix.analyzer.Analyze(q.Term)
	if len(terms) != 1 {
		// A term that analyzes to several tokens (or none, e.g. a pure
		// stopword) is treated as a phrase or as unmatchable respectively.
		if len(terms) == 0 {
			return nil
		}
		return PhraseQuery{Field: q.Field, Terms: terms, Boost: q.Boost}.scores(ix)
	}
	term := terms[0]
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	fi := ix.fields[q.Field]
	if fi == nil {
		return nil
	}
	pl := fi.postingsOf(term)
	df := ix.scoringDocFreq(q.Field, term)
	numDocs := ix.scoringNumDocs()
	avg := ix.scoringAvgLen(q.Field)
	out := make(map[int]float64, len(pl))
	for _, p := range pl {
		base := ix.sim.TermScore(p.Freq(), df, numDocs, fi.lengthOf(p.DocID), avg)
		out[p.DocID] = base * p.Boost * boost
	}
	return out
}

func (q TermQuery) newScorer(ix *Index) scorer {
	terms := ix.analyzer.Analyze(q.Term)
	if len(terms) != 1 {
		if len(terms) == 0 {
			return emptyScorer{}
		}
		// Mirror scores: multi-token terms re-enter as a phrase (which
		// re-analyzes them, keeping both paths on identical tokens).
		return PhraseQuery{Field: q.Field, Terms: terms, Boost: q.Boost}.newScorer(ix)
	}
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	return newTermScorer(ix, q.Field, terms[0], boost)
}

// PhraseQuery matches documents where the terms occur consecutively in one
// field. Terms are raw tokens, analyzed individually before matching.
type PhraseQuery struct {
	Field string
	Terms []string
	// Boost scales this clause; like TermQuery.Boost, zero means "unset"
	// and scores as 1.0 — it cannot zero-weight the clause.
	Boost float64
}

func (q PhraseQuery) scores(ix *Index) map[int]float64 {
	terms := phraseTerms(ix, q.Terms)
	if len(terms) == 0 {
		return nil
	}
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	// Intersect posting lists positionally.
	first := ix.Postings(q.Field, terms[0])
	idfSum := 0.0
	for _, t := range terms {
		idfSum += ix.IDF(q.Field, t)
	}
	out := make(map[int]float64)
	for _, p0 := range first {
		freq := 0
		for _, start := range p0.Positions {
			if phraseAt(ix, q.Field, terms, p0.DocID, start) {
				freq++
			}
		}
		if freq > 0 {
			tf := math.Sqrt(float64(freq))
			out[p0.DocID] = tf * idfSum * p0.Boost * ix.fieldNorm(q.Field, p0.DocID) * boost
		}
	}
	return out
}

func (q PhraseQuery) newScorer(ix *Index) scorer {
	terms := phraseTerms(ix, q.Terms)
	if len(terms) == 0 {
		return emptyScorer{}
	}
	boost := q.Boost
	if boost == 0 {
		boost = 1
	}
	return newPhraseScorer(ix, q.Field, terms, boost)
}

// phraseBufPool recycles the join scratch phraseTerms uses, so repeated
// phrase evaluation does not regrow a buffer per call.
var phraseBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// phraseTerms analyzes a phrase's raw terms in ONE analyzer pass: the
// terms are joined with spaces in a pooled scratch buffer and analyzed
// together. Tokenization splits on the same boundaries either way, so the
// token stream is identical to analyzing each term separately — without
// the per-term Analyze allocations and append-regrowth the seed path paid
// on every call.
func phraseTerms(ix *Index, raw []string) []string {
	switch len(raw) {
	case 0:
		return nil
	case 1:
		return ix.analyzer.Analyze(raw[0])
	}
	bufp := phraseBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	for i, t := range raw {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, t...)
	}
	// string(buf) copies: the analyzer's tokens alias their input string,
	// so they must not share the pooled buffer.
	terms := ix.analyzer.Analyze(string(buf))
	*bufp = buf
	phraseBufPool.Put(bufp)
	return terms
}

func phraseAt(ix *Index, field string, terms []string, docID, start int) bool {
	if fi := ix.fields[field]; fi != nil && fi.m != nil {
		// Mapped: probe each term's containing block directly instead of
		// materializing whole posting lists per call.
		for i := 1; i < len(terms); i++ {
			if !fi.m.hasPosition(terms[i], docID, start+i) {
				return false
			}
		}
		return true
	}
	for i := 1; i < len(terms); i++ {
		if !hasPosition(ix.Postings(field, terms[i]), docID, start+i) {
			return false
		}
	}
	return true
}

func hasPosition(pl []Posting, docID, pos int) bool {
	// Posting lists are built in ascending docID order.
	i := searchPostings(pl, docID)
	if i >= len(pl) || pl[i].DocID != docID {
		return false
	}
	ps := pl[i].Positions
	j := searchInts(ps, pos)
	return j < len(ps) && ps[j] == pos
}

// searchPostings is sort.Search specialized to posting lists: the first
// index whose DocID >= docID.
func searchPostings(pl []Posting, docID int) int {
	lo, hi := 0, len(pl)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pl[mid].DocID < docID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchInts is sort.SearchInts without the closure indirection.
func searchInts(s []int, x int) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BooleanQuery combines clauses: Must clauses all have to match, MustNot
// clauses exclude documents, Should clauses add score. A document matches
// when every Must matches, no MustNot matches, and (if there are no Must
// clauses) at least one Should matches. Scores are summed and multiplied by
// Lucene's coord factor: matchedClauses/totalScoringClauses.
type BooleanQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
	// DisableCoord turns off the coordination factor, which the semantic
	// ranking layer does when it applies its own field weighting.
	DisableCoord bool
}

func (q BooleanQuery) scores(ix *Index) map[int]float64 {
	total := len(q.Must) + len(q.Should)
	if total == 0 {
		return nil
	}
	sum := make(map[int]float64)
	matched := make(map[int]int)
	mustMatched := make(map[int]int)
	for _, c := range q.Must {
		for id, s := range c.scores(ix) {
			sum[id] += s
			matched[id]++
			mustMatched[id]++
		}
	}
	for _, c := range q.Should {
		for id, s := range c.scores(ix) {
			sum[id] += s
			matched[id]++
		}
	}
	excluded := make(map[int]bool)
	for _, c := range q.MustNot {
		for id := range c.scores(ix) {
			excluded[id] = true
		}
	}
	out := make(map[int]float64, len(sum))
	for id, s := range sum {
		if excluded[id] || mustMatched[id] < len(q.Must) {
			continue
		}
		coord := 1.0
		if !q.DisableCoord {
			coord = float64(matched[id]) / float64(total)
		}
		out[id] = s * coord
	}
	return out
}

func (q BooleanQuery) newScorer(ix *Index) scorer { return newBooleanScorer(ix, q) }

// MatchAllQuery matches every document with a constant score, useful for
// "list everything" style queries and tests.
type MatchAllQuery struct{}

func (MatchAllQuery) scores(ix *Index) map[int]float64 {
	n := ix.docCount()
	out := make(map[int]float64, n)
	for id := 0; id < n; id++ {
		out[id] = 1
	}
	return out
}

func (MatchAllQuery) newScorer(ix *Index) scorer {
	if ix.docCount() == 0 {
		return emptyScorer{}
	}
	return &allScorer{n: ix.docCount(), cur: -1}
}

// FieldBoost pairs a field with a query-time boost, for multi-field keyword
// search.
type FieldBoost struct {
	Field string
	Boost float64
}

// MultiFieldQuery builds the query Lucene's MultiFieldQueryParser would:
// for each whitespace token of the text, a disjunction of term queries over
// the given fields, all combined as Should clauses.
//
// A FieldBoost with Boost 0 drops its field from the query entirely. The
// per-clause queries treat 0 as the "unset, score at 1.0" sentinel, so
// forwarding a zero boost would silently search the field at full weight
// — exactly what the Section 3.6.2 boost-ablation hook
// (semindex.SearchWithBoosts) must not do when it zero-weights a field.
func MultiFieldQuery(text string, fields []FieldBoost) Query {
	searched := make([]FieldBoost, 0, len(fields))
	for _, fb := range fields {
		if fb.Boost != 0 {
			searched = append(searched, fb)
		}
	}
	var should []Query
	for _, tok := range Tokenize(text) {
		should = append(should, multiTermQuery{tok: tok, fields: searched})
	}
	return BooleanQuery{Should: should}
}

// multiTermQuery is one keyword searched across several fields — the
// per-token clause MultiFieldQuery builds. Semantically it is exactly the
// coord-free disjunction of per-field TermQueries (its scores method IS
// that query), but its scorer analyzes the token once instead of once per
// field: the analyzer's stemmer dominated scorer construction when every
// field clause re-derived the same index term.
type multiTermQuery struct {
	tok    string
	fields []FieldBoost
}

// asBoolean is the equivalent public-query shape, the form both scores
// and the multi-token fallback evaluate.
func (q multiTermQuery) asBoolean() BooleanQuery {
	per := make([]Query, len(q.fields))
	for i, fb := range q.fields {
		per[i] = TermQuery{Field: fb.Field, Term: q.tok, Boost: fb.Boost}
	}
	return BooleanQuery{Should: per, DisableCoord: true}
}

func (q multiTermQuery) scores(ix *Index) map[int]float64 {
	return q.asBoolean().scores(ix)
}

func (q multiTermQuery) newScorer(ix *Index) scorer {
	terms := ix.analyzer.Analyze(q.tok)
	if len(terms) == 0 {
		return emptyScorer{}
	}
	if len(terms) != 1 {
		// A token that analyzes to several terms re-enters as per-field
		// phrases, mirroring TermQuery's fallback.
		return q.asBoolean().newScorer(ix)
	}
	shoulds := make([]scorer, len(q.fields))
	for i, fb := range q.fields {
		boost := fb.Boost
		if boost == 0 {
			boost = 1
		}
		shoulds[i] = newTermScorer(ix, fb.Field, terms[0], boost)
	}
	return newDisjunctionScorer(shoulds)
}
