package soccer

import "repro/internal/rules"

// RuleText is the domain rule set of Section 3.5 in Jena syntax. The assist
// rule is the paper's Fig. 6 verbatim; scoredToGoalkeeperRule is the rule
// behind query Q-6 ("goal scored to casillas"): it infers which goalkeeper
// a goal was scored to even though no narration says so explicitly. The
// actorOf* rules feed the property hierarchy exploited by Q-7 ("henry
// negative moves"), and the team rules fill the subjectTeam/objectTeam
// fields of Table 2.
const RuleText = `
[assistRule:
  noValue(?pass rdf:type pre:Assist)
  (?pass rdf:type pre:Pass)
  (?pass pre:passingPlayer ?passer)
  (?pass pre:passReceiver ?receiver)
  (?pass pre:inMatch ?match)
  (?pass pre:inMinute ?minute)
  (?goal pre:inMatch ?match)
  (?goal pre:inMinute ?minute)
  (?goal pre:scorerPlayer ?receiver)
  makeTemp(?tmp)
  -> (?tmp rdf:type pre:Assist)
     (?tmp pre:inMatch ?match)
     (?tmp pre:inMinute ?minute)
     (?tmp pre:passingPlayer ?passer)
     (?tmp pre:passReceiver ?receiver)
     (?tmp pre:assistedPlayer ?receiver)
     (?tmp pre:assistOfGoal ?goal)
]

[scoredToGoalkeeperRule:
  (?goal rdf:type pre:Goal)
  (?goal pre:concedingTeam ?team)
  (?team pre:hasGoalkeeper ?gk)
  noValue(?goal pre:scoredToGoalkeeper ?gk)
  -> (?goal pre:scoredToGoalkeeper ?gk)
]

# Conceding team from the match structure: the team that did not score.
[concedingHomeRule:
  (?goal rdf:type pre:Goal)
  (?goal pre:scoringTeam ?st)
  (?goal pre:inMatch ?m)
  (?m pre:homeTeam ?st)
  (?m pre:awayTeam ?ot)
  noValue(?goal pre:concedingTeam ?ot)
  -> (?goal pre:concedingTeam ?ot)
]
[concedingAwayRule:
  (?goal rdf:type pre:Goal)
  (?goal pre:scoringTeam ?st)
  (?goal pre:inMatch ?m)
  (?m pre:awayTeam ?st)
  (?m pre:homeTeam ?ot)
  noValue(?goal pre:concedingTeam ?ot)
  -> (?goal pre:concedingTeam ?ot)
]

# Subject/object team from the acting player's club.
[subjectTeamRule:
  (?e pre:subjectPlayer ?p)
  (?p pre:playsFor ?t)
  noValue(?e pre:subjectTeam ?t)
  -> (?e pre:subjectTeam ?t)
]
[objectTeamRule:
  (?e pre:objectPlayer ?p)
  (?p pre:playsFor ?t)
  noValue(?e pre:objectTeam ?t)
  -> (?e pre:objectTeam ?t)
]
[scoringTeamRule:
  (?g rdf:type pre:Goal)
  (?g pre:scorerPlayer ?p)
  (?p pre:playsFor ?t)
  noValue(?g pre:scoringTeam ?t)
  -> (?g pre:scoringTeam ?t)
]

# Actor properties: from each event type's subject to the inverse
# player-side property, later lifted along the property hierarchy
# (actorOfRedCard -> actorOfNegativeMove -> actorOfMove) by the reasoner.
[actorGoal:    (?e rdf:type pre:Goal)       (?e pre:scorerPlayer ?p)    -> (?p pre:actorOfGoal ?e)]
[actorAssist:  (?e rdf:type pre:Assist)     (?e pre:passingPlayer ?p)   -> (?p pre:actorOfAssist ?e)]
[actorSave:    (?e rdf:type pre:Save)       (?e pre:savingPlayer ?p)    -> (?p pre:actorOfSave ?e)]
[actorPass:    (?e rdf:type pre:Pass)       (?e pre:passingPlayer ?p)   -> (?p pre:actorOfPass ?e)]
[actorShoot:   (?e rdf:type pre:Shoot)      (?e pre:shootingPlayer ?p)  -> (?p pre:actorOfShoot ?e)]
[actorTackle:  (?e rdf:type pre:Tackle)     (?e pre:tacklingPlayer ?p)  -> (?p pre:actorOfTackle ?e)]
[actorDribble: (?e rdf:type pre:Dribble)    (?e pre:dribblingPlayer ?p) -> (?p pre:actorOfDribble ?e)]
[actorFoul:    (?e rdf:type pre:Foul)       (?e pre:foulingPlayer ?p)   -> (?p pre:actorOfFoul ?e)]
[actorOffside: (?e rdf:type pre:Offside)    (?e pre:offsidePlayer ?p)   -> (?p pre:actorOfOffside ?e)]
[actorMiss:    (?e rdf:type pre:Miss)       (?e pre:missingPlayer ?p)   -> (?p pre:actorOfMissedGoal ?e)]
[actorYellow:  (?e rdf:type pre:YellowCard) (?e pre:punishedPlayer ?p)  -> (?p pre:actorOfYellowCard ?e)]
[actorRed:     (?e rdf:type pre:RedCard)    (?e pre:punishedPlayer ?p)  -> (?p pre:actorOfRedCard ?e)]
[actorOwnGoal: (?e rdf:type pre:OwnGoal)    (?e pre:scorerPlayer ?p)    -> (?p pre:actorOfOwnGoal ?e)]

# Match outcome from the final score.
[homeWinRule:
  (?m pre:homeScore ?hs)
  (?m pre:awayScore ?as)
  (?m pre:homeTeam ?ht)
  (?m pre:awayTeam ?at)
  greaterThan(?hs ?as)
  -> (?m pre:winnerTeam ?ht) (?m pre:loserTeam ?at)
]
[awayWinRule:
  (?m pre:homeScore ?hs)
  (?m pre:awayScore ?as)
  (?m pre:homeTeam ?ht)
  (?m pre:awayTeam ?at)
  lessThan(?hs ?as)
  -> (?m pre:winnerTeam ?at) (?m pre:loserTeam ?ht)
]
`

// Rules parses the domain rule set. It panics only on a programming error
// in RuleText, which the test suite pins down.
func Rules() []*rules.Rule { return rules.MustParse(RuleText) }
