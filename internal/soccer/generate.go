package soccer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls corpus generation. The defaults reproduce the paper's
// corpus scale: 10 matches with roughly 118 narrations each (the paper
// crawled 10 UEFA matches totalling 1182 narrations, of which 902 yielded
// events).
type Config struct {
	// Matches is the number of games to simulate.
	Matches int
	// Seed makes generation deterministic.
	Seed int64
	// NarrationsPerMatch is the approximate total per game, padded with
	// color commentary beyond the generated events.
	NarrationsPerMatch int
	// PaperCoverage fixes the first two pairings (Chelsea-Barcelona and
	// Real Madrid-Manchester United) and injects the handful of events the
	// Table 3 queries name — a Messi goal, an Alex yellow card, a Henry
	// offside, the Daniel/Florent fouls of Table 6, a goal conceded by
	// Casillas and a Valdes save — so every evaluation query has a
	// non-empty relevant set, as the paper's real crawl did.
	PaperCoverage bool
}

// DefaultConfig mirrors the paper's corpus scale.
func DefaultConfig() Config {
	return Config{Matches: 10, Seed: 42, NarrationsPerMatch: 118, PaperCoverage: true}
}

// Generate simulates a corpus under the config.
func Generate(cfg Config) *Corpus {
	if cfg.Matches <= 0 {
		cfg.Matches = 10
	}
	if cfg.NarrationsPerMatch <= 0 {
		cfg.NarrationsPerMatch = 118
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	teams := BuildTeams()
	byName := map[string]*Team{}
	for _, t := range teams {
		byName[t.Name] = t
	}
	c := &Corpus{Teams: teams}
	day := 0
	for i := 0; i < cfg.Matches; i++ {
		// Draw order (teams before date) is load-bearing: it pins the rng
		// stream, and with it the byte-exact default corpus the evaluation
		// tables are measured against.
		covered := cfg.PaperCoverage && cfg.Matches >= 2 && i < coverageFixtures
		var home, away *Team
		if !covered {
			hi := rng.Intn(len(teams))
			ai := rng.Intn(len(teams) - 1)
			if ai >= hi {
				ai++
			}
			home, away = teams[hi], teams[ai]
		}
		day += rng.Intn(3) + 1
		date := fmt.Sprintf("2009-%02d-%02d", 3+day/28, 1+day%28)
		if covered {
			if m, ok := GenerateCoverageMatch(rng, byName, i, date); ok {
				c.Matches = append(c.Matches, m)
				continue
			}
		}
		c.Matches = append(c.Matches, GenerateMatch(rng, home, away, date))
	}
	return c
}

// coverageFixtures is the number of forced fixtures GenerateCoverageMatch
// knows about.
const coverageFixtures = 2

// GenerateMatch simulates one match between home and away on the given
// date, drawing every event from rng. It is the streaming per-match hook:
// internal/corpus calls it once per emitted page so corpus generation
// never has to materialize more than one match at a time.
func GenerateMatch(rng *rand.Rand, home, away *Team, date string) *Match {
	return generateMatch(rng, home, away, date, nil)
}

// GenerateCoverageMatch produces the forced paper-coverage fixture for
// corpus slot i, or ok=false when slot i carries no fixture. Slot 0 is
// Chelsea-Barcelona with the Table 3 / Table 6 query events injected
// (a Messi goal, the Alex yellow card, the Henry offside, the
// Daniel/Florent fouls, a Valdes save); slot 1 is Real Madrid-Manchester
// United with the Rooney goal and Ronaldo offside. byName must resolve
// those four squad names (BuildTeams provides them). Both Generate and
// the streaming generator route their first two matches through here, so
// every evaluation query keeps a non-empty relevant set at any corpus
// scale.
func GenerateCoverageMatch(rng *rand.Rand, byName map[string]*Team, i int, date string) (*Match, bool) {
	switch i {
	case 0:
		home, away := byName["Chelsea"], byName["Barcelona"]
		if home == nil || away == nil {
			return nil, false
		}
		return generateMatch(rng, home, away, date, []forcedEvent{
			{KindGoal, "Messi", ""},
			{KindFoul, "Alex", "Henry"},
			{KindYellowCard, "Alex", ""},
			{KindFoul, "Daniel", "Florent"},
			{KindFoul, "Florent", "Daniel"},
			{KindOffside, "Henry", ""},
			{KindSave, "Valdes", "Drogba"},
		}), true
	case 1:
		home, away := byName["Real Madrid"], byName["Manchester United"]
		if home == nil || away == nil {
			return nil, false
		}
		return generateMatch(rng, home, away, date, []forcedEvent{
			{KindGoal, "Rooney", ""},
			{KindOffside, "Ronaldo", ""},
		}), true
	}
	return nil, false
}

// forcedEvent is a query-coverage event injected by PaperCoverage.
type forcedEvent struct {
	kind EventKind
	// subj and obj are player short names resolved against both lineups.
	subj, obj string
}

// pendingEvent is an event plus ordering info before narration rendering.
type pendingEvent struct {
	kind        EventKind
	minute      int
	seq         int // within-minute order
	subj, obj   *Player
	subjT, objT *Team
	noNarration bool // basic-info only (never happens currently)
}

type matchBuilder struct {
	rng     *rand.Rand
	m       *Match
	forced  []forcedEvent
	events  []pendingEvent
	seq     int
	yellows map[*Player]int
	sentOff map[*Player]bool
}

func (b *matchBuilder) add(e pendingEvent) {
	e.seq = b.seq
	b.seq++
	b.events = append(b.events, e)
}

// weightedAttacker picks a scorer-ish player: forwards and wingers heavy.
func weightedAttacker(rng *rand.Rand, t *Team) *Player {
	// Lineup order: GK LB RB CB SW DM CM AM RW CF SS.
	weights := []int{0, 1, 1, 1, 1, 2, 3, 4, 5, 8, 7}
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for i, w := range weights {
		if n < w {
			return t.Players[i]
		}
		n -= w
	}
	return t.Players[len(t.Players)-1]
}

func anyOutfield(rng *rand.Rand, t *Team) *Player {
	return t.Players[1+rng.Intn(len(t.Players)-1)]
}

func anyPlayer(rng *rand.Rand, t *Team) *Player {
	return t.Players[rng.Intn(len(t.Players))]
}

func generateMatch(rng *rand.Rand, home, away *Team, date string, forced []forcedEvent) *Match {
	m := &Match{
		ID:      fmt.Sprintf("%s_%s_%s", idSafe(home.Name), idSafe(away.Name), date),
		Home:    home,
		Away:    away,
		Date:    date,
		Referee: refereeNames[rng.Intn(len(refereeNames))],
	}
	b := &matchBuilder{rng: rng, m: m, forced: forced, yellows: map[*Player]int{}, sentOff: map[*Player]bool{}}

	b.generateStructure()
	b.generateGoals()
	b.generateFoulsAndCards()
	b.generateSetPiecesAndPlay()
	b.generateForced()
	b.generateSubstitutions()
	b.render()
	return m
}

func idSafe(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			out = append(out, '_')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

func (b *matchBuilder) generateStructure() {
	kickoffTeam := b.m.Teams()[b.rng.Intn(2)]
	b.add(pendingEvent{kind: KindKickOff, minute: 1, subjT: kickoffTeam})
	b.add(pendingEvent{kind: KindHalfTime, minute: 45})
	b.add(pendingEvent{kind: KindFullTime, minute: 90})
}

// usedGoalMinutes tracks goal minutes so two goals never share a minute,
// keeping the running score and assist-rule joins unambiguous.
func (b *matchBuilder) freeGoalMinute(used map[int]bool) int {
	for {
		min := 2 + b.rng.Intn(88)
		if min == 45 || used[min] {
			continue
		}
		used[min] = true
		return min
	}
}

// findByShort resolves a short player name against both lineups.
func (b *matchBuilder) findByShort(short string) (*Player, *Team) {
	for _, t := range b.m.Teams() {
		if p := t.FindPlayer(short); p != nil {
			return p, t
		}
	}
	return nil, nil
}

// generateForced injects the PaperCoverage events that are not goals
// (goals are handled in generateGoals to keep the score consistent).
func (b *matchBuilder) generateForced() {
	for _, f := range b.forced {
		if isGoalKind(f.kind) {
			continue
		}
		subj, st := b.findByShort(f.subj)
		if subj == nil {
			continue
		}
		var obj *Player
		var ot *Team
		if f.obj != "" {
			obj, ot = b.findByShort(f.obj)
		}
		if f.kind == KindSave {
			// The saver denies an opponent; object team is the shooter's.
			b.add(pendingEvent{kind: f.kind, minute: 2 + b.rng.Intn(87), subj: subj, obj: obj, subjT: st, objT: ot})
			continue
		}
		objTeam := ot
		if f.kind == KindFoul && obj != nil {
			objTeam = ot
		}
		b.add(pendingEvent{kind: f.kind, minute: 2 + b.rng.Intn(87), subj: subj, obj: obj, subjT: st, objT: objTeam})
	}
}

func (b *matchBuilder) generateGoals() {
	used := map[int]bool{}
	for _, f := range b.forced {
		if !isGoalKind(f.kind) {
			continue
		}
		scorer, t := b.findByShort(f.subj)
		if scorer == nil {
			continue
		}
		minute := b.freeGoalMinute(used)
		b.add(pendingEvent{kind: f.kind, minute: minute, subj: scorer, subjT: t, objT: b.m.OpponentOf(t)})
		b.m.Goals = append(b.m.Goals, GoalInfo{Minute: minute, Scorer: scorer, Team: t})
		if t == b.m.Home {
			b.m.HomeScore++
		} else {
			b.m.AwayScore++
		}
	}
	for side, t := range b.m.Teams() {
		n := poissonish(b.rng, 1.3)
		for g := 0; g < n; g++ {
			minute := b.freeGoalMinute(used)
			scorer := weightedAttacker(b.rng, t)
			kind := KindGoal
			ownGoal := false
			switch r := b.rng.Float64(); {
			case r < 0.05:
				kind = KindOwnGoal
				ownGoal = true
				// An own goal is scored by an opponent defender but counts
				// for team t.
				opp := b.m.OpponentOf(t)
				scorer = opp.Players[1+b.rng.Intn(4)] // a defender
			case r < 0.20:
				kind = KindHeaderGoal
			case r < 0.30:
				kind = KindPenaltyGoal
			case r < 0.40:
				kind = KindFreeKickGoal
			}
			scorerTeam := t
			if ownGoal {
				scorerTeam = b.m.OpponentOf(t)
			}
			// Assist pass in the same minute for ~65% of open-play goals.
			if (kind == KindGoal || kind == KindHeaderGoal) && b.rng.Float64() < 0.65 {
				passer := weightedAttacker(b.rng, t)
				for passer == scorer {
					passer = weightedAttacker(b.rng, t)
				}
				passKind := []EventKind{KindLongPass, KindShortPass, KindCrossPass, KindThroughPass}[b.rng.Intn(4)]
				b.add(pendingEvent{kind: passKind, minute: minute, subj: passer, obj: scorer, subjT: t, objT: t})
				// The pass-then-goal pair entails an assist (the Fig. 6 rule);
				// record it as narrationless ground truth so the evaluation can
				// credit indices that surface inferred events.
				b.add(pendingEvent{kind: KindAssist, minute: minute, subj: passer, obj: scorer, subjT: t, objT: t, noNarration: true})
			}
			if kind == KindPenaltyGoal {
				taker := scorer
				b.add(pendingEvent{kind: KindPenaltyKick, minute: minute, subj: taker, subjT: t})
			}
			b.add(pendingEvent{
				kind: kind, minute: minute, subj: scorer,
				subjT: scorerTeam, objT: b.m.OpponentOf(t),
			})
			b.m.Goals = append(b.m.Goals, GoalInfo{Minute: minute, Scorer: scorer, Team: t, OwnGoal: ownGoal})
			if side == 0 {
				b.m.HomeScore++
			} else {
				b.m.AwayScore++
			}
		}
	}
}

func (b *matchBuilder) generateFoulsAndCards() {
	n := 8 + b.rng.Intn(6)
	for i := 0; i < n; i++ {
		minute := 2 + b.rng.Intn(87)
		ft := b.m.Teams()[b.rng.Intn(2)]
		ot := b.m.OpponentOf(ft)
		fouler := anyOutfield(b.rng, ft)
		if b.sentOff[fouler] {
			continue
		}
		fouled := anyOutfield(b.rng, ot)
		if b.rng.Float64() < 0.08 {
			b.add(pendingEvent{kind: KindHandBall, minute: minute, subj: fouler, subjT: ft, objT: ot})
		} else {
			b.add(pendingEvent{kind: KindFoul, minute: minute, subj: fouler, obj: fouled, subjT: ft, objT: ot})
			// Occasional injury to the fouled player.
			if b.rng.Float64() < 0.08 {
				b.add(pendingEvent{kind: KindInjury, minute: minute, subj: fouler, obj: fouled, subjT: ft, objT: ot})
			}
		}
		// Card for the fouler.
		switch r := b.rng.Float64(); {
		case r < 0.30:
			b.yellows[fouler]++
			if b.yellows[fouler] >= 2 {
				b.add(pendingEvent{kind: KindSecondYellow, minute: minute, subj: fouler, subjT: ft})
				b.sentOff[fouler] = true
			} else {
				var cardObj *Player
				if b.rng.Float64() < 0.5 {
					cardObj = fouled
				}
				b.add(pendingEvent{kind: KindYellowCard, minute: minute, subj: fouler, obj: cardObj, subjT: ft})
			}
		case r < 0.33:
			b.add(pendingEvent{kind: KindRedCard, minute: minute, subj: fouler, subjT: ft})
			b.sentOff[fouler] = true
		}
	}
}

func (b *matchBuilder) generateSetPiecesAndPlay() {
	type spec struct {
		kind    EventKind
		min     int
		spread  int
		needObj bool
		pick    func(*Team) *Player
	}
	rng := b.rng
	specs := []spec{
		{KindOffside, 2, 4, false, func(t *Team) *Player { return weightedAttacker(rng, t) }},
		{KindMissedGoal, 4, 4, false, func(t *Team) *Player { return weightedAttacker(rng, t) }},
		{KindShoot, 3, 4, false, func(t *Team) *Player { return anyOutfield(rng, t) }},
		{KindShotOnTarget, 2, 3, false, func(t *Team) *Player { return anyOutfield(rng, t) }},
		{KindShotOffTarget, 2, 3, false, func(t *Team) *Player { return anyOutfield(rng, t) }},
		{KindHeaderShot, 1, 2, false, func(t *Team) *Player { return weightedAttacker(rng, t) }},
		{KindTackle, 3, 3, true, func(t *Team) *Player { return anyOutfield(rng, t) }},
		{KindInterception, 2, 3, false, func(t *Team) *Player { return anyOutfield(rng, t) }},
		{KindClearance, 2, 3, false, func(t *Team) *Player { return t.Players[1+rng.Intn(4)] }},
		{KindDribble, 2, 3, true, func(t *Team) *Player { return weightedAttacker(rng, t) }},
		{KindCorner, 6, 5, false, func(t *Team) *Player { return t.Players[5+rng.Intn(6)] }},
		{KindFreeKick, 2, 3, false, func(t *Team) *Player { return anyOutfield(rng, t) }},
		{KindThrowIn, 2, 3, false, func(t *Team) *Player { return t.Players[1+rng.Intn(2)] }},
	}
	for _, sp := range specs {
		n := sp.min + rng.Intn(sp.spread)
		for i := 0; i < n; i++ {
			minute := 2 + rng.Intn(87)
			t := b.m.Teams()[rng.Intn(2)]
			subj := sp.pick(t)
			var obj *Player
			var objT *Team
			if sp.needObj {
				objT = b.m.OpponentOf(t)
				obj = anyOutfield(rng, objT)
			}
			b.add(pendingEvent{kind: sp.kind, minute: minute, subj: subj, obj: obj, subjT: t, objT: objT})
		}
	}
	// Saves: the goalkeeper denies an opposing attacker.
	n := 3 + rng.Intn(4)
	for i := 0; i < n; i++ {
		minute := 2 + rng.Intn(87)
		t := b.m.Teams()[rng.Intn(2)]
		keeper := t.Goalkeeper()
		shooter := weightedAttacker(rng, b.m.OpponentOf(t))
		kind := KindSave
		if rng.Float64() < 0.1 {
			kind = KindPenaltySave
		}
		b.add(pendingEvent{kind: kind, minute: minute, subj: keeper, obj: shooter, subjT: t, objT: b.m.OpponentOf(t)})
	}
}

func (b *matchBuilder) generateSubstitutions() {
	for _, t := range b.m.Teams() {
		n := 2 + b.rng.Intn(2)
		for i := 0; i < n; i++ {
			minute := 46 + b.rng.Intn(43)
			off := anyOutfield(b.rng, t)
			// The replacement is a bench player we invent on the fly: the
			// squads carry only the starting XI, so benches get synthetic
			// names stable per team and slot.
			on := &Player{
				Name:     fmt.Sprintf("%s Sub%d", t.Name, i+1),
				Short:    fmt.Sprintf("%sSub%d", idSafe(t.Name), i+1),
				Position: off.Position,
				Shirt:    12 + i,
			}
			b.add(pendingEvent{kind: KindSubstitution, minute: minute, subj: off, obj: on, subjT: t})
			b.m.Substitutions = append(b.m.Substitutions, SubInfo{Minute: minute, Off: off, On: on, Team: t})
		}
	}
}

// render sorts events, renders narrations with running score, fills the
// truth log, and pads with color commentary.
func (b *matchBuilder) render() {
	sort.SliceStable(b.events, func(i, j int) bool {
		if b.events[i].minute != b.events[j].minute {
			return b.events[i].minute < b.events[j].minute
		}
		return b.events[i].seq < b.events[j].seq
	})
	homeGoals, awayGoals := 0, 0
	for _, e := range b.events {
		if isGoalKind(e.kind) {
			// The score prefix reflects the state after this goal.
			if b.goalCountsForHome(e) {
				homeGoals++
			} else {
				awayGoals++
			}
		}
		ctx := &narrationContext{
			subj: e.subj, obj: e.obj, subjT: e.subjT, objT: e.objT,
			homeGoals: homeGoals, awayGoals: awayGoals, rng: b.rng,
		}
		text := narrate(e.kind, ctx)
		idx := -1
		if !e.noNarration && text != "" {
			idx = len(b.m.Narrations)
			b.m.Narrations = append(b.m.Narrations, Narration{Minute: e.minute, Text: text})
		}
		b.m.Truth = append(b.m.Truth, TruthEvent{
			Kind: e.kind, Minute: e.minute,
			Subject: e.subj, Object: e.obj,
			SubjectTeam: e.subjT, ObjectTeam: e.objT,
			NarrationIdx: idx,
		})
	}
	// Pad with color commentary, then re-sort narrations by minute while
	// keeping truth indexes valid via a permutation.
	target := 118
	for len(b.m.Narrations) < target {
		minute := 1 + b.rng.Intn(90)
		b.m.Narrations = append(b.m.Narrations, Narration{Minute: minute, Text: colorNarration(b.rng, b.m)})
	}
	b.sortNarrations()
}

// goalCountsForHome reports whether the goal event increments the home
// score. For own goals the subject plays for the conceding side.
func (b *matchBuilder) goalCountsForHome(e pendingEvent) bool {
	if e.kind == KindOwnGoal {
		return e.subjT == b.m.Away
	}
	return e.subjT == b.m.Home
}

func isGoalKind(k EventKind) bool {
	switch k {
	case KindGoal, KindHeaderGoal, KindPenaltyGoal, KindFreeKickGoal, KindOwnGoal:
		return true
	}
	return false
}

// sortNarrations orders the feed by minute (stable) and remaps the truth
// events' narration indexes accordingly.
func (b *matchBuilder) sortNarrations() {
	type tagged struct {
		n    Narration
		orig int
	}
	ts := make([]tagged, len(b.m.Narrations))
	for i, n := range b.m.Narrations {
		ts[i] = tagged{n: n, orig: i}
	}
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].n.Minute < ts[j].n.Minute })
	remap := make(map[int]int, len(ts))
	for newIdx, t := range ts {
		remap[t.orig] = newIdx
		b.m.Narrations[newIdx] = t.n
	}
	// Note: the in-place write above is safe because ts holds copies.
	for i := range b.m.Truth {
		if b.m.Truth[i].NarrationIdx >= 0 {
			b.m.Truth[i].NarrationIdx = remap[b.m.Truth[i].NarrationIdx]
		}
	}
}

// poissonish draws a small non-negative count with the given mean, capped
// at 4, using Knuth's inverse-transform sampling of a Poisson distribution.
func poissonish(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l || k >= 4 {
			return k
		}
		k++
	}
}
