package soccer

import (
	"fmt"
	"math/rand"
)

// This file renders ground-truth events into UEFA-style narration text.
// The phrasing mirrors the paper's observations about the source corpus:
// goal narrations say "X scores!" and never contain the word "goal" (the
// reason TRAD collapses on query Q-1), fouls are narrated as "gives away a
// free-kick following a challenge on Y", offsides as "is flagged for
// offside", and so on. internal/ie carries the matching hand-crafted
// templates; TestExtractionRecall pins the two in sync.

// narrationContext carries what templates need.
type narrationContext struct {
	subj, obj   *Player
	subjT, objT *Team
	homeGoals   int
	awayGoals   int
	rng         *rand.Rand
}

func (c *narrationContext) pick(variants ...string) string {
	return variants[c.rng.Intn(len(variants))]
}

func (c *narrationContext) s() string  { return c.subj.Short }
func (c *narrationContext) o() string  { return c.obj.Short }
func (c *narrationContext) st() string { return c.subjT.Name }

// score renders the "(1 - 0)" running-score prefix of goal narrations.
func (c *narrationContext) score() string {
	return fmt.Sprintf("(%d - %d)", c.homeGoals, c.awayGoals)
}

// narrate renders one event. Every template here has a counterpart pattern
// in internal/ie's template table.
func narrate(kind EventKind, c *narrationContext) string {
	switch kind {
	case KindGoal:
		return c.score() + " " + c.pick(
			fmt.Sprintf("%s (%s) scores! The crowd erupts.", c.s(), c.st()),
			fmt.Sprintf("%s (%s) slots it home from close range.", c.s(), c.st()),
			fmt.Sprintf("%s (%s) finds the net with a composed finish.", c.s(), c.st()),
		)
	case KindHeaderGoal:
		return c.score() + " " + fmt.Sprintf("%s (%s) heads it in! A towering header.", c.s(), c.st())
	case KindPenaltyGoal:
		return c.score() + " " + fmt.Sprintf("%s (%s) converts the penalty, sending the keeper the wrong way.", c.s(), c.st())
	case KindFreeKickGoal:
		return c.score() + " " + fmt.Sprintf("%s (%s) curls the free-kick into the top corner. What a strike.", c.s(), c.st())
	case KindOwnGoal:
		return c.score() + " " + fmt.Sprintf("Disaster for %s! %s turns the ball into his own net.", c.st(), c.s())
	case KindLongPass:
		return fmt.Sprintf("%s (%s) delivers a long pass to %s.", c.s(), c.st(), c.o())
	case KindShortPass:
		return fmt.Sprintf("%s (%s) plays a short pass to %s.", c.s(), c.st(), c.o())
	case KindCrossPass:
		return fmt.Sprintf("%s (%s) crosses to %s.", c.s(), c.st(), c.o())
	case KindThroughPass:
		return fmt.Sprintf("%s (%s) threads a through ball to %s.", c.s(), c.st(), c.o())
	case KindShoot:
		return fmt.Sprintf("%s (%s) shoots from distance.", c.s(), c.st())
	case KindShotOnTarget:
		return fmt.Sprintf("%s (%s) fires a shot on target.", c.s(), c.st())
	case KindShotOffTarget:
		return fmt.Sprintf("%s (%s) drags a shot off target.", c.s(), c.st())
	case KindHeaderShot:
		return fmt.Sprintf("%s (%s) heads the effort at goal.", c.s(), c.st())
	case KindSave:
		return c.pick(
			fmt.Sprintf("%s (%s) saves from %s.", c.s(), c.st(), c.o()),
			fmt.Sprintf("Great save by %s (%s), denying %s.", c.s(), c.st(), c.o()),
		)
	case KindPenaltySave:
		return fmt.Sprintf("%s (%s) saves the penalty from %s! Incredible.", c.s(), c.st(), c.o())
	case KindTackle:
		return fmt.Sprintf("%s (%s) wins the ball with a strong tackle on %s.", c.s(), c.st(), c.o())
	case KindInterception:
		return fmt.Sprintf("%s (%s) intercepts a loose ball.", c.s(), c.st())
	case KindClearance:
		return fmt.Sprintf("%s (%s) clears the danger.", c.s(), c.st())
	case KindDribble:
		return fmt.Sprintf("%s (%s) dribbles past %s.", c.s(), c.st(), c.o())
	case KindFoul:
		return c.pick(
			fmt.Sprintf("%s gives away a free-kick following a challenge on %s.", c.s(), c.o()),
			fmt.Sprintf("%s (%s) fouls %s.", c.s(), c.st(), c.o()),
			fmt.Sprintf("%s brings down %s. Free-kick.", c.s(), c.o()),
		)
	case KindHandBall:
		return fmt.Sprintf("%s (%s) is penalised for handball.", c.s(), c.st())
	case KindYellowCard:
		if c.obj != nil {
			return fmt.Sprintf("%s (%s) is booked for a late challenge on %s.", c.s(), c.st(), c.o())
		}
		return c.pick(
			fmt.Sprintf("%s (%s) sees yellow.", c.s(), c.st()),
			fmt.Sprintf("%s (%s) is cautioned after a cynical challenge.", c.s(), c.st()),
		)
	case KindSecondYellow:
		return fmt.Sprintf("%s (%s) is shown a second yellow and is sent off!", c.s(), c.st())
	case KindRedCard:
		return fmt.Sprintf("%s (%s) is sent off! Straight red.", c.s(), c.st())
	case KindOffside:
		return fmt.Sprintf("%s (%s) is flagged for offside.", c.s(), c.st())
	case KindMissedGoal:
		return c.pick(
			fmt.Sprintf("%s (%s) misses a goal from close range.", c.s(), c.st()),
			fmt.Sprintf("%s (%s) fires wide of the post.", c.s(), c.st()),
			fmt.Sprintf("%s (%s) blazes over the bar.", c.s(), c.st()),
		)
	case KindMissedPenalty:
		return fmt.Sprintf("%s (%s) misses the penalty.", c.s(), c.st())
	case KindInjury:
		// The injured player is the event's object (injuredPlayer is a
		// sub-property of objectPlayer); the challenger is the subject.
		return fmt.Sprintf("%s (%s) stays down after a challenge from %s. The physio is on.", c.o(), c.objT.Name, c.s())
	case KindSubstitution:
		return fmt.Sprintf("%s substitution: %s replaces %s.", c.st(), c.o(), c.s())
	case KindCorner:
		return c.pick(
			fmt.Sprintf("%s (%s) delivers the corner.", c.s(), c.st()),
			fmt.Sprintf("Corner to %s. %s takes it.", c.st(), c.s()),
		)
	case KindFreeKick:
		return fmt.Sprintf("%s (%s) takes the free-kick.", c.s(), c.st())
	case KindPenaltyKick:
		return fmt.Sprintf("Penalty to %s! %s steps up.", c.st(), c.s())
	case KindThrowIn:
		return fmt.Sprintf("%s (%s) takes a long throw.", c.s(), c.st())
	case KindGoalKick:
		return fmt.Sprintf("Goal kick for %s. %s will restart play.", c.st(), c.s())
	case KindKickOff:
		return fmt.Sprintf("The referee blows and %s kick off.", c.st())
	case KindHalfTime:
		return "The referee blows for half-time."
	case KindFullTime:
		return "The final whistle goes."
	default:
		return ""
	}
}

// colorNarration produces an eventless commentary line; the extractor
// classifies these as UnknownEvent, matching the paper's ~280 narrations
// with no extracted event.
func colorNarration(rng *rand.Rand, m *Match) string {
	anyPlayer := func() *Player {
		t := m.Teams()[rng.Intn(2)]
		return t.Players[rng.Intn(len(t.Players))]
	}
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf("%s is in the thick of it again, receiving the ball near the far post.", anyPlayer().Short)
	case 1:
		return fmt.Sprintf("Worrying times for %s, pacing his technical area.", m.Teams()[rng.Intn(2)].Coach)
	case 2:
		return fmt.Sprintf("The atmosphere at %s is electric tonight.", m.Home.Stadium)
	case 3:
		return fmt.Sprintf("%s is looking dangerous every time he picks up the ball.", anyPlayer().Short)
	case 4:
		return fmt.Sprintf("A spell of patient possession for %s around the halfway line.", m.Teams()[rng.Intn(2)].Name)
	default:
		return fmt.Sprintf("%s and %s exchange words in midfield; the referee calms things down.",
			m.Home.Players[rng.Intn(11)].Short, m.Away.Players[rng.Intn(11)].Short)
	}
}
