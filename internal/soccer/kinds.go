package soccer

// Kind groupings used by the evaluation judgments and the query-expansion
// baseline. They mirror the ontology's class hierarchy; TestKindsMatchOntology
// keeps them in sync with it.

// GoalKinds are the event kinds that score a goal.
var GoalKinds = []EventKind{KindGoal, KindHeaderGoal, KindPenaltyGoal, KindFreeKickGoal, KindOwnGoal}

// PunishmentKinds are the card events (Q-4).
var PunishmentKinds = []EventKind{KindYellowCard, KindSecondYellow, KindRedCard}

// ShootKinds are the shot events (Q-10).
var ShootKinds = []EventKind{KindShoot, KindShotOnTarget, KindShotOffTarget, KindHeaderShot}

// SaveKinds are the goalkeeper saves (Q-9).
var SaveKinds = []EventKind{KindSave, KindPenaltySave}

// YellowCardKinds are the yellow-card events (Q-5); a second yellow is
// still a yellow card shown.
var YellowCardKinds = []EventKind{KindYellowCard, KindSecondYellow}

// NegativeKinds are the NegativeEvent subtree (Q-7).
var NegativeKinds = []EventKind{
	KindOwnGoal, KindYellowCard, KindSecondYellow, KindRedCard,
	KindFoul, KindHandBall, KindOffside, KindMissedGoal, KindMissedPenalty, KindInjury,
}

// DefencePositions are the squad position codes of the DefencePlayer
// subtree (Q-10).
var DefencePositions = []string{"LB", "RB", "CB", "SW"}

// KindIn reports membership.
func KindIn(k EventKind, set []EventKind) bool {
	for _, x := range set {
		if x == k {
			return true
		}
	}
	return false
}

// IsGoal reports whether the kind scores a goal.
func IsGoal(k EventKind) bool { return KindIn(k, GoalKinds) }

// CreditedTeam returns the team a goal counts for: the scorer's team,
// except own goals which credit the opponent.
func CreditedTeam(m *Match, t *TruthEvent) *Team {
	if t.Kind == KindOwnGoal {
		return m.OpponentOf(t.SubjectTeam)
	}
	return t.SubjectTeam
}

// ConcedingTeam returns the team a goal was scored against.
func ConcedingTeam(m *Match, t *TruthEvent) *Team {
	return m.OpponentOf(CreditedTeam(m, t))
}

// IsDefencePosition reports whether the position code is in the
// DefencePlayer subtree.
func IsDefencePosition(pos string) bool {
	for _, p := range DefencePositions {
		if p == pos {
			return true
		}
	}
	return false
}
